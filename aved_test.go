package aved_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aved"
)

func paperSolver(t *testing.T) *aved.Solver {
	t.Helper()
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := aved.PaperApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := aved.NewSolver(inf, svc, aved.Options{Registry: aved.PaperRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEndToEndEnterprise(t *testing.T) {
	s := paperSolver(t)
	sol, err := s.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: aved.Minutes(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.DowntimeMinutes > 100 {
		t.Errorf("downtime %v over budget", sol.DowntimeMinutes)
	}
	label := sol.Design.Label()
	if !strings.Contains(label, "rC") {
		t.Errorf("design label = %q", label)
	}
	fam := aved.FamilyOf(&sol.Design.Tiers[0])
	if fam.NExtra != 1 || fam.NSpare != 0 {
		t.Errorf("family = %+v, want the paper's family 9", fam)
	}
}

func TestEndToEndJob(t *testing.T) {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := aved.PaperScientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := aved.NewSolver(inf, svc, aved.Options{
		Registry:        aved.PaperRegistry(),
		FixedMechanisms: aved.Bronze(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(aved.Requirements{Kind: aved.ReqJob, MaxJobTime: aved.Hours(100)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.JobTime > aved.Hours(100) {
		t.Errorf("job time %v over requirement", sol.JobTime)
	}
	if sol.Cost <= 0 {
		t.Error("cost should be positive")
	}
}

func TestLoadFromFiles(t *testing.T) {
	dir := t.TempDir()
	infPath := filepath.Join(dir, "infra.spec")
	svcPath := filepath.Join(dir, "service.spec")
	if err := os.WriteFile(infPath, []byte(aved.PaperInfrastructureSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(svcPath, []byte(aved.PaperEcommerceSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	inf, err := aved.LoadInfrastructureFile(infPath)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := aved.LoadServiceFile(svcPath, inf)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name != "ecommerce" || len(svc.Tiers) != 3 {
		t.Errorf("service = %q with %d tiers", svc.Name, len(svc.Tiers))
	}
	if _, err := aved.LoadInfrastructureFile(filepath.Join(dir, "missing.spec")); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := aved.LoadServiceFile(filepath.Join(dir, "missing.spec"), inf); err == nil {
		t.Error("missing service file should fail")
	}
}

func TestEnginesAgreeThroughFacade(t *testing.T) {
	s := paperSolver(t)
	sol, err := s.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        600,
		MaxAnnualDowntime: aved.Minutes(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := aved.EvaluateDesign(&sol.Design, aved.MarkovEngine())
	if err != nil {
		t.Fatal(err)
	}
	simEng, err := aved.SimEngine(99, 2000, 6)
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := aved.EvaluateDesign(&sol.Design, simEng)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(simulated.DowntimeMinutes-analytic.DowntimeMinutes) /
		math.Max(analytic.DowntimeMinutes, 1)
	if rel > 0.10 {
		t.Errorf("engines disagree: markov %.1f vs sim %.1f (rel %.2f)",
			analytic.DowntimeMinutes, simulated.DowntimeMinutes, rel)
	}
}

func TestInfeasibleSurfacesThroughFacade(t *testing.T) {
	s := paperSolver(t)
	_, err := s.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        1e12,
		MaxAnnualDowntime: aved.Minutes(100),
	})
	var infErr *aved.InfeasibleError
	if !errors.As(err, &infErr) {
		t.Errorf("want InfeasibleError, got %v", err)
	}
}

func TestDurationHelpers(t *testing.T) {
	if aved.Minutes(90) != aved.Hours(1.5) {
		t.Error("Minutes/Hours disagree")
	}
	d, err := aved.ParseDuration("38h")
	if err != nil || d != aved.Hours(38) {
		t.Errorf("ParseDuration = %v, %v", d, err)
	}
}

// Example demonstrates the quickstart flow on the paper's own inputs.
func Example() {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	svc, err := aved.PaperApplicationTier(inf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	solver, err := aved.NewSolver(inf, svc, aved.Options{Registry: aved.PaperRegistry()})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sol, err := solver.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: aved.Minutes(100),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	td := &sol.Design.Tiers[0]
	fmt.Printf("resource=%s actives=%d spares=%d cost=%s\n",
		td.Resource().Name, td.NActive, td.NSpare, sol.Cost)
	// Output:
	// resource=rC actives=6 spares=0 cost=28320
}

// ExampleLoadInfrastructure shows parsing a hand-written spec.
func ExampleLoadInfrastructure() {
	inf, err := aved.LoadInfrastructure(`
component=node cost=1000
  failure=crash mtbf=100d mttr=8h detect_time=1m
resource=web reconfig_time=0
  component=node depend=null startup=2m
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(inf.Components), len(inf.Resources))
	// Output:
	// 1 1
}
