package aved_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"aved"
)

// TestFacadeSurface exercises the remaining thin wrappers of the public
// facade so regressions in re-export plumbing surface immediately.
func TestFacadeSurface(t *testing.T) {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := aved.PaperApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := aved.NewSolver(inf, svc, aved.Options{Registry: aved.PaperRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        800,
		MaxAnnualDowntime: aved.Minutes(500),
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("availability model exchange", func(t *testing.T) {
		var text, js bytes.Buffer
		if err := aved.WriteAvailabilityModel(&text, &sol.Design); err != nil {
			t.Fatal(err)
		}
		if err := aved.WriteAvailabilityModelJSON(&js, &sol.Design); err != nil {
			t.Fatal(err)
		}
		fromText, err := aved.ReadAvailabilityModel(&text)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON, err := aved.ReadAvailabilityModelJSON(&js)
		if err != nil {
			t.Fatal(err)
		}
		if len(fromText) != len(fromJSON) || len(fromText) == 0 {
			t.Fatalf("round trips disagree: %d vs %d tiers", len(fromText), len(fromJSON))
		}
		// All three engines accept the round-tripped model.
		for _, eng := range []aved.Engine{aved.MarkovEngine(), aved.ExactEngine()} {
			if _, err := eng.Evaluate(fromText); err != nil {
				t.Errorf("engine %T rejected round-tripped model: %v", eng, err)
			}
		}
	})

	t.Run("design report", func(t *testing.T) {
		var sb strings.Builder
		if err := aved.WriteDesignReport(&sb, &sol.Design, aved.ExactEngine()); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "design total") {
			t.Errorf("report output: %s", sb.String())
		}
	})

	t.Run("grids and values", func(t *testing.T) {
		lg, err := aved.LogGrid(1, 100, 3)
		if err != nil || len(lg) != 3 {
			t.Errorf("LogGrid: %v %v", lg, err)
		}
		ln, err := aved.LinGrid(0, 10, 3)
		if err != nil || ln[1] != 5 {
			t.Errorf("LinGrid: %v %v", ln, err)
		}
		if aved.EnumValue("gold").Str != "gold" {
			t.Error("EnumValue")
		}
		if aved.DurationValue(2).Hours != 2 {
			t.Error("DurationValue")
		}
		reg := aved.NewRegistry()
		if reg == nil {
			t.Error("NewRegistry")
		}
	})

	t.Run("sensitivity", func(t *testing.T) {
		points, err := aved.SensitivitySweep(context.Background(), inf, aved.SensitivityConfig{
			ServiceSpec: strings.ReplaceAll(aved.PaperEcommerceSpec, "application=ecommerce", "application=sens"),
			Registry:    aved.PaperRegistry(),
			Requirement: aved.Requirements{
				Kind:              aved.ReqEnterprise,
				Throughput:        800,
				MaxAnnualDowntime: aved.Minutes(2000),
			},
		}, aved.ScaleCost("machineA"), []float64{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 2 || points[1].Cost <= points[0].Cost {
			t.Errorf("dearer machines must raise cost: %+v", points)
		}
		// The remaining knob constructors.
		if _, err := aved.SensitivitySweep(context.Background(), inf, aved.SensitivityConfig{
			ServiceSpec: aved.PaperScientificSpec,
			Registry:    aved.PaperRegistry(),
			SolverOptions: aved.Options{
				FixedMechanisms: aved.Bronze(),
			},
			Requirement: aved.Requirements{Kind: aved.ReqJob, MaxJobTime: aved.Hours(300)},
		}, aved.ScaleMTBF("machineA"), []float64{1}); err != nil {
			t.Errorf("job-requirement sensitivity: %v", err)
		}
		if _, err := aved.SensitivitySweep(context.Background(), inf, aved.SensitivityConfig{
			ServiceSpec: strings.ReplaceAll(aved.PaperEcommerceSpec, "application=ecommerce", "application=sens2"),
			Registry:    aved.PaperRegistry(),
			Requirement: aved.Requirements{
				Kind:              aved.ReqEnterprise,
				Throughput:        800,
				MaxAnnualDowntime: aved.Minutes(2000),
			},
		}, aved.ScaleMechanismCost("maintenanceB"), []float64{1}); err != nil {
			t.Errorf("mechanism-cost sensitivity: %v", err)
		}
	})

	t.Run("warm spares through the facade", func(t *testing.T) {
		warmSolver, err := aved.NewSolver(inf, svc, aved.Options{
			Registry:           aved.PaperRegistry(),
			ExploreSpareWarmth: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		warmSol, err := warmSolver.Solve(aved.Requirements{
			Kind:              aved.ReqEnterprise,
			Throughput:        800,
			MaxAnnualDowntime: aved.Minutes(500),
		})
		if err != nil {
			t.Fatal(err)
		}
		if warmSol.Cost > sol.Cost {
			t.Errorf("warmth exploration must not worsen the optimum: %v vs %v", warmSol.Cost, sol.Cost)
		}
	})
}

// TestMissionDowntimeFacade: the finite-horizon figure undercuts the
// steady state for a young system and converges for long missions.
func TestMissionDowntimeFacade(t *testing.T) {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := aved.PaperApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := aved.NewSolver(inf, svc, aved.Options{Registry: aved.PaperRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        400,
		MaxAnnualDowntime: aved.Minutes(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := aved.WriteAvailabilityModel(&buf, &sol.Design); err != nil {
		t.Fatal(err)
	}
	tms, err := aved.ReadAvailabilityModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	shortRun, err := aved.MissionDowntime(&tms[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	longRun, err := aved.MissionDowntime(&tms[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	if !(shortRun < longRun) {
		t.Errorf("young system downtime %v should undercut long-run %v", shortRun, longRun)
	}
	steady, err := aved.MarkovEngine().Evaluate(tms[:1])
	if err != nil {
		t.Fatal(err)
	}
	rel := (longRun - steady.DowntimeMinutes) / steady.DowntimeMinutes
	if rel > 0.05 || rel < -0.05 {
		t.Errorf("20y mission %v should approach steady state %v", longRun, steady.DowntimeMinutes)
	}
}
