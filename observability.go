package aved

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"aved/internal/core"
	"aved/internal/obs"
	"aved/internal/sweep"
)

// Observability types. A Solver carries them through Options: set
// Options.Tracer to stream typed search events, Options.Metrics to
// accumulate counters, and Options.DebugAddr to expose pprof, expvar
// and a /metrics JSON snapshot over HTTP. All three default to off and
// cost nothing when off.
type (
	// Tracer consumes typed search-trace events.
	Tracer = obs.Tracer
	// TraceEvent is one trace record (flat across the event taxonomy).
	TraceEvent = obs.Event
	// Metrics is the concurrent metrics registry (counters, gauges,
	// log-bucketed histograms).
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time read of a registry.
	MetricsSnapshot = obs.Snapshot
	// TraceCollector accumulates events in memory.
	TraceCollector = obs.CollectTracer
	// TraceFunc adapts a function to the Tracer interface.
	TraceFunc = obs.FuncTracer
	// JSONLTracer streams events as JSON lines.
	JSONLTracer = obs.JSONLTracer
	// SweepTotals aggregates search effort across a sweep.
	SweepTotals = sweep.Totals
)

// Trace event types (TraceEvent.Ev values). See the internal obs
// package for the full taxonomy semantics.
const (
	EvSearchStart = obs.EvSearchStart
	EvSearchEnd   = obs.EvSearchEnd
	EvSearchError = obs.EvSearchError
	EvPhaseStart  = obs.EvPhaseStart
	EvPhaseEnd    = obs.EvPhaseEnd
	EvTierDone    = obs.EvTierDone
	EvCandGen     = obs.EvCandGen
	EvCandPrune   = obs.EvCandPrune
	EvBoundPrune  = obs.EvBoundPrune
	EvWarmReuse   = obs.EvWarmReuse
	// EvFrontierReuse is a whole tier frontier served from a chain's
	// frontier set instead of rebuilt.
	EvFrontierReuse = obs.EvFrontierReuse
	EvEvalMiss    = obs.EvEvalMiss
	EvEvalHit     = obs.EvEvalHit
	EvIncumbent   = obs.EvIncumbent
	EvMemoHit     = obs.EvMemoHit
	EvMemoSolve   = obs.EvMemoSolve
	EvSimBatch    = obs.EvSimBatch
	EvSweepPoint  = obs.EvSweepPoint
)

// PhaseNames lists the solver's timed phase names in display order —
// the keys Stats.PhaseNanos and the solve.phase.* histograms use.
func PhaseNames() []string { return core.PhaseNames() }

// WritePhaseTable renders a PhaseNanos breakdown (Stats.PhaseNanos,
// SweepTotals.PhaseNanos, possibly extended with caller-timed phases
// like "bind") as an aligned milliseconds table: "bind" first, then
// the solver's phases in display order, then anything else sorted.
// Entries overlap — "eval" accrues inside the bracketed phases — so
// the rows deliberately carry no total line.
func WritePhaseTable(w io.Writer, phaseNanos map[string]int64) {
	if len(phaseNanos) == 0 {
		fmt.Fprintln(w, "phase timings: none recorded (timing off)")
		return
	}
	order := append([]string{"bind"}, PhaseNames()...)
	known := make(map[string]bool, len(order))
	for _, n := range order {
		known[n] = true
	}
	var extra []string
	for n := range phaseNanos {
		if !known[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	fmt.Fprintln(w, "phase timings (overlapping: eval accrues inside the bracketed phases):")
	for _, n := range append(order, extra...) {
		if ns, ok := phaseNanos[n]; ok {
			fmt.Fprintf(w, "  %-12s %12.2f ms\n", n, obs.DurMS(ns))
		}
	}
}

// WriteMetricsHTTP serves a registry snapshot over HTTP with format
// negotiation: Prometheus text exposition for ?format=prom or an
// Accept header preferring text/plain, the JSON snapshot otherwise.
func WriteMetricsHTTP(w http.ResponseWriter, r *http.Request, reg *Metrics) {
	obs.WriteMetricsHTTP(w, r, reg)
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewJSONLFileTracer creates (truncating) a JSONL trace file. Close it
// to flush.
func NewJSONLFileTracer(path string) (*JSONLTracer, error) { return obs.NewJSONLFileTracer(path) }

// TeeTracers fans events to several tracers; nils are skipped and a
// nil Tracer comes back when nothing remains.
func TeeTracers(ts ...Tracer) Tracer { return obs.Tee(ts...) }

// ServeDebug starts (or reuses) the debug HTTP listener on addr,
// serving net/http/pprof, expvar and a /metrics JSON snapshot of reg.
// It reports the bound address, useful with ":0".
func ServeDebug(addr string, reg *Metrics) (string, error) {
	d, err := obs.EnsureServe(addr, reg)
	if err != nil {
		return "", err
	}
	return d.Addr(), nil
}

// InstrumentEngine attaches observability to an availability engine
// directly — the path for programs that evaluate models without a
// Solver (a Solver instruments its engine itself). It reports whether
// the engine supports instrumentation.
func InstrumentEngine(eng Engine, reg *Metrics, tr Tracer) bool {
	type instrumentable interface {
		InstrumentObs(*obs.Registry, obs.Tracer)
	}
	if i, ok := eng.(instrumentable); ok {
		i.InstrumentObs(reg, tr)
		return true
	}
	return false
}

// ObsSetup bundles the observability wiring shared by the CLIs: an
// optional JSONL trace file, an optional metrics JSON file written on
// Close, and an optional debug HTTP listener. Zero paths/addr are
// skipped; a fully-zero setup is inert.
type ObsSetup struct {
	// Tracer is the trace sink, nil when no trace was requested.
	Tracer Tracer
	// Metrics is non-nil whenever any observability output needs it.
	Metrics *Metrics

	metricsPath string
	jsonl       *JSONLTracer
}

// NewObsSetup opens the requested observability outputs: tracePath
// (JSONL trace file), metricsPath (metrics snapshot written on Close —
// Prometheus text when the path ends in .prom, JSON otherwise) and
// debugAddr (HTTP listener). Empty strings disable each.
func NewObsSetup(tracePath, metricsPath, debugAddr string) (*ObsSetup, error) {
	s := &ObsSetup{metricsPath: metricsPath}
	if tracePath != "" {
		jt, err := NewJSONLFileTracer(tracePath)
		if err != nil {
			return nil, err
		}
		s.jsonl = jt
		s.Tracer = jt
	}
	if metricsPath != "" || debugAddr != "" {
		s.Metrics = NewMetrics()
	}
	if debugAddr != "" {
		if _, err := ServeDebug(debugAddr, s.Metrics); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Apply threads the setup through solver options.
func (s *ObsSetup) Apply(o Options) Options {
	o.Tracer = TeeTracers(o.Tracer, s.Tracer)
	if o.Metrics == nil {
		o.Metrics = s.Metrics
	}
	return o
}

// Close flushes the trace file and writes the metrics snapshot.
func (s *ObsSetup) Close() error {
	var firstErr error
	if s.jsonl != nil {
		if err := s.jsonl.Close(); err != nil {
			firstErr = fmt.Errorf("aved: trace: %w", err)
		}
		s.jsonl = nil
	}
	if s.metricsPath != "" && s.Metrics != nil {
		f, err := os.Create(s.metricsPath)
		if err == nil {
			// A .prom path selects the Prometheus text exposition — the
			// format node_exporter's textfile collector ingests — JSON
			// otherwise.
			if strings.HasSuffix(s.metricsPath, ".prom") {
				err = s.Metrics.WritePrometheus(f)
			} else {
				err = s.Metrics.WriteJSON(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("aved: metrics: %w", err)
		}
		s.metricsPath = ""
	}
	return firstErr
}
