// Package aved is an automated system design engine for availability —
// a reproduction of "Automated System Design for Availability"
// (Janakiraman, Santos, Turner; HP Labs, DSN 2004). Given an
// infrastructure model (components, failure modes, availability
// mechanisms, resource types), a service model (tiers and resource
// options with performance curves) and high-level service requirements
// (throughput and maximum annual downtime, or expected job completion
// time), Aved searches the design space for the minimum-cost design
// that satisfies the requirements.
//
// The package is a thin facade: it re-exports the stable surface of
// the internal packages (spec parsing and binding, the §4.1 search
// engine, the §4.2 availability engines, and the Fig. 6–8 sweeps) so
// applications need a single import.
//
//	inf, _ := aved.LoadInfrastructure(spec)     // Fig. 3 format
//	svc, _ := aved.LoadService(serviceSpec, inf) // Fig. 4/5 format
//	solver, _ := aved.NewSolver(inf, svc, aved.Options{Registry: reg})
//	sol, _ := solver.Solve(aved.Requirements{
//	    Kind:              aved.ReqEnterprise,
//	    Throughput:        1000,
//	    MaxAnnualDowntime: aved.Minutes(100),
//	})
//	fmt.Println(sol.Design.Label(), sol.Cost, sol.DowntimeMinutes)
package aved

import (
	"context"
	"fmt"
	"io"
	"os"

	"aved/internal/avail"
	"aved/internal/core"
	"aved/internal/export"
	"aved/internal/model"
	"aved/internal/par"
	"aved/internal/perf"
	"aved/internal/report"
	"aved/internal/scenarios"
	"aved/internal/sensitivity"
	"aved/internal/sim"
	"aved/internal/sweep"
	"aved/internal/units"
)

// Core model types.
type (
	// Infrastructure is the bound infrastructure model (§3.1).
	Infrastructure = model.Infrastructure
	// Service is the bound service model (§3.2).
	Service = model.Service
	// Requirements are the user's high-level service requirements.
	Requirements = model.Requirements
	// Design is a complete resolution of every design choice.
	Design = model.Design
	// TierDesign is one tier's resolved design.
	TierDesign = model.TierDesign
	// ParamValue is a chosen mechanism-parameter setting.
	ParamValue = model.ParamValue
	// Duration is a time quantity using the spec suffixes (s, m, h, d).
	Duration = units.Duration
	// Money is an annualised cost.
	Money = units.Money
)

// Requirement kinds.
const (
	// ReqEnterprise asks for a throughput and a downtime bound.
	ReqEnterprise = model.ReqEnterprise
	// ReqJob asks for an expected job completion time.
	ReqJob = model.ReqJob
)

// Solver types.
type (
	// Solver searches the design space (§4.1).
	Solver = core.Solver
	// Options configure a Solver.
	Options = core.Options
	// Solution is a search outcome.
	Solution = core.Solution
	// Stats summarises the search effort behind one solve.
	Stats = core.Stats
	// InfeasibleError reports that no design satisfies the requirements.
	InfeasibleError = core.InfeasibleError
	// CanceledError reports a solve aborted by context cancellation or
	// deadline expiry (Options.Deadline, Solver.SolveContext), carrying
	// the partial search statistics. It unwraps to context.Canceled or
	// context.DeadlineExceeded.
	CanceledError = core.CanceledError
	// SearchMode selects the tier-search strategy (Options.Search).
	SearchMode = core.SearchMode
	// Delta describes which parts of the infrastructure changed between
	// solves, for warm-started re-solves (Solver.Rebind / Resolve).
	Delta = core.Delta
	// ComboSeed is an opaque combination-seed token extracted from a
	// Solution (Solution.Seed) and passed to Solver.SolveCell to seed a
	// grid cell's combination upper bound.
	ComboSeed = core.ComboSeed
	// CellOptions configure one Solver.SolveCell grid-cell solve: an
	// explicit combination seed and a chain frontier set.
	CellOptions = core.CellOptions
	// FrontierSet caches per-tier Pareto frontiers across the SolveCell
	// calls of one sequential grid chain (CellOptions.Frontiers).
	FrontierSet = core.FrontierSet
)

// NewFrontierSet creates an empty frontier cache for one grid chain.
func NewFrontierSet() *FrontierSet { return core.NewFrontierSet() }

// Search strategies.
const (
	// SearchBnB is the default best-first branch-and-bound search with
	// admissible bounds; bit-identical to exhaustive, far fewer
	// availability evaluations.
	SearchBnB = core.SearchBnB
	// SearchExhaustive is the full grid enumeration with cost pruning
	// only, kept as the reference oracle.
	SearchExhaustive = core.SearchExhaustive
)

// ParseSearchMode resolves a search-strategy name ("bnb", "exhaustive"
// or empty for the default) as the CLIs accept it.
func ParseSearchMode(name string) (SearchMode, error) { return core.ParseSearchMode(name) }

// Performance model types.
type (
	// Registry resolves performance references from service specs.
	Registry = perf.Registry
	// Curve maps active-resource counts to throughput.
	Curve = perf.Curve
)

// Availability evaluation types.
type (
	// Engine evaluates availability models (§4.2).
	Engine = avail.Engine
	// AvailabilityResult is a whole-design availability evaluation.
	AvailabilityResult = avail.Result
	// TierModel is the §4.2 availability model of one tier.
	TierModel = avail.TierModel
)

// Sweep types (the paper's evaluation artefacts).
type (
	// Fig6Result is the optimal-family map over the requirement plane.
	Fig6Result = sweep.Fig6Result
	// Fig7Point is one sample of the scientific-application sweep.
	Fig7Point = sweep.Fig7Point
	// Fig8Curve is one availability cost-premium curve.
	Fig8Curve = sweep.Fig8Curve
	// Family identifies a design family as Fig. 6 labels them.
	Family = sweep.Family
)

// LoadInfrastructure parses and validates an infrastructure model in
// the Fig. 3 specification format.
func LoadInfrastructure(src string) (*Infrastructure, error) {
	return model.ParseInfrastructure(src)
}

// LoadInfrastructureFile reads an infrastructure model from disk.
func LoadInfrastructureFile(path string) (*Infrastructure, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aved: read infrastructure: %w", err)
	}
	return LoadInfrastructure(string(b))
}

// LoadService parses a service model in the Fig. 4/5 format and
// resolves it against the infrastructure.
func LoadService(src string, inf *Infrastructure) (*Service, error) {
	svc, err := model.ParseService(src)
	if err != nil {
		return nil, err
	}
	if err := svc.Resolve(inf); err != nil {
		return nil, err
	}
	return svc, nil
}

// LoadServiceFile reads a service model from disk and resolves it.
func LoadServiceFile(path string, inf *Infrastructure) (*Service, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aved: read service: %w", err)
	}
	return LoadService(string(b), inf)
}

// NewSolver builds a design-space solver.
func NewSolver(inf *Infrastructure, svc *Service, opts Options) (*Solver, error) {
	return core.NewSolver(inf, svc, opts)
}

// NewRegistry builds an empty performance registry. Register closed
// forms with RegisterCurve/RegisterOverhead, or set Dir for file-based
// perf tables.
func NewRegistry() *Registry { return perf.NewRegistry() }

// MarkovEngine builds the analytic availability engine (the paper's
// simplified Markov model). It is the solver default.
func MarkovEngine() Engine { return avail.NewMarkovEngine() }

// ExactEngine builds the exact-transient analytic engine: explicit
// (failed, activating) CTMC states solved densely, validating the
// default engine's per-event transient accounting.
func ExactEngine() Engine { return avail.NewExactEngine() }

// SimEngine builds the discrete-event simulation engine — the stand-in
// for the external availability evaluation engine (Avanto) the paper
// interfaces to. It runs reps replications of years simulated years.
func SimEngine(seed int64, years float64, reps int) (Engine, error) {
	return sim.NewEngine(seed, years, reps)
}

// SimEngineWorkers builds the simulation engine with an explicit
// replication worker count: 0 uses GOMAXPROCS, 1 runs sequentially.
// Each replication draws from its own seed-derived random stream, so
// results are identical at any worker count.
func SimEngineWorkers(seed int64, years float64, reps, workers int) (Engine, error) {
	e, err := sim.NewEngine(seed, years, reps)
	if err != nil {
		return nil, err
	}
	return e.WithWorkers(workers), nil
}

// SimEngineAdaptive builds the simulation engine with adaptive-
// precision replication control: replications run in deterministic
// batches of batch (0 uses the engine default) and stop once the 95%
// confidence half-width of the downtime estimate falls under relErr
// times the running mean, with reps as the budget cap. relErr <= 0
// keeps the fixed budget. A given (seed, relErr, batch) stops at the
// same replication count — and produces bit-identical results — at any
// worker count.
func SimEngineAdaptive(seed int64, years float64, reps, workers int, relErr float64, batch int) (Engine, error) {
	e, err := sim.NewEngine(seed, years, reps)
	if err != nil {
		return nil, err
	}
	return e.WithWorkers(workers).WithPrecision(relErr, batch), nil
}

// DefaultWorkers reports the worker count a zero Workers option
// resolves to (GOMAXPROCS).
func DefaultWorkers() int { return par.Workers(0) }

// MissionDowntime reports a tier model's expected downtime in minutes
// per year over a finite mission starting all-up — the transient-aware
// counterpart of the engines' steady-state figure, matching what a
// finite-horizon simulation measures for a young system.
func MissionDowntime(tm *TierModel, years float64) (float64, error) {
	return avail.MissionDowntime(tm, years)
}

// EvaluateDesign runs a complete design through an availability engine.
func EvaluateDesign(d *Design, eng Engine) (AvailabilityResult, error) {
	tms, err := avail.BuildModels(d)
	if err != nil {
		return AvailabilityResult{}, err
	}
	return eng.Evaluate(tms)
}

// EvaluateModel evaluates standalone tier models through an engine
// under a context. Engines with a context-aware entry point (the
// Monte-Carlo engine, whose batches check ctx) get it; analytic engines
// evaluate synchronously — they are fast enough that a deadline can
// only matter to Monte-Carlo budgets.
func EvaluateModel(ctx context.Context, eng Engine, tms []TierModel) (AvailabilityResult, error) {
	type ctxEngine interface {
		EvaluateCtx(ctx context.Context, tms []avail.TierModel) (avail.Result, error)
	}
	if ce, ok := eng.(ctxEngine); ok {
		return ce.EvaluateCtx(ctx, tms)
	}
	return eng.Evaluate(tms)
}

// Minutes builds a Duration from a number of minutes.
func Minutes(m float64) Duration { return Duration(m * float64(units.Minute)) }

// Hours builds a Duration from a number of hours.
func Hours(h float64) Duration { return units.FromHours(h) }

// ParseDuration parses the spec notation ("30s", "2m", "38h", "650d").
func ParseDuration(s string) (Duration, error) { return units.ParseDuration(s) }

// EnumValue builds an enumerated mechanism-parameter value.
func EnumValue(s string) ParamValue { return model.EnumValue(s) }

// DurationValue builds a numeric mechanism-parameter value in hours.
func DurationValue(hours float64) ParamValue { return model.DurationValue(hours) }

// SweepFig6 regenerates the Fig. 6 requirement-plane sweep. The context
// cancels the whole sweep: in-flight solves abort at their next
// candidate and pending cells never start.
func SweepFig6(ctx context.Context, solver *Solver, loads, budgetsMinutes []float64) (*Fig6Result, error) {
	return sweep.Fig6(ctx, solver, loads, budgetsMinutes)
}

// SweepFig7 regenerates the Fig. 7 job-time sweep under the context.
func SweepFig7(ctx context.Context, solver *Solver, requirementHours []float64) ([]Fig7Point, error) {
	return sweep.Fig7(ctx, solver, requirementHours)
}

// SweepFig8 regenerates the Fig. 8 cost-premium curves under the
// context.
func SweepFig8(ctx context.Context, solver *Solver, loads, budgetsMinutes []float64) ([]Fig8Curve, error) {
	return sweep.Fig8(ctx, solver, loads, budgetsMinutes)
}

// LogGrid builds a logarithmically spaced requirement grid.
func LogGrid(lo, hi float64, points int) ([]float64, error) { return sweep.LogGrid(lo, hi, points) }

// LinGrid builds a linearly spaced requirement grid.
func LinGrid(lo, hi float64, points int) ([]float64, error) { return sweep.LinGrid(lo, hi, points) }

// FamilyOf classifies a tier design into its Fig. 6 family.
func FamilyOf(td *TierDesign) Family { return sweep.FamilyOf(td) }

// Paper fixtures: the exact inputs of the paper's evaluation (§5).

// PaperInfrastructure binds the Fig. 3 infrastructure model.
func PaperInfrastructure() (*Infrastructure, error) { return scenarios.Infrastructure() }

// PaperRegistry builds a registry loaded with the Table 1 performance
// functions.
func PaperRegistry() *Registry { return scenarios.Registry() }

// PaperEcommerce binds the Fig. 4 e-commerce service.
func PaperEcommerce(inf *Infrastructure) (*Service, error) { return scenarios.Ecommerce(inf) }

// PaperApplicationTier binds the §5.1 application-tier example.
func PaperApplicationTier(inf *Infrastructure) (*Service, error) {
	return scenarios.ApplicationTier(inf)
}

// PaperScientific binds the Fig. 5 scientific-application service.
func PaperScientific(inf *Infrastructure) (*Service, error) { return scenarios.Scientific(inf) }

// PaperInfrastructureSpec is the Fig. 3 specification text, exposed so
// applications can start from the paper's inputs and edit them.
const PaperInfrastructureSpec = scenarios.InfrastructureSpec

// PaperEcommerceSpec is the Fig. 4 specification text.
const PaperEcommerceSpec = scenarios.EcommerceSpec

// PaperScientificSpec is the Fig. 5 specification text.
const PaperScientificSpec = scenarios.ScientificSpec

// Bronze pins both maintenance contracts to the bronze level, the
// §5.2 configuration.
func Bronze() map[string]map[string]ParamValue {
	return map[string]map[string]ParamValue{
		"maintenanceA": {"level": model.EnumValue("bronze")},
		"maintenanceB": {"level": model.EnumValue("bronze")},
	}
}

// Sensitivity analysis (what-if over infrastructure parameters).
type (
	// SensitivityKnob perturbs an infrastructure copy by a factor.
	SensitivityKnob = sensitivity.Knob
	// SensitivityConfig drives a sensitivity sweep.
	SensitivityConfig = sensitivity.Config
	// SensitivityPoint is one perturbed-solve outcome.
	SensitivityPoint = sensitivity.Point
)

// ScaleMTBF builds a knob multiplying a component's MTBFs (all
// components when name is empty).
func ScaleMTBF(component string) SensitivityKnob { return sensitivity.ScaleMTBF(component) }

// ScaleCost builds a knob multiplying a component's prices (all
// components when name is empty).
func ScaleCost(component string) SensitivityKnob { return sensitivity.ScaleCost(component) }

// ScaleMechanismCost builds a knob multiplying a mechanism's cost
// table.
func ScaleMechanismCost(mechanism string) SensitivityKnob {
	return sensitivity.ScaleMechanismCost(mechanism)
}

// SensitivitySweep perturbs clones of the infrastructure with the knob
// at each factor and re-solves the fixed requirement. The context
// cancels the whole sweep.
func SensitivitySweep(ctx context.Context, base *Infrastructure, cfg SensitivityConfig, knob SensitivityKnob, factors []float64) ([]SensitivityPoint, error) {
	return sensitivity.Sweep(ctx, base, cfg, knob, factors)
}

// AvailScope reports the warm-start invalidation scope of a
// perturbation touching one component's availability inputs: the
// resource types embedding it (SensitivityConfig.WarmDelta). Empty
// component means everything; price-only knobs should use a zero Delta
// instead.
func AvailScope(inf *Infrastructure, component string) Delta {
	return sensitivity.AvailScope(inf, component)
}

// Availability-model exchange (the representations the paper feeds to
// external evaluation engines such as Avanto).

// WriteAvailabilityModel renders a design's §4.2 availability model in
// the structured text exchange format.
func WriteAvailabilityModel(w io.Writer, d *Design) error {
	tms, err := avail.BuildModels(d)
	if err != nil {
		return err
	}
	return export.WriteText(w, tms)
}

// WriteAvailabilityModelJSON renders a design's availability model as
// JSON.
func WriteAvailabilityModelJSON(w io.Writer, d *Design) error {
	tms, err := avail.BuildModels(d)
	if err != nil {
		return err
	}
	return export.WriteJSON(w, tms)
}

// ReadAvailabilityModel parses the text exchange format back into tier
// models ready for any Engine.
func ReadAvailabilityModel(r io.Reader) ([]TierModel, error) { return export.ParseText(r) }

// ReadAvailabilityModelJSON parses the JSON exchange format.
func ReadAvailabilityModelJSON(r io.Reader) ([]TierModel, error) { return export.ParseJSON(r) }

// DescribeModel writes an inventory of the model pair and an estimate
// of the design-space cardinality the search faces per tier.
func DescribeModel(w io.Writer, inf *Infrastructure, svc *Service, maxRedundancy int) error {
	if maxRedundancy == 0 {
		maxRedundancy = core.DefaultMaxRedundancy
	}
	return report.DescribeModel(w, inf, svc, maxRedundancy)
}

// WriteDesignReport renders a human-readable report of a design: cost
// broken down by component, mode and mechanism, and downtime broken
// down by failure mode. A nil engine defaults to the analytic Markov
// engine.
func WriteDesignReport(w io.Writer, d *Design, eng Engine) error {
	return report.Design(w, d, report.Options{Engine: eng})
}
