// Sensitivity example: the self-managing-utility story of the paper's
// introduction. A computing utility re-runs Aved as conditions change;
// this example perturbs hardware reliability and maintenance-contract
// pricing and shows the optimal design shifting in response.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"aved"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		return err
	}
	cfg := aved.SensitivityConfig{
		ServiceSpec: `
application=ecommerce-apptier
tier=application
  resource=rC sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfC.dat
  resource=rD sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfD.dat
  resource=rE sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfE.dat
  resource=rF sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfF.dat
`,
		Registry: aved.PaperRegistry(),
		Requirement: aved.Requirements{
			Kind:              aved.ReqEnterprise,
			Throughput:        800,
			MaxAnnualDowntime: aved.Minutes(2000),
		},
	}

	fmt.Println("=== What if hardware reliability changes? (MTBF × factor) ===")
	if err := table(inf, cfg, aved.ScaleMTBF(""), []float64{0.25, 0.5, 1, 2, 4}); err != nil {
		return err
	}

	fmt.Println("\n=== What if maintenance contracts get dearer? (contract cost × factor) ===")
	if err := table(inf, cfg, aved.ScaleMechanismCost("maintenanceA"), []float64{0.5, 1, 5, 20}); err != nil {
		return err
	}

	fmt.Println("\nAt baseline pricing the gold contract carries availability; as")
	fmt.Println("contracts get dearer the optimum shifts to cheap contracts plus")
	fmt.Println("machine redundancy — the design change a self-managing utility")
	fmt.Println("would apply automatically.")
	return nil
}

func table(inf *aved.Infrastructure, cfg aved.SensitivityConfig, knob aved.SensitivityKnob, factors []float64) error {
	points, err := aved.SensitivitySweep(context.Background(), inf, cfg, knob, factors)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "factor\toptimal family\tdowntime(min)\tcost")
	for _, p := range points {
		if p.Infeasible {
			fmt.Fprintf(w, "%.2f\t(infeasible)\t\t\n", p.Factor)
			continue
		}
		fmt.Fprintf(w, "%.2f\t%s\t%.1f\t%s\n", p.Factor, p.Family, p.DowntimeMinutes, p.Cost)
	}
	return w.Flush()
}
