// Scientific-application example (§5.2): sweep the job-completion-time
// requirement and print the optimal design dimensions Fig. 7 plots —
// resource type, resource count, spares, checkpoint interval and
// storage location. Maintenance contracts are pinned to bronze as in
// the paper.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"aved"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		return err
	}
	svc, err := aved.PaperScientific(inf)
	if err != nil {
		return err
	}
	solver, err := aved.NewSolver(inf, svc, aved.Options{
		Registry:        aved.PaperRegistry(),
		FixedMechanisms: aved.Bronze(),
	})
	if err != nil {
		return err
	}

	grid, err := aved.LogGrid(2, 1000, 10)
	if err != nil {
		return err
	}
	points, err := aved.SweepFig7(context.Background(), solver, grid)
	if err != nil {
		return err
	}

	fmt.Println("=== Scientific application: optimal design vs execution-time requirement ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "req(h)\tresource\tmachines\tspares\tckpt interval\tstorage\texpected(h)\tcost")
	for _, p := range points {
		fmt.Fprintf(w, "%.1f\t%s\t%d\t%d\t%s\t%s\t%.1f\t%s\n",
			p.RequirementHours, p.Stack, p.NActive, p.NSpare,
			aved.Hours(p.CheckpointHours), p.StorageLocation, p.JobTimeHours, p.Cost)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nThe §5.2 shapes: machineB (rI) only under tight deadlines;")
	fmt.Println("resource counts and costs fall as the requirement relaxes; the")
	fmt.Println("checkpoint interval grows with the system MTBF; central storage")
	fmt.Println("serves small clusters, peer storage large ones.")
	return nil
}
