// E-commerce example (§5.1): explore the application tier's design
// space across several requirement points, showing how the optimal
// family shifts with load and with the downtime budget — including the
// paper's family-3 (gold contract) to family-6 (bronze + spare)
// crossover near 1400 load units. The example finishes by solving the
// full three-tier Fig. 4 service.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"aved"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		return err
	}
	reg := aved.PaperRegistry()

	appTier, err := aved.PaperApplicationTier(inf)
	if err != nil {
		return err
	}
	solver, err := aved.NewSolver(inf, appTier, aved.Options{Registry: reg})
	if err != nil {
		return err
	}

	fmt.Println("=== Application tier: optimal family per requirement ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "load\tbudget(min)\tfamily (resource, contract, n_extra, n_spare)\tdowntime(min)\tcost")
	for _, load := range []float64{400, 800, 1400, 2000, 3200, 5000} {
		for _, budget := range []float64{2000, 100, 10} {
			sol, err := solver.Solve(aved.Requirements{
				Kind:              aved.ReqEnterprise,
				Throughput:        load,
				MaxAnnualDowntime: aved.Minutes(budget),
			})
			if err != nil {
				fmt.Fprintf(w, "%.0f\t%.0f\t(infeasible)\t\t\n", load, budget)
				continue
			}
			td := &sol.Design.Tiers[0]
			fam := aved.FamilyOf(td)
			fmt.Fprintf(w, "%.0f\t%.0f\t%s\t%.1f\t%s\n",
				load, budget, fam, sol.DowntimeMinutes, sol.Cost)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nNote the §5.1 crossover at the 2000-minute budget: below ~1400")
	fmt.Println("load units the gold contract wins; above it an extra bronze")
	fmt.Println("machine is cheaper, because contract cost scales with machines.")

	fmt.Println("\n=== Full three-tier e-commerce service (Fig. 4) ===")
	full, err := aved.PaperEcommerce(inf)
	if err != nil {
		return err
	}
	fullSolver, err := aved.NewSolver(inf, full, aved.Options{Registry: reg})
	if err != nil {
		return err
	}
	sol, err := fullSolver.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        2000,
		MaxAnnualDowntime: aved.Minutes(500),
	})
	if err != nil {
		return err
	}
	fmt.Printf("requirement: 2000 load units, ≤500 min/yr across all tiers\n")
	for i := range sol.Design.Tiers {
		td := &sol.Design.Tiers[i]
		fmt.Printf("  %-12s %s\n", td.TierName+":", td.Label())
	}
	fmt.Printf("combined downtime: %.1f min/yr, total cost %s/yr\n", sol.DowntimeMinutes, sol.Cost)
	return nil
}
