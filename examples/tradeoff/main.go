// Cost/availability/performance tradeoff example (§5.3, Fig. 8): for
// each load level, print how much extra annual cost each downtime
// bound demands over the availability-indifferent baseline — the
// complete tradeoff picture Aved generates for a designer.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"aved"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		return err
	}
	svc, err := aved.PaperApplicationTier(inf)
	if err != nil {
		return err
	}
	solver, err := aved.NewSolver(inf, svc, aved.Options{Registry: aved.PaperRegistry()})
	if err != nil {
		return err
	}

	budgets, err := aved.LogGrid(0.1, 100, 7)
	if err != nil {
		return err
	}
	curves, err := aved.SweepFig8(context.Background(), solver, []float64{400, 800, 1600, 3200}, budgets)
	if err != nil {
		return err
	}

	fmt.Println("=== Extra annual cost of availability vs downtime bound (Fig. 8) ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "budget(min)")
	for _, c := range curves {
		fmt.Fprintf(w, "\tload %.0f", c.Load)
	}
	fmt.Fprintln(w)
	for _, b := range budgets {
		fmt.Fprintf(w, "%.2f", b)
		for _, c := range curves {
			printed := false
			for _, p := range c.Points {
				if p.BudgetMinutes == b {
					fmt.Fprintf(w, "\t+%s", p.ExtraCost)
					printed = true
					break
				}
			}
			if !printed {
				fmt.Fprint(w, "\t-")
			}
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nbaselines (no availability requirement):")
	for _, c := range curves {
		fmt.Printf("  load %4.0f: %s/yr\n", c.Load, c.BaselineCost)
	}
	fmt.Println("\nThe §5.3 reading: big downtime improvements are sometimes cheap")
	fmt.Println("(one step down a curve), and slightly relaxing a tight bound can")
	fmt.Println("save a lot — the knees of these curves are the design decisions.")
	return nil
}
