// Quickstart: load the paper's infrastructure and application-tier
// service, ask for 1000 load units with at most 100 minutes of annual
// downtime, and print the minimum-cost design Aved finds — the paper's
// §5.1 worked example.
package main

import (
	"fmt"
	"log"

	"aved"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		return err
	}
	svc, err := aved.PaperApplicationTier(inf)
	if err != nil {
		return err
	}
	solver, err := aved.NewSolver(inf, svc, aved.Options{Registry: aved.PaperRegistry()})
	if err != nil {
		return err
	}

	sol, err := solver.Solve(aved.Requirements{
		Kind:              aved.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: aved.Minutes(100),
	})
	if err != nil {
		return err
	}

	td := &sol.Design.Tiers[0]
	fmt.Println("requirement: 1000 load units, ≤100 min downtime/year")
	fmt.Printf("optimal design: %s\n", sol.Design.Label())
	fmt.Printf("  component stack:   %s\n", stack(td))
	fmt.Printf("  active machines:   %d (%d needed for load, %d extra for availability)\n",
		td.NActive, td.NMinPerf, td.NExtra())
	fmt.Printf("  spare machines:    %d\n", td.NSpare)
	fmt.Printf("  annual cost:       %s\n", sol.Cost)
	fmt.Printf("  expected downtime: %.1f min/year (the paper reports ≈50)\n", sol.DowntimeMinutes)
	fmt.Printf("search effort: %d candidates, %d pruned on cost, %d availability evaluations\n",
		sol.Stats.CandidatesGenerated, sol.Stats.CostPruned, sol.Stats.Evaluations)
	return nil
}

func stack(td *aved.TierDesign) string {
	rt := td.Resource()
	out := ""
	for i, rc := range rt.Components {
		if i > 0 {
			out += "/"
		}
		out += rc.Component.Name
	}
	return out
}
