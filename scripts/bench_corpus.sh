#!/bin/sh
# Regenerates results/BENCH_corpus.json: the scenario corpus engine's
# solve-effort record — per-family solve times, evaluation counters and
# the bnb-vs-exhaustive bound payoff over the generated web, batch,
# telco and storage workloads. The run fails on any feasibility or
# solution divergence between the two search modes. Counters are from
# sequential (Workers=1) solves under a fixed corpus seed, so they are
# exactly reproducible on any host; only the wall timings vary. Run
# from the repository root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
if [ "$(nproc)" = 1 ]; then
    echo "WARNING: single-CPU host; the JSON will carry single_cpu=true" >&2
fi
echo "benchmarking on $(nproc) CPU(s)"
go run ./cmd/avedbench -mode corpus -o results/BENCH_corpus.json
echo "wrote results/BENCH_corpus.json"
