#!/bin/sh
# Regenerates results/BENCH_batch.json: the batched structure-of-arrays
# Markov kernel record — slab solve vs per-chain loop on short and long
# chains, batched vs per-mode memo-miss pricing storms at two tier
# widths, and the cold/warm allocation footprint of the arena-backed
# e-commerce solve. The run itself fails if the cold solve exceeds its
# allocation budget. Run from the repository root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
if [ "$(nproc)" = 1 ]; then
    echo "WARNING: single-CPU host; the JSON will carry single_cpu=true" >&2
fi
echo "benchmarking on $(nproc) CPU(s)"
go run ./cmd/avedbench -mode batch -o results/BENCH_batch.json
echo "wrote results/BENCH_batch.json"
