#!/bin/sh
# Regenerates results/BENCH_parallel.json: ns/op for the parallel
# evaluation layer's sequential (-workers 1) vs pooled (-workers 0)
# runs of the same workloads. The recorded gomaxprocs/num_cpu are the
# host's real core count (printed below); on a single-CPU host the
# pooled runs cannot beat the baseline and the JSON carries a note
# saying so. Run from the repository root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
if [ "$(nproc)" = 1 ]; then
    echo "WARNING: single-CPU host; speedups will measure scheduling overhead" \
        "and the JSON will carry single_cpu=true" >&2
fi
echo "benchmarking on $(nproc) CPU(s)"
go run ./cmd/avedbench -o results/BENCH_parallel.json
echo "wrote results/BENCH_parallel.json"
