#!/bin/sh
# Regenerates results/BENCH_parallel.json: ns/op for the parallel
# evaluation layer's sequential (-workers 1) vs pooled (-workers 0)
# runs of the same workloads. Run from the repository root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
go run ./cmd/avedbench -o results/BENCH_parallel.json
echo "wrote results/BENCH_parallel.json"
