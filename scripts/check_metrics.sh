#!/bin/sh
# Runs one traced search and validates its observability outputs
# against each other: the -metrics JSON schema, the -trace JSONL event
# multiplicities and the -json solution report must all describe the
# same search. Run from the repository root; CI runs this on every
# push.
set -eu
cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/aved -paper apptier -load 1000 -downtime 60m -json \
	-trace "$tmp/trace.jsonl" -metrics "$tmp/metrics.json" >"$tmp/solution.json"
go run scripts/check_metrics.go "$tmp/metrics.json" "$tmp/trace.jsonl" "$tmp/solution.json"
