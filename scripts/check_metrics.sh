#!/bin/sh
# Runs one traced search and validates its observability outputs
# against each other: the -metrics JSON schema, the -trace JSONL event
# multiplicities and the -json solution report must all describe the
# same search. Then runs one traced grid-aware sweep and cross-checks
# the reuse counters its -progress lines print (warm-seed replays,
# frontier reuses, carried on sweep.point events) against the per-hit
# trace events and the registry counters. Run from the repository
# root; CI runs this on every push.
set -eu
cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/aved -paper apptier -load 1000 -downtime 60m -json \
	-trace "$tmp/trace.jsonl" -metrics "$tmp/metrics.json" >"$tmp/solution.json"
go run scripts/check_metrics.go "$tmp/metrics.json" "$tmp/trace.jsonl" "$tmp/solution.json"
go run ./cmd/avedsweep -fig 6 -loads 4 -budgets 5 -workers 1 -progress \
	-trace "$tmp/sweep_trace.jsonl" -metrics "$tmp/sweep_metrics.json" \
	>/dev/null 2>"$tmp/progress.txt"
go run scripts/check_metrics.go -sweep "$tmp/sweep_metrics.json" "$tmp/sweep_trace.jsonl"
