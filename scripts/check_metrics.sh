#!/bin/sh
# Runs one traced search and validates its observability outputs
# against each other: the -metrics JSON schema, the -trace JSONL event
# multiplicities and the -json solution report must all describe the
# same search — including the -timings wall-clock attribution, whose
# phase.end/eval.miss nanosecond sums must equal the report's
# phaseNanos exactly and the solve.phase.* histograms up to float
# rounding. Then runs one traced grid-aware sweep and cross-checks
# the reuse counters its -progress lines print (warm-seed replays,
# frontier reuses, carried on sweep.point events) against the per-hit
# trace events and the registry counters, plus the same phase
# histogram checks. Finally lints the Prometheus text exposition the
# same sweep wrote via a .prom -metrics path. Run from the repository
# root; CI runs this on every push.
set -eu
cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/aved -paper apptier -load 1000 -downtime 60m -json -timings \
	-trace "$tmp/trace.jsonl" -metrics "$tmp/metrics.json" >"$tmp/solution.json"
go run scripts/check_metrics.go "$tmp/metrics.json" "$tmp/trace.jsonl" "$tmp/solution.json"
go run ./cmd/avedsweep -fig 6 -loads 4 -budgets 5 -workers 1 -progress \
	-trace "$tmp/sweep_trace.jsonl" -metrics "$tmp/sweep_metrics.json" \
	>/dev/null 2>"$tmp/progress.txt"
go run scripts/check_metrics.go -sweep "$tmp/sweep_metrics.json" "$tmp/sweep_trace.jsonl"
go run ./cmd/avedsweep -fig 8 -budgets 3 -workers 1 \
	-metrics "$tmp/metrics.prom" >/dev/null
go run scripts/check_metrics.go -prom "$tmp/metrics.prom"
