#!/bin/sh
# Regenerates results/BENCH_sweep.json: the grid-aware sweep
# scheduling record — per-cell cold solves vs one shared-solver sweep
# (budget-chain warm seeding plus per-chain frontier sets) over the
# Fig 6 and Fig 8 grids. The run fails unless every grid cell's
# feasibility and cost match the cold solve exactly and the multi-tier
# grids clear a 3x evaluation cut. Counters are from sequential
# (Workers=1) solves, so they are exactly reproducible on any host;
# only the wall timings vary. Run from the repository root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
if [ "$(nproc)" = 1 ]; then
    echo "WARNING: single-CPU host; the JSON will carry single_cpu=true" >&2
fi
echo "benchmarking on $(nproc) CPU(s)"
go run ./cmd/avedbench -mode sweep -o results/BENCH_sweep.json
echo "wrote results/BENCH_sweep.json"
