//go:build ignore

// Command check_metrics validates the observability outputs of one
// traced search — the CI gate behind scripts/check_metrics.sh. It
// cross-checks three artifacts written by the same `aved` run:
//
//   - the -metrics JSON snapshot (counter keys, histogram counts),
//   - the -trace JSONL search trace (event multiplicities),
//   - the -json solution report (the solver's own stats),
//
// and fails when a required key is missing or any pair disagrees.
//
// With -sweep it instead validates a traced avedsweep run: the
// per-point reuse counters carried on sweep.point events (the numbers
// the -progress lines print) must sum to the registry's core.warm_reuse
// and core.frontier_reuse counters and match the per-hit warm.reuse /
// frontier.reuse event multiplicities.
//
// Usage:
//
//	go run scripts/check_metrics.go metrics.json trace.jsonl solution.json
//	go run scripts/check_metrics.go -sweep metrics.json trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

type snapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histograms"`
}

type solution struct {
	Candidates  int64 `json:"candidatesGenerated"`
	CostPruned  int64 `json:"costPruned"`
	BoundPruned int64 `json:"boundPruned"`
	Evaluations int64 `json:"availabilityEvaluations"`
	CacheHits   int64 `json:"evalCacheHits"`
	WarmReuse   int64 `json:"warmStartReuse"`
}

// trace aggregates one JSONL search trace: event multiplicities plus
// the reuse totals the sweep.point events carry.
type trace struct {
	events map[string]int64
	// pointWarm / pointFrontier sum the wreuse / freuse fields over the
	// sweep.point events — the per-cell reuse the -progress lines show.
	pointWarm     int64
	pointFrontier int64
}

func main() {
	args := os.Args[1:]
	sweepMode := len(args) > 0 && args[0] == "-sweep"
	if sweepMode {
		args = args[1:]
	}
	if (sweepMode && len(args) != 2) || (!sweepMode && len(args) != 3) {
		fmt.Fprintln(os.Stderr, "usage: check_metrics metrics.json trace.jsonl solution.json")
		fmt.Fprintln(os.Stderr, "       check_metrics -sweep metrics.json trace.jsonl")
		os.Exit(2)
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var snap snapshot
	readJSON(args[0], &snap)
	tr := readTrace(args[1])
	var sol solution
	if sweepMode {
		checkSweep(fail, snap, tr)
	} else {
		readJSON(args[2], &sol)
		checkSolve(fail, snap, tr, sol)
	}

	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "check_metrics:", e)
		}
		os.Exit(1)
	}
	if sweepMode {
		fmt.Printf("check_metrics: sweep ok (%d points, %d warm-seed replays, %d frontier reuses, %d trace events)\n",
			tr.events["sweep.point"], tr.pointWarm, tr.pointFrontier, total(tr.events))
		return
	}
	fmt.Printf("check_metrics: ok (%d candidates, %d evaluations, %d trace events)\n",
		sol.Candidates, sol.Evaluations, total(tr.events))
}

// checkSolve validates one single-solve `aved` run.
func checkSolve(fail func(string, ...any), snap snapshot, tr trace, sol solution) {
	events := tr.events
	// Metrics schema: the counters and timing histogram a single
	// completed solve must flush.
	for _, key := range []string{
		"core.solves", "core.candidates", "core.cost_pruned",
		"core.bound_pruned", "core.warm_reuse", "core.frontier_reuse",
		"core.evaluations", "core.eval_cache_hits",
		"avail.memo.hits", "avail.memo.solves",
	} {
		if _, ok := snap.Counters[key]; !ok {
			fail("metrics: counter %q missing", key)
		}
	}
	if n := snap.Counters["core.solves"]; n != 1 {
		fail("metrics: core.solves = %d, want 1", n)
	}
	if h, ok := snap.Histograms["core.solve_ms"]; !ok {
		fail("metrics: histogram core.solve_ms missing")
	} else if h.Count != 1 {
		fail("metrics: core.solve_ms count = %d, want 1", h.Count)
	}

	// Trace shape: one search lifecycle, no errors.
	if n := events["search.start"]; n != 1 {
		fail("trace: %d search.start events, want 1", n)
	}
	if n := events["search.end"]; n != 1 {
		fail("trace: %d search.end events, want 1", n)
	}
	if n := events["search.error"]; n != 0 {
		fail("trace: %d search.error events, want 0", n)
	}

	// Cross-checks: trace multiplicities, metrics counters and the
	// solution report all describe the same search. FrontierReuse is
	// zero by contract on a plain solve (frontier sets exist only under
	// grid-aware SolveCell scheduling), so its row pins exactly that.
	cross := []struct {
		ev      string
		counter string
		stat    int64
	}{
		{"cand.gen", "core.candidates", sol.Candidates},
		{"cand.prune", "core.cost_pruned", sol.CostPruned},
		// A whole-option subtree prune emits one bound.prune event and
		// counts one bound-pruned candidate, so the identity holds for
		// per-candidate and per-subtree prunes alike.
		{"bound.prune", "core.bound_pruned", sol.BoundPruned},
		{"eval.miss", "core.evaluations", sol.Evaluations},
		{"eval.hit", "core.eval_cache_hits", sol.CacheHits},
		{"warm.reuse", "core.warm_reuse", sol.WarmReuse},
		{"frontier.reuse", "core.frontier_reuse", 0},
	}
	for _, c := range cross {
		if got := events[c.ev]; got != c.stat {
			fail("trace: %d %s events but the solution reports %d", got, c.ev, c.stat)
		}
		if got := snap.Counters[c.counter]; got != c.stat {
			fail("metrics: %s = %d but the solution reports %d", c.counter, got, c.stat)
		}
	}
	if sol.Candidates == 0 {
		fail("solution: zero candidates generated — the search did not run")
	}
}

// checkSweep validates one traced grid-aware avedsweep run: the reuse
// totals on the sweep.point events (what -progress prints per cell)
// must agree with both the per-hit trace events and the registry
// counters the solver bumps.
func checkSweep(fail func(string, ...any), snap snapshot, tr trace) {
	events := tr.events
	points := events["sweep.point"]
	if points == 0 {
		fail("trace: no sweep.point events — the sweep did not run")
	}
	if got := snap.Counters["sweep.points"]; got != points {
		fail("metrics: sweep.points = %d but the trace has %d sweep.point events", got, points)
	}
	cross := []struct {
		name    string
		ev      string
		counter string
		points  int64
	}{
		{"warm-seed replays", "warm.reuse", "core.warm_reuse", tr.pointWarm},
		{"frontier reuses", "frontier.reuse", "core.frontier_reuse", tr.pointFrontier},
	}
	for _, c := range cross {
		if got := events[c.ev]; got != c.points {
			fail("trace: %d %s events but the sweep.point events carry %d %s",
				got, c.ev, c.points, c.name)
		}
		if got := snap.Counters[c.counter]; got != c.points {
			fail("metrics: %s = %d but the sweep.point events carry %d %s",
				c.counter, got, c.points, c.name)
		}
	}
	// Non-vacuity: a grid-aware budget chain must actually replay
	// warm-seeded work, or the check proves nothing.
	if tr.pointWarm == 0 {
		fail("trace: the sweep never replayed a warm-seeded entry — grid-aware scheduling is off")
	}
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %s: %v\n", path, err)
		os.Exit(1)
	}
}

// readTrace counts trace events by type and accumulates the sweep.point
// reuse fields, failing on any line that is not a JSON object with an
// "ev" field.
func readTrace(path string) trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr := trace{events: make(map[string]int64)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var e struct {
			Ev            string `json:"ev"`
			WarmReuse     int64  `json:"wreuse"`
			FrontierReuse int64  `json:"freuse"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Ev == "" {
			fmt.Fprintf(os.Stderr, "check_metrics: %s:%d: bad trace line: %v\n", path, line, err)
			os.Exit(1)
		}
		tr.events[e.Ev]++
		if e.Ev == "sweep.point" {
			tr.pointWarm += e.WarmReuse
			tr.pointFrontier += e.FrontierReuse
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %s: %v\n", path, err)
		os.Exit(1)
	}
	return tr
}

func total(events map[string]int64) int64 {
	var n int64
	for _, c := range events {
		n += c
	}
	return n
}
