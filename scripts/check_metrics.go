//go:build ignore

// Command check_metrics validates the observability outputs of one
// traced search — the CI gate behind scripts/check_metrics.sh. It
// cross-checks three artifacts written by the same `aved` run:
//
//   - the -metrics JSON snapshot (counter keys, histogram counts),
//   - the -trace JSONL search trace (event multiplicities),
//   - the -json solution report (the solver's own stats),
//
// and fails when a required key is missing or any pair disagrees.
// Phase wall-clock attribution is cross-checked three ways: the
// phase.end / eval.miss DurNs sums in the trace must equal the
// solution report's phaseNanos exactly (integer nanoseconds), and the
// solve.phase.* histograms must carry the same observation counts and
// (within float tolerance) the same millisecond sums.
//
// With -sweep it instead validates a traced avedsweep run: the
// per-point reuse counters carried on sweep.point events (the numbers
// the -progress lines print) must sum to the registry's core.warm_reuse
// and core.frontier_reuse counters and match the per-hit warm.reuse /
// frontier.reuse event multiplicities; the phase histograms are checked
// against the trace the same way as in solve mode.
//
// With -prom it lints a Prometheus text exposition (as served by
// /metrics?format=prom or written by -metrics with a .prom path):
// every sample must belong to a family with HELP and TYPE lines,
// values must parse, histogram buckets must be cumulative
// (non-decreasing in le order) and end in an le="+Inf" bucket equal to
// the family's _count.
//
// Usage:
//
//	go run scripts/check_metrics.go metrics.json trace.jsonl solution.json
//	go run scripts/check_metrics.go -sweep metrics.json trace.jsonl
//	go run scripts/check_metrics.go -prom metrics.prom
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type snapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histograms"`
}

type solution struct {
	Candidates  int64 `json:"candidatesGenerated"`
	CostPruned  int64 `json:"costPruned"`
	BoundPruned int64 `json:"boundPruned"`
	Evaluations int64 `json:"availabilityEvaluations"`
	CacheHits   int64 `json:"evalCacheHits"`
	WarmReuse   int64 `json:"warmStartReuse"`
	// PhaseNanos is the -timings wall-clock attribution; "bind" is
	// CLI-timed (no trace events), the rest must match the trace sums.
	PhaseNanos map[string]int64 `json:"phaseNanos"`
}

// trace aggregates one JSONL search trace: event multiplicities plus
// the reuse totals the sweep.point events carry.
type trace struct {
	events map[string]int64
	// pointWarm / pointFrontier sum the wreuse / freuse fields over the
	// sweep.point events — the per-cell reuse the -progress lines show.
	pointWarm     int64
	pointFrontier int64
	// phaseNs sums phase.end DurNs per phase; phaseEnds counts the
	// events. evalMissNs sums eval.miss DurNs — the engine wall time,
	// attributed to the cross-cutting "eval" phase.
	phaseNs    map[string]int64
	phaseEnds  map[string]int64
	evalMissNs int64
}

func main() {
	args := os.Args[1:]
	var sweepMode, promMode bool
	if len(args) > 0 {
		switch args[0] {
		case "-sweep":
			sweepMode, args = true, args[1:]
		case "-prom":
			promMode, args = true, args[1:]
		}
	}
	switch {
	case promMode && len(args) == 1,
		sweepMode && len(args) == 2,
		!promMode && !sweepMode && len(args) == 3:
	default:
		fmt.Fprintln(os.Stderr, "usage: check_metrics metrics.json trace.jsonl solution.json")
		fmt.Fprintln(os.Stderr, "       check_metrics -sweep metrics.json trace.jsonl")
		fmt.Fprintln(os.Stderr, "       check_metrics -prom metrics.prom")
		os.Exit(2)
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var families int
	var snap snapshot
	var tr trace
	var sol solution
	switch {
	case promMode:
		families = lintProm(fail, args[0])
	case sweepMode:
		readJSON(args[0], &snap)
		tr = readTrace(args[1])
		checkSweep(fail, snap, tr)
	default:
		readJSON(args[0], &snap)
		tr = readTrace(args[1])
		readJSON(args[2], &sol)
		checkSolve(fail, snap, tr, sol)
	}

	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "check_metrics:", e)
		}
		os.Exit(1)
	}
	switch {
	case promMode:
		fmt.Printf("check_metrics: prom ok (%d metric families)\n", families)
	case sweepMode:
		fmt.Printf("check_metrics: sweep ok (%d points, %d warm-seed replays, %d frontier reuses, %d trace events)\n",
			tr.events["sweep.point"], tr.pointWarm, tr.pointFrontier, total(tr.events))
	default:
		fmt.Printf("check_metrics: ok (%d candidates, %d evaluations, %d trace events)\n",
			sol.Candidates, sol.Evaluations, total(tr.events))
	}
}

// checkSolve validates one single-solve `aved` run.
func checkSolve(fail func(string, ...any), snap snapshot, tr trace, sol solution) {
	events := tr.events
	// Metrics schema: the counters and timing histogram a single
	// completed solve must flush.
	for _, key := range []string{
		"core.solves", "core.candidates", "core.cost_pruned",
		"core.bound_pruned", "core.warm_reuse", "core.frontier_reuse",
		"core.evaluations", "core.eval_cache_hits",
		"avail.memo.hits", "avail.memo.solves",
	} {
		if _, ok := snap.Counters[key]; !ok {
			fail("metrics: counter %q missing", key)
		}
	}
	if n := snap.Counters["core.solves"]; n != 1 {
		fail("metrics: core.solves = %d, want 1", n)
	}
	if h, ok := snap.Histograms["core.solve_ms"]; !ok {
		fail("metrics: histogram core.solve_ms missing")
	} else if h.Count != 1 {
		fail("metrics: core.solve_ms count = %d, want 1", h.Count)
	}

	// Trace shape: one search lifecycle, no errors.
	if n := events["search.start"]; n != 1 {
		fail("trace: %d search.start events, want 1", n)
	}
	if n := events["search.end"]; n != 1 {
		fail("trace: %d search.end events, want 1", n)
	}
	if n := events["search.error"]; n != 0 {
		fail("trace: %d search.error events, want 0", n)
	}

	// Cross-checks: trace multiplicities, metrics counters and the
	// solution report all describe the same search. FrontierReuse is
	// zero by contract on a plain solve (frontier sets exist only under
	// grid-aware SolveCell scheduling), so its row pins exactly that.
	cross := []struct {
		ev      string
		counter string
		stat    int64
	}{
		{"cand.gen", "core.candidates", sol.Candidates},
		{"cand.prune", "core.cost_pruned", sol.CostPruned},
		// A whole-option subtree prune emits one bound.prune event and
		// counts one bound-pruned candidate, so the identity holds for
		// per-candidate and per-subtree prunes alike.
		{"bound.prune", "core.bound_pruned", sol.BoundPruned},
		{"eval.miss", "core.evaluations", sol.Evaluations},
		{"eval.hit", "core.eval_cache_hits", sol.CacheHits},
		{"warm.reuse", "core.warm_reuse", sol.WarmReuse},
		{"frontier.reuse", "core.frontier_reuse", 0},
	}
	for _, c := range cross {
		if got := events[c.ev]; got != c.stat {
			fail("trace: %d %s events but the solution reports %d", got, c.ev, c.stat)
		}
		if got := snap.Counters[c.counter]; got != c.stat {
			fail("metrics: %s = %d but the solution reports %d", c.counter, got, c.stat)
		}
	}
	if sol.Candidates == 0 {
		fail("solution: zero candidates generated — the search did not run")
	}

	// Phase attribution: the solution's phaseNanos (a -timings run) must
	// equal the trace's phase.end / eval.miss DurNs sums exactly —
	// they are the same int64 nanoseconds accumulated on two paths.
	// "bind" is stamped by the CLI around model loading, outside the
	// solver, so it has no trace events; everything else must match.
	if len(sol.PhaseNanos) == 0 {
		fail("solution: no phaseNanos — run aved with -timings")
	}
	for name, ns := range sol.PhaseNanos {
		if name == "bind" {
			continue
		}
		var traced int64
		if name == "eval" {
			traced = tr.evalMissNs
		} else {
			traced = tr.phaseNs[name]
		}
		if traced != ns {
			fail("trace: phase %q sums to %d ns but the solution reports %d", name, traced, ns)
		}
	}
	for name, ns := range tr.phaseNs {
		if _, ok := sol.PhaseNanos[name]; !ok && ns != 0 {
			fail("solution: phase %q missing from phaseNanos but the trace spent %d ns in it", name, ns)
		}
	}
	checkPhaseHistograms(fail, snap, tr)
}

// checkPhaseHistograms pins the solve.phase.* histograms to the trace:
// each bracketed phase's histogram must hold exactly one observation
// per phase.end event, the eval histogram exactly one per eval.miss,
// and every sum (milliseconds) must match the traced nanoseconds up to
// float accumulation error.
func checkPhaseHistograms(fail func(string, ...any), snap snapshot, tr trace) {
	check := func(phase string, count, ns int64) {
		key := "solve.phase." + phase
		h, ok := snap.Histograms[key]
		if !ok {
			if count != 0 {
				fail("metrics: histogram %s missing but the trace has %d observations of it", key, count)
			}
			return
		}
		if h.Count != count {
			fail("metrics: %s count = %d but the trace has %d", key, h.Count, count)
		}
		wantMS := float64(ns) / 1e6
		if !closeEnough(h.Sum, wantMS) {
			fail("metrics: %s sum = %g ms but the trace sums to %g ms", key, h.Sum, wantMS)
		}
	}
	for phase, count := range tr.phaseEnds {
		check(phase, count, tr.phaseNs[phase])
	}
	check("eval", tr.events["eval.miss"], tr.evalMissNs)
}

// closeEnough compares a histogram's float64 millisecond sum against
// the exact nanosecond-derived value, tolerating the per-observation
// rounding the float accumulation introduces.
func closeEnough(got, want float64) bool {
	diff := math.Abs(got - want)
	return diff <= 1e-6 || diff <= 1e-9*math.Max(math.Abs(got), math.Abs(want))
}

// checkSweep validates one traced grid-aware avedsweep run: the reuse
// totals on the sweep.point events (what -progress prints per cell)
// must agree with both the per-hit trace events and the registry
// counters the solver bumps.
func checkSweep(fail func(string, ...any), snap snapshot, tr trace) {
	events := tr.events
	points := events["sweep.point"]
	if points == 0 {
		fail("trace: no sweep.point events — the sweep did not run")
	}
	if got := snap.Counters["sweep.points"]; got != points {
		fail("metrics: sweep.points = %d but the trace has %d sweep.point events", got, points)
	}
	cross := []struct {
		name    string
		ev      string
		counter string
		points  int64
	}{
		{"warm-seed replays", "warm.reuse", "core.warm_reuse", tr.pointWarm},
		{"frontier reuses", "frontier.reuse", "core.frontier_reuse", tr.pointFrontier},
	}
	for _, c := range cross {
		if got := events[c.ev]; got != c.points {
			fail("trace: %d %s events but the sweep.point events carry %d %s",
				got, c.ev, c.points, c.name)
		}
		if got := snap.Counters[c.counter]; got != c.points {
			fail("metrics: %s = %d but the sweep.point events carry %d %s",
				c.counter, got, c.points, c.name)
		}
	}
	// Non-vacuity: a grid-aware budget chain must actually replay
	// warm-seeded work, or the check proves nothing.
	if tr.pointWarm == 0 {
		fail("trace: the sweep never replayed a warm-seeded entry — grid-aware scheduling is off")
	}
	// The per-cell solvers share the registry, so the phase histograms
	// must aggregate exactly the phase.end / eval.miss spans the trace
	// recorded across all cells.
	checkPhaseHistograms(fail, snap, tr)
	if total(tr.phaseEnds) == 0 {
		fail("trace: no phase.end events — phase timing is off despite tracing")
	}
}

// lintProm validates a Prometheus text exposition (format 0.0.4) and
// returns the family count: every sample must belong to a family with
// HELP and TYPE lines and a legal metric name, every value must parse,
// and each histogram's buckets must be cumulative in non-decreasing le
// order, ending in an le="+Inf" bucket that equals the family _count.
func lintProm(fail func(string, ...any), path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %v\n", err)
		os.Exit(1)
	}
	type sample struct {
		name, labels, value string
		line                int
	}
	help := make(map[string]bool)
	typ := make(map[string]string)
	var samples []sample
	for i, raw := range strings.Split(string(data), "\n") {
		line := i + 1
		switch {
		case raw == "":
		case strings.HasPrefix(raw, "# HELP "):
			name, _, _ := strings.Cut(raw[len("# HELP "):], " ")
			checkPromName(fail, name, line)
			help[name] = true
		case strings.HasPrefix(raw, "# TYPE "):
			name, kind, _ := strings.Cut(raw[len("# TYPE "):], " ")
			checkPromName(fail, name, line)
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				fail("prom:%d: unknown TYPE %q for %s", line, kind, name)
			}
			if _, dup := typ[name]; dup {
				fail("prom:%d: duplicate TYPE line for %s", line, name)
			}
			typ[name] = kind
		case strings.HasPrefix(raw, "#"):
			// Other comments are legal and ignored.
		default:
			s := sample{line: line}
			rest := raw
			if br := strings.IndexByte(raw, '{'); br >= 0 {
				end := strings.IndexByte(raw, '}')
				if end < br {
					fail("prom:%d: unterminated label set", line)
					continue
				}
				s.name, s.labels, rest = raw[:br], raw[br+1:end], raw[end+1:]
			} else if sp := strings.IndexByte(raw, ' '); sp >= 0 {
				s.name, rest = raw[:sp], raw[sp:]
			} else {
				fail("prom:%d: sample without a value", line)
				continue
			}
			s.value = strings.TrimSpace(rest)
			checkPromName(fail, s.name, line)
			if _, err := strconv.ParseFloat(s.value, 64); err != nil {
				fail("prom:%d: value %q does not parse: %v", line, s.value, err)
			}
			samples = append(samples, s)
		}
	}

	// Resolve each sample to its family: histogram series drop their
	// _bucket/_sum/_count suffix; everything else is its own family.
	famOf := func(n string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(n, suf); ok && typ[base] == "histogram" {
				return base
			}
		}
		return n
	}
	series := make(map[string][]sample)
	for _, s := range samples {
		fam := famOf(s.name)
		series[fam] = append(series[fam], s)
		if !help[fam] {
			fail("prom:%d: sample %s has no # HELP %s line", s.line, s.name, fam)
			help[fam] = true // report once per family
		}
		if typ[fam] == "" {
			fail("prom:%d: sample %s has no # TYPE %s line", s.line, s.name, fam)
			typ[fam] = "?"
		}
	}

	fams := make([]string, 0, len(typ))
	for name := range typ {
		fams = append(fams, name)
	}
	sort.Strings(fams)
	for _, name := range fams {
		ss := series[name]
		if len(ss) == 0 {
			fail("prom: family %s has TYPE but no samples", name)
			continue
		}
		if typ[name] != "histogram" {
			continue
		}
		// Histogram shape: cumulative buckets in non-decreasing le order,
		// closed by +Inf == _count, with exactly one _sum and _count.
		var lastLe, lastCum float64
		var infCum, count float64
		var sawInf, sawSum, sawCount bool
		first := true
		for _, s := range ss {
			v, _ := strconv.ParseFloat(s.value, 64)
			switch {
			case s.name == name+"_sum":
				sawSum = true
			case s.name == name+"_count":
				sawCount = true
				count = v
			case s.name == name+"_bucket":
				le, ok := strings.CutPrefix(s.labels, `le="`)
				le, ok2 := strings.CutSuffix(le, `"`)
				if !ok || !ok2 {
					fail("prom:%d: %s_bucket without an le label (got %q)", s.line, name, s.labels)
					continue
				}
				if sawInf {
					fail("prom:%d: %s_bucket after the +Inf bucket", s.line, name)
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					fail("prom:%d: %s_bucket le=%q does not parse", s.line, name, le)
					continue
				}
				if !first && bound < lastLe {
					fail("prom:%d: %s buckets out of le order (%g after %g)", s.line, name, bound, lastLe)
				}
				if !first && v < lastCum {
					fail("prom:%d: %s buckets not cumulative (%g after %g)", s.line, name, v, lastCum)
				}
				lastLe, lastCum, first = bound, v, false
				if math.IsInf(bound, +1) {
					sawInf, infCum = true, v
				}
			default:
				fail("prom:%d: unexpected histogram series %s", s.line, s.name)
			}
		}
		switch {
		case !sawInf:
			fail("prom: histogram %s has no le=\"+Inf\" bucket", name)
		case !sawCount:
			fail("prom: histogram %s has no _count", name)
		case infCum != count:
			fail("prom: histogram %s +Inf bucket = %g but _count = %g", name, infCum, count)
		}
		if !sawSum {
			fail("prom: histogram %s has no _sum", name)
		}
	}
	if len(fams) == 0 {
		fail("prom: no metric families — empty exposition")
	}
	return len(fams)
}

// checkPromName enforces the metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* the exposition format requires.
func checkPromName(fail func(string, ...any), name string, line int) {
	ok := name != ""
	for i := 0; ok && i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			ok = false
		}
	}
	if !ok {
		fail("prom:%d: illegal metric name %q", line, name)
	}
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %s: %v\n", path, err)
		os.Exit(1)
	}
}

// readTrace counts trace events by type and accumulates the sweep.point
// reuse fields, failing on any line that is not a JSON object with an
// "ev" field.
func readTrace(path string) trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr := trace{
		events:    make(map[string]int64),
		phaseNs:   make(map[string]int64),
		phaseEnds: make(map[string]int64),
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var e struct {
			Ev            string `json:"ev"`
			Phase         string `json:"phase"`
			DurNs         int64  `json:"durns"`
			WarmReuse     int64  `json:"wreuse"`
			FrontierReuse int64  `json:"freuse"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Ev == "" {
			fmt.Fprintf(os.Stderr, "check_metrics: %s:%d: bad trace line: %v\n", path, line, err)
			os.Exit(1)
		}
		tr.events[e.Ev]++
		switch e.Ev {
		case "sweep.point":
			tr.pointWarm += e.WarmReuse
			tr.pointFrontier += e.FrontierReuse
		case "phase.end":
			if e.Phase == "" {
				fmt.Fprintf(os.Stderr, "check_metrics: %s:%d: phase.end without a phase\n", path, line)
				os.Exit(1)
			}
			tr.phaseNs[e.Phase] += e.DurNs
			tr.phaseEnds[e.Phase]++
		case "eval.miss":
			tr.evalMissNs += e.DurNs
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %s: %v\n", path, err)
		os.Exit(1)
	}
	return tr
}

func total(events map[string]int64) int64 {
	var n int64
	for _, c := range events {
		n += c
	}
	return n
}
