//go:build ignore

// Command check_metrics validates the observability outputs of one
// traced search — the CI gate behind scripts/check_metrics.sh. It
// cross-checks three artifacts written by the same `aved` run:
//
//   - the -metrics JSON snapshot (counter keys, histogram counts),
//   - the -trace JSONL search trace (event multiplicities),
//   - the -json solution report (the solver's own stats),
//
// and fails when a required key is missing or any pair disagrees.
//
// Usage: go run scripts/check_metrics.go metrics.json trace.jsonl solution.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

type snapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histograms"`
}

type solution struct {
	Candidates  int64 `json:"candidatesGenerated"`
	CostPruned  int64 `json:"costPruned"`
	BoundPruned int64 `json:"boundPruned"`
	Evaluations int64 `json:"availabilityEvaluations"`
	CacheHits   int64 `json:"evalCacheHits"`
	WarmReuse   int64 `json:"warmStartReuse"`
}

func main() {
	if len(os.Args) != 4 {
		fmt.Fprintln(os.Stderr, "usage: check_metrics metrics.json trace.jsonl solution.json")
		os.Exit(2)
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var snap snapshot
	readJSON(os.Args[1], &snap)
	var sol solution
	readJSON(os.Args[3], &sol)
	events := readTrace(os.Args[2])

	// Metrics schema: the counters and timing histogram a single
	// completed solve must flush.
	for _, key := range []string{
		"core.solves", "core.candidates", "core.cost_pruned",
		"core.bound_pruned", "core.warm_reuse",
		"core.evaluations", "core.eval_cache_hits",
		"avail.memo.hits", "avail.memo.solves",
	} {
		if _, ok := snap.Counters[key]; !ok {
			fail("metrics: counter %q missing", key)
		}
	}
	if n := snap.Counters["core.solves"]; n != 1 {
		fail("metrics: core.solves = %d, want 1", n)
	}
	if h, ok := snap.Histograms["core.solve_ms"]; !ok {
		fail("metrics: histogram core.solve_ms missing")
	} else if h.Count != 1 {
		fail("metrics: core.solve_ms count = %d, want 1", h.Count)
	}

	// Trace shape: one search lifecycle, no errors.
	if n := events["search.start"]; n != 1 {
		fail("trace: %d search.start events, want 1", n)
	}
	if n := events["search.end"]; n != 1 {
		fail("trace: %d search.end events, want 1", n)
	}
	if n := events["search.error"]; n != 0 {
		fail("trace: %d search.error events, want 0", n)
	}

	// Cross-checks: trace multiplicities, metrics counters and the
	// solution report all describe the same search.
	cross := []struct {
		ev      string
		counter string
		stat    int64
	}{
		{"cand.gen", "core.candidates", sol.Candidates},
		{"cand.prune", "core.cost_pruned", sol.CostPruned},
		// A whole-option subtree prune emits one bound.prune event and
		// counts one bound-pruned candidate, so the identity holds for
		// per-candidate and per-subtree prunes alike.
		{"bound.prune", "core.bound_pruned", sol.BoundPruned},
		{"eval.miss", "core.evaluations", sol.Evaluations},
		{"eval.hit", "core.eval_cache_hits", sol.CacheHits},
		{"warm.reuse", "core.warm_reuse", sol.WarmReuse},
	}
	for _, c := range cross {
		if got := events[c.ev]; got != c.stat {
			fail("trace: %d %s events but the solution reports %d", got, c.ev, c.stat)
		}
		if got := snap.Counters[c.counter]; got != c.stat {
			fail("metrics: %s = %d but the solution reports %d", c.counter, got, c.stat)
		}
	}
	if sol.Candidates == 0 {
		fail("solution: zero candidates generated — the search did not run")
	}

	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "check_metrics:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("check_metrics: ok (%d candidates, %d evaluations, %d trace events)\n",
		sol.Candidates, sol.Evaluations, total(events))
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %s: %v\n", path, err)
		os.Exit(1)
	}
}

// readTrace counts trace events by type, failing on any line that is
// not a JSON object with an "ev" field.
func readTrace(path string) map[string]int64 {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	events := make(map[string]int64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var e struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Ev == "" {
			fmt.Fprintf(os.Stderr, "check_metrics: %s:%d: bad trace line: %v\n", path, line, err)
			os.Exit(1)
		}
		events[e.Ev]++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "check_metrics: %s: %v\n", path, err)
		os.Exit(1)
	}
	return events
}

func total(events map[string]int64) int64 {
	var n int64
	for _, c := range events {
		n += c
	}
	return n
}
