#!/bin/sh
# Regenerates results/BENCH_bnb.json: the branch-and-bound search
# effort record — per-scenario candidates / prunes / evaluations /
# cache hits under the exhaustive walk vs branch-and-bound (the run
# fails unless both modes return identical designs), plus the
# warm-start what-if re-solve comparison. Counters are from sequential
# (Workers=1) solves, so they are exactly reproducible on any host.
# Run from the repository root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
if [ "$(nproc)" = 1 ]; then
    echo "WARNING: single-CPU host; the JSON will carry single_cpu=true" >&2
fi
echo "benchmarking on $(nproc) CPU(s)"
go run ./cmd/avedbench -mode bnb -o results/BENCH_bnb.json
echo "wrote results/BENCH_bnb.json"
