#!/bin/sh
# Regenerates results/BENCH_sim.json: the Monte-Carlo simulator fast
# path on the e-commerce optimal design — fixed-budget sequential vs
# pooled replication throughput, allocations per replication, and the
# adaptive-precision controller's budget spend plus its cross-validation
# distance from the analytic Markov engine. Run from the repository
# root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
go run ./cmd/avedbench -mode sim -o results/BENCH_sim.json
echo "wrote results/BENCH_sim.json"
