#!/bin/sh
# Regenerates results/BENCH_sim.json: the Monte-Carlo simulator fast
# path on the e-commerce optimal design — fixed-budget sequential vs
# pooled replication throughput, allocations per replication, and the
# adaptive-precision controller's budget spend plus its cross-validation
# distance from the analytic Markov engine. Run from the repository
# root.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
if [ "$(nproc)" = 1 ]; then
    echo "WARNING: single-CPU host; pooled-vs-sequential ratios will measure" \
        "scheduling overhead and the JSON will carry single_cpu=true" >&2
fi
go run ./cmd/avedbench -mode sim -o results/BENCH_sim.json
echo "wrote results/BENCH_sim.json"
