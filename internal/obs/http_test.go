package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.solves").Add(2)
	d, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(getBody(t, base+"/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if snap.Counters["core.solves"] != 2 {
		t.Errorf("/metrics counters = %v", snap.Counters)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(getBody(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["aved"]; !ok {
		t.Error("/debug/vars missing the aved registry snapshot")
	}

	if b := getBody(t, base+"/debug/pprof/cmdline"); len(b) == 0 {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

// TestDebugServerCloseDeregisters pins the Close contract: closing an
// EnsureServe-managed server removes its address registration, so the
// next EnsureServe on the same address binds a fresh server instead of
// handing back the closed one (which would then serve nothing).
func TestDebugServerCloseDeregisters(t *testing.T) {
	d1, err := EnsureServe("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Counter("fresh").Add(7)
	d2, err := EnsureServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("EnsureServe after Close: %v", err)
	}
	defer d2.Close()
	if d1 == d2 {
		t.Fatal("EnsureServe returned the closed server")
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(getBody(t, "http://"+d2.Addr()+"/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["fresh"] != 7 {
		t.Errorf("replacement server serves the wrong registry: %v", snap.Counters)
	}
}

func TestEnsureServeReusesAddress(t *testing.T) {
	r1 := NewRegistry()
	d1, err := EnsureServe("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	r2 := NewRegistry()
	r2.Counter("later").Add(5)
	d2, err := EnsureServe("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("EnsureServe bound a second server for the same address")
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(getBody(t, "http://"+d1.Addr()+"/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["later"] != 5 {
		t.Errorf("ensure did not re-point /metrics: %v", snap.Counters)
	}
}
