package obs

import "time"

// Span is one in-flight timed region. It is a plain value — starting
// and stopping a span never allocates — and the zero Span is disabled:
// Stop returns 0 and observes nothing. Call sites thread one code path
// and pay only a monotonic-clock read when timing is on:
//
//	sp := obs.StartSpan(hist) // hist may be nil
//	...work...
//	ns := sp.Stop()
//
// The convention throughout Aved: histograms observe milliseconds
// (matching the log-bucket layout's useful range), while raw
// nanoseconds flow to trace events (Event.DurNs) and Stats.PhaseNanos
// so integer sums cross-check exactly.
type Span struct {
	start time.Time
	hist  *Histogram
}

// StartSpan opens a span that feeds h on Stop. h may be nil — the span
// still measures and Stop still returns the elapsed nanoseconds.
func StartSpan(h *Histogram) Span {
	return Span{start: time.Now(), hist: h}
}

// Stop closes the span: it observes the elapsed milliseconds on the
// attached histogram (when any) and returns the elapsed nanoseconds.
// On the zero Span it is a no-op returning 0.
func (s Span) Stop() int64 {
	if s.start.IsZero() {
		return 0
	}
	ns := time.Since(s.start).Nanoseconds()
	if s.hist != nil {
		s.hist.Observe(DurMS(ns))
	}
	return ns
}

// DurMS converts span nanoseconds to the milliseconds histograms and
// human-readable sinks use.
func DurMS(ns int64) float64 { return float64(ns) / 1e6 }
