package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestJSONLConcurrentEmitNoPartialLines is the sink half of the trace
// determinism satellite: many goroutines emitting concurrently must
// produce a file of complete, parseable lines — no interleaving, no
// truncation — and every emitted event must be present exactly once.
func TestJSONLConcurrentEmitNoPartialLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := NewJSONLFileTracer(path)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Event{
					Ev:   EvCandGen,
					Tier: fmt.Sprintf("tier%d", g),
					N:    i + 1,
					// A long field makes torn writes likely if lines
					// were ever written in pieces.
					Res: strings.Repeat("x", 200),
				})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	seen := map[string]int{}
	lines := 0
	for sc.Scan() {
		lines++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if e.Ev != EvCandGen || len(e.Res) != 200 {
			t.Fatalf("line %d corrupted: %+v", lines, e)
		}
		seen[fmt.Sprintf("%s/%d", e.Tier, e.N)]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != goroutines*each {
		t.Fatalf("wrote %d lines, want %d", lines, goroutines*each)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("event %s appears %d times", k, n)
		}
	}
}

func TestJSONLDeterministicWithoutClock(t *testing.T) {
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		tr := NewJSONLTracer(w).WithClock(nil)
		tr.Emit(Event{Ev: EvSearchStart, Service: "svc", Load: 1000})
		tr.Emit(Event{Ev: EvSearchEnd, Cost: 28320})
	}
	if a.String() != b.String() {
		t.Errorf("clockless output not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if strings.Contains(a.String(), `"t"`) {
		t.Errorf("clockless output carries timestamps: %s", a.String())
	}
}

func TestJSONLStampsTime(t *testing.T) {
	var buf bytes.Buffer
	NewJSONLTracer(&buf).Emit(Event{Ev: EvSearchStart})
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.T == 0 {
		t.Error("default tracer left T = 0")
	}
}

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils should be nil")
	}
	var a, b CollectTracer
	if got := Tee(nil, &a); got != &a {
		t.Error("single-tracer Tee should return it unchanged")
	}
	Tee(&a, &b).Emit(Event{Ev: EvCandGen})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee delivered %d/%d events, want 1/1", a.Len(), b.Len())
	}
}

func TestCollectTracerCopies(t *testing.T) {
	var c CollectTracer
	c.Emit(Event{Ev: EvCandGen, N: 1})
	got := c.Events()
	got[0].N = 99
	if c.Events()[0].N != 1 {
		t.Error("Events() exposed internal storage")
	}
}
