package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// JSONLTracer writes one JSON object per event, newline-delimited.
// Events marshal outside the lock; each line lands in a single Write
// under the lock, so concurrent emitters can never interleave partial
// lines. Write errors latch: the first one is kept (see Err) and later
// emissions become no-ops, so a full disk does not spam the solver.
type JSONLTracer struct {
	clock func() int64 // nil: stamp T = 0 (deterministic output)

	mu     sync.Mutex
	w      io.Writer
	closer io.Closer // optional; set by NewJSONLFileTracer
	flush  func() error
	err    error
}

// NewJSONLTracer wraps an io.Writer. The writer needs no internal
// locking; the tracer serialises access. Events are stamped with
// time.Now; see WithClock.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: w, clock: func() int64 { return time.Now().UnixNano() }}
}

// WithClock replaces the timestamp source and returns the tracer. A nil
// clock leaves T zero on every event — byte-deterministic output for
// tests and goldens.
func (t *JSONLTracer) WithClock(clock func() int64) *JSONLTracer {
	t.clock = clock
	return t
}

// NewJSONLFileTracer creates (truncating) a trace file with a buffered
// writer. Close flushes and closes the file.
func NewJSONLFileTracer(path string) (*JSONLTracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	t := NewJSONLTracer(bw)
	t.closer = f
	t.flush = bw.Flush
	return t, nil
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(e Event) {
	if c := t.clock; c != nil {
		e.T = c()
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.mu.Lock()
		if t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	b = append(b, '\n')
	t.mu.Lock()
	if t.err == nil {
		if _, werr := t.w.Write(b); werr != nil {
			t.err = werr
		}
	}
	t.mu.Unlock()
}

// Err reports the first write or marshal error, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes buffered output and closes the underlying file when the
// tracer owns one. It reports the latched emission error if flushing
// succeeded, so callers see exactly one failure cause.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.flush != nil {
		if err := t.flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	return t.err
}
