package obs

import (
	"testing"
	"time"
)

func TestSpanObservesAndReturnsNanos(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t")
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	ns := sp.Stop()
	if ns <= 0 {
		t.Fatalf("Stop returned %d ns after sleeping", ns)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["t"]
	if hs.Count != 1 {
		t.Fatalf("histogram count = %d, want 1", hs.Count)
	}
	if want := DurMS(ns); hs.Sum != want {
		t.Errorf("histogram sum = %g ms, want %g (the ms the span returned as ns)", hs.Sum, want)
	}
}

func TestSpanNilHistogramStillMeasures(t *testing.T) {
	sp := StartSpan(nil)
	if ns := sp.Stop(); ns < 0 {
		t.Errorf("nil-histogram span returned %d ns", ns)
	}
}

// TestSpanZeroValueDisabled pins the disabled contract the solver's
// un-instrumented path relies on: the zero Span stops to 0, observes
// nothing, and none of it allocates.
func TestSpanZeroValueDisabled(t *testing.T) {
	var sp Span
	if ns := sp.Stop(); ns != 0 {
		t.Errorf("zero Span stopped to %d ns, want 0", ns)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var s Span
		if s.Stop() != 0 {
			t.Fatal("zero Span measured something")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %v per op, want 0", allocs)
	}
	// The enabled path is allocation-free too — Span is a plain value.
	h := NewRegistry().Histogram("t")
	allocs = testing.AllocsPerRun(200, func() {
		StartSpan(h).Stop()
	})
	if allocs != 0 {
		t.Errorf("enabled span path allocates %v per op, want 0", allocs)
	}
}
