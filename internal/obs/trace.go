// Package obs is Aved's observability layer: a concurrent metrics
// registry (counters, gauges, log-bucketed histograms), a structured
// trace facility emitting typed search events, and optional runtime
// debug endpoints (net/http/pprof, expvar, a /metrics JSON snapshot).
//
// The package is dependency-light by design — standard library only —
// so every internal layer (core, avail, sim, sweep, sensitivity) can
// import it without cycles. Instrumentation is off by default and free
// when off: hot paths guard every emission behind a nil check, the
// registry's hot-path increments are single atomic adds, and the
// solver's disabled path is pinned at zero allocations by tests in the
// instrumented packages.
package obs

import "sync"

// Event types, forming the search-trace taxonomy. Names are dotted
// "<subsystem>.<what>" strings so JSONL consumers can filter on
// prefixes.
const (
	// EvSearchStart opens one Solver.Solve: service, requirement kind
	// and the requirement values.
	EvSearchStart = "search.start"
	// EvSearchEnd closes a successful solve: the winning cost, the
	// achieved downtime or job time, the final search counters and the
	// wall-clock milliseconds.
	EvSearchEnd = "search.end"
	// EvSearchError closes a failed solve (infeasible included).
	EvSearchError = "search.error"
	// EvPhaseStart/EvPhaseEnd bracket one solver phase ("tier-search",
	// "frontier", "combine", "job-search"); the end event carries the
	// phase's elapsed milliseconds.
	EvPhaseStart = "phase.start"
	EvPhaseEnd   = "phase.end"
	// EvTierDone reports one tier finishing within a phase, with the
	// tier's own elapsed milliseconds.
	EvTierDone = "tier.done"
	// EvCandGen is one complete candidate design generated (tier,
	// resource, counts, cost).
	EvCandGen = "cand.gen"
	// EvCandPrune is a candidate rejected on cost alone, without an
	// availability evaluation.
	EvCandPrune = "cand.prune"
	// EvBoundPrune is a candidate rejected by an admissible
	// branch-and-bound bound without an availability evaluation: the
	// sorted within-size tail dearer than the incumbent, or a whole
	// frontier size subtree over the combination cost threshold.
	EvBoundPrune = "bound.prune"
	// EvWarmReuse is an eval-cache hit on an entry computed by an
	// earlier solve on the same solver — the reuse a warm-started
	// what-if re-solve gets. Always paired with an eval.hit for the
	// same fingerprint.
	EvWarmReuse = "warm.reuse"
	// EvFrontierReuse is a whole tier frontier served from the chain's
	// frontier set instead of rebuilt (SolveCell with CellOptions
	// Frontiers): Tier names the tier, FP carries the frontier key, and
	// Evals counts the engine evaluations the replayed build originally
	// spent — the work this solve avoided.
	EvFrontierReuse = "frontier.reuse"
	// EvEvalMiss is an availability evaluation actually run by the
	// engine (an eval-cache miss); EvEvalHit is a request served from
	// the fingerprint cache. The final whole-design evaluation is
	// emitted as a miss with Tier "design".
	EvEvalMiss = "eval.miss"
	EvEvalHit  = "eval.hit"
	// EvIncumbent reports the per-option incumbent improving: a new
	// cheapest feasible candidate.
	EvIncumbent = "incumbent"
	// EvMemoHit/EvMemoSolve trace the Markov engine's mode-chain memo:
	// a solved birth–death chain replayed vs actually solved. The split
	// between hit and solve per key is scheduling-dependent (the memo
	// is not singleflight), so determinism tests filter "memo.*".
	EvMemoHit   = "memo.hit"
	EvMemoSolve = "memo.solve"
	// EvSimBatch is one Monte-Carlo replication batch folded into the
	// running estimate, with the cumulative replication count, mean and
	// 95% CI half-width after the fold.
	EvSimBatch = "sim.batch"
	// EvSweepPoint is one sweep cell solved (figs 6–8, sensitivity),
	// with its 1-based index, the grid total and the cell's outcome.
	EvSweepPoint = "sweep.point"
)

// Event is one trace record. It is a single flat struct across the
// whole taxonomy — only the fields relevant to an event's type are set,
// and JSON encoding drops the rest — so sinks stay schema-free and the
// hot-path construction is one stack value, no interfaces, no maps.
type Event struct {
	// T is the emission timestamp in Unix nanoseconds, stamped by the
	// sink (zero under sinks configured without a clock, and in
	// determinism tests).
	T  int64  `json:"t,omitempty"`
	Ev string `json:"ev"`

	// Solve identity (search.start / search.end / sweep.point).
	Service string  `json:"svc,omitempty"`
	Kind    string  `json:"kind,omitempty"` // "enterprise" or "job"
	Load    float64 `json:"load,omitempty"`
	Budget  float64 `json:"budget,omitempty"` // downtime budget, minutes
	ReqH    float64 `json:"reqh,omitempty"`   // job-time requirement, hours
	Factor  float64 `json:"factor,omitempty"` // sensitivity perturbation factor

	// Structural position.
	Phase string `json:"phase,omitempty"`
	Tier  string `json:"tier,omitempty"`
	Res   string `json:"res,omitempty"`

	// Candidate shape.
	N    int `json:"n,omitempty"`
	M    int `json:"m,omitempty"`
	S    int `json:"s,omitempty"`
	Warm int `json:"warm,omitempty"`

	// Outcomes.
	Cost float64 `json:"cost,omitempty"`
	Down float64 `json:"down,omitempty"` // downtime minutes
	JobH float64 `json:"jobh,omitempty"`
	FP   string  `json:"fp,omitempty"` // packed design fingerprint, hex

	// Simulation batches.
	Reps int     `json:"reps,omitempty"` // cumulative replications after the fold
	Mean float64 `json:"mean,omitempty"`
	HW95 float64 `json:"hw95,omitempty"`

	// Final counters (search.end).
	Candidates  int64 `json:"cand,omitempty"`
	Pruned      int64 `json:"pruned,omitempty"`
	Evals       int64 `json:"evals,omitempty"`
	CacheHits   int64 `json:"hits,omitempty"`
	BoundPruned int64 `json:"bpruned,omitempty"`
	WarmReuse   int64 `json:"wreuse,omitempty"`
	// FrontierReuse counts tier frontiers served from the frontier cache
	// (search.end; also the sweep totals carried on sweep.point events).
	FrontierReuse int64  `json:"freuse,omitempty"`
	MemoHits      uint64 `json:"memoh,omitempty"`
	MemoSolves    uint64 `json:"memos,omitempty"`
	SimReps       uint64 `json:"simreps,omitempty"`

	// Timing and progress. DurNs is the span's exact wall-clock
	// nanoseconds (phase.end, tier.done, eval.miss, sweep.point); MS is
	// the same duration in milliseconds, kept for human-readable sinks.
	// Consistency checks sum DurNs — integer nanoseconds add exactly,
	// so the totals match Stats.PhaseNanos without float tolerance.
	DurNs int64   `json:"durns,omitempty"`
	MS    float64 `json:"ms,omitempty"`
	Index int     `json:"i,omitempty"` // 1-based so omitempty never eats it
	Total int     `json:"total,omitempty"`
	Err   string  `json:"err,omitempty"`
}

// Tracer consumes trace events. Implementations must be safe for
// concurrent Emit calls: the solver fans instrumented work across its
// worker pool. A nil Tracer means tracing is off — every emission site
// guards with a nil check, so the disabled path does no Event
// construction at all.
type Tracer interface {
	Emit(e Event)
}

// CollectTracer accumulates events in memory, for tests and for
// in-process consumers (progress displays).
type CollectTracer struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (c *CollectTracer) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (c *CollectTracer) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len reports how many events have been emitted.
func (c *CollectTracer) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// multiTracer fans one emission to several sinks, in order.
type multiTracer []Tracer

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Tee combines tracers into one; nils are skipped. It returns nil when
// nothing remains — callers can pass the result straight to an Options
// field and keep the disabled path free — and the tracer itself when
// only one remains.
func Tee(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// FuncTracer adapts a function to the Tracer interface. The function
// must be safe for concurrent calls.
type FuncTracer func(e Event)

// Emit implements Tracer.
func (f FuncTracer) Emit(e Event) { f(e) }
