package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// DebugServer serves the runtime debug endpoints on a private mux:
//
//	/debug/pprof/...   net/http/pprof (profile, heap, trace, ...)
//	/debug/vars        expvar, including the "aved" registry snapshot
//	/metrics           the registry snapshot as indented JSON
//
// A private mux rather than http.DefaultServeMux keeps library users'
// global handler space untouched.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	reg atomic.Pointer[Registry]
	// key is the requested address this server is registered under in
	// the package-level servers map (empty for plain Serve calls, which
	// never register). Close deregisters by key so a later EnsureServe
	// on the same address starts a fresh server instead of handing back
	// a closed one.
	key string
}

// Addr reports the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// SetRegistry points /metrics (and the expvar export, when this server
// published it) at a different registry.
func (d *DebugServer) SetRegistry(reg *Registry) { d.reg.Store(reg) }

// Close stops the listener and, for EnsureServe-managed servers,
// removes the address registration so the next EnsureServe on the same
// address binds anew.
func (d *DebugServer) Close() error {
	if d.key != "" {
		serveMu.Lock()
		if servers[d.key] == d {
			delete(servers, d.key)
		}
		serveMu.Unlock()
	}
	return d.srv.Close()
}

// Serve starts a debug server on addr (e.g. ":6060" or "127.0.0.1:0")
// and returns once the listener is bound. reg may be nil; /metrics then
// serves an empty snapshot.
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	d := &DebugServer{ln: ln}
	d.reg.Store(reg)
	publishExpvar(d)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		WriteMetricsHTTP(w, r, d.reg.Load())
	})
	d.srv = &http.Server{Handler: mux}
	go func() { _ = d.srv.Serve(ln) }() // ErrServerClosed on Close; nothing to report
	return d, nil
}

// Process-wide debug-server bookkeeping: one server per address, and a
// single expvar publication (expvar.Publish panics on duplicates). The
// expvar snapshot follows the most recently started or ensured server.
var (
	serveMu      sync.Mutex
	servers      = map[string]*DebugServer{}
	expvarServer atomic.Pointer[DebugServer]
	expvarOnce   sync.Once
)

func publishExpvar(d *DebugServer) {
	expvarServer.Store(d)
	expvarOnce.Do(func() {
		expvar.Publish("aved", expvar.Func(func() any {
			if cur := expvarServer.Load(); cur != nil {
				return cur.reg.Load().Snapshot()
			}
			return Snapshot{}
		}))
	})
}

// EnsureServe starts a debug server on addr once per process; later
// calls for the same address re-point its /metrics at reg and return
// the running server. This is what lets every solver in a sweep pass
// the same -debug-addr without bind races.
func EnsureServe(addr string, reg *Registry) (*DebugServer, error) {
	serveMu.Lock()
	defer serveMu.Unlock()
	if d, ok := servers[addr]; ok {
		if reg != nil {
			d.SetRegistry(reg)
			publishExpvar(d)
		}
		return d, nil
	}
	d, err := Serve(addr, reg)
	if err != nil {
		return nil, err
	}
	d.key = addr
	servers[addr] = d
	return d, nil
}
