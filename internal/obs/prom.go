package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format (version 0.0.4): counters and function counters as
// `counter`, gauges as `gauge`, and the log-scale histograms as
// `histogram` with cumulative `le` buckets, a `+Inf` bucket equal to
// `_count`, and the exact `_sum`. Metric names are sanitized to the
// Prometheus charset ([a-zA-Z0-9_:], leading digit prefixed); the
// original dotted name is preserved in the HELP line, escaped per the
// format's rules. Families are emitted in sorted sanitized-name order,
// so scrapes of an unchanged registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePromSnapshot(w, r.Snapshot())
}

func writePromSnapshot(w io.Writer, s Snapshot) error {
	var b strings.Builder
	for _, name := range sortedPromKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s aved counter %s\n", pn, promEscapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, s.Counters[name])
	}
	for _, name := range sortedPromKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s aved gauge %s\n", pn, promEscapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedPromKeys(s.Histograms) {
		pn := promName(name)
		hs := s.Histograms[name]
		fmt.Fprintf(&b, "# HELP %s aved histogram %s\n", pn, promEscapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// The snapshot stores per-bucket counts for non-empty buckets
		// only; exposition wants cumulative counts over every listed
		// bound plus the +Inf catch-all.
		var cum int64
		for _, bk := range hs.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, promFloat(bk.Le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, hs.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, hs.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedPromKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a registry name onto the Prometheus metric-name charset:
// every byte outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// prefixed so the result matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscapeHelp escapes a HELP payload: backslash and newline, per the
// text-format rules.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a float the way Prometheus parsers expect: shortest
// round-trip decimal, with IEEE specials spelled +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1.7976931348623157e308:
		return "+Inf"
	case v < -1.7976931348623157e308:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// wantsPrometheus reports whether an HTTP metrics request negotiated
// the Prometheus text format instead of the JSON default: an explicit
// ?format=prom (or prometheus/text) wins, otherwise an Accept header
// naming text/plain (what prometheus scrapers send) without asking for
// JSON first.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	jsonAt := strings.Index(accept, "application/json")
	plainAt := strings.Index(accept, "text/plain")
	if plainAt < 0 {
		return false
	}
	return jsonAt < 0 || plainAt < jsonAt
}

// WriteMetricsHTTP serves a registry snapshot over HTTP in the
// negotiated format: indented JSON by default, Prometheus text
// exposition under ?format=prom or an Accept header preferring
// text/plain. Both the debug mux and avedserver's /metrics route
// through it, so the two endpoints negotiate identically.
func WriteMetricsHTTP(w http.ResponseWriter, r *http.Request, reg *Registry) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", PromContentType)
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := reg.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
