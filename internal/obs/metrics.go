package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The hot path is one
// atomic add; reads snapshot on demand.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are the caller's bug; the type does not
// police them to keep the hot path a bare atomic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reads the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a set-or-adjust metric carrying a float64 via atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load reads the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: fixed log-scale (power-of-two) buckets.
// Bucket i has upper bound 2^(histMinExp+i) and counts observations in
// [2^(histMinExp+i-1), 2^(histMinExp+i)); the first bucket also absorbs
// everything below its range and the last everything above. With
// histMinExp = -10 the bounds run from ~0.001 to ~1.7e10, covering
// sub-millisecond cache hits through multi-hour sweeps when
// observations are milliseconds.
const (
	histMinExp  = -10
	histBuckets = 44
)

// Histogram accumulates observations into fixed log-scale buckets.
// Observe is lock-free: a count add, a CAS-folded sum, and one bucket
// add.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// Observe folds one observation in.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf maps an observation to its bucket index. Non-positive and
// NaN observations land in bucket 0.
func bucketOf(v float64) int {
	if !(v > 0) {
		return 0
	}
	// Frexp: v = frac × 2^exp with frac in [0.5, 1), so 2^exp is the
	// bucket's exclusive upper bound (v = 2^k maps to bound 2^(k+1)).
	_, exp := math.Frexp(v)
	i := exp - histMinExp
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketBound reports bucket i's upper bound.
func BucketBound(i int) float64 {
	return math.Ldexp(1, histMinExp+i)
}

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"` // non-empty buckets only
}

// BucketSnapshot is one non-empty bucket: its upper bound and count.
type BucketSnapshot struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts,
// reporting each observation as its bucket's upper bound. Zero when
// empty.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(hs.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range hs.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	if n := len(hs.Buckets); n > 0 {
		return hs.Buckets[n-1].Le
	}
	return 0
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: BucketBound(i), Count: n})
		}
	}
	return hs
}

// Registry is a concurrent metrics registry. Get-or-create runs under a
// mutex and returns a pointer; subsequent increments on the pointer are
// plain atomics, so the hot path never touches the lock. RegisterFunc
// attaches read-on-snapshot counters, which is how engines expose
// counters they already maintain as internal atomics — no pointer
// swapping, no rerouting, race-free by construction.
//
// All methods are safe on a nil *Registry: get-or-create returns a
// shared discard instance and snapshots are empty, so call sites can
// thread an optional registry without guarding every touch.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

// Shared discard instances for nil registries. Concurrent garbage
// increments on them are harmless — nothing ever reads them.
var (
	discardCounter   Counter
	discardGauge     Gauge
	discardHistogram Histogram
)

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &discardCounter
	}
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &discardGauge
	}
	r.mu.Lock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &discardHistogram
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// RegisterFunc registers a counter read at snapshot time. Re-registering
// a name replaces the function (idempotent instrumentation: engines
// shared across solvers may register more than once).
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot is a registry's state at one instant, JSON-serializable and
// deterministic (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every metric. Function counters fold into Counters.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, fn := range funcs {
		s.Counters[k] = fn()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Load()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, v := range hists {
			s.Histograms[k] = v.snapshot()
		}
	}
	return s
}

// WriteJSON writes an indented snapshot to w — the -metrics file format
// and the /metrics endpoint body.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
