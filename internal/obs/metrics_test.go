package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("x")
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("x").Load(); got != goroutines*each {
		t.Errorf("counter = %d, want %d", got, goroutines*each)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Load(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 0.9, 1, 3, 1000, 0, -4, math.NaN()} {
		h.Observe(v)
	}
	hs := h.snapshot()
	if hs.Count != 8 {
		t.Fatalf("count = %d, want 8", hs.Count)
	}
	// Buckets are [2^(e-1), 2^e): 0.5 and 0.9 share le=1, the exact
	// power of two 1 lands in le=2, 3 in le=4; the three non-positive
	// observations land in the first bucket.
	want := map[float64]int64{BucketBound(0): 3, 1: 2, 2: 1, 4: 1, 1024: 1}
	for _, b := range hs.Buckets {
		if n, ok := want[b.Le]; ok && n != b.Count {
			t.Errorf("bucket le=%v count = %d, want %d", b.Le, b.Count, n)
		}
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != hs.Count {
		t.Errorf("bucket counts sum to %d, count is %d", total, hs.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	hs := h.snapshot()
	// Quantiles report bucket upper bounds: p50 of 1..100 sits in the
	// le=64 bucket, p99 in le=128.
	if q := hs.Quantile(0.5); q != 64 {
		t.Errorf("p50 = %v, want 64", q)
	}
	if q := hs.Quantile(0.99); q != 128 {
		t.Errorf("p99 = %v, want 128", q)
	}
}

func TestRegisterFuncFoldsIntoCounters(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.RegisterFunc("ext.hits", func() int64 { return n })
	n++
	s := r.Snapshot()
	if got := s.Counters["ext.hits"]; got != 42 {
		t.Errorf("func counter = %d, want 42", got)
	}
	// Re-registering replaces (idempotent engine instrumentation).
	r.RegisterFunc("ext.hits", func() int64 { return 7 })
	if got := r.Snapshot().Counters["ext.hits"]; got != 7 {
		t.Errorf("after re-register = %d, want 7", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(2)
	r.RegisterFunc("d", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.solves").Add(3)
	r.Gauge("sweep.total").Set(12)
	r.Histogram("core.solve_ms").Observe(5.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]float64           `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Counters["core.solves"] != 3 {
		t.Errorf("counters = %v", decoded.Counters)
	}
	if decoded.Gauges["sweep.total"] != 12 {
		t.Errorf("gauges = %v", decoded.Gauges)
	}
	h := decoded.Histograms["core.solve_ms"]
	if h.Count != 1 || h.Sum != 5.5 || len(h.Buckets) != 1 || h.Buckets[0].Le != 8 {
		t.Errorf("histogram = %+v", h)
	}
}
