package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promRegistry builds a registry exercising every family kind plus the
// name-sanitization and HELP-escaping paths.
func promRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("core.solves").Add(3)
	reg.Counter("9starts.with.digit").Add(1)
	reg.Counter(`weird\name`).Add(1)
	reg.Gauge("pool.depth").Set(2.5)
	h := reg.Histogram("solve.phase.eval")
	for _, v := range []float64{0.25, 1.5, 40, 4000} {
		h.Observe(v)
	}
	return reg
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := promRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Sanitized names with HELP carrying the original dotted name.
	for _, want := range []string{
		"# HELP core_solves aved counter core.solves\n",
		"# TYPE core_solves counter\n",
		"core_solves 3\n",
		"# TYPE _9starts_with_digit counter\n",
		`# HELP weird_name aved counter weird\\name` + "\n",
		"# TYPE pool_depth gauge\n",
		"pool_depth 2.5\n",
		"# TYPE solve_phase_eval histogram\n",
		"solve_phase_eval_count 4\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Histogram buckets must be cumulative, non-decreasing in le order,
	// and closed by +Inf == _count.
	var lastLe, lastCum float64
	first, infSeen := true, false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "solve_phase_eval_bucket{le=\"") {
			continue
		}
		rest := strings.TrimPrefix(line, "solve_phase_eval_bucket{le=\"")
		le, val, ok := strings.Cut(rest, "\"} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bucket bound %q: %v", le, err)
		}
		cum, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bucket count %q: %v", val, err)
		}
		if !first && (bound < lastLe || cum < lastCum) {
			t.Fatalf("buckets not monotonic at %q (after le=%g cum=%g)", line, lastLe, lastCum)
		}
		lastLe, lastCum, first = bound, cum, false
		if le == "+Inf" {
			infSeen = true
			if cum != 4 {
				t.Errorf("+Inf bucket = %g, want 4 (the observation count)", cum)
			}
		}
	}
	if first || !infSeen {
		t.Fatal("exposition has no solve_phase_eval buckets or no +Inf bucket")
	}

	// Unchanged registry → byte-identical scrape.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestWriteMetricsHTTPNegotiation(t *testing.T) {
	reg := promRegistry()
	cases := []struct {
		name, url, accept string
		wantProm          bool
	}{
		{"default is JSON", "/metrics", "", false},
		{"format=prom", "/metrics?format=prom", "", true},
		{"format=text", "/metrics?format=text", "", true},
		{"format=json wins over Accept", "/metrics?format=json", "text/plain", false},
		{"scraper Accept", "/metrics", "text/plain;version=0.0.4", true},
		{"json preferred in Accept", "/metrics", "application/json, text/plain", false},
		{"plain preferred in Accept", "/metrics", "text/plain, application/json", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", tc.url, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			WriteMetricsHTTP(rec, req, reg)
			body := rec.Body.String()
			ct := rec.Header().Get("Content-Type")
			if tc.wantProm {
				if ct != PromContentType {
					t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
				}
				if !strings.HasPrefix(body, "# HELP ") {
					t.Errorf("body is not a text exposition:\n%s", body)
				}
			} else {
				if ct != "application/json" {
					t.Errorf("Content-Type = %q, want application/json", ct)
				}
				if !strings.HasPrefix(strings.TrimSpace(body), "{") {
					t.Errorf("body is not JSON:\n%s", body)
				}
			}
		})
	}
}
