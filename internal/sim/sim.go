// Package sim implements a discrete-event Monte-Carlo availability
// simulator behind the same avail.Engine interface as the analytic
// Markov engine. It plays the role of the external availability
// evaluation engine (Avanto) that the paper's Aved interfaces to, and
// cross-validates the analytic model: the simulator evaluates a tier
// with all failure modes interleaved on a shared resource pool, with no
// per-mode decomposition.
//
// The simulator is built to sit inside the design-space search loop,
// where it is invoked once per candidate design: replications draw from
// an inline xoshiro256++ generator (rng.go), reuse pooled per-worker
// arenas and a typed event heap so the steady state allocates nothing,
// and an adaptive-precision controller (WithPrecision) stops
// replicating as soon as the confidence interval is tight enough for
// the search, instead of always burning the full budget.
//
// The package also provides SimulateRestart, a Monte-Carlo estimate of
// the restart law behind the paper's Eq. 1 (mean time to execute a loss
// window of useful work under failures), used to validate package
// jobtime.
package sim

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"aved/internal/avail"
	"aved/internal/obs"
	"aved/internal/par"
)

// DefaultBatch is the replication batch size the adaptive-precision
// controller uses when none is configured: replications run in
// deterministic batches of this size and the stopping rule is consulted
// between batches.
const DefaultBatch = 32

// Engine is a Monte-Carlo availability engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	seed    int64
	years   float64
	reps    int
	workers int // 0 means GOMAXPROCS
	// relErr, when positive, enables adaptive-precision replication:
	// stop as soon as the 95% CI half-width falls under relErr times
	// the running mean, capped by the reps budget.
	relErr float64
	batch  int // adaptive batch size; 0 means DefaultBatch
	// Lifetime work counters (see RepStats) and the optional trace sink
	// (see InstrumentObs). Maintained per batch, not per replication, so
	// the accounting stays invisible in replication throughput.
	nreps    atomic.Uint64
	nbatches atomic.Uint64
	tracer   atomic.Value // tracerBox
}

var _ avail.Engine = (*Engine)(nil)

// NewEngine builds a simulation engine running up to reps independent
// replications of years simulated years each, seeded deterministically.
// Replications run across a worker pool (GOMAXPROCS workers by default;
// see WithWorkers); each replication derives its own PRNG stream from
// (seed, replication index), so results are bit-identical at any
// parallelism. By default all reps replications run; WithPrecision
// makes reps a cap instead of a fixed budget.
func NewEngine(seed int64, years float64, reps int) (*Engine, error) {
	if years <= 0 {
		return nil, fmt.Errorf("sim: years must be positive, got %v", years)
	}
	if reps < 1 {
		return nil, fmt.Errorf("sim: need at least one replication, got %d", reps)
	}
	return &Engine{seed: seed, years: years, reps: reps}, nil
}

// WithWorkers sets the replication worker-pool size (0 restores the
// GOMAXPROCS default, 1 forces sequential execution) and returns the
// engine. The worker count never changes results, only wall-clock time.
func (e *Engine) WithWorkers(n int) *Engine {
	e.workers = n
	return e
}

// WithPrecision enables adaptive-precision replication and returns the
// engine: replications run in deterministic batches of batch (0 means
// DefaultBatch) and stop once the 95% confidence half-width falls under
// relErr times the running mean downtime, or once the reps budget is
// exhausted, whichever comes first. relErr <= 0 restores the fixed
// budget. The stopping rule folds batch statistics in replication-index
// order, so a given (seed, relErr, batch) stops at the same replication
// count at any worker count.
func (e *Engine) WithPrecision(relErr float64, batch int) *Engine {
	e.SetPrecision(relErr, batch)
	return e
}

// SetPrecision is WithPrecision without the chaining return; it exists
// so configuration layers holding the engine behind an interface (see
// core.Options) can tune precision structurally.
func (e *Engine) SetPrecision(relErr float64, batch int) {
	if relErr < 0 {
		relErr = 0
	}
	if batch < 0 {
		batch = 0
	}
	e.relErr = relErr
	e.batch = batch
}

// Precision reports the configured adaptive target and batch size
// (zeros when the engine runs its fixed budget).
func (e *Engine) Precision() (relErr float64, batch int) {
	return e.relErr, e.batch
}

// repSeed derives replication r's PRNG seed from the base seed with a
// SplitMix64 finalizer, so a replication's random stream depends only on
// (seed, r) — not on how many replications precede it or which worker
// runs it. This is what makes the Monte-Carlo paths deterministic under
// parallelism and keeps replication r's estimate stable as reps grows.
func repSeed(seed int64, r int) int64 {
	x := uint64(seed) + (uint64(r)+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return int64(x ^ (x >> 31))
}

// Stats summarises replication-level downtime estimates.
type Stats struct {
	MeanMinutes float64 // mean annual downtime across replications
	HalfWidth95 float64 // 95% confidence half-width of the mean (Student-t)
	// Replications is how many replications the estimate used: the full
	// budget under fixed replication, possibly fewer under WithPrecision.
	Replications int
}

// Evaluate implements avail.Engine. Tiers are independent in the model,
// so each simulates separately; tier availabilities compose in series
// exactly as in the analytic engine.
func (e *Engine) Evaluate(tms []avail.TierModel) (avail.Result, error) {
	res, _, err := e.EvaluateStatsCtx(context.Background(), tms)
	return res, err
}

// EvaluateCtx is Evaluate under a caller context: replication batches
// check ctx between batches (and each batch's worker pool once per
// replication claim), so a cancelled evaluation stops after at most one
// in-flight batch instead of burning the remaining budget. It is the
// entry point core.Solver uses when it holds a cancellable context.
func (e *Engine) EvaluateCtx(ctx context.Context, tms []avail.TierModel) (avail.Result, error) {
	res, _, err := e.EvaluateStatsCtx(ctx, tms)
	return res, err
}

// EvaluateStats is Evaluate with the per-tier replication statistics
// alongside the composed result, exposing how the adaptive controller
// spent its budget.
//
// Under WithPrecision a multi-tier evaluation targets the precision of
// the design-level downtime, not each tier's own mean: tiers whose
// downtime barely moves the composed figure would otherwise demand
// enormous replication counts to pin their tiny means to the same
// relative error. Batches are allocated greedily to whichever tier
// currently has the widest confidence interval (simulateDesignAdaptive)
// until the composed estimate meets the target.
func (e *Engine) EvaluateStats(tms []avail.TierModel) (avail.Result, []Stats, error) {
	return e.EvaluateStatsCtx(context.Background(), tms)
}

// EvaluateStatsCtx is EvaluateStats under a caller context; see
// EvaluateCtx for the cancellation granularity.
func (e *Engine) EvaluateStatsCtx(ctx context.Context, tms []avail.TierModel) (avail.Result, []Stats, error) {
	if len(tms) == 0 {
		return avail.Result{}, nil, fmt.Errorf("sim: no tiers to evaluate")
	}
	var (
		sts []Stats
		err error
	)
	if e.relErr > 0 && len(tms) > 1 {
		sts, err = e.simulateDesignAdaptive(ctx, tms)
	} else {
		sts = make([]Stats, len(tms))
		for i := range tms {
			if sts[i], err = e.SimulateTierCtx(ctx, &tms[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		return avail.Result{}, nil, err
	}
	res := avail.Result{Availability: 1}
	for i := range tms {
		downFrac := sts[i].MeanMinutes / avail.MinutesPerYear
		tr := avail.TierResult{
			Name:            tms[i].Name,
			Availability:    1 - downFrac,
			DowntimeMinutes: sts[i].MeanMinutes,
		}
		res.Tiers = append(res.Tiers, tr)
		res.Availability *= tr.Availability
	}
	res.DowntimeMinutes = (1 - res.Availability) * avail.MinutesPerYear
	return res, sts, nil
}

// simulateDesignAdaptive spreads the replication budget across tiers to
// pin the design-level downtime. Tier estimates are independent and the
// composed downtime is (to first order) their sum, so the combined 95%
// half-width is the root-sum-square of the tier half-widths; after a
// seed batch per tier, each round runs one more batch on the tier with
// the widest interval (lowest index on ties) until the combined
// half-width falls under relErr times the combined mean or every tier
// exhausts its reps budget. All decisions depend only on batch
// statistics folded in replication order, so the allocation — and the
// estimate — is bit-identical at any worker count.
func (e *Engine) simulateDesignAdaptive(ctx context.Context, tms []avail.TierModel) ([]Stats, error) {
	for i := range tms {
		if err := tms[i].Validate(); err != nil {
			return nil, err
		}
	}
	batch := e.batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	if batch > e.reps {
		batch = e.reps
	}
	done := ctx.Done()
	ws := make([]welford, len(tms))
	buf := make([]float64, batch)
	for i := range tms {
		if err := e.runBatch(ctx, &tms[i], &ws[i], batch, buf); err != nil {
			return nil, err
		}
	}
	for {
		// The allocation loop re-checks ctx every round: a round runs one
		// batch, so this is the same between-batch granularity as
		// SimulateTierCtx and the whole evaluation stops mid-budget.
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		var mean, hw2 float64
		for i := range ws {
			st := ws[i].stats()
			mean += st.MeanMinutes
			hw2 += st.HalfWidth95 * st.HalfWidth95
		}
		if math.Sqrt(hw2) <= e.relErr*mean {
			break
		}
		pick := -1
		var worst float64
		for i := range ws {
			if ws[i].n >= e.reps {
				continue
			}
			if hw := ws[i].stats().HalfWidth95; pick < 0 || hw > worst {
				pick, worst = i, hw
			}
		}
		if pick < 0 {
			break // every tier at its budget cap
		}
		k := batch
		if left := e.reps - ws[pick].n; left < k {
			k = left
		}
		if err := e.runBatch(ctx, &tms[pick], &ws[pick], k, buf); err != nil {
			return nil, err
		}
	}
	sts := make([]Stats, len(ws))
	for i := range ws {
		sts[i] = ws[i].stats()
	}
	return sts, nil
}

// arenaPool recycles tierSim arenas across replications. sync.Pool
// keeps a per-P free list, so under par.ForEach each worker effectively
// owns a private arena and a steady-state replication allocates
// nothing: the event queue, resource-state and scratch slices all
// retain their capacity from earlier replications.
var arenaPool = sync.Pool{New: func() any { return new(tierSim) }}

// SimulateTier estimates one tier's annual downtime distribution.
//
// Replications run in deterministic batches: each batch fans across the
// worker pool writing samples by index, then the samples fold into
// streaming (Welford) statistics in replication order. Under
// WithPrecision the stopping rule runs between batches on those
// statistics alone, so the replication count at which it stops — and
// therefore the estimate — is bit-identical at any worker count.
func (e *Engine) SimulateTier(tm *avail.TierModel) (Stats, error) {
	return e.SimulateTierCtx(context.Background(), tm)
}

// SimulateTierCtx is SimulateTier under a caller context. Cancellation
// is honoured mid-budget: the batch loop checks ctx between batches and
// the in-flight batch's worker pool checks it per replication claim, so
// an expired deadline stops the simulation without draining the
// remaining replications. The partial statistics are discarded — a
// cancelled estimate never folds into caches or results.
func (e *Engine) SimulateTierCtx(ctx context.Context, tm *avail.TierModel) (Stats, error) {
	if err := tm.Validate(); err != nil {
		return Stats{}, err
	}
	batch := e.batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	if e.relErr <= 0 || batch > e.reps {
		// Fixed budget (or a budget under one batch): a single pass.
		batch = e.reps
	}
	var w welford
	buf := make([]float64, batch)
	for w.n < e.reps {
		k := batch
		if left := e.reps - w.n; left < k {
			k = left
		}
		if err := e.runBatch(ctx, tm, &w, k, buf); err != nil {
			return Stats{}, err
		}
		if e.relErr > 0 && w.n >= 2 {
			if st := w.stats(); st.HalfWidth95 <= e.relErr*st.MeanMinutes {
				return st, nil
			}
		}
	}
	return w.stats(), nil
}

// runBatch fans replications [w.n, w.n+k) of tm across the worker pool
// on pooled arenas, writing samples by index into buf, then folds them
// into w in replication order — the one fold order that keeps the
// accumulated statistics independent of scheduling. On any error —
// including cancellation mid-batch — it returns before folding, so w
// never absorbs a partially executed batch's zero-valued samples.
func (e *Engine) runBatch(ctx context.Context, tm *avail.TierModel, w *welford, k int, buf []float64) error {
	base := w.n
	err := par.ForEachCtx(ctx, e.workers, k, func(i int) error {
		s := arenaPool.Get().(*tierSim)
		rg := newRNG(repSeed(e.seed, base+i))
		down, err := simulateOnce(tm, &rg, e.years, s)
		arenaPool.Put(s)
		if err != nil {
			return err
		}
		buf[i] = down / e.years // minutes per year
		return nil
	})
	if err != nil {
		return err
	}
	for _, x := range buf[:k] {
		w.add(x)
	}
	e.nreps.Add(uint64(k))
	e.nbatches.Add(1)
	if t := e.obsTracer(); t != nil {
		// Post-fold statistics depend only on the replication-order fold,
		// so the emitted batch events are identical at any worker count.
		st := w.stats()
		t.Emit(obs.Event{Ev: obs.EvSimBatch, Tier: tm.Name,
			Reps: st.Replications, Mean: st.MeanMinutes, HW95: st.HalfWidth95})
	}
	return nil
}

// summarise is the naive two-pass reference estimator over a complete
// samples slice. The engine streams through welford instead (one pass,
// no samples slice); this form is kept as the oracle the streaming
// statistics are tested against.
func summarise(samples []float64) Stats {
	n := float64(len(samples))
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / n
	st := Stats{MeanMinutes: mean, Replications: len(samples)}
	if len(samples) < 2 {
		return st
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	stderr := math.Sqrt(ss/(n-1)) / math.Sqrt(n)
	st.HalfWidth95 = tCrit95(len(samples)-1) * stderr
	return st
}

// resourceState is a resource's position in its lifecycle.
type resourceState int

const (
	stateActive resourceState = iota + 1
	stateIdleSpare
	stateRepairing
	stateActivating // spare starting up during a failover window
)

// eventKind identifies heap-scheduled simulation events. Failures are
// not among them: the next failure across the whole tier is a single
// scalar deadline (see tierSim.nextFailAt), so only repair completions
// and spare activations ever enter the queue.
type eventKind int

const (
	evRepairDone eventKind = iota + 1
	evActivationDone
)

type event struct {
	at   float64 // hours
	seq  uint64  // tie-break for deterministic ordering
	kind eventKind
	res  int
}

// tierSim is the mutable simulation state for one tier replication. It
// doubles as a reusable arena: reset reslices every buffer in place, so
// after the first replication warms the capacities, further
// replications on the same arena allocate nothing.
//
// Failure sampling is aggregated: failure modes are exponential, so the
// superposition of every pending per-resource failure clock is itself
// exponential at the summed rate, and memorylessness lets the simulator
// redraw one tier-wide next-failure deadline after every state change
// instead of keeping a clock per resource in the event queue. The
// victim resource falls out of the same uniform draw that picked the
// class. This halves-and-more the heap traffic — the queue holds only
// in-flight repairs and activations — and is statistically identical to
// competing per-resource exponentials.
type tierSim struct {
	tm         *avail.TierModel
	rng        rng // by value: keeps the caller's generator off the heap
	queue      []event
	seq        uint64
	state      []resourceState
	active     int
	idleSpares int
	nextFailAt float64 // tier-wide next-failure deadline (+Inf when nothing can fail)
	// activeRate is the total failure rate of a serving resource;
	// spareRate covers only the modes whose components run powered on
	// idle spares (warm/hot spares).
	activeRate float64
	spareRate  float64
	// invActiveRate/invSpareRate turn victim selection and deadline
	// sampling divisions into multiplies (0 when the rate itself is 0).
	invActiveRate float64
	invSpareRate  float64
	spareModes    []int     // indices into tm.Modes with SparePowered
	modeRates     []float64 // per-mode failure rates (1/MTBF hours)
	// repairHours/failoverHours cache the per-mode Duration→hours
	// conversions so the event handlers stay arithmetic-only.
	repairHours   []float64
	failoverHours []float64
	usesFailover  []bool
}

// reset points the arena at a tier model and replication stream and
// restores the empty initial state, reusing every buffer's capacity.
func (s *tierSim) reset(tm *avail.TierModel, rg *rng) {
	total := tm.N + tm.S
	s.tm = tm
	s.rng = *rg
	s.queue = s.queue[:0]
	s.seq = 0
	s.active = 0
	s.idleSpares = 0
	s.activeRate = 0
	s.spareRate = 0
	s.invActiveRate = 0
	s.invSpareRate = 0
	s.spareModes = s.spareModes[:0]
	s.modeRates = s.modeRates[:0]
	s.repairHours = s.repairHours[:0]
	s.failoverHours = s.failoverHours[:0]
	s.usesFailover = s.usesFailover[:0]
	if cap(s.state) < total {
		s.state = make([]resourceState, total)
	} else {
		s.state = s.state[:total]
	}
	for mi := range tm.Modes {
		rate := 1 / tm.Modes[mi].MTBF.Hours()
		s.modeRates = append(s.modeRates, rate)
		s.repairHours = append(s.repairHours, tm.Modes[mi].Repair.Hours())
		s.failoverHours = append(s.failoverHours, tm.Modes[mi].Failover.Hours())
		s.usesFailover = append(s.usesFailover, tm.Modes[mi].UsesFailover)
		s.activeRate += rate
		if tm.Modes[mi].SparePowered {
			s.spareRate += rate
			s.spareModes = append(s.spareModes, mi)
		}
	}
	if s.activeRate > 0 {
		s.invActiveRate = 1 / s.activeRate
	}
	if s.spareRate > 0 {
		s.invSpareRate = 1 / s.spareRate
	}
}

// simulateOnce runs one replication on the given arena and reports
// downtime minutes. The arena may be freshly zero-valued or reused from
// an earlier replication; in the steady state (warm arena) the
// replication performs zero heap allocations.
func simulateOnce(tm *avail.TierModel, rg *rng, years float64, s *tierSim) (float64, error) {
	s.reset(tm, rg)
	// Copy the advanced generator state back out on every return, so the
	// caller's stream position stays meaningful (and rg itself never
	// escapes to the heap — the arena works on its own copy).
	defer func() { *rg = s.rng }()
	for i := 0; i < tm.N+tm.S; i++ {
		if i < tm.N {
			s.state[i] = stateActive
			s.active++
		} else {
			s.state[i] = stateIdleSpare
			s.idleSpares++
		}
	}
	s.drawNextFailure(0)
	horizon := years * 8760
	var (
		now       float64
		downSince float64
		downHours float64
	)
	m := tm.M
	for {
		// The next event is the earlier of the heap front (in-flight
		// repairs and activations) and the tier-wide failure deadline;
		// the heap wins ties so recovery completes before a
		// same-instant failure strikes.
		var (
			at      float64
			failure bool
		)
		if len(s.queue) > 0 && s.queue[0].at <= s.nextFailAt {
			at = s.queue[0].at
		} else if !math.IsInf(s.nextFailAt, 1) {
			at, failure = s.nextFailAt, true
		} else {
			break
		}
		if at > horizon {
			break
		}
		now = at
		before := s.active < m
		if failure {
			s.onFailure(now)
		} else {
			ev := heapPop(&s.queue)
			switch ev.kind {
			case evRepairDone:
				s.onRepairDone(ev.res)
			case evActivationDone:
				s.onActivationDone(ev.res)
			default:
				return 0, fmt.Errorf("sim: unknown event kind %d", int(ev.kind))
			}
		}
		// Any handler may change who can fail; the exponential's
		// memorylessness makes an unconditional redraw of the aggregate
		// deadline exact.
		s.drawNextFailure(now)
		after := s.active < m
		if !before && after {
			downSince = now
		}
		if before && !after {
			downHours += now - downSince
		}
	}
	if s.active < tm.M {
		downHours += horizon - downSince
	}
	return downHours * 60, nil
}

// drawNextFailure samples the tier-wide next-failure deadline from the
// superposed failure clocks: active resources fail under every mode,
// idle spares only under the spare-powered modes.
func (s *tierSim) drawNextFailure(now float64) {
	rate := float64(s.active)*s.activeRate + float64(s.idleSpares)*s.spareRate
	if rate <= 0 {
		s.nextFailAt = math.Inf(1)
		return
	}
	s.nextFailAt = now + s.rng.Exp()/rate
}

// pushEvent stamps the insertion sequence and queues the event.
func (s *tierSim) pushEvent(at float64, kind eventKind, res int) {
	s.seq++
	heapPush(&s.queue, event{at: at, seq: s.seq, kind: kind, res: res})
}

// pickMode chooses which failure mode struck, proportional to rates,
// drawing from the spare-powered subset for idle spares. It returns the
// mode index so handlers read the cached per-mode tables.
func (s *tierSim) pickMode(serving bool) int {
	if serving {
		x := s.rng.Float64() * s.activeRate
		var acc float64
		for i := range s.modeRates {
			acc += s.modeRates[i]
			if x <= acc {
				return i
			}
		}
		return len(s.modeRates) - 1
	}
	x := s.rng.Float64() * s.spareRate
	var acc float64
	for _, mi := range s.spareModes {
		acc += s.modeRates[mi]
		if x <= acc {
			return mi
		}
	}
	return s.spareModes[len(s.spareModes)-1]
}

// onFailure resolves the aggregate failure deadline into a concrete
// victim: the class (serving vs idle spare) falls out of one uniform
// draw proportional to each class's total rate, and the victim within
// the class out of the same draw's remainder — uniform, since class
// members carry identical rates. Activating and repairing resources
// never fail (an activating spare has no serving load yet; a repairing
// one is already down), matching the per-resource-clock formulation
// where neither holds a pending failure clock.
func (s *tierSim) onFailure(now float64) {
	activeMass := float64(s.active) * s.activeRate
	total := activeMass + float64(s.idleSpares)*s.spareRate
	x := s.rng.Float64() * total
	serving := x < activeMass
	var res int
	if serving {
		k := int(x * s.invActiveRate) // uniform in [0, active)
		if k >= s.active {
			k = s.active - 1
		}
		res = s.nthInState(stateActive, k)
	} else {
		k := int((x - activeMass) * s.invSpareRate) // uniform in [0, idleSpares)
		if k >= s.idleSpares {
			k = s.idleSpares - 1
		}
		res = s.nthInState(stateIdleSpare, k)
	}
	mi := s.pickMode(serving)
	if serving {
		s.active--
	} else {
		s.idleSpares--
	}
	s.state[res] = stateRepairing
	if s.repairHours[mi] <= 0 {
		// Instantaneous repair: the resource resumes immediately.
		s.finishRepair(res)
		return
	}
	// Repair and activation durations sample exponentially with the
	// modelled means, matching §4.2's distributional assumptions (the
	// steady state is insensitive to the choice, but finite-horizon
	// comparisons against the analytic engines are not).
	repair := s.rng.Exp() * s.repairHours[mi]
	s.pushEvent(now+repair, evRepairDone, res)
	// Failover: an idle spare starts taking over the failed active's
	// place when the mode warrants it.
	if serving && s.usesFailover[mi] {
		if sp := s.findIdleSpare(); sp >= 0 {
			s.idleSpares--
			s.state[sp] = stateActivating
			activation := 0.0
			if s.failoverHours[mi] > 0 {
				activation = s.rng.Exp() * s.failoverHours[mi]
			}
			s.pushEvent(now+activation, evActivationDone, sp)
		}
	}
}

// nthInState returns the index of the k-th resource (in index order)
// currently in the given state.
func (s *tierSim) nthInState(st resourceState, k int) int {
	for i, cur := range s.state {
		if cur == st {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return len(s.state) - 1 // unreachable when counts are consistent
}

func (s *tierSim) onRepairDone(res int) {
	s.finishRepair(res)
}

// finishRepair returns a repaired resource to service: it rejoins as
// active if the tier is short of actives, otherwise as an idle spare.
func (s *tierSim) finishRepair(res int) {
	if s.active < s.tm.N {
		s.state[res] = stateActive
		s.active++
		return
	}
	s.state[res] = stateIdleSpare
	s.idleSpares++
}

func (s *tierSim) onActivationDone(res int) {
	if s.active < s.tm.N {
		s.state[res] = stateActive
		s.active++
		return
	}
	// The slot was refilled while this spare was starting; stand down.
	s.state[res] = stateIdleSpare
	s.idleSpares++
}

func (s *tierSim) findIdleSpare() int {
	for i, st := range s.state {
		if st == stateIdleSpare {
			return i
		}
	}
	return -1
}

// SimulateRestart estimates the mean time (hours) to execute lwHours of
// useful work when failures arrive as a Poisson process with the given
// MTBF and each failure restarts the current loss window — the restart
// law behind the paper's Eq. 1. Failure handling time is excluded, as
// in the analytic formula. Each replication draws from its own
// deterministically derived stream (see repSeed), so replication r's
// sample is independent of reps and of the worker count. Replications
// fan across the GOMAXPROCS-wide pool; see SimulateRestartWorkers for
// an explicit worker count.
func SimulateRestart(seed int64, mtbfHours, lwHours float64, reps int) (float64, error) {
	return SimulateRestartWorkers(seed, mtbfHours, lwHours, reps, 0)
}

// SimulateRestartWorkers is SimulateRestart with an explicit
// replication worker-pool size (0 uses GOMAXPROCS, 1 runs
// sequentially). The worker count never changes the estimate.
func SimulateRestartWorkers(seed int64, mtbfHours, lwHours float64, reps, workers int) (float64, error) {
	if mtbfHours <= 0 || lwHours <= 0 {
		return 0, fmt.Errorf("sim: restart law needs positive mtbf and loss window, got %v and %v", mtbfHours, lwHours)
	}
	if reps < 1 {
		return 0, fmt.Errorf("sim: need at least one replication, got %d", reps)
	}
	samples := make([]float64, reps)
	if err := par.ForEach(workers, reps, func(r int) error {
		rg := newRNG(repSeed(seed, r))
		samples[r] = restartOnce(&rg, mtbfHours, lwHours)
		return nil
	}); err != nil {
		return 0, err
	}
	var total float64
	for _, s := range samples {
		total += s
	}
	return total / float64(reps), nil
}

// restartOnce walks one replication of the restart law: elapsed time
// accumulates until an inter-failure gap finally covers the loss window.
func restartOnce(rg *rng, mtbfHours, lwHours float64) float64 {
	var elapsed float64
	for {
		x := rg.Exp() * mtbfHours
		if x >= lwHours {
			return elapsed + lwHours
		}
		elapsed += x
	}
}
