// Package sim implements a discrete-event Monte-Carlo availability
// simulator behind the same avail.Engine interface as the analytic
// Markov engine. It plays the role of the external availability
// evaluation engine (Avanto) that the paper's Aved interfaces to, and
// cross-validates the analytic model: the simulator evaluates a tier
// with all failure modes interleaved on a shared resource pool, with no
// per-mode decomposition.
//
// The package also provides SimulateRestart, a Monte-Carlo estimate of
// the restart law behind the paper's Eq. 1 (mean time to execute a loss
// window of useful work under failures), used to validate package
// jobtime.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"aved/internal/avail"
	"aved/internal/par"
)

// Engine is a Monte-Carlo availability engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	seed    int64
	years   float64
	reps    int
	workers int // 0 means GOMAXPROCS
}

var _ avail.Engine = (*Engine)(nil)

// NewEngine builds a simulation engine running reps independent
// replications of years simulated years each, seeded deterministically.
// Replications run across a worker pool (GOMAXPROCS workers by default;
// see WithWorkers); each replication derives its own PRNG stream from
// (seed, replication index), so results are bit-identical at any
// parallelism.
func NewEngine(seed int64, years float64, reps int) (*Engine, error) {
	if years <= 0 {
		return nil, fmt.Errorf("sim: years must be positive, got %v", years)
	}
	if reps < 1 {
		return nil, fmt.Errorf("sim: need at least one replication, got %d", reps)
	}
	return &Engine{seed: seed, years: years, reps: reps}, nil
}

// WithWorkers sets the replication worker-pool size (0 restores the
// GOMAXPROCS default, 1 forces sequential execution) and returns the
// engine. The worker count never changes results, only wall-clock time.
func (e *Engine) WithWorkers(n int) *Engine {
	e.workers = n
	return e
}

// repSeed derives replication r's PRNG seed from the base seed with a
// SplitMix64 finalizer, so a replication's random stream depends only on
// (seed, r) — not on how many replications precede it or which worker
// runs it. This is what makes the Monte-Carlo paths deterministic under
// parallelism and keeps replication r's estimate stable as reps grows.
func repSeed(seed int64, r int) int64 {
	x := uint64(seed) + (uint64(r)+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return int64(x ^ (x >> 31))
}

// Stats summarises replication-level downtime estimates.
type Stats struct {
	MeanMinutes float64 // mean annual downtime across replications
	HalfWidth95 float64 // 95% confidence half-width of the mean
}

// Evaluate implements avail.Engine. Tiers are independent in the model,
// so each simulates separately; tier availabilities compose in series
// exactly as in the analytic engine.
func (e *Engine) Evaluate(tms []avail.TierModel) (avail.Result, error) {
	if len(tms) == 0 {
		return avail.Result{}, fmt.Errorf("sim: no tiers to evaluate")
	}
	res := avail.Result{Availability: 1}
	for i := range tms {
		stats, err := e.SimulateTier(&tms[i])
		if err != nil {
			return avail.Result{}, err
		}
		downFrac := stats.MeanMinutes / avail.MinutesPerYear
		tr := avail.TierResult{
			Name:            tms[i].Name,
			Availability:    1 - downFrac,
			DowntimeMinutes: stats.MeanMinutes,
		}
		res.Tiers = append(res.Tiers, tr)
		res.Availability *= tr.Availability
	}
	res.DowntimeMinutes = (1 - res.Availability) * avail.MinutesPerYear
	return res, nil
}

// SimulateTier estimates one tier's annual downtime distribution.
func (e *Engine) SimulateTier(tm *avail.TierModel) (Stats, error) {
	if err := tm.Validate(); err != nil {
		return Stats{}, err
	}
	samples := make([]float64, e.reps)
	err := par.ForEach(e.workers, e.reps, func(r int) error {
		rng := rand.New(rand.NewSource(repSeed(e.seed, r)))
		down, err := simulateOnce(tm, rng, e.years)
		if err != nil {
			return err
		}
		samples[r] = down / e.years // minutes per year
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	return summarise(samples), nil
}

func summarise(samples []float64) Stats {
	n := float64(len(samples))
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / n
	if len(samples) < 2 {
		return Stats{MeanMinutes: mean}
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	stderr := math.Sqrt(ss/(n-1)) / math.Sqrt(n)
	return Stats{MeanMinutes: mean, HalfWidth95: 1.96 * stderr}
}

// resourceState is a resource's position in its lifecycle.
type resourceState int

const (
	stateActive resourceState = iota + 1
	stateIdleSpare
	stateRepairing
	stateActivating // spare starting up during a failover window
)

// eventKind identifies simulation events.
type eventKind int

const (
	evFailure eventKind = iota + 1
	evRepairDone
	evActivationDone
)

type event struct {
	at   float64 // hours
	seq  uint64  // tie-break for deterministic ordering
	kind eventKind
	res  int
	gen  uint64 // resource lifecycle generation; stale events are ignored
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); ev := old[n-1]; *q = old[:n-1]; return ev }

// tierSim is the mutable simulation state for one tier replication.
type tierSim struct {
	tm     *avail.TierModel
	rng    *rand.Rand
	queue  eventQueue
	seq    uint64
	state  []resourceState
	gen    []uint64 // invalidates scheduled events after state changes
	active int
	// activeRate is the total failure rate of a serving resource;
	// spareRate covers only the modes whose components run powered on
	// idle spares (warm/hot spares).
	activeRate float64
	spareRate  float64
	spareModes []int // indices into tm.Modes with SparePowered
}

// simulateOnce runs one replication and reports downtime minutes.
func simulateOnce(tm *avail.TierModel, rng *rand.Rand, years float64) (float64, error) {
	total := tm.N + tm.S
	s := &tierSim{
		tm:    tm,
		rng:   rng,
		state: make([]resourceState, total),
		gen:   make([]uint64, total),
	}
	for mi, m := range tm.Modes {
		rate := 1 / m.MTBF.Hours()
		s.activeRate += rate
		if m.SparePowered {
			s.spareRate += rate
			s.spareModes = append(s.spareModes, mi)
		}
	}
	for i := 0; i < total; i++ {
		if i < tm.N {
			s.state[i] = stateActive
			s.active++
			s.scheduleFailure(i, 0, true)
		} else {
			s.state[i] = stateIdleSpare
			s.scheduleFailure(i, 0, false)
		}
	}
	horizon := years * 8760
	var (
		now       float64
		downSince float64
		downHours float64
	)
	down := s.active < tm.M
	if down {
		downSince = 0
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(event)
		if ev.at > horizon {
			break
		}
		if ev.gen != s.gen[ev.res] {
			continue // stale event from a superseded lifecycle
		}
		now = ev.at
		before := s.active < s.tm.M
		switch ev.kind {
		case evFailure:
			s.onFailure(ev.res, now)
		case evRepairDone:
			s.onRepairDone(ev.res, now)
		case evActivationDone:
			s.onActivationDone(ev.res, now)
		default:
			return 0, fmt.Errorf("sim: unknown event kind %d", int(ev.kind))
		}
		after := s.active < s.tm.M
		if !before && after {
			downSince = now
		}
		if before && !after {
			downHours += now - downSince
		}
	}
	if s.active < tm.M {
		downHours += horizon - downSince
	}
	return downHours * 60, nil
}

// scheduleFailure samples the next failure of a resource. Serving
// resources fail under every mode; idle spares only under the modes
// whose components run powered on spares.
func (s *tierSim) scheduleFailure(res int, now float64, serving bool) {
	rate := s.activeRate
	if !serving {
		rate = s.spareRate
	}
	if rate <= 0 {
		return
	}
	dt := s.rng.ExpFloat64() / rate
	s.push(event{at: now + dt, kind: evFailure, res: res, gen: s.gen[res]})
}

func (s *tierSim) push(ev event) {
	s.seq++
	ev.seq = s.seq
	heap.Push(&s.queue, ev)
}

// pickMode chooses which failure mode struck, proportional to rates,
// drawing from the spare-powered subset for idle spares.
func (s *tierSim) pickMode(serving bool) *avail.Mode {
	if serving {
		x := s.rng.Float64() * s.activeRate
		var acc float64
		for i := range s.tm.Modes {
			acc += 1 / s.tm.Modes[i].MTBF.Hours()
			if x <= acc {
				return &s.tm.Modes[i]
			}
		}
		return &s.tm.Modes[len(s.tm.Modes)-1]
	}
	x := s.rng.Float64() * s.spareRate
	var acc float64
	for _, mi := range s.spareModes {
		acc += 1 / s.tm.Modes[mi].MTBF.Hours()
		if x <= acc {
			return &s.tm.Modes[mi]
		}
	}
	return &s.tm.Modes[s.spareModes[len(s.spareModes)-1]]
}

func (s *tierSim) onFailure(res int, now float64) {
	wasActive := s.state[res] == stateActive
	mode := s.pickMode(wasActive || s.state[res] == stateActivating)
	s.gen[res]++ // cancel this resource's pending events
	if wasActive {
		s.active--
	}
	s.state[res] = stateRepairing
	if mode.Repair <= 0 {
		// Instantaneous repair: the resource resumes immediately.
		s.finishRepair(res, now)
		return
	}
	// Repair and activation durations sample exponentially with the
	// modelled means, matching §4.2's distributional assumptions (the
	// steady state is insensitive to the choice, but finite-horizon
	// comparisons against the analytic engines are not).
	repair := s.rng.ExpFloat64() * mode.Repair.Hours()
	s.push(event{at: now + repair, kind: evRepairDone, res: res, gen: s.gen[res]})
	// Failover: an idle spare starts taking over the failed active's
	// place when the mode warrants it.
	if wasActive && mode.UsesFailover {
		if sp := s.findIdleSpare(); sp >= 0 {
			s.gen[sp]++
			s.state[sp] = stateActivating
			activation := 0.0
			if mode.Failover > 0 {
				activation = s.rng.ExpFloat64() * mode.Failover.Hours()
			}
			s.push(event{at: now + activation, kind: evActivationDone, res: sp, gen: s.gen[sp]})
		}
	}
}

func (s *tierSim) onRepairDone(res int, now float64) {
	s.finishRepair(res, now)
}

// finishRepair returns a repaired resource to service: it rejoins as
// active if the tier is short of actives, otherwise as an idle spare.
func (s *tierSim) finishRepair(res int, now float64) {
	s.gen[res]++
	if s.active < s.tm.N {
		s.state[res] = stateActive
		s.active++
		s.scheduleFailure(res, now, true)
		return
	}
	s.state[res] = stateIdleSpare
	s.scheduleFailure(res, now, false)
}

func (s *tierSim) onActivationDone(res int, now float64) {
	s.gen[res]++
	if s.active < s.tm.N {
		s.state[res] = stateActive
		s.active++
		s.scheduleFailure(res, now, true)
		return
	}
	// The slot was refilled while this spare was starting; stand down.
	s.state[res] = stateIdleSpare
	s.scheduleFailure(res, now, false)
}

func (s *tierSim) findIdleSpare() int {
	for i, st := range s.state {
		if st == stateIdleSpare {
			return i
		}
	}
	return -1
}

// SimulateRestart estimates the mean time (hours) to execute lwHours of
// useful work when failures arrive as a Poisson process with the given
// MTBF and each failure restarts the current loss window — the restart
// law behind the paper's Eq. 1. Failure handling time is excluded, as
// in the analytic formula. Each replication draws from its own
// deterministically derived stream (see repSeed), so replication r's
// sample is independent of reps and of the worker count.
func SimulateRestart(seed int64, mtbfHours, lwHours float64, reps int) (float64, error) {
	if mtbfHours <= 0 || lwHours <= 0 {
		return 0, fmt.Errorf("sim: restart law needs positive mtbf and loss window, got %v and %v", mtbfHours, lwHours)
	}
	if reps < 1 {
		return 0, fmt.Errorf("sim: need at least one replication, got %d", reps)
	}
	samples := make([]float64, reps)
	par.ForEach(0, reps, func(r int) error {
		rng := rand.New(rand.NewSource(repSeed(seed, r)))
		samples[r] = restartOnce(rng, mtbfHours, lwHours)
		return nil
	})
	var total float64
	for _, s := range samples {
		total += s
	}
	return total / float64(reps), nil
}

// restartOnce walks one replication of the restart law: elapsed time
// accumulates until an inter-failure gap finally covers the loss window.
func restartOnce(rng *rand.Rand, mtbfHours, lwHours float64) float64 {
	var elapsed float64
	for {
		x := rng.ExpFloat64() * mtbfHours
		if x >= lwHours {
			return elapsed + lwHours
		}
		elapsed += x
	}
}
