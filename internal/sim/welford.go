package sim

import "math"

// welford accumulates a mean and sum of squared deviations in one
// streaming pass (Welford's algorithm). The adaptive replication
// controller consults the confidence interval after every batch, and a
// two-pass variance over a growing samples slice would make that
// quadratic — and force the engine to materialize every replication's
// sample. The update is numerically stable (it never subtracts two
// large near-equal sums), and adding samples in replication-index order
// makes the accumulated statistics a pure function of the sample
// prefix, independent of which workers produced the samples.
type welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// add folds one sample into the running statistics.
func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// stats reports the mean and its 95% confidence half-width under the
// Student-t distribution with n−1 degrees of freedom.
func (w *welford) stats() Stats {
	st := Stats{MeanMinutes: w.mean, Replications: w.n}
	if w.n < 2 {
		return st
	}
	n := float64(w.n)
	stderr := math.Sqrt(w.m2/(n-1)) / math.Sqrt(n)
	st.HalfWidth95 = tCrit95(w.n-1) * stderr
	return st
}

// tTable95 holds two-sided 95% Student-t critical values for 1–30
// degrees of freedom.
var tTable95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tAnchors95 anchors the tail of the table; between anchors the
// critical value is close to linear in 1/df.
var tAnchors95 = []struct {
	df   float64
	crit float64
}{
	{30, 2.042}, {40, 2.021}, {60, 2.000}, {120, 1.980},
}

// zCrit95 is the normal-limit critical value the old summarise applied
// at every replication count. With a handful of replications — exactly
// where the adaptive controller may stop — it understates the interval
// badly (the true 95% multiplier at df=3 is 3.182, not 1.96).
const zCrit95 = 1.959964

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: exact table values through df=30, interpolation
// in 1/df through df=120, and the normal limit beyond.
func tCrit95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= 30 {
		return tTable95[df-1]
	}
	f := float64(df)
	for i := 0; i+1 < len(tAnchors95); i++ {
		lo, hi := tAnchors95[i], tAnchors95[i+1]
		if f <= hi.df {
			// Interpolate linearly in 1/df between the anchors.
			t := (1/f - 1/lo.df) / (1/hi.df - 1/lo.df)
			return lo.crit + t*(hi.crit-lo.crit)
		}
	}
	last := tAnchors95[len(tAnchors95)-1]
	// Beyond the last anchor, fade to the normal limit as 1/df → 0.
	t := (1/f - 1/last.df) / (0 - 1/last.df)
	return last.crit + t*(zCrit95-last.crit)
}
