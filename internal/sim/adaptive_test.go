package sim

import (
	"testing"

	"aved/internal/avail"
	"aved/internal/units"
)

// adaptiveModel has frequent cheap failover events, so per-replication
// downtime concentrates and a loose relative-error target is reachable
// far below the budget cap.
func adaptiveModel() avail.TierModel {
	return singleMode(2, 2, 1, 90*units.Day, 8*units.Hour, 5*units.Minute, true)
}

// TestAdaptiveStoppingDeterministic: the stopping decision folds batch
// results in replication order, so the replication count — not just the
// estimate — must be identical at any worker count.
func TestAdaptiveStoppingDeterministic(t *testing.T) {
	tm := adaptiveModel()
	run := func(workers int) Stats {
		t.Helper()
		eng, err := NewEngine(5, 25, 2048)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.WithWorkers(workers).WithPrecision(0.05, 64).SimulateTier(&tm)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st1, st8 := run(1), run(8)
	if st1 != st8 {
		t.Errorf("workers=1 %+v != workers=8 %+v", st1, st8)
	}
	if st1.Replications >= 2048 {
		t.Errorf("adaptive rule never engaged: spent the whole budget (%d reps)", st1.Replications)
	}
	if st1.Replications%64 != 0 {
		t.Errorf("replications %d not a whole number of batches", st1.Replications)
	}
	if st1.HalfWidth95 > 0.05*st1.MeanMinutes {
		t.Errorf("stopped with half-width %v above 5%% of mean %v", st1.HalfWidth95, st1.MeanMinutes)
	}
}

// TestDesignAdaptiveDeterministic: the greedy design-level allocation
// must pick the same tiers in the same order regardless of worker
// count, so per-tier replication counts and the composed result match
// exactly.
func TestDesignAdaptiveDeterministic(t *testing.T) {
	tms := []avail.TierModel{
		adaptiveModel(),
		singleMode(3, 3, 1, 200*units.Day, 24*units.Hour, 2*units.Minute, true),
		singleMode(1, 1, 0, 400*units.Day, 6*units.Hour, 0, false),
	}
	for i := range tms {
		tms[i].Name = []string{"web", "application", "database"}[i]
	}
	run := func(workers int) (avail.Result, []Stats) {
		t.Helper()
		eng, err := NewEngine(9, 25, 4096)
		if err != nil {
			t.Fatal(err)
		}
		res, sts, err := eng.WithWorkers(workers).WithPrecision(0.05, 64).EvaluateStats(tms)
		if err != nil {
			t.Fatal(err)
		}
		return res, sts
	}
	res1, sts1 := run(1)
	res8, sts8 := run(8)
	if res1.DowntimeMinutes != res8.DowntimeMinutes || res1.Availability != res8.Availability {
		t.Errorf("composed result differs: workers=1 %v, workers=8 %v", res1, res8)
	}
	var total int
	for i := range sts1 {
		if sts1[i] != sts8[i] {
			t.Errorf("tier %s: workers=1 %+v != workers=8 %+v", tms[i].Name, sts1[i], sts8[i])
		}
		total += sts1[i].Replications
	}
	if budget := 4096 * len(tms); total >= budget {
		t.Errorf("design-level rule never engaged: %d of %d replications", total, budget)
	}
}

// TestSimulateOnceZeroAllocs pins the hot path at zero steady-state
// allocations: once a pooled arena has warmed its buffers, further
// replications must not touch the heap.
func TestSimulateOnceZeroAllocs(t *testing.T) {
	tm := avail.TierModel{
		Name: "application",
		N:    6,
		M:    5,
		S:    1,
		Modes: []avail.Mode{
			{Name: "machineA/hard", MTBF: 650 * units.Day, Repair: 38 * units.Hour,
				Failover: 6 * units.Minute, UsesFailover: true},
			{Name: "machineA/soft", MTBF: 75 * units.Day, Repair: units.Duration(270 * units.Second)},
			{Name: "linux/soft", MTBF: 60 * units.Day, Repair: 4 * units.Minute},
			{Name: "appserverA/soft", MTBF: 60 * units.Day, Repair: 2 * units.Minute},
		},
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	s := new(tierSim)
	rg := newRNG(repSeed(11, 0))
	if _, err := simulateOnce(&tm, &rg, 50, s); err != nil {
		t.Fatal(err)
	}
	rep := 1
	allocs := testing.AllocsPerRun(200, func() {
		rg := newRNG(repSeed(11, rep))
		rep++
		if _, err := simulateOnce(&tm, &rg, 50, s); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("simulateOnce on a warm arena allocates %.1f per replication, want 0", allocs)
	}
}

// BenchmarkSimulateTier is the headline fixed-budget number: §5.1
// application-tier replications per second. Run with -benchmem; the
// per-op allocation count must stay flat as reps grows.
func BenchmarkSimulateTier(b *testing.B) {
	tm := avail.TierModel{
		Name: "application",
		N:    6,
		M:    5,
		S:    1,
		Modes: []avail.Mode{
			{Name: "machineA/hard", MTBF: 650 * units.Day, Repair: 38 * units.Hour,
				Failover: 6 * units.Minute, UsesFailover: true},
			{Name: "machineA/soft", MTBF: 75 * units.Day, Repair: units.Duration(270 * units.Second)},
			{Name: "linux/soft", MTBF: 60 * units.Day, Repair: 4 * units.Minute},
			{Name: "appserverA/soft", MTBF: 60 * units.Day, Repair: 2 * units.Minute},
		},
	}
	eng, err := NewEngine(7, 50, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SimulateTier(&tm); err != nil {
			b.Fatal(err)
		}
	}
}
