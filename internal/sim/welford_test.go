package sim

import (
	"math"
	"testing"
)

// TestWelfordMatchesTwoPass compares the streaming accumulator against
// the two-pass summarise on pinned samples: same mean, same half-width,
// to floating-point noise.
func TestWelfordMatchesTwoPass(t *testing.T) {
	cases := [][]float64{
		{3.25, 3.25},
		{0, 0, 0, 0},
		{1, 2, 3, 4, 5},
		{46.3, 0.94, 2.12, 49.4, 0.003, 12.75, 88.8, 46.3},
		{1e-9, 2e-9, 3e-9, 5e9, 7e9},
	}
	for _, xs := range cases {
		var w welford
		for _, x := range xs {
			w.add(x)
		}
		got, want := w.stats(), summarise(xs)
		if got.Replications != want.Replications {
			t.Fatalf("%v: replications %d != %d", xs, got.Replications, want.Replications)
		}
		if math.Abs(got.MeanMinutes-want.MeanMinutes) > 1e-12*math.Abs(want.MeanMinutes) {
			t.Errorf("%v: mean %v != %v", xs, got.MeanMinutes, want.MeanMinutes)
		}
		hwTol := 1e-9 * math.Max(want.HalfWidth95, 1e-300)
		if math.Abs(got.HalfWidth95-want.HalfWidth95) > hwTol {
			t.Errorf("%v: half-width %v != %v", xs, got.HalfWidth95, want.HalfWidth95)
		}
	}
}

// TestWelfordLargeStream checks numerical stability where a naive
// sum-of-squares accumulator loses precision: many samples around a
// large offset with a tiny spread.
func TestWelfordLargeStream(t *testing.T) {
	const n = 100_000
	xs := make([]float64, n)
	r := newRNG(3)
	for i := range xs {
		xs[i] = 1e9 + r.Float64() // spread 1 around offset 1e9
	}
	var w welford
	for _, x := range xs {
		w.add(x)
	}
	got, want := w.stats(), summarise(xs)
	if math.Abs(got.MeanMinutes-want.MeanMinutes) > 1e-12*want.MeanMinutes {
		t.Errorf("mean %v != %v", got.MeanMinutes, want.MeanMinutes)
	}
	// The true stddev of U(0,1) is sqrt(1/12) ≈ 0.2887; the streaming
	// variance must land there even at the 1e9 offset.
	hw := zCrit95 * math.Sqrt(1.0/12.0/n)
	if math.Abs(got.HalfWidth95-hw) > 0.05*hw {
		t.Errorf("half-width %v, want ≈ %v", got.HalfWidth95, hw)
	}
}

func TestTCrit95(t *testing.T) {
	if got := tCrit95(1); math.Abs(got-12.706) > 1e-9 {
		t.Errorf("tCrit95(1) = %v, want 12.706", got)
	}
	if got := tCrit95(30); math.Abs(got-2.042) > 1e-9 {
		t.Errorf("tCrit95(30) = %v, want 2.042", got)
	}
	prev := math.Inf(1)
	for df := 1; df <= 2000; df++ {
		got := tCrit95(df)
		if got > prev {
			t.Fatalf("tCrit95 not monotone non-increasing at df=%d: %v > %v", df, got, prev)
		}
		if got < zCrit95 {
			t.Fatalf("tCrit95(%d) = %v below the normal limit %v", df, got, zCrit95)
		}
		prev = got
	}
	if got := tCrit95(100000); math.Abs(got-zCrit95) > 1e-3 {
		t.Errorf("tCrit95(100000) = %v, want → %v", got, zCrit95)
	}
}
