package sim

import (
	"testing"

	"aved/internal/jobtime"
	"aved/internal/units"
)

func TestSimulateJobNoFailures(t *testing.T) {
	// MTBF astronomically above the compute time: wall ≈ compute.
	got, err := SimulateJob(1, JobParams{
		ComputeHours:    100,
		LossWindowHours: 1,
		MTBFHours:       1e7,
		OutageHours:     10,
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got, 100, 0.01) {
		t.Errorf("wall = %v, want ≈100", got)
	}
}

func TestSimulateJobMatchesAnalyticComposition(t *testing.T) {
	// Compare the Monte-Carlo job walk against jobtime.Expected for
	// several operating points. The analytic form assumes loss windows
	// restart in full and downtime scales wall time by 1/A with
	// A = mtbf/(mtbf+outage); agreement within a few percent expected
	// at moderate failure rates.
	cases := []JobParams{
		{ComputeHours: 200, LossWindowHours: 2, MTBFHours: 100, OutageHours: 5},
		{ComputeHours: 100, LossWindowHours: 1, MTBFHours: 50, OutageHours: 2},
		{ComputeHours: 50, LossWindowHours: 5, MTBFHours: 200, OutageHours: 10},
	}
	for i, p := range cases {
		got, err := SimulateJob(int64(100+i), p, 4000)
		if err != nil {
			t.Fatal(err)
		}
		availability := p.MTBFHours / (p.MTBFHours + p.OutageHours)
		want, err := jobtime.Expected(jobtime.Params{
			JobSize:        p.ComputeHours, // 1 unit/hour
			PerfPerHour:    1,
			OverheadFactor: 1,
			LossWindow:     units.FromHours(p.LossWindowHours),
			SystemMTBF:     units.FromHours(p.MTBFHours),
			Availability:   availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(got, want.Hours(), 0.06) {
			t.Errorf("case %d: sim %v vs analytic %v hours", i, got, want.Hours())
		}
	}
}

func TestSimulateJobNoCheckpointing(t *testing.T) {
	// Without checkpoints the whole job restarts; with compute = mtbf
	// the expansion is e−1 (no outages).
	p := JobParams{ComputeHours: 50, MTBFHours: 50}
	got, err := SimulateJob(7, p, 30000)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * 1.718281828
	if !relClose(got, want, 0.03) {
		t.Errorf("wall = %v, want ≈ %v", got, want)
	}
}

func TestSimulateJobCheckpointingHelps(t *testing.T) {
	base := JobParams{ComputeHours: 100, MTBFHours: 40, OutageHours: 1}
	withCkpt := base
	withCkpt.LossWindowHours = 1
	t0, err := SimulateJob(9, base, 3000)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := SimulateJob(9, withCkpt, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if t1 >= t0 {
		t.Errorf("checkpointing should cut wall time: %v vs %v", t1, t0)
	}
}

func TestSimulateJobValidation(t *testing.T) {
	if _, err := SimulateJob(1, JobParams{MTBFHours: 1}, 1); err == nil {
		t.Error("zero compute should fail")
	}
	if _, err := SimulateJob(1, JobParams{ComputeHours: 1}, 1); err == nil {
		t.Error("zero mtbf should fail")
	}
	if _, err := SimulateJob(1, JobParams{ComputeHours: 1, MTBFHours: 1, OutageHours: -1}, 1); err == nil {
		t.Error("negative outage should fail")
	}
	if _, err := SimulateJob(1, JobParams{ComputeHours: 1, MTBFHours: 1}, 0); err == nil {
		t.Error("zero reps should fail")
	}
}
