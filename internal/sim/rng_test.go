package sim

import (
	"math"
	"testing"
)

// TestRNGPinned pins the xoshiro256++ output stream for two seeds. A
// change here silently reshuffles every simulation sample, so the
// generator may not drift without also repinning the simulation
// goldens.
func TestRNGPinned(t *testing.T) {
	cases := []struct {
		seed int64
		want [4]uint64
	}{
		{1, [4]uint64{0xcfc5d07f6f03c29b, 0xbf424132963fe08d, 0x19a37d5757aaf520, 0xbf08119f05cd56d6}},
		{-42, [4]uint64{0xaef72d54e9f49141, 0xd5674d64ec826d43, 0xa0a876432c9e1866, 0x67241f44084cbc79}},
	}
	for _, c := range cases {
		r := newRNG(c.seed)
		for i, want := range c.want {
			if got := r.Uint64(); got != want {
				t.Errorf("seed %d draw %d = %#016x, want %#016x", c.seed, i, got, want)
			}
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := newRNG(99)
	for i := 0; i < 1_000_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %d: Float64() = %v outside [0,1)", i, f)
		}
	}
}

// TestRNGExp checks the exponential variates: strictly positive and
// finite (the +1 offset keeps log away from zero), with the sample
// mean and variance near the unit exponential's 1 and 1.
func TestRNGExp(t *testing.T) {
	r := newRNG(7)
	const n = 1_000_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d: Exp() = %v", i, x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.005 {
		t.Errorf("Exp() mean = %v, want ≈ 1", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Exp() variance = %v, want ≈ 1", variance)
	}
}

// TestRNGSeedStreamsDiffer guards the per-replication independence
// assumption: adjacent seeds must not produce overlapping prefixes.
func TestRNGSeedStreamsDiffer(t *testing.T) {
	a, b := newRNG(1), newRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 agree on %d of 64 draws", same)
	}
}
