package sim

import (
	"context"
	"fmt"

	"aved/internal/par"
)

// JobParams drive a Monte-Carlo estimate of the expected wall-clock
// completion time of a finite job under failures, checkpointing and
// repair outages — the full composition the analytic jobtime.Expected
// models (Eq. 1 plus overhead and availability).
type JobParams struct {
	// ComputeHours is the failure-free compute time including
	// mechanism overhead (jobSize/perf × overhead factor).
	ComputeHours float64
	// LossWindowHours is the checkpoint interval in compute time; work
	// since the last checkpoint is lost at each failure. Zero or
	// negative means no checkpointing (the whole job restarts).
	LossWindowHours float64
	// MTBFHours is the mean time between work-losing failures while
	// computing.
	MTBFHours float64
	// OutageHours is the mean repair outage per failure (exponential),
	// during which no work proceeds.
	OutageHours float64
	// Workers bounds the replication worker pool: 0 uses GOMAXPROCS, 1
	// runs sequentially. The worker count never changes the estimate.
	Workers int
}

// SimulateJob estimates the expected wall-clock hours to finish the
// job across reps independent replications. Replications run on the
// shared worker pool (p.Workers wide) with per-replication derived
// seeds (see repSeed), so the estimate is bit-identical at any
// parallelism.
func SimulateJob(seed int64, p JobParams, reps int) (float64, error) {
	return SimulateJobCtx(context.Background(), seed, p, reps)
}

// SimulateJobCtx is SimulateJob under a caller context. The worker pool
// checks ctx once per replication claim, so cancellation stops the
// estimate mid-budget — after at most one in-flight replication per
// worker — instead of completing the full budget; the partial samples
// are discarded and ctx's error returned.
func SimulateJobCtx(ctx context.Context, seed int64, p JobParams, reps int) (float64, error) {
	if p.ComputeHours <= 0 {
		return 0, fmt.Errorf("sim: compute time must be positive, got %v", p.ComputeHours)
	}
	if p.MTBFHours <= 0 {
		return 0, fmt.Errorf("sim: mtbf must be positive, got %v", p.MTBFHours)
	}
	if p.OutageHours < 0 {
		return 0, fmt.Errorf("sim: negative outage %v", p.OutageHours)
	}
	if reps < 1 {
		return 0, fmt.Errorf("sim: need at least one replication, got %d", reps)
	}
	lw := p.LossWindowHours
	if lw <= 0 || lw > p.ComputeHours {
		lw = p.ComputeHours
	}
	samples := make([]float64, reps)
	if err := par.ForEachCtx(ctx, p.Workers, reps, func(r int) error {
		rg := newRNG(repSeed(seed, r))
		samples[r] = simulateJobOnce(&rg, p.ComputeHours, lw, p.MTBFHours, p.OutageHours)
		return nil
	}); err != nil {
		return 0, err
	}
	var total float64
	for _, s := range samples {
		total += s
	}
	return total / float64(reps), nil
}

// simulateJobOnce walks one job execution: progress accumulates until
// the next failure; failures roll progress back to the last checkpoint
// and cost an outage.
func simulateJobOnce(rg *rng, compute, lw, mtbf, outage float64) float64 {
	var (
		wall     float64
		done     float64 // checkpointed progress
		inWindow float64 // progress since the last checkpoint
	)
	for done < compute {
		toFailure := rg.Exp() * mtbf
		// Work achievable before the failure, bounded by the window
		// end and the job end.
		for toFailure > 0 && done < compute {
			windowLeft := lw - inWindow
			jobLeft := compute - done - inWindow
			step := windowLeft
			if jobLeft < step {
				step = jobLeft
			}
			if step > toFailure {
				// The failure lands inside this stretch: lose the
				// uncheckpointed part.
				wall += toFailure
				inWindow = 0
				if outage > 0 {
					wall += rg.Exp() * outage
				}
				toFailure = 0
				break
			}
			// The stretch completes: checkpoint (or finish).
			wall += step
			toFailure -= step
			inWindow += step
			if inWindow >= lw-1e-12 || done+inWindow >= compute-1e-12 {
				done += inWindow
				inWindow = 0
			}
		}
	}
	return wall
}
