package sim

import (
	"testing"

	"aved/internal/obs"
)

// TestSimBatchEventsDeterministic: batch statistics fold in replication
// order, so the emitted sim.batch event sequence — count, cumulative
// replication marks, means, half-widths — is identical at any worker
// count.
func TestSimBatchEventsDeterministic(t *testing.T) {
	tm := adaptiveModel()
	run := func(workers int) []obs.Event {
		t.Helper()
		eng, err := NewEngine(5, 25, 2048)
		if err != nil {
			t.Fatal(err)
		}
		var tr obs.CollectTracer
		eng.WithWorkers(workers).WithPrecision(0.05, 64).InstrumentObs(nil, &tr)
		if _, err := eng.SimulateTier(&tm); err != nil {
			t.Fatal(err)
		}
		return tr.Events()
	}
	seq, par := run(1), run(8)
	if len(seq) == 0 {
		t.Fatal("no sim.batch events emitted")
	}
	if len(seq) != len(par) {
		t.Fatalf("batch event counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("batch event %d differs:\n%+v\nvs\n%+v", i, seq[i], par[i])
		}
		if seq[i].Ev != obs.EvSimBatch || seq[i].Reps == 0 {
			t.Errorf("malformed batch event: %+v", seq[i])
		}
	}
}

// TestRepStatsAndRegistry: the engine's work counters advance with the
// replications actually run and surface through a registry snapshot.
func TestRepStatsAndRegistry(t *testing.T) {
	tm := adaptiveModel()
	eng, err := NewEngine(5, 25, 256)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.InstrumentObs(reg, nil)
	st, err := eng.SimulateTier(&tm)
	if err != nil {
		t.Fatal(err)
	}
	reps, batches := eng.RepStats()
	if reps != uint64(st.Replications) {
		t.Errorf("RepStats replications = %d, want %d", reps, st.Replications)
	}
	if batches == 0 {
		t.Error("RepStats reports no batches")
	}
	snap := reg.Snapshot()
	if snap.Counters["sim.replications"] != int64(reps) || snap.Counters["sim.batches"] != int64(batches) {
		t.Errorf("registry counters %v disagree with RepStats (%d, %d)", snap.Counters, reps, batches)
	}
}
