package sim

// Typed binary min-heap over events, ordered by (at, seq). The previous
// implementation went through container/heap, which boxes every event
// into an `any` on Push and Pop — one heap allocation per event — and
// dispatches the comparisons through an interface. These two functions
// are the same sift-up/sift-down algorithm specialized to []event, so
// the compiler inlines the comparisons and the only memory traffic is
// the slice itself, which the arena reuses across replications.

// eventLess orders the queue: earliest time first, insertion sequence
// breaking ties so simulation order is deterministic.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends ev and sifts it up. The sift moves parents down into
// the hole and writes ev once at the end — half the copies of the
// classic swap formulation, which matters at a 40-byte element.
func heapPush(q *[]event, ev event) {
	h := append(*q, ev)
	*q = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// heapPop removes and returns the minimum event, sifting the displaced
// last element down hole-style. The caller must ensure the heap is
// non-empty.
func heapPop(q *[]event) event {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	*q = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if right := child + 1; right < n && eventLess(&h[right], &h[child]) {
			child = right
		}
		if !eventLess(&h[child], &last) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = last
	return top
}
