package sim

import (
	"context"
	"errors"
	"testing"

	"aved/internal/avail"
	"aved/internal/units"
)

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestSimulateTierCtxCanceled(t *testing.T) {
	eng, err := NewEngine(1, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	tm := singleMode(2, 1, 1, 1000*units.Hour, 4*units.Hour, 0, false)
	if _, err := eng.SimulateTierCtx(canceledCtx(), &tm); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateTierCtx err = %v, want context.Canceled", err)
	}
}

func TestEvaluateCtxCanceled(t *testing.T) {
	eng, err := NewEngine(1, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	tm := singleMode(2, 1, 1, 1000*units.Hour, 4*units.Hour, 0, false)
	if _, err := eng.EvaluateCtx(canceledCtx(), []avail.TierModel{tm}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCtx err = %v, want context.Canceled", err)
	}
}

// TestEvaluateCtxAdaptiveCanceled covers the adaptive-precision batch
// loop: its per-round ctx check must abort between allocation rounds.
func TestEvaluateCtxAdaptiveCanceled(t *testing.T) {
	eng, err := NewEngine(1, 100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetPrecision(0.0001, 8)
	tm := singleMode(2, 1, 1, 1000*units.Hour, 4*units.Hour, 0, false)
	if _, _, err := eng.EvaluateStatsCtx(canceledCtx(), []avail.TierModel{tm, tm}); !errors.Is(err, context.Canceled) {
		t.Fatalf("adaptive EvaluateStatsCtx err = %v, want context.Canceled", err)
	}
}

func TestSimulateJobCtxCanceled(t *testing.T) {
	p := JobParams{ComputeHours: 50, LossWindowHours: 1, MTBFHours: 100, OutageHours: 2}
	if _, err := SimulateJobCtx(canceledCtx(), 1, p, 256); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateJobCtx err = %v, want context.Canceled", err)
	}
}

// TestEvaluateCtxBackgroundBitIdentical pins that threading a live
// context through the simulator does not perturb the estimate: the
// replication schedule, seeds and fold order are unchanged.
func TestEvaluateCtxBackgroundBitIdentical(t *testing.T) {
	tm := singleMode(2, 1, 1, 1000*units.Hour, 4*units.Hour, 0, false)
	e1, err := NewEngine(7, 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(7, 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r2, err := e2.EvaluateCtx(ctx, []avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if r1.DowntimeMinutes != r2.DowntimeMinutes || r1.Availability != r2.Availability {
		t.Errorf("EvaluateCtx(%v) != Evaluate(%v)", r2, r1)
	}
}
