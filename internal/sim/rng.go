package sim

import "math"

// rng is an inline, allocation-free xoshiro256++ generator. The
// simulator's hot path draws two kinds of variates — uniforms for mode
// selection and exponentials for event times — and routing them through
// math/rand costs a heap-allocated *rand.Rand per replication plus an
// interface call per draw. This struct lives on the stack (or inside a
// pooled arena), seeds in four SplitMix64 steps, and generates with a
// handful of arithmetic ops, so a replication performs zero allocations
// for randomness.
//
// The generator is Blackman & Vigna's xoshiro256++ (public domain
// reference implementation at prng.di.unimi.it): 256 bits of state,
// period 2^256−1, passes BigCrush. Seeding expands the 64-bit
// replication seed through SplitMix64, the recommended initializer —
// it guarantees a nonzero state and decorrelates the consecutive
// per-replication seeds produced by repSeed.
type rng struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x by the golden-ratio increment and returns the
// finalized output — the stream generator used to seed the xoshiro
// state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// newRNG builds a generator whose stream is a pure function of seed.
// Replication r's generator is newRNG(repSeed(engineSeed, r)), so the
// per-replication determinism guarantee (results independent of worker
// count and of how many replications run) carries over from the old
// math/rand streams.
func newRNG(seed int64) rng {
	x := uint64(seed)
	return rng{
		s0: splitmix64(&x),
		s1: splitmix64(&x),
		s2: splitmix64(&x),
		s3: splitmix64(&x),
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256++ step).
func (r *rng) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform in [0, 1) with 53 random bits, the same
// resolution math/rand's Float64 provides.
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Ziggurat tables for the unit exponential (Marsaglia & Tsang, "The
// Ziggurat Method for Generating Random Variables"): 256 horizontal
// layers of equal area under e^−x. Built once at init from the layer
// recurrence, so there are no magic table literals to transcribe wrong.
const (
	zigR = 7.69711747013104972      // x-coordinate of the rightmost layer
	zigV = 3.9496598225815571993e-3 // area of each layer
)

var (
	zigK [256]uint32  // acceptance thresholds on the 32-bit draw
	zigW [256]float64 // layer width scale: x = draw * zigW[i]
	zigF [256]float64 // e^−x at each layer boundary
)

func init() {
	const m = 1 << 32
	de, te := zigR, zigR
	q := zigV / math.Exp(-de)
	zigK[0] = uint32((de / q) * m)
	zigK[1] = 0
	zigW[0] = q / m
	zigW[255] = de / m
	zigF[0] = 1
	zigF[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zigV/de + math.Exp(-de))
		zigK[i+1] = uint32((de / te) * m)
		te = de
		zigF[i] = math.Exp(-de)
		zigW[i] = de / m
	}
}

// Exp returns an exponential variate with mean 1 via the ziggurat: the
// common case (~98.9% of draws) costs one Uint64, two table reads and a
// multiply; only layer-edge rejections and the tail fall back to
// math.Log. The event-time sampling this feeds dominated the simulator
// profile under plain inversion (−ln U), with math.Log alone more than
// a quarter of the replication time. Results are still a pure function
// of the draw sequence, so per-replication determinism is unaffected.
func (r *rng) Exp() float64 {
	for {
		j := uint32(r.Uint64() >> 32)
		i := j & 255
		x := float64(j) * zigW[i]
		if j < zigK[i] {
			return x
		}
		if i == 0 {
			// Tail: zigR + Exp sampled by inversion, with U strictly
			// positive so the result stays finite.
			u := (r.Uint64() >> 11) + 1 // uniform integer in [1, 2^53]
			return zigR - math.Log(float64(u)*0x1p-53)
		}
		if zigF[i]+r.Float64()*(zigF[i-1]-zigF[i]) < math.Exp(-x) {
			return x
		}
	}
}
