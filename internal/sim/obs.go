package sim

import "aved/internal/obs"

// tracerBox wraps a Tracer for atomic.Value storage: atomic.Value
// requires every Store to carry the same concrete type, and tracer
// implementations differ.
type tracerBox struct{ t obs.Tracer }

// obsTracer reports the engine's instrumented tracer, nil when none.
func (e *Engine) obsTracer() obs.Tracer {
	if b, ok := e.tracer.Load().(tracerBox); ok {
		return b.t
	}
	return nil
}

// InstrumentObs exposes the engine's replication counters on reg and
// routes batch events to tr. It implements the solver's structural
// instrumentation interface. Idempotent and race-safe, so solvers
// sharing one engine may all call it.
func (e *Engine) InstrumentObs(reg *obs.Registry, tr obs.Tracer) {
	reg.RegisterFunc("sim.replications", func() int64 { return int64(e.nreps.Load()) })
	reg.RegisterFunc("sim.batches", func() int64 { return int64(e.nbatches.Load()) })
	if tr != nil {
		e.tracer.Store(tracerBox{t: tr})
	}
}

// RepStats reports the engine's lifetime Monte-Carlo work: replications
// run and batches dispatched, across every evaluation since
// construction. The solver differences these around a solve to
// attribute work per solution.
func (e *Engine) RepStats() (replications, batches uint64) {
	return e.nreps.Load(), e.nbatches.Load()
}
