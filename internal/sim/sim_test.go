package sim

import (
	"math"
	"testing"

	"aved/internal/avail"
	"aved/internal/units"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func singleMode(n, m, s int, mtbf, repair, failover units.Duration, usesFO bool) avail.TierModel {
	return avail.TierModel{
		Name: "t",
		N:    n,
		M:    m,
		S:    s,
		Modes: []avail.Mode{{
			Name:         "hw/hard",
			MTBF:         mtbf,
			Repair:       repair,
			Failover:     failover,
			UsesFailover: usesFO,
		}},
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(1, 0, 10); err == nil {
		t.Error("zero years should fail")
	}
	if _, err := NewEngine(1, 10, 0); err == nil {
		t.Error("zero replications should fail")
	}
}

func TestSimSingleResourceMatchesTwoStateChain(t *testing.T) {
	// availability = mtbf/(mtbf+repair); long horizon tightens the
	// estimate.
	mtbf := 30 * units.Day
	repair := 12 * units.Hour
	tm := singleMode(1, 1, 0, mtbf, repair, 0, false)
	eng, err := NewEngine(1, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	want := repair.Hours() / (mtbf.Hours() + repair.Hours()) * avail.MinutesPerYear
	if !relClose(res.DowntimeMinutes, want, 0.05) {
		t.Errorf("sim downtime = %v, analytic %v", res.DowntimeMinutes, want)
	}
}

func TestSimDeterministicForSeed(t *testing.T) {
	tm := singleMode(2, 2, 1, 100*units.Day, 10*units.Hour, 10*units.Minute, true)
	e1, err := NewEngine(42, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(42, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if r1.DowntimeMinutes != r2.DowntimeMinutes {
		t.Errorf("same seed gave %v and %v", r1.DowntimeMinutes, r2.DowntimeMinutes)
	}
	e3, err := NewEngine(43, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := e3.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if r3.DowntimeMinutes == r1.DowntimeMinutes {
		t.Error("different seeds should almost surely differ")
	}
}

func TestSimCrossValidatesMarkovNoRedundancy(t *testing.T) {
	// n = m = 3, no spares, two failure modes: the simulator couples the
	// modes on a shared pool; agreement within a few percent validates
	// the analytic decomposition.
	tm := avail.TierModel{
		Name: "app",
		N:    3,
		M:    3,
		Modes: []avail.Mode{
			{Name: "hw/hard", MTBF: 650 * units.Day, Repair: 38 * units.Hour},
			{Name: "os/soft", MTBF: 60 * units.Day, Repair: 4 * units.Minute},
		},
	}
	analytic, err := avail.MarkovEngine{}.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(7, 3000, 8)
	if err != nil {
		t.Fatal(err)
	}
	simres, err := eng.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(simres.DowntimeMinutes, analytic.DowntimeMinutes, 0.06) {
		t.Errorf("sim %v vs markov %v (want within 6%%)", simres.DowntimeMinutes, analytic.DowntimeMinutes)
	}
}

func TestSimCrossValidatesMarkovWithSpare(t *testing.T) {
	// A spare absorbing hard failures: downtime is failover transients
	// plus rare overlaps. This exercises the transient accounting.
	tm := singleMode(2, 2, 1, 650*units.Day, 38*units.Hour, units.Duration(6*units.Minute+30*units.Second), true)
	analytic, err := avail.MarkovEngine{}.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(11, 20000, 10)
	if err != nil {
		t.Fatal(err)
	}
	simres, err := eng.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(simres.DowntimeMinutes, analytic.DowntimeMinutes, 0.10) {
		t.Errorf("sim %v vs markov %v (want within 10%%)", simres.DowntimeMinutes, analytic.DowntimeMinutes)
	}
}

func TestSimCrossValidatesMarkovHeadroom(t *testing.T) {
	// n = 3, m = 2: downtime only from overlapping repairs.
	tm := singleMode(3, 2, 0, 100*units.Day, 24*units.Hour, 0, false)
	analytic, err := avail.MarkovEngine{}.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(13, 20000, 10)
	if err != nil {
		t.Fatal(err)
	}
	simres, err := eng.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(simres.DowntimeMinutes, analytic.DowntimeMinutes, 0.10) {
		t.Errorf("sim %v vs markov %v (want within 10%%)", simres.DowntimeMinutes, analytic.DowntimeMinutes)
	}
}

func TestSimStatsConfidence(t *testing.T) {
	tm := singleMode(1, 1, 0, 30*units.Day, 12*units.Hour, 0, false)
	eng, err := NewEngine(5, 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.SimulateTier(&tm)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanMinutes <= 0 {
		t.Error("mean downtime should be positive")
	}
	if stats.HalfWidth95 <= 0 {
		t.Error("confidence half-width should be positive with 16 replications")
	}
	want := 12.0 / (30*24 + 12) * avail.MinutesPerYear
	if math.Abs(stats.MeanMinutes-want) > 4*stats.HalfWidth95 {
		t.Errorf("mean %v outside 4 half-widths (%v) of analytic %v", stats.MeanMinutes, stats.HalfWidth95, want)
	}
}

func TestSimSeriesComposition(t *testing.T) {
	tm := singleMode(1, 1, 0, 60*units.Day, 6*units.Hour, 0, false)
	eng, err := NewEngine(3, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Evaluate([]avail.TierModel{tm, tm})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(res.Tiers))
	}
	product := res.Tiers[0].Availability * res.Tiers[1].Availability
	if !relClose(res.Availability, product, 1e-12) {
		t.Errorf("series availability %v, want product %v", res.Availability, product)
	}
}

func TestSimValidation(t *testing.T) {
	eng, err := NewEngine(1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(nil); err == nil {
		t.Error("empty evaluation should fail")
	}
	bad := singleMode(0, 1, 0, units.Day, units.Hour, 0, false)
	if _, err := eng.Evaluate([]avail.TierModel{bad}); err == nil {
		t.Error("invalid tier should fail")
	}
}

func TestSimulateRestartMatchesRestartLaw(t *testing.T) {
	// E[T] = mtbf · (e^{lw/mtbf} − 1), the closed form behind Eq. 1.
	mtbf, lw := 100.0, 50.0
	got, err := SimulateRestart(17, mtbf, lw, 200000)
	if err != nil {
		t.Fatal(err)
	}
	want := mtbf * (math.Exp(lw/mtbf) - 1)
	if !relClose(got, want, 0.02) {
		t.Errorf("restart sim %v vs closed form %v", got, want)
	}
}

func TestSimulateRestartShortWindow(t *testing.T) {
	// lw << mtbf: almost never fails, E[T] ≈ lw.
	got, err := SimulateRestart(19, 1000, 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got, 1.0005, 0.01) {
		t.Errorf("restart sim %v, want ≈ 1", got)
	}
}

func TestSimulateRestartValidation(t *testing.T) {
	if _, err := SimulateRestart(1, 0, 1, 10); err == nil {
		t.Error("zero mtbf should fail")
	}
	if _, err := SimulateRestart(1, 1, 0, 10); err == nil {
		t.Error("zero loss window should fail")
	}
	if _, err := SimulateRestart(1, 1, 1, 0); err == nil {
		t.Error("zero reps should fail")
	}
}

func TestShortHorizonSimMatchesMissionAnalysis(t *testing.T) {
	// A short simulation horizon starting all-up matches the
	// transient-aware mission analysis better than the steady state:
	// both account for the failure-free early life.
	tm := singleMode(1, 1, 0, 60*units.Day, 48*units.Hour, 0, false)
	horizon := 0.1 // years (~37 days, under one MTBF)
	eng, err := NewEngine(21, horizon, 4000)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.SimulateTier(&tm)
	if err != nil {
		t.Fatal(err)
	}
	mission, err := avail.MissionDowntime(&tm, horizon)
	if err != nil {
		t.Fatal(err)
	}
	steadyRes, err := avail.MarkovEngine{}.Evaluate([]avail.TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	steady := steadyRes.DowntimeMinutes
	if !(mission < steady) {
		t.Fatalf("mission %v should undercut steady %v on a short horizon", mission, steady)
	}
	missErr := math.Abs(stats.MeanMinutes - mission)
	steadyErr := math.Abs(stats.MeanMinutes - steady)
	if missErr >= steadyErr {
		t.Errorf("sim %v: mission analysis (%v, err %v) should beat steady state (%v, err %v)",
			stats.MeanMinutes, mission, missErr, steady, steadyErr)
	}
	if !relClose(stats.MeanMinutes, mission, 0.10) {
		t.Errorf("sim %v vs mission %v (want within 10%%)", stats.MeanMinutes, mission)
	}
}
