package sim

import (
	"math"
	"testing"

	"aved/internal/avail"
	"aved/internal/units"
)

// TestRepSeedPinned pins the SplitMix64 seed derivation. These values
// are load-bearing: the deterministic-parallelism guarantee ("same seed
// + same reps ⇒ same answer at any worker count") assumes replication
// r's stream is a pure function of (seed, r). A change here silently
// invalidates every recorded simulation figure.
func TestRepSeedPinned(t *testing.T) {
	cases := []struct {
		seed int64
		r    int
		want int64
	}{
		{0, 0, -2152535657050944081},
		{42, 1, 2949826092126892291},
		{-7, 3, 2940488688193949890},
	}
	for _, c := range cases {
		if got := repSeed(c.seed, c.r); got != c.want {
			t.Errorf("repSeed(%d, %d) = %d, want %d", c.seed, c.r, got, c.want)
		}
	}
	// Nearby (seed, r) pairs must not collide: the additive constant is
	// odd, so seed+1 at rep r and seed at rep r+1 mix differently.
	if repSeed(1, 0) == repSeed(0, 1) {
		t.Error("repSeed(1,0) and repSeed(0,1) collide")
	}
}

// oneRep runs replication r of a tier simulation on a fresh arena,
// reproducing exactly what the engine's worker does for that index.
func oneRep(t *testing.T, tm *avail.TierModel, seed int64, r int, years float64) float64 {
	t.Helper()
	rg := newRNG(repSeed(seed, r))
	down, err := simulateOnce(tm, &rg, years, new(tierSim))
	if err != nil {
		t.Fatal(err)
	}
	return down / years
}

// TestSimulateTierMatchesPerRepStreams is the replication-independence
// regression: the engine's estimate must equal the replications
// computed one at a time from their derived seeds and folded through
// the same streaming statistics, proving replication r's result does
// not depend on how many replications precede it or on scheduling.
func TestSimulateTierMatchesPerRepStreams(t *testing.T) {
	tm := singleMode(2, 2, 1, 100*units.Day, 10*units.Hour, 10*units.Minute, true)
	const (
		seed  = 42
		years = 50.0
		reps  = 6
	)
	eng, err := NewEngine(seed, years, reps)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.SimulateTier(&tm)
	if err != nil {
		t.Fatal(err)
	}
	var w welford
	for r := 0; r < reps; r++ {
		w.add(oneRep(t, &tm, seed, r, years))
	}
	if want := w.stats(); stats != want {
		t.Errorf("engine stats %+v != per-replication stats %+v", stats, want)
	}
}

// TestSimulateOnceReusedArenaBitIdentical asserts that arena reuse is
// invisible: a replication run on an arena still warm from a different
// tier model produces bit-identically the same sample as one on a
// fresh arena.
func TestSimulateOnceReusedArenaBitIdentical(t *testing.T) {
	warmup := singleMode(4, 3, 2, 30*units.Day, 48*units.Hour, 20*units.Minute, true)
	tm := singleMode(2, 2, 1, 100*units.Day, 10*units.Hour, 10*units.Minute, true)
	arena := new(tierSim)
	rg := newRNG(repSeed(9, 0))
	if _, err := simulateOnce(&warmup, &rg, 200, arena); err != nil {
		t.Fatal(err)
	}
	rg = newRNG(repSeed(42, 3))
	reused, err := simulateOnce(&tm, &rg, 50, arena)
	if err != nil {
		t.Fatal(err)
	}
	rg = newRNG(repSeed(42, 3))
	fresh, err := simulateOnce(&tm, &rg, 50, new(tierSim))
	if err != nil {
		t.Fatal(err)
	}
	if reused != fresh {
		t.Errorf("reused arena sample %v != fresh arena sample %v", reused, fresh)
	}
}

// TestSimWorkerCountBitIdentical asserts the determinism guarantee for
// the Monte-Carlo engine: the exact same Stats (mean and half-width) at
// every worker count.
func TestSimWorkerCountBitIdentical(t *testing.T) {
	tm := singleMode(3, 2, 1, 200*units.Day, 24*units.Hour, 5*units.Minute, true)
	var base Stats
	for i, workers := range []int{1, 2, 4, 8, 0} {
		eng, err := NewEngine(15, 40, 12)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.WithWorkers(workers).SimulateTier(&tm)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = stats
			if base.MeanMinutes <= 0 {
				t.Fatal("degenerate scenario: zero downtime")
			}
			continue
		}
		if stats != base {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", workers, stats, base)
		}
	}
}

// TestSimEvaluateWorkerCountBitIdentical covers the Engine interface
// path (per-tier composition) as well.
func TestSimEvaluateWorkerCountBitIdentical(t *testing.T) {
	tm := singleMode(1, 1, 0, 30*units.Day, 12*units.Hour, 0, false)
	run := func(workers int) avail.Result {
		eng, err := NewEngine(3, 100, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.WithWorkers(workers).Evaluate([]avail.TierModel{tm, tm})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, parl := run(1), run(8)
	if seq.DowntimeMinutes != parl.DowntimeMinutes || seq.Availability != parl.Availability {
		t.Errorf("sequential %+v vs parallel %+v", seq, parl)
	}
}

// TestSimulateRestartPinnedAndPrefixFree pins the restart-law estimate
// and checks the per-replication property: adding replications never
// changes the earlier replications' contribution. The pinned value is
// for the xoshiro256++ streams with the ziggurat exponential sampler;
// it changed when the simulator dropped math/rand (and the pinned seed
// moved from 17 to 23, whose four replications exercise the restart
// branch — the estimate staying off the degenerate lw value proves
// that).
func TestSimulateRestartPinnedAndPrefixFree(t *testing.T) {
	got, err := SimulateRestart(23, 100, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 61.1292473956506; math.Abs(got-want) > 1e-9 {
		t.Errorf("SimulateRestart(23,100,50,4) = %.16g, want %.15g", got, want)
	}
	// Replication 0 alone must equal its derived stream's sample.
	one, err := SimulateRestart(23, 100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	rg := newRNG(repSeed(23, 0))
	if want := restartOnce(&rg, 100, 50); one != want {
		t.Errorf("single replication %v != derived stream %v", one, want)
	}
	// reps=4 is exactly the average of the four per-replication samples,
	// so the first replications are unchanged by the later ones.
	var sum float64
	for r := 0; r < 4; r++ {
		rg := newRNG(repSeed(23, r))
		sum += restartOnce(&rg, 100, 50)
	}
	if want := sum / 4; math.Abs(got-want) > 1e-12 {
		t.Errorf("reps=4 mean %v != per-replication mean %v", got, want)
	}
	// The worker count never changes the estimate.
	seq, err := SimulateRestartWorkers(23, 100, 50, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq != got {
		t.Errorf("workers=1 estimate %v != pooled estimate %v", seq, got)
	}
}

// TestSimulateJobPrefixFree applies the same independence check to the
// job walk, at more than one worker count.
func TestSimulateJobPrefixFree(t *testing.T) {
	p := JobParams{ComputeHours: 100, LossWindowHours: 2, MTBFHours: 80, OutageHours: 4}
	got, err := SimulateJob(11, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for r := 0; r < 5; r++ {
		rg := newRNG(repSeed(11, r))
		sum += simulateJobOnce(&rg, p.ComputeHours, p.LossWindowHours, p.MTBFHours, p.OutageHours)
	}
	if want := sum / 5; math.Abs(got-want) > 1e-12 {
		t.Errorf("SimulateJob %v != per-replication mean %v", got, want)
	}
	seqParams := p
	seqParams.Workers = 1
	seq, err := SimulateJob(11, seqParams, 5)
	if err != nil {
		t.Fatal(err)
	}
	if seq != got {
		t.Errorf("workers=1 estimate %v != pooled estimate %v", seq, got)
	}
}
