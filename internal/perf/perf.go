// Package perf implements the performance models referenced by service
// specifications: throughput curves over the number of active resources
// (the paper's perfA.dat … perfI.dat references), availability-mechanism
// overhead functions (mperfH.dat, mperfI.dat), and a registry that
// resolves spec references to either registered closed forms or tabular
// data files. The closed forms of Table 1 live in table1.go.
package perf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aved/internal/units"
)

// Curve maps a number of active resources to the tier's sustainable
// throughput in service-specific units of work per unit time.
type Curve interface {
	// Throughput reports the tier's performance with n active
	// resources and no failures. n is at least 1.
	Throughput(n int) float64
}

// FuncCurve adapts a closed-form function to the Curve interface.
type FuncCurve func(n int) float64

var _ Curve = FuncCurve(nil)

// Throughput implements Curve.
func (f FuncCurve) Throughput(n int) float64 { return f(n) }

// ConstCurve is a resource-count-independent performance figure, used
// for performance=10000 scalar declarations.
type ConstCurve float64

var _ Curve = ConstCurve(0)

// Throughput implements Curve.
func (c ConstCurve) Throughput(int) float64 { return float64(c) }

// LinearCurve is throughput proportional to the resource count.
type LinearCurve float64

var _ Curve = LinearCurve(0)

// Throughput implements Curve.
func (c LinearCurve) Throughput(n int) float64 { return float64(c) * float64(n) }

// TableCurve interpolates throughput from (n, performance) samples, the
// shape of the paper's perfX.dat files. Lookups between samples
// interpolate linearly; lookups beyond the last sample extrapolate
// using the final per-resource slope, and below the first sample scale
// the first point proportionally.
type TableCurve struct {
	ns    []int
	perfs []float64
}

var _ Curve = (*TableCurve)(nil)

// NewTableCurve builds a table curve from parallel samples. The ns must
// be positive, strictly increasing, and at least one sample is needed.
func NewTableCurve(ns []int, perfs []float64) (*TableCurve, error) {
	if len(ns) == 0 || len(ns) != len(perfs) {
		return nil, fmt.Errorf("table curve: need matching non-empty samples, got %d and %d", len(ns), len(perfs))
	}
	for i, n := range ns {
		if n < 1 {
			return nil, fmt.Errorf("table curve: resource count %d must be positive", n)
		}
		if i > 0 && n <= ns[i-1] {
			return nil, fmt.Errorf("table curve: resource counts must increase, got %d after %d", n, ns[i-1])
		}
		if perfs[i] < 0 {
			return nil, fmt.Errorf("table curve: negative performance %v at n=%d", perfs[i], n)
		}
	}
	return &TableCurve{
		ns:    append([]int(nil), ns...),
		perfs: append([]float64(nil), perfs...),
	}, nil
}

// Throughput implements Curve.
func (t *TableCurve) Throughput(n int) float64 {
	i := sort.SearchInts(t.ns, n)
	if i < len(t.ns) && t.ns[i] == n {
		return t.perfs[i]
	}
	switch {
	case i == 0:
		// Below the first sample: scale proportionally from zero.
		return t.perfs[0] * float64(n) / float64(t.ns[0])
	case i == len(t.ns):
		// Beyond the last sample: extend with the final slope.
		last := len(t.ns) - 1
		if last == 0 {
			return t.perfs[0] * float64(n) / float64(t.ns[0])
		}
		slope := (t.perfs[last] - t.perfs[last-1]) / float64(t.ns[last]-t.ns[last-1])
		return t.perfs[last] + slope*float64(n-t.ns[last])
	default:
		lo, hi := i-1, i
		frac := float64(n-t.ns[lo]) / float64(t.ns[hi]-t.ns[lo])
		return t.perfs[lo] + frac*(t.perfs[hi]-t.perfs[lo])
	}
}

// ParseTable reads a perfX.dat-style table: one "n performance" pair
// per line, '#' comments and blank lines ignored.
func ParseTable(r io.Reader) (*TableCurve, error) {
	var (
		ns    []int
		perfs []float64
	)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if idx := strings.IndexByte(text, '#'); idx >= 0 {
			text = strings.TrimSpace(text[:idx])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("perf table line %d: want \"n performance\", got %q", line, text)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("perf table line %d: bad resource count: %w", line, err)
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("perf table line %d: bad performance: %w", line, err)
		}
		ns = append(ns, n)
		perfs = append(perfs, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf table: %w", err)
	}
	return NewTableCurve(ns, perfs)
}

// LoadTableFile reads a perf table from disk.
func LoadTableFile(path string) (*TableCurve, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("perf table: %w", err)
	}
	defer f.Close()
	t, err := ParseTable(f)
	if err != nil {
		return nil, fmt.Errorf("perf table %s: %w", path, err)
	}
	return t, nil
}

// MinActive reports the smallest active-resource count within the grid
// whose throughput meets the required load, and false if no grid point
// does. Curves need not be monotone, so the grid scans in order.
func MinActive(c Curve, required float64, grid units.Grid) (int, bool) {
	v, ok := grid.Lo(), true
	for ok {
		n := int(math.Round(v))
		if c.Throughput(n) >= required {
			return n, true
		}
		v, ok = grid.Next(v)
	}
	return 0, false
}

// Arg is one availability-mechanism parameter value passed to an
// overhead function: an enumerated string or a numeric duration in
// hours.
type Arg struct {
	Str   string
	Hours float64
	IsNum bool
}

// Overhead maps mechanism parameter settings and an active-resource
// count to an execution-time multiplier (≥ 1). A factor of 1 means the
// mechanism imposes no overhead at that operating point; 2 means the
// job takes twice as long.
type Overhead interface {
	Factor(args map[string]Arg, n int) (float64, error)
}

// OverheadFunc adapts a function to the Overhead interface.
type OverheadFunc func(args map[string]Arg, n int) (float64, error)

var _ Overhead = OverheadFunc(nil)

// Factor implements Overhead.
func (f OverheadFunc) Factor(args map[string]Arg, n int) (float64, error) { return f(args, n) }

// Registry resolves the performance references that appear in service
// specifications (perfA.dat, mperfH.dat, …) to curves and overhead
// functions. References not registered explicitly fall back to loading
// a table file relative to Dir. A registry is safe for concurrent
// resolution — one registry is typically shared by every solver in a
// parallel sweep — though Dir must be set before the first lookup.
type Registry struct {
	mu        sync.RWMutex
	curves    map[string]Curve
	overheads map[string]Overhead

	// Dir is the directory for file-based fallback loading. Empty
	// disables the fallback.
	Dir string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		curves:    map[string]Curve{},
		overheads: map[string]Overhead{},
	}
}

// RegisterCurve binds a reference name to a curve.
func (r *Registry) RegisterCurve(name string, c Curve) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.curves[name] = c
}

// RegisterOverhead binds a reference name to an overhead function.
func (r *Registry) RegisterOverhead(name string, o Overhead) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.overheads[name] = o
}

// Curve resolves a performance reference.
func (r *Registry) Curve(ref string) (Curve, error) {
	r.mu.RLock()
	c, ok := r.curves[ref]
	r.mu.RUnlock()
	if ok {
		return c, nil
	}
	if r.Dir == "" {
		return nil, fmt.Errorf("perf: unknown performance reference %q", ref)
	}
	// File fallback caches the loaded table; re-check under the write
	// lock so concurrent resolvers of one reference agree on the curve.
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.curves[ref]; ok {
		return c, nil
	}
	t, err := LoadTableFile(r.Dir + string(os.PathSeparator) + ref)
	if err != nil {
		return nil, err
	}
	r.curves[ref] = t
	return t, nil
}

// Overhead resolves a mechanism performance-impact reference.
func (r *Registry) Overhead(ref string) (Overhead, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if o, ok := r.overheads[ref]; ok {
		return o, nil
	}
	return nil, fmt.Errorf("perf: unknown mechanism performance reference %q", ref)
}
