package perf

import "fmt"

// This file carries the closed-form performance functions of Table 1 in
// the paper, plus the two web-tier curves (perfA, perfB) that the paper
// references but does not tabulate; those follow the same linear-scaling
// style as the application tier, with machineB retaining its worse
// cost-per-unit-of-load ratio.

// Table 1, application tier: both application servers scale linearly.
// rC/rD run on machineA, rE/rF on machineB.
var (
	// PerfC is performance(n) = 200·n for resource rC.
	PerfC = LinearCurve(200)
	// PerfD is performance(n) = 200·n for resource rD.
	PerfD = LinearCurve(200)
	// PerfE is performance(n) = 1600·n for resource rE.
	PerfE = LinearCurve(1600)
	// PerfF is performance(n) = 1600·n for resource rF.
	PerfF = LinearCurve(1600)

	// PerfA and PerfB are the web-tier curves referenced by Fig. 4.
	// The paper does not tabulate them; linear scaling with an 8×
	// per-node gap mirrors the application-tier style (documented
	// substitution, see DESIGN.md).
	PerfA = LinearCurve(250)
	PerfB = LinearCurve(2000)
)

// PerfH is Table 1's computation-tier curve for rH (machineA):
// performance(n) = 10·n / (1 + 0.004·n) — sublinear scaling.
var PerfH = FuncCurve(func(n int) float64 {
	fn := float64(n)
	return 10 * fn / (1 + 0.004*fn)
})

// PerfI is Table 1's computation-tier curve for rI (machineB):
// performance(n) = 100·n / (1 + 0.004·n).
var PerfI = FuncCurve(func(n int) float64 {
	fn := float64(n)
	return 100 * fn / (1 + 0.004*fn)
})

// checkpointOverhead builds a Table 1 mperformance function. The
// returned overhead is an execution-time multiplier derived from the
// per-window checkpoint cost K (minutes): Table 1 writes the multiplier
// as max(K/cpi, 100%) with cpi in minutes — the two-sided asymptote of
// the physical cost (cpi + K)/cpi = 1 + K/cpi. The smooth form is the
// default because the hinge flattens the checkpoint-interval optimum
// that Fig. 7 plots; the literal hinge is available for the ablation
// comparison. For central storage the constant grows with n beyond the
// bottleneck threshold of 30 nodes: K = n/centralDiv.
func checkpointOverhead(centralK, centralDiv, peerK float64, hinge bool) OverheadFunc {
	return func(args map[string]Arg, n int) (float64, error) {
		loc, ok := args["storage_location"]
		if !ok || loc.IsNum {
			return 0, fmt.Errorf("checkpoint overhead: missing storage_location setting")
		}
		cpi, ok := args["checkpoint_interval"]
		if !ok || !cpi.IsNum {
			return 0, fmt.Errorf("checkpoint overhead: missing checkpoint_interval setting")
		}
		cpiMinutes := cpi.Hours * 60
		if cpiMinutes <= 0 {
			return 0, fmt.Errorf("checkpoint overhead: checkpoint interval must be positive, got %v hours", cpi.Hours)
		}
		var k float64
		switch loc.Str {
		case "central":
			k = centralK
			if n >= 30 {
				k = float64(n) / centralDiv
			}
		case "peer":
			k = peerK
		default:
			return 0, fmt.Errorf("checkpoint overhead: unknown storage location %q", loc.Str)
		}
		if hinge {
			return maxf(k/cpiMinutes, 1), nil
		}
		return 1 + k/cpiMinutes, nil
	}
}

// MPerfH is Table 1's mperformance for rH (smooth form):
// central: K = 10 min for n < 30, K = n/3 min for n ≥ 30; peer: K = 20
// min; multiplier 1 + K/cpi with cpi the checkpoint interval in
// minutes.
var MPerfH = checkpointOverhead(10, 3, 20, false)

// MPerfI is Table 1's mperformance for rI (smooth form):
// central: K = 5 min for n < 30, K = n/6 min for n ≥ 30; peer: K = 100
// min.
var MPerfI = checkpointOverhead(5, 6, 100, false)

// MPerfHHinge and MPerfIHinge are the literal Table 1 hinge forms
// max(K/cpi, 100%), kept for the hinge-vs-smooth ablation.
var (
	MPerfHHinge = checkpointOverhead(10, 3, 20, true)
	MPerfIHinge = checkpointOverhead(5, 6, 100, true)
)

// RegisterTable1 binds every Table 1 function (and the web-tier
// curves) under the reference names used by Figs. 4 and 5.
func RegisterTable1(r *Registry) {
	r.RegisterCurve("perfA.dat", PerfA)
	r.RegisterCurve("perfB.dat", PerfB)
	r.RegisterCurve("perfC.dat", PerfC)
	r.RegisterCurve("perfD.dat", PerfD)
	r.RegisterCurve("perfE.dat", PerfE)
	r.RegisterCurve("perfF.dat", PerfF)
	r.RegisterCurve("perfH.dat", PerfH)
	r.RegisterCurve("perfI.dat", PerfI)
	r.RegisterOverhead("mperfH.dat", MPerfH)
	r.RegisterOverhead("mperfI.dat", MPerfI)
	r.RegisterOverhead("mperfH.hinge.dat", MPerfHHinge)
	r.RegisterOverhead("mperfI.hinge.dat", MPerfIHinge)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
