package perf

import (
	"math"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"aved/internal/units"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTableCurveExactAndInterpolated(t *testing.T) {
	c, err := NewTableCurve([]int{1, 2, 4, 8}, []float64{100, 190, 360, 680})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		n    int
		want float64
	}{
		{1, 100},
		{2, 190},
		{3, 275}, // midpoint of 190 and 360
		{4, 360},
		{6, 520}, // midpoint of 360 and 680
		{8, 680},
		{10, 840}, // slope 80/unit beyond the table
	}
	for _, tt := range tests {
		if got := c.Throughput(tt.n); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Throughput(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestTableCurveBelowFirstSample(t *testing.T) {
	c, err := NewTableCurve([]int{4}, []float64{400})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Throughput(2); !almostEqual(got, 200, 1e-9) {
		t.Errorf("Throughput(2) = %v, want 200", got)
	}
	if got := c.Throughput(8); !almostEqual(got, 800, 1e-9) {
		t.Errorf("Throughput(8) = %v, want 800 (single-sample proportional)", got)
	}
}

func TestNewTableCurveErrors(t *testing.T) {
	cases := []struct {
		name  string
		ns    []int
		perfs []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []int{1, 2}, []float64{1}},
		{"nonpositive", []int{0}, []float64{1}},
		{"decreasing", []int{2, 1}, []float64{1, 2}},
		{"negative perf", []int{1}, []float64{-1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTableCurve(tc.ns, tc.perfs); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestParseTable(t *testing.T) {
	src := `
# application-tier performance
1 200
2 400   # two nodes
4 800
`
	c, err := ParseTable(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Throughput(2); got != 400 {
		t.Errorf("Throughput(2) = %v, want 400", got)
	}
	if got := c.Throughput(3); got != 600 {
		t.Errorf("Throughput(3) = %v, want 600", got)
	}
}

func TestParseTableErrors(t *testing.T) {
	for _, src := range []string{"1", "a 2", "1 b", "1 2 3"} {
		if _, err := ParseTable(strings.NewReader(src)); err == nil {
			t.Errorf("ParseTable(%q) succeeded, want error", src)
		}
	}
}

func TestMinActive(t *testing.T) {
	grid, err := units.NewArithmeticGrid(1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := MinActive(LinearCurve(200), 1000, grid)
	if !ok || n != 5 {
		t.Errorf("MinActive(200n >= 1000) = %d,%v want 5,true", n, ok)
	}
	n, ok = MinActive(LinearCurve(200), 1001, grid)
	if !ok || n != 6 {
		t.Errorf("MinActive(200n >= 1001) = %d,%v want 6,true", n, ok)
	}
	if _, ok := MinActive(LinearCurve(0.001), 1e9, grid); ok {
		t.Error("MinActive should fail when the requirement is unreachable")
	}
	// Power-of-two grid.
	pow, err := units.NewGeometricGrid(1, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, ok = MinActive(LinearCurve(10), 90, pow)
	if !ok || n != 16 {
		t.Errorf("MinActive(10n >= 90, powers of 2) = %d,%v want 16,true", n, ok)
	}
}

func TestMinActiveMonotoneProperty(t *testing.T) {
	grid, err := units.NewArithmeticGrid(1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(load16 uint16) bool {
		load := float64(load16%5000) + 1
		n, ok := MinActive(PerfC, load, grid)
		if !ok {
			return load > PerfC.Throughput(1000)
		}
		// n satisfies, n-1 does not.
		if PerfC.Throughput(n) < load {
			return false
		}
		return n == 1 || PerfC.Throughput(n-1) < load
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable1ApplicationCurves(t *testing.T) {
	tests := []struct {
		name string
		c    Curve
		n    int
		want float64
	}{
		{"perfC", PerfC, 5, 1000},
		{"perfD", PerfD, 7, 1400},
		{"perfE", PerfE, 1, 1600},
		{"perfF", PerfF, 3, 4800},
	}
	for _, tt := range tests {
		if got := tt.c.Throughput(tt.n); got != tt.want {
			t.Errorf("%s.Throughput(%d) = %v, want %v", tt.name, tt.n, got, tt.want)
		}
	}
}

func TestTable1ScientificCurves(t *testing.T) {
	// perfH(n) = 10n/(1+0.004n)
	if got := PerfH.Throughput(1); !almostEqual(got, 10/1.004, 1e-9) {
		t.Errorf("PerfH(1) = %v", got)
	}
	if got := PerfH.Throughput(250); !almostEqual(got, 2500/2.0, 1e-9) {
		t.Errorf("PerfH(250) = %v, want 1250", got)
	}
	// perfI = 10x perfH.
	if got, want := PerfI.Throughput(50), 10*PerfH.Throughput(50); !almostEqual(got, want, 1e-9) {
		t.Errorf("PerfI(50) = %v, want %v", got, want)
	}
	// Sublinearity: per-node efficiency decreases.
	if PerfH.Throughput(100)/100 >= PerfH.Throughput(1) {
		t.Error("PerfH should scale sublinearly")
	}
}

func args(loc string, cpiHours float64) map[string]Arg {
	return map[string]Arg{
		"storage_location":    {Str: loc},
		"checkpoint_interval": {Hours: cpiHours, IsNum: true},
	}
}

func TestMPerfHHinge(t *testing.T) {
	// Literal Table 1 semantics: max(K/cpi, 100%).
	tests := []struct {
		name string
		loc  string
		cpiM float64 // minutes
		n    int
		want float64
	}{
		{"central short interval", "central", 1, 10, 10},  // 10/1
		{"central long interval", "central", 60, 10, 1},   // max(10/60,1)
		{"central at hinge", "central", 10, 10, 1},        // 10/10
		{"central bottleneck", "central", 10, 60, 2},      // n/(3cpi) = 60/30
		{"central bottleneck long", "central", 60, 60, 1}, // 60/180 < 1
		{"peer short", "peer", 2, 10, 10},                 // 20/2
		{"peer long", "peer", 30, 10, 1},                  // 20/30 < 1
		{"peer unaffected by n", "peer", 2, 500, 10},      // still 20/2
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MPerfHHinge.Factor(args(tt.loc, tt.cpiM/60), tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("MPerfHHinge(%s, %vm, n=%d) = %v, want %v", tt.loc, tt.cpiM, tt.n, got, tt.want)
			}
		})
	}
}

func TestMPerfHSmooth(t *testing.T) {
	// Default smooth semantics: 1 + K/cpi.
	tests := []struct {
		name string
		loc  string
		cpiM float64
		n    int
		want float64
	}{
		{"central small n", "central", 10, 10, 2}, // 1 + 10/10
		{"central long interval", "central", 60, 10, 1.0 + 10.0/60},
		{"central bottleneck", "central", 10, 60, 3}, // 1 + 60/(3*10)
		{"peer", "peer", 20, 10, 2},                  // 1 + 20/20
		{"peer unaffected by n", "peer", 20, 500, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MPerfH.Factor(args(tt.loc, tt.cpiM/60), tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("MPerfH(%s, %vm, n=%d) = %v, want %v", tt.loc, tt.cpiM, tt.n, got, tt.want)
			}
		})
	}
	// The smooth form upper-bounds the hinge and agrees asymptotically.
	for _, cpiM := range []float64{0.1, 1, 5, 50, 500} {
		smooth, err := MPerfH.Factor(args("central", cpiM/60), 5)
		if err != nil {
			t.Fatal(err)
		}
		hinge, err := MPerfHHinge.Factor(args("central", cpiM/60), 5)
		if err != nil {
			t.Fatal(err)
		}
		if smooth < hinge {
			t.Errorf("cpi=%vm: smooth %v below hinge %v", cpiM, smooth, hinge)
		}
		if smooth > hinge+1 {
			t.Errorf("cpi=%vm: smooth %v exceeds hinge+1 %v", cpiM, smooth, hinge+1)
		}
	}
}

func TestMPerfI(t *testing.T) {
	// Hinge: central small n max(5/cpi, 1).
	got, err := MPerfIHinge.Factor(args("central", 1.0/60), 10) // cpi = 1 minute
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5, 1e-9) {
		t.Errorf("MPerfIHinge(central, 1m, 10) = %v, want 5", got)
	}
	// Hinge: central large n max(n/(6cpi), 1) below 1 clamps.
	got, err = MPerfIHinge.Factor(args("central", 1), 90) // cpi = 60 minutes
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-9) {
		t.Errorf("MPerfIHinge(central, 60m, 90) = %v, want 1 (90/360<1)", got)
	}
	// Smooth: peer 1 + 100/cpi.
	got, err = MPerfI.Factor(args("peer", 0.5), 4) // 30 minutes
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1+100.0/30, 1e-9) {
		t.Errorf("MPerfI(peer, 30m, 4) = %v, want %v", got, 1+100.0/30)
	}
}

func TestOverheadErrors(t *testing.T) {
	if _, err := MPerfH.Factor(map[string]Arg{}, 10); err == nil {
		t.Error("missing args should fail")
	}
	if _, err := MPerfH.Factor(args("tape", 1), 10); err == nil {
		t.Error("unknown location should fail")
	}
	if _, err := MPerfH.Factor(args("central", 0), 10); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestCheckpointOverheadCrossover(t *testing.T) {
	// The paper's §5.2 shape: central beats peer for small n, peer wins
	// for large n (central storage becomes the bottleneck).
	cpi := args("central", 5.0/60) // 5 minutes
	peer := args("peer", 5.0/60)
	smallCentral, err := MPerfH.Factor(cpi, 4)
	if err != nil {
		t.Fatal(err)
	}
	smallPeer, err := MPerfH.Factor(peer, 4)
	if err != nil {
		t.Fatal(err)
	}
	if smallCentral >= smallPeer {
		t.Errorf("small n: central overhead %v should beat peer %v", smallCentral, smallPeer)
	}
	largeCentral, err := MPerfH.Factor(cpi, 300)
	if err != nil {
		t.Fatal(err)
	}
	largePeer, err := MPerfH.Factor(peer, 300)
	if err != nil {
		t.Fatal(err)
	}
	if largeCentral <= largePeer {
		t.Errorf("large n: peer overhead %v should beat central %v", largePeer, largeCentral)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	RegisterTable1(r)
	c, err := r.Curve("perfH.dat")
	if err != nil {
		t.Fatalf("Curve(perfH.dat): %v", err)
	}
	if got := c.Throughput(250); !almostEqual(got, 1250, 1e-9) {
		t.Errorf("registered perfH(250) = %v, want 1250", got)
	}
	if _, err := r.Curve("nonexistent.dat"); err == nil {
		t.Error("unknown curve should fail without a Dir fallback")
	}
	if _, err := r.Overhead("mperfH.dat"); err != nil {
		t.Errorf("Overhead(mperfH.dat): %v", err)
	}
	if _, err := r.Overhead("nope"); err == nil {
		t.Error("unknown overhead should fail")
	}
}

func TestRegistryFileFallback(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/web.dat"
	if err := writeFile(path, "1 100\n2 200\n"); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	r.Dir = dir
	c, err := r.Curve("web.dat")
	if err != nil {
		t.Fatalf("Curve(web.dat): %v", err)
	}
	if got := c.Throughput(2); got != 200 {
		t.Errorf("file-based curve Throughput(2) = %v, want 200", got)
	}
	if _, err := r.Curve("missing.dat"); err == nil {
		t.Error("missing file should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
