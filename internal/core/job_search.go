package core

import (
	"context"
	"fmt"
	"math"

	"aved/internal/avail"
	"aved/internal/cost"
	"aved/internal/jobtime"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/perf"
	"aved/internal/units"
)

// JobCandidate couples a tier design with its cost and expected job
// completion time.
type JobCandidate struct {
	Design  model.TierDesign
	Cost    units.Money
	JobTime units.Duration
}

// solveJob implements the search for finite-duration applications
// (§5.2): the only requirement is the expected job completion time;
// design dimensions are resource type, resource count, spares, spare
// mode, and mechanism parameters (notably checkpoint interval and
// storage location).
func (s *Solver) solveJob(ctx context.Context, req model.Requirements) (*Solution, error) {
	if len(s.svc.Tiers) != 1 {
		return nil, fmt.Errorf("core: job solving supports single-tier services, %q has %d tiers",
			s.svc.Name, len(s.svc.Tiers))
	}
	tier := &s.svc.Tiers[0]
	var (
		stats searchStats
		best  *JobCandidate
	)
	stats.gen = s.gen.Add(1)
	endPhase := s.phaseSpan(&stats, phaseJobSearch)
	for i := range tier.Options {
		cand, err := s.searchJobOption(ctx, tier, &tier.Options[i], req.MaxJobTime, best, &stats)
		if err != nil {
			return nil, wrapCanceled(err, &stats)
		}
		if cand != nil {
			best = cand
		}
	}
	endPhase()
	if best == nil {
		return nil, &InfeasibleError{Reason: fmt.Sprintf(
			"no design completes job size %v within %v", s.svc.JobSize, req.MaxJobTime)}
	}
	design := model.Design{Tiers: []model.TierDesign{best.Design}}
	if err := design.Validate(); err != nil {
		return nil, err
	}
	return &Solution{
		Design:  design,
		Cost:    best.Cost,
		JobTime: best.JobTime,
		Stats:   stats.snapshot(),
	}, nil
}

// jobStopAfterDegrading is how many consecutive resource-count steps
// with a degrading best completion time the search tolerates before
// declaring the option exhausted (the §4.1 rule adapted to the
// U-shaped job-time curve).
const jobStopAfterDegrading = 2

// jobCombo carries everything about one mechanism combination that does
// not depend on the resource counts, precomputed once per option so the
// inner search loop runs pure arithmetic.
type jobCombo struct {
	settings []model.MechSetting
	// lossWindow is the combo's resolved loss window; zero duration
	// with hasLW=false means no checkpointing.
	lossWindow units.Duration
	hasLW      bool
	// overheads are the resolved mechanism performance-impact
	// functions with their argument maps; Factor still takes n.
	overheads []comboOverhead
	// mechCostPerInstance is the summed mechanism cost per covered
	// resource instance.
	mechCostPerInstance units.Money
	// availGroup indexes combos whose availability evaluations are
	// interchangeable (same MTTR-relevant settings).
	availGroup int
}

type comboOverhead struct {
	fn   perf.Overhead
	args map[string]perf.Arg
}

// prepareJobCombos resolves the option's mechanism combinations into
// jobCombos, grouped by availability relevance. It returns the packed
// relevant-settings fingerprint of each group, computed once here so
// the search loop reuses it instead of re-fingerprinting per probe.
func (s *Solver) prepareJobCombos(tier *model.Tier, opt *model.ResourceOption) ([]jobCombo, []fp128, error) {
	cs, err := s.mechCombos(opt.ResourceType())
	if err != nil {
		return nil, nil, err
	}
	combos := cs.combos
	groups := map[fp128]int{}
	var groupFPs []fp128
	out := make([]jobCombo, 0, len(combos))
	for _, combo := range combos {
		jc := jobCombo{settings: combo}
		// Loss window and mechanism cost via a throwaway design: both
		// depend only on the combo and the resource type.
		probe := model.TierDesign{
			TierName:   tier.Name,
			Option:     opt,
			NActive:    1,
			NMinPerf:   1,
			MinActive:  1,
			Mechanisms: combo,
		}
		lw, has, err := probe.LossWindow()
		if err != nil {
			return nil, nil, err
		}
		jc.lossWindow, jc.hasLW = lw, has
		for _, ms := range combo {
			per, err := ms.CostPerInstance()
			if err != nil {
				return nil, nil, err
			}
			jc.mechCostPerInstance += per
		}
		for _, mp := range opt.MechPerf {
			ms, ok := probe.Mechanism(mp.Mechanism)
			if !ok {
				return nil, nil, fmt.Errorf("core: tier %q: mechanism %q has a performance impact but no setting",
					tier.Name, mp.Mechanism)
			}
			oh, err := s.opts.Registry.Overhead(mp.Ref)
			if err != nil {
				return nil, nil, err
			}
			args := make(map[string]perf.Arg, len(ms.Values))
			for name, v := range ms.Values {
				args[name] = perf.Arg{Str: v.Str, Hours: v.Hours, IsNum: v.IsNum}
			}
			jc.overheads = append(jc.overheads, comboOverhead{fn: oh, args: args})
		}
		cfp := comboFP(opt.ResourceType(), combo)
		id, ok := groups[cfp]
		if !ok {
			id = len(groups)
			groups[cfp] = id
			groupFPs = append(groupFPs, cfp)
		}
		jc.availGroup = id
		out = append(out, jc)
	}
	return out, groupFPs, nil
}

func (s *Solver) searchJobOption(ctx context.Context, tier *model.Tier, opt *model.ResourceOption, maxTime units.Duration,
	incumbent *JobCandidate, stats *searchStats) (*JobCandidate, error) {

	curve, err := s.curveFor(opt)
	if err != nil {
		return nil, err
	}
	combos, groupFPs, err := s.prepareJobCombos(tier, opt)
	if err != nil {
		return nil, err
	}
	groupCount := len(groupFPs)
	base := s.baseFPFor(tier.Name, opt.ResourceType().Name)
	// Per-instance component costs are count-independent; spare cost
	// depends on the warmth prefix.
	rt := opt.ResourceType()
	var activeCost units.Money
	for _, rc := range rt.Components {
		activeCost += rc.Component.Cost(model.ModeActive)
	}
	spareCostByWarm := make([]units.Money, len(rt.Components)+1)
	for warm := range spareCostByWarm {
		var c units.Money
		for i, rc := range rt.Components {
			mode := model.ModeInactive
			if i < warm {
				mode = model.ModeActive
			}
			c += rc.Component.Cost(mode)
		}
		spareCostByWarm[warm] = c
	}

	tr := s.opts.Tracer
	resName := rt.Name
	done := ctx.Done()
	best := incumbent
	prevBestTime := math.Inf(1)
	degrading := 0
	maxTotal := rt.MaxInstances()
	grid := opt.NActive
	// Warmth levels for spared candidates, computed once per option.
	warmSpareLevels := s.warmLevels(rt, 1)
	entries := make([]evalEntry, groupCount)
	evaluated := make([]bool, groupCount)
	nVal, ok := grid.Lo(), true
	for ok {
		n := int(math.Round(nVal))
		if maxTotal > 0 && n > maxTotal {
			break
		}
		minCostAtN := math.Inf(1)
		bestTimeAtN := math.Inf(1)
		for spares := 0; spares <= s.opts.MaxRedundancy; spares++ {
			if maxTotal > 0 && n+spares > maxTotal {
				break
			}
			warms := warmZeroLevels
			if spares > 0 {
				warms = warmSpareLevels
			}
			for _, warm := range warms {
				for g := range evaluated {
					evaluated[g] = false
				}
				perfAtN := curve.Throughput(n)
				for ci := range combos {
					jc := &combos[ci]
					// One ctx check per candidate, same captured-Done
					// pattern as searchOption: free when the context
					// cannot be cancelled.
					if done != nil {
						select {
						case <-done:
							return nil, ctx.Err()
						default:
						}
					}
					c := units.Money(float64(n)*float64(activeCost) +
						float64(spares)*float64(spareCostByWarm[warm]) +
						float64(n+spares)*float64(jc.mechCostPerInstance))
					stats.candidates.Add(1)
					if tr != nil {
						tr.Emit(obs.Event{Ev: obs.EvCandGen, Tier: tier.Name, Res: resName,
							N: n, S: spares, Warm: warm, Cost: float64(c)})
					}
					if float64(c) < minCostAtN {
						minCostAtN = float64(c)
					}
					// Strictly dearer candidates skip evaluation;
					// equal-cost candidates still evaluate so ties
					// break toward the shorter completion time (the
					// design Fig. 7 plots).
					if best != nil && c > best.Cost {
						stats.pruned.Add(1)
						if tr != nil {
							tr.Emit(obs.Event{Ev: obs.EvCandPrune, Tier: tier.Name, Res: resName,
								N: n, S: spares, Cost: float64(c)})
						}
						continue
					}
					if !evaluated[jc.availGroup] {
						td := s.buildJobDesign(tier, opt, n, spares, warm, jc.settings)
						// Reuse the group's packed fingerprint from
						// prepareJobCombos; only the counts vary here.
						mfp := modeFPOf(base, groupFPs[jc.availGroup], warm, spares > 0)
						fps := candFP{avail: availFPOf(mfp, td.NActive, td.MinActive, td.NSpare), mode: mfp}
						entry, err := s.evalTier(ctx, &td, fps, stats)
						if err != nil {
							return nil, err
						}
						entries[jc.availGroup] = entry
						evaluated[jc.availGroup] = true
					}
					jt, err := s.comboJobTime(jc, entries[jc.availGroup], perfAtN, n)
					if err != nil {
						return nil, err
					}
					if jt.Hours() < bestTimeAtN {
						bestTimeAtN = jt.Hours()
					}
					if jt <= maxTime &&
						(best == nil || c < best.Cost || (c == best.Cost && jt < best.JobTime)) {
						td := s.buildJobDesign(tier, opt, n, spares, warm, jc.settings)
						best = &JobCandidate{Design: td, Cost: c, JobTime: jt}
						if tr != nil {
							tr.Emit(obs.Event{Ev: obs.EvIncumbent, Tier: tier.Name, Res: resName,
								N: n, S: spares, Warm: warm, Cost: float64(c), JobH: jt.Hours()})
						}
					}
				}
			}
		}
		if best != nil && minCostAtN >= float64(best.Cost) {
			break
		}
		if best == nil {
			if bestTimeAtN >= prevBestTime {
				degrading++
				if degrading >= jobStopAfterDegrading {
					break
				}
			} else {
				degrading = 0
				prevBestTime = bestTimeAtN
			}
		}
		nVal, ok = grid.Next(nVal)
	}
	if best == incumbent {
		return nil, nil
	}
	// Cross-check the fast-path cost arithmetic against the cost model.
	if best != nil {
		full, err := cost.Tier(&best.Design)
		if err != nil {
			return nil, err
		}
		if full != best.Cost {
			return nil, fmt.Errorf("core: job-search cost mismatch: %v vs %v", best.Cost, full)
		}
	}
	return best, nil
}

func (s *Solver) buildJobDesign(tier *model.Tier, opt *model.ResourceOption,
	n, spares, warm int, settings []model.MechSetting) model.TierDesign {
	return model.TierDesign{
		TierName:   tier.Name,
		Option:     opt,
		NActive:    n,
		NSpare:     spares,
		NMinPerf:   n,
		MinActive:  minActiveFor(opt, n, n),
		SpareWarm:  warm,
		Mechanisms: settings,
	}
}

// comboJobTime composes the expected completion time from precomputed
// combo data and a cached availability evaluation.
func (s *Solver) comboJobTime(jc *jobCombo, entry evalEntry, perfAtN float64, n int) (units.Duration, error) {
	availability := 1 - entry.downtimeMinutes/avail.MinutesPerYear
	if availability <= 0 {
		return jobtime.MaxExpected, nil
	}
	overhead := 1.0
	for _, oh := range jc.overheads {
		f, err := oh.fn.Factor(oh.args, n)
		if err != nil {
			return 0, err
		}
		if f < 1 {
			return 0, fmt.Errorf("core: overhead factor %v below 1", f)
		}
		overhead *= f
	}
	lw := jc.lossWindow
	if !jc.hasLW {
		lw = 0 // no checkpointing: lose the whole job on failure
	}
	return jobtime.Expected(jobtime.Params{
		JobSize:        s.svc.JobSize,
		PerfPerHour:    perfAtN,
		OverheadFactor: overhead,
		LossWindow:     lw,
		SystemMTBF:     entry.sysMTBF,
		Availability:   availability,
	})
}
