package core

import (
	"testing"

	"aved/internal/model"
	"aved/internal/perf"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// rejuvenationInfra models software aging: the app server's soft-failure
// MTBF depends on the rejuvenation schedule (§1 lists rejuvenation as a
// design dimension). Frequent restarts stretch the effective MTBF but
// cost more in management tooling.
const rejuvenationInfra = `
component=hw cost=1000
  failure=hard mtbf=500d mttr=24h detect_time=1m
component=app cost=500
  failure=aging mtbf=<rejuvenation> mttr=0 detect_time=0
mechanism=rejuvenation
  param=schedule range=[none,weekly,daily]
    cost(schedule)=[0 50 200]
    mtbf(schedule)=[10d 40d 120d]
resource=r reconfig_time=0
  component=hw depend=null startup=1m
  component=app depend=hw startup=5m
`

const rejuvenationService = `
application=aging
tier=main
  resource=r sizing=dynamic failurescope=resource
    nActive=[1-100,+1] performance(nActive)=lin.dat
`

func rejuvenationSolver(t *testing.T) *Solver {
	t.Helper()
	inf, err := model.ParseInfrastructure(rejuvenationInfra)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := model.ParseService(rejuvenationService)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	reg := perf.NewRegistry()
	reg.RegisterCurve("lin.dat", perf.LinearCurve(100))
	s, err := NewSolver(inf, svc, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRejuvenationMechanism: with a loose budget the search skips the
// rejuvenation cost; tightening the budget makes the schedule the
// cheapest availability lever (each aging failure costs only the 5m
// restart, but at 10d MTBF they add up).
func TestRejuvenationMechanism(t *testing.T) {
	s := rejuvenationSolver(t)
	schedAt := func(budgetMinutes float64) string {
		sol, err := s.Solve(model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        400,
			MaxAnnualDowntime: units.Duration(budgetMinutes * float64(units.Minute)),
		})
		if err != nil {
			t.Fatalf("budget %v: %v", budgetMinutes, err)
		}
		ms, ok := sol.Design.Tiers[0].Mechanism("rejuvenation")
		if !ok {
			t.Fatal("design has no rejuvenation setting")
		}
		return ms.Values["schedule"].Str
	}
	// Loose budget: no rejuvenation needed (4 × ~36.5 failures/yr × 5m
	// restart ≈ 730 min plus hardware ≈ 4200 min).
	if got := schedAt(20000); got != "none" {
		t.Errorf("loose budget schedule = %q, want none", got)
	}
	// Demanding more than the aging-heavy design can deliver without a
	// schedule change forces weekly or daily rejuvenation.
	tight := schedAt(4400)
	if tight == "none" {
		t.Errorf("tight budget schedule = %q, want weekly or daily", tight)
	}
}

// TestRejuvenationChangesEffectiveMTBF checks the mechanism wiring at
// the EffectiveModes level.
func TestRejuvenationChangesEffectiveMTBF(t *testing.T) {
	s := rejuvenationSolver(t)
	tier := &s.svc.Tiers[0]
	mech := s.inf.Mechanisms["rejuvenation"]
	for _, tt := range []struct {
		schedule string
		want     units.Duration
	}{
		{"none", 10 * units.Day},
		{"weekly", 40 * units.Day},
		{"daily", 120 * units.Day},
	} {
		td := model.TierDesign{
			TierName:  tier.Name,
			Option:    &tier.Options[0],
			NActive:   2,
			NMinPerf:  2,
			MinActive: 2,
			SpareWarm: 0,
			Mechanisms: []model.MechSetting{{
				Mechanism: mech,
				Values:    map[string]model.ParamValue{"schedule": model.EnumValue(tt.schedule)},
			}},
		}
		ems, err := td.EffectiveModes()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, em := range ems {
			if em.Component == "app" && em.Mode == "aging" {
				found = true
				if em.MTBF != tt.want {
					t.Errorf("schedule %s: MTBF = %v, want %v", tt.schedule, em.MTBF, tt.want)
				}
			}
		}
		if !found {
			t.Fatal("aging mode missing")
		}
	}
}

// networkedEcommerceService adds a network tier to the §5.1 example —
// the paper's §7 future-work item (LAN topologies and network
// failures) expressed through tier composition: redundant switches are
// just another tier in series.
const networkedService = `
application=networked
tier=network
  resource=rSwitch sizing=dynamic failurescope=resource
    nActive=[1-4,+1] performance=1000000
tier=application
  resource=rC sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfC.dat
`

const switchInfraExtra = `
component=switch cost([inactive,active])=[900 1000]
  failure=hard mtbf=900d mttr=<maintenanceA> detect_time=1m
resource=rSwitch reconfig_time=0
  component=switch depend=null startup=1m
`

// TestNetworkRedundancyTier: a tight overall budget forces the search
// to buy a redundant switch even though one switch carries the load.
func TestNetworkRedundancyTier(t *testing.T) {
	inf, err := model.ParseInfrastructure(scenarios.InfrastructureSpec + switchInfraExtra)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := model.ParseService(networkedService)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	// Loose budget: a single switch suffices (one hard failure per
	// ~2.5y × 38h repair ≈ 900 min/yr).
	loose, err := s.Solve(model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 10000 * units.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, ok := loose.Design.Tier("network")
	if !ok {
		t.Fatal("missing network tier")
	}
	if net.Total() != 1 {
		t.Errorf("loose budget switches = %d, want 1", net.Total())
	}
	// Tight budget: the network tier needs redundancy.
	tight, err := s.Solve(model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 60 * units.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, _ = tight.Design.Tier("network")
	if net.Total() < 2 {
		t.Errorf("tight budget switches = %d, want redundancy", net.Total())
	}
	if tight.DowntimeMinutes > 60 {
		t.Errorf("combined downtime %v over budget", tight.DowntimeMinutes)
	}
	if tight.Cost <= loose.Cost {
		t.Error("redundant network should cost more")
	}
}

// warmthInfra is built so that a cold spare's failover transient (slow
// OS boot) blows a tight downtime budget, a warm spare (hardware + OS
// already running) meets it cheaply, and an extra active machine is
// dearer than warming the spare — the per-component spare operational
// modes of §4, dimension 4.
const warmthInfra = `
component=whw cost([inactive,active])=[500 550]
  failure=hard mtbf=100d mttr=48h detect_time=1m
component=wos cost=0
  failure=soft mtbf=10000d mttr=0 detect_time=0
component=wapp cost([inactive,active])=[0 200]
  failure=soft mtbf=10000d mttr=0 detect_time=0
resource=rw reconfig_time=0
  component=whw depend=null startup=2m
  component=wos depend=whw startup=15m
  component=wapp depend=wos startup=1m
`

const warmthService = `
application=warmth
tier=main
  resource=rw sizing=dynamic failurescope=resource
    nActive=[1-100,+1] performance(nActive)=wlin.dat
`

func warmthSolver(t *testing.T, explore bool) *Solver {
	t.Helper()
	inf, err := model.ParseInfrastructure(warmthInfra)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := model.ParseService(warmthService)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	reg := perf.NewRegistry()
	reg.RegisterCurve("wlin.dat", perf.LinearCurve(100))
	s, err := NewSolver(inf, svc, Options{Registry: reg, ExploreSpareWarmth: explore})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSpareWarmthExploration: with warmth exploration on, a warm spare
// (hardware and OS running, application cold) is the cheapest design
// meeting a failover-dominated budget; without it the search must buy
// a dearer alternative.
func TestSpareWarmthExploration(t *testing.T) {
	req := model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        200, // two machines for load
		MaxAnnualDowntime: 40 * units.Minute,
	}
	warm, err := warmthSolver(t, true).Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	td := &warm.Design.Tiers[0]
	if td.NSpare == 0 || td.SpareWarm == 0 {
		t.Fatalf("expected a warm spare, got %s", warm.Design.Label())
	}
	if td.SpareWarm == len(td.Resource().Components) {
		t.Errorf("fully hot spare chosen (%s); a partial warmth level should suffice", warm.Design.Label())
	}
	cold, err := warmthSolver(t, false).Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost >= cold.Cost {
		t.Errorf("warmth exploration should find a cheaper design: %v vs %v", warm.Cost, cold.Cost)
	}
	if warm.DowntimeMinutes > 40 || cold.DowntimeMinutes > 40 {
		t.Error("both solutions must meet the budget")
	}
}

// TestWarmSpareShortensFailover checks the failover arithmetic: each
// warmth level removes the startup of the components already running.
func TestWarmSpareShortensFailover(t *testing.T) {
	inf, err := model.ParseInfrastructure(warmthInfra)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := model.ParseService(warmthService)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	wantFailover := []units.Duration{
		1*units.Minute + 18*units.Minute, // cold: hw 2m + os 15m + app 1m
		1*units.Minute + 16*units.Minute, // hw warm: os 15m + app 1m
		1*units.Minute + 1*units.Minute,  // hw+os warm: app 1m
		1 * units.Minute,                 // hot: detect only
	}
	for warm, want := range wantFailover {
		td := model.TierDesign{
			TierName:  "main",
			Option:    &svc.Tiers[0].Options[0],
			NActive:   2,
			NSpare:    1,
			NMinPerf:  2,
			MinActive: 2,
			SpareWarm: warm,
		}
		ems, err := td.EffectiveModes()
		if err != nil {
			t.Fatal(err)
		}
		if got := ems[0].FailoverTime; got != want {
			t.Errorf("warm %d: failover = %v, want %v", warm, got, want)
		}
		// SparePowered tracks the warmth prefix.
		for i, em := range ems {
			if got := em.SparePowered; got != (i < warm) {
				t.Errorf("warm %d mode %d: SparePowered = %v", warm, i, got)
			}
		}
	}
}
