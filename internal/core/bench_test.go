package core

import (
	"testing"

	"aved/internal/scenarios"
	"aved/internal/units"
)

// benchCandidates builds a realistic unsorted candidate pool of the
// size a tier frontier merge sees.
func benchCandidates(n int) []TierCandidate {
	out := make([]TierCandidate, n)
	cost, down := 1000.0, 5000.0
	for i := range out {
		out[i] = TierCandidate{Cost: units.Money(cost), DowntimeMinutes: down}
		// Interleave dominated and non-dominated points.
		if i%3 == 0 {
			cost *= 1.07
			down *= 0.83
		} else {
			cost *= 1.02
			down *= 1.05
		}
	}
	return out
}

// BenchmarkParetoReduce tracks the frontier-merge allocation profile:
// the reduce sorts in place, so only the reduced output allocates.
func BenchmarkParetoReduce(b *testing.B) {
	src := benchCandidates(512)
	work := make([]TierCandidate, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		if out := paretoReduce(work); len(out) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// BenchmarkTierFrontier measures one tier's full Pareto-frontier build
// (the phase-2 unit of work) sequentially and across the worker pool,
// with allocation reporting for the candidate-buffer reuse.
func BenchmarkTierFrontier(b *testing.B) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh solver per iteration measures the uncached build.
			svc, err := scenarios.ApplicationTier(inf)
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			var stats searchStats
			f, err := s.tierFrontier(&s.svc.Tiers[0], 1000, &stats)
			if err != nil {
				b.Fatal(err)
			}
			if len(f) == 0 {
				b.Fatal("empty frontier")
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}
