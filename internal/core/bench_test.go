package core

import (
	"context"
	"math"
	"testing"

	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// benchCandidates builds a realistic unsorted candidate pool of the
// size a tier frontier merge sees.
func benchCandidates(n int) []TierCandidate {
	out := make([]TierCandidate, n)
	cost, down := 1000.0, 5000.0
	for i := range out {
		out[i] = TierCandidate{Cost: units.Money(cost), DowntimeMinutes: down}
		// Interleave dominated and non-dominated points.
		if i%3 == 0 {
			cost *= 1.07
			down *= 0.83
		} else {
			cost *= 1.02
			down *= 1.05
		}
	}
	return out
}

// BenchmarkParetoReduce tracks the frontier-merge allocation profile:
// the reduce sorts in place, so only the reduced output allocates.
func BenchmarkParetoReduce(b *testing.B) {
	src := benchCandidates(512)
	work := make([]TierCandidate, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		if out := paretoReduce(work); len(out) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// benchEvalDesigns builds the warmed-cache working set for
// BenchmarkEvalTier: distinct (size, maintenance level) designs of the
// application tier.
func benchEvalDesigns(tb testing.TB, s *Solver) []model.TierDesign {
	tb.Helper()
	var designs []model.TierDesign
	for n := 2; n <= 9; n++ {
		for _, lv := range []string{"bronze", "silver", "gold"} {
			designs = append(designs, model.TierDesign{
				TierName:  "application",
				Option:    &s.svc.Tiers[0].Options[0],
				NActive:   n,
				NSpare:    1,
				NMinPerf:  n,
				MinActive: n,
				Mechanisms: []model.MechSetting{{
					Mechanism: s.inf.Mechanisms["maintenanceA"],
					Values:    map[string]model.ParamValue{"level": model.EnumValue(lv)},
				}},
			})
		}
	}
	return designs
}

// BenchmarkEvalTier is the hot-path acceptance benchmark: a warmed
// cached evaluation keyed by the packed fingerprint versus the same
// lookup keyed by the legacy string key (relevance map + sorted labels
// + concatenation per call, as on the old hot path). The packed variant
// must allocate at least 5× less; in fact it allocates nothing.
func BenchmarkEvalTier(b *testing.B) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		b.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry()})
	if err != nil {
		b.Fatal(err)
	}
	designs := benchEvalDesigns(b, s)
	var stats searchStats
	for i := range designs {
		if _, err := s.evalTier(context.Background(), &designs[i], fingerprintOf(&designs[i]), &stats); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("packed-fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			td := &designs[i%len(designs)]
			if _, err := s.evalTier(context.Background(), td, fingerprintOf(td), &stats); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The baseline replays the retired keying scheme against an
	// equivalently warmed map, isolating the cost the rekey removed.
	b.Run("string-key-baseline", func(b *testing.B) {
		warmed := make(map[string]evalEntry, len(designs))
		for i := range designs {
			ev, err := s.evalTier(context.Background(), &designs[i], fingerprintOf(&designs[i]), &stats)
			if err != nil {
				b.Fatal(err)
			}
			warmed[legacyAvailKey(&designs[i])] = ev
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := warmed[legacyAvailKey(&designs[i%len(designs)])]; !ok {
				b.Fatal("baseline cache miss")
			}
		}
	})
}

// BenchmarkTierFrontier measures one tier's full Pareto-frontier build
// (the phase-2 unit of work) sequentially and across the worker pool,
// with allocation reporting for the candidate-buffer reuse.
func BenchmarkTierFrontier(b *testing.B) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh solver per iteration measures the uncached build.
			svc, err := scenarios.ApplicationTier(inf)
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			var stats searchStats
			f, err := s.tierFrontier(context.Background(), &s.svc.Tiers[0], tierLoad{full: 1000, degraded: 1000}, math.Inf(1), &stats)
			if err != nil {
				b.Fatal(err)
			}
			if len(f) == 0 {
				b.Fatal("empty frontier")
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}
