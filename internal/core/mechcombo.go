package core

import (
	"fmt"

	"aved/internal/model"
)

// comboSet is one resource type's memoized mechanism enumeration: the
// combinations plus each combo's relevant-settings fingerprint, both
// shared read-only by every option walk over the type.
type comboSet struct {
	combos [][]model.MechSetting
	fps    []fp128
}

// mechCombos returns the combination set for a resource type, building
// it on first use (see buildCombos) and serving the memoized set —
// combinations and fingerprints alike — afterwards. The set depends
// only on inputs fixed between Rebinds, so memoization cannot change
// results; it exists because a solve walks each resource type's options
// several times (per-tier search, frontier build) and the enumeration
// is allocation-heavy.
func (s *Solver) mechCombos(rt *model.ResourceType) (*comboSet, error) {
	s.comboMu.Lock()
	cs, ok := s.comboCache[rt]
	s.comboMu.Unlock()
	if ok {
		return cs, nil
	}
	combos, err := s.buildCombos(rt)
	if err != nil {
		return nil, err
	}
	cs = &comboSet{combos: combos, fps: make([]fp128, len(combos))}
	for i, combo := range combos {
		cs.fps[i] = comboFP(rt, combo)
	}
	s.comboMu.Lock()
	if prev, ok := s.comboCache[rt]; ok {
		// A concurrent walk built the same set first; converge on the
		// canonical value.
		cs = prev
	} else {
		if s.comboCache == nil {
			s.comboCache = map[*model.ResourceType]*comboSet{}
		}
		s.comboCache[rt] = cs
	}
	s.comboMu.Unlock()
	return cs, nil
}

// buildCombos enumerates every combination of parameter settings for
// the mechanisms a resource type references, honouring FixedMechanisms
// pins. Combinations are generated deterministically: mechanisms in
// first-reference order, enumerated parameters in declaration order,
// numeric grids ascending.
func (s *Solver) buildCombos(rt *model.ResourceType) ([][]model.MechSetting, error) {
	names := rt.Mechanisms()
	combos := [][]model.MechSetting{nil}
	for _, name := range names {
		mech, ok := s.inf.Mechanisms[name]
		if !ok {
			return nil, fmt.Errorf("core: resource %q references unknown mechanism %q", rt.Name, name)
		}
		settings, err := s.settingsFor(mech)
		if err != nil {
			return nil, err
		}
		next := make([][]model.MechSetting, 0, len(combos)*len(settings))
		for _, combo := range combos {
			for _, setting := range settings {
				grown := make([]model.MechSetting, len(combo), len(combo)+1)
				copy(grown, combo)
				grown = append(grown, setting)
				next = append(next, grown)
			}
		}
		combos = next
	}
	return combos, nil
}

// settingsFor enumerates one mechanism's parameter-value combinations.
func (s *Solver) settingsFor(mech *model.Mechanism) ([]model.MechSetting, error) {
	pins := s.opts.FixedMechanisms[mech.Name]
	valueSets := make([][]model.ParamValue, len(mech.Params))
	for i, p := range mech.Params {
		if pin, ok := pins[p.Name]; ok {
			valueSets[i] = []model.ParamValue{pin}
			continue
		}
		if p.IsEnum() {
			vs := make([]model.ParamValue, len(p.Enum))
			for j, e := range p.Enum {
				vs[j] = model.EnumValue(e)
			}
			valueSets[i] = vs
			continue
		}
		points := p.Grid.Values()
		vs := make([]model.ParamValue, len(points))
		for j, hours := range points {
			vs[j] = model.DurationValue(hours)
		}
		valueSets[i] = vs
	}
	out := []model.MechSetting{{Mechanism: mech, Values: map[string]model.ParamValue{}}}
	for i, p := range mech.Params {
		next := make([]model.MechSetting, 0, len(out)*len(valueSets[i]))
		for _, base := range out {
			for _, v := range valueSets[i] {
				vals := make(map[string]model.ParamValue, len(base.Values)+1)
				for k, bv := range base.Values {
					vals[k] = bv
				}
				vals[p.Name] = v
				next = append(next, model.MechSetting{Mechanism: mech, Values: vals})
			}
		}
		out = next
	}
	for _, ms := range out {
		if err := ms.Validate(); err != nil {
			return nil, fmt.Errorf("core: mechanism %q: %w", mech.Name, err)
		}
	}
	return out, nil
}
