package core

import (
	"fmt"
	"sort"
	"strings"

	"aved/internal/model"
)

// mechCombos enumerates every combination of parameter settings for the
// mechanisms a resource type references, honouring FixedMechanisms
// pins. Combinations are generated deterministically: mechanisms in
// first-reference order, enumerated parameters in declaration order,
// numeric grids ascending.
func (s *Solver) mechCombos(rt *model.ResourceType) ([][]model.MechSetting, error) {
	names := rt.Mechanisms()
	combos := [][]model.MechSetting{nil}
	for _, name := range names {
		mech, ok := s.inf.Mechanisms[name]
		if !ok {
			return nil, fmt.Errorf("core: resource %q references unknown mechanism %q", rt.Name, name)
		}
		settings, err := s.settingsFor(mech)
		if err != nil {
			return nil, err
		}
		next := make([][]model.MechSetting, 0, len(combos)*len(settings))
		for _, combo := range combos {
			for _, setting := range settings {
				grown := make([]model.MechSetting, len(combo), len(combo)+1)
				copy(grown, combo)
				grown = append(grown, setting)
				next = append(next, grown)
			}
		}
		combos = next
	}
	return combos, nil
}

// settingsFor enumerates one mechanism's parameter-value combinations.
func (s *Solver) settingsFor(mech *model.Mechanism) ([]model.MechSetting, error) {
	pins := s.opts.FixedMechanisms[mech.Name]
	valueSets := make([][]model.ParamValue, len(mech.Params))
	for i, p := range mech.Params {
		if pin, ok := pins[p.Name]; ok {
			valueSets[i] = []model.ParamValue{pin}
			continue
		}
		if p.IsEnum() {
			vs := make([]model.ParamValue, len(p.Enum))
			for j, e := range p.Enum {
				vs[j] = model.EnumValue(e)
			}
			valueSets[i] = vs
			continue
		}
		points := p.Grid.Values()
		vs := make([]model.ParamValue, len(points))
		for j, hours := range points {
			vs[j] = model.DurationValue(hours)
		}
		valueSets[i] = vs
	}
	out := []model.MechSetting{{Mechanism: mech, Values: map[string]model.ParamValue{}}}
	for i, p := range mech.Params {
		next := make([]model.MechSetting, 0, len(out)*len(valueSets[i]))
		for _, base := range out {
			for _, v := range valueSets[i] {
				vals := make(map[string]model.ParamValue, len(base.Values)+1)
				for k, bv := range base.Values {
					vals[k] = bv
				}
				vals[p.Name] = v
				next = append(next, model.MechSetting{Mechanism: mech, Values: vals})
			}
		}
		out = next
	}
	for _, ms := range out {
		if err := ms.Validate(); err != nil {
			return nil, fmt.Errorf("core: mechanism %q: %w", mech.Name, err)
		}
	}
	return out, nil
}

// availKey fingerprints the parts of a candidate that determine its
// availability: resource, counts, spare mode, and only the mechanism
// settings that feed MTTRs. Mechanisms affecting just loss windows or
// performance (e.g. checkpointing) do not change availability, so
// candidates differing only there share one engine evaluation.
func availKey(td *model.TierDesign) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|n%d|m%d|s%d|w%d",
		td.TierName, td.Resource().Name, td.NActive, td.MinActive, td.NSpare, td.SpareWarm)
	relevant := map[string]bool{}
	for _, rc := range td.Resource().Components {
		for _, f := range rc.Component.Failures {
			if f.MTTRRef != "" {
				relevant[f.MTTRRef] = true
			}
			if f.MTBFRef != "" {
				relevant[f.MTBFRef] = true
			}
		}
	}
	labels := make([]string, 0, len(td.Mechanisms))
	for _, ms := range td.Mechanisms {
		if ms.Mechanism != nil && relevant[ms.Mechanism.Name] {
			labels = append(labels, ms.Label())
		}
	}
	sort.Strings(labels)
	sb.WriteByte('|')
	sb.WriteString(strings.Join(labels, ","))
	return sb.String()
}
