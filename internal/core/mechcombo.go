package core

import (
	"fmt"

	"aved/internal/model"
)

// mechCombos enumerates every combination of parameter settings for the
// mechanisms a resource type references, honouring FixedMechanisms
// pins. Combinations are generated deterministically: mechanisms in
// first-reference order, enumerated parameters in declaration order,
// numeric grids ascending.
func (s *Solver) mechCombos(rt *model.ResourceType) ([][]model.MechSetting, error) {
	names := rt.Mechanisms()
	combos := [][]model.MechSetting{nil}
	for _, name := range names {
		mech, ok := s.inf.Mechanisms[name]
		if !ok {
			return nil, fmt.Errorf("core: resource %q references unknown mechanism %q", rt.Name, name)
		}
		settings, err := s.settingsFor(mech)
		if err != nil {
			return nil, err
		}
		next := make([][]model.MechSetting, 0, len(combos)*len(settings))
		for _, combo := range combos {
			for _, setting := range settings {
				grown := make([]model.MechSetting, len(combo), len(combo)+1)
				copy(grown, combo)
				grown = append(grown, setting)
				next = append(next, grown)
			}
		}
		combos = next
	}
	return combos, nil
}

// settingsFor enumerates one mechanism's parameter-value combinations.
func (s *Solver) settingsFor(mech *model.Mechanism) ([]model.MechSetting, error) {
	pins := s.opts.FixedMechanisms[mech.Name]
	valueSets := make([][]model.ParamValue, len(mech.Params))
	for i, p := range mech.Params {
		if pin, ok := pins[p.Name]; ok {
			valueSets[i] = []model.ParamValue{pin}
			continue
		}
		if p.IsEnum() {
			vs := make([]model.ParamValue, len(p.Enum))
			for j, e := range p.Enum {
				vs[j] = model.EnumValue(e)
			}
			valueSets[i] = vs
			continue
		}
		points := p.Grid.Values()
		vs := make([]model.ParamValue, len(points))
		for j, hours := range points {
			vs[j] = model.DurationValue(hours)
		}
		valueSets[i] = vs
	}
	out := []model.MechSetting{{Mechanism: mech, Values: map[string]model.ParamValue{}}}
	for i, p := range mech.Params {
		next := make([]model.MechSetting, 0, len(out)*len(valueSets[i]))
		for _, base := range out {
			for _, v := range valueSets[i] {
				vals := make(map[string]model.ParamValue, len(base.Values)+1)
				for k, bv := range base.Values {
					vals[k] = bv
				}
				vals[p.Name] = v
				next = append(next, model.MechSetting{Mechanism: mech, Values: vals})
			}
		}
		out = next
	}
	for _, ms := range out {
		if err := ms.Validate(); err != nil {
			return nil, fmt.Errorf("core: mechanism %q: %w", mech.Name, err)
		}
	}
	return out, nil
}
