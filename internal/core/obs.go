package core

import (
	"errors"
	"fmt"
	"time"

	"aved/internal/model"
	"aved/internal/obs"
)

// fpHex renders a packed fingerprint for trace events. Only called on
// tracer-enabled paths; the disabled hot path never formats.
func fpHex(fp fp128) string {
	return fmt.Sprintf("%016x%016x", fp.hi, fp.lo)
}

// This file is the solver's observability seam. Everything here is cold
// path: it runs once per Solve, never per candidate. The per-candidate
// hot paths carry only nil-checked tracer emissions and the atomic
// counters they always carried; with Tracer and Metrics unset (the
// default) the search does no event construction and no extra
// allocation, which TestObsDisabledZeroAlloc and BenchmarkEvalTier pin.

// obsInstrumentable is implemented by availability engines that can
// expose internal counters on a metrics registry and emit trace events
// (avail.MarkovEngine, sim.Engine). Structural, like precisionTunable,
// so core carries no dependency on the engine packages.
type obsInstrumentable interface {
	InstrumentObs(reg *obs.Registry, tr obs.Tracer)
}

// memoStatser is implemented by engines with a mode-chain memo
// (avail.MarkovEngine). Used to attribute memo activity to a solve by
// before/after deltas.
type memoStatser interface {
	MemoStats() (hits, solves uint64)
}

// repStatser is implemented by Monte-Carlo engines (sim.Engine). Used
// to attribute replication work to a solve by before/after deltas.
type repStatser interface {
	RepStats() (replications, batches uint64)
}

// solveObs carries one Solve invocation's observability state from
// beginSolve to endSolve: the wall-clock start and the engine-counter
// bases the deltas subtract.
type solveObs struct {
	start    time.Time
	kind     string
	req      model.Requirements
	memoBase [2]uint64
	repBase  [2]uint64
	hasMemo  bool
	hasReps  bool
}

func reqKindString(k model.RequirementKind) string {
	switch k {
	case model.ReqEnterprise:
		return "enterprise"
	case model.ReqJob:
		return "job"
	default:
		return "unknown"
	}
}

// beginSolve captures engine-counter bases (always — Solution.Stats
// surfaces the deltas whether or not tracing is on) and announces the
// search on the tracer.
func (s *Solver) beginSolve(req model.Requirements) solveObs {
	so := solveObs{start: time.Now(), kind: reqKindString(req.Kind), req: req}
	if eng, ok := s.opts.Engine.(memoStatser); ok {
		so.hasMemo = true
		so.memoBase[0], so.memoBase[1] = eng.MemoStats()
	}
	if eng, ok := s.opts.Engine.(repStatser); ok {
		so.hasReps = true
		so.repBase[0], so.repBase[1] = eng.RepStats()
	}
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{
			Ev:      obs.EvSearchStart,
			Service: s.svc.Name,
			Kind:    so.kind,
			Load:    so.req.PeakLoad(),
			Budget:  so.req.MaxAnnualDowntime.Minutes(),
			ReqH:    so.req.MaxJobTime.Hours(),
		})
	}
	return so
}

// endSolve completes the Solve observability: engine deltas into the
// Solution's Stats, search counters and latency into the registry, and
// a terminal search.end or search.error event.
func (s *Solver) endSolve(so solveObs, sol *Solution, err error) (*Solution, error) {
	ns := time.Since(so.start).Nanoseconds()
	ms := obs.DurMS(ns)
	if err != nil {
		if reg := s.opts.Metrics; reg != nil {
			reg.Counter("core.solve_errors").Inc()
			var inf *InfeasibleError
			if errors.As(err, &inf) {
				reg.Counter("core.infeasible").Inc()
			}
			var ce *CanceledError
			if errors.As(err, &ce) {
				reg.Counter("core.solve_canceled").Inc()
			}
		}
		if tr := s.opts.Tracer; tr != nil {
			tr.Emit(obs.Event{
				Ev:      obs.EvSearchError,
				Service: s.svc.Name,
				Kind:    so.kind,
				Load:    so.req.PeakLoad(),
				DurNs:   ns,
				MS:      ms,
				Err:     err.Error(),
			})
		}
		return nil, err
	}
	if so.hasMemo {
		h, sv := s.opts.Engine.(memoStatser).MemoStats()
		sol.Stats.ModeMemoHits = h - so.memoBase[0]
		sol.Stats.ModeMemoSolves = sv - so.memoBase[1]
	}
	if so.hasReps {
		r, b := s.opts.Engine.(repStatser).RepStats()
		sol.Stats.SimReplications = r - so.repBase[0]
		sol.Stats.SimBatches = b - so.repBase[1]
	}
	if reg := s.opts.Metrics; reg != nil {
		reg.Counter("core.solves").Inc()
		reg.Counter("core.candidates").Add(int64(sol.Stats.CandidatesGenerated))
		reg.Counter("core.cost_pruned").Add(int64(sol.Stats.CostPruned))
		reg.Counter("core.evaluations").Add(int64(sol.Stats.Evaluations))
		reg.Counter("core.eval_cache_hits").Add(int64(sol.Stats.EvalCacheHits))
		reg.Counter("core.bound_pruned").Add(int64(sol.Stats.BoundPruned))
		reg.Counter("core.warm_reuse").Add(int64(sol.Stats.WarmStartReuse))
		reg.Counter("core.frontier_reuse").Add(int64(sol.Stats.FrontierReuse))
		reg.Histogram("core.solve_ms").Observe(ms)
	}
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{
			Ev:            obs.EvSearchEnd,
			Service:       s.svc.Name,
			Kind:          so.kind,
			Load:          so.req.PeakLoad(),
			Cost:          float64(sol.Cost),
			Down:          sol.DowntimeMinutes,
			JobH:          sol.JobTime.Hours(),
			Candidates:    int64(sol.Stats.CandidatesGenerated),
			Pruned:        int64(sol.Stats.CostPruned),
			Evals:         int64(sol.Stats.Evaluations),
			CacheHits:     int64(sol.Stats.EvalCacheHits),
			BoundPruned:   int64(sol.Stats.BoundPruned),
			WarmReuse:     int64(sol.Stats.WarmStartReuse),
			FrontierReuse: int64(sol.Stats.FrontierReuse),
			MemoHits:      sol.Stats.ModeMemoHits,
			MemoSolves:    sol.Stats.ModeMemoSolves,
			SimReps:       sol.Stats.SimReplications,
			DurNs:         ns,
			MS:            ms,
		})
	}
	return sol, nil
}

