package core

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"testing"

	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/scenarios"
	"aved/internal/units"
)

func ecommerceObsSolver(t *testing.T, opts Options) *Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Ecommerce(inf)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Registry == nil {
		opts.Registry = scenarios.Registry()
	}
	s, err := NewSolver(inf, svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// normalizeEvents canonicalizes a trace for cross-run comparison:
// wall-clock fields zeroed, engine-memo events dropped (the mode memo
// is not singleflight, so concurrent misses may double-solve and the
// hit/solve split is scheduling-dependent), then sorted as a multiset.
func normalizeEvents(evs []obs.Event) []string {
	out := make([]string, 0, len(evs))
	for _, e := range evs {
		if strings.HasPrefix(e.Ev, "memo.") {
			continue
		}
		e.T, e.MS, e.DurNs = 0, 0, 0
		b, err := json.Marshal(e)
		if err != nil {
			panic(err)
		}
		out = append(out, string(b))
	}
	sort.Strings(out)
	return out
}

// TestTraceDeterministicAcrossWorkers pins the repo invariant on the
// trace surface: the multiset of core search events is identical
// whatever the worker count, because per-tier walks are sequential and
// the singleflight evaluation cache gives every fingerprint exactly one
// miss however many goroutines race on it.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	req := enterpriseReq(2000, 60)
	run := func(workers int) []string {
		var tr obs.CollectTracer
		s := ecommerceObsSolver(t, Options{Workers: workers, Tracer: &tr})
		if _, err := s.Solve(req); err != nil {
			t.Fatal(err)
		}
		return normalizeEvents(tr.Events())
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: %d sequential vs %d parallel", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("event multiset diverges at %d:\n%s\nvs\n%s", i, seq[i], par[i])
		}
	}
}

// TestTraceEventCountsMatchStats ties the event stream to the Solution
// counters: every counted unit of search effort has exactly one event.
func TestTraceEventCountsMatchStats(t *testing.T) {
	var tr obs.CollectTracer
	s := ecommerceObsSolver(t, Options{Tracer: &tr})
	sol, err := s.Solve(enterpriseReq(2000, 60))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range tr.Events() {
		counts[e.Ev]++
	}
	checks := []struct {
		ev   string
		want int
	}{
		{obs.EvSearchStart, 1},
		{obs.EvSearchEnd, 1},
		{obs.EvCandGen, sol.Stats.CandidatesGenerated},
		{obs.EvCandPrune, sol.Stats.CostPruned},
		{obs.EvEvalMiss, sol.Stats.Evaluations},
		{obs.EvEvalHit, sol.Stats.EvalCacheHits},
	}
	for _, c := range checks {
		if counts[c.ev] != c.want {
			t.Errorf("%s events = %d, want %d", c.ev, counts[c.ev], c.want)
		}
	}
	if counts[obs.EvPhaseStart] == 0 || counts[obs.EvPhaseStart] != counts[obs.EvPhaseEnd] {
		t.Errorf("unbalanced phases: %d starts, %d ends", counts[obs.EvPhaseStart], counts[obs.EvPhaseEnd])
	}
	if counts[obs.EvTierDone] != len(sol.Design.Tiers) {
		t.Errorf("tier.done events = %d, want %d", counts[obs.EvTierDone], len(sol.Design.Tiers))
	}
	if counts[obs.EvIncumbent] == 0 {
		t.Error("no incumbent events for a feasible solve")
	}
}

// TestJobTraceEvents covers the job-search path: kind=job on the
// terminal event, the job-search phase, and incumbents carrying the
// completion time.
func TestJobTraceEvents(t *testing.T) {
	var tr obs.CollectTracer
	s := scientificSolver(t, Options{Tracer: &tr})
	sol, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: 3 * units.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var start, end, incumbents, phases int
	for _, e := range tr.Events() {
		switch e.Ev {
		case obs.EvSearchStart:
			start++
			if e.Kind != "job" {
				t.Errorf("search.start kind = %q, want job", e.Kind)
			}
		case obs.EvSearchEnd:
			end++
			if e.JobH != sol.JobTime.Hours() {
				t.Errorf("search.end jobH = %v, want %v", e.JobH, sol.JobTime.Hours())
			}
		case obs.EvIncumbent:
			incumbents++
			if e.JobH <= 0 {
				t.Errorf("job incumbent without a completion time: %+v", e)
			}
		case obs.EvPhaseStart:
			if e.Phase != "job-search" {
				t.Errorf("phase = %q, want job-search", e.Phase)
			}
			phases++
		}
	}
	if start != 1 || end != 1 || incumbents == 0 || phases != 1 {
		t.Errorf("start=%d end=%d incumbents=%d phases=%d", start, end, incumbents, phases)
	}
}

// TestSearchErrorEvent: infeasible solves emit search.error and bump
// the registry's infeasible counter.
func TestSearchErrorEvent(t *testing.T) {
	var tr obs.CollectTracer
	reg := obs.NewRegistry()
	s := appTierSolver(t, Options{Tracer: &tr, Metrics: reg})
	_, err := s.Solve(enterpriseReq(1e9, 1000))
	var infErr *InfeasibleError
	if !errors.As(err, &infErr) {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
	var errEvents int
	for _, e := range tr.Events() {
		if e.Ev == obs.EvSearchError {
			errEvents++
			if e.Err == "" {
				t.Error("search.error without an error string")
			}
		}
		if e.Ev == obs.EvSearchEnd {
			t.Error("search.end emitted for a failed solve")
		}
	}
	if errEvents != 1 {
		t.Errorf("search.error events = %d, want 1", errEvents)
	}
	snap := reg.Snapshot()
	if snap.Counters["core.infeasible"] != 1 || snap.Counters["core.solve_errors"] != 1 {
		t.Errorf("error counters = %v", snap.Counters)
	}
}

// TestMetricsRegistryPopulated: a successful solve flushes its counters
// and latency into the registry, matching the Solution's Stats.
func TestMetricsRegistryPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	s := ecommerceObsSolver(t, Options{Metrics: reg})
	sol, err := s.Solve(enterpriseReq(2000, 60))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[string]int64{
		"core.solves":          1,
		"core.candidates":      int64(sol.Stats.CandidatesGenerated),
		"core.cost_pruned":     int64(sol.Stats.CostPruned),
		"core.evaluations":     int64(sol.Stats.Evaluations),
		"core.eval_cache_hits": int64(sol.Stats.EvalCacheHits),
	}
	for k, v := range want {
		if snap.Counters[k] != v {
			t.Errorf("%s = %d, want %d", k, snap.Counters[k], v)
		}
	}
	if h := snap.Histograms["core.solve_ms"]; h.Count != 1 {
		t.Errorf("core.solve_ms count = %d, want 1", h.Count)
	}
}

// TestObsDisabledZeroAlloc is the overhead-budget regression: with
// tracing and metrics off, a warm cached evaluation must not allocate.
func TestObsDisabledZeroAlloc(t *testing.T) {
	s := appTierSolver(t, Options{})
	designs := benchEvalDesigns(t, s)
	var stats searchStats
	for i := range designs {
		if _, err := s.evalTier(context.Background(), &designs[i], fingerprintOf(&designs[i]), &stats); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		td := &designs[0]
		if _, err := s.evalTier(context.Background(), td, fingerprintOf(td), &stats); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("evalTier with observability disabled allocates %v per call, want 0", allocs)
	}
}

// TestSolutionStatsMemoDeltas: Stats attributes engine memo activity to
// the solve that caused it — a repeat solve on a warm engine reports
// hits but no new chain solves.
func TestSolutionStatsMemoDeltas(t *testing.T) {
	s := appTierSolver(t, Options{})
	first, err := s.Solve(enterpriseReq(1000, 100))
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ModeMemoSolves == 0 {
		t.Error("first solve reports no mode-chain solves")
	}
	second, err := s.Solve(enterpriseReq(1000, 100))
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ModeMemoSolves != 0 {
		t.Errorf("repeat solve reports %d new chain solves, want 0 (warm memo)", second.Stats.ModeMemoSolves)
	}
}
