// Package core implements Aved's design-space search engine (§4.1 of
// the paper) — the primary contribution. The solver takes a bound
// infrastructure model, a resolved service model, a performance
// registry and service requirements, and searches resource types,
// active/spare counts, spare operational modes and availability-
// mechanism parameters for the minimum-cost design that satisfies the
// requirements, using cost-first pruning once a feasible design is
// known and the paper's termination rules.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/perf"
	"aved/internal/units"
)

// DefaultMaxRedundancy bounds how many resources beyond the
// performance minimum the per-tier search explores. The paper's search
// stops when extra resources can no longer pay for themselves; the cap
// is a safety net for degenerate inputs.
const DefaultMaxRedundancy = 12

// SearchMode selects the per-tier search strategy.
type SearchMode int

const (
	// SearchBnB is best-first branch-and-bound with admissible cost
	// bounds: within each resource total, candidates evaluate in
	// ascending-cost order and the tail dearer than the incumbent is
	// pruned without an engine evaluation; in the frontier phase, whole
	// size subtrees whose cheapest candidate exceeds the combination
	// upper bound are skipped. Results are bit-identical to
	// SearchExhaustive (Design, Cost, DowntimeMinutes); only the effort
	// counters differ. The default.
	SearchBnB SearchMode = iota
	// SearchExhaustive is the original enumeration order with §4.1
	// incumbent cost pruning only. Kept for the ablation benchmarks and
	// the bit-identity property tests.
	SearchExhaustive
)

// String renders the mode as its flag spelling.
func (m SearchMode) String() string {
	switch m {
	case SearchBnB:
		return "bnb"
	case SearchExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("SearchMode(%d)", int(m))
	}
}

// ParseSearchMode resolves a search-strategy name as the CLIs and the
// server accept it. The empty string is the default strategy.
func ParseSearchMode(name string) (SearchMode, error) {
	switch name {
	case "", "bnb":
		return SearchBnB, nil
	case "exhaustive":
		return SearchExhaustive, nil
	default:
		return SearchBnB, fmt.Errorf("unknown search strategy %q (want bnb or exhaustive)", name)
	}
}

// Options configure a Solver.
type Options struct {
	// Engine evaluates availability models. Defaults to the analytic
	// Markov engine.
	Engine avail.Engine
	// Registry resolves performance references. Required.
	Registry *perf.Registry
	// Search selects the per-tier search strategy. The zero value is
	// SearchBnB; both modes return bit-identical solutions.
	Search SearchMode
	// ExploreSpareWarmth makes the search enumerate per-component spare
	// operational modes (§4, dimension 4) as warmth levels: 0 (cold,
	// everything inactive) up to the resource's component count (hot).
	// Off by default, matching the §5.1 examples' all-inactive spares.
	ExploreSpareWarmth bool
	// MaxRedundancy caps extra resources (actives beyond the
	// performance minimum plus spares) per tier. Zero means
	// DefaultMaxRedundancy.
	MaxRedundancy int
	// FixedMechanisms pins mechanism parameters, e.g. fixing the
	// maintenance level to bronze as §5.2 does. Keyed by mechanism
	// name, then parameter name.
	FixedMechanisms map[string]map[string]model.ParamValue
	// Combiner selects the multi-tier combination strategy. The zero
	// value is the exact branch-and-bound combiner.
	Combiner CombineMethod
	// Workers bounds the worker pool the search fans independent work
	// over (per-tier searches, frontier evaluations) and is inherited by
	// the sweeps driving this solver. Zero means runtime.GOMAXPROCS(0);
	// 1 forces sequential execution. The setting never changes results
	// — parallel paths are bit-identical to the sequential order.
	Workers int
	// SimRelErr, when positive, tunes adaptive-precision replication on
	// a Monte-Carlo Engine (sim.Engine): replications stop once the 95%
	// confidence half-width falls under SimRelErr times the running
	// mean, capped by the engine's replication budget. Ignored for
	// engines without precision control (the analytic engines).
	SimRelErr float64
	// SimBatch sets the adaptive controller's replication batch size
	// (0 keeps the engine default). Ignored without precision control.
	SimBatch int
	// Timings enables per-phase wall-clock attribution on its own:
	// Solution.Stats.PhaseNanos reports where each solve's time went
	// (see Stats.PhaseNanos) without requiring a Tracer or Metrics.
	// Timing also switches on automatically whenever either of those is
	// set — a trace without durations or a registry without the
	// solve.phase.* histograms would be misleading. Off (and with both
	// sinks nil), the solver takes no clock readings beyond the
	// whole-solve one and the hot paths stay allocation-free.
	Timings bool
	// Tracer receives structured search events (candidate generation,
	// pruning, cache activity, phase timings). Nil — the default —
	// disables tracing entirely; the hot paths never construct an event.
	Tracer obs.Tracer
	// Metrics, when non-nil, collects search counters and solve-latency
	// histograms, and exposes engine counters at snapshot time. Nil
	// disables metrics collection.
	Metrics *obs.Registry
	// DebugAddr, when non-empty, starts (or reuses) a process-wide debug
	// HTTP server on that address serving net/http/pprof, expvar, and a
	// /metrics JSON snapshot of Metrics. A registry is created on demand
	// when Metrics is nil.
	DebugAddr string
	// Deadline, when positive, bounds each Solve's wall-clock time: the
	// solve context gets a deadline this far in the future, and the
	// search aborts with a CanceledError (unwrapping to
	// context.DeadlineExceeded) carrying the partial Stats once it
	// expires. It composes with SolveContext: whichever deadline is
	// sooner wins.
	Deadline time.Duration
}

// precisionTunable is implemented by availability engines whose
// estimate precision can be tuned between construction and use
// (sim.Engine). The interface is structural so core carries no
// dependency on the simulator package.
type precisionTunable interface {
	SetPrecision(relErr float64, batch int)
}

// tierPricer is implemented by engines that can price a single tier's
// annual downtime without assembling a full multi-tier Result
// (avail.MarkovEngine.PriceTier). The tier search only needs the
// downtime scalar, so routing cache misses through this entry point
// skips the Result/TierResult/Contributions construction of a full
// Evaluate. PriceTier is documented bit-identical to Evaluate — same
// downtime, same memo counters, same trace events — so using it never
// changes results or stats. Structural, like precisionTunable.
type tierPricer interface {
	PriceTier(*avail.TierModel) (float64, error)
}

// CombineMethod selects how per-tier frontiers combine into a
// multi-tier design.
type CombineMethod int

// Combination strategies.
const (
	// CombineMethodExact is branch-and-bound over the tier frontiers:
	// provably minimum cost under the model. The default.
	CombineMethodExact CombineMethod = iota
	// CombineMethodGreedy is the paper-style incremental refinement:
	// repeatedly tighten the tier with the best downtime reduction per
	// unit cost. Faster, possibly suboptimal; kept for the ablation.
	CombineMethodGreedy
)

func (o Options) withDefaults() Options {
	if o.Engine == nil {
		o.Engine = avail.NewMarkovEngine()
	}
	if o.MaxRedundancy == 0 {
		o.MaxRedundancy = DefaultMaxRedundancy
	}
	if o.DebugAddr != "" && o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Stats counts search effort, mirroring the paper's argument that the
// space is too large to explore manually.
type Stats struct {
	// CandidatesGenerated counts complete candidate designs visited.
	CandidatesGenerated int
	// CostPruned counts candidates rejected on cost alone, without an
	// availability evaluation (§4.1's fast path).
	CostPruned int
	// Evaluations counts availability-engine invocations.
	Evaluations int
	// EvalCacheHits counts evaluations served from the fingerprint
	// cache instead of the engine.
	EvalCacheHits int
	// BoundPruned counts candidates rejected by an admissible
	// branch-and-bound bound without an availability evaluation: the
	// sorted within-total tail cut and skipped frontier size subtrees.
	// Zero under SearchExhaustive.
	BoundPruned int
	// WarmStartReuse counts eval-cache hits on entries computed by an
	// earlier solve on this solver — the reuse a warm-started what-if
	// re-solve or repeat server request gets for free. Always a subset
	// of EvalCacheHits; zero on a solver's first solve.
	WarmStartReuse int
	// FrontierReuse counts tier frontiers this solve served from its
	// chain's frontier set instead of building (SolveCell with
	// CellOptions.Frontiers). The replayed build's evaluation requests
	// land in EvalCacheHits, its candidates and pruning in the usual
	// counters, so sweeping a chain sequentially keeps every per-cell
	// counter exact at any worker count. Zero on plain SolveContext
	// solves.
	FrontierReuse int
	// ModeMemoHits and ModeMemoSolves count Markov mode-chain memo
	// activity attributable to this solve (zero for engines without a
	// memo). They are engine-counter deltas: exact when solves on a
	// shared engine run serially, apportioned arbitrarily between
	// overlapping concurrent solves.
	ModeMemoHits   uint64
	ModeMemoSolves uint64
	// SimReplications and SimBatches count Monte-Carlo work for this
	// solve (zero for analytic engines), with the same delta semantics.
	SimReplications uint64
	SimBatches      uint64
	// PhaseNanos attributes the solve's wall clock to the solver phases
	// (see PhaseNames), in integer nanoseconds. Bracketed phases
	// ("tier-search", "bound", "frontier", "combine", "job-search") are
	// whole-stage spans; "eval" is the cross-cutting engine-evaluation
	// time, also spent inside the bracketed stages, so the entries
	// overlap and do not sum to the solve's total. Nil unless timing is
	// on (Options.Timings, a Tracer, or Metrics) — keeping disabled-path
	// Stats allocation-free and comparable — and phases that never ran
	// are absent. Each entry equals the sum of the matching trace
	// durations exactly: phase.end DurNs for bracketed phases, eval.miss
	// DurNs for "eval".
	PhaseNanos map[string]int64
}

// Solution is the search outcome for one requirement point.
type Solution struct {
	Design model.Design
	// Cost is the design's total annual cost.
	Cost units.Money
	// DowntimeMinutes is the design's expected annual downtime
	// (enterprise requirements).
	DowntimeMinutes float64
	// JobTime is the expected job completion time (job requirements).
	JobTime units.Duration
	// Stats records search effort.
	Stats Stats
}

// Solver searches the design space of one service over one
// infrastructure.
type Solver struct {
	inf  *model.Infrastructure
	svc  *model.Service
	opts Options

	evalCache *evalCache // availability evaluations by design fingerprint
	modeCache *modeCache // resolved effective modes by mode fingerprint

	// epochs carries one invalidation epoch per resource-type name.
	// Rebind bumps the epochs of the resource types a delta touches; the
	// epoch mixes into every fingerprint rooted at that resource, so
	// cache entries from before the bump become unreachable without any
	// scan. A fresh solver has every epoch at zero, which keeps its
	// fingerprints identical to the epoch-free construction. Written
	// only by Rebind, which must not race with in-flight solves.
	epochs map[string]uint64

	// gen numbers the solves this solver has run; each flight in the
	// eval cache records the generation that created it, so a later
	// solve can tell warm-start reuse (a hit on another solve's entry)
	// apart from within-solve sharing.
	gen atomic.Uint64

	// lastCombo holds the coordinates of the most recent successful
	// enterprise solution, seeding the next solve's combination upper
	// bound in place of the waterfilling probe pass (see seedUB). Nil
	// until a first solve succeeds. SolveCell ignores it — grid sweeps
	// pass explicit seeds so their per-cell results cannot depend on
	// which cell happened to finish last.
	lastCombo atomic.Pointer[ComboSeed]

	// rebindGen counts Rebind calls. FrontierSet entries carry costs,
	// which even a price-only (zero-delta) rebind may change — and which
	// the per-resource epochs deliberately ignore — so a set stamped with
	// an older generation invalidates itself wholesale on its next use
	// (see frontiercache.go).
	rebindGen atomic.Uint64

	// ctxEng is the engine's context-aware entry point, resolved once at
	// construction (nil when the engine has none).
	ctxEng ctxEvaluator

	// pricer is the engine's lean single-tier pricing entry point,
	// resolved once at construction. Left nil when the engine is
	// context-aware: EvaluateCtx must keep observing cancellation, and
	// context-aware engines (the simulator) are exactly the ones whose
	// evaluations run long enough for that to matter.
	pricer tierPricer

	// timed reports that phase timing is on for this solver: set when
	// Options.Timings, Tracer, or Metrics is configured. Every timing
	// site guards on it, so the disabled path takes no clock readings
	// and allocates nothing.
	timed bool
	// phaseHists are the solve.phase.* histograms, resolved once at
	// construction (all nil without Metrics — spans then only feed
	// Stats.PhaseNanos and the trace).
	phaseHists [numPhases]*obs.Histogram
	// parT, when non-nil, attributes the worker-pool fans' queue-wait
	// and run time to the par.wait_ms/par.run_ms histograms. Nil without
	// Metrics, which keeps the fans on the untimed ForEachCtx path.
	parT *par.Timing

	// comboCache memoizes mechCombos per resource type: the combination
	// set (and its per-combo fingerprints) is a pure function of the
	// resource type, the infrastructure's mechanisms and the solver's
	// pins, so every option walk over one resource type — and there are
	// several per solve — shares a single enumeration. Cleared by Rebind
	// (the infrastructure, and with it the resource-type identities, may
	// change).
	comboMu    sync.Mutex
	comboCache map[*model.ResourceType]*comboSet
}

// validateModels checks the model pair every solve runs against.
func validateModels(inf *model.Infrastructure, svc *model.Service) error {
	if inf == nil {
		return fmt.Errorf("core: nil infrastructure")
	}
	if svc == nil {
		return fmt.Errorf("core: nil service")
	}
	for i := range svc.Tiers {
		for j := range svc.Tiers[i].Options {
			if svc.Tiers[i].Options[j].ResourceType() == nil {
				return fmt.Errorf("core: service %q is not resolved against the infrastructure (tier %q)",
					svc.Name, svc.Tiers[i].Name)
			}
		}
	}
	return nil
}

// NewSolver validates the inputs and builds a solver.
func NewSolver(inf *model.Infrastructure, svc *model.Service, opts Options) (*Solver, error) {
	if err := validateModels(inf, svc); err != nil {
		return nil, err
	}
	if opts.Registry == nil {
		return nil, fmt.Errorf("core: options need a performance registry")
	}
	s := &Solver{
		inf:       inf,
		svc:       svc,
		opts:      opts.withDefaults(),
		evalCache: newEvalCache(),
		modeCache: newModeCache(),
		epochs:    map[string]uint64{},
	}
	// Thread the precision knobs into a tunable Monte-Carlo engine,
	// once, at construction. Callers sharing one engine across
	// concurrently built solvers should bake the precision into the
	// engine instead (aved.SimEngineAdaptive) and leave these zero.
	if s.opts.SimRelErr > 0 || s.opts.SimBatch > 0 {
		if eng, ok := s.opts.Engine.(precisionTunable); ok {
			eng.SetPrecision(s.opts.SimRelErr, s.opts.SimBatch)
		}
	}
	// Hand the observability sinks to engines that can use them, via the
	// same structural-interface pattern as precisionTunable. Engine
	// implementations make this idempotent, so solvers sharing an engine
	// (sensitivity sweeps) may each call it.
	if s.opts.Metrics != nil || s.opts.Tracer != nil {
		if eng, ok := s.opts.Engine.(obsInstrumentable); ok {
			eng.InstrumentObs(s.opts.Metrics, s.opts.Tracer)
		}
	}
	if s.opts.DebugAddr != "" {
		if _, err := obs.EnsureServe(s.opts.DebugAddr, s.opts.Metrics); err != nil {
			return nil, err
		}
	}
	s.timed = s.opts.Timings || s.opts.Tracer != nil || s.opts.Metrics != nil
	if reg := s.opts.Metrics; reg != nil {
		for i := range s.phaseHists {
			s.phaseHists[i] = reg.Histogram("solve.phase." + phaseNames[i])
		}
	}
	s.parT = par.NewTiming(s.opts.Metrics)
	if ce, ok := s.opts.Engine.(ctxEvaluator); ok {
		s.ctxEng = ce
	}
	if s.ctxEng == nil {
		if tp, ok := s.opts.Engine.(tierPricer); ok {
			s.pricer = tp
		}
	}
	return s, nil
}

// Workers reports the solver's configured worker-pool bound (see
// Options.Workers), so sweeps driving the solver share one setting.
func (s *Solver) Workers() int { return s.opts.Workers }

// Tracer reports the solver's configured trace sink (nil when tracing
// is off), so sweeps driving the solver can emit into the same stream.
func (s *Solver) Tracer() obs.Tracer { return s.opts.Tracer }

// Metrics reports the solver's metrics registry (nil when metrics are
// off), so sweeps and CLIs share one snapshot surface.
func (s *Solver) Metrics() *obs.Registry { return s.opts.Metrics }

// Solve searches for the minimum-cost design meeting the requirements.
// Enterprise requirements need a throughput and downtime bound; job
// requirements need a completion-time bound and a service with a job
// size. It reports ErrInfeasible when no design can satisfy them. An
// Options.Deadline still applies; use SolveContext for caller-driven
// cancellation.
func (s *Solver) Solve(req model.Requirements) (*Solution, error) {
	return s.SolveContext(context.Background(), req)
}

// SolveContext is Solve under a caller context: the search checks ctx
// once per candidate (and the Monte-Carlo engine once per replication
// batch), so cancellation or deadline expiry aborts promptly with a
// CanceledError carrying the partial Stats and unwrapping to ctx's
// error. With Options.Deadline set, the sooner of that deadline and
// ctx's own bounds the solve.
func (s *Solver) SolveContext(ctx context.Context, req model.Requirements) (*Solution, error) {
	return s.solve(ctx, req, cellConfig{implicitSeed: true})
}

// CellOptions tune one SolveCell call — the grid-sweep entry point.
type CellOptions struct {
	// Seed, when non-nil, seeds the combination upper bound from a
	// previous solution's coordinates (Solution.Seed) instead of the
	// solver's internal last-solution memory. Sweeps chain cells through
	// explicit seeds so each cell's effort depends only on the grid, not
	// on which unrelated cell happened to finish last; a tighter-budget
	// solution is always feasible — hence admissible as an upper bound —
	// at a looser budget on the same load. Nil disables seeding entirely
	// (the cold waterfilling pass runs). Ignored by job requirements.
	Seed *ComboSeed
	// Frontiers, when non-nil, serves the combination phase's tier
	// frontiers from the chain's frontier set: the chain's first cell
	// needing a tier's frontier builds it at its own cost threshold, and
	// every later cell whose threshold the build covers replays it as its
	// ≤-threshold prefix — which under the sweeps' tightest-budget-first
	// chain order is every later cell. Solutions are bit-identical to
	// per-cell builds (the truncated frontier is exactly that prefix —
	// see tierFrontier and frontiercache.go); the avoided work shows up
	// in Stats.FrontierReuse and as EvalCacheHits. Nil, each solve builds
	// its own frontiers exactly like SolveContext.
	Frontiers *FrontierSet
}

// SolveCell is SolveContext for one cell of a requirement grid: same
// search, same results, but with the seeding and frontier-reuse
// machinery under explicit caller control so sweeps sharing one solver
// stay deterministic at any worker count. A zero CellOptions solve is a
// fully cold solve — unlike SolveContext it does not consult the
// solver's last-solution memory.
func (s *Solver) SolveCell(ctx context.Context, req model.Requirements, co CellOptions) (*Solution, error) {
	return s.solve(ctx, req, cellConfig{seed: co.Seed, frontiers: co.Frontiers})
}

// cellConfig is the per-solve knob set threaded from the public entry
// points into the enterprise combination phase.
type cellConfig struct {
	// seed is the explicit combination seed (nil: none).
	seed *ComboSeed
	// implicitSeed loads the solver's lastCombo instead — the historical
	// SolveContext behavior that warm what-if re-solves rely on.
	implicitSeed bool
	// frontiers, when non-nil, routes frontier builds through the
	// chain's frontier set.
	frontiers *FrontierSet
}

func (s *Solver) solve(ctx context.Context, req model.Requirements, cfg cellConfig) (*Solution, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if s.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Deadline)
		defer cancel()
	}
	so := s.beginSolve(req)
	var (
		sol *Solution
		err error
	)
	switch req.Kind {
	case model.ReqEnterprise:
		sol, err = s.solveEnterprise(ctx, req, cfg)
	case model.ReqJob:
		if !s.svc.HasJobSize {
			err = fmt.Errorf("core: job requirement needs a service with a jobsize, %q has none", s.svc.Name)
		} else {
			sol, err = s.solveJob(ctx, req)
		}
	default:
		err = fmt.Errorf("core: unknown requirement kind %d", int(req.Kind))
	}
	return s.endSolve(so, sol, err)
}

// Delta describes the scope of a Rebind: which resource types had any
// availability-relevant input (failure MTBFs, repair times, mechanism
// effects on them, startup/detection times, spare semantics) changed.
// The zero value declares a change that touches no availability input
// at all — prices only — which invalidates nothing: the evaluation
// cache stores downtime and MTBF, never cost, and every solve reprices
// candidates from the current model. A caller unsure of the scope must
// set All; an understated delta silently serves stale evaluations.
type Delta struct {
	// Resources names the resource types whose availability inputs
	// changed.
	Resources []string
	// All invalidates every resource type, regardless of Resources.
	All bool
}

// Rebind swaps the solver's models for a what-if re-solve, keeping the
// evaluation caches warm for everything the delta does not touch. The
// service must be resolved against the new infrastructure. Rebind bumps
// the invalidation epoch of each touched resource type, making cached
// evaluations that depended on it unreachable; all other entries keep
// serving hits, so a single-parameter what-if re-solve re-evaluates
// only the affected slice of the grid (counted in Stats.WarmStartReuse).
// Rebind is not safe to call concurrently with in-flight solves on the
// same solver.
func (s *Solver) Rebind(inf *model.Infrastructure, svc *model.Service, delta Delta) error {
	if err := validateModels(inf, svc); err != nil {
		return err
	}
	s.inf = inf
	s.svc = svc
	// The combination sets hang off the old infrastructure's resource
	// types; drop them wholesale rather than tracking which survived.
	s.comboMu.Lock()
	s.comboCache = nil
	s.comboMu.Unlock()
	// FrontierSet entries store evaluated costs, and a zero delta means
	// "prices only" — which the epoch machinery deliberately ignores (the
	// eval cache never stores cost) but a cached frontier cannot survive.
	// Bumping the generation invalidates every outstanding set wholesale;
	// the eval cache underneath still makes any rebuild replay untouched
	// evaluations.
	s.rebindGen.Add(1)
	if delta.All {
		for _, name := range inf.ResourceNames() {
			s.epochs[name]++
		}
		// Resource types the new model no longer declares stay bumped
		// too, in case a later Rebind brings them back.
		for name := range s.epochs {
			if inf.Resources[name] == nil {
				s.epochs[name]++
			}
		}
		return nil
	}
	for _, name := range delta.Resources {
		s.epochs[name]++
	}
	return nil
}

// Resolve is Rebind followed by SolveContext: the warm-started what-if
// entry point. The caller supplies the perturbed models and the delta
// describing what the perturbation touched.
func (s *Solver) Resolve(ctx context.Context, inf *model.Infrastructure, svc *model.Service, delta Delta, req model.Requirements) (*Solution, error) {
	if err := s.Rebind(inf, svc, delta); err != nil {
		return nil, err
	}
	return s.SolveContext(ctx, req)
}

// InfeasibleError reports that no design in the space satisfies the
// requirements, with the closest miss for diagnosis.
type InfeasibleError struct {
	Reason string
}

func (e *InfeasibleError) Error() string {
	return "core: no feasible design: " + e.Reason
}

// curveFor resolves a resource option's performance model.
func (s *Solver) curveFor(opt *model.ResourceOption) (perf.Curve, error) {
	if opt.PerfIsScalar {
		return perf.ConstCurve(opt.PerfScalar), nil
	}
	return s.opts.Registry.Curve(opt.PerfRef)
}
