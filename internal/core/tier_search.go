package core

import (
	"context"
	"math"
	"sort"

	"aved/internal/avail"
	"aved/internal/cost"
	"aved/internal/jobtime"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/perf"
	"aved/internal/units"
)

// TierCandidate couples a tier design with its evaluated cost and
// annual downtime.
type TierCandidate struct {
	Design          model.TierDesign
	Cost            units.Money
	DowntimeMinutes float64
}

// evalEntry caches one tier design's availability evaluation together
// with the derived work-loss MTBF the job analysis needs.
type evalEntry struct {
	downtimeMinutes float64
	sysMTBF         units.Duration
}

// evalTier evaluates one tier design through the configured engine,
// caching by packed availability fingerprint so candidates that differ
// only in availability-neutral mechanism settings (e.g. checkpoint
// intervals) share an evaluation. The cache is a sharded singleflight:
// concurrent requests for one fingerprint block on a single engine
// invocation, so Evaluations counts distinct fingerprints regardless of
// how many goroutines race on the same key. Callers on the search hot
// paths assemble fps from per-option precomputed parts, so a cache hit
// does no allocation and no string work at all.
//
// Context errors never stick: a flight settled by cancellation is
// forgotten immediately, so the next request for the fingerprint — from
// a later solve on this solver, or a retried server request — re-runs
// the evaluation instead of replaying the abort.
func (s *Solver) evalTier(ctx context.Context, td *model.TierDesign, fps candFP, stats *searchStats) (evalEntry, error) {
	f := s.evalCache.flight(fps.avail)
	ran := false
	f.once.Do(func() {
		ran = true
		f.entry, f.err = s.evalTierMiss(ctx, td, fps.mode)
		if f.err == nil {
			stats.evals.Add(1)
		}
	})
	if f.err != nil && isCtxErr(f.err) {
		s.evalCache.forget(fps.avail, f)
	}
	if !ran && f.err == nil {
		stats.cacheHits.Add(1)
	}
	if tr := s.opts.Tracer; tr != nil && f.err == nil {
		// Hit/miss per fingerprint is deterministic under the
		// singleflight: exactly one requester observes the miss, however
		// many goroutines race on the key.
		ev := obs.EvEvalHit
		if ran {
			ev = obs.EvEvalMiss
		}
		tr.Emit(obs.Event{
			Ev:   ev,
			Tier: td.TierName,
			FP:   fpHex(fps.avail),
			N:    td.NActive,
			M:    td.MinActive,
			S:    td.NSpare,
			Down: f.entry.downtimeMinutes,
		})
	}
	return f.entry, f.err
}

// evalTierMiss is the uncached evaluation behind evalTier. The resolved
// effective modes are themselves cached by mode fingerprint: every
// (active, spare) split of one (option, combo, warmth) shares a single
// EffectiveModes resolution.
func (s *Solver) evalTierMiss(ctx context.Context, td *model.TierDesign, modeFP fp128) (evalEntry, error) {
	modes, ok := s.modeCache.get(modeFP)
	if !ok {
		built, err := avail.BuildTierModes(td)
		if err != nil {
			return evalEntry{}, err
		}
		modes = s.modeCache.put(modeFP, built)
	}
	tm := avail.TierModel{
		Name:  td.TierName,
		N:     td.NActive,
		M:     td.MinActive,
		S:     td.NSpare,
		Modes: modes,
	}
	res, err := s.engineEvaluate(ctx, []avail.TierModel{tm})
	if err != nil {
		return evalEntry{}, err
	}
	sysMTBF, err := jobtime.SystemMTBF(tm.Modes, td.NActive)
	if err != nil {
		return evalEntry{}, err
	}
	return evalEntry{downtimeMinutes: res.DowntimeMinutes, sysMTBF: sysMTBF}, nil
}

// minActiveFor reports the §4.2 minimum-actives parameter m: the
// performance minimum for dynamically sized, resource-scoped tiers and
// the full active count otherwise.
func minActiveFor(opt *model.ResourceOption, nActive, nMinPerf int) int {
	if opt.Sizing == model.SizingStatic || opt.FailureScope == model.ScopeTier {
		return nActive
	}
	return nMinPerf
}

// optionSearch walks one resource option's design dimensions in the
// paper's order: total resources ascending from the performance
// minimum; within a total, every (active, spare) split on the allowed
// grid, every spare operational mode, and every mechanism combination.
// visit is called for every candidate with its cost; it returns whether
// the candidate's availability was (or would have been) needed, letting
// the caller implement cost-first pruning. The walk applies the
// paper's termination rules through the controller callbacks.
type optionSearch struct {
	solver   *Solver
	tier     *model.Tier
	opt      *model.ResourceOption
	nMinPerf int
	maxTotal int // component-level instance cap; 0 means unlimited
	combos   [][]model.MechSetting

	// Fingerprint invariants hoisted out of the per-candidate loop: the
	// (tier, resource) base and each combo's relevant-settings hash.
	base     fp128
	comboFPs []fp128
	// warmSpare is the warmth-level list for candidates with spares,
	// computed once instead of per (active, spare) split.
	warmSpare []int
}

// warmZeroLevels is the warmth list for spare-less candidates: shared,
// never mutated.
var warmZeroLevels = []int{0}

// newOptionSearch prepares the enumeration for one resource option,
// reporting ok=false when the option cannot meet the throughput at any
// allowed size.
func (s *Solver) newOptionSearch(tier *model.Tier, opt *model.ResourceOption, throughput float64) (*optionSearch, bool, error) {
	curve, err := s.curveFor(opt)
	if err != nil {
		return nil, false, err
	}
	nMinPerf, ok := perf.MinActive(curve, throughput, opt.NActive)
	if !ok {
		return nil, false, nil
	}
	maxTotal := opt.ResourceType().MaxInstances()
	if maxTotal > 0 && nMinPerf > maxTotal {
		// The component instance cap rules this option out before it
		// even meets the performance requirement.
		return nil, false, nil
	}
	combos, err := s.mechCombos(opt.ResourceType())
	if err != nil {
		return nil, false, err
	}
	rt := opt.ResourceType()
	comboFPs := make([]fp128, len(combos))
	for i, combo := range combos {
		comboFPs[i] = comboFP(rt, combo)
	}
	return &optionSearch{
		solver:    s,
		tier:      tier,
		opt:       opt,
		nMinPerf:  nMinPerf,
		maxTotal:  maxTotal,
		combos:    combos,
		base:      baseFP(tier.Name, rt.Name),
		comboFPs:  comboFPs,
		warmSpare: s.warmLevels(rt, 1),
	}, true, nil
}

// warmLevels reports the candidate spare warmth levels for a resource
// type: only cold spares by default (§5.1's restriction), or every
// dependency-closed prefix when the search explores warmth.
func (s *Solver) warmLevels(rt *model.ResourceType, nSpare int) []int {
	if nSpare == 0 || !s.opts.ExploreSpareWarmth {
		return []int{0}
	}
	out := make([]int, len(rt.Components)+1)
	for i := range out {
		out[i] = i
	}
	return out
}

// candidates yields every candidate at a given total resource count,
// together with its packed cache fingerprints. The fingerprints are
// assembled from the precomputed per-option parts, so the walk does no
// per-candidate key allocation.
func (o *optionSearch) candidates(total int, yield func(td model.TierDesign, fps candFP, c units.Money) error) error {
	grid := o.opt.NActive
	for nActive := o.nMinPerf; nActive <= total; nActive++ {
		if !grid.Contains(float64(nActive)) {
			continue
		}
		nSpare := total - nActive
		minActive := minActiveFor(o.opt, nActive, o.nMinPerf)
		warms := warmZeroLevels
		if nSpare > 0 {
			warms = o.warmSpare
		}
		for _, warm := range warms {
			for ci, combo := range o.combos {
				td := model.TierDesign{
					TierName:   o.tier.Name,
					Option:     o.opt,
					NActive:    nActive,
					NSpare:     nSpare,
					NMinPerf:   o.nMinPerf,
					MinActive:  minActive,
					SpareWarm:  warm,
					Mechanisms: combo,
				}
				mfp := modeFPOf(o.base, o.comboFPs[ci], warm, nSpare > 0)
				fps := candFP{avail: availFPOf(mfp, nActive, minActive, nSpare), mode: mfp}
				c, err := cost.Tier(&td)
				if err != nil {
					return err
				}
				if err := yield(td, fps, c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// searchOption finds the option's minimum-cost design meeting the
// downtime budget, seeding the incumbent from searches of other
// options so pruning carries across resource types.
//
// Cancellation: the candidate yield checks ctx once per candidate via a
// captured Done channel — a non-blocking select against a nil channel
// when the context cannot be cancelled, so the un-cancelled hot path
// stays allocation-free and branch-cheap.
func (s *Solver) searchOption(ctx context.Context, tier *model.Tier, opt *model.ResourceOption, throughput, budgetMinutes float64,
	incumbent *TierCandidate, stats *searchStats) (*TierCandidate, error) {

	o, ok, err := s.newOptionSearch(tier, opt, throughput)
	if err != nil || !ok {
		return nil, err
	}
	tr := s.opts.Tracer
	res := opt.ResourceType().Name
	done := ctx.Done()
	best := incumbent
	prevBestDowntime := math.Inf(1)
	for extra := 0; extra <= s.opts.MaxRedundancy; extra++ {
		total := o.nMinPerf + extra
		if o.maxTotal > 0 && total > o.maxTotal {
			break
		}
		minCostAtTotal := math.Inf(1)
		bestDowntimeAtTotal := math.Inf(1)
		err := o.candidates(total, func(td model.TierDesign, fps candFP, c units.Money) error {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			stats.candidates.Add(1)
			if tr != nil {
				tr.Emit(obs.Event{Ev: obs.EvCandGen, Tier: tier.Name, Res: res,
					N: td.NActive, S: td.NSpare, Warm: td.SpareWarm, Cost: float64(c)})
			}
			if float64(c) < minCostAtTotal {
				minCostAtTotal = float64(c)
			}
			// §4.1: once a feasible design is known, evaluate cost
			// first and reject dearer candidates without an
			// availability evaluation. Equal-cost candidates still
			// evaluate so ties break toward lower downtime. This
			// incumbent chain is order-dependent, so the walk stays
			// sequential; parallelism lives in the frontier path,
			// where every candidate is evaluated anyway.
			if best != nil && c > best.Cost {
				stats.pruned.Add(1)
				if tr != nil {
					tr.Emit(obs.Event{Ev: obs.EvCandPrune, Tier: tier.Name, Res: res,
						N: td.NActive, S: td.NSpare, Cost: float64(c)})
				}
				return nil
			}
			entry, err := s.evalTier(ctx, &td, fps, stats)
			if err != nil {
				return err
			}
			down := entry.downtimeMinutes
			if down < bestDowntimeAtTotal {
				bestDowntimeAtTotal = down
			}
			if down <= budgetMinutes &&
				(best == nil || c < best.Cost || (c == best.Cost && down < best.DowntimeMinutes)) {
				best = &TierCandidate{Design: td, Cost: c, DowntimeMinutes: down}
				if tr != nil {
					tr.Emit(obs.Event{Ev: obs.EvIncumbent, Tier: tier.Name, Res: res,
						N: td.NActive, S: td.NSpare, Warm: td.SpareWarm,
						Cost: float64(c), Down: down})
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Termination: when every candidate at this size already costs
		// at least the incumbent, larger sizes only cost more.
		if best != nil && minCostAtTotal >= float64(best.Cost) {
			break
		}
		// Infeasibility: no feasible design yet and the availability
		// metric degrades as resources grow (§4.1).
		if best == nil && bestDowntimeAtTotal > prevBestDowntime {
			break
		}
		prevBestDowntime = bestDowntimeAtTotal
	}
	if best == incumbent {
		return nil, nil // no improvement from this option
	}
	return best, nil
}

// searchTier finds the minimum-cost design for one tier in isolation.
func (s *Solver) searchTier(ctx context.Context, tier *model.Tier, throughput, budgetMinutes float64, stats *searchStats) (*TierCandidate, error) {
	var best *TierCandidate
	for i := range tier.Options {
		cand, err := s.searchOption(ctx, tier, &tier.Options[i], throughput, budgetMinutes, best, stats)
		if err != nil {
			return nil, err
		}
		if cand != nil {
			best = cand
		}
	}
	return best, nil
}

// frontierImproveEps is the minimum relative downtime improvement a
// larger design must deliver for the frontier search to keep growing a
// resource option.
const frontierImproveEps = 0.01

// optionFrontier collects the option's Pareto-optimal (cost, downtime)
// candidates, exploring sizes until added resources stop improving the
// best achievable downtime. Unlike searchOption, every candidate here
// is evaluated regardless of order, so the per-size batch fans its
// availability evaluations across the worker pool; the batch buffer and
// append order keep the result bit-identical to the sequential walk.
func (s *Solver) optionFrontier(ctx context.Context, tier *model.Tier, opt *model.ResourceOption, throughput float64, stats *searchStats) ([]TierCandidate, error) {
	o, ok, err := s.newOptionSearch(tier, opt, throughput)
	if err != nil || !ok {
		return nil, err
	}
	tr := s.opts.Tracer
	res := opt.ResourceType().Name
	done := ctx.Done()
	var (
		all    []TierCandidate
		buf    []TierCandidate // per-size batch, reused across sizes
		fpsBuf []candFP        // fingerprints parallel to buf, reused too
	)
	bestDowntime := math.Inf(1)
	stale := 0
	for extra := 0; extra <= s.opts.MaxRedundancy; extra++ {
		total := o.nMinPerf + extra
		if o.maxTotal > 0 && total > o.maxTotal {
			break
		}
		buf = buf[:0]
		fpsBuf = fpsBuf[:0]
		err := o.candidates(total, func(td model.TierDesign, fps candFP, c units.Money) error {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			stats.candidates.Add(1)
			if tr != nil {
				tr.Emit(obs.Event{Ev: obs.EvCandGen, Tier: tier.Name, Res: res,
					N: td.NActive, S: td.NSpare, Warm: td.SpareWarm, Cost: float64(c)})
			}
			buf = append(buf, TierCandidate{Design: td, Cost: c})
			fpsBuf = append(fpsBuf, fps)
			return nil
		})
		if err != nil {
			return nil, err
		}
		err = par.ForEachCtx(ctx, s.opts.Workers, len(buf), func(i int) error {
			entry, err := s.evalTier(ctx, &buf[i].Design, fpsBuf[i], stats)
			if err != nil {
				return err
			}
			buf[i].DowntimeMinutes = entry.downtimeMinutes
			return nil
		})
		if err != nil {
			return nil, err
		}
		improvedTo := bestDowntime
		for i := range buf {
			if buf[i].DowntimeMinutes < improvedTo {
				improvedTo = buf[i].DowntimeMinutes
			}
		}
		all = append(all, buf...)
		if improvedTo < bestDowntime*(1-frontierImproveEps) {
			bestDowntime = improvedTo
			stale = 0
		} else {
			stale++
			if stale >= 2 {
				break
			}
		}
	}
	return paretoReduce(all), nil
}

// tierFrontier merges option frontiers into the tier's Pareto frontier,
// sorted by ascending cost (and so descending downtime). Options are
// independent searches, so they fan across the worker pool; merging in
// option order keeps the frontier identical to the sequential build.
func (s *Solver) tierFrontier(ctx context.Context, tier *model.Tier, throughput float64, stats *searchStats) ([]TierCandidate, error) {
	fronts := make([][]TierCandidate, len(tier.Options))
	err := par.ForEachCtx(ctx, s.opts.Workers, len(tier.Options), func(i int) error {
		f, err := s.optionFrontier(ctx, tier, &tier.Options[i], throughput, stats)
		if err != nil {
			return err
		}
		fronts[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, f := range fronts {
		n += len(f)
	}
	all := make([]TierCandidate, 0, n)
	for _, f := range fronts {
		all = append(all, f...)
	}
	return paretoReduce(all), nil
}

// paretoReduce keeps only candidates not dominated in (cost, downtime),
// returning them sorted by ascending cost. It sorts cands in place —
// every caller owns its slice — so the frontier hot path allocates only
// the reduced output.
func paretoReduce(cands []TierCandidate) []TierCandidate {
	if len(cands) == 0 {
		return nil
	}
	// Sort by cost ascending, then downtime ascending.
	sortCandidates(cands)
	out := make([]TierCandidate, 0, len(cands))
	bestDown := math.Inf(1)
	for _, c := range cands {
		if c.DowntimeMinutes < bestDown {
			out = append(out, c)
			bestDown = c.DowntimeMinutes
		}
	}
	return out
}

func sortCandidates(cands []TierCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Cost != cands[j].Cost {
			return cands[i].Cost < cands[j].Cost
		}
		return cands[i].DowntimeMinutes < cands[j].DowntimeMinutes
	})
}
