package core

import (
	"context"
	"math"
	"sort"

	"aved/internal/avail"
	"aved/internal/cost"
	"aved/internal/jobtime"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/perf"
	"aved/internal/units"
)

// TierCandidate couples a tier design with its evaluated cost and
// annual downtime.
type TierCandidate struct {
	Design          model.TierDesign
	Cost            units.Money
	DowntimeMinutes float64
}

// evalEntry caches one tier design's availability evaluation together
// with the derived work-loss MTBF the job analysis needs.
type evalEntry struct {
	downtimeMinutes float64
	sysMTBF         units.Duration
}

// evalTier evaluates one tier design through the configured engine,
// caching by packed availability fingerprint so candidates that differ
// only in availability-neutral mechanism settings (e.g. checkpoint
// intervals) share an evaluation. The cache is a sharded singleflight:
// concurrent requests for one fingerprint block on a single engine
// invocation, so Evaluations counts distinct fingerprints regardless of
// how many goroutines race on the same key. Callers on the search hot
// paths assemble fps from per-option precomputed parts, so a cache hit
// does no allocation and no string work at all.
//
// Context errors never stick: a flight settled by cancellation is
// forgotten immediately, so the next request for the fingerprint — from
// a later solve on this solver, or a retried server request — re-runs
// the evaluation instead of replaying the abort.
func (s *Solver) evalTier(ctx context.Context, td *model.TierDesign, fps candFP, stats *searchStats) (evalEntry, error) {
	f := s.evalCache.flight(fps.avail, stats.gen)
	ran := false
	var evalNs int64
	f.once.Do(func() {
		ran = true
		var sp obs.Span
		if s.timed {
			sp = obs.StartSpan(s.phaseHists[phaseEval])
		}
		f.entry, f.err = s.evalTierMiss(ctx, td, fps.mode)
		if f.err == nil {
			stats.evals.Add(1)
			if s.timed {
				// Engine wall clock accrues to the cross-cutting "eval"
				// phase; the matching eval.miss event carries the same
				// nanoseconds, so trace sums and PhaseNanos agree exactly.
				evalNs = sp.Stop()
				stats.phaseNs[phaseEval].Add(evalNs)
			}
		}
	})
	if f.err != nil && isCtxErr(f.err) {
		s.evalCache.forget(fps.avail, f)
	}
	warm := false
	if !ran && f.err == nil {
		stats.cacheHits.Add(1)
		// A hit on a flight another solve generation created is
		// warm-start reuse: the evaluation this solve got for free from
		// an earlier (or concurrent) solve on the same solver.
		if f.gen != stats.gen {
			warm = true
			stats.warmReuse.Add(1)
		}
	}
	if tr := s.opts.Tracer; tr != nil && f.err == nil {
		// Hit/miss per fingerprint is deterministic under the
		// singleflight: exactly one requester observes the miss, however
		// many goroutines race on the key.
		ev := obs.EvEvalHit
		if ran {
			ev = obs.EvEvalMiss
		}
		tr.Emit(obs.Event{
			Ev:    ev,
			Tier:  td.TierName,
			FP:    fpHex(fps.avail),
			N:     td.NActive,
			M:     td.MinActive,
			S:     td.NSpare,
			Down:  f.entry.downtimeMinutes,
			DurNs: evalNs, // zero (omitted) on hits
			MS:    obs.DurMS(evalNs),
		})
		if warm {
			tr.Emit(obs.Event{
				Ev:   obs.EvWarmReuse,
				Tier: td.TierName,
				FP:   fpHex(fps.avail),
				N:    td.NActive,
				S:    td.NSpare,
			})
		}
	}
	return f.entry, f.err
}

// evalTierMiss is the uncached evaluation behind evalTier. The resolved
// effective modes are themselves cached by mode fingerprint: every
// (active, spare) split of one (option, combo, warmth) shares a single
// EffectiveModes resolution.
func (s *Solver) evalTierMiss(ctx context.Context, td *model.TierDesign, modeFP fp128) (evalEntry, error) {
	modes, ok := s.modeCache.get(modeFP)
	if !ok {
		built, err := avail.BuildTierModes(td)
		if err != nil {
			return evalEntry{}, err
		}
		modes = s.modeCache.put(modeFP, built)
	}
	tm := avail.TierModel{
		Name:  td.TierName,
		N:     td.NActive,
		M:     td.MinActive,
		S:     td.NSpare,
		Modes: modes,
	}
	if s.pricer != nil {
		// Lean single-tier pricing: bit-identical downtime without the
		// full Result construction (see tierPricer).
		down, err := s.pricer.PriceTier(&tm)
		if err != nil {
			return evalEntry{}, err
		}
		sysMTBF, err := jobtime.SystemMTBF(tm.Modes, td.NActive)
		if err != nil {
			return evalEntry{}, err
		}
		return evalEntry{downtimeMinutes: down, sysMTBF: sysMTBF}, nil
	}
	res, err := s.engineEvaluate(ctx, []avail.TierModel{tm})
	if err != nil {
		return evalEntry{}, err
	}
	sysMTBF, err := jobtime.SystemMTBF(tm.Modes, td.NActive)
	if err != nil {
		return evalEntry{}, err
	}
	return evalEntry{downtimeMinutes: res.DowntimeMinutes, sysMTBF: sysMTBF}, nil
}

// tierLoad carries the two loads a tier is planned against: full is
// the sizing load (the traffic curve's peak, or the scalar
// throughput), degraded is the load the tier must still sustain while
// a failure is being masked (the failover latency-degradation SLO;
// equal to full when no degradation is tolerated).
type tierLoad struct {
	full     float64
	degraded float64
}

// loadOf derives the tier load pair from the service requirements.
func loadOf(req model.Requirements) tierLoad {
	return tierLoad{full: req.PeakLoad(), degraded: req.DegradedLoad()}
}

// minActiveFor reports the §4.2 minimum-actives parameter m: the
// performance minimum for dynamically sized, resource-scoped tiers and
// the full active count otherwise. For the dynamic case the caller
// passes the DEGRADED performance minimum — the instances that must
// survive for the tier to count as up while a failure is masked —
// which equals the full-load minimum unless a degraded-throughput SLO
// relaxes it.
func minActiveFor(opt *model.ResourceOption, nActive, nMinDegraded int) int {
	if opt.Sizing == model.SizingStatic || opt.FailureScope == model.ScopeTier {
		return nActive
	}
	return nMinDegraded
}

// optionSearch walks one resource option's design dimensions in the
// paper's order: total resources ascending from the performance
// minimum; within a total, every (active, spare) split on the allowed
// grid, every spare operational mode, and every mechanism combination.
// visit is called for every candidate with its cost; it returns whether
// the candidate's availability was (or would have been) needed, letting
// the caller implement cost-first pruning. The walk applies the
// paper's termination rules through the controller callbacks.
type optionSearch struct {
	solver   *Solver
	tier     *model.Tier
	opt      *model.ResourceOption
	nMinPerf int
	// nMinDegraded is the performance minimum against the degraded
	// (failover) load: the up-threshold M for dynamically sized,
	// resource-scoped designs. Equal to nMinPerf unless the
	// requirements carry a degraded-throughput SLO.
	nMinDegraded int
	maxTotal     int // component-level instance cap; 0 means unlimited
	combos       [][]model.MechSetting

	// Fingerprint invariants hoisted out of the per-candidate loop: the
	// (tier, resource) base and each combo's relevant-settings hash.
	base     fp128
	comboFPs []fp128
	// warmSpare is the warmth-level list for candidates with spares,
	// computed once instead of per (active, spare) split.
	warmSpare []int
	// contiguous reports that the active-count grid contains every
	// integer the search can explore. The frontier cost cut relies on
	// the option's minimum cost being non-decreasing in the total, whose
	// proof maps a candidate at total t+1 to one at t by dropping an
	// instance — valid only on a step-1 grid. Non-contiguous options
	// build their frontiers uncut.
	contiguous bool
	// Closed-form per-instance cost floors for tailCostLB: the active
	// per-instance component cost, the cheapest per-instance cost over
	// actives and every allowed spare warmth, and the cheapest mechanism
	// combination cost per covered instance. costFloorOK is false when a
	// component or mechanism prices negative — then no closed-form bound
	// exists and tailCostLB reports -Inf.
	activeInstCost float64
	minInstCost    float64
	mechMinCost    float64
	costFloorOK    bool
}

// tailCostLB lower-bounds, in closed form, the cost of every candidate
// at total size t or beyond: at least nMinPerf instances run active,
// every further instance adds at least the cheapest per-instance cost,
// and every instance carries at least the cheapest mechanism
// combination. It is monotone in t, making it an admissible bound on
// whole unexplored size tails regardless of grid contiguity.
func (o *optionSearch) tailCostLB(t int) float64 {
	if !o.costFloorOK {
		return math.Inf(-1)
	}
	extra := float64(t - o.nMinPerf)
	if extra < 0 {
		extra = 0
	}
	return float64(o.nMinPerf)*(o.activeInstCost+o.mechMinCost) +
		extra*(o.minInstCost+o.mechMinCost)
}

// warmZeroLevels is the warmth list for spare-less candidates: shared,
// never mutated.
var warmZeroLevels = []int{0}

// newOptionSearch prepares the enumeration for one resource option,
// reporting ok=false when the option cannot meet the throughput at any
// allowed size.
func (s *Solver) newOptionSearch(tier *model.Tier, opt *model.ResourceOption, load tierLoad) (*optionSearch, bool, error) {
	curve, err := s.curveFor(opt)
	if err != nil {
		return nil, false, err
	}
	nMinPerf, ok := perf.MinActive(curve, load.full, opt.NActive)
	if !ok {
		return nil, false, nil
	}
	nMinDegraded := nMinPerf
	if load.degraded < load.full {
		// The in-order grid scan stops no later for a weaker bar, so
		// nMinDegraded ≤ nMinPerf; the ok fallback guards non-monotone
		// curves only.
		if n, ok := perf.MinActive(curve, load.degraded, opt.NActive); ok && n < nMinPerf {
			nMinDegraded = n
		}
	}
	maxTotal := opt.ResourceType().MaxInstances()
	if maxTotal > 0 && nMinPerf > maxTotal {
		// The component instance cap rules this option out before it
		// even meets the performance requirement.
		return nil, false, nil
	}
	cs, err := s.mechCombos(opt.ResourceType())
	if err != nil {
		return nil, false, err
	}
	rt := opt.ResourceType()
	combos, comboFPs := cs.combos, cs.fps
	contiguous := true
	for n := nMinPerf; n <= nMinPerf+s.opts.MaxRedundancy; n++ {
		if maxTotal > 0 && n > maxTotal {
			break
		}
		if !opt.NActive.Contains(float64(n)) {
			contiguous = false
			break
		}
	}
	warmSpare := s.warmLevels(rt, 1)
	// Closed-form cost floors (see tailCostLB): the active per-instance
	// component cost, the cheapest spare per-instance cost over the
	// allowed warmth levels, and the cheapest mechanism combination per
	// covered instance. The bound needs per-size minimum cost to be
	// non-decreasing beyond any size, which holds exactly when adding an
	// instance cannot reduce cost: min(active, spare) + mechMin >= 0.
	var activeInst float64
	for _, rc := range rt.Components {
		activeInst += float64(rc.Component.Cost(model.ModeActive))
	}
	minSpare := math.Inf(1)
	for _, w := range warmSpare {
		var c float64
		for i, rc := range rt.Components {
			mode := model.ModeInactive
			if i < w {
				mode = model.ModeActive
			}
			c += float64(rc.Component.Cost(mode))
		}
		if c < minSpare {
			minSpare = c
		}
	}
	mechMin := math.Inf(1)
	floorOK := true
	for _, combo := range combos {
		var per float64
		for i := range combo {
			p, err := combo[i].CostPerInstance()
			if err != nil {
				floorOK = false
				break
			}
			per += float64(p)
		}
		if !floorOK {
			break
		}
		if per < mechMin {
			mechMin = per
		}
	}
	if len(combos) == 0 {
		mechMin = 0
	}
	minInst := activeInst
	if minSpare < minInst {
		minInst = minSpare
	}
	return &optionSearch{
		solver:         s,
		tier:           tier,
		opt:            opt,
		nMinPerf:       nMinPerf,
		nMinDegraded:   nMinDegraded,
		maxTotal:       maxTotal,
		combos:         combos,
		base:           s.baseFPFor(tier.Name, rt.Name),
		comboFPs:       comboFPs,
		warmSpare:      warmSpare,
		contiguous:     contiguous,
		activeInstCost: activeInst,
		minInstCost:    minInst,
		mechMinCost:    mechMin,
		costFloorOK:    floorOK && minInst+mechMin >= 0,
	}, true, nil
}

// warmLevels reports the candidate spare warmth levels for a resource
// type: only cold spares by default (§5.1's restriction), or every
// dependency-closed prefix when the search explores warmth.
func (s *Solver) warmLevels(rt *model.ResourceType, nSpare int) []int {
	if nSpare == 0 || !s.opts.ExploreSpareWarmth {
		return warmZeroLevels
	}
	out := make([]int, len(rt.Components)+1)
	for i := range out {
		out[i] = i
	}
	return out
}

// candidates yields every candidate at a given total resource count,
// together with its packed cache fingerprints. The fingerprints are
// assembled from the precomputed per-option parts, so the walk does no
// per-candidate key allocation.
func (o *optionSearch) candidates(total int, yield func(td model.TierDesign, fps candFP, c units.Money) error) error {
	grid := o.opt.NActive
	for nActive := o.nMinPerf; nActive <= total; nActive++ {
		if !grid.Contains(float64(nActive)) {
			continue
		}
		nSpare := total - nActive
		minActive := minActiveFor(o.opt, nActive, o.nMinDegraded)
		warms := warmZeroLevels
		if nSpare > 0 {
			warms = o.warmSpare
		}
		for _, warm := range warms {
			for ci, combo := range o.combos {
				td := model.TierDesign{
					TierName:   o.tier.Name,
					Option:     o.opt,
					NActive:    nActive,
					NSpare:     nSpare,
					NMinPerf:   o.nMinPerf,
					MinActive:  minActive,
					SpareWarm:  warm,
					Mechanisms: combo,
				}
				mfp := modeFPOf(o.base, o.comboFPs[ci], warm, nSpare > 0)
				fps := candFP{avail: availFPOf(mfp, nActive, minActive, nSpare), mode: mfp}
				c, err := cost.Tier(&td)
				if err != nil {
					return err
				}
				if err := yield(td, fps, c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// searchOption finds the option's minimum-cost design meeting the
// downtime budget, seeding the incumbent from searches of other
// options so pruning carries across resource types.
//
// Two strategies share the outer size loop and the termination rules.
// SearchExhaustive walks candidates in enumeration order, pruning those
// dearer than the incumbent (§4.1). SearchBnB evaluates each size's
// batch in ascending-cost order instead: the first feasible candidate
// is the size's cheapest, so every candidate after the cut line —
// strictly dearer than the incumbent — is pruned in one stroke without
// an engine evaluation, including whole dominated option subtrees
// (their first size cuts at zero evaluations and the size rule ends the
// option). Both orders leave the same incumbent: the final best is the
// cheapest feasible candidate with ties broken toward lower downtime
// and then enumeration order, which the (cost, index) sort preserves.
//
// Cancellation: the candidate yield checks ctx once per candidate via a
// captured Done channel — a non-blocking select against a nil channel
// when the context cannot be cancelled, so the un-cancelled hot path
// stays allocation-free and branch-cheap.
//
// The second return is the option's tail certificate: a proven lower
// bound on the cost of every candidate the size loop did NOT visit
// (+Inf when it exhausted the whole size grid). searchTier compares the
// certificates against the tier's final optimum to certify it as a true
// cost lower bound over the tier's entire candidate space — what the
// combination bounds in solveEnterprise rely on.
func (s *Solver) searchOption(ctx context.Context, tier *model.Tier, opt *model.ResourceOption, load tierLoad, budgetMinutes float64,
	incumbent *TierCandidate, stats *searchStats) (*TierCandidate, float64, error) {

	tail := math.Inf(1)
	o, ok, err := s.newOptionSearch(tier, opt, load)
	if err != nil || !ok {
		return nil, tail, err
	}
	tr := s.opts.Tracer
	res := opt.ResourceType().Name
	done := ctx.Done()
	best := incumbent
	bnb := s.opts.Search != SearchExhaustive
	// B&B per-size batch, reused across sizes within the walk and pooled
	// across walks.
	sc := searchScratchPool.Get().(*searchScratch)
	buf, fpsBuf, order := sc.buf, sc.fps, sc.order
	defer func() {
		sc.buf, sc.fps, sc.order = buf[:0], fpsBuf[:0], order[:0]
		searchScratchPool.Put(sc)
	}()
	prevBestDowntime := math.Inf(1)
	for extra := 0; extra <= s.opts.MaxRedundancy; extra++ {
		total := o.nMinPerf + extra
		if o.maxTotal > 0 && total > o.maxTotal {
			break
		}
		minCostAtTotal := math.Inf(1)
		bestDowntimeAtTotal := math.Inf(1)
		if bnb {
			buf, fpsBuf = buf[:0], fpsBuf[:0]
			err := o.candidates(total, func(td model.TierDesign, fps candFP, c units.Money) error {
				if done != nil {
					select {
					case <-done:
						return ctx.Err()
					default:
					}
				}
				stats.candidates.Add(1)
				if tr != nil {
					tr.Emit(obs.Event{Ev: obs.EvCandGen, Tier: tier.Name, Res: res,
						N: td.NActive, S: td.NSpare, Warm: td.SpareWarm, Cost: float64(c)})
				}
				if float64(c) < minCostAtTotal {
					minCostAtTotal = float64(c)
				}
				buf = append(buf, TierCandidate{Design: td, Cost: c})
				fpsBuf = append(fpsBuf, fps)
				return nil
			})
			if err != nil {
				return nil, tail, err
			}
			// Best-first within the size: ascending cost, enumeration
			// index as the deterministic tie-break.
			order = order[:0]
			for i := range buf {
				order = append(order, i)
			}
			insertSortByCost(order, buf)
			cut := len(order)
			for k, i := range order {
				c := buf[i].Cost
				if best != nil && c > best.Cost {
					// Admissible bound: costs are sorted, so every
					// remaining candidate is dearer than the incumbent
					// and cannot replace it.
					cut = k
					break
				}
				entry, err := s.evalTier(ctx, &buf[i].Design, fpsBuf[i], stats)
				if err != nil {
					return nil, tail, err
				}
				down := entry.downtimeMinutes
				stats.poolAdd(tier.Name, c, down)
				if down < bestDowntimeAtTotal {
					bestDowntimeAtTotal = down
				}
				if down <= budgetMinutes &&
					(best == nil || c < best.Cost || (c == best.Cost && down < best.DowntimeMinutes)) {
					b := buf[i]
					b.DowntimeMinutes = down
					best = &b
					if tr != nil {
						tr.Emit(obs.Event{Ev: obs.EvIncumbent, Tier: tier.Name, Res: res,
							N: b.Design.NActive, S: b.Design.NSpare, Warm: b.Design.SpareWarm,
							Cost: float64(c), Down: down})
					}
				}
			}
			if n := len(order) - cut; n > 0 {
				stats.boundPruned.Add(int64(n))
				if tr != nil {
					for _, i := range order[cut:] {
						tr.Emit(obs.Event{Ev: obs.EvBoundPrune, Tier: tier.Name, Res: res,
							N: buf[i].Design.NActive, S: buf[i].Design.NSpare, Cost: float64(buf[i].Cost)})
					}
				}
			}
		} else {
			err := o.candidates(total, func(td model.TierDesign, fps candFP, c units.Money) error {
				if done != nil {
					select {
					case <-done:
						return ctx.Err()
					default:
					}
				}
				stats.candidates.Add(1)
				if tr != nil {
					tr.Emit(obs.Event{Ev: obs.EvCandGen, Tier: tier.Name, Res: res,
						N: td.NActive, S: td.NSpare, Warm: td.SpareWarm, Cost: float64(c)})
				}
				if float64(c) < minCostAtTotal {
					minCostAtTotal = float64(c)
				}
				// §4.1: once a feasible design is known, evaluate cost
				// first and reject dearer candidates without an
				// availability evaluation. Equal-cost candidates still
				// evaluate so ties break toward lower downtime. This
				// incumbent chain is order-dependent, so the walk stays
				// sequential; parallelism lives in the frontier path,
				// where every candidate is evaluated anyway.
				if best != nil && c > best.Cost {
					stats.pruned.Add(1)
					if tr != nil {
						tr.Emit(obs.Event{Ev: obs.EvCandPrune, Tier: tier.Name, Res: res,
							N: td.NActive, S: td.NSpare, Cost: float64(c)})
					}
					return nil
				}
				entry, err := s.evalTier(ctx, &td, fps, stats)
				if err != nil {
					return err
				}
				down := entry.downtimeMinutes
				stats.poolAdd(tier.Name, c, down)
				if down < bestDowntimeAtTotal {
					bestDowntimeAtTotal = down
				}
				if down <= budgetMinutes &&
					(best == nil || c < best.Cost || (c == best.Cost && down < best.DowntimeMinutes)) {
					best = &TierCandidate{Design: td, Cost: c, DowntimeMinutes: down}
					if tr != nil {
						tr.Emit(obs.Event{Ev: obs.EvIncumbent, Tier: tier.Name, Res: res,
							N: td.NActive, S: td.NSpare, Warm: td.SpareWarm,
							Cost: float64(c), Down: down})
					}
				}
				return nil
			})
			if err != nil {
				return nil, tail, err
			}
		}
		// Termination: when every candidate at this size already costs
		// at least the incumbent, larger sizes only cost more. The tail
		// certificate for the unvisited sizes is this size's minimum cost
		// when the grid is contiguous (per-size minimum cost is then
		// non-decreasing), and the closed-form floor otherwise.
		if best != nil && minCostAtTotal >= float64(best.Cost) {
			if o.contiguous {
				tail = minCostAtTotal
			} else {
				tail = o.tailCostLB(total + 1)
			}
			break
		}
		// Infeasibility: no feasible design yet and the availability
		// metric degrades as resources grow (§4.1). Nothing beyond this
		// size was priced, so only the closed-form floor certifies it.
		if best == nil && bestDowntimeAtTotal > prevBestDowntime {
			tail = o.tailCostLB(total + 1)
			break
		}
		prevBestDowntime = bestDowntimeAtTotal
	}
	if best == incumbent {
		return nil, tail, nil // no improvement from this option
	}
	return best, tail, nil
}

// searchTier finds the minimum-cost design for one tier in isolation.
//
// certified reports that the result is a proven cost lower bound over
// the tier's ENTIRE candidate space, not just the visited part: every
// option's tail certificate — the lower bound on whatever its size loop
// left unexplored — is at least the final optimum's cost. Candidates at
// visited sizes need no certificate: evaluated ones competed for the
// incumbency directly and pruned ones were dearer than an incumbent the
// final optimum only improved on.
func (s *Solver) searchTier(ctx context.Context, tier *model.Tier, load tierLoad, budgetMinutes float64, stats *searchStats) (*TierCandidate, bool, error) {
	var best *TierCandidate
	tails := make([]float64, len(tier.Options))
	for i := range tier.Options {
		cand, tail, err := s.searchOption(ctx, tier, &tier.Options[i], load, budgetMinutes, best, stats)
		if err != nil {
			return nil, false, err
		}
		tails[i] = tail
		if cand != nil {
			best = cand
		}
	}
	certified := best != nil
	if certified {
		for _, tail := range tails {
			if tail < float64(best.Cost) {
				certified = false
				break
			}
		}
	}
	return best, certified, nil
}

// frontierImproveEps is the minimum relative downtime improvement a
// larger design must deliver for the frontier search to keep growing a
// resource option.
const frontierImproveEps = 0.01

// sizeBatch holds one size's generated candidates for the frontier
// walk. Two instances alternate so the lookahead generation reuses
// buffers instead of reallocating per size.
type sizeBatch struct {
	cands   []TierCandidate
	fps     []candFP
	minCost float64
	total   int
	ok      bool // size exists within the redundancy and instance caps
}

// optionFrontier collects the option's Pareto-optimal (cost, downtime)
// candidates, exploring sizes until added resources stop improving the
// best achievable downtime. Unlike searchOption, every candidate here
// is evaluated regardless of order, so the per-size batch fans its
// availability evaluations across the worker pool; the batch buffer and
// append order keep the result bit-identical to the sequential walk.
//
// maxCost is the branch-and-bound cut (+Inf disables it). Three prunes
// apply, each before any engine evaluation:
//
//   - Size subtree: on a contiguous grid, per-size minimum cost is
//     non-decreasing, so once a size's cheapest candidate is over the
//     bound, the whole remaining size tail is cut.
//   - Last-size candidates: individual over-bound candidates are
//     skipped only at the LAST admitted size (the next size is over the
//     bound or off the grid). Earlier sizes must evaluate everything:
//     the improvement rule below consumes evaluated downtimes, and a
//     skip there could change which sizes this walk explores relative
//     to the unbounded one. At the last size no later size can
//     contribute in-bound points, so the termination divergence is
//     irrelevant. The generation lookahead this needs is deferred-
//     counted: a looked-ahead batch joins the stats (and the trace)
//     only when the walk actually reaches or prunes it, keeping
//     candidate counts identical to the unbounded walk.
//   - Whole option: a non-contiguous grid breaks the per-size
//     monotonicity argument, so the only admissible cut is the closed-
//     form floor over the whole option (tailCostLB at the performance
//     minimum). Over the bound, the option is skipped as one pruned
//     subtree; otherwise it builds unbounded.
//
// Every cut removes only candidates dearer than maxCost, and removing a
// dearer-than-threshold candidate can never change which ≤-threshold
// points survive Pareto reduction — so the reduced frontier is exactly
// the ≤ maxCost prefix of the unbounded one (see tierFrontier).
func (s *Solver) optionFrontier(ctx context.Context, tier *model.Tier, opt *model.ResourceOption, load tierLoad, maxCost float64, stats *searchStats) ([]TierCandidate, error) {
	o, ok, err := s.newOptionSearch(tier, opt, load)
	if err != nil || !ok {
		return nil, err
	}
	tr := s.opts.Tracer
	res := opt.ResourceType().Name
	bounded := !math.IsInf(maxCost, 1)
	if bounded && !o.contiguous {
		if lb := o.tailCostLB(o.nMinPerf); lb > maxCost {
			// Whole-option subtree prune: even the closed-form floor over
			// every size is over the bound. Counted as one pruned subtree —
			// its candidates were never generated.
			stats.boundPruned.Add(1)
			if tr != nil {
				tr.Emit(obs.Event{Ev: obs.EvBoundPrune, Tier: tier.Name, Res: res,
					N: o.nMinPerf, Cost: lb})
			}
			return nil, nil
		}
		bounded = false
		maxCost = math.Inf(1)
	}
	done := ctx.Done()
	gen := func(total int, b *sizeBatch) error {
		b.cands, b.fps = b.cands[:0], b.fps[:0]
		b.minCost = math.Inf(1)
		b.total = total
		b.ok = total <= o.nMinPerf+s.opts.MaxRedundancy && (o.maxTotal == 0 || total <= o.maxTotal)
		if !b.ok {
			return nil
		}
		return o.candidates(total, func(td model.TierDesign, fps candFP, c units.Money) error {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if float64(c) < b.minCost {
				b.minCost = float64(c)
			}
			b.cands = append(b.cands, TierCandidate{Design: td, Cost: c})
			b.fps = append(b.fps, fps)
			return nil
		})
	}
	// admit counts a generated batch into the stats and the trace; prune
	// marks an admitted batch (or part of one) bound-pruned.
	admit := func(b *sizeBatch) {
		stats.candidates.Add(int64(len(b.cands)))
		if tr != nil {
			for i := range b.cands {
				td := &b.cands[i].Design
				tr.Emit(obs.Event{Ev: obs.EvCandGen, Tier: tier.Name, Res: res,
					N: td.NActive, S: td.NSpare, Warm: td.SpareWarm, Cost: float64(b.cands[i].Cost)})
			}
		}
	}
	prune := func(cands []TierCandidate) {
		stats.boundPruned.Add(int64(len(cands)))
		if tr != nil {
			for i := range cands {
				tr.Emit(obs.Event{Ev: obs.EvBoundPrune, Tier: tier.Name, Res: res,
					N: cands[i].Design.NActive, S: cands[i].Design.NSpare, Cost: float64(cands[i].Cost)})
			}
		}
	}
	sc := searchScratchPool.Get().(*searchScratch)
	all, evalIdx, skipped := sc.all[:0], sc.evalIdx[:0], sc.skipped[:0]
	cur, nxt := &sc.a, &sc.b
	defer func() {
		// paretoReduce copies the surviving candidates out, so the
		// accumulation buffer goes straight back to the pool.
		sc.all, sc.evalIdx, sc.skipped = all[:0], evalIdx[:0], skipped[:0]
		searchScratchPool.Put(sc)
	}()
	if err := gen(o.nMinPerf, cur); err != nil {
		return nil, err
	}
	bestDowntime := math.Inf(1)
	stale := 0
	for cur.ok {
		admit(cur)
		if cur.minCost > maxCost {
			// Size subtree cut: this size's cheapest candidate is already
			// over the bound, and larger sizes only cost more.
			prune(cur.cands)
			break
		}
		if err := gen(cur.total+1, nxt); err != nil {
			return nil, err
		}
		last := bounded && (!nxt.ok || nxt.minCost > maxCost)
		evalIdx = evalIdx[:0]
		skipped = skipped[:0]
		for i := range cur.cands {
			if last && float64(cur.cands[i].Cost) > maxCost {
				skipped = append(skipped, cur.cands[i])
				continue
			}
			evalIdx = append(evalIdx, i)
		}
		prune(skipped)
		err = par.ForEachTimedCtx(ctx, s.opts.Workers, len(evalIdx), s.parT, func(k int) error {
			i := evalIdx[k]
			entry, err := s.evalTier(ctx, &cur.cands[i].Design, cur.fps[i], stats)
			if err != nil {
				return err
			}
			cur.cands[i].DowntimeMinutes = entry.downtimeMinutes
			return nil
		})
		if err != nil {
			return nil, err
		}
		improvedTo := bestDowntime
		for _, i := range evalIdx {
			if cur.cands[i].DowntimeMinutes < improvedTo {
				improvedTo = cur.cands[i].DowntimeMinutes
			}
		}
		for _, i := range evalIdx {
			all = append(all, cur.cands[i])
		}
		if last {
			if nxt.ok {
				// The looked-ahead size is over the bound: account it and
				// cut the remaining size tail.
				admit(nxt)
				prune(nxt.cands)
			}
			break
		}
		if improvedTo < bestDowntime*(1-frontierImproveEps) {
			bestDowntime = improvedTo
			stale = 0
		} else {
			stale++
			if stale >= 2 {
				break
			}
		}
		cur, nxt = nxt, cur
	}
	return paretoReduce(all), nil
}

// tierFrontier merges option frontiers into the tier's Pareto frontier,
// sorted by ascending cost (and so descending downtime). Options are
// independent searches, so they fan across the worker pool; merging in
// option order keeps the frontier identical to the sequential build.
//
// maxCost, when finite, truncates the result to points the combination
// phase can actually use: designs dearer than the tier's admissible
// cost threshold cannot appear in any combination cheaper than the
// solve's upper bound. The truncated frontier is exactly the ≤ maxCost
// prefix of the untruncated one, which is what the combiner's
// post-combination validity check relies on (see solveEnterprise).
func (s *Solver) tierFrontier(ctx context.Context, tier *model.Tier, load tierLoad, maxCost float64, stats *searchStats) ([]TierCandidate, error) {
	fronts := make([][]TierCandidate, len(tier.Options))
	err := par.ForEachTimedCtx(ctx, s.opts.Workers, len(tier.Options), s.parT, func(i int) error {
		f, err := s.optionFrontier(ctx, tier, &tier.Options[i], load, maxCost, stats)
		if err != nil {
			return err
		}
		fronts[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, f := range fronts {
		n += len(f)
	}
	all := make([]TierCandidate, 0, n)
	for _, f := range fronts {
		all = append(all, f...)
	}
	out := paretoReduce(all)
	if !math.IsInf(maxCost, 1) {
		for len(out) > 0 && float64(out[len(out)-1].Cost) > maxCost {
			out = out[:len(out)-1]
		}
	}
	return out, nil
}

// paretoReduce keeps only candidates not dominated in (cost, downtime),
// returning them sorted by ascending cost. It sorts cands in place —
// every caller owns its slice — so the frontier hot path allocates only
// the reduced output.
func paretoReduce(cands []TierCandidate) []TierCandidate {
	if len(cands) == 0 {
		return nil
	}
	// Sort by cost ascending, then downtime ascending.
	sortCandidates(cands)
	out := make([]TierCandidate, 0, len(cands))
	bestDown := math.Inf(1)
	for _, c := range cands {
		if c.DowntimeMinutes < bestDown {
			out = append(out, c)
			bestDown = c.DowntimeMinutes
		}
	}
	return out
}

func sortCandidates(cands []TierCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Cost != cands[j].Cost {
			return cands[i].Cost < cands[j].Cost
		}
		return cands[i].DowntimeMinutes < cands[j].DowntimeMinutes
	})
}
