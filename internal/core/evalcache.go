package core

import (
	"sync"
	"sync/atomic"

	"aved/internal/avail"
	"aved/internal/units"
)

// evalShards is the shard count of the availability-evaluation cache.
// Keys hash uniformly (packed availability fingerprints), so a modest
// power of two keeps lock contention negligible at any realistic worker
// count.
const evalShards = 64

// evalCache is a sharded, singleflight-style cache of availability
// evaluations keyed by packed fingerprint. Concurrent requests for the
// same key share one engine evaluation: the first requester computes,
// the rest block on the flight's once and read the settled result.
// Errors settle the flight too — engine errors here are deterministic
// model errors, so retrying could not succeed. The one exception is
// context cancellation, which says nothing about the model: evalTier
// forgets such flights so later solves re-evaluate (see forget).
type evalCache struct {
	shards [evalShards]evalShard
	// slabMu guards slab, the cache-wide flight allocator: flights are
	// carved out of block allocations instead of one heap object per
	// miss. Blocks are never reclaimed individually — flights live as
	// long as the cache — so carving is safe, and misses cost
	// 1/flightSlabLen allocations. The allocator is cache-wide rather
	// than per shard because it is touched only on misses (one per
	// distinct fingerprint), far too rarely to contend.
	slabMu sync.Mutex
	slab   []evalFlight
}

type evalShard struct {
	mu sync.Mutex
	m  map[fp128]*evalFlight
}

// newFlight carves one flight off the shared slab.
func (c *evalCache) newFlight(gen uint64) *evalFlight {
	c.slabMu.Lock()
	if len(c.slab) == 0 {
		c.slab = make([]evalFlight, flightSlabLen)
	}
	f := &c.slab[0]
	c.slab = c.slab[1:]
	c.slabMu.Unlock()
	f.gen = gen
	return f
}

type evalFlight struct {
	once  sync.Once
	entry evalEntry
	err   error
	// gen is the solve generation that created the flight (see
	// Solver.gen): a hit from a later generation is warm-start reuse.
	gen uint64
}

// flightSlabLen is the per-shard flight block size: small enough that a
// tiny solve wastes little, large enough to amortize the per-miss
// allocation to noise.
const flightSlabLen = 64

// newEvalCache builds an empty cache. Shard maps initialize lazily on
// first insert — map reads on a nil map are safe — so construction
// itself allocates nothing per shard; solvers are built once per model
// pair, sometimes per request.
func newEvalCache() *evalCache {
	return &evalCache{}
}

// flight returns the singleflight slot for a key, creating it if
// absent and stamping a new flight with the requesting solve's
// generation. The lo word is already avalanche-mixed, so it shards
// directly; the lookup itself is allocation-free.
func (c *evalCache) flight(key fp128, gen uint64) *evalFlight {
	sh := &c.shards[key.lo%evalShards]
	sh.mu.Lock()
	f, ok := sh.m[key]
	if !ok {
		f = c.newFlight(gen)
		if sh.m == nil {
			sh.m = map[fp128]*evalFlight{}
		}
		sh.m[key] = f
	}
	sh.mu.Unlock()
	return f
}

// forget removes a settled flight so the next request re-runs the
// evaluation. The identity check makes it idempotent when every waiter
// on a cancelled flight calls it, and a no-op when a fresh flight has
// already replaced f under the key.
func (c *evalCache) forget(key fp128, f *evalFlight) {
	sh := &c.shards[key.lo%evalShards]
	sh.mu.Lock()
	if sh.m[key] == f {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// modeCacheShards is the shard count of the effective-mode cache. Mode
// fingerprints are far fewer than availability fingerprints (counts
// collapse), so a smaller table suffices.
const modeCacheShards = 32

// modeCache caches resolved effective-mode slices by mode fingerprint,
// so candidate enumeration stops re-resolving mechanism references per
// (active, spare) split: every design sharing (option, relevant combo
// settings, warmth, has-spares) reuses one []avail.Mode. Slices are
// shared read-only — engines never mutate Modes — and the first stored
// slice wins so concurrent resolvers converge on one canonical value.
type modeCache struct {
	shards [modeCacheShards]modeCacheShard
}

type modeCacheShard struct {
	mu sync.Mutex
	m  map[fp128][]avail.Mode
}

// newModeCache builds an empty cache; shard maps initialize lazily on
// first put, like newEvalCache's.
func newModeCache() *modeCache {
	return &modeCache{}
}

func (c *modeCache) get(key fp128) ([]avail.Mode, bool) {
	sh := &c.shards[key.lo%modeCacheShards]
	sh.mu.Lock()
	modes, ok := sh.m[key]
	sh.mu.Unlock()
	return modes, ok
}

// put stores modes under key and returns the canonical slice — the one
// already present if another goroutine got there first.
func (c *modeCache) put(key fp128, modes []avail.Mode) []avail.Mode {
	sh := &c.shards[key.lo%modeCacheShards]
	sh.mu.Lock()
	if prev, ok := sh.m[key]; ok {
		modes = prev
	} else {
		if sh.m == nil {
			sh.m = map[fp128][]avail.Mode{}
		}
		sh.m[key] = modes
	}
	sh.mu.Unlock()
	return modes
}

// searchStats is the concurrency-safe counterpart of Stats used while a
// search is in flight; snapshot converts it for the Solution. With the
// singleflight cache, Evaluations counts actual engine invocations —
// concurrent requests for one fingerprint still count once.
type searchStats struct {
	candidates    atomic.Int64
	pruned        atomic.Int64
	evals         atomic.Int64
	cacheHits     atomic.Int64
	boundPruned   atomic.Int64
	warmReuse     atomic.Int64
	frontierReuse atomic.Int64
	// gen is this solve's generation (Solver.gen at solve start). Set
	// once before any concurrency, read-only afterwards.
	gen uint64
	// phaseNs accumulates wall-clock nanoseconds per solver phase (see
	// phaseID); written only when the solver is timed, so an untimed
	// solve's snapshot sees all zeros and reports a nil PhaseNanos.
	// Atomic because the eval phase accumulates from pool workers.
	phaseNs [numPhases]atomic.Int64
	// pools, when non-nil, collect every evaluated (cost, downtime)
	// pair per tier — raw material for the combination upper bound,
	// gathered free of extra engine work (see combineBounds). Each
	// tier's searches run on one goroutine at a time with phase barriers
	// in between, so the per-tier slices need no lock.
	pools   [][]TierCandidate
	poolIdx map[string]int
}

// poolAdd records one evaluated candidate's (cost, downtime) pair for
// the tier's bound pool. A no-op (one nil check) when collection is off.
func (st *searchStats) poolAdd(tierName string, c units.Money, down float64) {
	if st.pools == nil {
		return
	}
	if i, ok := st.poolIdx[tierName]; ok {
		st.pools[i] = append(st.pools[i], TierCandidate{Cost: c, DowntimeMinutes: down})
	}
}

func (st *searchStats) snapshot() Stats {
	s := Stats{
		CandidatesGenerated: int(st.candidates.Load()),
		CostPruned:          int(st.pruned.Load()),
		Evaluations:         int(st.evals.Load()),
		EvalCacheHits:       int(st.cacheHits.Load()),
		BoundPruned:         int(st.boundPruned.Load()),
		WarmStartReuse:      int(st.warmReuse.Load()),
		FrontierReuse:       int(st.frontierReuse.Load()),
	}
	// The map materializes only when some phase recorded time — an
	// untimed solve keeps PhaseNanos nil, so disabled-path Stats stay
	// allocation-free and bitwise comparable.
	var pn map[string]int64
	for i := range st.phaseNs {
		if ns := st.phaseNs[i].Load(); ns != 0 {
			if pn == nil {
				pn = make(map[string]int64, numPhases)
			}
			pn[phaseNames[i]] = ns
		}
	}
	s.PhaseNanos = pn
	return s
}
