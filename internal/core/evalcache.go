package core

import (
	"sync"
	"sync/atomic"
)

// evalShards is the shard count of the availability-evaluation cache.
// Keys hash uniformly (availability fingerprints), so a modest power of
// two keeps lock contention negligible at any realistic worker count.
const evalShards = 64

// evalCache is a sharded, singleflight-style cache of availability
// evaluations keyed by fingerprint. Concurrent requests for the same
// key share one engine evaluation: the first requester computes, the
// rest block on the flight's once and read the settled result. Errors
// settle the flight too — engine errors here are deterministic model
// errors, so retrying could not succeed.
type evalCache struct {
	shards [evalShards]evalShard
}

type evalShard struct {
	mu sync.Mutex
	m  map[string]*evalFlight
}

type evalFlight struct {
	once  sync.Once
	entry evalEntry
	err   error
}

func newEvalCache() *evalCache {
	c := &evalCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*evalFlight{}
	}
	return c
}

// flight returns the singleflight slot for a key, creating it if absent.
func (c *evalCache) flight(key string) *evalFlight {
	// Inline FNV-1a: the key is already a canonical fingerprint string.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	sh := &c.shards[h%evalShards]
	sh.mu.Lock()
	f, ok := sh.m[key]
	if !ok {
		f = &evalFlight{}
		sh.m[key] = f
	}
	sh.mu.Unlock()
	return f
}

// searchStats is the concurrency-safe counterpart of Stats used while a
// search is in flight; snapshot converts it for the Solution. With the
// singleflight cache, Evaluations counts actual engine invocations —
// concurrent requests for one fingerprint still count once.
type searchStats struct {
	candidates atomic.Int64
	pruned     atomic.Int64
	evals      atomic.Int64
}

func (st *searchStats) snapshot() Stats {
	return Stats{
		CandidatesGenerated: int(st.candidates.Load()),
		CostPruned:          int(st.pruned.Load()),
		Evaluations:         int(st.evals.Load()),
	}
}
