package core

import (
	"math"

	"aved/internal/model"
)

// This file implements the packed availability fingerprint that keys
// the solver's caches. It replaces the old string key (which built a
// relevance map, sorted labels and concatenated on every call) with a
// 128-bit value computed by pure integer mixing: the per-option
// invariants (tier and resource name hashes, each combo's
// relevant-settings hash) are hoisted into optionSearch setup, so the
// per-candidate fingerprint in the evalTier hot path costs zero
// allocations.
//
// Two fingerprints are derived per candidate:
//
//   - the mode fingerprint covers everything the resolved effective
//     modes depend on — tier, resource, MTTR/MTBF-relevant mechanism
//     settings, spare warmth, and whether spares exist at all — and
//     keys the Solver's mode cache;
//   - the availability fingerprint extends it with the exact (n, m, s)
//     counts and keys the evaluation cache.
//
// Both are content hashes: two candidates share a key exactly when the
// fingerprinted inputs agree, up to 128-bit hash collisions, which
// TestFingerprintMatchesStringKey and TestModeFingerprintInjective pin as absent across the scenario suite.

// fp128 is a packed 128-bit fingerprint. The lo word is already
// avalanche-mixed, so caches shard on it directly.
type fp128 struct{ hi, lo uint64 }

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211

	// Distinct salts keep the two 64-bit lanes and the different
	// fingerprint roles (setting entries, combos, bases) independent.
	saltLane   uint64 = 0x6a09e667f3bcc909
	saltEntry  uint64 = 0x243f6a8885a308d3
	saltGolden uint64 = 0x9e3779b97f4a7c15
)

// mix64 is the SplitMix64 finalizer: a cheap full-avalanche permutation
// of 64-bit values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a over s seeded with h.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// mixUint folds one value into both lanes.
func (f fp128) mixUint(v uint64) fp128 {
	return fp128{
		hi: mix64(f.hi ^ mix64(v+saltGolden)),
		lo: mix64(f.lo ^ mix64(v+saltLane)),
	}
}

// mixString folds a string into both lanes.
func (f fp128) mixString(s string) fp128 {
	return f.mixUint(hashString(fnvOffset64, s))
}

// add combines fingerprints commutatively, so set-valued inputs hash
// independently of enumeration order (the string key sorted labels for
// the same reason). Sum, not xor: duplicate elements must not cancel.
func (f fp128) add(g fp128) fp128 {
	return fp128{hi: f.hi + g.hi, lo: f.lo + g.lo}
}

// sealed finishes a commutative accumulation with a final avalanche.
func (f fp128) sealed() fp128 {
	return fp128{hi: mix64(f.hi ^ saltEntry), lo: mix64(f.lo ^ saltLane)}
}

// settingFP fingerprints one mechanism setting: the mechanism name plus
// a commutative hash over its parameter values, so the map's random
// iteration order cannot leak into the key.
func settingFP(ms model.MechSetting) fp128 {
	f := fp128{hi: fnvOffset64, lo: saltLane}.mixString(ms.Mechanism.Name)
	var sum fp128
	for name, v := range ms.Values {
		e := fp128{hi: saltEntry, lo: saltGolden}.mixString(name).mixString(v.Str)
		e = e.mixUint(math.Float64bits(v.Hours))
		var isNum uint64
		if v.IsNum {
			isNum = 1
		}
		sum = sum.add(e.mixUint(isNum))
	}
	return f.mixUint(sum.hi).mixUint(sum.lo)
}

// mechRelevant reports whether a mechanism feeds any failure mode's
// MTTR or MTBF on the resource — the settings that change availability.
// Mechanisms affecting just loss windows or performance (e.g.
// checkpointing) do not, so candidates differing only there share one
// engine evaluation.
func mechRelevant(rt *model.ResourceType, name string) bool {
	for _, rc := range rt.Components {
		for _, f := range rc.Component.Failures {
			if f.MTTRRef == name || f.MTBFRef == name {
				return true
			}
		}
	}
	return false
}

// comboFP fingerprints the MTTR/MTBF-relevant mechanism settings of a
// combo, commutatively across settings.
func comboFP(rt *model.ResourceType, mechs []model.MechSetting) fp128 {
	var sum fp128
	for _, ms := range mechs {
		if ms.Mechanism == nil || !mechRelevant(rt, ms.Mechanism.Name) {
			continue
		}
		sum = sum.add(settingFP(ms))
	}
	return sum.sealed()
}

// baseFP is the per-option invariant part of every fingerprint.
func baseFP(tierName, resourceName string) fp128 {
	return fp128{hi: fnvOffset64, lo: saltGolden}.mixString(tierName).mixString(resourceName)
}

// baseFPFor is the solver-scoped base fingerprint: baseFP with the
// resource type's Rebind invalidation epoch mixed in. At epoch zero —
// every resource on a fresh solver — it equals baseFP exactly, so the
// precomputed-parts agreement tests and the free fingerprintOf remain
// valid; after a Rebind touching the resource, every fingerprint rooted
// here changes and the caches' old entries become unreachable.
func (s *Solver) baseFPFor(tierName, resourceName string) fp128 {
	f := baseFP(tierName, resourceName)
	if e := s.epochs[resourceName]; e != 0 {
		f = f.mixUint(e)
	}
	return f
}

// modeFPOf keys a design's resolved effective modes: base, relevant
// combo settings, spare warmth and spare existence. Resource counts
// beyond has-spares do not change the modes.
func modeFPOf(base, combo fp128, warm int, hasSpares bool) fp128 {
	f := base.mixUint(combo.hi).mixUint(combo.lo)
	var s uint64
	if hasSpares {
		s = 1
	}
	return f.mixUint(uint64(warm)<<1 | s)
}

// availFPOf completes an availability fingerprint from a mode
// fingerprint and the design's exact counts.
func availFPOf(mode fp128, nActive, minActive, nSpare int) fp128 {
	return mode.mixUint(uint64(nActive)).mixUint(uint64(minActive)).mixUint(uint64(nSpare))
}

// candFP carries one candidate's two cache keys.
type candFP struct {
	avail fp128 // keys evalCache (full availability evaluation)
	mode  fp128 // keys modeCache (resolved effective modes)
}

// fingerprintOf computes both fingerprints of a design from scratch,
// allocation-free. The search paths instead assemble the same values
// from per-option precomputed parts; the two constructions must agree,
// which TestFingerprintPrecomputedAgrees pins.
func fingerprintOf(td *model.TierDesign) candFP {
	base := baseFP(td.TierName, td.Resource().Name)
	combo := comboFP(td.Resource(), td.Mechanisms)
	m := modeFPOf(base, combo, td.SpareWarm, td.NSpare > 0)
	return candFP{avail: availFPOf(m, td.NActive, td.MinActive, td.NSpare), mode: m}
}
