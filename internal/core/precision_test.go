package core

import (
	"testing"

	"aved/internal/avail"
)

// tunableEngine records the precision knobs NewSolver pushes into a
// precisionTunable engine; Evaluate delegates to the analytic engine so
// a solve through it still terminates normally.
type tunableEngine struct {
	inner  avail.Engine
	relErr float64
	batch  int
	calls  int
}

func (e *tunableEngine) Evaluate(tms []avail.TierModel) (avail.Result, error) {
	return e.inner.Evaluate(tms)
}

func (e *tunableEngine) SetPrecision(relErr float64, batch int) {
	e.relErr, e.batch, e.calls = relErr, batch, e.calls+1
}

func TestSolverForwardsPrecisionKnobs(t *testing.T) {
	eng := &tunableEngine{inner: avail.NewMarkovEngine()}
	appTierSolver(t, Options{Engine: eng, SimRelErr: 0.02, SimBatch: 48})
	if eng.calls != 1 {
		t.Fatalf("SetPrecision called %d times, want 1", eng.calls)
	}
	if eng.relErr != 0.02 || eng.batch != 48 {
		t.Errorf("engine got relErr=%v batch=%d, want 0.02/48", eng.relErr, eng.batch)
	}
}

func TestSolverSkipsPrecisionWhenUnset(t *testing.T) {
	eng := &tunableEngine{inner: avail.NewMarkovEngine()}
	appTierSolver(t, Options{Engine: eng})
	if eng.calls != 0 {
		t.Errorf("SetPrecision called %d times with zero knobs, want 0", eng.calls)
	}
}

// TestSolverPrecisionNonTunableEngine: knobs set against an engine
// without precision control are documented as ignored — and must not
// panic or fail solver construction.
func TestSolverPrecisionNonTunableEngine(t *testing.T) {
	appTierSolver(t, Options{Engine: avail.NewMarkovEngine(), SimRelErr: 0.01})
}
