package core

import (
	"context"

	"aved/internal/cost"
	"aved/internal/model"
)

// ComboSeed records the coordinates of a successful enterprise
// solution: enough to re-locate each chosen tier design in a later
// solve's (possibly rebound) models without holding pointers into the
// old ones. Mechanism settings are matched by name and value, so a
// price or MTBF perturbation that leaves the structure alone still
// resolves the same combination. Obtain one from Solution.Seed and pass
// it to SolveCell to seed a grid cell's combination upper bound; the
// solver also keeps its own internally (lastCombo) for plain
// SolveContext warm re-solves. The fields are unexported: a seed is an
// opaque token, valid for any solver over a service with the same tier
// list.
type ComboSeed struct {
	tiers []seedCoord
}

type seedCoord struct {
	tierName   string
	resource   string
	nActive    int
	nSpare     int
	warm       int
	mechanisms []model.MechSetting
}

// rememberCombo stores the solved combination for the next solve's
// upper-bound seed.
func (s *Solver) rememberCombo(chosen []*TierCandidate) {
	seed := &ComboSeed{tiers: make([]seedCoord, len(chosen))}
	for i, c := range chosen {
		seed.tiers[i] = seedCoordOf(&c.Design)
	}
	s.lastCombo.Store(seed)
}

func seedCoordOf(td *model.TierDesign) seedCoord {
	return seedCoord{
		tierName:   td.TierName,
		resource:   td.Option.ResourceType().Name,
		nActive:    td.NActive,
		nSpare:     td.NSpare,
		warm:       td.SpareWarm,
		mechanisms: td.Mechanisms,
	}
}

// Seed extracts the solution's combination coordinates for seeding a
// later SolveCell — typically the next cell of a budget chain, whose
// looser budget this solution trivially satisfies. Nil for solutions
// without tier designs (and safe on a nil receiver), so sweep loops can
// chain unconditionally.
func (sol *Solution) Seed() *ComboSeed {
	if sol == nil || len(sol.Design.Tiers) == 0 {
		return nil
	}
	seed := &ComboSeed{tiers: make([]seedCoord, len(sol.Design.Tiers))}
	for i := range sol.Design.Tiers {
		seed.tiers[i] = seedCoordOf(&sol.Design.Tiers[i])
	}
	return seed
}

// seedUB re-prices a previous solution's combination under the current
// models and requirement, reporting its total cost as a combination
// upper bound when it is still inside the search space and still meets
// the downtime budget. The seed is cfg.seed when set, else — under
// cfg.implicitSeed — the solver's own last solution. Tiers the rebind
// did not touch replay from the warm evaluation cache, so a
// single-parameter what-if re-solve gets a near-optimal UB for about
// one engine evaluation — where a cold solve needs the full
// waterfilling probe pass. Any structural mismatch (different tiers,
// vanished option, setting no longer enumerated, size off the grid)
// reports ok=false and the caller falls back to waterfilling.
func (s *Solver) seedUB(ctx context.Context, req model.Requirements, cfg cellConfig, stats *searchStats) (float64, bool, error) {
	seed := cfg.seed
	if seed == nil && cfg.implicitSeed {
		seed = s.lastCombo.Load()
	}
	if seed == nil || len(seed.tiers) != len(s.svc.Tiers) {
		return 0, false, nil
	}
	budget := req.MaxAnnualDowntime.Minutes()
	cands := make([]*TierCandidate, len(seed.tiers))
	for i := range seed.tiers {
		sc := &seed.tiers[i]
		tier := &s.svc.Tiers[i]
		if tier.Name != sc.tierName {
			return 0, false, nil
		}
		var opt *model.ResourceOption
		for j := range tier.Options {
			if tier.Options[j].ResourceType().Name == sc.resource {
				opt = &tier.Options[j]
				break
			}
		}
		if opt == nil {
			return 0, false, nil
		}
		o, ok, err := s.newOptionSearch(tier, opt, loadOf(req))
		if err != nil || !ok {
			return 0, false, err
		}
		// The re-located design must lie inside the space this solve
		// searches: an out-of-space combination could undercut the true
		// optimum and the derived thresholds would no longer be admissible.
		total := sc.nActive + sc.nSpare
		if sc.nActive < o.nMinPerf || !opt.NActive.Contains(float64(sc.nActive)) ||
			total > o.nMinPerf+s.opts.MaxRedundancy ||
			(o.maxTotal > 0 && total > o.maxTotal) ||
			!warmAllowed(o, sc.nSpare, sc.warm) {
			return 0, false, nil
		}
		ci := -1
		for k := range o.combos {
			if sameSettings(o.combos[k], sc.mechanisms) {
				ci = k
				break
			}
		}
		if ci < 0 {
			return 0, false, nil
		}
		minActive := minActiveFor(opt, sc.nActive, o.nMinDegraded)
		td := model.TierDesign{
			TierName:   tier.Name,
			Option:     opt,
			NActive:    sc.nActive,
			NSpare:     sc.nSpare,
			NMinPerf:   o.nMinPerf,
			MinActive:  minActive,
			SpareWarm:  sc.warm,
			Mechanisms: o.combos[ci],
		}
		mfp := modeFPOf(o.base, o.comboFPs[ci], sc.warm, sc.nSpare > 0)
		fps := candFP{avail: availFPOf(mfp, sc.nActive, minActive, sc.nSpare), mode: mfp}
		c, err := cost.Tier(&td)
		if err != nil {
			return 0, false, err
		}
		entry, err := s.evalTier(ctx, &td, fps, stats)
		if err != nil {
			return 0, false, err
		}
		stats.poolAdd(tier.Name, c, entry.downtimeMinutes)
		cands[i] = &TierCandidate{Design: td, Cost: c, DowntimeMinutes: entry.downtimeMinutes}
	}
	if combinedDowntime(cands) > budget {
		return 0, false, nil
	}
	return combinedCost(cands), true, nil
}

// warmAllowed reports whether the warmth level is one the current
// search would enumerate for that spare count.
func warmAllowed(o *optionSearch, nSpare, warm int) bool {
	if nSpare == 0 {
		return warm == 0
	}
	for _, w := range o.warmSpare {
		if w == warm {
			return true
		}
	}
	return false
}

// sameSettings compares mechanism settings by mechanism name and
// parameter values — the identity that survives a model rebind.
func sameSettings(a, b []model.MechSetting) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Mechanism == nil || b[i].Mechanism == nil ||
			a[i].Mechanism.Name != b[i].Mechanism.Name ||
			len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for k, v := range a[i].Values {
			if w, ok := b[i].Values[k]; !ok || v != w {
				return false
			}
		}
	}
	return true
}
