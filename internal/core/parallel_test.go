package core

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/scenarios"
)

// countingEngine wraps an availability engine and counts Evaluate
// invocations, exposing how much engine work the cache actually admits.
type countingEngine struct {
	inner avail.Engine
	calls atomic.Int64
}

func (e *countingEngine) Evaluate(tms []avail.TierModel) (avail.Result, error) {
	e.calls.Add(1)
	return e.inner.Evaluate(tms)
}

// TestEvalCacheConcurrentDedup is the eval-cache stress test: many
// goroutines hammer the same small set of fingerprints, and both the
// engine-call count and Stats.Evaluations must equal the number of
// distinct fingerprints — the singleflight admits each key exactly once.
func TestEvalCacheConcurrentDedup(t *testing.T) {
	eng := &countingEngine{inner: avail.NewMarkovEngine()}
	s := appTierSolver(t, Options{Engine: eng})

	// Distinct fingerprints: (nActive, maintenance level) pairs. The
	// same designs are requested by every goroutine.
	levels := []string{"bronze", "silver", "gold"}
	var designs []model.TierDesign
	for n := 2; n <= 9; n++ {
		for _, lv := range levels {
			designs = append(designs, model.TierDesign{
				TierName:  "application",
				Option:    &s.svc.Tiers[0].Options[0],
				NActive:   n,
				NSpare:    0,
				NMinPerf:  n,
				MinActive: n,
				Mechanisms: []model.MechSetting{{
					Mechanism: s.inf.Mechanisms["maintenanceA"],
					Values:    map[string]model.ParamValue{"level": model.EnumValue(lv)},
				}},
			})
		}
	}
	distinct := map[fp128]bool{}
	for i := range designs {
		distinct[fingerprintOf(&designs[i]).avail] = true
	}
	if len(distinct) != len(designs) {
		t.Fatalf("fixture bug: %d designs map to %d fingerprints", len(designs), len(distinct))
	}

	const goroutines = 32
	var (
		stats searchStats
		wg    sync.WaitGroup
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := range designs {
				if _, err := s.evalTier(context.Background(), &designs[i], fingerprintOf(&designs[i]), &stats); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := int(stats.evals.Load()); got != len(distinct) {
		t.Errorf("Stats.Evaluations = %d, want %d distinct fingerprints", got, len(distinct))
	}
	if got := int(eng.calls.Load()); got != len(distinct) {
		t.Errorf("engine invocations = %d, want %d distinct fingerprints", got, len(distinct))
	}
}

// TestSolveWorkerCountBitIdentical asserts the search determinism
// guarantee: solutions — including search statistics — are identical at
// any worker count, for both the single-tier phase-1 path and the
// multi-tier frontier/combiner path.
func TestSolveWorkerCountBitIdentical(t *testing.T) {
	solve := func(t *testing.T, ecommerce bool, workers int, load, budget float64) *Solution {
		t.Helper()
		inf, err := scenarios.Infrastructure()
		if err != nil {
			t.Fatal(err)
		}
		var svc *model.Service
		if ecommerce {
			svc, err = scenarios.Ecommerce(inf)
		} else {
			svc, err = scenarios.ApplicationTier(inf)
		}
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.Solve(enterpriseReq(load, budget))
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	cases := []struct {
		name         string
		ecommerce    bool
		load, budget float64
	}{
		{"apptier-phase1", false, 1000, 100},
		// (2000, 60): per-tier optima combine above the budget, forcing
		// the phase-2 frontier build and the exact combiner.
		{"ecommerce-frontier", true, 2000, 60},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq := solve(t, c.ecommerce, 1, c.load, c.budget)
			for _, workers := range []int{2, 4, 0} {
				parl := solve(t, c.ecommerce, workers, c.load, c.budget)
				if parl.Design.Label() != seq.Design.Label() {
					t.Errorf("workers=%d: design %q != sequential %q", workers, parl.Design.Label(), seq.Design.Label())
				}
				if parl.Cost != seq.Cost || parl.DowntimeMinutes != seq.DowntimeMinutes {
					t.Errorf("workers=%d: (cost, downtime) = (%v, %v), sequential (%v, %v)",
						workers, parl.Cost, parl.DowntimeMinutes, seq.Cost, seq.DowntimeMinutes)
				}
				if !reflect.DeepEqual(parl.Stats, seq.Stats) {
					t.Errorf("workers=%d: stats %+v != sequential %+v", workers, parl.Stats, seq.Stats)
				}
			}
		})
	}
}

// TestConcurrentSolvesShareCache drives many Solve calls on one solver
// from separate goroutines — the sweep usage pattern — under varied
// requirements, checking every solution against a fresh-solver rerun.
func TestConcurrentSolvesShareCache(t *testing.T) {
	shared := appTierSolver(t, Options{})
	loads := []float64{600, 1000, 1800, 2600}
	budgets := []float64{50, 500, 5000}
	type key struct{ load, budget float64 }
	got := sync.Map{}
	var wg sync.WaitGroup
	for _, load := range loads {
		for _, budget := range budgets {
			wg.Add(1)
			go func(load, budget float64) {
				defer wg.Done()
				sol, err := shared.Solve(enterpriseReq(load, budget))
				if err != nil {
					t.Errorf("load=%v budget=%v: %v", load, budget, err)
					return
				}
				got.Store(key{load, budget}, sol)
			}(load, budget)
		}
	}
	wg.Wait()
	for _, load := range loads {
		for _, budget := range budgets {
			v, ok := got.Load(key{load, budget})
			if !ok {
				continue // solve already reported its error
			}
			sol := v.(*Solution)
			fresh := appTierSolver(t, Options{})
			want, err := fresh.Solve(enterpriseReq(load, budget))
			if err != nil {
				t.Fatal(err)
			}
			if sol.Design.Label() != want.Design.Label() || sol.Cost != want.Cost {
				t.Errorf("load=%v budget=%v: shared-solver design (%q, %v) != fresh (%q, %v)",
					load, budget, sol.Design.Label(), sol.Cost, want.Design.Label(), want.Cost)
			}
		}
	}
}
