package core

import (
	"reflect"
	"testing"

	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// The failover latency-degradation SLO (Requirements.DegradedThroughput)
// relaxes the up-threshold M for dynamically sized, resource-scoped
// tiers: the tier counts as up while it still sustains the degraded
// load. These tests pin the three contract points: the SLO only ever
// lowers M (never the sizing minimum), a unity SLO is bit-identical to
// no SLO at all, and a constant traffic curve is bit-identical to the
// legacy scalar throughput — stats included.

func solveApptier(t *testing.T, req model.Requirements) *Solution {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestDegradedSLOLowersMinActive(t *testing.T) {
	base := model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 100 * units.Minute,
	}
	full := solveApptier(t, base)

	slo := base
	slo.DegradedThroughput = 0.5
	degraded := solveApptier(t, slo)

	ft, dt := full.Design.Tiers[0], degraded.Design.Tiers[0]
	if dt.NMinPerf != ft.NMinPerf {
		t.Errorf("sizing minimum moved under the SLO: %d vs %d — the SLO must only shape M", dt.NMinPerf, ft.NMinPerf)
	}
	if dt.MinActive > ft.MinActive {
		t.Errorf("degraded SLO raised MinActive: %d > %d", dt.MinActive, ft.MinActive)
	}
	if dt.MinActive >= dt.NActive && dt.Option.Sizing == model.SizingDynamic && dt.Option.FailureScope == model.ScopeResource {
		// With half the load tolerated during failover, the optimum for a
		// dynamic resource-scoped tier must run with headroom below its
		// active count.
		t.Errorf("degraded SLO did not relax the up-threshold: M=%d N=%d", dt.MinActive, dt.NActive)
	}
	if degraded.Cost > full.Cost {
		t.Errorf("relaxing the failover bar raised the optimal cost: %v > %v", degraded.Cost, full.Cost)
	}
}

func TestDegradedSLOUnityBitIdentical(t *testing.T) {
	base := model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 100 * units.Minute,
	}
	unity := base
	unity.DegradedThroughput = 1.0
	a, b := solveApptier(t, base), solveApptier(t, unity)
	if a.Cost != b.Cost || a.DowntimeMinutes != b.DowntimeMinutes || a.Design.Label() != b.Design.Label() {
		t.Errorf("unity SLO diverged from no SLO: %v %s vs %v %s", a.Cost, a.Design.Label(), b.Cost, b.Design.Label())
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("unity SLO changed search effort:\n  none  %+v\n  unity %+v", a.Stats, b.Stats)
	}
}

func TestConstantTrafficBitIdentical(t *testing.T) {
	scalar := model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 100 * units.Minute,
	}
	curve := model.Requirements{
		Kind:              model.ReqEnterprise,
		Traffic:           []float64{1000, 1000, 1000, 1000},
		MaxAnnualDowntime: 100 * units.Minute,
	}
	a, b := solveApptier(t, scalar), solveApptier(t, curve)
	if a.Cost != b.Cost || a.DowntimeMinutes != b.DowntimeMinutes || a.Design.Label() != b.Design.Label() {
		t.Errorf("constant curve diverged from scalar throughput: %v %s vs %v %s",
			a.Cost, a.Design.Label(), b.Cost, b.Design.Label())
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("constant curve changed search effort:\n  scalar %+v\n  curve  %+v", a.Stats, b.Stats)
	}
}
