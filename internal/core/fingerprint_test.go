package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// legacyAvailKey is the string fingerprint the packed fp128 replaced,
// kept here as the reference semantics: two designs must share a packed
// fingerprint exactly when they share this key.
func legacyAvailKey(td *model.TierDesign) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|n%d|m%d|s%d|w%d",
		td.TierName, td.Resource().Name, td.NActive, td.MinActive, td.NSpare, td.SpareWarm)
	relevant := map[string]bool{}
	for _, rc := range td.Resource().Components {
		for _, f := range rc.Component.Failures {
			if f.MTTRRef != "" {
				relevant[f.MTTRRef] = true
			}
			if f.MTBFRef != "" {
				relevant[f.MTBFRef] = true
			}
		}
	}
	labels := make([]string, 0, len(td.Mechanisms))
	for _, ms := range td.Mechanisms {
		if ms.Mechanism != nil && relevant[ms.Mechanism.Name] {
			labels = append(labels, ms.Label())
		}
	}
	sort.Strings(labels)
	sb.WriteByte('|')
	sb.WriteString(strings.Join(labels, ","))
	return sb.String()
}

// collectScenarioDesigns walks every option of every tier of the
// paper's services through the real search enumeration across several
// sizes, collecting the candidates and their hot-path fingerprints.
func collectScenarioDesigns(t *testing.T) ([]model.TierDesign, []candFP) {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	var (
		designs []model.TierDesign
		fps     []candFP
	)
	for _, build := range []func(*model.Infrastructure) (*model.Service, error){
		scenarios.ApplicationTier, scenarios.Ecommerce, scenarios.Scientific,
	} {
		svc, err := build(inf)
		if err != nil {
			t.Fatal(err)
		}
		// Explore warmth so fingerprints cover the warmth dimension too.
		s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), ExploreSpareWarmth: true})
		if err != nil {
			t.Fatal(err)
		}
		for ti := range svc.Tiers {
			tier := &svc.Tiers[ti]
			for oi := range tier.Options {
				o, ok, err := s.newOptionSearch(tier, &tier.Options[oi], tierLoad{full: 900, degraded: 900})
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				for extra := 0; extra <= 3; extra++ {
					total := o.nMinPerf + extra
					if o.maxTotal > 0 && total > o.maxTotal {
						break
					}
					err := o.candidates(total, func(td model.TierDesign, fps2 candFP, _ units.Money) error {
						designs = append(designs, td)
						fps = append(fps, fps2)
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if len(designs) < 100 {
		t.Fatalf("scenario enumeration too small: %d designs", len(designs))
	}
	return designs, fps
}

// TestFingerprintMatchesStringKey pins the packed fingerprint to the
// string key's equivalence classes over the scenario suite: same legacy
// key ⇔ same fp128, so the cache shares and splits evaluations exactly
// as before the rekey.
func TestFingerprintMatchesStringKey(t *testing.T) {
	designs, fps := collectScenarioDesigns(t)
	byKey := map[string]fp128{}
	byFP := map[fp128]string{}
	for i := range designs {
		key := legacyAvailKey(&designs[i])
		fp := fps[i].avail
		if prev, ok := byKey[key]; ok && prev != fp {
			t.Fatalf("one string key %q mapped to two fingerprints %x and %x", key, prev, fp)
		}
		byKey[key] = fp
		if prev, ok := byFP[fp]; ok && prev != key {
			t.Fatalf("fingerprint collision: %x covers both %q and %q", fp, prev, key)
		}
		byFP[fp] = key
	}
	if len(byKey) != len(byFP) {
		t.Fatalf("%d string keys but %d fingerprints", len(byKey), len(byFP))
	}
}

// TestModeFingerprintInjective is the collision test for the second
// cache level: designs whose resolved effective modes differ must never
// share a mode fingerprint, or the mode cache would silently hand one
// design another design's failure modes.
func TestModeFingerprintInjective(t *testing.T) {
	designs, fps := collectScenarioDesigns(t)
	seen := map[fp128]string{}
	for i := range designs {
		td := &designs[i]
		ems, err := td.EffectiveModes()
		if err != nil {
			t.Fatal(err)
		}
		// The tier name scopes the cache like the legacy key did.
		canon := fmt.Sprintf("%s|%v", td.TierName, ems)
		if prev, ok := seen[fps[i].mode]; ok {
			if prev != canon {
				t.Fatalf("mode fingerprint collision: %x covers different effective modes\n%s\nvs\n%s",
					fps[i].mode, prev, canon)
			}
			continue
		}
		seen[fps[i].mode] = canon
	}
}

// TestFingerprintPrecomputedAgrees pins the two constructions of the
// fingerprint to each other: the hot path assembles it from hoisted
// per-option parts, fingerprintOf computes it from scratch, and they
// must agree on every candidate or the caches would split.
func TestFingerprintPrecomputedAgrees(t *testing.T) {
	designs, fps := collectScenarioDesigns(t)
	for i := range designs {
		if got := fingerprintOf(&designs[i]); got != fps[i] {
			t.Fatalf("design %d (%s): precomputed fingerprint %x != from-scratch %x",
				i, designs[i].Label(), fps[i], got)
		}
	}
}

// TestFingerprintOrderIndependent: mechanism order and map iteration
// order must not leak into the fingerprint (the string key sorted
// labels for the same guarantee).
func TestFingerprintOrderIndependent(t *testing.T) {
	s := appTierSolver(t, Options{})
	mech := s.inf.Mechanisms["maintenanceA"]
	checkpoint := s.inf.Mechanisms["checkpoint"]
	base := model.TierDesign{
		TierName:  "application",
		Option:    &s.svc.Tiers[0].Options[0],
		NActive:   4,
		NSpare:    1,
		NMinPerf:  4,
		MinActive: 4,
		Mechanisms: []model.MechSetting{
			{Mechanism: mech, Values: map[string]model.ParamValue{"level": model.EnumValue("gold")}},
			{Mechanism: checkpoint, Values: map[string]model.ParamValue{
				"storage_location":    model.EnumValue("peer"),
				"checkpoint_interval": model.DurationValue(2),
			}},
		},
	}
	swapped := base
	swapped.Mechanisms = []model.MechSetting{base.Mechanisms[1], base.Mechanisms[0]}
	if fingerprintOf(&base) != fingerprintOf(&swapped) {
		t.Error("mechanism order changed the fingerprint")
	}
	for i := 0; i < 50; i++ { // map iteration order varies per run
		if fingerprintOf(&base) != fingerprintOf(&swapped) {
			t.Fatal("fingerprint unstable across map iteration orders")
		}
	}
}

// TestFingerprintSensitive: every fingerprinted dimension must move the
// key — counts, warmth, and MTTR-relevant settings — while
// availability-neutral settings (checkpoint interval) must not.
func TestFingerprintSensitive(t *testing.T) {
	s := appTierSolver(t, Options{})
	mech := s.inf.Mechanisms["maintenanceA"]
	mk := func(n, spare, minActive, warm int, level string) model.TierDesign {
		return model.TierDesign{
			TierName:  "application",
			Option:    &s.svc.Tiers[0].Options[0],
			NActive:   n,
			NSpare:    spare,
			NMinPerf:  n,
			MinActive: minActive,
			SpareWarm: warm,
			Mechanisms: []model.MechSetting{{
				Mechanism: mech,
				Values:    map[string]model.ParamValue{"level": model.EnumValue(level)},
			}},
		}
	}
	base := mk(4, 1, 4, 0, "gold")
	variants := []model.TierDesign{
		mk(5, 1, 4, 0, "gold"),   // nActive
		mk(4, 2, 4, 0, "gold"),   // nSpare
		mk(4, 1, 3, 0, "gold"),   // minActive
		mk(4, 1, 4, 1, "gold"),   // warmth
		mk(4, 1, 4, 0, "bronze"), // relevant setting
	}
	bfp := fingerprintOf(&base)
	for i := range variants {
		if fingerprintOf(&variants[i]).avail == bfp.avail {
			t.Errorf("variant %d did not change the availability fingerprint", i)
		}
	}
}

// TestFingerprintAllocFree is the allocation regression for the
// fingerprint hot path: computing a design's packed fingerprint from
// scratch must not allocate at all (the search paths do strictly less
// work, assembling it from precomputed parts).
func TestFingerprintAllocFree(t *testing.T) {
	s := appTierSolver(t, Options{})
	td := model.TierDesign{
		TierName:  "application",
		Option:    &s.svc.Tiers[0].Options[0],
		NActive:   6,
		NSpare:    1,
		NMinPerf:  6,
		MinActive: 6,
		Mechanisms: []model.MechSetting{{
			Mechanism: s.inf.Mechanisms["maintenanceA"],
			Values:    map[string]model.ParamValue{"level": model.EnumValue("silver")},
		}},
	}
	var sink candFP
	allocs := testing.AllocsPerRun(200, func() {
		sink = fingerprintOf(&td)
	})
	if allocs != 0 {
		t.Errorf("fingerprintOf allocates %.1f objects per run, want 0", allocs)
	}
	_ = sink
}

// TestMemoizedEngineBitIdenticalAcrossScenarios runs the whole scenario
// suite with the memoizing engine (the default) and with a fresh
// memo-less MarkovEngine{} per solve, asserting bit-identical solutions
// — the cache-transparency property at the solver level.
func TestMemoizedEngineBitIdenticalAcrossScenarios(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		name  string
		build func(*model.Infrastructure) (*model.Service, error)
		req   model.Requirements
	}
	runs := []run{
		{"apptier", scenarios.ApplicationTier, enterpriseReq(1000, 100)},
		{"ecommerce", scenarios.Ecommerce, enterpriseReq(2000, 60)},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			solve := func(opts Options) *Solution {
				svc, err := r.build(inf)
				if err != nil {
					t.Fatal(err)
				}
				opts.Registry = scenarios.Registry()
				s, err := NewSolver(inf, svc, opts)
				if err != nil {
					t.Fatal(err)
				}
				sol, err := s.Solve(r.req)
				if err != nil {
					t.Fatal(err)
				}
				return sol
			}
			memoized := solve(Options{}) // default: NewMarkovEngine with memo
			plain := solve(Options{Engine: avail.MarkovEngine{}})
			// The memo-activity stats describe the memo itself, so they
			// differ by design; everything else must be bit-identical.
			if memoized.Stats.ModeMemoSolves == 0 {
				t.Error("memoized solve reports no mode-chain solves")
			}
			if plain.Stats.ModeMemoHits != 0 || plain.Stats.ModeMemoSolves != 0 {
				t.Errorf("memo-less solve reports memo activity: %+v", plain.Stats)
			}
			mStats, pStats := memoized.Stats, plain.Stats
			mStats.ModeMemoHits, mStats.ModeMemoSolves = 0, 0
			pStats.ModeMemoHits, pStats.ModeMemoSolves = 0, 0
			if memoized.Design.Label() != plain.Design.Label() ||
				memoized.Cost != plain.Cost ||
				memoized.DowntimeMinutes != plain.DowntimeMinutes ||
				!reflect.DeepEqual(mStats, pStats) {
				t.Errorf("memoized solve diverged from memo-less solve:\n%+v\nvs\n%+v", memoized, plain)
			}
		})
	}
}
