package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/units"
)

// slowEngine wraps the analytic engine with a fixed per-evaluation
// delay, so a short deadline reliably expires mid-search regardless of
// how fast the host machine is.
type slowEngine struct {
	inner avail.Engine
	delay time.Duration
}

func (e slowEngine) Evaluate(tms []avail.TierModel) (avail.Result, error) {
	time.Sleep(e.delay)
	return e.inner.Evaluate(tms)
}

func TestSolveContextDeadlineExceeded(t *testing.T) {
	s := appTierSolver(t, Options{Engine: slowEngine{avail.NewMarkovEngine(), 2 * time.Millisecond}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, err := s.SolveContext(ctx, enterpriseReq(1000, 100))
	elapsed := time.Since(start)
	if sol != nil {
		t.Fatalf("got a solution despite the 1ms deadline: %+v", sol)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Promptness: the per-candidate checks must stop the search within a
	// few engine evaluations, not after draining the full design space
	// (an unconstrained solve of this point takes far longer than this).
	if elapsed > 2*time.Second {
		t.Fatalf("solve took %v to honor a 1ms deadline", elapsed)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CanceledError", err, err)
	}
	if !errors.Is(ce.Err, context.DeadlineExceeded) {
		t.Errorf("CanceledError.Err = %v, want context.DeadlineExceeded", ce.Err)
	}
	// The slow engine guarantees at least one candidate was generated
	// before the deadline hit, so the partial stats must show progress.
	if ce.Stats.CandidatesGenerated == 0 {
		t.Error("CanceledError.Stats shows no candidates generated before the abort")
	}
}

func TestOptionsDeadline(t *testing.T) {
	s := appTierSolver(t, Options{
		Engine:   slowEngine{avail.NewMarkovEngine(), 2 * time.Millisecond},
		Deadline: time.Millisecond,
	})
	_, err := s.Solve(enterpriseReq(1000, 100))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded via Options.Deadline", err)
	}
}

func TestSolveContextPreCanceled(t *testing.T) {
	s := appTierSolver(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.SolveContext(ctx, enterpriseReq(1000, 100))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveContextJobDeadline(t *testing.T) {
	s := scientificSolver(t, Options{Engine: slowEngine{avail.NewMarkovEngine(), 2 * time.Millisecond}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := s.SolveContext(ctx, model.Requirements{Kind: model.ReqJob, MaxJobTime: 50 * units.Hour})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("job solve err = %v, want context.DeadlineExceeded", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("job solve err = %v (%T), want *CanceledError", err, err)
	}
}

// TestCanceledSolveDoesNotPoisonCache pins the singleflight-forget
// rule: a flight settled by a context error must not serve that error
// to a later, un-cancelled solve of the same design point.
func TestCanceledSolveDoesNotPoisonCache(t *testing.T) {
	s := appTierSolver(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx, enterpriseReq(1000, 100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled solve err = %v, want context.Canceled", err)
	}
	sol, err := s.Solve(enterpriseReq(1000, 100))
	if err != nil {
		t.Fatalf("follow-up solve failed after a canceled one: %v", err)
	}
	if sol == nil || len(sol.Design.Tiers) == 0 {
		t.Fatal("follow-up solve returned an empty solution")
	}
}

func TestCanceledSolveMetric(t *testing.T) {
	reg := obs.NewRegistry()
	s := appTierSolver(t, Options{Metrics: reg})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx, enterpriseReq(1000, 100)); err == nil {
		t.Fatal("canceled solve unexpectedly succeeded")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["core.solve_canceled"]; got != 1 {
		t.Errorf("core.solve_canceled = %d, want 1", got)
	}
	if got := snap.Counters["core.solve_errors"]; got != 1 {
		t.Errorf("core.solve_errors = %d, want 1", got)
	}
}

func TestCanceledErrorUnwrap(t *testing.T) {
	ce := &CanceledError{Err: context.DeadlineExceeded}
	if !errors.Is(ce, context.DeadlineExceeded) {
		t.Error("CanceledError does not unwrap to its context error")
	}
	if ce.Error() == "" {
		t.Error("empty Error() string")
	}
}
