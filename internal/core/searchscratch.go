package core

import "sync"

// searchScratch pools the per-call slice buffers of the option walks:
// searchOption's per-size batch (candidates, fingerprints, evaluation
// order) and optionFrontier's accumulation buffers plus its two
// alternating size batches. One walk owns one scratch for its whole
// run — walks on different goroutines draw different instances — so a
// warm solver's searches reuse grown buffers instead of reallocating
// them per option.
type searchScratch struct {
	buf     []TierCandidate
	fps     []candFP
	order   []int
	evalIdx []int
	skipped []TierCandidate
	all     []TierCandidate
	a, b    sizeBatch
}

var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// insertSortByCost sorts order — initially ascending indices into buf —
// by ascending buf[i].Cost. Insertion sort is stable, so equal costs
// keep their initial (enumeration-index) order: exactly the
// (cost, index) order searchOption's branch-and-bound cut relies on.
// It replaces sort.Slice because per-size batches are small (the
// splits × warmth × combos of one total) and sort.Slice allocates its
// reflection-based swapper on every call.
func insertSortByCost(order []int, buf []TierCandidate) {
	for k := 1; k < len(order); k++ {
		i := order[k]
		c := buf[i].Cost
		j := k - 1
		for j >= 0 && buf[order[j]].Cost > c {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = i
	}
}
