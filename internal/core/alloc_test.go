package core

import (
	"testing"

	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// TestWarmSolveAllocBudget is the allocation regression for the
// arena-backed search: a re-solve on a warm solver draws its frontier
// batches from the pooled search scratch, its evaluations from the
// fingerprint cache and its flights from the slab allocator, so the
// whole three-tier solve should cost a small bounded number of
// allocations — the Pareto-reduced outputs, the combination, and the
// Solution itself. Measured ~155 on the e-commerce scenario; the budget
// leaves headroom for map-growth jitter without letting a per-candidate
// allocation (hundreds of candidates per solve) sneak back in.
func TestWarmSolveAllocBudget(t *testing.T) {
	inf, err := model.ParseInfrastructure(scenarios.InfrastructureSpec)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := model.ParseService(scenarios.EcommerceSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := model.Requirements{Kind: model.ReqEnterprise, Throughput: 2000, MaxAnnualDowntime: 60 * units.Minute}
	if _, err := s.Solve(req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := s.Solve(req); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 300
	if allocs > budget {
		t.Errorf("warm re-solve allocates %.0f objects per run, want <= %d", allocs, budget)
	}
}
