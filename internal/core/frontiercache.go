package core

import (
	"context"
	"math"
	"sync"

	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/perf"
)

// This file implements the frontier cache behind CellOptions.Frontiers:
// whole per-tier Pareto frontiers shared across the SolveCell calls of
// one grid chain on one Solver.
//
// The key observation is requirement-invariance. A tier's frontier
// depends on the models and on the throughput requirement — never on
// the downtime budget — and on the throughput only through each
// option's performance minimum nMinPerf (plus whether the option is
// ruled out entirely by its curve or instance cap). Every cell of a
// sweep sharing one load therefore needs the SAME frontier, truncated
// at a budget-dependent cost threshold — and the truncated frontier is
// exactly the ≤ maxCost prefix of a frontier built under any larger
// bound (see tierFrontier), so serving a prefix of a cached build is
// bit-identical to rebuilding under the cell's own bound.
//
// Entries are built BOUNDED, at the first requesting cell's threshold,
// never unbounded on purpose: a frontier built with no cost bound
// degenerates into an exhaustive walk of the tier space — the very work
// the branch-and-bound truncation exists to avoid — and costs more than
// an entire budget chain of bounded builds. Instead the cache relies on
// the chain discipline the sweeps establish: budgets tightest first,
// each cell's solution seeding the next cell's upper bound. Under that
// order the combination thresholds shrink monotonically along the chain
// (a looser budget's optimum never costs more, and the per-tier phase-1
// costs are fixed), so the chain's FIRST combination-phase cell builds
// at the chain's high-water bound and every later cell serves a prefix.
// A cell that does need a larger bound simply rebuilds at it — the
// smaller build's evaluations replay from the solver's evaluation
// cache, so extension costs only the new tail.
//
// A FrontierSet is one chain's cache, used sequentially, which is what
// makes the effort accounting deterministic: each build is charged to
// the cell that runs it (candidates, pruning, evaluations, cache hits —
// via a private stats block, merged as-is), and each replay charges the
// recorded build effort with every evaluation request counted as an
// EvalCacheHit (the engine never ran for it) plus one FrontierReuse.
// Chain order is fixed regardless of worker count — the sweeps
// parallelise across chains, never within one — so per-cell Stats and
// their sums are exact at any worker count. Sharing one set across
// concurrently running chains is memory-safe but forfeits exactly that
// determinism, so the sweeps create one set per chain.
//
// Invalidation: the key carries each resource's Rebind epoch, which
// covers availability-relevant perturbations; cost changes are exactly
// what the epochs deliberately ignore, and frontier points carry costs,
// so any Rebind — a price-only zero-delta one included — bumps the
// solver's rebind generation and a stale-generation set clears itself
// wholesale on its next use.

// FrontierSet caches per-tier Pareto frontiers across the SolveCell
// calls of one sequential grid chain (see CellOptions.Frontiers). The
// zero value is not usable; create one per chain with NewFrontierSet.
type FrontierSet struct {
	mu sync.Mutex
	// gen is the solver rebind generation the entries were built under;
	// a mismatch invalidates them all (costs may have moved).
	gen uint64
	m   map[fp128]*frontierEntry
}

// NewFrontierSet creates an empty frontier cache for one grid chain.
func NewFrontierSet() *FrontierSet {
	return &FrontierSet{}
}

// frontierEntry is one cached frontier build: the Pareto points, the
// cost bound they were built under, and the effort the build spent, for
// replaying cells to account deterministically.
type frontierEntry struct {
	points []TierCandidate
	bound  float64
	delta  frontierDelta
}

// frontierDelta is the effort one frontier build spent, lifted from its
// private stats block. requests is the build's evaluation requests —
// engine runs plus cache replays — which a replaying cell charges
// entirely to EvalCacheHits.
type frontierDelta struct {
	candidates  int64
	costPruned  int64
	boundPruned int64
	requests    int64
}

// frontierKey fingerprints everything a tier's frontier can depend on
// under a fixed Solver beyond the cost bound: the tier name, each
// option's resource identity with its Rebind epoch, and each option's
// throughput-derived size minimum (or its infeasibility). Option order
// is part of the tier's identity, so the fold is ordered, not
// commutative. The solver-level knobs that also shape frontiers
// (MaxRedundancy, ExploreSpareWarmth, FixedMechanisms, the engine) are
// fixed per Solver and a set never outlives its solver, so they need no
// key bits.
func (s *Solver) frontierKey(tier *model.Tier, load tierLoad) (fp128, error) {
	f := fp128{hi: fnvOffset64, lo: saltEntry}.mixString(tier.Name)
	for i := range tier.Options {
		opt := &tier.Options[i]
		rt := opt.ResourceType()
		f = f.mixString(rt.Name)
		if e := s.epochs[rt.Name]; e != 0 {
			f = f.mixUint(e)
		}
		curve, err := s.curveFor(opt)
		if err != nil {
			return fp128{}, err
		}
		n, ok := perf.MinActive(curve, load.full, opt.NActive)
		if ok {
			if maxTotal := rt.MaxInstances(); maxTotal > 0 && n > maxTotal {
				ok = false
			}
		}
		// 0 encodes "option ruled out", n+1 a feasible minimum — the same
		// split newOptionSearch applies, so two loads share a key exactly
		// when every option enumerates the same candidate space. The
		// degraded minimum shapes each candidate's up-threshold M, so it
		// is part of the space and gets its own key bits.
		if !ok {
			f = f.mixUint(0)
		} else {
			f = f.mixUint(uint64(n) + 1)
			nd := n
			if load.degraded < load.full {
				if m, mok := perf.MinActive(curve, load.degraded, opt.NActive); mok && m < n {
					nd = m
				}
			}
			f = f.mixUint(uint64(nd) + 1)
		}
	}
	return f, nil
}

// cachedTierFrontier is tierFrontier through a chain's frontier set:
// serve the ≤ maxCost prefix of a cached build whose bound covers the
// request, otherwise build at maxCost and cache. The returned slice may
// share the cached backing array and must be treated read-only — the
// combiners only read.
func (s *Solver) cachedTierFrontier(ctx context.Context, set *FrontierSet, tier *model.Tier, load tierLoad, maxCost float64, stats *searchStats) ([]TierCandidate, error) {
	key, err := s.frontierKey(tier, load)
	if err != nil {
		return nil, err
	}
	gen := s.rebindGen.Load()
	set.mu.Lock()
	if set.gen != gen {
		set.gen, set.m = gen, nil
	}
	e := set.m[key]
	set.mu.Unlock()
	if e != nil && maxCost <= e.bound {
		stats.candidates.Add(e.delta.candidates)
		stats.pruned.Add(e.delta.costPruned)
		stats.boundPruned.Add(e.delta.boundPruned)
		stats.cacheHits.Add(e.delta.requests)
		stats.frontierReuse.Add(1)
		if tr := s.opts.Tracer; tr != nil {
			tr.Emit(obs.Event{Ev: obs.EvFrontierReuse, Tier: tier.Name,
				FP: fpHex(key), Evals: e.delta.requests})
		}
		return frontierPrefix(e.points, maxCost), nil
	}
	// Build — or extend, rebuilding from scratch at the larger bound; the
	// superseded build's evaluations replay from the evaluation cache, so
	// extension costs only the new tail. The build runs against a private
	// stats block so its effort can be recorded on the entry; pool
	// collection is already off by the frontier phase (finishBounds), so
	// none is configured.
	bs := searchStats{gen: stats.gen}
	points, err := s.tierFrontier(ctx, tier, load, maxCost, &bs)
	if err != nil {
		return nil, err
	}
	delta := frontierDelta{
		candidates:  bs.candidates.Load(),
		costPruned:  bs.pruned.Load(),
		boundPruned: bs.boundPruned.Load(),
		requests:    bs.evals.Load() + bs.cacheHits.Load(),
	}
	stats.candidates.Add(bs.candidates.Load())
	stats.pruned.Add(bs.pruned.Load())
	stats.boundPruned.Add(bs.boundPruned.Load())
	stats.evals.Add(bs.evals.Load())
	stats.cacheHits.Add(bs.cacheHits.Load())
	stats.warmReuse.Add(bs.warmReuse.Load())
	// Engine time the build spent (the only phase a frontier build
	// accrues — the bracketed phases run on the outer stats) carries
	// over so PhaseNanos["eval"] keeps matching the eval.miss trace.
	for i := range bs.phaseNs {
		if ph := bs.phaseNs[i].Load(); ph != 0 {
			stats.phaseNs[i].Add(ph)
		}
	}
	set.mu.Lock()
	if set.gen == gen {
		if set.m == nil {
			set.m = map[fp128]*frontierEntry{}
		}
		set.m[key] = &frontierEntry{points: points, bound: maxCost, delta: delta}
	}
	set.mu.Unlock()
	return points, nil
}

// frontierPrefix trims a cost-ascending frontier to its ≤ maxCost
// prefix without copying. Identical to the trailing trim tierFrontier
// applies to a truncated build.
func frontierPrefix(points []TierCandidate, maxCost float64) []TierCandidate {
	if math.IsInf(maxCost, 1) {
		return points
	}
	out := points
	for len(out) > 0 && float64(out[len(out)-1].Cost) > maxCost {
		out = out[:len(out)-1]
	}
	return out
}
