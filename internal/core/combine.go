package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// solveEnterprise implements §4.1 for enterprise services: per-tier
// optima first, then multi-tier refinement over per-tier cost/downtime
// frontiers when the combination misses the overall budget. Tiers are
// independent searches in both phases, so each phase fans them across
// the worker pool; per-tier results land by index, keeping the outcome
// identical to the sequential order.
func (s *Solver) solveEnterprise(ctx context.Context, req model.Requirements) (*Solution, error) {
	budget := req.MaxAnnualDowntime.Minutes()
	var stats searchStats
	tr := s.opts.Tracer

	// Phase 1: each tier in isolation against the full budget. The
	// per-tier optimum is a cost lower bound, so if the combination
	// meets the budget it is the overall optimum.
	endPhase := s.emitPhase("tier-search")
	perTier := make([]*TierCandidate, len(s.svc.Tiers))
	err := par.ForEachCtx(ctx, s.opts.Workers, len(s.svc.Tiers), func(i int) error {
		start := time.Time{}
		if tr != nil {
			start = time.Now()
		}
		cand, err := s.searchTier(ctx, &s.svc.Tiers[i], req.Throughput, budget, &stats)
		if err != nil {
			return err
		}
		perTier[i] = cand
		if tr != nil && cand != nil {
			tr.Emit(obs.Event{Ev: obs.EvTierDone, Tier: s.svc.Tiers[i].Name,
				Cost: float64(cand.Cost), Down: cand.DowntimeMinutes,
				MS: float64(time.Since(start)) / float64(time.Millisecond)})
		}
		return nil
	})
	endPhase()
	if err != nil {
		return nil, wrapCanceled(err, &stats)
	}
	for i := range perTier {
		if perTier[i] == nil {
			return nil, &InfeasibleError{Reason: fmt.Sprintf(
				"tier %q cannot meet %v annual downtime at load %v in isolation",
				s.svc.Tiers[i].Name, req.MaxAnnualDowntime, req.Throughput)}
		}
	}
	if combinedDowntime(perTier) <= budget || len(perTier) == 1 {
		return s.finishEnterprise(ctx, perTier, &stats)
	}

	// Phase 2: the combination misses the budget; refine tiers with
	// incrementally more aggressive requirements. The frontiers carry
	// each tier's cost/downtime tradeoff; the combiner picks the
	// minimum-cost point set whose series composition meets the budget.
	endPhase = s.emitPhase("frontier")
	frontiers := make([][]TierCandidate, len(s.svc.Tiers))
	err = par.ForEachCtx(ctx, s.opts.Workers, len(s.svc.Tiers), func(i int) error {
		f, err := s.tierFrontier(ctx, &s.svc.Tiers[i], req.Throughput, &stats)
		if err != nil {
			return err
		}
		frontiers[i] = f
		return nil
	})
	endPhase()
	if err != nil {
		return nil, wrapCanceled(err, &stats)
	}
	for i := range frontiers {
		if len(frontiers[i]) == 0 {
			return nil, &InfeasibleError{Reason: fmt.Sprintf("tier %q has no feasible designs", s.svc.Tiers[i].Name)}
		}
	}
	endPhase = s.emitPhase("combine")
	var (
		chosen []*TierCandidate
		ok     bool
	)
	switch s.opts.Combiner {
	case CombineMethodGreedy:
		chosen, ok = CombineGreedy(frontiers, budget)
	default:
		chosen, ok = CombineExact(frontiers, budget)
	}
	endPhase()
	if !ok {
		return nil, &InfeasibleError{Reason: fmt.Sprintf(
			"no tier combination meets %v annual downtime at load %v", req.MaxAnnualDowntime, req.Throughput)}
	}
	return s.finishEnterprise(ctx, chosen, &stats)
}

// finishEnterprise assembles the Solution from chosen tier candidates.
func (s *Solver) finishEnterprise(ctx context.Context, chosen []*TierCandidate, stats *searchStats) (*Solution, error) {
	design := model.Design{Tiers: make([]model.TierDesign, len(chosen))}
	var total units.Money
	for i, c := range chosen {
		design.Tiers[i] = c.Design
		total += c.Cost
	}
	if err := design.Validate(); err != nil {
		return nil, err
	}
	// Re-evaluate the whole design through the engine for the reported
	// figure (identical to the series combination of tier downtimes).
	tms, err := avail.BuildModels(&design)
	if err != nil {
		return nil, err
	}
	res, err := s.engineEvaluate(ctx, tms)
	if err != nil {
		return nil, wrapCanceled(err, stats)
	}
	stats.evals.Add(1)
	if tr := s.opts.Tracer; tr != nil {
		// The final whole-design evaluation is an engine invocation too;
		// reporting it as a miss keeps eval.miss counts equal to
		// Stats.Evaluations.
		tr.Emit(obs.Event{Ev: obs.EvEvalMiss, Tier: "design", Down: res.DowntimeMinutes})
	}
	return &Solution{
		Design:          design,
		Cost:            total,
		DowntimeMinutes: res.DowntimeMinutes,
		Stats:           stats.snapshot(),
	}, nil
}

// combinedDowntime reports the series composition of tier downtimes:
// availability multiplies across tiers.
func combinedDowntime(tiers []*TierCandidate) float64 {
	availability := 1.0
	for _, t := range tiers {
		availability *= 1 - t.DowntimeMinutes/avail.MinutesPerYear
	}
	return (1 - availability) * avail.MinutesPerYear
}

// CombineExact picks one candidate per frontier minimising total cost
// subject to the combined downtime budget. Frontiers are sorted by
// ascending cost with descending downtime, enabling branch-and-bound:
// the last point of each frontier is its tier's best achievable
// downtime, giving an admissible feasibility bound. It is the default
// multi-tier combiner; CombineGreedy is the paper-style alternative
// kept for the ablation benchmarks.
func CombineExact(frontiers [][]TierCandidate, budgetMinutes float64) ([]*TierCandidate, bool) {
	n := len(frontiers)
	// bestTail[i] = product over tiers i.. of best achievable tier
	// availability; used to prune partial assignments that cannot
	// possibly meet the budget.
	bestTail := make([]float64, n+1)
	bestTail[n] = 1
	for i := n - 1; i >= 0; i-- {
		last := frontiers[i][len(frontiers[i])-1]
		bestTail[i] = bestTail[i+1] * (1 - last.DowntimeMinutes/avail.MinutesPerYear)
	}
	budgetAvail := 1 - budgetMinutes/avail.MinutesPerYear

	var (
		bestCost   = math.Inf(1)
		bestChoice []*TierCandidate
		current    = make([]*TierCandidate, n)
	)
	var dfs func(i int, costSoFar float64, availSoFar float64)
	dfs = func(i int, costSoFar, availSoFar float64) {
		if costSoFar >= bestCost {
			return
		}
		if availSoFar*bestTail[i] < budgetAvail {
			return // even the best remaining tiers cannot recover
		}
		if i == n {
			bestCost = costSoFar
			bestChoice = make([]*TierCandidate, n)
			copy(bestChoice, current)
			return
		}
		for j := range frontiers[i] {
			c := &frontiers[i][j]
			current[i] = c
			dfs(i+1, costSoFar+float64(c.Cost), availSoFar*(1-c.DowntimeMinutes/avail.MinutesPerYear))
		}
	}
	dfs(0, 0, 1)
	if bestChoice == nil {
		return nil, false
	}
	return bestChoice, true
}

// CombineGreedy is the paper-style incremental refinement: start every
// tier at its cheapest frontier point and repeatedly tighten the tier
// offering the best downtime reduction per unit cost until the budget
// holds. It can be suboptimal; the exact combiner is the default. It
// is exported for the ablation benchmarks.
func CombineGreedy(frontiers [][]TierCandidate, budgetMinutes float64) ([]*TierCandidate, bool) {
	n := len(frontiers)
	idx := make([]int, n)
	pick := func() []*TierCandidate {
		out := make([]*TierCandidate, n)
		for i := range out {
			out[i] = &frontiers[i][idx[i]]
		}
		return out
	}
	for {
		chosen := pick()
		if combinedDowntime(chosen) <= budgetMinutes {
			return chosen, true
		}
		bestTier := -1
		bestRatio := math.Inf(1)
		for i := 0; i < n; i++ {
			if idx[i]+1 >= len(frontiers[i]) {
				continue
			}
			cur, next := frontiers[i][idx[i]], frontiers[i][idx[i]+1]
			dCost := float64(next.Cost - cur.Cost)
			dDown := cur.DowntimeMinutes - next.DowntimeMinutes
			if dDown <= 0 {
				continue
			}
			if ratio := dCost / dDown; ratio < bestRatio {
				bestRatio = ratio
				bestTier = i
			}
		}
		if bestTier < 0 {
			return nil, false // every tier exhausted
		}
		idx[bestTier]++
	}
}
