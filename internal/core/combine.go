package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// solveEnterprise implements §4.1 for enterprise services: per-tier
// optima first, then multi-tier refinement over per-tier cost/downtime
// frontiers when the combination misses the overall budget. Tiers are
// independent searches in both phases, so each phase fans them across
// the worker pool; per-tier results land by index, keeping the outcome
// identical to the sequential order.
func (s *Solver) solveEnterprise(ctx context.Context, req model.Requirements, cfg cellConfig) (*Solution, error) {
	budget := req.MaxAnnualDowntime.Minutes()
	load := loadOf(req)
	var stats searchStats
	stats.gen = s.gen.Add(1)
	tr := s.opts.Tracer

	// The combination bounds may engage under branch-and-bound with the
	// exact combiner; phase 1 then already collects (cost, downtime)
	// pools for the upper bound's mini-combination (see combineBounds).
	// Whether the bounds actually hold is known only after phase 1, from
	// its per-tier certificates.
	useBounds := s.opts.Search != SearchExhaustive &&
		s.opts.Combiner != CombineMethodGreedy && len(s.svc.Tiers) > 1
	if useBounds {
		stats.poolIdx = make(map[string]int, len(s.svc.Tiers))
		stats.pools = make([][]TierCandidate, len(s.svc.Tiers))
		for i := range s.svc.Tiers {
			stats.poolIdx[s.svc.Tiers[i].Name] = i
		}
	}

	// Phase 1: each tier in isolation against the full budget. The
	// per-tier optimum is a cost lower bound, so if the combination
	// meets the budget it is the overall optimum.
	endPhase := s.phaseSpan(&stats, phaseTierSearch)
	perTier := make([]*TierCandidate, len(s.svc.Tiers))
	certified := make([]bool, len(s.svc.Tiers))
	err := par.ForEachTimedCtx(ctx, s.opts.Workers, len(s.svc.Tiers), s.parT, func(i int) error {
		start := time.Time{}
		if tr != nil {
			start = time.Now()
		}
		cand, cert, err := s.searchTier(ctx, &s.svc.Tiers[i], load, budget, &stats)
		if err != nil {
			return err
		}
		perTier[i] = cand
		certified[i] = cert
		if tr != nil && cand != nil {
			tierNs := time.Since(start).Nanoseconds()
			tr.Emit(obs.Event{Ev: obs.EvTierDone, Tier: s.svc.Tiers[i].Name,
				Cost: float64(cand.Cost), Down: cand.DowntimeMinutes,
				DurNs: tierNs, MS: obs.DurMS(tierNs)})
		}
		return nil
	})
	endPhase()
	if err != nil {
		return nil, wrapCanceled(err, &stats)
	}
	for i := range perTier {
		if perTier[i] == nil {
			return nil, &InfeasibleError{Reason: fmt.Sprintf(
				"tier %q cannot meet %v annual downtime at load %v in isolation",
				s.svc.Tiers[i].Name, req.MaxAnnualDowntime, load.full)}
		}
	}
	if combinedDowntime(perTier) <= budget || len(perTier) == 1 {
		return s.finishEnterprise(ctx, perTier, &stats)
	}

	// Phase 2: the combination misses the budget; refine tiers with
	// incrementally more aggressive requirements. The frontiers carry
	// each tier's cost/downtime tradeoff; the combiner picks the
	// minimum-cost point set whose series composition meets the budget.
	//
	// Under SearchBnB with the exact combiner, an admissible cost bound
	// truncates the frontier build first: combineBounds finds a feasible
	// combination whose total cost UB bounds the optimum from above; and
	// any tier's point in a budget-feasible combination must itself meet
	// the full budget in isolation, so it costs at least the tier's
	// phase-1 optimum. A tier may therefore only contribute points
	// costing at most UB - sum(other tiers' phase-1 costs), and its
	// frontier build can skip every size subtree above that threshold.
	//
	// The truncation is validated after combining: the truncated
	// frontiers are exactly the ≤-threshold prefixes of the full ones,
	// so if the combined cost lands within UB, every optimal
	// combination of the full frontiers survived truncation and the
	// branch-and-bound result is bit-identical to the exhaustive one.
	// If it lands above UB, the frontiers are rebuilt unbounded — the
	// evaluation cache makes the rebuild re-evaluate only the skipped
	// candidates — and combined again.
	//
	// The thresholds are only admissible when every phase-1 optimum is a
	// certified lower bound over its tier's whole candidate space (see
	// searchTier); an uncertified tier disables the bounds for the solve.
	if useBounds {
		for _, cert := range certified {
			if !cert {
				useBounds = false
				break
			}
		}
	}
	var thresholds []float64
	ub := math.Inf(1)
	if useBounds {
		var err error
		ub, thresholds, err = s.combineBounds(ctx, req, cfg, perTier, &stats)
		if err != nil {
			return nil, wrapCanceled(err, &stats)
		}
	} else {
		stats.pools = nil
	}
	buildFrontiers := func(thresholds []float64) ([][]TierCandidate, error) {
		endPhase := s.phaseSpan(&stats, phaseFrontier)
		defer endPhase()
		frontiers := make([][]TierCandidate, len(s.svc.Tiers))
		err := par.ForEachTimedCtx(ctx, s.opts.Workers, len(s.svc.Tiers), s.parT, func(i int) error {
			maxCost := math.Inf(1)
			if thresholds != nil {
				maxCost = thresholds[i]
			}
			var f []TierCandidate
			var err error
			if cfg.frontiers != nil {
				f, err = s.cachedTierFrontier(ctx, cfg.frontiers, &s.svc.Tiers[i], load, maxCost, &stats)
			} else {
				f, err = s.tierFrontier(ctx, &s.svc.Tiers[i], load, maxCost, &stats)
			}
			if err != nil {
				return err
			}
			frontiers[i] = f
			return nil
		})
		if err != nil {
			return nil, err
		}
		return frontiers, nil
	}
	combine := func(frontiers [][]TierCandidate) ([]*TierCandidate, bool) {
		for i := range frontiers {
			if len(frontiers[i]) == 0 {
				return nil, false
			}
		}
		endPhase := s.phaseSpan(&stats, phaseCombine)
		defer endPhase()
		if s.opts.Combiner == CombineMethodGreedy {
			return CombineGreedy(frontiers, budget)
		}
		return CombineExact(frontiers, budget)
	}
	frontiers, err := buildFrontiers(thresholds)
	if err != nil {
		return nil, wrapCanceled(err, &stats)
	}
	chosen, ok := combine(frontiers)
	if thresholds != nil && (!ok || combinedCost(chosen) > ub+math.Abs(ub)*1e-9) {
		// Validity check failed: the truncated search cannot prove the
		// result optimal, so fall back to the full build.
		frontiers, err = buildFrontiers(nil)
		if err != nil {
			return nil, wrapCanceled(err, &stats)
		}
		chosen, ok = combine(frontiers)
	}
	if !ok {
		for i := range frontiers {
			if len(frontiers[i]) == 0 {
				return nil, &InfeasibleError{Reason: fmt.Sprintf("tier %q has no feasible designs", s.svc.Tiers[i].Name)}
			}
		}
		return nil, &InfeasibleError{Reason: fmt.Sprintf(
			"no tier combination meets %v annual downtime at load %v", req.MaxAnnualDowntime, req.PeakLoad())}
	}
	return s.finishEnterprise(ctx, chosen, &stats)
}

// combineBounds computes the combination phase's admissible cost
// bounds: an upper bound UB on the optimal combined cost, and per-tier
// cost thresholds UB - sum(other tiers' phase-1 costs) that truncate
// each frontier build.
//
// UB construction is adaptive. A waterfilling pass splits the downtime
// budget across tiers proportionally to their current downtimes and
// re-solves each tier at its share — tier downtimes compose
// sub-additively in series, so shares summing within the budget give a
// feasible stack; tiers that cannot meet their share are pinned at
// their best known design and the remaining budget is re-split among
// the rest. A final mini-combination over every (cost, downtime) pair
// evaluated so far — collected during phase 1 and the waterfilling
// solves at no extra engine work — then mixes designs across the
// different share splits, usually tightening UB further. It reports
// +Inf and nil thresholds when no feasible combination surfaces — then
// the frontiers build unbounded, exactly as under SearchExhaustive.
func (s *Solver) combineBounds(ctx context.Context, req model.Requirements, cfg cellConfig, perTier []*TierCandidate, stats *searchStats) (float64, []float64, error) {
	n := len(s.svc.Tiers)
	budget := req.MaxAnnualDowntime.Minutes()
	endPhase := s.phaseSpan(stats, phaseBound)
	// A seeded solve derives the UB from a previous optimal combination
	// instead of waterfilling: re-pricing it under the current models
	// replays every untouched tier from the warm cache, so a what-if
	// re-solve (or the next cell of a budget chain) pays about one
	// engine evaluation for a near-optimal bound where the probe pass
	// would re-search tiers at several tightened budgets. The seed is
	// the caller's (SolveCell) or the solver's last solution
	// (SolveContext); see cellConfig.
	if c, ok, err := s.seedUB(ctx, req, cfg, stats); err != nil {
		endPhase()
		return math.Inf(1), nil, err
	} else if ok {
		endPhase()
		return s.finishBounds(c, budget, perTier, stats)
	}
	cur := make([]*TierCandidate, n)
	copy(cur, perTier)
	pinned := make([]bool, n)
	next := make([]*TierCandidate, n)
	for round := 0; round < n; round++ {
		rem, sumUn := budget, 0.0
		for i := range cur {
			if pinned[i] {
				rem -= cur[i].DowntimeMinutes
			} else {
				sumUn += cur[i].DowntimeMinutes
			}
		}
		if combinedDowntime(cur) <= budget || sumUn <= rem || rem <= 0 || sumUn == 0 {
			break
		}
		scale := rem / sumUn
		for i := range next {
			next[i] = nil
		}
		err := par.ForEachTimedCtx(ctx, s.opts.Workers, n, s.parT, func(i int) error {
			if pinned[i] {
				return nil
			}
			cand, _, err := s.searchTier(ctx, &s.svc.Tiers[i], loadOf(req), cur[i].DowntimeMinutes*scale, stats)
			if err != nil {
				return err
			}
			next[i] = cand
			return nil
		})
		if err != nil {
			endPhase()
			return math.Inf(1), nil, err
		}
		progress := false
		for i := range next {
			if pinned[i] {
				continue
			}
			if next[i] == nil {
				pinned[i] = true
			} else {
				cur[i] = next[i]
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	endPhase()
	ub := math.Inf(1)
	if combinedDowntime(cur) <= budget {
		ub = combinedCost(cur)
	}
	return s.finishBounds(ub, budget, perTier, stats)
}

// finishBounds turns a candidate upper bound into the per-tier frontier
// thresholds: a mini-combination over the evaluated pools first tries
// to tighten it — the optimal mix of everything the searches have
// already priced, at no extra engine work — then each tier's threshold
// is what the UB leaves after paying every other tier's certified
// phase-1 minimum.
func (s *Solver) finishBounds(ub, budget float64, perTier []*TierCandidate, stats *searchStats) (float64, []float64, error) {
	n := len(perTier)
	// Pool collection stops here — frontier evaluations can no longer
	// influence the bound.
	if pools := stats.pools; pools != nil {
		stats.pools = nil
		reduced := make([][]TierCandidate, n)
		complete := true
		for i := range pools {
			reduced[i] = paretoReduce(pools[i])
			if len(reduced[i]) == 0 {
				complete = false
			}
		}
		if complete {
			if combo, ok := CombineExact(reduced, budget); ok {
				if c := combinedCost(combo); c < ub {
					ub = c
				}
			}
		}
	}
	if math.IsInf(ub, 1) {
		return ub, nil, nil
	}
	phase1Sum := 0.0
	for i := range perTier {
		phase1Sum += float64(perTier[i].Cost)
	}
	// Relative slack absorbs the rounding of the float sums above: when
	// the optimal combination's cost IS the UB, the exact threshold
	// UB - sum(others' phase-1 costs) can land a few ulps below the
	// optimal point's own cost and prune the very point the bound was
	// built from, forcing a pointless full rebuild. Widening the
	// thresholds only prunes less, which is always admissible.
	slack := math.Abs(ub) * 1e-9
	thresholds := make([]float64, n)
	for i := range thresholds {
		thresholds[i] = ub + slack - (phase1Sum - float64(perTier[i].Cost))
	}
	return ub, thresholds, nil
}

// combinedCost sums the chosen tier candidates' costs.
func combinedCost(chosen []*TierCandidate) float64 {
	var total float64
	for _, c := range chosen {
		total += float64(c.Cost)
	}
	return total
}

// finishEnterprise assembles the Solution from chosen tier candidates.
func (s *Solver) finishEnterprise(ctx context.Context, chosen []*TierCandidate, stats *searchStats) (*Solution, error) {
	design := model.Design{Tiers: make([]model.TierDesign, len(chosen))}
	var total units.Money
	for i, c := range chosen {
		design.Tiers[i] = c.Design
		total += c.Cost
	}
	if err := design.Validate(); err != nil {
		return nil, err
	}
	// Re-evaluate the whole design through the engine for the reported
	// figure (identical to the series combination of tier downtimes).
	tms, err := avail.BuildModels(&design)
	if err != nil {
		return nil, err
	}
	var sp obs.Span
	if s.timed {
		sp = obs.StartSpan(s.phaseHists[phaseEval])
	}
	res, err := s.engineEvaluate(ctx, tms)
	if err != nil {
		return nil, wrapCanceled(err, stats)
	}
	stats.evals.Add(1)
	var evalNs int64
	if s.timed {
		evalNs = sp.Stop()
		stats.phaseNs[phaseEval].Add(evalNs)
	}
	if tr := s.opts.Tracer; tr != nil {
		// The final whole-design evaluation is an engine invocation too;
		// reporting it as a miss keeps eval.miss counts equal to
		// Stats.Evaluations and its DurNs inside the "eval" phase total.
		tr.Emit(obs.Event{Ev: obs.EvEvalMiss, Tier: "design", Down: res.DowntimeMinutes,
			DurNs: evalNs, MS: obs.DurMS(evalNs)})
	}
	s.rememberCombo(chosen)
	return &Solution{
		Design:          design,
		Cost:            total,
		DowntimeMinutes: res.DowntimeMinutes,
		Stats:           stats.snapshot(),
	}, nil
}

// combinedDowntime reports the series composition of tier downtimes:
// availability multiplies across tiers.
func combinedDowntime(tiers []*TierCandidate) float64 {
	availability := 1.0
	for _, t := range tiers {
		availability *= 1 - t.DowntimeMinutes/avail.MinutesPerYear
	}
	return (1 - availability) * avail.MinutesPerYear
}

// CombineExact picks one candidate per frontier minimising total cost
// subject to the combined downtime budget. Frontiers are sorted by
// ascending cost with descending downtime, enabling branch-and-bound:
// the last point of each frontier is its tier's best achievable
// downtime, giving an admissible feasibility bound. It is the default
// multi-tier combiner; CombineGreedy is the paper-style alternative
// kept for the ablation benchmarks.
func CombineExact(frontiers [][]TierCandidate, budgetMinutes float64) ([]*TierCandidate, bool) {
	n := len(frontiers)
	// bestTail[i] = product over tiers i.. of best achievable tier
	// availability; used to prune partial assignments that cannot
	// possibly meet the budget.
	bestTail := make([]float64, n+1)
	bestTail[n] = 1
	for i := n - 1; i >= 0; i-- {
		last := frontiers[i][len(frontiers[i])-1]
		bestTail[i] = bestTail[i+1] * (1 - last.DowntimeMinutes/avail.MinutesPerYear)
	}
	budgetAvail := 1 - budgetMinutes/avail.MinutesPerYear

	var (
		bestCost   = math.Inf(1)
		bestChoice []*TierCandidate
		current    = make([]*TierCandidate, n)
	)
	var dfs func(i int, costSoFar float64, availSoFar float64)
	dfs = func(i int, costSoFar, availSoFar float64) {
		if costSoFar >= bestCost {
			return
		}
		if availSoFar*bestTail[i] < budgetAvail {
			return // even the best remaining tiers cannot recover
		}
		if i == n {
			bestCost = costSoFar
			bestChoice = make([]*TierCandidate, n)
			copy(bestChoice, current)
			return
		}
		for j := range frontiers[i] {
			c := &frontiers[i][j]
			current[i] = c
			dfs(i+1, costSoFar+float64(c.Cost), availSoFar*(1-c.DowntimeMinutes/avail.MinutesPerYear))
		}
	}
	dfs(0, 0, 1)
	if bestChoice == nil {
		return nil, false
	}
	return bestChoice, true
}

// CombineGreedy is the paper-style incremental refinement: start every
// tier at its cheapest frontier point and repeatedly tighten the tier
// offering the best downtime reduction per unit cost until the budget
// holds. It can be suboptimal; the exact combiner is the default. It
// is exported for the ablation benchmarks.
func CombineGreedy(frontiers [][]TierCandidate, budgetMinutes float64) ([]*TierCandidate, bool) {
	n := len(frontiers)
	idx := make([]int, n)
	pick := func() []*TierCandidate {
		out := make([]*TierCandidate, n)
		for i := range out {
			out[i] = &frontiers[i][idx[i]]
		}
		return out
	}
	for {
		chosen := pick()
		if combinedDowntime(chosen) <= budgetMinutes {
			return chosen, true
		}
		bestTier := -1
		bestRatio := math.Inf(1)
		for i := 0; i < n; i++ {
			if idx[i]+1 >= len(frontiers[i]) {
				continue
			}
			cur, next := frontiers[i][idx[i]], frontiers[i][idx[i]+1]
			dCost := float64(next.Cost - cur.Cost)
			dDown := cur.DowntimeMinutes - next.DowntimeMinutes
			if dDown <= 0 {
				continue
			}
			if ratio := dCost / dDown; ratio < bestRatio {
				bestRatio = ratio
				bestTier = i
			}
		}
		if bestTier < 0 {
			return nil, false // every tier exhausted
		}
		idx[bestTier]++
	}
}
