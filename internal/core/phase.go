package core

import "aved/internal/obs"

// phaseID indexes the solver's phase taxonomy. The bracketed phases
// ("tier-search" through "job-search") wrap whole solver stages and
// emit phase.start/phase.end trace pairs; phaseEval is cross-cutting —
// the wall clock spent inside the availability engine, accumulated per
// evaluation from wherever evaluations happen (tier searches, frontier
// builds, the final whole-design check) and carried on eval.miss
// events instead of phase brackets.
type phaseID int

const (
	phaseTierSearch phaseID = iota
	phaseBound
	phaseFrontier
	phaseCombine
	phaseJobSearch
	phaseEval
	numPhases
)

// phaseNames spells each phase the way traces, Stats.PhaseNanos keys
// and the solve.phase.* histogram names do.
var phaseNames = [numPhases]string{
	"tier-search", "bound", "frontier", "combine", "job-search", "eval",
}

// PhaseNames lists the solver's phase taxonomy in canonical order —
// the keys Stats.PhaseNanos can carry and the suffixes of the
// solve.phase.* histograms. CLIs render their timing tables in this
// order so breakdowns read the same everywhere.
func PhaseNames() []string {
	out := make([]string, numPhases)
	copy(out[:], phaseNames[:])
	return out
}

// nopEnd is the shared disabled-path closer; returning the same func
// value keeps phaseSpan allocation-free when timing is off.
var nopEnd = func() {}

// phaseSpan opens one bracketed phase: it emits phase.start when
// tracing, starts a span against the phase's histogram when metrics
// are on, and returns the closer that accumulates the elapsed
// nanoseconds into stats.phaseNs and emits the matching phase.end
// carrying DurNs. With timing off (no Timings, no Tracer, no Metrics)
// both halves are no-ops and nothing allocates.
//
// A phase may run more than once per solve (the frontier phase rebuilds
// after a failed truncation check): each run emits its own bracket and
// histogram observation, and the nanosecond total keeps the invariant
// sum(phase.end DurNs per phase) == Stats.PhaseNanos[phase].
func (s *Solver) phaseSpan(stats *searchStats, id phaseID) func() {
	if !s.timed {
		return nopEnd
	}
	tr := s.opts.Tracer
	if tr != nil {
		tr.Emit(obs.Event{Ev: obs.EvPhaseStart, Phase: phaseNames[id]})
	}
	sp := obs.StartSpan(s.phaseHists[id])
	return func() {
		ns := sp.Stop()
		stats.phaseNs[id].Add(ns)
		if tr != nil {
			tr.Emit(obs.Event{
				Ev:    obs.EvPhaseEnd,
				Phase: phaseNames[id],
				DurNs: ns,
				MS:    obs.DurMS(ns),
			})
		}
	}
}
