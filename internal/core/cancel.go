package core

import (
	"context"
	"errors"

	"aved/internal/avail"
)

// CanceledError reports a solve aborted by context cancellation or
// deadline expiry, carrying the search-effort statistics accumulated up
// to the abort so callers (the server, the CLIs) can report partial
// progress. It unwraps to the underlying context error, so
// errors.Is(err, context.DeadlineExceeded) and errors.Is(err,
// context.Canceled) work through it.
type CanceledError struct {
	// Stats is the search effort spent before the abort.
	Stats Stats
	// Err is the context error that stopped the search.
	Err error
}

func (e *CanceledError) Error() string {
	return "core: solve aborted: " + e.Err.Error()
}

func (e *CanceledError) Unwrap() error { return e.Err }

// isCtxErr reports whether err stems from context cancellation or
// deadline expiry — the errors that mark a result as "gave up", not
// "model is wrong", and so must never settle a cache entry.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// wrapCanceled converts a context error bubbling out of a search into a
// CanceledError carrying the partial stats; other errors (and nil) pass
// through unchanged.
func wrapCanceled(err error, stats *searchStats) error {
	if err == nil || !isCtxErr(err) {
		return err
	}
	return &CanceledError{Stats: stats.snapshot(), Err: err}
}

// ctxEvaluator is implemented by availability engines that accept a
// context for their evaluation (sim.Engine, whose Monte-Carlo batches
// check it between batches). Structural, like precisionTunable, so core
// carries no dependency on the engine packages. Engines without it (the
// analytic engines) evaluate fast enough that the per-candidate checks
// in the search loops bound the cancellation latency on their own.
type ctxEvaluator interface {
	EvaluateCtx(ctx context.Context, tms []avail.TierModel) (avail.Result, error)
}

// engineEvaluate routes a whole-model evaluation through the engine's
// context-aware entry point when it has one. The assertion is resolved
// once at solver construction (Solver.ctxEng), so the per-evaluation
// cost is one nil check.
func (s *Solver) engineEvaluate(ctx context.Context, tms []avail.TierModel) (avail.Result, error) {
	if s.ctxEng != nil {
		return s.ctxEng.EvaluateCtx(ctx, tms)
	}
	return s.opts.Engine.Evaluate(tms)
}
