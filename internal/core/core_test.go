package core

import (
	"context"
	"errors"
	"testing"

	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

func appTierSolver(t *testing.T, opts Options) *Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Registry == nil {
		opts.Registry = scenarios.Registry()
	}
	s, err := NewSolver(inf, svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func scientificSolver(t *testing.T, opts Options) *Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Registry == nil {
		opts.Registry = scenarios.Registry()
	}
	// §5.2 fixes the maintenance contract to bronze.
	if opts.FixedMechanisms == nil {
		opts.FixedMechanisms = map[string]map[string]model.ParamValue{
			"maintenanceA": {"level": model.EnumValue("bronze")},
			"maintenanceB": {"level": model.EnumValue("bronze")},
		}
	}
	s, err := NewSolver(inf, svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func enterpriseReq(load, downtimeMinutes float64) model.Requirements {
	return model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        load,
		MaxAnnualDowntime: units.Duration(downtimeMinutes * float64(units.Minute)),
	}
}

func contractLevel(t *testing.T, td *model.TierDesign) string {
	t.Helper()
	for _, ms := range td.Mechanisms {
		if ms.Mechanism.Name == "maintenanceA" || ms.Mechanism.Name == "maintenanceB" {
			return ms.Values["level"].Str
		}
	}
	t.Fatal("no maintenance contract in design")
	return ""
}

// TestPaperPointLoad1000Downtime100 reproduces the worked example in
// §5.1: at (load = 1000, downtime = 100 min) the optimal design is
// family 9 — machineA/linux/appserverA, bronze, one extra active, no
// spares — with estimated downtime around 50 minutes.
func TestPaperPointLoad1000Downtime100(t *testing.T) {
	s := appTierSolver(t, Options{})
	sol, err := s.Solve(enterpriseReq(1000, 100))
	if err != nil {
		t.Fatal(err)
	}
	td := &sol.Design.Tiers[0]
	if got := td.Resource().Name; got != "rC" {
		t.Errorf("resource = %s, want rC (machineA/linux/appserverA)", got)
	}
	if got := contractLevel(t, td); got != "bronze" {
		t.Errorf("contract = %s, want bronze", got)
	}
	if td.NMinPerf != 5 {
		t.Errorf("nMinPerf = %d, want 5 (200 units/machine)", td.NMinPerf)
	}
	if td.NExtra() != 1 || td.NSpare != 0 {
		t.Errorf("(n_extra, n_spare) = (%d, %d), want (1, 0)", td.NExtra(), td.NSpare)
	}
	if sol.DowntimeMinutes < 25 || sol.DowntimeMinutes > 75 {
		t.Errorf("downtime = %.1f min, paper reports ≈50", sol.DowntimeMinutes)
	}
}

// TestMachineBNeverSelected reproduces the §5.1 observation: with
// linear application scaling, machineB's worse cost/performance keeps
// it out of every optimal design.
func TestMachineBNeverSelected(t *testing.T) {
	s := appTierSolver(t, Options{})
	for _, load := range []float64{400, 1200, 3200} {
		for _, down := range []float64{30, 300, 3000} {
			sol, err := s.Solve(enterpriseReq(load, down))
			if err != nil {
				var inf *InfeasibleError
				if errors.As(err, &inf) {
					continue // very tight corners may be infeasible
				}
				t.Fatal(err)
			}
			res := sol.Design.Tiers[0].Resource().Name
			if res == "rE" || res == "rF" {
				t.Errorf("load=%v down=%v: machineB selected (%s)", load, down, res)
			}
		}
	}
}

// TestFamily3To6Crossover reproduces the §5.1 crossover: with a relaxed
// downtime budget, low loads prefer a better maintenance contract
// (family 3: gold, no spares) while high loads prefer an extra machine
// (family 6: bronze, one inactive spare), because contract cost scales
// with machine count.
func TestFamily3To6Crossover(t *testing.T) {
	s := appTierSolver(t, Options{})
	low, err := s.Solve(enterpriseReq(800, 2000))
	if err != nil {
		t.Fatal(err)
	}
	lowTD := &low.Design.Tiers[0]
	if got := contractLevel(t, lowTD); got != "gold" {
		t.Errorf("load 800: contract = %s, want gold (family 3)", got)
	}
	if lowTD.NSpare != 0 {
		t.Errorf("load 800: spares = %d, want 0", lowTD.NSpare)
	}
	high, err := s.Solve(enterpriseReq(3200, 2000))
	if err != nil {
		t.Fatal(err)
	}
	highTD := &high.Design.Tiers[0]
	if got := contractLevel(t, highTD); got != "bronze" {
		t.Errorf("load 3200: contract = %s, want bronze (family 6)", got)
	}
	if highTD.NSpare != 1 {
		t.Errorf("load 3200: spares = %d, want 1", highTD.NSpare)
	}
}

// TestRequirementPlaneCoverage: across the Fig. 6 requirement plane
// every solution meets its budget, and within a fixed design family
// the downtime estimate grows with load (evaluated directly, since the
// optimal family changes with the requirement).
func TestRequirementPlaneCoverage(t *testing.T) {
	s := appTierSolver(t, Options{})
	for _, load := range []float64{400, 1000, 2400, 5000} {
		for _, down := range []float64{1, 10, 100, 1000, 10000} {
			sol, err := s.Solve(enterpriseReq(load, down))
			if err != nil {
				t.Fatalf("load=%v down=%v: %v", load, down, err)
			}
			if sol.DowntimeMinutes > down {
				t.Errorf("load=%v down=%v: solution downtime %.2f over budget", load, down, sol.DowntimeMinutes)
			}
			if sol.Cost <= 0 {
				t.Errorf("load=%v down=%v: non-positive cost %v", load, down, sol.Cost)
			}
		}
	}
	// Fixed family (rC, bronze, 0, 0): downtime grows with load.
	var stats searchStats
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 25} {
		td := model.TierDesign{
			TierName:  "application",
			Option:    &s.svc.Tiers[0].Options[0],
			NActive:   n,
			NSpare:    0,
			NMinPerf:  n,
			MinActive: n,
			SpareWarm: 0,
			Mechanisms: []model.MechSetting{{
				Mechanism: s.inf.Mechanisms["maintenanceA"],
				Values:    map[string]model.ParamValue{"level": model.EnumValue("bronze")},
			}},
		}
		entry, err := s.evalTier(context.Background(), &td, fingerprintOf(&td), &stats)
		if err != nil {
			t.Fatal(err)
		}
		if entry.downtimeMinutes <= prev {
			t.Errorf("family downtime at n=%d (%.1f) did not grow beyond %.1f", n, entry.downtimeMinutes, prev)
		}
		prev = entry.downtimeMinutes
	}
}

// TestTighterBudgetCostsMore: cost is monotone in the availability
// requirement.
func TestTighterBudgetCostsMore(t *testing.T) {
	s := appTierSolver(t, Options{})
	var prevCost units.Money
	for _, down := range []float64{5000, 500, 50, 5} {
		sol, err := s.Solve(enterpriseReq(1600, down))
		if err != nil {
			t.Fatalf("downtime %v: %v", down, err)
		}
		if prevCost != 0 && sol.Cost < prevCost {
			t.Errorf("budget %v min: cost %v below looser budget's %v", down, sol.Cost, prevCost)
		}
		if sol.DowntimeMinutes > down {
			t.Errorf("budget %v min: solution downtime %.2f exceeds budget", down, sol.DowntimeMinutes)
		}
		prevCost = sol.Cost
	}
}

// TestCostPruningEngages: after the first feasible design the search
// rejects dearer candidates without availability evaluations — via the
// §4.1 incumbent prune under SearchExhaustive, via the sorted
// branch-and-bound cut under the default SearchBnB.
func TestCostPruningEngages(t *testing.T) {
	s := appTierSolver(t, Options{Search: SearchExhaustive})
	sol, err := s.Solve(enterpriseReq(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.CostPruned == 0 {
		t.Error("expected cost-pruned candidates")
	}
	if sol.Stats.BoundPruned != 0 {
		t.Errorf("exhaustive search bound-pruned %d candidates, want 0", sol.Stats.BoundPruned)
	}
	if sol.Stats.CandidatesGenerated <= sol.Stats.CostPruned {
		t.Error("candidate accounting inconsistent")
	}
	if sol.Stats.Evaluations == 0 {
		t.Error("expected availability evaluations")
	}

	b := appTierSolver(t, Options{})
	bnb, err := b.Solve(enterpriseReq(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if bnb.Stats.BoundPruned == 0 {
		t.Error("expected bound-pruned candidates under branch-and-bound")
	}
	if bnb.Stats.CostPruned != 0 {
		t.Errorf("branch-and-bound cost-pruned %d candidates, want 0", bnb.Stats.CostPruned)
	}
	if bnb.Stats.Evaluations > sol.Stats.Evaluations {
		t.Errorf("branch-and-bound ran %d evaluations, exhaustive only %d",
			bnb.Stats.Evaluations, sol.Stats.Evaluations)
	}
	if bnb.Cost != sol.Cost || bnb.DowntimeMinutes != sol.DowntimeMinutes {
		t.Errorf("branch-and-bound result (%v, %.3f) differs from exhaustive (%v, %.3f)",
			bnb.Cost, bnb.DowntimeMinutes, sol.Cost, sol.DowntimeMinutes)
	}
}

// TestInfeasibleRequirement: impossible requirements yield
// InfeasibleError rather than a bogus design.
func TestInfeasibleRequirement(t *testing.T) {
	s := appTierSolver(t, Options{})
	var infErr *InfeasibleError
	// Unreachable throughput: even 1000 of the fastest machines fall
	// short.
	_, err := s.Solve(enterpriseReq(1e9, 1000))
	if !errors.As(err, &infErr) {
		t.Errorf("want InfeasibleError for impossible load, got %v", err)
	}
	// A job that cannot finish in time on a capped cluster.
	inf, err2 := scenarios.Infrastructure()
	if err2 != nil {
		t.Fatal(err2)
	}
	svc, err2 := model.ParseService(`
application=tiny jobsize=10000
tier=computation
  resource=rH sizing=static failurescope=tier
    nActive=[1-4,+1] performance(nActive)=perfH.dat
    mechanism=checkpoint mperformance(storage_location,
        checkpoint_interval, nActive)=mperfH.dat
`)
	if err2 != nil {
		t.Fatal(err2)
	}
	if err2 := svc.Resolve(inf); err2 != nil {
		t.Fatal(err2)
	}
	solver, err2 := NewSolver(inf, svc, Options{Registry: scenarios.Registry()})
	if err2 != nil {
		t.Fatal(err2)
	}
	_, err = solver.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: 1 * units.Hour})
	if !errors.As(err, &infErr) {
		t.Errorf("want InfeasibleError for impossible job time, got %v", err)
	}
}

// TestScientificResourceSwitch reproduces Fig. 7's headline shape:
// machineB (rI) for tight completion-time requirements, machineA (rH)
// when the requirement relaxes.
func TestScientificResourceSwitch(t *testing.T) {
	s := scientificSolver(t, Options{})
	tight, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: 3 * units.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got := tight.Design.Tiers[0].Resource().Name; got != "rI" {
		t.Errorf("3h requirement: resource = %s, want rI (machineB)", got)
	}
	relaxed, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: 200 * units.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got := relaxed.Design.Tiers[0].Resource().Name; got != "rH" {
		t.Errorf("200h requirement: resource = %s, want rH (machineA)", got)
	}
	if tight.Cost <= relaxed.Cost {
		t.Errorf("tight requirement (%v) should cost more than relaxed (%v)", tight.Cost, relaxed.Cost)
	}
	if tight.JobTime > 3*units.Hour || relaxed.JobTime > 200*units.Hour {
		t.Error("solutions must meet their requirements")
	}
}

// TestScientificCheckpointIntervalGrowsWhenRelaxed reproduces Fig. 7:
// the optimal checkpoint interval increases as the execution-time
// requirement relaxes (fewer resources, fewer failures).
func TestScientificCheckpointIntervalGrowsWhenRelaxed(t *testing.T) {
	s := scientificSolver(t, Options{})
	cpiAt := func(maxTime units.Duration) float64 {
		sol, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: maxTime})
		if err != nil {
			t.Fatalf("requirement %v: %v", maxTime, err)
		}
		ms, ok := sol.Design.Tiers[0].Mechanism("checkpoint")
		if !ok {
			t.Fatal("design has no checkpoint setting")
		}
		return ms.Values["checkpoint_interval"].Hours
	}
	tight := cpiAt(10 * units.Hour)
	relaxed := cpiAt(500 * units.Hour)
	if relaxed <= tight {
		t.Errorf("checkpoint interval should grow: tight %vh vs relaxed %vh", tight, relaxed)
	}
}

// TestScientificResourceCountShrinksWhenRelaxed reproduces Fig. 7: the
// resource count decreases as the requirement relaxes.
func TestScientificResourceCountShrinksWhenRelaxed(t *testing.T) {
	s := scientificSolver(t, Options{})
	nAt := func(maxTime units.Duration) int {
		sol, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: maxTime})
		if err != nil {
			t.Fatalf("requirement %v: %v", maxTime, err)
		}
		return sol.Design.Tiers[0].NActive
	}
	if n50, n500 := nAt(50*units.Hour), nAt(500*units.Hour); n500 >= n50 {
		t.Errorf("resource count should shrink: 50h→%d, 500h→%d", n50, n500)
	}
}

// TestScientificStorageLocation reproduces Fig. 7: central storage for
// small node counts, peer for large ones (central becomes a
// bottleneck).
func TestScientificStorageLocation(t *testing.T) {
	s := scientificSolver(t, Options{})
	locAt := func(maxTime units.Duration) (string, int) {
		sol, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: maxTime})
		if err != nil {
			t.Fatalf("requirement %v: %v", maxTime, err)
		}
		ms, _ := sol.Design.Tiers[0].Mechanism("checkpoint")
		return ms.Values["storage_location"].Str, sol.Design.Tiers[0].NActive
	}
	loc, n := locAt(500 * units.Hour)
	if n < 30 && loc != "central" {
		t.Errorf("n=%d should use central storage, got %s", n, loc)
	}
	loc, n = locAt(15 * units.Hour)
	if n > 70 && loc != "peer" {
		t.Errorf("n=%d should use peer storage, got %s", n, loc)
	}
}

// TestJobWithoutJobSizeFails: job requirements need a jobsize.
func TestJobWithoutJobSizeFails(t *testing.T) {
	s := appTierSolver(t, Options{})
	_, err := s.Solve(model.Requirements{Kind: model.ReqJob, MaxJobTime: 10 * units.Hour})
	if err == nil {
		t.Error("job requirement without jobsize should fail")
	}
}

func TestNewSolverValidation(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	reg := scenarios.Registry()
	if _, err := NewSolver(nil, svc, Options{Registry: reg}); err == nil {
		t.Error("nil infrastructure should fail")
	}
	if _, err := NewSolver(inf, nil, Options{Registry: reg}); err == nil {
		t.Error("nil service should fail")
	}
	if _, err := NewSolver(inf, svc, Options{}); err == nil {
		t.Error("missing registry should fail")
	}
	unresolved, err := model.ParseService(scenarios.ApplicationTierSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSolver(inf, unresolved, Options{Registry: reg}); err == nil {
		t.Error("unresolved service should fail")
	}
}

func TestMechCombosCounts(t *testing.T) {
	s := appTierSolver(t, Options{})
	rC := s.inf.Resources["rC"]
	cs, err := s.mechCombos(rC)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.combos) != 4 {
		t.Errorf("rC combos = %d, want 4 maintenance levels", len(cs.combos))
	}
	rH := s.inf.Resources["rH"]
	cs, err = s.mechCombos(rH)
	if err != nil {
		t.Fatal(err)
	}
	// 4 maintenance levels × 2 locations × |interval grid|.
	ck := s.inf.Mechanisms["checkpoint"]
	cpi, _ := ck.Param("checkpoint_interval")
	want := 4 * 2 * cpi.Grid.Len()
	if len(cs.combos) != want {
		t.Errorf("rH combos = %d, want %d", len(cs.combos), want)
	}
}

func TestMechCombosFixedPin(t *testing.T) {
	s := appTierSolver(t, Options{
		FixedMechanisms: map[string]map[string]model.ParamValue{
			"maintenanceA": {"level": model.EnumValue("gold")},
		},
	})
	cs, err := s.mechCombos(s.inf.Resources["rC"])
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.combos) != 1 {
		t.Fatalf("pinned combos = %d, want 1", len(cs.combos))
	}
	if cs.combos[0][0].Values["level"].Str != "gold" {
		t.Errorf("pinned level = %v", cs.combos[0][0].Values["level"])
	}
}

func TestCombineGreedyVsExact(t *testing.T) {
	// Construct two synthetic frontiers where greedy refinement is
	// suboptimal but exact combination succeeds.
	f1 := []TierCandidate{
		{Cost: 100, DowntimeMinutes: 100},
		{Cost: 150, DowntimeMinutes: 60},
		{Cost: 400, DowntimeMinutes: 5},
	}
	f2 := []TierCandidate{
		{Cost: 100, DowntimeMinutes: 100},
		{Cost: 340, DowntimeMinutes: 30},
	}
	budget := 70.0
	exact, ok := CombineExact([][]TierCandidate{f1, f2}, budget)
	if !ok {
		t.Fatal("exact combiner found nothing")
	}
	greedy, ok := CombineGreedy([][]TierCandidate{f1, f2}, budget)
	if !ok {
		t.Fatal("greedy combiner found nothing")
	}
	var exactCost, greedyCost units.Money
	for i := range exact {
		exactCost += exact[i].Cost
		greedyCost += greedy[i].Cost
	}
	if exactCost > greedyCost {
		t.Errorf("exact (%v) should never cost more than greedy (%v)", exactCost, greedyCost)
	}
	if combinedDowntime(exact) > budget || combinedDowntime(greedy) > budget {
		t.Error("both combiners must meet the budget")
	}
}

func TestCombineInfeasible(t *testing.T) {
	f := [][]TierCandidate{{{Cost: 1, DowntimeMinutes: 1000}}}
	if _, ok := CombineExact(f, 10); ok {
		t.Error("exact combiner should report infeasible")
	}
	if _, ok := CombineGreedy(f, 10); ok {
		t.Error("greedy combiner should report infeasible")
	}
}

// TestMultiTierEcommerce solves the full three-tier Fig. 4 service:
// the series composition must meet the overall budget.
func TestMultiTierEcommerce(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Ecommerce(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(enterpriseReq(2000, 800))
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Design.Tiers) != 3 {
		t.Fatalf("tiers = %d, want 3", len(sol.Design.Tiers))
	}
	if sol.DowntimeMinutes > 800 {
		t.Errorf("combined downtime %.1f exceeds 800", sol.DowntimeMinutes)
	}
	names := map[string]bool{}
	for i := range sol.Design.Tiers {
		names[sol.Design.Tiers[i].TierName] = true
	}
	for _, want := range []string{"web", "application", "database"} {
		if !names[want] {
			t.Errorf("missing tier %q in design", want)
		}
	}
}

// TestMaxInstancesEnforced: a component-level instance cap bounds the
// search (and can rule an option out entirely).
func TestMaxInstancesEnforced(t *testing.T) {
	inf, err := model.ParseInfrastructure(`
component=box cost=100 max_instances=4
  failure=hard mtbf=100d mttr=24h detect_time=1m
resource=r reconfig_time=0
  component=box depend=null startup=1m
`)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := model.ParseService(`
application=capped
tier=main
  resource=r sizing=dynamic failurescope=resource
    nActive=[1-100,+1] performance(nActive)=box.dat
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	reg := scenarios.Registry()
	reg.RegisterCurve("box.dat", boxCurve{})
	s, err := NewSolver(inf, svc, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Feasible within the cap: 2 needed for load, up to 2 more allowed.
	sol, err := s.Solve(model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        200,
		MaxAnnualDowntime: 10000 * units.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Design.Tiers[0].Total(); got > 4 {
		t.Errorf("total instances %d exceed cap 4", got)
	}
	// Load needing 5 actives is infeasible under the cap.
	_, err = s.Solve(model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        500,
		MaxAnnualDowntime: 10000 * units.Minute,
	})
	var infErr *InfeasibleError
	if !errors.As(err, &infErr) {
		t.Errorf("want InfeasibleError above the instance cap, got %v", err)
	}
}

type boxCurve struct{}

func (boxCurve) Throughput(n int) float64 { return 100 * float64(n) }

// TestCombinerOptionGreedyVsExact runs the three-tier service through
// both combiners: both must be feasible and greedy can never beat
// exact on cost.
func TestCombinerOptionGreedyVsExact(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	solve := func(method CombineMethod) *Solution {
		svc, err := scenarios.Ecommerce(inf)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(inf, svc, Options{Registry: scenarios.Registry(), Combiner: method})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.Solve(enterpriseReq(2000, 600))
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	exact := solve(CombineMethodExact)
	greedy := solve(CombineMethodGreedy)
	if exact.DowntimeMinutes > 600 || greedy.DowntimeMinutes > 600 {
		t.Error("both combiners must meet the budget")
	}
	if exact.Cost > greedy.Cost {
		t.Errorf("exact (%v) must not cost more than greedy (%v)", exact.Cost, greedy.Cost)
	}
}
