package core

import (
	"errors"
	"math/rand"
	"testing"

	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// These property tests pin the branch-and-bound contract against the
// exhaustive reference walk: identical solutions, identical candidate
// accounting, never more engine evaluations — over a seeded corpus of
// generated scenarios whose perturbed prices move the cost orderings
// the bounds prune by, plus the paper scenarios themselves.

// solveMode builds a fresh sequential solver for the scenario and runs
// one search under the given mode, reporting alongside the solution how
// many engine evaluations the adaptive bound phase (the waterfilling UB
// probes) executed.
func solveMode(t *testing.T, sc *scenarios.SolveScenario, mode SearchMode) (*Solution, int, error) {
	t.Helper()
	var tr obs.CollectTracer
	s, err := NewSolver(sc.Inf, sc.Svc, Options{
		Registry: scenarios.Registry(),
		Workers:  1,
		Search:   mode,
		Tracer:   &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(sc.Req)
	probes, phase := 0, ""
	for _, e := range tr.Events() {
		switch e.Ev {
		case obs.EvPhaseStart:
			phase = e.Phase
		case obs.EvEvalMiss:
			if phase == "bound" {
				probes++
			}
		}
	}
	return sol, probes, err
}

func TestBnBBitIdenticalOnCorpus(t *testing.T) {
	var feasible, infeasible, pruned int
	var totalBnB, totalEx int64
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc, err := scenarios.RandSolveScenario(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bnb, probes, bErr := solveMode(t, sc, SearchBnB)
		ex, _, eErr := solveMode(t, sc, SearchExhaustive)
		if (bErr == nil) != (eErr == nil) {
			t.Fatalf("seed %d: feasibility disagrees: bnb %v, exhaustive %v", seed, bErr, eErr)
		}
		if bErr != nil {
			var infB, infE *InfeasibleError
			if !errors.As(bErr, &infB) || !errors.As(eErr, &infE) {
				t.Fatalf("seed %d: non-infeasible error: bnb %v, exhaustive %v", seed, bErr, eErr)
			}
			infeasible++
			continue
		}
		feasible++
		if bnb.Cost != ex.Cost || bnb.DowntimeMinutes != ex.DowntimeMinutes ||
			bnb.Design.Label() != ex.Design.Label() {
			t.Errorf("seed %d: solutions differ:\n  bnb        %v %.6f %s\n  exhaustive %v %.6f %s",
				seed, bnb.Cost, bnb.DowntimeMinutes, bnb.Design.Label(),
				ex.Cost, ex.DowntimeMinutes, ex.Design.Label())
		}
		// The provable per-instance guarantee: outside the adaptive UB
		// probes, the bounded search only ever skips evaluations — the
		// sorted per-size walk evaluates a subset of the enumeration
		// walk's candidates and the truncated frontiers are prefixes of
		// the full ones. The probes themselves are an investment that can
		// overshoot the savings on a small instance by a few evaluations;
		// the aggregate assertion below pins that the investment pays off
		// decisively across the corpus.
		if bnb.Stats.Evaluations > ex.Stats.Evaluations+probes {
			t.Errorf("seed %d: bnb ran %d evaluations (incl. %d UB probes), exhaustive only %d",
				seed, bnb.Stats.Evaluations, probes, ex.Stats.Evaluations)
		}
		totalBnB += int64(bnb.Stats.Evaluations)
		totalEx += int64(ex.Stats.Evaluations)
		if bnb.Stats.BoundPruned > 0 {
			pruned++
		}
	}
	t.Logf("corpus: %d feasible, %d infeasible, %d with bound prunes; evaluations bnb=%d exhaustive=%d",
		feasible, infeasible, pruned, totalBnB, totalEx)
	if feasible == 0 {
		t.Error("corpus produced no feasible scenarios — generator is miscalibrated")
	}
	if pruned == 0 {
		t.Error("no scenario engaged the bounds — the property test is vacuous")
	}
	if totalBnB*2 > totalEx {
		t.Errorf("corpus aggregate: bnb %d evaluations is not even a 2x cut of exhaustive %d",
			totalBnB, totalEx)
	}
}

// TestBnBEvalCeilings pins engine-evaluation ceilings on the paper
// scenarios under the default search at Workers=1 — a regression gate
// for the admissible bounds (measured: apptier 12, e-commerce 88,
// scientific 144). The e-commerce case also pins the headline speedup:
// branch-and-bound needs at least 5x fewer evaluations than the
// exhaustive walk's 785.
func TestBnBEvalCeilings(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	enterprise := func(load, minutes float64) model.Requirements {
		return model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        load,
			MaxAnnualDowntime: units.Duration(minutes * float64(units.Minute)),
		}
	}
	cases := []struct {
		name    string
		svc     func(*model.Infrastructure) (*model.Service, error)
		req     model.Requirements
		opts    Options
		ceiling int
	}{
		{"apptier-1000-100m", scenarios.ApplicationTier, enterprise(1000, 100), Options{}, 20},
		{"ecommerce-1400-60m", scenarios.Ecommerce, enterprise(1400, 60), Options{}, 120},
		{"scientific-100h", scenarios.Scientific,
			model.Requirements{Kind: model.ReqJob, MaxJobTime: 100 * units.Hour},
			Options{FixedMechanisms: map[string]map[string]model.ParamValue{
				"maintenanceA": {"level": model.EnumValue("bronze")},
				"maintenanceB": {"level": model.EnumValue("bronze")},
			}},
			160},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc, err := tc.svc(inf)
			if err != nil {
				t.Fatal(err)
			}
			opts := tc.opts
			opts.Registry = scenarios.Registry()
			opts.Workers = 1
			s, err := NewSolver(inf, svc, opts)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := s.Solve(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Stats.Evaluations > tc.ceiling {
				t.Errorf("%s: %d engine evaluations exceed the pinned ceiling %d",
					tc.name, sol.Stats.Evaluations, tc.ceiling)
			}

			exOpts := opts
			exOpts.Search = SearchExhaustive
			se, err := NewSolver(inf, svc, exOpts)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := se.Solve(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Cost != ex.Cost || sol.Design.Label() != ex.Design.Label() {
				t.Errorf("%s: bnb and exhaustive disagree", tc.name)
			}
			if tc.name == "ecommerce-1400-60m" && sol.Stats.Evaluations*5 > ex.Stats.Evaluations {
				t.Errorf("%s: bnb %d evaluations is not a 5x cut of exhaustive %d",
					tc.name, sol.Stats.Evaluations, ex.Stats.Evaluations)
			}
		})
	}
}
