package sensitivity

import (
	"context"
	"testing"

	"aved/internal/obs"
	"aved/internal/sweep"
)

// TestSweepObs: a traced sensitivity sweep emits one sweep.point per
// factor carrying the perturbation factor, reports per-factor search
// stats on the points, and bumps the shared registry.
func TestSweepObs(t *testing.T) {
	inf, cfg := baseConfig(t)
	var tr obs.CollectTracer
	reg := obs.NewRegistry()
	cfg.SolverOptions.Tracer = &tr
	cfg.SolverOptions.Metrics = reg
	factors := []float64{0.5, 1, 2}
	points, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), factors)
	if err != nil {
		t.Fatal(err)
	}
	var cells []obs.Event
	for _, e := range tr.Events() {
		if e.Ev == obs.EvSweepPoint {
			cells = append(cells, e)
		}
	}
	if len(cells) != len(factors) {
		t.Fatalf("sweep.point events = %d, want %d", len(cells), len(factors))
	}
	got := map[float64]bool{}
	for _, e := range cells {
		got[e.Factor] = true
		if e.Total != len(factors) || e.Index < 1 || e.Index > len(factors) {
			t.Errorf("bad grid position in %+v", e)
		}
		if e.Err == "" && e.Cost <= 0 {
			t.Errorf("feasible factor with no cost: %+v", e)
		}
	}
	var tot sweep.Totals
	for _, f := range factors {
		if !got[f] {
			t.Errorf("no sweep.point for factor %v", f)
		}
	}
	for _, p := range points {
		if p.Infeasible {
			t.Fatalf("factor %v unexpectedly infeasible", p.Factor)
		}
		if p.Stats.CandidatesGenerated == 0 {
			t.Errorf("factor %v has empty stats", p.Factor)
		}
		tot.Add(p.Stats)
	}
	if tot.Points != len(factors) || tot.Candidates == 0 {
		t.Errorf("totals = %+v", tot)
	}
	snap := reg.Snapshot()
	if snap.Counters["sweep.points"] != int64(len(factors)) {
		t.Errorf("sweep.points counter = %d, want %d", snap.Counters["sweep.points"], len(factors))
	}
	// The per-factor solvers share the registry, so the core counters
	// accumulate across factors.
	if snap.Counters["core.solves"] != int64(len(factors)) {
		t.Errorf("core.solves = %d, want %d", snap.Counters["core.solves"], len(factors))
	}
}
