package sensitivity

import (
	"context"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

func baseConfig(t *testing.T) (*model.Infrastructure, Config) {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ServiceSpec: scenarios.ApplicationTierSpec,
		Registry:    scenarios.Registry(),
		Requirement: model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        1000,
			MaxAnnualDowntime: 100 * units.Minute,
		},
	}
	return inf, cfg
}

func TestScaleMTBFImprovesDowntime(t *testing.T) {
	inf, cfg := baseConfig(t)
	points, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), []float64{0.5, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// More reliable hardware never raises the optimal cost.
	for i := 1; i < len(points); i++ {
		if points[i].Infeasible {
			t.Fatalf("factor %v infeasible", points[i].Factor)
		}
		if points[i].Cost > points[i-1].Cost {
			t.Errorf("cost rose with reliability: %v → %v", points[i-1].Cost, points[i].Cost)
		}
	}
	// The factor-1 point must match an unperturbed solve.
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.NewSolver(inf, svc, core.Options{Registry: cfg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.Solve(cfg.Requirement)
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Cost != sol.Cost {
		t.Errorf("factor-1 cost %v differs from baseline %v", points[1].Cost, sol.Cost)
	}
}

func TestScaleMTBFDoesNotMutateBase(t *testing.T) {
	inf, cfg := baseConfig(t)
	before := inf.Components["machineA"].Failures[0].MTBF
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMTBF("machineA"), []float64{0.1, 10}); err != nil {
		t.Fatal(err)
	}
	if got := inf.Components["machineA"].Failures[0].MTBF; got != before {
		t.Errorf("base infrastructure mutated: %v → %v", before, got)
	}
}

func TestScaleCostShiftsDesignChoice(t *testing.T) {
	// Making appserverA arbitrarily expensive pushes the design to rD
	// (appserverB).
	inf, cfg := baseConfig(t)
	points, err := Sweep(context.Background(), inf, cfg, ScaleCost("appserverA"), []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Family.Resource != "rC" {
		t.Errorf("baseline resource = %s, want rC", points[0].Family.Resource)
	}
	if points[1].Family.Resource != "rD" {
		t.Errorf("with 10x appserverA price, resource = %s, want rD", points[1].Family.Resource)
	}
}

func TestScaleMechanismCostShiftsContract(t *testing.T) {
	// With a loose budget at low load the optimum uses the gold
	// contract (family 3); making maintenanceA contracts 20x dearer
	// pushes the design to bronze + spare machines instead.
	inf, cfg := baseConfig(t)
	cfg.Requirement = model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        800,
		MaxAnnualDowntime: 2000 * units.Minute,
	}
	points, err := Sweep(context.Background(), inf, cfg, ScaleMechanismCost("maintenanceA"), []float64{1, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := points[0].Family.Mechanisms; got != "maintenanceA=gold" {
		t.Errorf("baseline contract = %q, want gold", got)
	}
	if got := points[1].Family.Mechanisms; got != "maintenanceA=bronze" {
		t.Errorf("with 20x contract prices = %q, want bronze", got)
	}
	if points[1].Family.NSpare == 0 && points[1].Family.NExtra == 0 {
		t.Error("dear contracts should push toward machine redundancy")
	}
}

func TestSweepReportsInfeasible(t *testing.T) {
	inf, cfg := baseConfig(t)
	cfg.Requirement.MaxAnnualDowntime = 30 * units.Minute
	// Hardware 50x less reliable at a tight budget: the requirement
	// may become unachievable; the sweep must report it, not die.
	points, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), []float64{1, 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Infeasible {
		t.Error("baseline should be feasible")
	}
	if !points[1].Infeasible {
		t.Logf("note: even 500x worse hardware remained feasible (downtime %v)", points[1].DowntimeMinutes)
	}
}

func TestKnobErrors(t *testing.T) {
	inf, cfg := baseConfig(t)
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMTBF("ghost"), []float64{1}); err == nil {
		t.Error("unknown component should fail")
	}
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), []float64{-1}); err == nil {
		t.Error("negative factor should fail")
	}
	if _, err := Sweep(context.Background(), inf, cfg, ScaleCost(""), []float64{-1}); err == nil {
		t.Error("negative cost factor should fail")
	}
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMechanismCost("ghost"), []float64{1}); err == nil {
		t.Error("unknown mechanism should fail")
	}
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), nil); err == nil {
		t.Error("empty factors should fail")
	}
	cfg.Registry = nil
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), []float64{1}); err == nil {
		t.Error("missing registry should fail")
	}
}

func TestCloneIsDeepAndAliasPreserving(t *testing.T) {
	inf, _ := baseConfig(t)
	clone := inf.Clone()
	// Mutating the clone leaves the original untouched.
	clone.Components["machineA"].CostActive = 1
	clone.Components["machineA"].Failures[0].MTBF = units.Day
	clone.Mechanisms["maintenanceA"].Effects[0].Table[0] = "999"
	if inf.Components["machineA"].CostActive == 1 {
		t.Error("component mutation leaked to base")
	}
	if inf.Components["machineA"].Failures[0].MTBF == units.Day {
		t.Error("failure mutation leaked to base")
	}
	if inf.Mechanisms["maintenanceA"].Effects[0].Table[0] == "999" {
		t.Error("mechanism mutation leaked to base")
	}
	// Aliasing preserved: the clone's resources reference the clone's
	// components.
	rc, ok := clone.Resources["rC"].Component("machineA")
	if !ok {
		t.Fatal("rC lost machineA")
	}
	if rc.Component != clone.Components["machineA"] {
		t.Error("clone resource members do not alias clone components")
	}
	if rc.Component == inf.Components["machineA"] {
		t.Error("clone resource members alias base components")
	}
}
