package sensitivity

import (
	"context"
	"reflect"
	"testing"
)

// TestSweepWorkerCountBitIdentical asserts the what-if sweep returns
// identical points at any worker count: each factor owns a clone of the
// infrastructure and its own solver, so parallelism cannot leak
// perturbations between factors.
func TestSweepWorkerCountBitIdentical(t *testing.T) {
	inf, cfg := baseConfig(t)
	factors := []float64{0.25, 0.5, 1, 2, 4, 8}
	cfg.Workers = 1
	seq, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), factors)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(factors) {
		t.Fatalf("points = %d, want %d", len(seq), len(factors))
	}
	for _, workers := range []int{4, 0} {
		cfg.Workers = workers
		parl, err := Sweep(context.Background(), inf, cfg, ScaleMTBF(""), factors)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parl, seq) {
			t.Errorf("workers=%d: points differ from sequential\nseq: %+v\npar: %+v", workers, seq, parl)
		}
	}
}

// TestSweepParallelDoesNotMutateBase re-checks the clone discipline
// under concurrency: the base infrastructure must be untouched after a
// parallel sweep with aggressive factors.
func TestSweepParallelDoesNotMutateBase(t *testing.T) {
	inf, cfg := baseConfig(t)
	cfg.Workers = 8
	before := inf.Components["machineA"].Failures[0].MTBF
	if _, err := Sweep(context.Background(), inf, cfg, ScaleMTBF("machineA"), []float64{0.1, 0.5, 2, 10}); err != nil {
		t.Fatal(err)
	}
	if got := inf.Components["machineA"].Failures[0].MTBF; got != before {
		t.Errorf("base infrastructure mutated: %v → %v", before, got)
	}
}
