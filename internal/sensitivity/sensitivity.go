// Package sensitivity implements what-if analysis over infrastructure
// parameters: it perturbs a copy of the infrastructure model with a
// scalar factor (failure rates, repair times, component or contract
// prices), re-runs the design search at a fixed requirement, and
// reports how the optimal design and its cost move. This mechanises
// the paper's self-managing-utility argument (§1, §5.1): as conditions
// change, the optimal design changes, and an engine like Aved must
// re-evaluate it automatically.
package sensitivity

import (
	"context"
	"errors"
	"fmt"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/perf"
	"aved/internal/sweep"
	"aved/internal/units"
)

// Knob perturbs an infrastructure in place by a scalar factor. A
// factor of 1 must leave the model unchanged.
type Knob func(inf *model.Infrastructure, factor float64) error

// ScaleMTBF multiplies every failure mode's MTBF of the named
// component by the factor (factor > 1 means more reliable hardware).
// An empty component name scales every component.
func ScaleMTBF(component string) Knob {
	return func(inf *model.Infrastructure, factor float64) error {
		if factor <= 0 {
			return fmt.Errorf("sensitivity: MTBF factor must be positive, got %v", factor)
		}
		touched := false
		for name, c := range inf.Components {
			if component != "" && name != component {
				continue
			}
			touched = true
			for i := range c.Failures {
				c.Failures[i].MTBF = units.Duration(float64(c.Failures[i].MTBF) * factor)
			}
		}
		if !touched {
			return fmt.Errorf("sensitivity: unknown component %q", component)
		}
		return nil
	}
}

// ScaleCost multiplies the named component's costs (both operational
// modes) by the factor. An empty name scales every component.
func ScaleCost(component string) Knob {
	return func(inf *model.Infrastructure, factor float64) error {
		if factor < 0 {
			return fmt.Errorf("sensitivity: cost factor must be non-negative, got %v", factor)
		}
		touched := false
		for name, c := range inf.Components {
			if component != "" && name != component {
				continue
			}
			touched = true
			c.CostInactive = units.Money(float64(c.CostInactive) * factor)
			c.CostActive = units.Money(float64(c.CostActive) * factor)
		}
		if !touched {
			return fmt.Errorf("sensitivity: unknown component %q", component)
		}
		return nil
	}
}

// ScaleMechanismCost multiplies the named mechanism's cost table by the
// factor (e.g. maintenance contracts getting cheaper or dearer).
func ScaleMechanismCost(mechanism string) Knob {
	return func(inf *model.Infrastructure, factor float64) error {
		if factor < 0 {
			return fmt.Errorf("sensitivity: cost factor must be non-negative, got %v", factor)
		}
		mech, ok := inf.Mechanisms[mechanism]
		if !ok {
			return fmt.Errorf("sensitivity: unknown mechanism %q", mechanism)
		}
		for i := range mech.Effects {
			if mech.Effects[i].Attr != "cost" {
				continue
			}
			if err := scaleEffect(&mech.Effects[i], factor); err != nil {
				return fmt.Errorf("sensitivity: mechanism %q: %w", mechanism, err)
			}
		}
		return nil
	}
}

func scaleEffect(e *model.Effect, factor float64) error {
	scale := func(raw string) (string, error) {
		m, err := units.ParseMoney(raw)
		if err != nil {
			return "", err
		}
		return units.Money(float64(m) * factor).String(), nil
	}
	if e.ByParam == "" {
		s, err := scale(e.Scalar)
		if err != nil {
			return err
		}
		e.Scalar = s
		return nil
	}
	for i, raw := range e.Table {
		s, err := scale(raw)
		if err != nil {
			return err
		}
		e.Table[i] = s
	}
	return nil
}

// AvailScope reports the warm-start invalidation scope of a
// perturbation touching one component's availability inputs: the
// resource types embedding that component. An empty component name
// (perturb everything) scopes to the whole infrastructure. Price-only
// knobs need no scope at all — the evaluation cache stores downtime
// and MTBF, never cost — and should pass a zero Delta instead.
func AvailScope(inf *model.Infrastructure, component string) core.Delta {
	if component == "" {
		return core.Delta{All: true}
	}
	var rs []string
	for name, rt := range inf.Resources {
		for _, rc := range rt.Components {
			if rc.Component != nil && rc.Component.Name == component {
				rs = append(rs, name)
				break
			}
		}
	}
	return core.Delta{Resources: rs}
}

// Point is the search outcome at one perturbation factor.
type Point struct {
	Factor          float64
	Cost            units.Money
	DowntimeMinutes float64
	JobTimeHours    float64
	Family          sweep.Family
	Label           string
	Infeasible      bool
	// Stats records the factor's search effort (zero when infeasible).
	Stats core.Stats
}

// Config drives a sensitivity sweep.
type Config struct {
	// Service spec source text; rebound against each perturbed
	// infrastructure.
	ServiceSpec string
	// Registry resolves performance references.
	Registry *perf.Registry
	// SolverOptions configure the per-factor solvers (Registry is set
	// from the field above).
	SolverOptions core.Options
	// Requirement is the fixed requirement to solve at each factor.
	Requirement model.Requirements
	// Workers bounds how many factors are evaluated concurrently: 0
	// uses GOMAXPROCS, 1 runs sequentially. Each factor gets its own
	// infrastructure clone and solver, so the reported points are
	// identical at any worker count.
	Workers int
	// WarmStart runs the factors sequentially on ONE shared solver,
	// warm-starting each factor's solve from the previous one: Rebind
	// with WarmDelta, then a SolveCell seeded by the last feasible
	// factor's solution, so only the cache slice the delta invalidates is
	// re-evaluated and the combination bound starts near-optimal. Points
	// are identical to the cold sweep (the epoch invalidation is exact
	// for an accurate delta); only the effort counters differ.
	// Factor-level parallelism is off in this mode — the solver's own
	// Workers still apply inside each solve.
	WarmStart bool
	// WarmDelta is the invalidation scope of one knob application: which
	// resource types have availability-relevant inputs the knob touches
	// (see AvailScope). The zero value declares a price-only knob and
	// invalidates nothing. An understated delta returns stale results —
	// when unsure, set All.
	WarmDelta core.Delta
}

// Sweep applies the knob at each factor to a fresh clone of the base
// infrastructure and solves the fixed requirement, reporting one Point
// per factor. Infeasible factors are reported, not skipped, so callers
// see where the requirement stops being achievable.
func Sweep(ctx context.Context, base *model.Infrastructure, cfg Config, knob Knob, factors []float64) ([]Point, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("sensitivity: no factors")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("sensitivity: config needs a registry")
	}
	// Factors are fully independent — each clones the infrastructure
	// and builds its own solver — so they fan across the worker pool,
	// landing by index; the lowest-index error matches the sequential
	// first error.
	//
	// Observability rides on the shared solver options: every factor's
	// solver inherits the configured tracer and registry, and the sweep
	// itself reports per-factor progress. Timing spans the whole factor
	// (clone, perturb, rebind, solve) — that is the unit of work a
	// what-if consumer waits for.
	po := sweep.NewPointObs(cfg.SolverOptions.Tracer, cfg.SolverOptions.Metrics, len(factors))
	if cfg.WarmStart {
		return sweepWarm(ctx, base, cfg, knob, factors, po)
	}
	out := make([]Point, len(factors))
	pt := par.NewTiming(cfg.SolverOptions.Metrics)
	err := par.ForEachTimedCtx(ctx, cfg.Workers, len(factors), pt, func(i int) error {
		f := factors[i]
		start := po.Begin()
		inf := base.Clone()
		if err := knob(inf, f); err != nil {
			return err
		}
		svc, err := model.ParseService(cfg.ServiceSpec)
		if err != nil {
			return fmt.Errorf("sensitivity: %w", err)
		}
		if err := svc.Resolve(inf); err != nil {
			return fmt.Errorf("sensitivity: %w", err)
		}
		opts := cfg.SolverOptions
		opts.Registry = cfg.Registry
		solver, err := core.NewSolver(inf, svc, opts)
		if err != nil {
			return err
		}
		sol, err := solver.SolveContext(ctx, cfg.Requirement)
		if err != nil {
			var infErr *core.InfeasibleError
			if errors.As(err, &infErr) {
				po.Done(i, start, obs.Event{Factor: f, Err: "infeasible"})
				out[i] = Point{Factor: f, Infeasible: true}
				return nil
			}
			return fmt.Errorf("sensitivity: factor %v: %w", f, err)
		}
		po.Done(i, start, obs.Event{
			Factor: f, Cost: float64(sol.Cost),
			Down: sol.DowntimeMinutes, JobH: sol.JobTime.Hours(),
		})
		out[i] = pointOf(f, sol)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sweepWarm is the Config.WarmStart path: one solver, factors in
// order, each solve warm-started from the previous via Rebind with the
// configured delta plus an explicit combination seed from the last
// feasible factor (kept across infeasible ones). Frontier reuse stays
// off: Rebind clears the frontier cache on every factor — perturbations
// move costs, which the per-resource epochs deliberately ignore — so
// caching unbounded builds here would only add work, never replay.
func sweepWarm(ctx context.Context, base *model.Infrastructure, cfg Config, knob Knob, factors []float64, po sweep.PointObs) ([]Point, error) {
	out := make([]Point, len(factors))
	var solver *core.Solver
	var seed *core.ComboSeed
	for i, f := range factors {
		start := po.Begin()
		inf := base.Clone()
		if err := knob(inf, f); err != nil {
			return nil, err
		}
		svc, err := model.ParseService(cfg.ServiceSpec)
		if err != nil {
			return nil, fmt.Errorf("sensitivity: %w", err)
		}
		if err := svc.Resolve(inf); err != nil {
			return nil, fmt.Errorf("sensitivity: %w", err)
		}
		var sol *core.Solution
		if solver == nil {
			opts := cfg.SolverOptions
			opts.Registry = cfg.Registry
			solver, err = core.NewSolver(inf, svc, opts)
			if err != nil {
				return nil, err
			}
			sol, err = solver.SolveContext(ctx, cfg.Requirement)
		} else if err = solver.Rebind(inf, svc, cfg.WarmDelta); err == nil {
			sol, err = solver.SolveCell(ctx, cfg.Requirement, core.CellOptions{Seed: seed})
		}
		if err != nil {
			var infErr *core.InfeasibleError
			if errors.As(err, &infErr) {
				po.Done(i, start, obs.Event{Factor: f, Err: "infeasible"})
				out[i] = Point{Factor: f, Infeasible: true}
				continue
			}
			return nil, fmt.Errorf("sensitivity: factor %v: %w", f, err)
		}
		seed = sol.Seed()
		po.Done(i, start, obs.Event{
			Factor: f, Cost: float64(sol.Cost),
			Down: sol.DowntimeMinutes, JobH: sol.JobTime.Hours(),
		})
		out[i] = pointOf(f, sol)
	}
	return out, nil
}

func pointOf(f float64, sol *core.Solution) Point {
	p := Point{
		Factor:          f,
		Cost:            sol.Cost,
		DowntimeMinutes: sol.DowntimeMinutes,
		JobTimeHours:    sol.JobTime.Hours(),
		Label:           sol.Design.Label(),
		Stats:           sol.Stats,
	}
	if len(sol.Design.Tiers) > 0 {
		p.Family = sweep.FamilyOf(&sol.Design.Tiers[0])
	}
	return p
}
