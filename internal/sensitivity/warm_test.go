package sensitivity

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// These tests pin the warm-start sweep contract: a WarmStart sweep
// reports points bit-identical to the cold sweep — only the effort
// counters may differ — and the warm effort is strictly smaller. The
// e-commerce case pins the headline acceptance number: a re-solve
// after a single-component perturbation re-evaluates less than 20% of
// the cold candidate set.

// samePoints fails unless the two sweeps reported identical results at
// every factor, ignoring the Stats effort counters (which are exactly
// what warm starting changes).
func samePoints(t *testing.T, cold, warm []Point) {
	t.Helper()
	if len(cold) != len(warm) {
		t.Fatalf("point counts differ: cold %d, warm %d", len(cold), len(warm))
	}
	for i := range cold {
		c, w := cold[i], warm[i]
		c.Stats, w.Stats = core.Stats{}, core.Stats{}
		if !reflect.DeepEqual(c, w) {
			t.Errorf("factor %v: warm point differs from cold:\n  cold %+v\n  warm %+v",
				cold[i].Factor, c, w)
		}
	}
}

// TestWarmSweepSingleComponentDelta is the acceptance pin: perturbing
// only the database component's MTBF invalidates only resource rG, so
// each warm re-solve replays the web- and application-tier grids from
// cache and re-evaluates under 20% of what the matching cold solve
// evaluates.
func TestWarmSweepSingleComponentDelta(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	delta := AvailScope(inf, "database")
	if delta.All || len(delta.Resources) != 1 || delta.Resources[0] != "rG" {
		t.Fatalf("AvailScope(database) = %+v, want exactly [rG]", delta)
	}
	cfg := Config{
		ServiceSpec:   scenarios.EcommerceSpec,
		Registry:      scenarios.Registry(),
		SolverOptions: core.Options{Workers: 1},
		Requirement: model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        1400,
			MaxAnnualDowntime: 60 * units.Minute,
		},
		Workers: 1,
	}
	factors := []float64{1, 2, 4, 8}
	ctx := context.Background()
	cold, err := Sweep(ctx, inf, cfg, ScaleMTBF("database"), factors)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.WarmStart = true
	warmCfg.WarmDelta = delta
	warm, err := Sweep(ctx, inf, warmCfg, ScaleMTBF("database"), factors)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, cold, warm)
	// The first factor is a cold solve either way; every later factor
	// must warm-start.
	for i := 1; i < len(factors); i++ {
		c, w := cold[i].Stats, warm[i].Stats
		if w.WarmStartReuse == 0 {
			t.Errorf("factor %v: warm solve reused nothing from the previous epoch", factors[i])
		}
		if w.Evaluations*5 >= c.Evaluations {
			t.Errorf("factor %v: warm solve ran %d evaluations, not under 20%% of the cold solve's %d",
				factors[i], w.Evaluations, c.Evaluations)
		}
	}
}

// TestWarmSweepPriceOnlyCorpus sweeps a price knob over generated
// scenarios with a zero WarmDelta (prices never enter the evaluation
// cache): the warm sweep must reproduce the cold points exactly — the
// optimum genuinely moves with price, exercising Resolve's re-search
// over cached availability — and never evaluate more than the cold
// sweep at any factor.
func TestWarmSweepPriceOnlyCorpus(t *testing.T) {
	factors := []float64{1, 0.5, 2, 1.25}
	ctx := context.Background()
	var reused, feasible int
	for seed := int64(1); seed <= 10; seed++ {
		sc, err := scenarios.RandSolveScenario(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := Config{
			ServiceSpec:   sc.Spec,
			Registry:      scenarios.Registry(),
			SolverOptions: core.Options{Workers: 1},
			Requirement:   sc.Req,
			Workers:       1,
		}
		cold, err := Sweep(ctx, sc.Inf, cfg, ScaleCost(""), factors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		warmCfg := cfg
		warmCfg.WarmStart = true // zero WarmDelta: price-only knob
		warm, err := Sweep(ctx, sc.Inf, warmCfg, ScaleCost(""), factors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		samePoints(t, cold, warm)
		for i := range factors {
			c, w := cold[i].Stats, warm[i].Stats
			if w.Evaluations > c.Evaluations {
				t.Errorf("seed %d factor %v: warm solve ran %d evaluations, cold only %d",
					seed, factors[i], w.Evaluations, c.Evaluations)
			}
			if !warm[i].Infeasible {
				feasible++
			}
			if i > 0 && w.WarmStartReuse > 0 {
				reused++
			}
		}
	}
	if feasible == 0 {
		t.Error("corpus produced no feasible sweep points")
	}
	if reused == 0 {
		t.Error("no warm solve reused a prior epoch's evaluations — the property test is vacuous")
	}
}
