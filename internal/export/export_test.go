package export

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"aved/internal/avail"
	"aved/internal/units"
)

func sampleModels() []avail.TierModel {
	return []avail.TierModel{
		{
			Name: "application",
			N:    6, M: 5, S: 1,
			Modes: []avail.Mode{
				{Name: "machineA/hard", MTBF: 650 * units.Day, Repair: 38 * units.Hour,
					Failover: units.Duration(6*units.Minute + 30*units.Second), UsesFailover: true,
					SparePowered: true},
				{Name: "linux/soft", MTBF: 60 * units.Day, Repair: 4 * units.Minute},
			},
		},
		{
			Name: "database",
			N:    1, M: 1, S: 0,
			Modes: []avail.Mode{
				{Name: "machineB/hard", MTBF: 1300 * units.Day, Repair: 38 * units.Hour},
			},
		},
	}
}

func modelsEqual(t *testing.T, a, b []avail.TierModel) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tier count %d vs %d", len(a), len(b))
	}
	for i := range a {
		ta, tb := a[i], b[i]
		if ta.Name != tb.Name || ta.N != tb.N || ta.M != tb.M || ta.S != tb.S {
			t.Errorf("tier %d header mismatch: %+v vs %+v", i, ta, tb)
		}
		if len(ta.Modes) != len(tb.Modes) {
			t.Fatalf("tier %d mode count %d vs %d", i, len(ta.Modes), len(tb.Modes))
		}
		for j := range ta.Modes {
			ma, mb := ta.Modes[j], tb.Modes[j]
			if ma.Name != mb.Name || ma.UsesFailover != mb.UsesFailover || ma.SparePowered != mb.SparePowered {
				t.Errorf("tier %d mode %d mismatch: %+v vs %+v", i, j, ma, mb)
			}
			for _, pair := range [][2]units.Duration{{ma.MTBF, mb.MTBF}, {ma.Repair, mb.Repair}, {ma.Failover, mb.Failover}} {
				if math.Abs(pair[0].Seconds()-pair[1].Seconds()) > 0.01 {
					t.Errorf("tier %d mode %d duration drift: %v vs %v", i, j, pair[0], pair[1])
				}
			}
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	models := sampleModels()
	var buf bytes.Buffer
	if err := WriteText(&buf, models); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"tier=application", "n=6", "m=5", "s=1",
		"mode=machineA/hard", "mtbf=650d", "failover_used=true", "tier=database"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
	back, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, models, back)
}

func TestJSONRoundTrip(t *testing.T) {
	models := sampleModels()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, models); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"mtbfHours"`) {
		t.Errorf("JSON missing unit-stable field: %s", buf.String())
	}
	back, err := ParseJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, models, back)
}

func TestRoundTripPreservesEvaluation(t *testing.T) {
	// The exported model must evaluate to the same downtime.
	models := sampleModels()
	eng := avail.NewMarkovEngine()
	orig, err := eng.Evaluate(models)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, models); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.Evaluate(back)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(orig.DowntimeMinutes-again.DowntimeMinutes) > 0.02 {
		t.Errorf("evaluation drift: %v vs %v", orig.DowntimeMinutes, again.DowntimeMinutes)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"mode before tier", "mode=x mtbf=1d repair=1h failover=0 failover_used=false"},
		{"bad attr", "tier=a n=1 m=1 s=0 junk"},
		{"missing n", "tier=a m=1 s=0"},
		{"bad count", "tier=a n=x m=1 s=0"},
		{"bad duration", "tier=a n=1 m=1 s=0\n  mode=y mtbf=zzz repair=1h failover=0"},
		{"bad bool", "tier=a n=1 m=1 s=0\n  mode=y mtbf=1d repair=1h failover=0 spare_powered=maybe"},
		{"invalid model", "tier=a n=0 m=1 s=0\n  mode=y mtbf=1d repair=1h failover=0"},
		{"unknown line", "banana"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(tc.src)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestParseTextSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# availability model for the application tier
tier=a n=1 m=1 s=0

  mode=hw mtbf=100d repair=8h failover=0 failover_used=false
`
	models, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || len(models[0].Modes) != 1 {
		t.Errorf("models = %+v", models)
	}
}

func TestWriteInvalidModelFails(t *testing.T) {
	bad := []avail.TierModel{{Name: "x", N: 0, M: 1}}
	var buf bytes.Buffer
	if err := WriteText(&buf, bad); err == nil {
		t.Error("WriteText should validate")
	}
	if err := WriteJSON(&buf, bad); err == nil {
		t.Error("WriteJSON should validate")
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := ParseJSON(strings.NewReader(`[{"name":"x","n":0,"m":1,"s":0,"modes":[]}]`)); err == nil {
		t.Error("invalid model should fail")
	}
}
