// Package export serialises Aved's availability models (§4.2) so they
// can be fed to external availability evaluation engines — the role
// Avanto plays in the paper ("Aved currently generates representations
// of this availability model that can be used with Avanto and our own
// simplified Markov Model"). Two formats are provided: a structured
// attribute–value text format in the same lexical style as the spec
// language, and JSON. Both round-trip, so results computed elsewhere
// can flow back through the same types.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aved/internal/avail"
	"aved/internal/units"
)

// WriteText renders tier availability models in the attribute–value
// format:
//
//	tier=application n=6 m=5 s=1
//	  mode=machineA/hard mtbf=650d repair=38.108h failover=6.5m failover_used=true spare_powered=false
//	  mode=linux/soft mtbf=60d repair=4m failover=6.5m failover_used=false spare_powered=false
func WriteText(w io.Writer, tms []avail.TierModel) error {
	bw := bufio.NewWriter(w)
	for i := range tms {
		tm := &tms[i]
		if err := tm.Validate(); err != nil {
			return fmt.Errorf("export: %w", err)
		}
		fmt.Fprintf(bw, "tier=%s n=%d m=%d s=%d\n", tm.Name, tm.N, tm.M, tm.S)
		for _, m := range tm.Modes {
			fmt.Fprintf(bw, "  mode=%s mtbf=%s repair=%s failover=%s failover_used=%t spare_powered=%t\n",
				m.Name, m.MTBF, m.Repair, m.Failover, m.UsesFailover, m.SparePowered)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}

// ParseText reads models written by WriteText.
func ParseText(r io.Reader) ([]avail.TierModel, error) {
	var (
		out []avail.TierModel
		cur *avail.TierModel
	)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		attrs, err := parseAttrs(fields, lineNo)
		if err != nil {
			return nil, err
		}
		switch {
		case attrs["tier"] != "":
			tm, err := parseTierLine(attrs, lineNo)
			if err != nil {
				return nil, err
			}
			out = append(out, tm)
			cur = &out[len(out)-1]
		case attrs["mode"] != "":
			if cur == nil {
				return nil, fmt.Errorf("export: line %d: mode before any tier", lineNo)
			}
			m, err := parseModeLine(attrs, lineNo)
			if err != nil {
				return nil, err
			}
			cur.Modes = append(cur.Modes, m)
		default:
			return nil, fmt.Errorf("export: line %d: want tier= or mode=, got %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	for i := range out {
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("export: %w", err)
		}
	}
	return out, nil
}

func parseAttrs(fields []string, lineNo int) (map[string]string, error) {
	attrs := make(map[string]string, len(fields))
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("export: line %d: want key=value, got %q", lineNo, f)
		}
		attrs[f[:eq]] = f[eq+1:]
	}
	return attrs, nil
}

func parseTierLine(attrs map[string]string, lineNo int) (avail.TierModel, error) {
	tm := avail.TierModel{Name: attrs["tier"]}
	var err error
	if tm.N, err = atoiAttr(attrs, "n", lineNo); err != nil {
		return tm, err
	}
	if tm.M, err = atoiAttr(attrs, "m", lineNo); err != nil {
		return tm, err
	}
	if tm.S, err = atoiAttr(attrs, "s", lineNo); err != nil {
		return tm, err
	}
	return tm, nil
}

func parseModeLine(attrs map[string]string, lineNo int) (avail.Mode, error) {
	m := avail.Mode{Name: attrs["mode"]}
	var err error
	if m.MTBF, err = durAttr(attrs, "mtbf", lineNo); err != nil {
		return m, err
	}
	if m.Repair, err = durAttr(attrs, "repair", lineNo); err != nil {
		return m, err
	}
	if m.Failover, err = durAttr(attrs, "failover", lineNo); err != nil {
		return m, err
	}
	if v, ok := attrs["failover_used"]; ok {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return m, fmt.Errorf("export: line %d: failover_used: %w", lineNo, err)
		}
		m.UsesFailover = b
	}
	if v, ok := attrs["spare_powered"]; ok {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return m, fmt.Errorf("export: line %d: spare_powered: %w", lineNo, err)
		}
		m.SparePowered = b
	}
	return m, nil
}

func atoiAttr(attrs map[string]string, key string, lineNo int) (int, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("export: line %d: missing %s", lineNo, key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("export: line %d: %s: %w", lineNo, key, err)
	}
	return n, nil
}

func durAttr(attrs map[string]string, key string, lineNo int) (units.Duration, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("export: line %d: missing %s", lineNo, key)
	}
	d, err := units.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("export: line %d: %s: %w", lineNo, key, err)
	}
	return d, nil
}

// jsonMode mirrors avail.Mode with explicit second-resolution fields so
// the JSON contract is unit-stable.
type jsonMode struct {
	Name            string  `json:"name"`
	MTBFHours       float64 `json:"mtbfHours"`
	RepairMinutes   float64 `json:"repairMinutes"`
	FailoverMinutes float64 `json:"failoverMinutes"`
	UsesFailover    bool    `json:"usesFailover"`
	SparePowered    bool    `json:"sparePowered,omitempty"`
}

type jsonTier struct {
	Name  string     `json:"name"`
	N     int        `json:"n"`
	M     int        `json:"m"`
	S     int        `json:"s"`
	Modes []jsonMode `json:"modes"`
}

// WriteJSON renders tier availability models as a JSON array.
func WriteJSON(w io.Writer, tms []avail.TierModel) error {
	doc := make([]jsonTier, 0, len(tms))
	for i := range tms {
		tm := &tms[i]
		if err := tm.Validate(); err != nil {
			return fmt.Errorf("export: %w", err)
		}
		jt := jsonTier{Name: tm.Name, N: tm.N, M: tm.M, S: tm.S}
		for _, m := range tm.Modes {
			jt.Modes = append(jt.Modes, jsonMode{
				Name:            m.Name,
				MTBFHours:       m.MTBF.Hours(),
				RepairMinutes:   m.Repair.Minutes(),
				FailoverMinutes: m.Failover.Minutes(),
				UsesFailover:    m.UsesFailover,
				SparePowered:    m.SparePowered,
			})
		}
		doc = append(doc, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}

// ParseJSON reads models written by WriteJSON.
func ParseJSON(r io.Reader) ([]avail.TierModel, error) {
	var doc []jsonTier
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	out := make([]avail.TierModel, 0, len(doc))
	for _, jt := range doc {
		tm := avail.TierModel{Name: jt.Name, N: jt.N, M: jt.M, S: jt.S}
		for _, m := range jt.Modes {
			tm.Modes = append(tm.Modes, avail.Mode{
				Name:         m.Name,
				MTBF:         units.FromHours(m.MTBFHours),
				Repair:       units.Duration(m.RepairMinutes * float64(units.Minute)),
				Failover:     units.Duration(m.FailoverMinutes * float64(units.Minute)),
				UsesFailover: m.UsesFailover,
				SparePowered: m.SparePowered,
			})
		}
		if err := tm.Validate(); err != nil {
			return nil, fmt.Errorf("export: %w", err)
		}
		out = append(out, tm)
	}
	return out, nil
}
