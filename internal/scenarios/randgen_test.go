package scenarios_test

import (
	"math"
	"math/rand"
	"testing"

	"aved/internal/avail"
	"aved/internal/scenarios"
	"aved/internal/sim"
)

// TestRandDesignReproducible pins the contract the differential test
// relies on: a design is a pure function of its seed.
func TestRandDesignReproducible(t *testing.T) {
	a := scenarios.RandDesign(rand.New(rand.NewSource(7)))
	b := scenarios.RandDesign(rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("tier counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].N != b[i].N || a[i].M != b[i].M || a[i].S != b[i].S || len(a[i].Modes) != len(b[i].Modes) {
			t.Fatalf("tier %d differs across same-seed draws: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Modes {
			if a[i].Modes[j] != b[i].Modes[j] {
				t.Fatalf("tier %d mode %d differs: %+v vs %+v", i, j, a[i].Modes[j], b[i].Modes[j])
			}
		}
	}
}

// TestRandDesignValid: every generated design must pass the model's own
// structural validation — the generator may never hand the engines
// garbage.
func TestRandDesignValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, tm := range scenarios.RandDesign(rng) {
			if err := tm.Validate(); err != nil {
				t.Fatalf("seed %d: generated invalid tier: %v", seed, err)
			}
		}
	}
}

// TestDifferentialMarkovVsSim is the differential property: across
// random small designs, the analytic engine's annual downtime must
// fall within the simulator's 95% confidence interval, widened by a
// modelling allowance for the analytic chain's independence
// approximations. A disagreement beyond that band means one of the two
// engines is wrong, and the failing seed reproduces the design.
func TestDifferentialMarkovVsSim(t *testing.T) {
	if testing.Short() {
		t.Skip("differential simulation in -short mode")
	}
	analytic := avail.NewMarkovEngine()
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		design := scenarios.RandDesign(rng)

		want, err := analytic.Evaluate(design)
		if err != nil {
			t.Fatalf("seed %d: markov: %v", seed, err)
		}
		eng, err := sim.NewEngine(seed, 100, 96)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := eng.EvaluateStats(design)
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}

		// Tier downtimes are statistically independent, so the design
		// estimate's half-width combines in quadrature.
		var hw2 float64
		for _, st := range stats {
			hw2 += st.HalfWidth95 * st.HalfWidth95
		}
		band := 3*math.Sqrt(hw2) + 0.10*math.Max(want.DowntimeMinutes, got.DowntimeMinutes)
		if diff := math.Abs(want.DowntimeMinutes - got.DowntimeMinutes); diff > band {
			t.Errorf("seed %d: markov %.2f min/yr vs sim %.2f min/yr, |diff| %.2f exceeds band %.2f (design %+v)",
				seed, want.DowntimeMinutes, got.DowntimeMinutes, diff, band, design)
		}
	}
}

// TestDowntimeMonotoneInSpares: adding a cold spare can only absorb
// failures, never cause them, so analytic downtime must be
// non-increasing in the spare count. (Warm spares are excluded: a
// powered spare is itself failure-prone, so the property does not hold
// for them unconditionally.)
func TestDowntimeMonotoneInSpares(t *testing.T) {
	analytic := avail.NewMarkovEngine()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tm := scenarios.RandTier(rng, "t")
		for i := range tm.Modes {
			tm.Modes[i].SparePowered = false
		}
		prev := math.Inf(1)
		for s := 0; s <= 3; s++ {
			tm.S = s
			res, err := analytic.Evaluate([]avail.TierModel{tm})
			if err != nil {
				t.Fatalf("seed %d s=%d: %v", seed, s, err)
			}
			if res.DowntimeMinutes > prev*(1+1e-9) {
				t.Errorf("seed %d: downtime rose from %.4f to %.4f min/yr when spares grew to %d",
					seed, prev, res.DowntimeMinutes, s)
			}
			prev = res.DowntimeMinutes
		}
	}
}

// TestDowntimeMonotoneInThreshold: relaxing the minimum-active
// threshold M makes the up-condition strictly easier, so downtime must
// be non-increasing as M falls.
func TestDowntimeMonotoneInThreshold(t *testing.T) {
	analytic := avail.NewMarkovEngine()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tm := scenarios.RandTier(rng, "t")
		prev := math.Inf(1)
		for m := tm.N; m >= 1; m-- {
			tm.M = m
			res, err := analytic.Evaluate([]avail.TierModel{tm})
			if err != nil {
				t.Fatalf("seed %d m=%d: %v", seed, m, err)
			}
			if res.DowntimeMinutes > prev*(1+1e-9) {
				t.Errorf("seed %d: downtime rose from %.4f to %.4f min/yr when threshold fell to %d",
					seed, prev, res.DowntimeMinutes, m)
			}
			prev = res.DowntimeMinutes
		}
	}
}
