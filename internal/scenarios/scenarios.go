// Package scenarios carries the paper's exact evaluation inputs: the
// Fig. 3 infrastructure specification, the Fig. 4 e-commerce and Fig. 5
// scientific service models, and a performance registry pre-loaded with
// the Table 1 closed forms. Examples, tests and benchmarks all build on
// these fixtures, so the reproduction exercises the same spec text the
// paper prints.
package scenarios

import (
	"fmt"

	"aved/internal/model"
	"aved/internal/perf"
)

// InfrastructureSpec is the Fig. 3 infrastructure model, verbatim in
// Aved's specification language.
const InfrastructureSpec = `
\\ Units - s:seconds, m:minutes, h:hours, d:days
\\ COMPONENTS DESCRIPTION
component=machineA cost([inactive,active])=[2400 2640]
  failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m
  failure=soft mtbf=75d mttr=0 detect_time=0
component=machineB cost([inactive,active])=[85000 93500]
  failure=hard mtbf=1300d mttr=<maintenanceB> detect_time=2m
  failure=soft mtbf=150d mttr=0 detect_time=0
component=linux cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
component=unix cost([inactive,active])=[0 200]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=webserver cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
component=appserverA cost([inactive,active])=[0 1700]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=appserverB cost([inactive,active])=[0 2000]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=database cost([inactive,active])=[0 20000]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=mpi cost=0 loss_window=<checkpoint>
  failure=soft mtbf=60d mttr=0 detect_time=0

\\ AVAILABILITY MECHANISMS
mechanism=maintenanceA
  param=level range=[bronze,silver,gold,platinum]
    cost(level)=[380 580 760 1500]
    mttr(level)=[38h 15h 8h 6h]
mechanism=maintenanceB
  param=level range=[bronze,silver,gold,platinum]
    cost(level)=[10100 12600 15800 25300]
    mttr(level)=[38h 15h 8h 6h]
mechanism=checkpoint
  param=storage_location range=[central,peer]
  param=checkpoint_interval range=[1m-24h;*1.05]
  cost=0
  loss_window=checkpoint_interval

\\ RESOURCES DESCRIPTION
resource=rA reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=webserver depend=linux startup=30s
resource=rB reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=webserver depend=unix startup=30s
resource=rC reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=appserverA depend=linux startup=2m
resource=rD reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=appserverB depend=linux startup=30s
resource=rE reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=appserverA depend=unix startup=2m
resource=rF reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=appserverB depend=unix startup=30s
resource=rG reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=database depend=unix startup=30s
resource=rH reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=mpi depend=linux startup=2s
resource=rI reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=mpi depend=unix startup=2s
`

// Note on fidelity: Fig. 3 in the paper contains two evident typos
// (resource rB's unix depends on "machineA" and starts "linux"'s
// webserver; rF/rG's unix likewise names machineA). The dependencies
// above follow the obviously intended chains (each OS depends on its
// own machine), as the paper's §5 text describes.

// EcommerceSpec is the Fig. 4 e-commerce service model.
const EcommerceSpec = `
application=ecommerce
tier=web
  resource=rA sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfA.dat
  resource=rB sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfB.dat
tier=application
  resource=rC sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfC.dat
  resource=rD sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfD.dat
  resource=rE sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfE.dat
  resource=rF sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfF.dat
tier=database
  resource=rG sizing=static failurescope=resource
    nActive=[1] performance=10000
`

// ApplicationTierSpec is the §5.1 example: the e-commerce service
// narrowed to its application tier, the tier whose design space the
// paper's Figs. 6 and 8 explore.
const ApplicationTierSpec = `
application=ecommerce-apptier
tier=application
  resource=rC sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfC.dat
  resource=rD sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfD.dat
  resource=rE sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfE.dat
  resource=rF sizing=dynamic failurescope=resource
    nActive=[1-1000,+1] performance(nActive)=perfF.dat
`

// ScientificSpec is the Fig. 5 scientific-application service model.
const ScientificSpec = `
application=scientific jobsize=10000
tier=computation
  resource=rH sizing=static failurescope=tier
    nActive=[1-1000,+1] performance(nActive)=perfH.dat
    mechanism=checkpoint mperformance(storage_location,
        checkpoint_interval, nActive)=mperfH.dat
  resource=rI sizing=static failurescope=tier
    nActive=[1-1000,+1] performance(nActive)=perfI.dat
    mechanism=checkpoint mperformance(storage_location,
        checkpoint_interval, nActive)=mperfI.dat
`

// Infrastructure parses and binds the Fig. 3 infrastructure model.
func Infrastructure() (*model.Infrastructure, error) {
	inf, err := model.ParseInfrastructure(InfrastructureSpec)
	if err != nil {
		return nil, fmt.Errorf("scenarios: infrastructure: %w", err)
	}
	return inf, nil
}

// Registry builds a performance registry loaded with Table 1.
func Registry() *perf.Registry {
	r := perf.NewRegistry()
	perf.RegisterTable1(r)
	return r
}

// service parses a service spec and resolves it against inf.
func service(name, src string, inf *model.Infrastructure) (*model.Service, error) {
	svc, err := model.ParseService(src)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %s: %w", name, err)
	}
	if err := svc.Resolve(inf); err != nil {
		return nil, fmt.Errorf("scenarios: %s: %w", name, err)
	}
	return svc, nil
}

// Ecommerce parses the Fig. 4 service model and resolves it.
func Ecommerce(inf *model.Infrastructure) (*model.Service, error) {
	return service("ecommerce", EcommerceSpec, inf)
}

// ApplicationTier parses the §5.1 application-tier service and
// resolves it.
func ApplicationTier(inf *model.Infrastructure) (*model.Service, error) {
	return service("application tier", ApplicationTierSpec, inf)
}

// Scientific parses the Fig. 5 service model and resolves it.
func Scientific(inf *model.Infrastructure) (*model.Service, error) {
	return service("scientific", ScientificSpec, inf)
}
