package scenarios

import (
	"testing"

	"aved/internal/model"
	"aved/internal/units"
)

func mustInfra(t *testing.T) *model.Infrastructure {
	t.Helper()
	inf, err := Infrastructure()
	if err != nil {
		t.Fatalf("Infrastructure(): %v", err)
	}
	return inf
}

func TestFig3ComponentInventory(t *testing.T) {
	inf := mustInfra(t)
	want := []string{"machineA", "machineB", "linux", "unix", "webserver",
		"appserverA", "appserverB", "database", "mpi"}
	got := inf.ComponentNames()
	if len(got) != len(want) {
		t.Fatalf("component count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("component[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFig3MachineA(t *testing.T) {
	inf := mustInfra(t)
	mA := inf.Components["machineA"]
	if mA.CostInactive != 2400 || mA.CostActive != 2640 {
		t.Errorf("machineA cost = [%v %v], want [2400 2640]", mA.CostInactive, mA.CostActive)
	}
	hard, ok := mA.FailureMode("hard")
	if !ok {
		t.Fatal("machineA missing hard failure mode")
	}
	if hard.MTBF != 650*units.Day {
		t.Errorf("machineA hard mtbf = %v, want 650d", hard.MTBF)
	}
	if hard.MTTRRef != "maintenanceA" {
		t.Errorf("machineA hard mttr ref = %q, want maintenanceA", hard.MTTRRef)
	}
	if hard.DetectTime != 2*units.Minute {
		t.Errorf("machineA hard detect = %v, want 2m", hard.DetectTime)
	}
	soft, ok := mA.FailureMode("soft")
	if !ok {
		t.Fatal("machineA missing soft failure mode")
	}
	if soft.MTBF != 75*units.Day || soft.MTTR != 0 || soft.DetectTime != 0 {
		t.Errorf("machineA soft = %+v", soft)
	}
}

func TestFig3MachineB(t *testing.T) {
	inf := mustInfra(t)
	mB := inf.Components["machineB"]
	if mB.CostInactive != 85000 || mB.CostActive != 93500 {
		t.Errorf("machineB cost = [%v %v], want [85000 93500]", mB.CostInactive, mB.CostActive)
	}
	hard, _ := mB.FailureMode("hard")
	if hard.MTBF != 1300*units.Day || hard.MTTRRef != "maintenanceB" {
		t.Errorf("machineB hard = %+v", hard)
	}
	soft, _ := mB.FailureMode("soft")
	if soft.MTBF != 150*units.Day {
		t.Errorf("machineB soft mtbf = %v, want 150d", soft.MTBF)
	}
}

func TestFig3SoftwareComponents(t *testing.T) {
	inf := mustInfra(t)
	tests := []struct {
		name             string
		inactive, active units.Money
	}{
		{"linux", 0, 0},
		{"unix", 0, 200},
		{"webserver", 0, 0},
		{"appserverA", 0, 1700},
		{"appserverB", 0, 2000},
		{"database", 0, 20000},
		{"mpi", 0, 0},
	}
	for _, tt := range tests {
		c := inf.Components[tt.name]
		if c == nil {
			t.Errorf("missing component %q", tt.name)
			continue
		}
		if c.CostInactive != tt.inactive || c.CostActive != tt.active {
			t.Errorf("%s cost = [%v %v], want [%v %v]",
				tt.name, c.CostInactive, c.CostActive, tt.inactive, tt.active)
		}
		soft, ok := c.FailureMode("soft")
		if !ok || soft.MTBF != 60*units.Day {
			t.Errorf("%s soft failure = %+v (want mtbf 60d)", tt.name, soft)
		}
	}
	if ref := inf.Components["mpi"].LossWindowRef; ref != "checkpoint" {
		t.Errorf("mpi loss-window mechanism = %q, want checkpoint", ref)
	}
}

func TestFig3Mechanisms(t *testing.T) {
	inf := mustInfra(t)
	mA := inf.Mechanisms["maintenanceA"]
	if mA == nil {
		t.Fatal("missing maintenanceA")
	}
	level, ok := mA.Param("level")
	if !ok || len(level.Enum) != 4 || level.Enum[0] != "bronze" || level.Enum[3] != "platinum" {
		t.Errorf("maintenanceA level = %+v", level)
	}
	costEff, ok := mA.Effect("cost")
	if !ok || len(costEff.Table) != 4 || costEff.Table[0] != "380" || costEff.Table[3] != "1500" {
		t.Errorf("maintenanceA cost effect = %+v", costEff)
	}
	mttrEff, ok := mA.Effect("mttr")
	if !ok || mttrEff.Table[0] != "38h" || mttrEff.Table[3] != "6h" {
		t.Errorf("maintenanceA mttr effect = %+v", mttrEff)
	}
	mB := inf.Mechanisms["maintenanceB"]
	costB, _ := mB.Effect("cost")
	if costB.Table[0] != "10100" || costB.Table[3] != "25300" {
		t.Errorf("maintenanceB cost = %v", costB.Table)
	}
	ck := inf.Mechanisms["checkpoint"]
	if ck == nil {
		t.Fatal("missing checkpoint mechanism")
	}
	loc, ok := ck.Param("storage_location")
	if !ok || len(loc.Enum) != 2 || loc.Enum[0] != "central" || loc.Enum[1] != "peer" {
		t.Errorf("checkpoint storage_location = %+v", loc)
	}
	cpi, ok := ck.Param("checkpoint_interval")
	if !ok || cpi.IsEnum() {
		t.Fatalf("checkpoint interval = %+v", cpi)
	}
	if cpi.Grid.Lo() != 1.0/60 || cpi.Grid.Hi() != 24 || !cpi.Grid.Geometric() {
		t.Errorf("checkpoint interval grid = %v", cpi.Grid)
	}
	lw, ok := ck.Effect("loss_window")
	if !ok || lw.Scalar != "checkpoint_interval" {
		t.Errorf("checkpoint loss_window effect = %+v", lw)
	}
}

func TestFig3Resources(t *testing.T) {
	inf := mustInfra(t)
	want := []string{"rA", "rB", "rC", "rD", "rE", "rF", "rG", "rH", "rI"}
	got := inf.ResourceNames()
	if len(got) != len(want) {
		t.Fatalf("resources = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resource[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	rC := inf.Resources["rC"]
	if len(rC.Components) != 3 {
		t.Fatalf("rC components = %d", len(rC.Components))
	}
	if rC.Components[0].Component.Name != "machineA" ||
		rC.Components[1].Component.Name != "linux" ||
		rC.Components[2].Component.Name != "appserverA" {
		t.Errorf("rC stack wrong: %v", rC.Components)
	}
	if rC.Components[1].DependsOn != "machineA" || rC.Components[2].DependsOn != "linux" {
		t.Error("rC dependency chain wrong")
	}
	// Full startup: 30s + 2m + 2m = 4.5m.
	if got := rC.FullStartup(); got != units.Duration(270)*units.Second {
		t.Errorf("rC full startup = %v, want 4.5m", got)
	}
	// Restart after linux failure: linux + appserverA = 4m.
	if got := rC.RestartTime("linux"); got != 4*units.Minute {
		t.Errorf("rC restart(linux) = %v, want 4m", got)
	}
	// Restart after appserver failure: just the appserver.
	if got := rC.RestartTime("appserverA"); got != 2*units.Minute {
		t.Errorf("rC restart(appserverA) = %v, want 2m", got)
	}
	// machineA failure restarts everything.
	if got := rC.RestartTime("machineA"); got != rC.FullStartup() {
		t.Errorf("rC restart(machineA) = %v, want full startup", got)
	}
	// Mechanism references.
	if ms := rC.Mechanisms(); len(ms) != 1 || ms[0] != "maintenanceA" {
		t.Errorf("rC mechanisms = %v", ms)
	}
	rH := inf.Resources["rH"]
	ms := rH.Mechanisms()
	if len(ms) != 2 {
		t.Fatalf("rH mechanisms = %v, want checkpoint and maintenanceA", ms)
	}
}

func TestFig4Ecommerce(t *testing.T) {
	inf := mustInfra(t)
	svc, err := Ecommerce(inf)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name != "ecommerce" || svc.HasJobSize {
		t.Errorf("service = %+v", svc)
	}
	if len(svc.Tiers) != 3 {
		t.Fatalf("tiers = %d, want 3", len(svc.Tiers))
	}
	app, ok := svc.Tier("application")
	if !ok || len(app.Options) != 4 {
		t.Fatalf("application tier options = %+v", app)
	}
	for i, wantRes := range []string{"rC", "rD", "rE", "rF"} {
		opt := app.Options[i]
		if opt.Resource != wantRes {
			t.Errorf("option[%d] = %q, want %q", i, opt.Resource, wantRes)
		}
		if opt.Sizing != model.SizingDynamic || opt.FailureScope != model.ScopeResource {
			t.Errorf("option[%d] sizing/scope = %v/%v", i, opt.Sizing, opt.FailureScope)
		}
		if opt.NActive.Lo() != 1 || opt.NActive.Hi() != 1000 {
			t.Errorf("option[%d] nActive = %v", i, opt.NActive)
		}
		if opt.ResourceType() == nil {
			t.Errorf("option[%d] unresolved", i)
		}
	}
	db, ok := svc.Tier("database")
	if !ok || len(db.Options) != 1 {
		t.Fatalf("database tier = %+v", db)
	}
	if !db.Options[0].PerfIsScalar || db.Options[0].PerfScalar != 10000 {
		t.Errorf("database performance = %+v", db.Options[0])
	}
	if db.Options[0].Sizing != model.SizingStatic {
		t.Error("database sizing should be static")
	}
}

func TestFig5Scientific(t *testing.T) {
	inf := mustInfra(t)
	svc, err := Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	if !svc.HasJobSize || svc.JobSize != 10000 {
		t.Errorf("jobsize = %v (%v)", svc.JobSize, svc.HasJobSize)
	}
	comp, ok := svc.Tier("computation")
	if !ok || len(comp.Options) != 2 {
		t.Fatalf("computation tier = %+v", comp)
	}
	for i, wantRes := range []string{"rH", "rI"} {
		opt := comp.Options[i]
		if opt.Resource != wantRes {
			t.Errorf("option[%d] = %q, want %q", i, opt.Resource, wantRes)
		}
		if opt.Sizing != model.SizingStatic || opt.FailureScope != model.ScopeTier {
			t.Errorf("option[%d] sizing/scope = %v/%v", i, opt.Sizing, opt.FailureScope)
		}
		mp, ok := opt.MechPerfFor("checkpoint")
		if !ok {
			t.Fatalf("option[%d] missing checkpoint mperformance", i)
		}
		if len(mp.Args) != 3 || mp.Args[0] != "storage_location" || mp.Args[2] != "nActive" {
			t.Errorf("option[%d] mperf args = %v", i, mp.Args)
		}
	}
}

func TestApplicationTierScenario(t *testing.T) {
	inf := mustInfra(t)
	svc, err := ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Tiers) != 1 || len(svc.Tiers[0].Options) != 4 {
		t.Fatalf("application tier scenario = %+v", svc)
	}
}

func TestRegistryCoversAllReferences(t *testing.T) {
	inf := mustInfra(t)
	reg := Registry()
	for _, loader := range []func(*model.Infrastructure) (*model.Service, error){Ecommerce, ApplicationTier, Scientific} {
		svc, err := loader(inf)
		if err != nil {
			t.Fatal(err)
		}
		for _, tier := range svc.Tiers {
			for _, opt := range tier.Options {
				if !opt.PerfIsScalar {
					if _, err := reg.Curve(opt.PerfRef); err != nil {
						t.Errorf("service %s tier %s: %v", svc.Name, tier.Name, err)
					}
				}
				for _, mp := range opt.MechPerf {
					if _, err := reg.Overhead(mp.Ref); err != nil {
						t.Errorf("service %s tier %s: %v", svc.Name, tier.Name, err)
					}
				}
			}
		}
	}
}
