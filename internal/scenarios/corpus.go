package scenarios

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"aved/internal/model"
	"aved/internal/perf"
)

// This file is the scenario corpus engine: a seeded, deterministic
// generator that emits hundreds of parameterized infrastructure/service
// pairs across four capacity-planning workload families, so every
// differential claim (Markov vs simulator, branch-and-bound vs
// exhaustive, warm vs cold, frontier reuse) can be asserted over a
// population of workloads instead of the three paper fixtures.
//
// The families follow the shapes the related work plans for:
//
//   - web: single-tier stateless serving under a diurnal traffic curve
//     (PCRAFT's regime), half the scenarios with a failover
//     latency-degradation SLO;
//   - batch: finite jobs bound by completion time (the paper's Fig. 5
//     shape with generated sizes and deadlines);
//   - telco: service chains of 5-8 heterogeneous stages drawing their
//     resource options from a small shared pool (HASFC's regime);
//   - storage: cold-spare-heavy tiers whose repairs are slow and priced
//     through a maintenance-contract mechanism, making inactive spares
//     the economical fix.
//
// Every scenario is reproducible from (corpus seed, family, index)
// alone; generation that draws a structurally infeasible spec redraws
// deterministically (bounded attempts), so corpus tests never pass
// vacuously on specs no solver could size.

// Family identifies one workload family of the corpus.
type Family int

// The corpus workload families.
const (
	FamilyWeb Family = iota + 1
	FamilyBatch
	FamilyTelco
	FamilyStorage
)

// Families lists every workload family in generation order.
var Families = []Family{FamilyWeb, FamilyBatch, FamilyTelco, FamilyStorage}

// String renders the family name used in scenario names and reports.
func (f Family) String() string {
	switch f {
	case FamilyWeb:
		return "web"
	case FamilyBatch:
		return "batch"
	case FamilyTelco:
		return "telco"
	case FamilyStorage:
		return "storage"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// CorpusScenario is one generated workload: a bound infrastructure and
// service, the requirements (extracted from the service spec's
// requirements clause), the canonical spec texts both were parsed
// from, and the performance registry resolving the spec's curve
// references. InfSpec and SvcSpec are canonical: parsing either and
// rendering it back yields the identical bytes.
type CorpusScenario struct {
	Family   Family
	Index    int
	Name     string
	Seed     int64
	Inf      *model.Infrastructure
	Svc      *model.Service
	Req      model.Requirements
	InfSpec  string
	SvcSpec  string
	Registry *perf.Registry
}

// CorpusConfig parameterizes corpus generation.
type CorpusConfig struct {
	// Seed drives every scenario; the same seed reproduces the same
	// corpus bit for bit.
	Seed int64
	// PerFamily is the number of scenarios per family; 0 means 50.
	PerFamily int
}

// GenCorpus generates PerFamily scenarios for every family.
func GenCorpus(cfg CorpusConfig) ([]*CorpusScenario, error) {
	if cfg.PerFamily <= 0 {
		cfg.PerFamily = 50
	}
	out := make([]*CorpusScenario, 0, cfg.PerFamily*len(Families))
	for _, fam := range Families {
		for i := 0; i < cfg.PerFamily; i++ {
			sc, err := GenScenario(fam, i, cfg.Seed)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
		}
	}
	return out, nil
}

// maxGenAttempts bounds the deterministic redraw loop for one scenario.
const maxGenAttempts = 32

// GenScenario generates the index-th scenario of a family under a
// corpus seed. Draws that fail the structural feasibility precheck
// redraw with a new attempt-derived stream; after maxGenAttempts the
// generator is considered miscalibrated and an error reports it.
func GenScenario(fam Family, index int, seed int64) (*CorpusScenario, error) {
	for attempt := 0; attempt < maxGenAttempts; attempt++ {
		rng := rand.New(rand.NewSource(scenarioSeed(seed, fam, index, attempt)))
		raw, err := genFamily(fam, rng)
		if err != nil {
			return nil, fmt.Errorf("scenarios: %v %d: %w", fam, index, err)
		}
		sc, err := raw.finish(fam, index, seed)
		if err != nil {
			// A draw that fails to parse or resolve is a generator bug,
			// not bad luck — fail loudly instead of redrawing past it.
			return nil, fmt.Errorf("scenarios: %v %d: %w", fam, index, err)
		}
		if StructurallyFeasible(sc.Svc, sc.Req, sc.Registry) {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("scenarios: %v scenario %d: no structurally feasible draw in %d attempts",
		fam, index, maxGenAttempts)
}

// scenarioSeed mixes (corpus seed, family, index, attempt) into one
// PRNG seed with a splitmix64-style finalizer, so neighbouring indices
// get uncorrelated streams.
func scenarioSeed(seed int64, fam Family, index, attempt int) int64 {
	z := uint64(seed)
	z ^= (uint64(fam) + 1) * 0x9E3779B97F4A7C15
	z ^= (uint64(index) + 1) * 0xBF58476D1CE4E5B9
	z ^= (uint64(attempt) + 1) * 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// StructurallyFeasible reports whether the solver could size every tier
// at all: each tier needs at least one option whose performance curve
// meets the sizing load somewhere on its active-count grid, inside the
// component instance caps — the same split the search applies before
// enumerating an option. It deliberately stops short of evaluating
// availability (that is the solver's job); it exists so generators and
// tests reject specs whose searches would be vacuously empty. The
// service must be resolved against its infrastructure first.
func StructurallyFeasible(svc *model.Service, req model.Requirements, reg *perf.Registry) bool {
	if req.Kind == model.ReqJob && (!svc.HasJobSize || svc.JobSize <= 0) {
		return false
	}
	load := req.PeakLoad()
	for ti := range svc.Tiers {
		tier := &svc.Tiers[ti]
		ok := false
		for oi := range tier.Options {
			opt := &tier.Options[oi]
			var curve perf.Curve
			if opt.PerfIsScalar {
				curve = perf.ConstCurve(opt.PerfScalar)
			} else {
				c, err := reg.Curve(opt.PerfRef)
				if err != nil {
					continue
				}
				curve = c
			}
			maxTotal := opt.ResourceType().MaxInstances()
			if req.Kind == model.ReqJob {
				// Finite jobs have no throughput floor; any grid point
				// inside the caps is a searchable size.
				lo := int(math.Round(opt.NActive.Lo()))
				if lo >= 1 && (maxTotal == 0 || lo <= maxTotal) {
					ok = true
					break
				}
				continue
			}
			n, feasible := perf.MinActive(curve, load, opt.NActive)
			if feasible && (maxTotal == 0 || n <= maxTotal) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// rawScenario is one family draw before canonicalization: raw spec
// texts plus the linear curves its performance references resolve to.
type rawScenario struct {
	infSrc string
	svcSrc string
	curves map[string]float64 // reference name -> per-instance throughput
}

// finish canonicalizes a draw: parse both specs, re-render them (so the
// stored text is the writer's fixed point), resolve the service, build
// the registry and pull the requirements out of the service's
// requirements clause.
func (raw *rawScenario) finish(fam Family, index int, seed int64) (*CorpusScenario, error) {
	inf, err := model.ParseInfrastructure(raw.infSrc)
	if err != nil {
		return nil, fmt.Errorf("infrastructure: %w", err)
	}
	infSpec := inf.Spec()
	inf, err = model.ParseInfrastructure(infSpec)
	if err != nil {
		return nil, fmt.Errorf("canonical infrastructure: %w", err)
	}
	svc, err := model.ParseService(raw.svcSrc)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	svcSpec := svc.Spec()
	svc, err = model.ParseService(svcSpec)
	if err != nil {
		return nil, fmt.Errorf("canonical service: %w", err)
	}
	if err := svc.Resolve(inf); err != nil {
		return nil, fmt.Errorf("resolve: %w", err)
	}
	if svc.Reqs == nil {
		return nil, fmt.Errorf("generated service carries no requirements clause")
	}
	reg := perf.NewRegistry()
	for name, v := range raw.curves {
		reg.RegisterCurve(name, perf.LinearCurve(v))
	}
	return &CorpusScenario{
		Family:   fam,
		Index:    index,
		Name:     fmt.Sprintf("%s-%03d", fam, index),
		Seed:     seed,
		Inf:      inf,
		Svc:      svc,
		Req:      *svc.Reqs,
		InfSpec:  infSpec,
		SvcSpec:  svcSpec,
		Registry: reg,
	}, nil
}

func genFamily(fam Family, rng *rand.Rand) (*rawScenario, error) {
	switch fam {
	case FamilyWeb:
		return genWeb(rng), nil
	case FamilyBatch:
		return genBatch(rng), nil
	case FamilyTelco:
		return genTelco(rng), nil
	case FamilyStorage:
		return genStorage(rng), nil
	default:
		return nil, fmt.Errorf("unknown family %v", fam)
	}
}

// hostStack writes one machine-class component plus the shared OS and
// server software stanzas of a resource, mirroring the paper's Fig. 3
// stacks. Failure regimes stay inside the analytic engine's comfort
// zone: MTBFs of months to years against repairs of hours.
func hostStack(b *strings.Builder, res, machine, soft string) {
	fmt.Fprintf(b, "resource=%s reconfig_time=0\n", res)
	fmt.Fprintf(b, "  component=%s depend=null startup=30s\n", machine)
	fmt.Fprintf(b, "  component=os depend=%s startup=2m\n", machine)
	fmt.Fprintf(b, "  component=%s depend=os startup=30s\n", soft)
}

// machineComponent writes a machine-class component with a hard repair
// failure and a soft reboot failure.
func machineComponent(b *strings.Builder, name string, rng *rand.Rand) {
	price := 1500 + rng.Intn(19)*250
	markup := 1 + rng.Intn(3) // active premium of 10-30%
	fmt.Fprintf(b, "component=%s cost([inactive,active])=[%d %d]\n",
		name, price, price+price*markup/10)
	fmt.Fprintf(b, "  failure=hard mtbf=%dd mttr=%dh detect_time=2m\n",
		200+rng.Intn(28)*25, 12+rng.Intn(37))
	fmt.Fprintf(b, "  failure=soft mtbf=%dd mttr=0 detect_time=0\n", 40+rng.Intn(11)*10)
}

// softwareComponents writes the shared OS and a named server-software
// component (both reboot-style soft failures).
func softwareComponents(b *strings.Builder, soft string, softCost int, rng *rand.Rand) {
	fmt.Fprintf(b, "component=os cost=0\n  failure=soft mtbf=%dd mttr=0 detect_time=0\n",
		30+rng.Intn(61))
	fmt.Fprintf(b, "component=%s cost([inactive,active])=[0 %d]\n  failure=soft mtbf=%dd mttr=0 detect_time=0\n",
		soft, softCost, 30+rng.Intn(61))
}

// diurnalTraffic draws a 24-sample day shaped like real serving load: a
// cosine valley-to-peak profile with per-hour jitter, clamped so the
// drawn peak value appears exactly once as the curve's maximum.
func diurnalTraffic(rng *rand.Rand, peak int) []int {
	peakHour := 10 + rng.Intn(10)
	out := make([]int, 24)
	for h := 0; h < 24; h++ {
		w := 0.65 - 0.35*math.Cos(2*math.Pi*float64(h-peakHour)/24)
		w += (rng.Float64() - 0.5) * 0.1
		v := int(math.Round(float64(peak) * w))
		if v < 1 {
			v = 1
		}
		if v >= peak {
			v = peak - 1
		}
		out[h] = v
	}
	out[peakHour] = peak
	return out
}

func writeTraffic(b *strings.Builder, samples []int) {
	parts := make([]string, len(samples))
	for i, v := range samples {
		parts[i] = fmt.Sprintf("%d", v)
	}
	fmt.Fprintf(b, "  traffic(hour)=[%s]\n", strings.Join(parts, " "))
}

// genWeb draws a single-tier stateless web service: 2-3 host stacks as
// resource options, a diurnal traffic curve, and (half the time) a
// failover latency-degradation SLO.
func genWeb(rng *rand.Rand) *rawScenario {
	nRes := 2 + rng.Intn(2)
	var inf strings.Builder
	curves := map[string]float64{}
	for i := 0; i < nRes; i++ {
		machineComponent(&inf, fmt.Sprintf("machine%c", 'A'+i), rng)
	}
	softwareComponents(&inf, "httpd", 200+rng.Intn(9)*100, rng)
	for i := 0; i < nRes; i++ {
		hostStack(&inf, fmt.Sprintf("web%c", 'A'+i), fmt.Sprintf("machine%c", 'A'+i), "httpd")
	}

	var svc strings.Builder
	svc.WriteString("application=websvc\nrequirements=enterprise\n")
	peak := 300 + rng.Intn(13)*100
	writeTraffic(&svc, diurnalTraffic(rng, peak))
	budgets := []int{60, 100, 300, 1000}
	fmt.Fprintf(&svc, "  max_annual_downtime=%dm\n", budgets[rng.Intn(len(budgets))])
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&svc, "  degraded_throughput=0.%d\n", 5+rng.Intn(5))
	}
	svc.WriteString("tier=web\n")
	for i := 0; i < nRes; i++ {
		ref := fmt.Sprintf("perfweb%c.dat", 'A'+i)
		curves[ref] = float64(80 + rng.Intn(13)*20)
		fmt.Fprintf(&svc, "  resource=web%c sizing=dynamic failurescope=resource\n", 'A'+i)
		fmt.Fprintf(&svc, "    nActive=[1-32,+1] performance(nActive)=%s\n", ref)
	}
	return &rawScenario{infSrc: inf.String(), svcSrc: svc.String(), curves: curves}
}

// genBatch draws a finite-job service: a statically sized compute tier
// whose deadline is set a modest slack above the failure-free time of a
// mid-grid size, so most draws are solvable and the rest exercise the
// infeasible path deterministically.
func genBatch(rng *rand.Rand) *rawScenario {
	nRes := 1 + rng.Intn(2)
	var inf strings.Builder
	curves := map[string]float64{}
	for i := 0; i < nRes; i++ {
		machineComponent(&inf, fmt.Sprintf("node%c", 'A'+i), rng)
	}
	softwareComponents(&inf, "runtime", 100+rng.Intn(5)*100, rng)
	for i := 0; i < nRes; i++ {
		hostStack(&inf, fmt.Sprintf("batch%c", 'A'+i), fmt.Sprintf("node%c", 'A'+i), "runtime")
	}

	jobSize := 2000 + rng.Intn(10)*2000
	perUnit := float64(5 + rng.Intn(10)*5) // job units per instance-hour
	nTarget := 2 + rng.Intn(8)
	slack := 1.5 + 2.5*rng.Float64()
	deadline := int(math.Ceil(float64(jobSize) / (perUnit * float64(nTarget)) * slack))
	if deadline < 1 {
		deadline = 1
	}
	scopes := []string{"tier", "resource"}
	scope := scopes[rng.Intn(len(scopes))]

	var svc strings.Builder
	fmt.Fprintf(&svc, "application=batchsvc jobsize=%d\n", jobSize)
	fmt.Fprintf(&svc, "requirements=job\n  max_job_time=%dh\n", deadline)
	svc.WriteString("tier=compute\n")
	for i := 0; i < nRes; i++ {
		ref := fmt.Sprintf("perfbatch%c.dat", 'A'+i)
		curves[ref] = perUnit * (0.8 + 0.4*rng.Float64())
		fmt.Fprintf(&svc, "  resource=batch%c sizing=static failurescope=%s\n", 'A'+i, scope)
		fmt.Fprintf(&svc, "    nActive=[1-24,+1] performance(nActive)=%s\n", ref)
	}
	return &rawScenario{infSrc: inf.String(), svcSrc: svc.String(), curves: curves}
}

// genTelco draws a HASFC-style service chain: 5-8 heterogeneous stages,
// each choosing among 1-2 resource types from a shared pool of 3-4, so
// stages are coupled through common hardware. Budgets stay loose — the
// series composition of many stages is where combination math, not
// per-tier tightness, does the work.
func genTelco(rng *rand.Rand) *rawScenario {
	nPool := 3 + rng.Intn(2)
	var inf strings.Builder
	curves := map[string]float64{}
	for i := 0; i < nPool; i++ {
		machineComponent(&inf, fmt.Sprintf("chassis%c", 'A'+i), rng)
	}
	softwareComponents(&inf, "vnf", 300+rng.Intn(7)*100, rng)
	for i := 0; i < nPool; i++ {
		hostStack(&inf, fmt.Sprintf("pool%c", 'A'+i), fmt.Sprintf("chassis%c", 'A'+i), "vnf")
		ref := fmt.Sprintf("perfpool%c.dat", 'A'+i)
		curves[ref] = float64(60 + rng.Intn(10)*20)
	}

	var svc strings.Builder
	svc.WriteString("application=chainsvc\nrequirements=enterprise\n")
	fmt.Fprintf(&svc, "  throughput=%d\n", 100+rng.Intn(9)*50)
	budgets := []int{300, 1000, 2000}
	fmt.Fprintf(&svc, "  max_annual_downtime=%dm\n", budgets[rng.Intn(len(budgets))])
	nStages := 5 + rng.Intn(4)
	for s := 0; s < nStages; s++ {
		fmt.Fprintf(&svc, "tier=stage%d\n", s+1)
		first := rng.Intn(nPool)
		picks := []int{first}
		if rng.Intn(2) == 0 {
			second := rng.Intn(nPool)
			if second != first {
				picks = append(picks, second)
			}
		}
		for _, p := range picks {
			fmt.Fprintf(&svc, "  resource=pool%c sizing=dynamic failurescope=resource\n", 'A'+p)
			fmt.Fprintf(&svc, "    nActive=[1-16,+1] performance(nActive)=perfpool%c.dat\n", 'A'+p)
		}
	}
	return &rawScenario{infSrc: inf.String(), svcSrc: svc.String(), curves: curves}
}

// genStorage draws a cold-spare-heavy storage tier: arrays whose hard
// repairs are slow and priced through a maintenance-contract mechanism
// (level picks the repair clock), with inactive instances at a small
// fraction of the active price so cold spares are the economical fix.
func genStorage(rng *rand.Rand) *rawScenario {
	var inf strings.Builder
	curves := map[string]float64{}
	base := 380 + rng.Intn(8)*60
	fmt.Fprintf(&inf, "mechanism=maint\n  param=level range=[bronze,silver,gold]\n")
	fmt.Fprintf(&inf, "    cost(level)=[%d %d %d]\n", base, base*2, base*4)
	// Repair clocks stay within the analytic engine's documented regime
	// (failure rates well below repair rates): slower than this and
	// concurrent cross-mode failures become common enough that the
	// engines legitimately diverge beyond the differential band.
	fmt.Fprintf(&inf, "    mttr(level)=[%dh %dh %dh]\n", 24+rng.Intn(13), 12+rng.Intn(7), 4+rng.Intn(5))
	nRes := 1 + rng.Intn(2)
	for i := 0; i < nRes; i++ {
		price := 8000 + rng.Intn(17)*1000
		fmt.Fprintf(&inf, "component=array%c cost([inactive,active])=[%d %d]\n", 'A'+i, price/8, price)
		fmt.Fprintf(&inf, "  failure=hard mtbf=%dd mttr=<maint> detect_time=5m\n", 500+rng.Intn(21)*25)
		fmt.Fprintf(&inf, "  failure=media mtbf=%dd mttr=%dh detect_time=1m\n", 120+rng.Intn(14)*10, 4+rng.Intn(9))
	}
	fmt.Fprintf(&inf, "component=ctrl cost=0\n  failure=soft mtbf=%dd mttr=0 detect_time=0\n", 40+rng.Intn(81))
	for i := 0; i < nRes; i++ {
		fmt.Fprintf(&inf, "resource=stor%c reconfig_time=0\n", 'A'+i)
		fmt.Fprintf(&inf, "  component=array%c depend=null startup=60s\n", 'A'+i)
		fmt.Fprintf(&inf, "  component=ctrl depend=array%c startup=1m\n", 'A'+i)
	}

	var svc strings.Builder
	svc.WriteString("application=storsvc\nrequirements=enterprise\n")
	fmt.Fprintf(&svc, "  throughput=%d\n", 150+rng.Intn(8)*50)
	budgets := []int{100, 300, 1000}
	fmt.Fprintf(&svc, "  max_annual_downtime=%dm\n", budgets[rng.Intn(len(budgets))])
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&svc, "  degraded_throughput=0.%d\n", 6+rng.Intn(4))
	}
	svc.WriteString("tier=store\n")
	for i := 0; i < nRes; i++ {
		ref := fmt.Sprintf("perfstor%c.dat", 'A'+i)
		curves[ref] = float64(100 + rng.Intn(13)*25)
		fmt.Fprintf(&svc, "  resource=stor%c sizing=dynamic failurescope=resource\n", 'A'+i)
		fmt.Fprintf(&svc, "    nActive=[1-8,+1] performance(nActive)=%s\n", ref)
	}
	return &rawScenario{infSrc: inf.String(), svcSrc: svc.String(), curves: curves}
}
