package scenarios

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"aved/internal/avail"
	"aved/internal/model"
	"aved/internal/units"
)

// This file generates small pseudo-random availability models for
// differential testing: the same design evaluated by the analytic
// Markov engine and the discrete-event simulator must agree within the
// simulator's confidence interval (plus the analytic model's documented
// approximation error). Everything is driven by a caller-supplied
// *rand.Rand, so a failing design is reproducible from its seed alone.
//
// The generator deliberately stays inside the regime the paper's
// simplified Markov model assumes: per-resource failure rates well
// below repair rates (MTBF of weeks to years against repairs of
// minutes to two days). Outside that regime the analytic engine's
// independence approximations degrade and the two engines legitimately
// diverge, which would tell a differential test nothing.

// RandMode draws one failure mode. Failover, when the mode uses it, is
// always faster than repair — the §4.2 rule for when spares are worth
// engaging at all.
func RandMode(rng *rand.Rand, name string) avail.Mode {
	mtbf := units.FromDays(30 + 700*rng.Float64())
	repair := units.FromHours(0.5 + 47.5*rng.Float64())
	failover := units.FromSeconds(30 + 570*rng.Float64())
	usesFO := rng.Intn(4) > 0 // three in four modes fail over
	return avail.Mode{
		Name:         name,
		MTBF:         mtbf,
		Repair:       repair,
		Failover:     failover,
		UsesFailover: usesFO,
		SparePowered: usesFO && rng.Intn(2) == 0,
	}
}

// RandTier draws a small tier: one to five active resources, a
// feasible minimum-active threshold, up to three spares and one to
// three failure modes.
func RandTier(rng *rand.Rand, name string) avail.TierModel {
	n := 1 + rng.Intn(5)
	tm := avail.TierModel{
		Name: name,
		N:    n,
		M:    1 + rng.Intn(n),
		S:    rng.Intn(4),
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		tm.Modes = append(tm.Modes, RandMode(rng, fmt.Sprintf("%s/mode%d", name, i)))
	}
	return tm
}

// RandDesign draws a whole design of one to three tiers, the series
// composition both engines evaluate.
func RandDesign(rng *rand.Rand) []avail.TierModel {
	tms := make([]avail.TierModel, 0, 3)
	for i := 0; i < 1+rng.Intn(3); i++ {
		tms = append(tms, RandTier(rng, fmt.Sprintf("tier%d", i)))
	}
	return tms
}

// SolveScenario is one drawn full-solver problem for differential
// search testing: a price- and reliability-perturbed clone of the
// paper infrastructure, a service over a random subset of its resource
// types, and an enterprise requirement. The perturbations move the
// cost orderings the branch-and-bound search prunes by, so a corpus of
// these exercises bound math the fixed paper scenarios never reach.
type SolveScenario struct {
	Inf *model.Infrastructure
	Svc *model.Service
	Req model.Requirements
	// Spec is the service spec text Svc was parsed from, for callers
	// that rebind the service themselves (e.g. sensitivity sweeps).
	Spec string
}

// RandSolveScenario draws one solver scenario from rng. The same seed
// reproduces the same scenario bit for bit: all random draws happen in
// a sorted, deterministic order, and a draw that fails the structural
// feasibility precheck (a tier no option of which can meet the drawn
// throughput on its grid) redraws from the same stream — still
// deterministic, and bounded so a miscalibrated generator fails loudly
// instead of spinning.
func RandSolveScenario(rng *rand.Rand) (*SolveScenario, error) {
	for attempt := 0; attempt < maxGenAttempts; attempt++ {
		sc, err := randSolveScenarioOnce(rng)
		if err != nil {
			return nil, err
		}
		if StructurallyFeasible(sc.Svc, sc.Req, Registry()) {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("scenarios: no structurally feasible draw in %d attempts", maxGenAttempts)
}

func randSolveScenarioOnce(rng *rand.Rand) (*SolveScenario, error) {
	inf, err := Infrastructure()
	if err != nil {
		return nil, err
	}
	// Perturb every component: prices by a log-uniform factor in
	// [1/4, 4] (both modes together, preserving inactive ≤ active),
	// MTBFs by a factor in [1/2, 4] (staying in the failure-rate ≪
	// repair-rate regime the analytic engine assumes).
	names := make([]string, 0, len(inf.Components))
	for name := range inf.Components {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := inf.Components[name]
		cf := math.Exp((2*rng.Float64() - 1) * math.Ln2 * 2)
		c.CostInactive = units.Money(float64(c.CostInactive) * cf)
		c.CostActive = units.Money(float64(c.CostActive) * cf)
		mf := 0.5 + 3.5*rng.Float64()
		for i := range c.Failures {
			c.Failures[i].MTBF = units.Duration(float64(c.Failures[i].MTBF) * mf)
		}
	}
	spec := randServiceSpec(rng)
	svc, err := service("random", spec, inf)
	if err != nil {
		return nil, err
	}
	budgets := []float64{30, 60, 100, 300, 1000, 2000} // minutes/year
	req := model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        200 + float64(rng.Intn(13))*200,
		MaxAnnualDowntime: units.Duration(budgets[rng.Intn(len(budgets))] * float64(units.Minute)),
	}
	return &SolveScenario{Inf: inf, Svc: svc, Req: req, Spec: spec}, nil
}

// randServiceSpec assembles a service over the paper's resource types:
// the application tier always (a nonempty subset of rC–rF), the web
// tier (subset of rA/rB) and the static database tier each with
// two-in-three odds.
func randServiceSpec(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("application=randsvc\n")
	if rng.Intn(3) > 0 {
		b.WriteString("tier=web\n")
		b.WriteString(randSubset(rng, []string{"rA", "rB"}))
	}
	b.WriteString("tier=application\n")
	b.WriteString(randSubset(rng, []string{"rC", "rD", "rE", "rF"}))
	if rng.Intn(3) > 0 {
		b.WriteString("tier=database\n")
		b.WriteString(resourceStanza("rG"))
	}
	return b.String()
}

// randSubset writes the stanzas of a uniformly drawn nonempty subset.
func randSubset(rng *rand.Rand, resources []string) string {
	var b strings.Builder
	mask := 1 + rng.Intn(1<<len(resources)-1)
	for i, r := range resources {
		if mask&(1<<i) != 0 {
			b.WriteString(resourceStanza(r))
		}
	}
	return b.String()
}

func resourceStanza(r string) string {
	if r == "rG" {
		return "  resource=rG sizing=static failurescope=resource\n" +
			"    nActive=[1] performance=10000\n"
	}
	return fmt.Sprintf("  resource=%s sizing=dynamic failurescope=resource\n"+
		"    nActive=[1-1000,+1] performance(nActive)=perf%s.dat\n", r, r[1:])
}
