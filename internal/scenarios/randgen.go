package scenarios

import (
	"fmt"
	"math/rand"

	"aved/internal/avail"
	"aved/internal/units"
)

// This file generates small pseudo-random availability models for
// differential testing: the same design evaluated by the analytic
// Markov engine and the discrete-event simulator must agree within the
// simulator's confidence interval (plus the analytic model's documented
// approximation error). Everything is driven by a caller-supplied
// *rand.Rand, so a failing design is reproducible from its seed alone.
//
// The generator deliberately stays inside the regime the paper's
// simplified Markov model assumes: per-resource failure rates well
// below repair rates (MTBF of weeks to years against repairs of
// minutes to two days). Outside that regime the analytic engine's
// independence approximations degrade and the two engines legitimately
// diverge, which would tell a differential test nothing.

// RandMode draws one failure mode. Failover, when the mode uses it, is
// always faster than repair — the §4.2 rule for when spares are worth
// engaging at all.
func RandMode(rng *rand.Rand, name string) avail.Mode {
	mtbf := units.FromDays(30 + 700*rng.Float64())
	repair := units.FromHours(0.5 + 47.5*rng.Float64())
	failover := units.FromSeconds(30 + 570*rng.Float64())
	usesFO := rng.Intn(4) > 0 // three in four modes fail over
	return avail.Mode{
		Name:         name,
		MTBF:         mtbf,
		Repair:       repair,
		Failover:     failover,
		UsesFailover: usesFO,
		SparePowered: usesFO && rng.Intn(2) == 0,
	}
}

// RandTier draws a small tier: one to five active resources, a
// feasible minimum-active threshold, up to three spares and one to
// three failure modes.
func RandTier(rng *rand.Rand, name string) avail.TierModel {
	n := 1 + rng.Intn(5)
	tm := avail.TierModel{
		Name: name,
		N:    n,
		M:    1 + rng.Intn(n),
		S:    rng.Intn(4),
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		tm.Modes = append(tm.Modes, RandMode(rng, fmt.Sprintf("%s/mode%d", name, i)))
	}
	return tm
}

// RandDesign draws a whole design of one to three tiers, the series
// composition both engines evaluate.
func RandDesign(rng *rand.Rand) []avail.TierModel {
	tms := make([]avail.TierModel, 0, 3)
	for i := 0; i < 1+rng.Intn(3); i++ {
		tms = append(tms, RandTier(rng, fmt.Sprintf("tier%d", i)))
	}
	return tms
}
