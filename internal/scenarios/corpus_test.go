package scenarios_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"aved/internal/avail"
	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/sim"
)

// These tests assert the repo's differential claims over the corpus
// engine's generated population instead of the three paper fixtures:
// branch-and-bound bit-identity to the exhaustive walk at worker counts
// 1 and 4, Markov-vs-simulator CI-band agreement on every solved
// design, constant-traffic/scalar equivalence, and the warm re-solve
// effort law — with per-family feasibility floors so none of it can
// pass vacuously.

// solveCorpus runs one search over a corpus scenario on a fresh solver.
// A nil solution with a nil error never happens: infeasibility comes
// back as *core.InfeasibleError, anything else is fatal.
func solveCorpus(t *testing.T, sc *scenarios.CorpusScenario, mode core.SearchMode, workers int) (*core.Solution, error) {
	t.Helper()
	s, err := core.NewSolver(sc.Inf, sc.Svc, core.Options{
		Registry: sc.Registry, Workers: workers, Search: mode,
	})
	if err != nil {
		t.Fatalf("%s: solver: %v", sc.Name, err)
	}
	sol, err := s.Solve(sc.Req)
	if err != nil {
		var inf *core.InfeasibleError
		if !errors.As(err, &inf) {
			t.Fatalf("%s: solve: %v", sc.Name, err)
		}
		return nil, err
	}
	return sol, nil
}

// sameSolution compares the projection of a solution the bit-identity
// contract pins: cost, the requirement metric and the design label.
func sameSolution(a, b *core.Solution) bool {
	return a.Cost == b.Cost && a.DowntimeMinutes == b.DowntimeMinutes &&
		a.JobTime == b.JobTime && a.Design.Label() == b.Design.Label()
}

// TestCorpusDifferential is the corpus-wide differential gate: across
// ≥200 generated scenarios of all four families, (1) branch-and-bound
// at workers 1 and 4 and the exhaustive walk at workers 1 agree on
// feasibility and, when feasible, on the solution bit for bit; (2) the
// analytic downtime of every solved design falls inside the
// simulator's confidence band; (3) every family stays ≥80% feasible,
// so no family's assertions go vacuous.
func TestCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential in -short mode")
	}
	const perFamily = 52
	corpus, err := scenarios.GenCorpus(scenarios.CorpusConfig{Seed: 1, PerFamily: perFamily})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 200 {
		t.Fatalf("corpus has %d scenarios, want at least 200", len(corpus))
	}
	markov := avail.NewMarkovEngine()
	counts := map[scenarios.Family]int{}
	feasible := map[scenarios.Family]int{}
	for i, sc := range corpus {
		counts[sc.Family]++
		bnb, errB := solveCorpus(t, sc, core.SearchBnB, 1)
		bnb4, errB4 := solveCorpus(t, sc, core.SearchBnB, 4)
		ex, errE := solveCorpus(t, sc, core.SearchExhaustive, 1)
		if (errB == nil) != (errE == nil) || (errB == nil) != (errB4 == nil) {
			t.Fatalf("%s: feasibility disagrees: bnb@1 %v, bnb@4 %v, exhaustive %v",
				sc.Name, errB, errB4, errE)
		}
		if errB != nil {
			continue
		}
		feasible[sc.Family]++
		if !sameSolution(bnb, ex) {
			t.Errorf("%s: bnb and exhaustive differ:\n  bnb        %v %.6f %v %s\n  exhaustive %v %.6f %v %s",
				sc.Name, bnb.Cost, bnb.DowntimeMinutes, bnb.JobTime, bnb.Design.Label(),
				ex.Cost, ex.DowntimeMinutes, ex.JobTime, ex.Design.Label())
		}
		if !sameSolution(bnb, bnb4) {
			t.Errorf("%s: worker count changed the solution:\n  workers=1 %v %s\n  workers=4 %v %s",
				sc.Name, bnb.Cost, bnb.Design.Label(), bnb4.Cost, bnb4.Design.Label())
		}

		// Markov vs simulator on the solved design, with the same band the
		// random-design differential uses — three combined-in-quadrature
		// half-widths plus a 10% allowance for the analytic chain's
		// independence approximations — widened by a one-minute-per-year
		// absolute floor: cost-optimal designs often land at downtimes of
		// seconds per year, where a purely relative band demands more
		// agreement than either engine's resolution carries.
		tms, err := avail.BuildModels(&bnb.Design)
		if err != nil {
			t.Fatalf("%s: build models: %v", sc.Name, err)
		}
		want, err := markov.Evaluate(tms)
		if err != nil {
			t.Fatalf("%s: markov: %v", sc.Name, err)
		}
		eng, err := sim.NewEngine(int64(i)+1, 60, 32)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := eng.EvaluateStats(tms)
		if err != nil {
			t.Fatalf("%s: sim: %v", sc.Name, err)
		}
		var hw2 float64
		for _, st := range stats {
			hw2 += st.HalfWidth95 * st.HalfWidth95
		}
		band := 3*math.Sqrt(hw2) + 0.10*math.Max(want.DowntimeMinutes, got.DowntimeMinutes) + 1.0
		if diff := math.Abs(want.DowntimeMinutes - got.DowntimeMinutes); diff > band {
			t.Errorf("%s: markov %.3f min/yr vs sim %.3f min/yr, |diff| %.3f exceeds band %.3f (design %s)",
				sc.Name, want.DowntimeMinutes, got.DowntimeMinutes, diff, band, bnb.Design.Label())
		}
	}
	for _, fam := range scenarios.Families {
		t.Logf("%-8v %d/%d feasible", fam, feasible[fam], counts[fam])
		if feasible[fam]*5 < counts[fam]*4 {
			t.Errorf("family %v: only %d/%d scenarios feasible, below the 80%% vacuity floor",
				fam, feasible[fam], counts[fam])
		}
	}
}

// TestCorpusDeterministicRoundTrip pins the two generator contracts the
// differential tests stand on: the corpus is a pure function of its
// seed (byte-identical spec texts across same-seed generations), and
// every stored spec is the writer's fixed point — parsing it and
// rendering it back reproduces the identical bytes, for every family.
func TestCorpusDeterministicRoundTrip(t *testing.T) {
	cfg := scenarios.CorpusConfig{Seed: 7, PerFamily: 8}
	a, err := scenarios.GenCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenarios.GenCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != cfg.PerFamily*len(scenarios.Families) {
		t.Fatalf("corpus sizes: %d vs %d, want %d", len(a), len(b), cfg.PerFamily*len(scenarios.Families))
	}
	seen := map[scenarios.Family]int{}
	for i := range a {
		sc := a[i]
		seen[sc.Family]++
		if sc.Name != b[i].Name || sc.InfSpec != b[i].InfSpec || sc.SvcSpec != b[i].SvcSpec {
			t.Errorf("%s: same-seed generations differ", sc.Name)
		}
		inf, err := model.ParseInfrastructure(sc.InfSpec)
		if err != nil {
			t.Fatalf("%s: reparse infrastructure: %v", sc.Name, err)
		}
		if got := inf.Spec(); got != sc.InfSpec {
			t.Errorf("%s: infrastructure spec is not a writer fixed point:\n--- stored ---\n%s\n--- rewritten ---\n%s",
				sc.Name, sc.InfSpec, got)
		}
		svc, err := model.ParseService(sc.SvcSpec)
		if err != nil {
			t.Fatalf("%s: reparse service: %v", sc.Name, err)
		}
		if got := svc.Spec(); got != sc.SvcSpec {
			t.Errorf("%s: service spec is not a writer fixed point:\n--- stored ---\n%s\n--- rewritten ---\n%s",
				sc.Name, sc.SvcSpec, got)
		}
		if svc.Reqs == nil {
			t.Errorf("%s: canonical service spec lost its requirements clause", sc.Name)
		}
	}
	for _, fam := range scenarios.Families {
		if seen[fam] != cfg.PerFamily {
			t.Errorf("family %v: %d scenarios, want %d", fam, seen[fam], cfg.PerFamily)
		}
	}
}

// TestCorpusConstantTrafficDifferential extends the core-level
// constant-curve equivalence to generated workloads: on web corpus
// scenarios, a constant 24-sample traffic curve at the peak must solve
// bit-identically — stats included — to the legacy scalar throughput
// at the same value, because both collapse to the same per-option size
// minima and therefore the same candidate space.
func TestCorpusConstantTrafficDifferential(t *testing.T) {
	var feasible int
	for i := 0; i < 10; i++ {
		sc, err := scenarios.GenScenario(scenarios.FamilyWeb, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		peak := sc.Req.PeakLoad()
		scalar := sc.Req
		scalar.Traffic = nil
		scalar.Throughput = peak
		flat := sc.Req
		flat.Traffic = make([]float64, 24)
		for h := range flat.Traffic {
			flat.Traffic[h] = peak
		}
		flat.Throughput = 0

		solve := func(req model.Requirements) (*core.Solution, error) {
			s, err := core.NewSolver(sc.Inf, sc.Svc, core.Options{Registry: sc.Registry, Workers: 1})
			if err != nil {
				t.Fatalf("%s: solver: %v", sc.Name, err)
			}
			return s.Solve(req)
		}
		a, errA := solve(scalar)
		b, errB := solve(flat)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: feasibility disagrees: scalar %v, constant curve %v", sc.Name, errA, errB)
		}
		if errA != nil {
			continue
		}
		feasible++
		if !sameSolution(a, b) {
			t.Errorf("%s: constant curve diverged from scalar:\n  scalar %v %s\n  curve  %v %s",
				sc.Name, a.Cost, a.Design.Label(), b.Cost, b.Design.Label())
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Errorf("%s: constant curve changed search effort:\n  scalar %+v\n  curve  %+v",
				sc.Name, a.Stats, b.Stats)
		}
	}
	if feasible == 0 {
		t.Error("no web scenario was feasible — the equivalence test is vacuous")
	}
}

// TestCorpusWarmResolveLaw pins the warm re-solve effort law over
// generated enterprise workloads: after a zero-delta rebind (prices
// only — nothing leaves the evaluation cache), re-solving the same
// requirement must reproduce the solution bit for bit while running at
// most the cold evaluations per scenario and, in aggregate, under half
// of them — and at least one re-solve must replay the warm seed.
func TestCorpusWarmResolveLaw(t *testing.T) {
	var coldTotal, warmTotal int64
	var reused, feasible int
	for _, fam := range []scenarios.Family{scenarios.FamilyWeb, scenarios.FamilyStorage, scenarios.FamilyTelco} {
		for i := 0; i < 6; i++ {
			sc, err := scenarios.GenScenario(fam, i, 11)
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.NewSolver(sc.Inf, sc.Svc, core.Options{Registry: sc.Registry, Workers: 1})
			if err != nil {
				t.Fatalf("%s: solver: %v", sc.Name, err)
			}
			cold, err := s.Solve(sc.Req)
			if err != nil {
				var inf *core.InfeasibleError
				if !errors.As(err, &inf) {
					t.Fatalf("%s: %v", sc.Name, err)
				}
				continue
			}
			feasible++
			if err := s.Rebind(sc.Inf, sc.Svc, core.Delta{}); err != nil {
				t.Fatalf("%s: rebind: %v", sc.Name, err)
			}
			warm, err := s.Solve(sc.Req)
			if err != nil {
				t.Fatalf("%s: warm re-solve turned infeasible: %v", sc.Name, err)
			}
			if !sameSolution(cold, warm) {
				t.Errorf("%s: warm re-solve changed the solution:\n  cold %v %s\n  warm %v %s",
					sc.Name, cold.Cost, cold.Design.Label(), warm.Cost, warm.Design.Label())
			}
			if warm.Stats.Evaluations > cold.Stats.Evaluations {
				t.Errorf("%s: warm re-solve ran %d evaluations, cold only %d",
					sc.Name, warm.Stats.Evaluations, cold.Stats.Evaluations)
			}
			if warm.Stats.WarmStartReuse > 0 {
				reused++
			}
			coldTotal += int64(cold.Stats.Evaluations)
			warmTotal += int64(warm.Stats.Evaluations)
		}
	}
	t.Logf("warm law: %d feasible scenarios, evaluations cold=%d warm=%d, %d with warm-seed replays",
		feasible, coldTotal, warmTotal, reused)
	if feasible == 0 {
		t.Error("no scenario was feasible — the warm-start law is vacuous")
	}
	if reused == 0 {
		t.Error("no warm re-solve replayed the seed — the warm-start law is vacuous")
	}
	if warmTotal*2 > coldTotal {
		t.Errorf("warm re-solves ran %d evaluations in aggregate, not under half of cold's %d",
			warmTotal, coldTotal)
	}
}
