package report

import (
	"strings"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

func solvedDesign(t *testing.T) *model.Design {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{Registry: scenarios.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 100 * units.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &sol.Design
}

func TestDesignReportContents(t *testing.T) {
	d := solvedDesign(t)
	var sb strings.Builder
	if err := Design(&sb, d, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"tier application — rC (machineA/linux/appserverA)",
		"actives 6 (5 for load + 1 extra)",
		"mechanisms: maintenanceA=bronze",
		"machineA       6 active × 2640",
		"appserverA     6 active × 1700",
		"maintenanceA   6 instances × 380",
		"tier total     28320",
		"machineA/hard",
		"design total: cost 28320/yr",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDesignReportWithSpares(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	td := model.TierDesign{
		TierName:  "application",
		Option:    &svc.Tiers[0].Options[0],
		NActive:   2,
		NSpare:    1,
		NMinPerf:  2,
		MinActive: 2,
		SpareWarm: 0,
		Mechanisms: []model.MechSetting{{
			Mechanism: inf.Mechanisms["maintenanceA"],
			Values:    map[string]model.ParamValue{"level": model.EnumValue("bronze")},
		}},
	}
	d := &model.Design{Tiers: []model.TierDesign{td}}
	var sb strings.Builder
	if err := Design(&sb, d, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"spares 1 (cold)",
		"2 active × 2640 + 1 spare × 2400",
		"maintenanceA   3 instances × 380",
		"tier total     12220",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDesignReportInvalidDesign(t *testing.T) {
	var sb strings.Builder
	if err := Design(&sb, &model.Design{}, Options{}); err == nil {
		t.Error("empty design should fail")
	}
}

func TestDescribeModel(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := DescribeModel(&sb, inf, svc, 12); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"infrastructure: 9 components, 3 mechanisms, 9 resource types",
		"mechanism checkpoint   2 parameter(s), 300 setting combination(s)",
		"resource  rH           machineA/linux/mpi",
		`service "scientific": 1 tier(s), job size 10000`,
		"option rH",
		"1200 mech combos",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeModelErrors(t *testing.T) {
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := DescribeModel(&sb, nil, nil, 1); err == nil {
		t.Error("nil models should fail")
	}
	svc, err := scenarios.Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	if err := DescribeModel(&sb, inf, svc, -1); err == nil {
		t.Error("negative redundancy should fail")
	}
	unresolved, err := model.ParseService(scenarios.ScientificSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := DescribeModel(&sb, inf, unresolved, 1); err == nil {
		t.Error("unresolved service should fail")
	}
}
