package report

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"aved/internal/model"
)

// DescribeModel writes an inventory of an infrastructure and service
// model pair: components with failure modes, mechanisms with their
// parameter counts, resource stacks, and — per tier — an estimate of
// the design-space cardinality the search faces (the paper's argument
// that the space is too large to explore manually, made concrete).
//
// The per-tier estimate counts resource options × allowed active
// counts × a spare allowance (0..maxRedundancy) × spare warmth levels
// × mechanism parameter combinations.
func DescribeModel(w io.Writer, inf *model.Infrastructure, svc *model.Service, maxRedundancy int) error {
	if inf == nil || svc == nil {
		return fmt.Errorf("report: describe needs both models")
	}
	if maxRedundancy < 0 {
		return fmt.Errorf("report: negative redundancy bound %d", maxRedundancy)
	}
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "infrastructure: %d components, %d mechanisms, %d resource types\n",
		len(inf.Components), len(inf.Mechanisms), len(inf.Resources))
	for _, name := range inf.ComponentNames() {
		c := inf.Components[name]
		fmt.Fprintf(bw, "  component %-12s cost %s/%s, %d failure mode(s)\n",
			c.Name, c.CostInactive, c.CostActive, len(c.Failures))
	}
	for _, name := range inf.MechanismNames() {
		m := inf.Mechanisms[name]
		fmt.Fprintf(bw, "  mechanism %-12s %d parameter(s), %d setting combination(s)\n",
			m.Name, len(m.Params), mechanismSettings(m))
	}
	for _, name := range inf.ResourceNames() {
		rt := inf.Resources[name]
		stack := make([]string, len(rt.Components))
		for i, rc := range rt.Components {
			stack[i] = rc.Component.Name
		}
		fmt.Fprintf(bw, "  resource  %-12s %s\n", rt.Name, strings.Join(stack, "/"))
	}

	fmt.Fprintf(bw, "service %q: %d tier(s)", svc.Name, len(svc.Tiers))
	if svc.HasJobSize {
		fmt.Fprintf(bw, ", job size %g", svc.JobSize)
	}
	fmt.Fprintln(bw)
	grand := 1.0
	for ti := range svc.Tiers {
		tier := &svc.Tiers[ti]
		tierTotal := 0.0
		for oi := range tier.Options {
			opt := &tier.Options[oi]
			rt := opt.ResourceType()
			if rt == nil {
				return fmt.Errorf("report: service not resolved (tier %q)", tier.Name)
			}
			counts := opt.NActive.Len()
			combos := 1
			for _, mechName := range rt.Mechanisms() {
				combos *= mechanismSettings(inf.Mechanisms[mechName])
			}
			warmth := len(rt.Components) + 1
			optSpace := float64(counts) * float64(maxRedundancy+1) * float64(warmth) * float64(combos)
			tierTotal += optSpace
			fmt.Fprintf(bw, "  tier %-12s option %-4s ≈ %.3g designs (%d counts × %d spare levels × %d warmth × %d mech combos)\n",
				tier.Name, opt.Resource, optSpace, counts, maxRedundancy+1, warmth, combos)
		}
		fmt.Fprintf(bw, "  tier %-12s total ≈ %.3g designs\n", tier.Name, tierTotal)
		grand *= tierTotal
	}
	if len(svc.Tiers) > 1 {
		fmt.Fprintf(bw, "cross-tier combinations ≈ %.3g\n", grand)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// mechanismSettings counts a mechanism's parameter-value combinations.
func mechanismSettings(m *model.Mechanism) int {
	total := 1
	for _, p := range m.Params {
		if p.IsEnum() {
			total *= len(p.Enum)
		} else {
			total *= p.Grid.Len()
		}
	}
	return total
}
