// Package report renders human-readable design reports: per-tier
// design parameters, the annual cost broken down by component,
// operational mode and mechanism, and the expected downtime broken
// down by failure mode — the "complete picture" of a design that the
// paper argues an automated engine should give its user.
package report

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"aved/internal/avail"
	"aved/internal/cost"
	"aved/internal/model"
	"aved/internal/units"
)

// Options configure report rendering.
type Options struct {
	// Engine produces the availability breakdown. Defaults to the
	// analytic Markov engine.
	Engine avail.Engine
}

// Design writes a complete report for a design.
func Design(w io.Writer, d *model.Design, opts Options) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	eng := opts.Engine
	if eng == nil {
		eng = avail.NewMarkovEngine()
	}
	tms, err := avail.BuildModels(d)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	res, err := eng.Evaluate(tms)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	bw := bufio.NewWriter(w)
	var totalCost units.Money
	for i := range d.Tiers {
		td := &d.Tiers[i]
		tierCost, err := tierSection(bw, td, &res.Tiers[i])
		if err != nil {
			return err
		}
		totalCost += tierCost
	}
	fmt.Fprintf(bw, "design total: cost %s/yr, expected downtime %.2f min/yr (availability %.5f%%)\n",
		totalCost, res.DowntimeMinutes, res.Availability*100)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// tierSection writes one tier's block and reports its annual cost.
func tierSection(w *bufio.Writer, td *model.TierDesign, tr *avail.TierResult) (units.Money, error) {
	rt := td.Resource()
	stack := make([]string, len(rt.Components))
	for i, rc := range rt.Components {
		stack[i] = rc.Component.Name
	}
	fmt.Fprintf(w, "tier %s — %s (%s)\n", td.TierName, rt.Name, strings.Join(stack, "/"))
	fmt.Fprintf(w, "  actives %d (%d for load", td.NActive, td.NMinPerf)
	if td.NExtra() > 0 {
		fmt.Fprintf(w, " + %d extra", td.NExtra())
	}
	fmt.Fprintf(w, "), spares %d", td.NSpare)
	if td.NSpare > 0 {
		if td.SpareWarm == 0 {
			fmt.Fprint(w, " (cold)")
		} else if td.SpareWarm == len(rt.Components) {
			fmt.Fprint(w, " (hot)")
		} else {
			fmt.Fprintf(w, " (warm %d/%d)", td.SpareWarm, len(rt.Components))
		}
	}
	fmt.Fprintln(w)
	if len(td.Mechanisms) > 0 {
		labels := make([]string, len(td.Mechanisms))
		for i, ms := range td.Mechanisms {
			labels[i] = ms.Label()
		}
		fmt.Fprintf(w, "  mechanisms: %s\n", strings.Join(labels, ", "))
	}

	// Cost breakdown.
	fmt.Fprintln(w, "  cost/yr:")
	var total units.Money
	for i, rc := range rt.Components {
		active := rc.Component.Cost(model.ModeActive)
		line := units.Money(float64(td.NActive) * float64(active))
		fmt.Fprintf(w, "    %-14s %d active × %s", rc.Component.Name, td.NActive, active)
		if td.NSpare > 0 {
			spare := rc.Component.Cost(td.SpareComponentMode(i))
			line += units.Money(float64(td.NSpare) * float64(spare))
			fmt.Fprintf(w, " + %d spare × %s", td.NSpare, spare)
		}
		fmt.Fprintf(w, " = %s\n", line)
		total += line
	}
	for _, ms := range td.Mechanisms {
		per, err := ms.CostPerInstance()
		if err != nil {
			return 0, fmt.Errorf("report: %w", err)
		}
		line := units.Money(float64(td.Total()) * float64(per))
		fmt.Fprintf(w, "    %-14s %d instances × %s = %s\n", ms.Mechanism.Name, td.Total(), per, line)
		total += line
	}
	fmt.Fprintf(w, "    tier total     %s\n", total)

	// Cross-check the rendered arithmetic against the cost model.
	if full, err := cost.Tier(td); err != nil {
		return 0, fmt.Errorf("report: %w", err)
	} else if full != total {
		return 0, fmt.Errorf("report: cost breakdown (%s) disagrees with cost model (%s)", total, full)
	}

	// Availability breakdown.
	fmt.Fprintln(w, "  downtime/yr:")
	for _, mc := range tr.Contributions {
		fmt.Fprintf(w, "    %-24s %8.2f min (%.2f failures/yr)\n", mc.Name, mc.Minutes(), mc.EventsPerYear)
	}
	fmt.Fprintf(w, "    tier total               %8.2f min\n", tr.DowntimeMinutes)
	return total, nil
}
