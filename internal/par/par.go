// Package par is the shared worker-pool helper behind Aved's parallel
// evaluation paths: Monte-Carlo replications (internal/sim), frontier
// construction (internal/core) and requirement sweeps (internal/sweep,
// internal/sensitivity). All of those fan independent work items over a
// bounded pool and write results by index, so callers stay bit-identical
// to their sequential order regardless of the worker count.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aved/internal/obs"
)

// Workers resolves a configured worker count: n when positive, else
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (workers ≤ 0 means GOMAXPROCS). Items are claimed
// dynamically, so fn must not depend on execution order; determinism
// comes from writing each result into its own index. Every item is
// attempted even when some fail, and the returned error is the one from
// the lowest failing index — the same error a sequential loop would hit
// first — so error reporting is independent of the worker count.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// Timing attributes a pool fan's wall clock: Wait is submitted→claimed
// per item (how long work sat behind busy workers — the queue-wait that
// eats parallel speedup), Run is claimed→done (the item's own
// execution). Both observe milliseconds. A nil *Timing disables timing
// entirely: ForEachTimedCtx with nil Timing is exactly ForEachCtx, no
// clock reads, no allocations.
type Timing struct {
	Wait *obs.Histogram
	Run  *obs.Histogram
}

// NewTiming builds a Timing feeding reg's "par.wait_ms" and
// "par.run_ms" histograms, or nil when reg is nil — nil-in-nil-out so
// callers can thread an optional registry without guarding.
func NewTiming(reg *obs.Registry) *Timing {
	if reg == nil {
		return nil
	}
	return &Timing{
		Wait: reg.Histogram("par.wait_ms"),
		Run:  reg.Histogram("par.run_ms"),
	}
}

// ForEachCtx is ForEach with cancellation: each worker checks ctx once
// per item claim, so a cancelled context stops the pool after at most
// one in-flight item per worker instead of draining the remaining
// items. A skipped item counts as failing with ctx.Err() at its index,
// so the lowest-index error rule covers cancellation too: fn errors
// below the cancellation point still win, and a run cancelled before
// any fn error reports ctx.Err(). The ctx check is a non-blocking read
// of a captured Done channel — context.Background() (nil Done) makes
// ForEachCtx exactly ForEach, with no per-item overhead or allocation.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	done := ctx.Done()
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					if firstErr == nil {
						firstErr = ctx.Err()
					}
					return firstErr
				default:
				}
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if done != nil {
					select {
					case <-done:
						record(i, ctx.Err())
						return
					default:
					}
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ForEachTimedCtx is ForEachCtx with per-item wall-clock attribution:
// every item observes its queue wait (fan start → claim) on t.Wait and
// its execution (claim → done) on t.Run. Claim order is dynamic, so
// the wait distribution is scheduling-dependent — only its shape is
// meaningful, and determinism tests must not depend on it. A nil t
// falls through to ForEachCtx untouched, keeping the disabled path
// free of clock reads.
func ForEachTimedCtx(ctx context.Context, workers, n int, t *Timing, fn func(i int) error) error {
	if t == nil {
		return ForEachCtx(ctx, workers, n, fn)
	}
	start := time.Now()
	timed := func(i int) error {
		claimed := time.Now()
		t.Wait.Observe(float64(claimed.Sub(start)) / float64(time.Millisecond))
		err := fn(i)
		t.Run.Observe(float64(time.Since(claimed)) / float64(time.Millisecond))
		return err
	}
	return ForEachCtx(ctx, workers, n, timed)
}
