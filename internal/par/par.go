// Package par is the shared worker-pool helper behind Aved's parallel
// evaluation paths: Monte-Carlo replications (internal/sim), frontier
// construction (internal/core) and requirement sweeps (internal/sweep,
// internal/sensitivity). All of those fan independent work items over a
// bounded pool and write results by index, so callers stay bit-identical
// to their sequential order regardless of the worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: n when positive, else
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (workers ≤ 0 means GOMAXPROCS). Items are claimed
// dynamically, so fn must not depend on execution order; determinism
// comes from writing each result into its own index. Every item is
// attempted even when some fail, and the returned error is the one from
// the lowest failing index — the same error a sequential loop would hit
// first — so error reporting is independent of the worker count.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
