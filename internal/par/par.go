// Package par is the shared worker-pool helper behind Aved's parallel
// evaluation paths: Monte-Carlo replications (internal/sim), frontier
// construction (internal/core) and requirement sweeps (internal/sweep,
// internal/sensitivity). All of those fan independent work items over a
// bounded pool and write results by index, so callers stay bit-identical
// to their sequential order regardless of the worker count.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: n when positive, else
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (workers ≤ 0 means GOMAXPROCS). Items are claimed
// dynamically, so fn must not depend on execution order; determinism
// comes from writing each result into its own index. Every item is
// attempted even when some fail, and the returned error is the one from
// the lowest failing index — the same error a sequential loop would hit
// first — so error reporting is independent of the worker count.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cancellation: each worker checks ctx once
// per item claim, so a cancelled context stops the pool after at most
// one in-flight item per worker instead of draining the remaining
// items. A skipped item counts as failing with ctx.Err() at its index,
// so the lowest-index error rule covers cancellation too: fn errors
// below the cancellation point still win, and a run cancelled before
// any fn error reports ctx.Err(). The ctx check is a non-blocking read
// of a captured Done channel — context.Background() (nil Done) makes
// ForEachCtx exactly ForEach, with no per-item overhead or allocation.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	done := ctx.Done()
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					if firstErr == nil {
						firstErr = ctx.Err()
					}
					return firstErr
				default:
				}
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if done != nil {
					select {
					case <-done:
						record(i, ctx.Err())
						return
					default:
					}
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
