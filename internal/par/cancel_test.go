package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCtxPreCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// At most one in-flight item per worker may slip through the
		// claim-time check; a pre-canceled context admits none.
		if got := ran.Load(); got != 0 {
			t.Errorf("workers=%d: %d items ran under a pre-canceled context", workers, got)
		}
	}
}

func TestForEachCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 10_000, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The pool must stop early: claimed-but-unstarted items are
		// skipped once the Done channel closes.
		if got := ran.Load(); got >= 10_000 {
			t.Errorf("workers=%d: all %d items ran despite mid-run cancellation", workers, got)
		}
	}
}

// TestForEachCtxFnErrorBeatsLaterCancel pins the lowest-index rule
// across the two error sources: an fn error at a low index wins over
// the cancellation recorded at the higher indexes that were skipped.
func TestForEachCtxFnErrorBeatsLaterCancel(t *testing.T) {
	sentinel := errors.New("sentinel")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 1, 100, func(i int) error {
		if i == 2 {
			cancel()
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the index-2 fn error to win over the cancellation", err)
	}
}

func TestForEachCtxBackgroundMatchesForEach(t *testing.T) {
	var a, b atomic.Int64
	if err := ForEach(4, 50, func(i int) error { a.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachCtx(context.Background(), 4, 50, func(i int) error { b.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Load() != b.Load() {
		t.Errorf("ForEach covered sum %d, ForEachCtx %d", a.Load(), b.Load())
	}
}
