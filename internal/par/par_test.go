package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 153
		counts := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if i%10 == 7 { // fails at 7, 17, 27, …
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7" {
			t.Errorf("workers=%d: err = %v, want item 7", workers, err)
		}
	}
}

func TestForEachDeterministicResults(t *testing.T) {
	// Writing by index yields the same output slice at any parallelism.
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 16} {
		out := make([]int, n)
		if err := ForEach(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], want[i])
			}
		}
	}
}
