// Package jobtime implements the paper's expected job-completion-time
// analysis (§4.2, Eq. 1) for applications of finite duration: the
// restart law relating a loss window and the system MTBF to the mean
// compute time needed per window of useful work, and the composition
// with checkpoint overhead and system availability into an expected
// wall-clock job time.
package jobtime

import (
	"fmt"
	"math"

	"aved/internal/avail"
	"aved/internal/units"
)

// PFail reports Eq. 1's P_f = 1 − e^{−lw/mtbf}: the probability of at
// least one failure within a loss window.
func PFail(lw, mtbf units.Duration) (float64, error) {
	if lw <= 0 {
		return 0, fmt.Errorf("jobtime: loss window must be positive, got %v", lw)
	}
	if mtbf <= 0 {
		return 0, fmt.Errorf("jobtime: mtbf must be positive, got %v", mtbf)
	}
	return 1 - math.Exp(-lw.Hours()/mtbf.Hours()), nil
}

// TLw reports Eq. 1: T_lw = mtbf · P_f / (1 − P_f), the mean compute
// time needed to execute lw of useful work when every failure restarts
// the window. Algebraically T_lw = mtbf · (e^{lw/mtbf} − 1).
func TLw(lw, mtbf units.Duration) (units.Duration, error) {
	if lw <= 0 {
		return 0, fmt.Errorf("jobtime: loss window must be positive, got %v", lw)
	}
	if mtbf <= 0 {
		return 0, fmt.Errorf("jobtime: mtbf must be positive, got %v", mtbf)
	}
	x := lw.Hours() / mtbf.Hours()
	return units.FromHours(mtbf.Hours() * math.Expm1(x)), nil
}

// RestartExpansion reports T_lw / lw ≥ 1: the factor by which failures
// inflate compute time. It tends to 1 for loss windows far below the
// MTBF and grows exponentially beyond it.
func RestartExpansion(lw, mtbf units.Duration) (float64, error) {
	t, err := TLw(lw, mtbf)
	if err != nil {
		return 0, err
	}
	return t.Hours() / lw.Hours(), nil
}

// SystemMTBF reports the mean time between work-losing failures for a
// tier whose computation spans n active resources: any failure of any
// active resource loses work, so rates add across resources and modes.
func SystemMTBF(modes []avail.Mode, n int) (units.Duration, error) {
	if n < 1 {
		return 0, fmt.Errorf("jobtime: need at least one active resource, got %d", n)
	}
	var rate float64 // failures per hour
	for _, m := range modes {
		if m.MTBF <= 0 {
			return 0, fmt.Errorf("jobtime: mode %q has non-positive MTBF", m.Name)
		}
		rate += 1 / m.MTBF.Hours()
	}
	rate *= float64(n)
	if rate <= 0 {
		return 0, fmt.Errorf("jobtime: no failure modes")
	}
	return units.FromHours(1 / rate), nil
}

// Params collects everything the expected-job-time composition needs.
type Params struct {
	// JobSize is the total work in application-specific units.
	JobSize float64
	// PerfPerHour is the tier's failure-free throughput in work units
	// per hour with the design's active resources.
	PerfPerHour float64
	// OverheadFactor is the availability-mechanism execution-time
	// multiplier (≥ 1), e.g. checkpointing overhead.
	OverheadFactor float64
	// LossWindow is the maximum work lost per failure, in time units.
	// Zero means no checkpointing: the whole remaining job is lost on
	// failure (the paper's worst case).
	LossWindow units.Duration
	// SystemMTBF is the mean time between work-losing failures.
	SystemMTBF units.Duration
	// Availability is the fraction of time the system is up.
	Availability float64
}

// Expected reports the expected wall-clock job completion time: the
// failure-free compute time, inflated by mechanism overhead, by the
// Eq. 1 restart expansion, and by downtime (the paper's effective
// uptime T_eff = T_up · lw/T_lw).
func Expected(p Params) (units.Duration, error) {
	if p.JobSize <= 0 {
		return 0, fmt.Errorf("jobtime: job size must be positive, got %v", p.JobSize)
	}
	if p.PerfPerHour <= 0 {
		return 0, fmt.Errorf("jobtime: performance must be positive, got %v", p.PerfPerHour)
	}
	if p.OverheadFactor < 1 {
		return 0, fmt.Errorf("jobtime: overhead factor must be at least 1, got %v", p.OverheadFactor)
	}
	if p.Availability <= 0 || p.Availability > 1 {
		return 0, fmt.Errorf("jobtime: availability must be in (0, 1], got %v", p.Availability)
	}
	if p.SystemMTBF <= 0 {
		return 0, fmt.Errorf("jobtime: system MTBF must be positive, got %v", p.SystemMTBF)
	}
	computeHours := p.JobSize / p.PerfPerHour * p.OverheadFactor
	lwHours := p.LossWindow.Hours()
	if lwHours <= 0 {
		// No checkpointing: the loss window is the whole job.
		lwHours = computeHours
	}
	// Work in float64 throughout: a loss window far beyond the MTBF
	// sends the restart expansion through the exponential, which would
	// overflow units.Duration. Such designs are hopeless, not invalid,
	// so the result clamps to MaxExpected instead of erroring.
	x := lwHours / p.SystemMTBF.Hours()
	var expansion float64
	if x > 500 {
		expansion = math.Inf(1)
	} else {
		expansion = math.Expm1(x) / x
	}
	wall := computeHours * expansion / p.Availability
	if math.IsNaN(wall) {
		return 0, fmt.Errorf("jobtime: expected time diverged (compute %vh, expansion %v)", computeHours, expansion)
	}
	if wall > MaxExpected.Hours() {
		return MaxExpected, nil
	}
	return units.FromHours(wall), nil
}

// MaxExpected is the ceiling Expected reports for designs whose
// completion time overflows any practical horizon (about 114 years).
// It keeps hopeless candidates comparable without overflowing
// units.Duration during a search.
const MaxExpected = units.Duration(1e6 * float64(units.Hour))
