package jobtime

import (
	"math"
	"testing"
	"testing/quick"

	"aved/internal/avail"
	"aved/internal/sim"
	"aved/internal/units"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func TestPFail(t *testing.T) {
	// lw = mtbf: P = 1 - e^{-1}.
	p, err := PFail(10*units.Hour, 10*units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(p, 1-math.Exp(-1), 1e-12) {
		t.Errorf("PFail = %v, want %v", p, 1-math.Exp(-1))
	}
	if _, err := PFail(0, units.Hour); err == nil {
		t.Error("zero loss window should fail")
	}
	if _, err := PFail(units.Hour, 0); err == nil {
		t.Error("zero mtbf should fail")
	}
}

func TestTLwMatchesPaperForm(t *testing.T) {
	// Eq. 1: T_lw = mtbf·P/(1−P) must equal mtbf·(e^{lw/mtbf}−1).
	cases := []struct{ lwH, mtbfH float64 }{
		{1, 100}, {10, 100}, {100, 100}, {200, 100}, {0.01, 1},
	}
	for _, c := range cases {
		lw := units.FromHours(c.lwH)
		mtbf := units.FromHours(c.mtbfH)
		p, err := PFail(lw, mtbf)
		if err != nil {
			t.Fatal(err)
		}
		viaP := c.mtbfH * p / (1 - p)
		got, err := TLw(lw, mtbf)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(got.Hours(), viaP, 1e-9) {
			t.Errorf("TLw(%v,%v) = %v, via P form %v", c.lwH, c.mtbfH, got.Hours(), viaP)
		}
	}
}

func TestRestartExpansionLimits(t *testing.T) {
	// lw << mtbf: expansion → 1.
	e, err := RestartExpansion(units.FromHours(0.001), units.FromHours(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(e, 1, 1e-5) {
		t.Errorf("tiny window expansion = %v, want ≈ 1", e)
	}
	// lw = mtbf: expansion = e − 1 ≈ 1.718.
	e, err = RestartExpansion(units.Hour, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(e, math.E-1, 1e-9) {
		t.Errorf("lw = mtbf expansion = %v, want e−1", e)
	}
}

func TestRestartExpansionMonotoneProperty(t *testing.T) {
	// Expansion grows with the loss window and shrinks with MTBF.
	f := func(a, b uint8) bool {
		lw1 := float64(a%50) + 1
		lw2 := lw1 + float64(b%50) + 1
		mtbf := units.FromHours(40)
		e1, err1 := RestartExpansion(units.FromHours(lw1), mtbf)
		e2, err2 := RestartExpansion(units.FromHours(lw2), mtbf)
		if err1 != nil || err2 != nil {
			return false
		}
		return e2 > e1 && e1 >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRestartExpansionMatchesSimulation(t *testing.T) {
	// Monte-Carlo cross-check of Eq. 1 via the restart-law simulator.
	mtbf, lw := 80.0, 30.0
	want, err := TLw(units.FromHours(lw), units.FromHours(mtbf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.SimulateRestart(23, mtbf, lw, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got, want.Hours(), 0.02) {
		t.Errorf("simulated T_lw = %v, Eq. 1 = %v", got, want.Hours())
	}
}

func TestSystemMTBF(t *testing.T) {
	modes := []avail.Mode{
		{Name: "hw", MTBF: units.FromHours(1000)},
		{Name: "sw", MTBF: units.FromHours(500)},
	}
	// Rate per resource = 1/1000 + 1/500 = 0.003; 10 resources → 0.03.
	got, err := SystemMTBF(modes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got.Hours(), 1/0.03, 1e-9) {
		t.Errorf("SystemMTBF = %v h, want %v", got.Hours(), 1/0.03)
	}
	if _, err := SystemMTBF(modes, 0); err == nil {
		t.Error("zero resources should fail")
	}
	if _, err := SystemMTBF(nil, 1); err == nil {
		t.Error("no modes should fail")
	}
}

func TestExpectedComposition(t *testing.T) {
	// 10000 units at 100 units/hour = 100 h of compute; overhead 1.25 →
	// 125 h; negligible failures and full availability keep it there.
	p := Params{
		JobSize:        10000,
		PerfPerHour:    100,
		OverheadFactor: 1.25,
		LossWindow:     units.FromHours(1),
		SystemMTBF:     units.FromHours(1e6),
		Availability:   1,
	}
	got, err := Expected(p)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got.Hours(), 125, 1e-6) {
		t.Errorf("Expected = %v h, want 125", got.Hours())
	}
	// Halving availability doubles wall time.
	p.Availability = 0.5
	got, err = Expected(p)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got.Hours(), 250, 1e-6) {
		t.Errorf("Expected at A=0.5 = %v h, want 250", got.Hours())
	}
}

func TestExpectedNoCheckpointing(t *testing.T) {
	// Without a loss window the whole job restarts on failure: with
	// compute = mtbf the expansion is e−1.
	p := Params{
		JobSize:        100,
		PerfPerHour:    1,
		OverheadFactor: 1,
		SystemMTBF:     units.FromHours(100),
		Availability:   1,
	}
	got, err := Expected(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (math.E - 1)
	if !relClose(got.Hours(), want, 1e-9) {
		t.Errorf("Expected = %v h, want %v", got.Hours(), want)
	}
}

func TestExpectedCheckpointingBeatsNone(t *testing.T) {
	// With failures every ~50 compute hours, checkpointing each hour
	// must beat losing the whole 100-hour job.
	base := Params{
		JobSize:        100,
		PerfPerHour:    1,
		OverheadFactor: 1,
		SystemMTBF:     units.FromHours(50),
		Availability:   1,
	}
	withCkpt := base
	withCkpt.LossWindow = units.FromHours(1)
	withCkpt.OverheadFactor = 1.1 // checkpointing is not free
	t0, err := Expected(base)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Expected(withCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if t1 >= t0 {
		t.Errorf("checkpointed job (%v) should beat unprotected job (%v)", t1, t0)
	}
}

func TestExpectedOptimalIntervalInterior(t *testing.T) {
	// The §5.2 shape: with overhead K/cpi and loss ∝ cpi, the best
	// checkpoint interval is interior, not an endpoint.
	mtbf := units.FromHours(20)
	eval := func(cpiHours float64) float64 {
		p := Params{
			JobSize:        1000,
			PerfPerHour:    10,
			OverheadFactor: math.Max((10.0/60)/cpiHours, 1), // 10-minute-equivalent overhead hinge
			LossWindow:     units.FromHours(cpiHours),
			SystemMTBF:     mtbf,
			Availability:   1,
		}
		d, err := Expected(p)
		if err != nil {
			t.Fatal(err)
		}
		return d.Hours()
	}
	short := eval(0.02) // ~1 minute: overhead dominates
	long := eval(24)    // a day: loss dominates
	mid := eval(0.5)    // 30 minutes
	if mid >= short || mid >= long {
		t.Errorf("interior interval (%.1f) should beat endpoints (%.1f, %.1f)", mid, short, long)
	}
}

func TestExpectedValidation(t *testing.T) {
	good := Params{
		JobSize:        1,
		PerfPerHour:    1,
		OverheadFactor: 1,
		LossWindow:     units.Hour,
		SystemMTBF:     units.Hour,
		Availability:   1,
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero job", func(p *Params) { p.JobSize = 0 }},
		{"zero perf", func(p *Params) { p.PerfPerHour = 0 }},
		{"overhead below one", func(p *Params) { p.OverheadFactor = 0.5 }},
		{"zero availability", func(p *Params) { p.Availability = 0 }},
		{"availability above one", func(p *Params) { p.Availability = 1.5 }},
		{"zero mtbf", func(p *Params) { p.SystemMTBF = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			tc.mutate(&p)
			if _, err := Expected(p); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := Expected(good); err != nil {
		t.Errorf("valid params failed: %v", err)
	}
}
