package server

import "math"

// The request fingerprint keys the server's singleflight table and
// response cache, in the same packed-128-bit style as the solver's
// candidate fingerprints: FNV-1a string folding plus SplitMix64
// avalanche mixing across two salted lanes. It covers every field that
// changes the solve outcome — specs, requirement, search and engine
// knobs — and deliberately excludes the delivery knobs (TimeoutMS,
// NoCache): a request retried with a longer deadline must join the
// flight its first attempt started, and hit the cache its first attempt
// filled. Workers is excluded for the same reason: every parallel path
// is bit-identical to its sequential order, so the worker count never
// changes the answer.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211

	saltLane   uint64 = 0x6a09e667f3bcc909
	saltGolden uint64 = 0x9e3779b97f4a7c15
)

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func (f reqFP) mixUint(v uint64) reqFP {
	return reqFP{
		hi: mix64(f.hi ^ mix64(v+saltGolden)),
		lo: mix64(f.lo ^ mix64(v+saltLane)),
	}
}

func (f reqFP) mixString(s string) reqFP {
	// Fold the length first so adjacent fields cannot alias by sliding
	// bytes across the boundary.
	return f.mixUint(uint64(len(s))).mixUint(hashString(fnvOffset64, s))
}

func (f reqFP) mixFloat(v float64) reqFP {
	return f.mixUint(math.Float64bits(v))
}

func (f reqFP) mixBool(v bool) reqFP {
	if v {
		return f.mixUint(1)
	}
	return f.mixUint(0)
}

// fingerprint derives the request's cache key.
func (r *SolveRequest) fingerprint() reqFP {
	fp := reqFP{hi: fnvOffset64, lo: mix64(fnvOffset64)}
	fp = fp.mixString(r.Paper)
	fp = fp.mixString(r.InfraSpec)
	fp = fp.mixString(r.ServiceSpec)
	fp = fp.mixFloat(r.Load)
	fp = fp.mixString(r.MaxDowntime)
	fp = fp.mixString(r.MaxJobTime)
	fp = fp.mixBool(r.Bronze)
	fp = fp.mixBool(r.WarmSpares)
	// Normalized so "" and "bnb" share a cache line. The design is
	// identical across modes, but the effort counters in a cached
	// response must match the mode the request asked for. validate()
	// rejects unknown modes before any fingerprinting.
	mode, _ := r.searchMode()
	fp = fp.mixUint(uint64(mode))
	fp = fp.mixString(r.Engine)
	fp = fp.mixUint(uint64(r.Seed))
	fp = fp.mixFloat(r.Years)
	fp = fp.mixUint(uint64(r.Reps))
	fp = fp.mixFloat(r.RelErr)
	fp = fp.mixUint(uint64(r.SimBatch))
	return fp
}
