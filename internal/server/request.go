package server

import (
	"errors"
	"fmt"
	"time"

	"aved"
)

// SolveRequest is the body of POST /v1/solve: the design problem (an
// infrastructure, a service and one requirement) plus per-request
// search and engine knobs. Specs come either inline (Fig. 3/4/5 text in
// InfraSpec/ServiceSpec) or as a built-in paper scenario name.
type SolveRequest struct {
	// Paper selects a built-in scenario: "apptier", "ecommerce" or
	// "scientific". Mutually exclusive with InfraSpec/ServiceSpec.
	Paper string `json:"paper,omitempty"`
	// InfraSpec is a Fig. 3 infrastructure spec.
	InfraSpec string `json:"infraSpec,omitempty"`
	// ServiceSpec is a Fig. 4/5 service spec.
	ServiceSpec string `json:"serviceSpec,omitempty"`

	// Load is the required throughput in service units (enterprise).
	Load float64 `json:"load,omitempty"`
	// MaxDowntime is the annual downtime budget, e.g. "100m" (enterprise).
	MaxDowntime string `json:"maxDowntime,omitempty"`
	// MaxJobTime is the job-completion-time budget, e.g. "50h" (jobs).
	MaxJobTime string `json:"maxJobTime,omitempty"`

	// Bronze pins maintenance contracts to bronze (the §5.2 setup).
	Bronze bool `json:"bronze,omitempty"`
	// WarmSpares explores per-component spare operational modes.
	WarmSpares bool `json:"warmSpares,omitempty"`
	// Workers bounds the search worker pool (0 = server default).
	Workers int `json:"workers,omitempty"`

	// Search selects the tier-search strategy: "" or "bnb" for
	// branch-and-bound, "exhaustive" for the reference grid walk. The
	// returned design is identical either way; only the effort counters
	// differ.
	Search string `json:"search,omitempty"`

	// Engine selects the availability engine: "", "markov", "exact" or
	// "sim".
	Engine string `json:"engine,omitempty"`
	// Seed, Years, Reps, RelErr and SimBatch configure -engine sim; they
	// mirror the CLI flags of the same names.
	Seed     int64   `json:"seed,omitempty"`
	Years    float64 `json:"years,omitempty"`
	Reps     int     `json:"reps,omitempty"`
	RelErr   float64 `json:"relErr,omitempty"`
	SimBatch int     `json:"simBatch,omitempty"`

	// TimeoutMS is the per-request deadline in milliseconds. Zero means
	// the server default; the server's max-timeout caps it either way.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// NoCache skips the response cache (the request still joins an
	// identical in-flight solve).
	NoCache bool `json:"noCache,omitempty"`
}

// TierReport describes one tier of the returned design.
type TierReport struct {
	Tier       string            `json:"tier"`
	Resource   string            `json:"resource"`
	Actives    int               `json:"actives"`
	Spares     int               `json:"spares"`
	SpareMode  string            `json:"spareMode,omitempty"`
	Mechanisms map[string]string `json:"mechanisms,omitempty"`
}

// SearchStats mirrors aved.Solution.Stats for the wire.
type SearchStats struct {
	Candidates      int    `json:"candidatesGenerated"`
	CostPruned      int    `json:"costPruned"`
	BoundPruned     int    `json:"boundPruned"`
	Evaluations     int    `json:"availabilityEvaluations"`
	EvalCacheHits   int    `json:"evalCacheHits"`
	WarmStartReuse  int    `json:"warmStartReuse,omitempty"`
	ModeMemoHits    uint64 `json:"modeMemoHits,omitempty"`
	ModeMemoSolves  uint64 `json:"modeMemoSolves,omitempty"`
	SimReplications uint64 `json:"simReplications,omitempty"`
	// PhaseNanos breaks the solve's wall time down by phase (the server
	// always runs timed — its shared metrics registry enables timing).
	// Entries overlap ("eval" time accrues inside the bracketed phases),
	// so they do not sum to the request's elapsed time.
	PhaseNanos map[string]int64 `json:"phaseNanos,omitempty"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	Label           string       `json:"label"`
	CostPerYear     float64      `json:"costPerYear"`
	Cost            string       `json:"cost"`
	DowntimeMinutes float64      `json:"downtimeMinutes,omitempty"`
	JobTimeHours    float64      `json:"jobTimeHours,omitempty"`
	Tiers           []TierReport `json:"tiers"`
	Stats           SearchStats  `json:"stats"`

	// Cached marks a response served from the cross-request cache;
	// Shared marks one computed by an identical concurrent request the
	// caller joined. ElapsedMS is this request's wall time either way.
	Cached    bool    `json:"cached,omitempty"`
	Shared    bool    `json:"shared,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Kind classifies it: "bad_request", "infeasible", "canceled",
	// "overloaded" or "internal".
	Kind string `json:"kind"`
	// Stats carries the partial search effort for canceled solves.
	Stats *SearchStats `json:"stats,omitempty"`
}

// validate checks the request shape without doing any parsing work.
func (r *SolveRequest) validate() error {
	switch {
	case r.Paper != "" && (r.InfraSpec != "" || r.ServiceSpec != ""):
		return errors.New("paper and inline specs are mutually exclusive")
	case r.Paper == "" && (r.InfraSpec == "" || r.ServiceSpec == ""):
		return errors.New("need either paper or both infraSpec and serviceSpec")
	}
	if r.MaxDowntime == "" && r.MaxJobTime == "" {
		return errors.New("need maxDowntime (with load) or maxJobTime")
	}
	if r.MaxDowntime != "" && r.MaxJobTime != "" {
		return errors.New("maxDowntime and maxJobTime are mutually exclusive")
	}
	if r.MaxDowntime != "" && r.Load <= 0 {
		return errors.New("enterprise requirements need load > 0")
	}
	if _, err := aved.ParseSearchMode(r.Search); err != nil {
		return err
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeoutMs %d", r.TimeoutMS)
	}
	return nil
}

// searchMode resolves the request's search strategy.
func (r *SolveRequest) searchMode() (aved.SearchMode, error) {
	return aved.ParseSearchMode(r.Search)
}

// models resolves the request's infrastructure and service.
func (r *SolveRequest) models() (*aved.Infrastructure, *aved.Service, error) {
	if r.Paper != "" {
		inf, err := aved.PaperInfrastructure()
		if err != nil {
			return nil, nil, err
		}
		var svc *aved.Service
		switch r.Paper {
		case "apptier":
			svc, err = aved.PaperApplicationTier(inf)
		case "ecommerce":
			svc, err = aved.PaperEcommerce(inf)
		case "scientific":
			svc, err = aved.PaperScientific(inf)
		default:
			return nil, nil, fmt.Errorf("unknown paper scenario %q (want apptier, ecommerce or scientific)", r.Paper)
		}
		if err != nil {
			return nil, nil, err
		}
		return inf, svc, nil
	}
	inf, err := aved.LoadInfrastructure(r.InfraSpec)
	if err != nil {
		return nil, nil, fmt.Errorf("infraSpec: %w", err)
	}
	svc, err := aved.LoadService(r.ServiceSpec, inf)
	if err != nil {
		return nil, nil, fmt.Errorf("serviceSpec: %w", err)
	}
	return inf, svc, nil
}

// requirements resolves the request's requirement.
func (r *SolveRequest) requirements() (aved.Requirements, error) {
	if r.MaxJobTime != "" {
		d, err := aved.ParseDuration(r.MaxJobTime)
		if err != nil {
			return aved.Requirements{}, fmt.Errorf("maxJobTime: %w", err)
		}
		return aved.Requirements{Kind: aved.ReqJob, MaxJobTime: d}, nil
	}
	d, err := aved.ParseDuration(r.MaxDowntime)
	if err != nil {
		return aved.Requirements{}, fmt.Errorf("maxDowntime: %w", err)
	}
	return aved.Requirements{Kind: aved.ReqEnterprise, Throughput: r.Load, MaxAnnualDowntime: d}, nil
}

// engine builds the configured availability engine; nil keeps the
// solver's default analytic engine.
func (r *SolveRequest) engine() (aved.Engine, error) {
	switch r.Engine {
	case "", "markov":
		return nil, nil
	case "exact":
		return aved.ExactEngine(), nil
	case "sim":
		seed, years, reps := r.Seed, r.Years, r.Reps
		if seed == 0 {
			seed = 1
		}
		if years == 0 {
			years = 1000
		}
		if reps == 0 {
			reps = 32
		}
		return aved.SimEngineAdaptive(seed, years, reps, r.Workers, r.RelErr, r.SimBatch)
	default:
		return nil, fmt.Errorf("unknown engine %q (want markov, exact or sim)", r.Engine)
	}
}

// timeout resolves the effective per-request deadline: the request's
// own, else the server default, capped by the server maximum in either
// case. Zero means no deadline.
func (r *SolveRequest) timeout(def, max time.Duration) time.Duration {
	d := time.Duration(r.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}

// buildResponse flattens a solution into the wire shape.
func buildResponse(sol *aved.Solution, req aved.Requirements) *SolveResponse {
	resp := &SolveResponse{
		Label:       sol.Design.Label(),
		CostPerYear: float64(sol.Cost),
		Cost:        sol.Cost.String(),
		Stats:       statsReport(sol.Stats),
	}
	if req.Kind == aved.ReqEnterprise {
		resp.DowntimeMinutes = sol.DowntimeMinutes
	} else {
		resp.JobTimeHours = sol.JobTime.Hours()
	}
	for i := range sol.Design.Tiers {
		td := &sol.Design.Tiers[i]
		tr := TierReport{
			Tier:     td.TierName,
			Resource: td.Resource().Name,
			Actives:  td.NActive,
			Spares:   td.NSpare,
		}
		if td.NSpare > 0 {
			switch td.SpareWarm {
			case 0:
				tr.SpareMode = "cold"
			case len(td.Resource().Components):
				tr.SpareMode = "hot"
			default:
				tr.SpareMode = fmt.Sprintf("warm%d", td.SpareWarm)
			}
		}
		for _, ms := range td.Mechanisms {
			for name, v := range ms.Values {
				if tr.Mechanisms == nil {
					tr.Mechanisms = map[string]string{}
				}
				tr.Mechanisms[ms.Mechanism.Name+"."+name] = v.String()
			}
		}
		resp.Tiers = append(resp.Tiers, tr)
	}
	return resp
}

func statsReport(st aved.Stats) SearchStats {
	return SearchStats{
		Candidates:      st.CandidatesGenerated,
		CostPruned:      st.CostPruned,
		BoundPruned:     st.BoundPruned,
		Evaluations:     st.Evaluations,
		EvalCacheHits:   st.EvalCacheHits,
		WarmStartReuse:  st.WarmStartReuse,
		ModeMemoHits:    st.ModeMemoHits,
		ModeMemoSolves:  st.ModeMemoSolves,
		SimReplications: st.SimReplications,
		PhaseNanos:      st.PhaseNanos,
	}
}
