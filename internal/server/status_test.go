package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"aved"
)

func getStatus(t *testing.T, h http.Handler) StatusResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp StatusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("status body %s: %v", rec.Body.String(), err)
	}
	return resp
}

// pollStatus re-reads /v1/status until ok returns true or the deadline
// passes, returning the last snapshot either way.
func pollStatus(t *testing.T, h http.Handler, ok func(StatusResponse) bool) (StatusResponse, bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp := getStatus(t, h)
		if ok(resp) {
			return resp, true
		}
		if time.Now().After(deadline) {
			return resp, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatusIdle(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	resp := getStatus(t, s.Handler())
	if resp.Status != "ok" || resp.Running != 0 || len(resp.InFlight) != 0 {
		t.Errorf("idle status = %+v, want ok with nothing in flight", resp)
	}
}

// TestStatusQueuedSolve pins the admission-side view: a request waiting
// for a slot appears in /v1/status with phase "queued" and its request
// fingerprint, and disappears once it completes.
func TestStatusQueuedSolve(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 4, CacheSize: 0})
	defer s.Close()
	h := s.Handler()
	s.sem <- struct{}{} // occupy the only slot; the request must queue

	done := make(chan *SolveResponse, 1)
	go func() { done <- decodeSolve(t, post(t, h, "/v1/solve", apptierBody)) }()

	resp, ok := pollStatus(t, h, func(r StatusResponse) bool {
		return len(r.InFlight) == 1 && r.InFlight[0].Phase == "queued"
	})
	if !ok {
		t.Fatalf("queued request never appeared in /v1/status: %+v", resp)
	}
	ent := resp.InFlight[0]
	if ent.Kind != "solve" {
		t.Errorf("kind = %q, want solve", ent.Kind)
	}
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(ent.FP) {
		t.Errorf("fp = %q, want 32 hex digits", ent.FP)
	}
	if ent.ElapsedMS < 0 {
		t.Errorf("elapsedMs = %v, want >= 0", ent.ElapsedMS)
	}

	<-s.sem // release the slot; the solve runs and deregisters
	<-done
	if resp, ok := pollStatus(t, h, func(r StatusResponse) bool {
		return len(r.InFlight) == 0
	}); !ok {
		t.Errorf("completed solve still listed: %+v", resp)
	}
}

// TestStatusLiveSolve drives a deliberately slow solve (simulation
// engine, large replication budget, bounded by its own deadline) and
// watches /v1/status catch it mid-flight: past admission, in "bind" or
// a solver phase mirrored from the trace stream.
func TestStatusLiveSolve(t *testing.T) {
	s := New(Config{CacheSize: 0})
	defer s.Close()
	h := s.Handler()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Same shape as TestSolveDeadlinePrompt, with a deadline long
		// enough to observe the request in flight.
		post(t, h, "/v1/solve", `{"paper":"apptier","load":1000,"maxDowntime":"100m",
			"engine":"sim","years":5000,"reps":4096,"timeoutMs":3000}`)
	}()

	resp, ok := pollStatus(t, h, func(r StatusResponse) bool {
		return len(r.InFlight) == 1 && r.InFlight[0].Phase != "queued" && r.InFlight[0].Phase != ""
	})
	if !ok {
		t.Fatalf("running solve never showed a live phase: %+v", resp)
	}
	switch ph := resp.InFlight[0].Phase; ph {
	case "bind", "search", "tier-search", "bound", "frontier", "combine", "job-search":
	default:
		t.Errorf("unexpected live phase %q", ph)
	}
	<-done
	if resp, ok := pollStatus(t, h, func(r StatusResponse) bool {
		return len(r.InFlight) == 0
	}); !ok {
		t.Errorf("finished solve still listed: %+v", resp)
	}
}

func TestStatusDraining(t *testing.T) {
	s := New(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp := getStatus(t, s.Handler()); resp.Status != "draining" {
		t.Errorf("status after shutdown = %q, want draining", resp.Status)
	}
}

// TestProgressTracer pins the event→entry mirroring /v1/status relies
// on, without racing a real sweep: phase.start moves the phase,
// search.start maps to "search", and sweep.point events advance the
// grid counters.
func TestProgressTracer(t *testing.T) {
	e := &inflightEntry{}
	e.setPhase("queued")
	tr := e.progressTracer()

	tr.Emit(aved.TraceEvent{Ev: aved.EvSearchStart})
	if p := e.phase.Load().(string); p != "search" {
		t.Errorf("phase after search.start = %q", p)
	}
	tr.Emit(aved.TraceEvent{Ev: aved.EvPhaseStart, Phase: "tier-search"})
	if p := e.phase.Load().(string); p != "tier-search" {
		t.Errorf("phase after phase.start = %q", p)
	}
	for i := 0; i < 3; i++ {
		tr.Emit(aved.TraceEvent{Ev: aved.EvSweepPoint, Index: i, Total: 20})
	}
	if done, total := e.cellsDone.Load(), e.cellsTotal.Load(); done != 3 || total != 20 {
		t.Errorf("cells = %d/%d, want 3/20", done, total)
	}
	// Events the tracer does not mirror must not disturb the state.
	tr.Emit(aved.TraceEvent{Ev: aved.EvEvalMiss})
	if p := e.phase.Load().(string); p != "tier-search" {
		t.Errorf("phase after eval.miss = %q", p)
	}
}
