package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const apptierBody = `{"paper":"apptier","load":1000,"maxDowntime":"100m"}`

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeSolve(t *testing.T, rec *httptest.ResponseRecorder) *SolveResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder, wantCode int, wantKind string) *ErrorResponse {
	t.Helper()
	if rec.Code != wantCode {
		t.Fatalf("status %d, want %d; body %s", rec.Code, wantCode, rec.Body.String())
	}
	var resp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding error response: %v", err)
	}
	if resp.Kind != wantKind {
		t.Fatalf("kind %q, want %q (error: %s)", resp.Kind, wantKind, resp.Error)
	}
	return &resp
}

func TestSolveApptier(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	resp := decodeSolve(t, post(t, s.Handler(), "/v1/solve", apptierBody))
	if resp.Label == "" || resp.CostPerYear <= 0 {
		t.Errorf("empty solution: %+v", resp)
	}
	if resp.DowntimeMinutes <= 0 || resp.DowntimeMinutes > 100 {
		t.Errorf("downtime %.2f min outside (0, 100]", resp.DowntimeMinutes)
	}
	if resp.Stats.Candidates == 0 || resp.Stats.Evaluations == 0 {
		t.Errorf("missing search stats: %+v", resp.Stats)
	}
	if resp.Cached || resp.Shared {
		t.Errorf("first solve marked cached=%v shared=%v", resp.Cached, resp.Shared)
	}
}

// TestSolveSearchModesAgree: the explicit exhaustive walk returns the
// same design as the default branch-and-bound, which in turn reports
// bound prunes and strictly fewer engine evaluations.
func TestSolveSearchModesAgree(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	bnb := decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
	ex := decodeSolve(t, post(t, h, "/v1/solve",
		`{"paper":"apptier","load":1000,"maxDowntime":"100m","search":"exhaustive"}`))
	if ex.Cached {
		t.Fatal("exhaustive request hit the bnb cache line")
	}
	if bnb.Label != ex.Label || bnb.CostPerYear != ex.CostPerYear || bnb.DowntimeMinutes != ex.DowntimeMinutes {
		t.Errorf("search modes disagree: bnb %+v vs exhaustive %+v", bnb, ex)
	}
	if bnb.Stats.BoundPruned == 0 {
		t.Errorf("default search reports no bound prunes: %+v", bnb.Stats)
	}
	if ex.Stats.BoundPruned != 0 {
		t.Errorf("exhaustive search reports bound prunes: %+v", ex.Stats)
	}
	if bnb.Stats.Evaluations >= ex.Stats.Evaluations {
		t.Errorf("bnb evaluations %d not below exhaustive %d",
			bnb.Stats.Evaluations, ex.Stats.Evaluations)
	}
}

func TestSolveScientificJob(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	resp := decodeSolve(t, post(t, s.Handler(), "/v1/solve",
		`{"paper":"scientific","maxJobTime":"50h","bronze":true}`))
	if resp.JobTimeHours <= 0 || resp.JobTimeHours > 50 {
		t.Errorf("job time %.2f h outside (0, 50]", resp.JobTimeHours)
	}
}

func TestSolveInlineSpecRejected(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	for name, body := range map[string]string{
		"no specs":       `{"load":1000,"maxDowntime":"100m"}`,
		"no requirement": `{"paper":"apptier"}`,
		"both reqs":      `{"paper":"apptier","load":1,"maxDowntime":"1m","maxJobTime":"1h"}`,
		"unknown paper":  `{"paper":"nope","load":1000,"maxDowntime":"100m"}`,
		"unknown field":  `{"paper":"apptier","load":1000,"maxDowntime":"100m","zzz":1}`,
		"bad engine":     `{"paper":"apptier","load":1000,"maxDowntime":"100m","engine":"quantum"}`,
		"bad search":     `{"paper":"apptier","load":1000,"maxDowntime":"100m","search":"dfs"}`,
		"bad duration":   `{"paper":"apptier","load":1000,"maxDowntime":"100 parsecs"}`,
	} {
		rec := post(t, h, "/v1/solve", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, rec.Code, rec.Body.String())
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := post(t, s.Handler(), "/v1/solve", `{"paper":"apptier","load":1e9,"maxDowntime":"100m"}`)
	decodeError(t, rec, http.StatusUnprocessableEntity, "infeasible")
}

// TestSolveDeadlinePrompt pins the acceptance criterion: a request with
// a 1ms deadline returns promptly with a deadline error and partial
// stats, even though the underlying search (a Monte-Carlo engine with a
// large replication budget) would take far longer.
func TestSolveDeadlinePrompt(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	body := `{"paper":"apptier","load":1000,"maxDowntime":"100m",
		"engine":"sim","years":5000,"reps":4096,"timeoutMs":1}`
	start := time.Now()
	rec := post(t, s.Handler(), "/v1/solve", body)
	elapsed := time.Since(start)
	resp := decodeError(t, rec, http.StatusGatewayTimeout, "canceled")
	if elapsed > 10*time.Second {
		t.Errorf("1ms-deadline request took %v", elapsed)
	}
	if resp.Stats == nil {
		t.Error("canceled response carries no partial stats")
	}
}

func TestResponseCache(t *testing.T) {
	s := New(Config{CacheSize: 8})
	defer s.Close()
	h := s.Handler()
	first := decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
	second := decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
	if second.Label != first.Label || second.CostPerYear != first.CostPerYear {
		t.Errorf("cached solve differs: %+v vs %+v", second, first)
	}
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	third := decodeSolve(t, post(t, h, "/v1/solve",
		`{"paper":"apptier","load":1000,"maxDowntime":"100m","noCache":true}`))
	if third.Cached {
		t.Error("noCache request served from cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	s := New(Config{CacheSize: 0})
	defer s.Close()
	h := s.Handler()
	decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
	if resp := decodeSolve(t, post(t, h, "/v1/solve", apptierBody)); resp.Cached {
		t.Error("cache hit with CacheSize 0")
	}
}

// TestSingleflight holds the only solve slot, fires two identical
// requests (both must queue behind the held slot and share one flight),
// then releases the slot: exactly one search runs and the joiner's
// response is marked Shared.
func TestSingleflight(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 4, CacheSize: 0})
	defer s.Close()
	h := s.Handler()
	s.sem <- struct{}{} // occupy the slot

	results := make(chan *SolveResponse, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
		}()
		// Order the arrivals so the second request reliably joins the
		// flight the first one registered.
		time.Sleep(100 * time.Millisecond)
	}
	<-s.sem // release; the shared solve proceeds
	wg.Wait()
	close(results)
	var shared, solved int
	for resp := range results {
		if resp.Shared {
			shared++
		} else {
			solved++
		}
	}
	if solved != 1 || shared != 1 {
		t.Errorf("got %d solver(s) and %d sharer(s), want exactly 1 of each", solved, shared)
	}
}

func TestAdmissionOverflow429(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	defer s.Close()
	s.sem <- struct{}{} // occupy the only slot; no queue allowed
	rec := post(t, s.Handler(), "/v1/solve", apptierBody)
	decodeError(t, rec, http.StatusTooManyRequests, "overloaded")
	<-s.sem
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || hz.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", rec.Body.String(), err)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", rec.Code)
	}
}

func TestShutdownRefusesNewWork(t *testing.T) {
	s := New(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rec := post(t, s.Handler(), "/v1/solve", apptierBody)
	decodeError(t, rec, http.StatusServiceUnavailable, "overloaded")
}

// TestShutdownDrains starts a solve, then shuts down while it runs: the
// solve must complete (not be aborted) and Shutdown must return only
// after it does.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, CacheSize: 0})
	h := s.Handler()
	s.sem <- struct{}{} // park the request in the queue first
	done := make(chan *SolveResponse, 1)
	go func() {
		done <- decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
	}()
	time.Sleep(100 * time.Millisecond)
	<-s.sem // let it start solving
	time.Sleep(10 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case resp := <-done:
		if resp.Label == "" {
			t.Error("drained solve returned an empty solution")
		}
	default:
		t.Error("Shutdown returned before the in-flight solve finished")
	}
}

func TestConcurrentSolves(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, MaxQueue: 64, CacheSize: 16})
	defer s.Close()
	h := s.Handler()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		load := 600 + 100*float64(i%4)
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"paper":"apptier","load":%g,"maxDowntime":"200m"}`, load)
			resp := decodeSolve(t, post(t, h, "/v1/solve", body))
			if resp.CostPerYear <= 0 {
				t.Errorf("load %g: bad cost %v", load, resp.CostPerYear)
			}
		}()
	}
	wg.Wait()
}

func TestSweepFig7(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := post(t, s.Handler(), "/v1/sweep", `{"fig":7,"points":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status %d, body %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fig != 7 || len(resp.Fig7) == 0 {
		t.Errorf("empty fig 7 sweep: %+v", resp)
	}
}

func TestSweepBadFig(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := post(t, s.Handler(), "/v1/sweep", `{"fig":5}`)
	decodeError(t, rec, http.StatusBadRequest, "bad_request")
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	decodeSolve(t, post(t, h, "/v1/solve", apptierBody))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests"] == 0 || snap.Counters["server.ok"] == 0 {
		t.Errorf("request counters missing from snapshot: %v", snap.Counters)
	}
	if snap.Counters["core.solves"] == 0 {
		t.Errorf("solver metrics not wired through: %v", snap.Counters)
	}

	// The same endpoint negotiates the Prometheus text exposition.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics?format=prom status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE server_requests counter\n",
		"# TYPE core_solves counter\n",
		"# TYPE solve_phase_eval histogram\n",
		"solve_phase_eval_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	a := SolveRequest{Paper: "apptier", Load: 1000, MaxDowntime: "100m"}
	b := a
	if a.fingerprint() != b.fingerprint() {
		t.Error("identical requests fingerprint differently")
	}
	b.TimeoutMS = 500
	b.NoCache = true
	if a.fingerprint() != b.fingerprint() {
		t.Error("delivery knobs (timeoutMs, noCache) must not change the fingerprint")
	}
	c := a
	c.Load = 1001
	if a.fingerprint() == c.fingerprint() {
		t.Error("different loads share a fingerprint")
	}
	d := a
	d.Engine = "exact"
	if a.fingerprint() == d.fingerprint() {
		t.Error("different engines share a fingerprint")
	}
	e := a
	e.MaxDowntime, e.MaxJobTime = "", "100m" // same string, different field
	if a.fingerprint() == e.fingerprint() {
		t.Error("downtime and job-time requirements share a fingerprint")
	}
	f := a
	f.Search = "bnb" // the default spelled out
	if a.fingerprint() != f.fingerprint() {
		t.Error("\"\" and \"bnb\" search modes must share a fingerprint")
	}
	f.Search = "exhaustive"
	if a.fingerprint() == f.fingerprint() {
		t.Error("different search modes share a fingerprint (cached stats would lie)")
	}
}

func TestFlightGroupLastWaiterCancels(t *testing.T) {
	g := newFlightGroup(0)
	canceled := make(chan struct{})
	f, owner := g.begin(reqFP{1, 2}, func() { close(canceled) })
	if !owner {
		t.Fatal("first begin did not own the flight")
	}
	if j := g.join(reqFP{1, 2}); j != f {
		t.Fatal("join did not find the flight")
	}
	g.leave(f)
	select {
	case <-canceled:
		t.Fatal("cancel fired with a waiter remaining")
	default:
	}
	g.leave(f)
	select {
	case <-canceled:
	case <-time.After(time.Second):
		t.Fatal("cancel did not fire after the last waiter left")
	}
}

func TestFlightGroupCtxErrorNotCached(t *testing.T) {
	g := newFlightGroup(4)
	key := reqFP{3, 4}
	f, _ := g.begin(key, func() {})
	g.settle(key, f, nil, context.DeadlineExceeded, true)
	if _, ok := g.lookup(key); ok {
		t.Error("context-error outcome was cached")
	}
	if g.join(key) != nil {
		t.Error("settled flight still joinable")
	}
	f2, _ := g.begin(key, func() {})
	g.settle(key, f2, &SolveResponse{Label: "x"}, nil, false)
	if resp, ok := g.lookup(key); !ok || resp.Label != "x" {
		t.Error("successful outcome missing from cache")
	}
}

func TestFlightGroupCacheEviction(t *testing.T) {
	g := newFlightGroup(2)
	for i := uint64(0); i < 3; i++ {
		key := reqFP{i, i}
		f, _ := g.begin(key, func() {})
		g.settle(key, f, &SolveResponse{Label: fmt.Sprint(i)}, nil, false)
	}
	if _, ok := g.lookup(reqFP{0, 0}); ok {
		t.Error("oldest entry not evicted at capacity 2")
	}
	for i := uint64(1); i < 3; i++ {
		if _, ok := g.lookup(reqFP{i, i}); !ok {
			t.Errorf("entry %d missing after eviction", i)
		}
	}
}
