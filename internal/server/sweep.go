package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"aved"
)

// SweepRequest is the body of POST /v1/sweep: regenerate one of the
// paper's evaluation figures over the built-in Fig. 3/4/5 inputs, with
// configurable grid resolution. Sweeps are admitted through the same
// bounded slot pool as solves (one slot per sweep; the sweep fans its
// points over its own worker pool) but are neither deduplicated nor
// cached — they are batch work, not the interactive path.
type SweepRequest struct {
	// Fig selects the figure: 6, 7 or 8.
	Fig int `json:"fig"`
	// Loads and Budgets set the grid resolution for figs 6 and 8.
	Loads   int `json:"loads,omitempty"`
	Budgets int `json:"budgets,omitempty"`
	// Points sets the requirement grid for fig 7.
	Points int `json:"points,omitempty"`
	// Workers bounds the sweep worker pool (0 = server default).
	Workers int `json:"workers,omitempty"`

	// Engine knobs, as in SolveRequest.
	Engine   string  `json:"engine,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Years    float64 `json:"years,omitempty"`
	Reps     int     `json:"reps,omitempty"`
	RelErr   float64 `json:"relErr,omitempty"`
	SimBatch int     `json:"simBatch,omitempty"`

	// TimeoutMS is the per-request deadline in milliseconds.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// SweepResponse carries the requested figure's data series.
type SweepResponse struct {
	Fig       int              `json:"fig"`
	Fig6      *aved.Fig6Result `json:"fig6,omitempty"`
	Fig7      []aved.Fig7Point `json:"fig7,omitempty"`
	Fig8      []aved.Fig8Curve `json:"fig8,omitempty"`
	ElapsedMS float64          `json:"elapsedMs"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Counter("server.requests").Inc()
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, badRequestError{err}, nil)
		return
	}
	if req.Fig < 6 || req.Fig > 8 {
		s.writeError(w, badRequestError{fmt.Errorf("fig must be 6, 7 or 8 (got %d)", req.Fig)}, nil)
		return
	}
	if s.draining.Load() {
		s.writeError(w, errShuttingDown, nil)
		return
	}

	ctx := r.Context()
	sr := SolveRequest{TimeoutMS: req.TimeoutMS}
	if d := sr.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	s.inflight.Add(1)
	defer s.inflight.Done()
	ent := s.live.begin("sweep", "")
	defer s.live.done(ent)
	release, err := s.acquire(ctx)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	defer release()
	ent.setPhase("bind")

	resp, err := s.runSweep(ctx, &req, ent)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	resp.ElapsedMS = ms
	s.metrics.Counter("server.ok").Inc()
	s.metrics.Histogram("server.request_ms").Observe(ms)
	writeJSON(w, http.StatusOK, resp)
}

// runSweep builds the figure's solver and grids and runs it under ctx.
// ent mirrors the sweep's progress for /v1/status: the teed tracer
// counts sweep.point events into cellsDone/cellsTotal, so a poller
// sees "cell 37 of 120" style progress on a long figure regeneration.
func (s *Server) runSweep(ctx context.Context, req *SweepRequest, ent *inflightEntry) (*SweepResponse, error) {
	eng, err := (&SolveRequest{
		Engine: req.Engine, Seed: req.Seed, Years: req.Years,
		Reps: req.Reps, RelErr: req.RelErr, SimBatch: req.SimBatch,
		Workers: req.Workers,
	}).engine()
	if err != nil {
		return nil, badRequestError{err}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	loads, budgets, points := req.Loads, req.Budgets, req.Points
	if loads == 0 {
		loads = 10
	}
	if budgets == 0 {
		budgets = 12
	}
	if points == 0 {
		points = 15
	}
	inf, err := aved.PaperInfrastructure()
	if err != nil {
		return nil, err
	}
	resp := &SweepResponse{Fig: req.Fig}
	switch req.Fig {
	case 6, 8:
		svc, err := aved.PaperApplicationTier(inf)
		if err != nil {
			return nil, err
		}
		solver, err := aved.NewSolver(inf, svc, aved.Options{
			Registry: aved.PaperRegistry(), Workers: workers, Engine: eng,
			Metrics: s.metrics, Tracer: aved.TeeTracers(s.cfg.Tracer, ent.progressTracer()),
		})
		if err != nil {
			return nil, err
		}
		if req.Fig == 6 {
			loadGrid, err := aved.LinGrid(400, 5000, loads)
			if err != nil {
				return nil, badRequestError{err}
			}
			budgetGrid, err := aved.LogGrid(0.1, 10000, budgets)
			if err != nil {
				return nil, badRequestError{err}
			}
			resp.Fig6, err = aved.SweepFig6(ctx, solver, loadGrid, budgetGrid)
			return resp, err
		}
		budgetGrid, err := aved.LogGrid(0.1, 100, budgets)
		if err != nil {
			return nil, badRequestError{err}
		}
		resp.Fig8, err = aved.SweepFig8(ctx, solver, []float64{400, 800, 1600, 3200}, budgetGrid)
		return resp, err
	default: // 7
		svc, err := aved.PaperScientific(inf)
		if err != nil {
			return nil, err
		}
		solver, err := aved.NewSolver(inf, svc, aved.Options{
			Registry: aved.PaperRegistry(), FixedMechanisms: aved.Bronze(),
			Workers: workers, Engine: eng,
			Metrics: s.metrics, Tracer: aved.TeeTracers(s.cfg.Tracer, ent.progressTracer()),
		})
		if err != nil {
			return nil, err
		}
		grid, err := aved.LogGrid(1, 1000, points)
		if err != nil {
			return nil, badRequestError{err}
		}
		resp.Fig7, err = aved.SweepFig7(ctx, solver, grid)
		return resp, err
	}
}
