// Package server exposes the design search as a service: an HTTP JSON
// API that accepts infrastructure and service specs plus requirements,
// runs the §4.1 search and returns the minimum-cost design — the
// "availability design service" deployment the paper sketches for a
// computing utility, where design requests arrive continuously and the
// same questions recur as conditions change.
//
// Endpoints:
//
//	POST /v1/solve    one design problem → the optimal design
//	POST /v1/sweep    a Fig. 6/7/8 requirement sweep over paper inputs
//	GET  /v1/healthz  liveness plus admission state
//	GET  /v1/status   live in-flight requests (phase, elapsed, progress)
//	GET  /metrics     the metrics registry — JSON by default, Prometheus
//	                  text with ?format=prom or an Accept preferring
//	                  text/plain
//
// The layer adds what a shared service needs on top of the library:
// admission control (a bounded number of concurrent solves plus a
// bounded wait queue, 429 beyond that), per-request deadlines threaded
// through the whole evaluation stack as a context, cross-request
// deduplication (concurrent identical requests share one search,
// completed ones answer from a bounded cache) and graceful shutdown
// (drain in-flight solves, then abort stragglers).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aved"
)

// Config parameterises a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// MaxConcurrent bounds simultaneously running solves/sweeps.
	// Defaults to GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it requests
	// are rejected with 429 immediately. Zero defaults to
	// 4 × MaxConcurrent; negative disables queueing entirely.
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeoutMs.
	// Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps every per-request deadline (including requests
	// that asked for none). Zero means no cap.
	MaxTimeout time.Duration
	// Workers is the per-solve search worker count (0 = all CPUs).
	Workers int
	// CacheSize bounds the completed-response cache; 0 disables it.
	CacheSize int
	// Metrics receives request counters and latency histograms; nil
	// allocates a private registry (exposed at /metrics either way).
	Metrics *aved.Metrics
	// Tracer, when set, receives the search events of every request.
	Tracer aved.Tracer
	// TraceDir, when set, additionally writes one JSONL trace stream
	// per request to req-<id>.jsonl files in this directory.
	TraceDir string
}

// Server is the service state shared across requests.
type Server struct {
	cfg     Config
	metrics *aved.Metrics
	group   *flightGroup

	sem    chan struct{}
	queued atomic.Int64
	live   inflightSet

	baseCtx    context.Context
	baseCancel context.CancelFunc
	inflight   sync.WaitGroup
	draining   atomic.Bool

	reqSeq atomic.Uint64
}

var (
	errOverloaded   = errors.New("server: overloaded: concurrency and queue limits reached")
	errShuttingDown = errors.New("server: shutting down")
)

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.Metrics == nil {
		cfg.Metrics = aved.NewMetrics()
	}
	s := &Server{
		cfg:     cfg,
		metrics: cfg.Metrics,
		group:   newFlightGroup(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		aved.WriteMetricsHTTP(w, r, s.metrics)
	})
	return mux
}

// Shutdown drains the server: new requests are refused, in-flight
// solves run to completion. If ctx expires first, the remaining solves
// are aborted through their contexts (they return promptly with
// context.Canceled) and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close aborts everything immediately.
func (s *Server) Close() {
	s.draining.Store(true)
	s.baseCancel()
	s.inflight.Wait()
}

// acquire claims a solve slot, waiting in the bounded queue when the
// pool is busy. The returned release func must be called exactly once.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, errOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		return nil, errShuttingDown
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":  status,
		"running": len(s.sem),
		"queued":  s.queued.Load(),
	})
}

// badRequestError marks client errors (malformed specs, unknown knobs)
// for the 400 mapping.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Counter("server.requests").Inc()
	var req SolveRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, badRequestError{err}, nil)
		return
	}
	if err := req.validate(); err != nil {
		s.writeError(w, badRequestError{err}, nil)
		return
	}
	key := req.fingerprint()
	if !req.NoCache {
		if resp, ok := s.group.lookup(key); ok {
			s.metrics.Counter("server.cache_hits").Inc()
			out := *resp
			out.Cached = true
			s.finishSolve(w, &out, start)
			return
		}
	}
	if s.draining.Load() {
		s.writeError(w, errShuttingDown, nil)
		return
	}

	// The request context carries the effective deadline; the client
	// dropping the connection cancels it too.
	ctx := r.Context()
	if d := req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	f, joined := s.group.join(key), true
	if f == nil {
		f, joined = s.startFlight(key, &req)
	}
	if joined {
		s.metrics.Counter("server.singleflight_joined").Inc()
	}

	select {
	case <-f.done:
		if f.err != nil {
			s.writeError(w, f.err, nil)
			return
		}
		out := *f.resp
		out.Shared = joined
		s.finishSolve(w, &out, start)
	case <-ctx.Done():
		last := s.group.leave(f)
		s.metrics.Counter("server.abandoned").Inc()
		if last {
			// We just canceled the shared solve; it aborts through its
			// per-candidate context checks within moments. Wait for it
			// so the reply carries the partial search statistics.
			select {
			case <-f.done:
				if f.err == nil {
					// The solve beat the cancellation; serve it.
					out := *f.resp
					out.Shared = joined
					s.finishSolve(w, &out, start)
					return
				}
				if isCtxErr(f.err) {
					s.writeError(w, f.err, nil)
					return
				}
			case <-time.After(2 * time.Second):
			}
		}
		s.writeError(w, ctx.Err(), nil)
	}
}

// startFlight registers and launches the shared solve for req. The
// solve runs in its own goroutine under a context detached from any
// single request: it is canceled when the last waiter leaves or the
// server shuts down, and bounded by the owning request's effective
// deadline. The second return reports whether the caller joined a
// racing flight instead of owning a new one.
func (s *Server) startFlight(key reqFP, req *SolveRequest) (*flight, bool) {
	var (
		fctx    context.Context
		fcancel context.CancelFunc
	)
	if d := req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		fctx, fcancel = context.WithTimeout(s.baseCtx, d)
	} else {
		fctx, fcancel = context.WithCancel(s.baseCtx)
	}
	f, owner := s.group.begin(key, fcancel)
	if !owner {
		return f, true
	}
	if s.draining.Load() {
		s.group.settle(key, f, nil, errShuttingDown, false)
		fcancel()
		return f, false
	}
	s.inflight.Add(1)
	reqCopy := *req
	go func() {
		defer s.inflight.Done()
		defer fcancel()
		ent := s.live.begin("solve", key.hex())
		defer s.live.done(ent)
		resp, err := s.runSolve(fctx, &reqCopy, ent)
		s.group.settle(key, f, resp, err, isCtxErr(err))
	}()
	return f, false
}

// runSolve executes one admitted solve end to end: admission slot,
// model binding, solver construction, search. ent mirrors the solve's
// progress for /v1/status: "queued" until the slot is claimed, "bind"
// through model construction, then the solver's own phases as its
// trace reports them.
func (s *Server) runSolve(ctx context.Context, req *SolveRequest, ent *inflightEntry) (*SolveResponse, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	ent.setPhase("bind")

	inf, svc, err := req.models()
	if err != nil {
		return nil, badRequestError{err}
	}
	reqs, err := req.requirements()
	if err != nil {
		return nil, badRequestError{err}
	}
	eng, err := req.engine()
	if err != nil {
		return nil, badRequestError{err}
	}
	search, err := req.searchMode()
	if err != nil {
		return nil, badRequestError{err}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	tracer, closeTrace, err := s.requestTracer()
	if err != nil {
		return nil, err
	}
	defer closeTrace()
	opts := aved.Options{
		Registry:           aved.PaperRegistry(),
		Workers:            workers,
		Engine:             eng,
		Search:             search,
		ExploreSpareWarmth: req.WarmSpares,
		Metrics:            s.metrics,
		Tracer:             aved.TeeTracers(tracer, ent.progressTracer()),
	}
	if req.Bronze {
		opts.FixedMechanisms = aved.Bronze()
	}
	solver, err := aved.NewSolver(inf, svc, opts)
	if err != nil {
		return nil, badRequestError{err}
	}
	sol, err := solver.SolveContext(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return buildResponse(sol, reqs), nil
}

// requestTracer assembles the per-request trace sink: the shared
// tracer, plus a dedicated JSONL stream in TraceDir when configured.
func (s *Server) requestTracer() (aved.Tracer, func(), error) {
	if s.cfg.TraceDir == "" {
		return s.cfg.Tracer, func() {}, nil
	}
	id := s.reqSeq.Add(1)
	path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("req-%06d.jsonl", id))
	jt, err := aved.NewJSONLFileTracer(path)
	if err != nil {
		return nil, nil, fmt.Errorf("server: request trace: %w", err)
	}
	return aved.TeeTracers(s.cfg.Tracer, jt), func() {
		if cerr := jt.Close(); cerr != nil {
			s.metrics.Counter("server.trace_errors").Inc()
		}
	}, nil
}

// finishSolve writes a success response.
func (s *Server) finishSolve(w http.ResponseWriter, resp *SolveResponse, start time.Time) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	resp.ElapsedMS = ms
	s.metrics.Counter("server.ok").Inc()
	s.metrics.Histogram("server.request_ms").Observe(ms)
	writeJSON(w, http.StatusOK, resp)
}

// writeError maps an error to its status code and JSON body.
func (s *Server) writeError(w http.ResponseWriter, err error, _ *SolveRequest) {
	s.metrics.Counter("server.errors").Inc()
	resp := ErrorResponse{Error: err.Error(), Kind: "internal"}
	code := http.StatusInternalServerError
	var (
		bad badRequestError
		inf *aved.InfeasibleError
		ce  *aved.CanceledError
	)
	switch {
	case errors.As(err, &bad):
		code, resp.Kind = http.StatusBadRequest, "bad_request"
	case errors.As(err, &inf):
		code, resp.Kind = http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, errOverloaded):
		code, resp.Kind = http.StatusTooManyRequests, "overloaded"
		s.metrics.Counter("server.rejected_overload").Inc()
	case errors.Is(err, errShuttingDown):
		code, resp.Kind = http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, context.DeadlineExceeded):
		code, resp.Kind = http.StatusGatewayTimeout, "canceled"
		s.metrics.Counter("server.deadline_exceeded").Inc()
	case errors.Is(err, context.Canceled):
		code, resp.Kind = http.StatusServiceUnavailable, "canceled"
	}
	if errors.As(err, &ce) {
		st := statsReport(ce.Stats)
		resp.Stats = &st
	}
	writeJSON(w, code, resp)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}
