package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aved"
)

// This file implements GET /v1/status: live introspection of the work
// the server is doing right now. /metrics answers "how much, how fast,
// cumulatively"; /v1/status answers "what is running at this instant"
// — which requests, how long they have been in, what solve phase each
// is in, and how far along a sweep's grid is. Operators hit it when a
// request seems stuck, load balancers when deciding whether a draining
// instance is done.

// inflightEntry is one live request's mutable progress record. The
// handler goroutine and the status endpoint race on it by design, so
// every mutable field is atomic; the identity fields are fixed at
// registration.
type inflightEntry struct {
	id    uint64
	kind  string // "solve" or "sweep"
	fp    string // request fingerprint, hex (solves; "" for sweeps)
	start time.Time

	// phase is the request's current stage as a string: "queued" while
	// waiting for an admission slot, "bind" during model construction,
	// then the solver's own phase names as its trace reports them.
	phase atomic.Value

	// cellsDone/cellsTotal track sweep grid progress from sweep.point
	// events; zero for solves.
	cellsDone  atomic.Int64
	cellsTotal atomic.Int64
}

func (e *inflightEntry) setPhase(p string) { e.phase.Store(p) }

// inflightSet registers the live entries. A plain locked map: requests
// register and deregister once each, and status reads are rare
// compared to solve work.
type inflightSet struct {
	mu  sync.Mutex
	seq uint64
	m   map[uint64]*inflightEntry
}

// begin registers a new live request and returns its entry; the caller
// must call done(entry) on every exit path.
func (s *inflightSet) begin(kind, fp string) *inflightEntry {
	e := &inflightEntry{kind: kind, fp: fp, start: time.Now()}
	e.setPhase("queued")
	s.mu.Lock()
	s.seq++
	e.id = s.seq
	if s.m == nil {
		s.m = make(map[uint64]*inflightEntry)
	}
	s.m[e.id] = e
	s.mu.Unlock()
	return e
}

func (s *inflightSet) done(e *inflightEntry) {
	s.mu.Lock()
	delete(s.m, e.id)
	s.mu.Unlock()
}

// snapshot lists the live entries in admission order.
func (s *inflightSet) snapshot() []*inflightEntry {
	s.mu.Lock()
	out := make([]*inflightEntry, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// progressTracer returns a tracer that mirrors an entry's solve phase
// and sweep progress from the trace stream. It tees in front of the
// request's configured sinks, so enabling /v1/status costs one extra
// Emit per event only on requests that already trace — and on the
// synthetic tracer the server adds for exactly this purpose.
func (e *inflightEntry) progressTracer() aved.Tracer {
	return aved.TraceFunc(func(ev aved.TraceEvent) {
		switch ev.Ev {
		case aved.EvPhaseStart:
			e.setPhase(ev.Phase)
		case aved.EvSearchStart:
			e.setPhase("search")
		case aved.EvSweepPoint:
			e.cellsDone.Add(1)
			e.cellsTotal.Store(int64(ev.Total))
		}
	})
}

// InflightStatus is one live request in the /v1/status response.
type InflightStatus struct {
	ID        uint64  `json:"id"`
	Kind      string  `json:"kind"`
	FP        string  `json:"fp,omitempty"`
	Phase     string  `json:"phase"`
	ElapsedMS float64 `json:"elapsedMs"`
	// CellsDone/CellsTotal report sweep grid progress; omitted for
	// solves.
	CellsDone  int64 `json:"cellsDone,omitempty"`
	CellsTotal int64 `json:"cellsTotal,omitempty"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	Status   string           `json:"status"` // "ok" or "draining"
	Running  int              `json:"running"`
	Queued   int64            `json:"queued"`
	InFlight []InflightStatus `json:"inflight"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	resp := StatusResponse{Status: "ok", Running: len(s.sem), Queued: s.queued.Load()}
	if s.draining.Load() {
		resp.Status = "draining"
	}
	entries := s.live.snapshot()
	resp.InFlight = make([]InflightStatus, 0, len(entries))
	now := time.Now()
	for _, e := range entries {
		st := InflightStatus{
			ID:        e.id,
			Kind:      e.kind,
			FP:        e.fp,
			ElapsedMS: float64(now.Sub(e.start)) / float64(time.Millisecond),
		}
		if p, ok := e.phase.Load().(string); ok {
			st.Phase = p
		}
		st.CellsDone = e.cellsDone.Load()
		st.CellsTotal = e.cellsTotal.Load()
		resp.InFlight = append(resp.InFlight, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// hex renders the fingerprint as the 32-digit string /v1/status and
// logs report — the same packed-128 presentation the solver uses for
// design fingerprints.
func (f reqFP) hex() string { return fmt.Sprintf("%016x%016x", f.hi, f.lo) }
