package server

import (
	"context"
	"sync"
)

// This file implements the cross-request evaluation deduplication: a
// singleflight group keyed by the packed request fingerprint, plus a
// bounded response cache for completed solves. Two concurrent requests
// for the same design problem share one search; a later identical
// request is answered from the cache without searching at all.
//
// Cancellation is refcounted: the shared solve runs under its own
// context, which is canceled only when every request waiting on it has
// gone away. One impatient client (short deadline, dropped connection)
// detaches without killing the solve for the others; the last waiter
// leaving aborts it. Flights settled by a context error are never
// published — the same gave-up-versus-wrong distinction the solver's
// own eval cache draws (see core's evalCache.forget).

// reqFP is the packed 128-bit request fingerprint (see fingerprint.go).
type reqFP struct{ hi, lo uint64 }

// flight is one in-progress shared solve.
type flight struct {
	done    chan struct{} // closed once resp/err are set
	resp    *SolveResponse
	err     error
	waiters int                // guarded by the group mutex
	cancel  context.CancelFunc // aborts the shared solve
}

// flightGroup is the singleflight table plus the response cache.
type flightGroup struct {
	mu      sync.Mutex
	flights map[reqFP]*flight

	// cache maps fingerprints to completed responses; order is the FIFO
	// eviction queue. cacheCap <= 0 disables caching entirely.
	cache    map[reqFP]*SolveResponse
	order    []reqFP
	cacheCap int
}

func newFlightGroup(cacheCap int) *flightGroup {
	g := &flightGroup{
		flights:  map[reqFP]*flight{},
		cacheCap: cacheCap,
	}
	if cacheCap > 0 {
		g.cache = make(map[reqFP]*SolveResponse, cacheCap)
	}
	return g
}

// lookup consults the response cache only.
func (g *flightGroup) lookup(key reqFP) (*SolveResponse, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	resp, ok := g.cache[key]
	return resp, ok
}

// join returns the in-flight solve for key, registering the caller as a
// waiter, or nil when the caller should run the solve itself (after
// calling begin).
func (g *flightGroup) join(key reqFP) *flight {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		return f
	}
	return nil
}

// begin registers a new flight for key under the given cancel func and
// one waiter (the owner). It re-checks for a racing flight and joins it
// instead when one appeared since join; the second return is false then
// and the caller's cancel is released immediately.
func (g *flightGroup) begin(key reqFP, cancel context.CancelFunc) (*flight, bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		cancel()
		return f, false
	}
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()
	return f, true
}

// settle publishes the flight's outcome, removes it from the table and
// caches successful responses. ctxErr marks outcomes that reflect the
// waiters giving up rather than the problem itself; those are never
// cached (and the flight entry is removed either way, so a later
// request re-solves).
func (g *flightGroup) settle(key reqFP, f *flight, resp *SolveResponse, err error, ctxErr bool) {
	g.mu.Lock()
	f.resp, f.err = resp, err
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	if err == nil && !ctxErr && g.cacheCap > 0 {
		if _, dup := g.cache[key]; !dup {
			for len(g.cache) >= g.cacheCap {
				old := g.order[0]
				g.order = g.order[1:]
				delete(g.cache, old)
			}
			g.cache[key] = resp
			g.order = append(g.order, key)
		}
	}
	g.mu.Unlock()
	close(f.done)
}

// leave drops one waiter from an unfinished flight. When the last
// waiter leaves, the shared solve is canceled — nobody is listening for
// its result anymore — and leave reports true so the caller knows the
// flight is about to settle with the abort's partial statistics.
func (g *flightGroup) leave(f *flight) (last bool) {
	g.mu.Lock()
	f.waiters--
	last = f.waiters == 0
	g.mu.Unlock()
	if last {
		f.cancel()
	}
	return last
}
