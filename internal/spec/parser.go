package spec

// clauseHeads are the keywords that begin a new clause. Any other
// key=value pair attaches to the clause currently being parsed.
var clauseHeads = map[string]bool{
	"component":    true,
	"failure":      true,
	"mechanism":    true,
	"param":        true,
	"resource":     true,
	"tier":         true,
	"application":  true,
	"requirements": true,
}

// Parse lexes and parses a complete specification source text.
func Parse(src string) (*Document, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseDocument()
}

type parser struct {
	toks []Token
	off  int
}

func (p *parser) peek() Token { return p.toks[p.off] }
func (p *parser) next() Token { t := p.toks[p.off]; p.off++; return t }
func (p *parser) atEOF() bool { return p.peek().Kind == TokenEOF }

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return Token{}, errorAt(t.Pos, "want %s, got %s %q", kind, t.Kind, t.Text)
	}
	return t, nil
}

func (p *parser) parseDocument() (*Document, error) {
	doc := &Document{}
	for !p.atEOF() {
		clause, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		doc.Clauses = append(doc.Clauses, clause)
	}
	return doc, nil
}

// parseClause consumes one clause: a head key=name pair followed by
// attributes up to (not including) the next clause head or EOF.
func (p *parser) parseClause() (Clause, error) {
	head := p.peek()
	if head.Kind != TokenWord || !clauseHeads[head.Text] {
		return Clause{}, errorAt(head.Pos,
			"want a clause keyword (component, failure, mechanism, param, resource, tier, application, requirements), got %q", head.Text)
	}
	headAttr, err := p.parseAttr()
	if err != nil {
		return Clause{}, err
	}
	if len(headAttr.Args) > 0 {
		return Clause{}, errorAt(headAttr.Pos, "clause head %q cannot take arguments", headAttr.Key)
	}
	if headAttr.Value.Kind != ValueWord {
		return Clause{}, errorAt(headAttr.Value.Pos, "clause head %q needs a bare name, got %s", headAttr.Key, headAttr.Value)
	}
	clause := Clause{Key: headAttr.Key, Name: headAttr.Value.Text, Pos: headAttr.Pos}
	for !p.atEOF() {
		t := p.peek()
		if t.Kind == TokenWord && clauseHeads[t.Text] {
			break
		}
		attr, err := p.parseAttr()
		if err != nil {
			return Clause{}, err
		}
		clause.Attrs = append(clause.Attrs, attr)
	}
	return clause, nil
}

// parseAttr consumes key [ "(" args ")" ] "=" value.
func (p *parser) parseAttr() (Attr, error) {
	key, err := p.expect(TokenWord)
	if err != nil {
		return Attr{}, err
	}
	attr := Attr{Key: key.Text, Pos: key.Pos}
	if p.peek().Kind == TokenLParen {
		args, err := p.parseArgs()
		if err != nil {
			return Attr{}, err
		}
		attr.Args = args
	}
	if _, err := p.expect(TokenAssign); err != nil {
		return Attr{}, errorAt(key.Pos, "attribute %q: %v", key.Text, err)
	}
	val, err := p.parseValue()
	if err != nil {
		return Attr{}, err
	}
	attr.Value = val
	return attr, nil
}

// parseArgs consumes "(" item { "," item } ")" where an item is a word
// or a bracketed list whose elements splice into the argument list, as
// in cost([inactive,active]).
func (p *parser) parseArgs() ([]string, error) {
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	var args []string
	for {
		t := p.next()
		switch t.Kind {
		case TokenWord:
			args = append(args, t.Text)
		case TokenBracket:
			items := Value{Kind: ValueBracket, Text: t.Text, Pos: t.Pos}.Items()
			if len(items) == 0 {
				return nil, errorAt(t.Pos, "empty bracket group in argument list")
			}
			for _, it := range items {
				if !isWord(it) {
					return nil, errorAt(t.Pos, "argument %q is not a plain name", it)
				}
			}
			args = append(args, items...)
		case TokenRParen:
			// Reached only before the first item or right after a comma.
			return nil, errorAt(t.Pos, "empty argument in list")
		default:
			return nil, errorAt(t.Pos, "want argument, got %s %q", t.Kind, t.Text)
		}
		switch sep := p.peek(); sep.Kind {
		case TokenComma:
			p.next()
		case TokenRParen:
			p.next()
			return args, nil
		default:
			return nil, errorAt(sep.Pos, "want ',' or ')' in argument list, got %s %q", sep.Kind, sep.Text)
		}
	}
}

func (p *parser) parseValue() (Value, error) {
	t := p.next()
	switch t.Kind {
	case TokenWord:
		return Value{Kind: ValueWord, Text: t.Text, Pos: t.Pos}, nil
	case TokenBracket:
		return Value{Kind: ValueBracket, Text: t.Text, Pos: t.Pos}, nil
	case TokenRef:
		return Value{Kind: ValueRef, Text: t.Text, Pos: t.Pos}, nil
	default:
		return Value{}, errorAt(t.Pos, "want a value, got %s %q", t.Kind, t.Text)
	}
}
