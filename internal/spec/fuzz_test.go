package spec

import (
	"strings"
	"testing"
)

// FuzzParse checks that the lexer and parser never panic, and that any
// successfully parsed document renders and reparses to the same clause
// structure. Run with `go test -fuzz FuzzParse ./internal/spec` for a
// real campaign; the seed corpus runs as a regular test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"component=machineA cost=0",
		"component=machineA cost([inactive,active])=[2400 2640]\nfailure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m",
		"mechanism=checkpoint param=storage_location range=[central,peer] param=checkpoint_interval range=[1m-24h;*1.05] cost=0 loss_window=checkpoint_interval",
		"resource=rA reconfig_time=0 component=machineA depend=null startup=30s",
		"application=scientific jobsize=10000 tier=computation resource=rH sizing=static failurescope=tier nActive=[1-1000,+1] performance(nActive)=perfH.dat",
		"\\\\ comment only",
		"a=1",
		"component=",
		"component=x cost=[",
		"component=x cost=<",
		"component=x cost=]",
		"mechanism=m mperformance(a, b)=f.dat",
		"tier=t\n\n\ntier=u",
		"component=x cost=0 \\\\ trailing comment\nfailure=f mtbf=1d mttr=0 detect_time=0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Render and reparse: the clause structure must survive.
		var sb strings.Builder
		for i, c := range doc.Clauses {
			if i > 0 {
				sb.WriteByte('\n')
			}
			sb.WriteString(c.String())
		}
		doc2, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("rendered document failed to reparse: %v\nsource: %q\nrendered: %q", err, src, sb.String())
		}
		if len(doc2.Clauses) != len(doc.Clauses) {
			t.Fatalf("clause count changed: %d → %d\nsource: %q", len(doc.Clauses), len(doc2.Clauses), src)
		}
		for i := range doc.Clauses {
			if doc.Clauses[i].Key != doc2.Clauses[i].Key || doc.Clauses[i].Name != doc2.Clauses[i].Name {
				t.Fatalf("clause %d head changed: %s=%s → %s=%s",
					i, doc.Clauses[i].Key, doc.Clauses[i].Name, doc2.Clauses[i].Key, doc2.Clauses[i].Name)
			}
			if len(doc.Clauses[i].Attrs) != len(doc2.Clauses[i].Attrs) {
				t.Fatalf("clause %d attr count changed", i)
			}
		}
	})
}

// FuzzLex checks the tokenizer in isolation.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"", "a=b", "[x", "<y", "a=[1 2]", "(,)", "=", "\\\\c\n"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokenEOF {
			t.Fatalf("token stream not EOF-terminated for %q", src)
		}
	})
}
