// Package spec implements the structured attribute–value specification
// language that Aved uses for infrastructure and service models (the
// format of Figs. 3, 4 and 5 in the paper).
//
// The language is a flat stream of clauses. Each clause begins with a
// head attribute (component=machineA, failure=hard, mechanism=checkpoint,
// resource=rA, tier=web, application=ecommerce, param=level, …) followed
// by any number of attributes:
//
//	key=value
//	key(arg,arg)=value
//	key=[v1 v2 …]        bracketed list or range
//	key=<name>           reference to an availability mechanism
//
// Comments run from `\\` to end of line. Newlines are insignificant:
// clause boundaries are determined by clause-head keywords, which allows
// the wrapped long lines that appear in the paper's listings.
//
// The package produces a generic parse tree (Document/Clause/Attr);
// binding clauses into typed infrastructure and service models is the
// job of package model.
package spec

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. EOF marks the end of input.
const (
	TokenWord TokenKind = iota + 1 // bare word: names, numbers, file refs
	TokenAssign
	TokenLParen
	TokenRParen
	TokenComma
	TokenBracket // [ ... ] with Text holding the raw inner contents
	TokenRef     // <name> with Text holding the name
	TokenEOF
)

func (k TokenKind) String() string {
	switch k {
	case TokenWord:
		return "word"
	case TokenAssign:
		return "'='"
	case TokenLParen:
		return "'('"
	case TokenRParen:
		return "')'"
	case TokenComma:
		return "','"
	case TokenBracket:
		return "bracket group"
	case TokenRef:
		return "reference"
	case TokenEOF:
		return "end of input"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Pos locates a token in the source text for error reporting.
type Pos struct {
	Line int // 1-based line number
	Col  int // 1-based column (byte offset within the line)
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical element.
type Token struct {
	Kind TokenKind
	Text string // word text, bracket contents, or reference name
	Pos  Pos
}

// ParseError reports a lexical or syntactic problem with its location.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("spec:%s: %s", e.Pos, e.Msg)
}

func errorAt(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
