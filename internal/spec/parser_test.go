package spec

import (
	"reflect"
	"testing"
)

func TestParseComponentClause(t *testing.T) {
	src := `
component=machineA cost([inactive,active])=[2400 2640]
  failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m
  failure=soft mtbf=75d mttr=0 detect_time=0
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v", err)
	}
	if len(doc.Clauses) != 3 {
		t.Fatalf("clause count = %d, want 3", len(doc.Clauses))
	}
	comp := doc.Clauses[0]
	if comp.Key != "component" || comp.Name != "machineA" {
		t.Errorf("head = %s=%s", comp.Key, comp.Name)
	}
	costAttr, ok := comp.Attr("cost")
	if !ok {
		t.Fatal("missing cost attribute")
	}
	if !reflect.DeepEqual(costAttr.Args, []string{"inactive", "active"}) {
		t.Errorf("cost args = %v", costAttr.Args)
	}
	if !reflect.DeepEqual(costAttr.Value.Items(), []string{"2400", "2640"}) {
		t.Errorf("cost values = %v", costAttr.Value.Items())
	}

	hard := doc.Clauses[1]
	if hard.Key != "failure" || hard.Name != "hard" {
		t.Errorf("failure head = %s=%s", hard.Key, hard.Name)
	}
	mttr, ok := hard.Attr("mttr")
	if !ok || !mttr.Value.IsRef() || mttr.Value.Text != "maintenanceA" {
		t.Errorf("mttr = %+v", mttr)
	}
	mtbf, _ := hard.Attr("mtbf")
	if mtbf.Value.Text != "650d" {
		t.Errorf("mtbf = %v", mtbf.Value)
	}
}

func TestParseMechanismClause(t *testing.T) {
	src := `
mechanism=maintenanceA
  param=level range=[bronze,silver,gold,platinum]
    cost(level)= [380 580 760 1500]
    mttr(level)=[38h 15h 8h 6h]
mechanism=checkpoint
  param=storage_location range=[central,peer]
  param=checkpoint_interval range=[1m-24h;*1.05]
  cost=0
  loss_window=checkpoint_interval
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v", err)
	}
	var mechs, params []Clause
	for _, c := range doc.Clauses {
		switch c.Key {
		case "mechanism":
			mechs = append(mechs, c)
		case "param":
			params = append(params, c)
		}
	}
	if len(mechs) != 2 || len(params) != 3 {
		t.Fatalf("mechs=%d params=%d, want 2 and 3", len(mechs), len(params))
	}
	// The level param carries the cost/mttr effect attributes since they
	// follow it in the clause stream.
	level := params[0]
	if level.Name != "level" {
		t.Fatalf("first param = %q", level.Name)
	}
	rng, _ := level.Attr("range")
	if !reflect.DeepEqual(rng.Value.Items(), []string{"bronze", "silver", "gold", "platinum"}) {
		t.Errorf("range = %v", rng.Value.Items())
	}
	mttr, ok := level.Attr("mttr")
	if !ok || !reflect.DeepEqual(mttr.Args, []string{"level"}) {
		t.Errorf("mttr = %+v", mttr)
	}
	if !reflect.DeepEqual(mttr.Value.Items(), []string{"38h", "15h", "8h", "6h"}) {
		t.Errorf("mttr values = %v", mttr.Value.Items())
	}
	ckpt := params[2]
	if ckpt.Name != "checkpoint_interval" {
		t.Fatalf("third param = %q", ckpt.Name)
	}
	rng2, _ := ckpt.Attr("range")
	if rng2.Value.Text != "1m-24h;*1.05" {
		t.Errorf("checkpoint range raw = %q", rng2.Value.Text)
	}
}

func TestParseResourceClause(t *testing.T) {
	src := `
resource=rA reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=webserver depend=linux startup=30s
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v", err)
	}
	if len(doc.Clauses) != 4 {
		t.Fatalf("clause count = %d, want 4", len(doc.Clauses))
	}
	res := doc.Clauses[0]
	if res.Key != "resource" || res.Name != "rA" {
		t.Errorf("head = %s=%s", res.Key, res.Name)
	}
	member := doc.Clauses[2]
	if member.Key != "component" || member.Name != "linux" {
		t.Errorf("member = %s=%s", member.Key, member.Name)
	}
	dep, _ := member.Attr("depend")
	if dep.Value.Text != "machineA" {
		t.Errorf("depend = %v", dep.Value)
	}
	st, _ := member.Attr("startup")
	if st.Value.Text != "2m" {
		t.Errorf("startup = %v", st.Value)
	}
}

func TestParseServiceClause(t *testing.T) {
	src := `
application=scientific jobsize=10000
tier=computation
  resource=rH sizing=static failurescope=tier
    nActive=[1-1000,+1] performance(nActive)=perfH.dat
    mechanism=checkpoint mperformance(storage_location,
        checkpoint_interval, nActive)=mperfH.dat
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v", err)
	}
	if len(doc.Clauses) != 4 {
		t.Fatalf("clause count = %d, want 4: %+v", len(doc.Clauses), doc.Clauses)
	}
	app := doc.Clauses[0]
	js, ok := app.Attr("jobsize")
	if !ok || js.Value.Text != "10000" {
		t.Errorf("jobsize = %+v", js)
	}
	res := doc.Clauses[2]
	if res.Key != "resource" || res.Name != "rH" {
		t.Errorf("resource head = %s=%s", res.Key, res.Name)
	}
	na, _ := res.Attr("nActive")
	if na.Value.Text != "1-1000,+1" {
		t.Errorf("nActive raw = %q", na.Value.Text)
	}
	perf, _ := res.Attr("performance")
	if !reflect.DeepEqual(perf.Args, []string{"nActive"}) || perf.Value.Text != "perfH.dat" {
		t.Errorf("performance = %+v", perf)
	}
	mech := doc.Clauses[3]
	if mech.Key != "mechanism" || mech.Name != "checkpoint" {
		t.Errorf("mechanism head = %s=%s", mech.Key, mech.Name)
	}
	mp, ok := mech.Attr("mperformance")
	if !ok {
		t.Fatal("missing mperformance")
	}
	wantArgs := []string{"storage_location", "checkpoint_interval", "nActive"}
	if !reflect.DeepEqual(mp.Args, wantArgs) {
		t.Errorf("mperformance args = %v, want %v", mp.Args, wantArgs)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"cost=0",                      // attribute before any clause head
		"component=",                  // missing name
		"component=[a]",               // bracketed clause name
		"component=machineA cost",     // missing '='
		"component=machineA cost=",    // missing value
		"component(x)=machineA",       // clause head with args
		"component=machineA cost()=1", // empty args
		"component=m cost(a,)=1",      // trailing comma is a missing arg
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		})
	}
}

func TestClauseString(t *testing.T) {
	doc, err := Parse("failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m")
	if err != nil {
		t.Fatal(err)
	}
	got := doc.Clauses[0].String()
	want := "failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRoundTripReparse(t *testing.T) {
	src := `mechanism=checkpoint param=storage_location range=[central,peer] cost=0`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var rendered string
	for i, c := range doc.Clauses {
		if i > 0 {
			rendered += "\n"
		}
		rendered += c.String()
	}
	doc2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse error: %v (rendered=%q)", err, rendered)
	}
	if len(doc2.Clauses) != len(doc.Clauses) {
		t.Errorf("reparse clause count = %d, want %d", len(doc2.Clauses), len(doc.Clauses))
	}
}

func TestDocumentClausesWithKey(t *testing.T) {
	doc, err := Parse("component=a cost=0 component=b cost=1 resource=r reconfig_time=0")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.ClausesWithKey("component")); got != 2 {
		t.Errorf("component clauses = %d, want 2", got)
	}
	if got := len(doc.ClausesWithKey("resource")); got != 1 {
		t.Errorf("resource clauses = %d, want 1", got)
	}
}
