package spec

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleAttr(t *testing.T) {
	toks, err := Lex("component=machineA cost=0")
	if err != nil {
		t.Fatalf("Lex error: %v", err)
	}
	want := []TokenKind{TokenWord, TokenAssign, TokenWord, TokenWord, TokenAssign, TokenWord, TokenEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[0].Text != "component" || toks[2].Text != "machineA" {
		t.Errorf("unexpected words: %q %q", toks[0].Text, toks[2].Text)
	}
}

func TestLexBracketGroup(t *testing.T) {
	toks, err := Lex("cost([inactive,active])=[2400 2640]")
	if err != nil {
		t.Fatalf("Lex error: %v", err)
	}
	// cost ( [inactive,active] ) = [2400 2640] EOF
	want := []TokenKind{TokenWord, TokenLParen, TokenBracket, TokenRParen, TokenAssign, TokenBracket, TokenEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d kind = %v, want %v (toks=%v)", i, got[i], want[i], toks)
		}
	}
	if toks[2].Text != "inactive,active" {
		t.Errorf("bracket contents = %q", toks[2].Text)
	}
	if toks[5].Text != "2400 2640" {
		t.Errorf("bracket contents = %q", toks[5].Text)
	}
}

func TestLexRef(t *testing.T) {
	toks, err := Lex("mttr=<maintenanceA>")
	if err != nil {
		t.Fatalf("Lex error: %v", err)
	}
	if toks[2].Kind != TokenRef || toks[2].Text != "maintenanceA" {
		t.Errorf("ref token = %+v", toks[2])
	}
}

func TestLexComments(t *testing.T) {
	src := "\\\\ Units - s:seconds\ncomponent=linux cost=0 \\\\ trailing\nfailure=soft"
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex error: %v", err)
	}
	var words []string
	for _, tok := range toks {
		if tok.Kind == TokenWord {
			words = append(words, tok.Text)
		}
	}
	want := []string{"component", "linux", "cost", "0", "failure", "soft"}
	if strings.Join(words, " ") != strings.Join(want, " ") {
		t.Errorf("words = %v, want %v", words, want)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a=1\nbb=2")
	if err != nil {
		t.Fatalf("Lex error: %v", err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[3].Pos != (Pos{Line: 2, Col: 1}) {
		t.Errorf("second-line token pos = %v", toks[3].Pos)
	}
}

func TestLexMultilineBracket(t *testing.T) {
	toks, err := Lex("range=[bronze,\n  silver]")
	if err != nil {
		t.Fatalf("Lex error: %v", err)
	}
	if toks[2].Kind != TokenBracket || toks[2].Text != "bronze, silver" {
		t.Errorf("bracket = %+v", toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"a=[1", "a=<x", "a=]", "a=>", "a=[[1]]", "a=<x\n>"} {
		t.Run(src, func(t *testing.T) {
			if _, err := Lex(src); err == nil {
				t.Errorf("Lex(%q) succeeded, want error", src)
			}
		})
	}
}
