package spec

import (
	"strings"
	"unicode"
)

// lexer walks the source text and emits tokens. It is written as a
// simple byte scanner: the spec language is ASCII in practice, but word
// characters admit any non-delimiter rune so unicode names lex cleanly.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenises the whole input, returning the token stream terminated
// by an EOF token. Token text slices the source wherever possible —
// words, references and already-normalized bracket groups share src's
// backing — so lexing a document costs a handful of allocations.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	toks := make([]Token, 0, len(src)/8)
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokenEOF {
			return toks, nil
		}
	}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(k int) byte {
	if l.off+k >= len(l.src) {
		return 0
	}
	return l.src[l.off+k]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace (including newlines) and
// `\\ …` comments.
func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '\\' && l.peekAt(1) == '\\':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// isWord reports whether s is a non-empty run of word bytes — text
// that lexes back to a single word token.
func isWord(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isWordByte(s[i]) {
			return false
		}
	}
	return true
}

func isWordByte(c byte) bool {
	switch c {
	case 0, ' ', '\t', '\r', '\n', '=', '(', ')', ',', '[', ']', '<', '>', '\\':
		return false
	}
	return true
}

func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokenEOF, Pos: start}, nil
	}
	switch c := l.peek(); c {
	case '=':
		l.advance()
		return Token{Kind: TokenAssign, Text: "=", Pos: start}, nil
	case '(':
		l.advance()
		return Token{Kind: TokenLParen, Text: "(", Pos: start}, nil
	case ')':
		l.advance()
		return Token{Kind: TokenRParen, Text: ")", Pos: start}, nil
	case ',':
		l.advance()
		return Token{Kind: TokenComma, Text: ",", Pos: start}, nil
	case '[':
		return l.lexBracket(start)
	case '<':
		return l.lexRef(start)
	case ']':
		return Token{}, errorAt(start, "unexpected ']' with no matching '['")
	case '>':
		return Token{}, errorAt(start, "unexpected '>' with no matching '<'")
	default:
		return l.lexWord(start)
	}
}

// lexBracket consumes a [ ... ] group, preserving the raw inner text
// (bracket groups may wrap across lines in the listings; normalization
// collapses the line breaks). Nested brackets are not part of the
// language and are rejected.
func (l *lexer) lexBracket(start Pos) (Token, error) {
	l.advance() // consume '['
	o := l.off
	for l.off < len(l.src) {
		switch l.peek() {
		case ']':
			text := normalizeSpace(l.src[o:l.off])
			l.advance()
			return Token{Kind: TokenBracket, Text: text, Pos: start}, nil
		case '[':
			return Token{}, errorAt(l.pos(), "nested '[' inside bracket group")
		default:
			l.advance()
		}
	}
	return Token{}, errorAt(start, "unterminated bracket group")
}

// lexRef consumes a <name> mechanism reference.
func (l *lexer) lexRef(start Pos) (Token, error) {
	l.advance() // consume '<'
	o := l.off
	for l.off < len(l.src) {
		c := l.peek()
		if c == '>' {
			name := strings.TrimSpace(l.src[o:l.off])
			l.advance()
			if name == "" {
				return Token{}, errorAt(start, "empty <> reference")
			}
			return Token{Kind: TokenRef, Text: name, Pos: start}, nil
		}
		if c == '\n' {
			return Token{}, errorAt(start, "unterminated <> reference")
		}
		l.advance()
	}
	return Token{}, errorAt(start, "unterminated <> reference")
}

func (l *lexer) lexWord(start Pos) (Token, error) {
	o := l.off
	for l.off < len(l.src) && isWordByte(l.peek()) {
		l.advance()
	}
	if l.off == o {
		return Token{}, errorAt(start, "unexpected character %q", string(l.peek()))
	}
	return Token{Kind: TokenWord, Text: l.src[o:l.off], Pos: start}, nil
}

// normalizeSpace collapses runs of whitespace to single spaces and trims
// the ends, so bracket contents compare stably. Already-canonical ASCII
// text — the overwhelmingly common case — is returned as-is, sharing
// the source's backing.
func normalizeSpace(s string) string {
	if spaceNormalized(s) {
		return s
	}
	fields := strings.FieldsFunc(s, unicode.IsSpace)
	return strings.Join(fields, " ")
}

// spaceNormalized reports that s is pure ASCII with no whitespace other
// than single interior spaces — normalizeSpace would return it
// unchanged. Non-ASCII text conservatively reports false (it may hold
// unicode whitespace).
func spaceNormalized(s string) bool {
	prev := byte(' ')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f' {
			return false
		}
		if c == ' ' && prev == ' ' {
			return false
		}
		prev = c
	}
	return prev != ' ' || s == ""
}
