package spec

import (
	"fmt"
	"strings"
)

// ValueKind identifies how an attribute value was written.
type ValueKind int

// Value kinds.
const (
	ValueWord    ValueKind = iota + 1 // bare word: number, name, file reference
	ValueBracket                      // [ ... ] list or range, raw text preserved
	ValueRef                          // <name> mechanism reference
)

// Value is the right-hand side of an attribute.
type Value struct {
	Kind ValueKind
	Text string // word text, raw bracket contents, or reference name
	Pos  Pos
}

// IsRef reports whether the value is a <name> mechanism reference.
func (v Value) IsRef() bool { return v.Kind == ValueRef }

// Items splits a bracketed value into its elements. Comma-separated
// contents split on commas ("bronze,silver,gold,platinum"); otherwise
// the contents split on spaces ("2400 2640", "38h 15h 8h 6h"). Word
// values yield a single-element slice so scalar and one-element list
// attributes are interchangeable.
func (v Value) Items() []string {
	switch v.Kind {
	case ValueBracket:
		if strings.Contains(v.Text, ",") {
			parts := strings.Split(v.Text, ",")
			out := make([]string, 0, len(parts))
			for _, p := range parts {
				if t := strings.TrimSpace(p); t != "" {
					out = append(out, t)
				}
			}
			return out
		}
		if v.Text == "" {
			return nil
		}
		return strings.Fields(v.Text)
	case ValueWord:
		return []string{v.Text}
	default:
		return nil
	}
}

// String renders the value in spec notation.
func (v Value) String() string {
	switch v.Kind {
	case ValueBracket:
		return "[" + v.Text + "]"
	case ValueRef:
		return "<" + v.Text + ">"
	default:
		return v.Text
	}
}

// Attr is one key(args)=value attribute of a clause.
type Attr struct {
	Key   string
	Args  []string // contents of the optional parenthesised argument list
	Value Value
	Pos   Pos
}

// String renders the attribute in spec notation.
func (a Attr) String() string {
	if len(a.Args) > 0 {
		return fmt.Sprintf("%s(%s)=%s", a.Key, strings.Join(a.Args, ","), a.Value)
	}
	return fmt.Sprintf("%s=%s", a.Key, a.Value)
}

// Clause is one head attribute plus its trailing attributes:
// "component=machineA cost=0" parses to
// Clause{Key: "component", Name: "machineA", Attrs: [cost=0]}.
type Clause struct {
	Key   string
	Name  string
	Attrs []Attr
	Pos   Pos
}

// Attr reports the first attribute with the given key, if present.
func (c *Clause) Attr(key string) (Attr, bool) {
	for _, a := range c.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// HasAttr reports whether the clause carries an attribute with the key.
func (c *Clause) HasAttr(key string) bool {
	_, ok := c.Attr(key)
	return ok
}

// String renders the clause head and attributes on one line.
func (c *Clause) String() string {
	parts := make([]string, 0, 1+len(c.Attrs))
	parts = append(parts, c.Key+"="+c.Name)
	for _, a := range c.Attrs {
		parts = append(parts, a.String())
	}
	return strings.Join(parts, " ")
}

// Document is a parsed specification: the ordered clause stream.
type Document struct {
	Clauses []Clause
}

// ClausesWithKey reports the clauses whose head key matches.
func (d *Document) ClausesWithKey(key string) []Clause {
	var out []Clause
	for _, c := range d.Clauses {
		if c.Key == key {
			out = append(out, c)
		}
	}
	return out
}
