package model

import (
	"fmt"

	"aved/internal/spec"
	"aved/internal/units"
)

// BindInfrastructure interprets a parsed spec document as an
// infrastructure model (Fig. 3's format) and validates it: component
// references resolve, dependency chains are well formed, mechanism
// tables match their parameter ranges.
func BindInfrastructure(doc *spec.Document) (*Infrastructure, error) {
	inf := &Infrastructure{
		Components: map[string]*Component{},
		Mechanisms: map[string]*Mechanism{},
		Resources:  map[string]*ResourceType{},
	}
	b := &infraBinder{inf: inf}
	for i := range doc.Clauses {
		if err := b.clause(&doc.Clauses[i]); err != nil {
			return nil, err
		}
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return inf, nil
}

// ParseInfrastructure parses and binds infrastructure spec source text.
func ParseInfrastructure(src string) (*Infrastructure, error) {
	doc, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return BindInfrastructure(doc)
}

type infraBinder struct {
	inf *Infrastructure

	curComponent *Component
	curMechanism *Mechanism
	curParam     string // current mechanism parameter, for effect tables
	curResource  *ResourceType
}

func (b *infraBinder) clause(c *spec.Clause) error {
	switch c.Key {
	case "component":
		// Inside a resource scope, component clauses with depend/startup
		// attributes are resource members; otherwise they declare a new
		// component type.
		if b.curResource != nil && (c.HasAttr("depend") || c.HasAttr("startup")) {
			return b.resourceMember(c)
		}
		return b.component(c)
	case "failure":
		return b.failure(c)
	case "mechanism":
		return b.mechanism(c)
	case "param":
		return b.param(c)
	case "resource":
		return b.resource(c)
	default:
		return fmt.Errorf("spec:%s: clause %q does not belong in an infrastructure model", c.Pos, c.Key)
	}
}

func (b *infraBinder) component(c *spec.Clause) error {
	if _, dup := b.inf.Components[c.Name]; dup {
		return fmt.Errorf("spec:%s: duplicate component %q", c.Pos, c.Name)
	}
	comp := &Component{Name: c.Name}
	for _, a := range c.Attrs {
		switch a.Key {
		case "cost":
			if err := bindCost(a, &comp.CostInactive, &comp.CostActive); err != nil {
				return err
			}
		case "max_instances":
			n, err := parsePositiveInt(a)
			if err != nil {
				return err
			}
			comp.MaxInstances = n
		case "loss_window":
			if a.Value.IsRef() {
				comp.LossWindowRef = a.Value.Text
				comp.HasLossWindow = true
				continue
			}
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: component %q loss_window: %w", a.Pos, c.Name, err)
			}
			comp.LossWindow = d
			comp.HasLossWindow = true
		default:
			return fmt.Errorf("spec:%s: component %q: unknown attribute %q", a.Pos, c.Name, a.Key)
		}
	}
	b.inf.Components[c.Name] = comp
	b.inf.componentOrder = append(b.inf.componentOrder, c.Name)
	b.curComponent = comp
	b.curMechanism = nil
	b.curResource = nil
	return nil
}

func (b *infraBinder) failure(c *spec.Clause) error {
	if b.curComponent == nil {
		return fmt.Errorf("spec:%s: failure clause %q outside a component", c.Pos, c.Name)
	}
	if _, dup := b.curComponent.FailureMode(c.Name); dup {
		return fmt.Errorf("spec:%s: component %q: duplicate failure mode %q", c.Pos, b.curComponent.Name, c.Name)
	}
	fm := FailureMode{Name: c.Name}
	seen := map[string]bool{}
	for _, a := range c.Attrs {
		if seen[a.Key] {
			return fmt.Errorf("spec:%s: failure %q: duplicate attribute %q", a.Pos, c.Name, a.Key)
		}
		seen[a.Key] = true
		switch a.Key {
		case "mtbf":
			if a.Value.IsRef() {
				fm.MTBFRef = a.Value.Text
				continue
			}
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: failure %q mtbf: %w", a.Pos, c.Name, err)
			}
			if d <= 0 {
				return fmt.Errorf("spec:%s: failure %q: mtbf must be positive", a.Pos, c.Name)
			}
			fm.MTBF = d
		case "mttr":
			if a.Value.IsRef() {
				fm.MTTRRef = a.Value.Text
				continue
			}
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: failure %q mttr: %w", a.Pos, c.Name, err)
			}
			fm.MTTR = d
		case "detect_time":
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: failure %q detect_time: %w", a.Pos, c.Name, err)
			}
			fm.DetectTime = d
		default:
			return fmt.Errorf("spec:%s: failure %q: unknown attribute %q", a.Pos, c.Name, a.Key)
		}
	}
	if fm.MTBF == 0 && fm.MTBFRef == "" {
		return fmt.Errorf("spec:%s: failure %q: missing mtbf", c.Pos, c.Name)
	}
	fm.qual = b.curComponent.Name + "/" + fm.Name
	b.curComponent.Failures = append(b.curComponent.Failures, fm)
	return nil
}

func (b *infraBinder) mechanism(c *spec.Clause) error {
	if _, dup := b.inf.Mechanisms[c.Name]; dup {
		return fmt.Errorf("spec:%s: duplicate mechanism %q", c.Pos, c.Name)
	}
	mech := &Mechanism{Name: c.Name}
	for _, a := range c.Attrs {
		eff, err := bindEffect(a, mech.Name)
		if err != nil {
			return err
		}
		mech.Effects = append(mech.Effects, eff)
	}
	b.inf.Mechanisms[c.Name] = mech
	b.inf.mechanismOrder = append(b.inf.mechanismOrder, c.Name)
	b.curMechanism = mech
	b.curComponent = nil
	b.curResource = nil
	b.curParam = ""
	return nil
}

func (b *infraBinder) param(c *spec.Clause) error {
	if b.curMechanism == nil {
		return fmt.Errorf("spec:%s: param clause %q outside a mechanism", c.Pos, c.Name)
	}
	if _, dup := b.curMechanism.Param(c.Name); dup {
		return fmt.Errorf("spec:%s: mechanism %q: duplicate param %q", c.Pos, b.curMechanism.Name, c.Name)
	}
	p := Param{Name: c.Name}
	sawRange := false
	for _, a := range c.Attrs {
		if a.Key != "range" {
			// Effect attributes may trail a param clause; they belong to
			// the mechanism.
			eff, err := bindEffect(a, b.curMechanism.Name)
			if err != nil {
				return err
			}
			b.curMechanism.Effects = append(b.curMechanism.Effects, eff)
			continue
		}
		if sawRange {
			return fmt.Errorf("spec:%s: param %q: duplicate range", a.Pos, c.Name)
		}
		sawRange = true
		items := a.Value.Items()
		if isEnumRange(items) {
			p.Enum = items
			continue
		}
		g, err := units.ParseDurationGrid("[" + a.Value.Text + "]")
		if err != nil {
			return fmt.Errorf("spec:%s: param %q range: %w", a.Pos, c.Name, err)
		}
		p.Grid = g
	}
	if !sawRange {
		return fmt.Errorf("spec:%s: param %q: missing range", c.Pos, c.Name)
	}
	b.curMechanism.Params = append(b.curMechanism.Params, p)
	b.curParam = c.Name
	return nil
}

func (b *infraBinder) resource(c *spec.Clause) error {
	if _, dup := b.inf.Resources[c.Name]; dup {
		return fmt.Errorf("spec:%s: duplicate resource %q", c.Pos, c.Name)
	}
	rt := &ResourceType{Name: c.Name}
	for _, a := range c.Attrs {
		switch a.Key {
		case "reconfig_time":
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: resource %q reconfig_time: %w", a.Pos, c.Name, err)
			}
			rt.ReconfigTime = d
		default:
			return fmt.Errorf("spec:%s: resource %q: unknown attribute %q", a.Pos, c.Name, a.Key)
		}
	}
	b.inf.Resources[c.Name] = rt
	b.inf.resourceOrder = append(b.inf.resourceOrder, c.Name)
	b.curResource = rt
	b.curComponent = nil
	b.curMechanism = nil
	return nil
}

func (b *infraBinder) resourceMember(c *spec.Clause) error {
	comp, ok := b.inf.Components[c.Name]
	if !ok {
		return fmt.Errorf("spec:%s: resource %q: unknown component %q", c.Pos, b.curResource.Name, c.Name)
	}
	if _, dup := b.curResource.Component(c.Name); dup {
		return fmt.Errorf("spec:%s: resource %q: duplicate component %q", c.Pos, b.curResource.Name, c.Name)
	}
	rc := ResourceComponent{Component: comp}
	for _, a := range c.Attrs {
		switch a.Key {
		case "depend":
			if a.Value.Text != "null" {
				rc.DependsOn = a.Value.Text
			}
		case "startup":
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: resource %q component %q startup: %w",
					a.Pos, b.curResource.Name, c.Name, err)
			}
			rc.Startup = d
		default:
			return fmt.Errorf("spec:%s: resource %q component %q: unknown attribute %q",
				a.Pos, b.curResource.Name, c.Name, a.Key)
		}
	}
	if rc.DependsOn != "" {
		if _, ok := b.curResource.Component(rc.DependsOn); !ok {
			return fmt.Errorf("spec:%s: resource %q component %q depends on %q, which is not an earlier member",
				c.Pos, b.curResource.Name, c.Name, rc.DependsOn)
		}
	}
	b.curResource.Components = append(b.curResource.Components, rc)
	return nil
}

// validate performs whole-model checks after all clauses are bound.
func (b *infraBinder) validate() error {
	inf := b.inf
	for _, name := range inf.componentOrder {
		comp := inf.Components[name]
		if len(comp.Failures) == 0 {
			return fmt.Errorf("component %q declares no failure modes", name)
		}
		for _, f := range comp.Failures {
			if f.MTTRRef != "" {
				mech, ok := inf.Mechanisms[f.MTTRRef]
				if !ok {
					return fmt.Errorf("component %q failure %q: unknown mechanism %q", name, f.Name, f.MTTRRef)
				}
				if _, ok := mech.Effect("mttr"); !ok {
					return fmt.Errorf("component %q failure %q: mechanism %q supplies no mttr effect",
						name, f.Name, f.MTTRRef)
				}
			}
			if f.MTBFRef != "" {
				mech, ok := inf.Mechanisms[f.MTBFRef]
				if !ok {
					return fmt.Errorf("component %q failure %q: unknown mechanism %q", name, f.Name, f.MTBFRef)
				}
				if _, ok := mech.Effect("mtbf"); !ok {
					return fmt.Errorf("component %q failure %q: mechanism %q supplies no mtbf effect",
						name, f.Name, f.MTBFRef)
				}
			}
		}
		if comp.LossWindowRef != "" {
			mech, ok := inf.Mechanisms[comp.LossWindowRef]
			if !ok {
				return fmt.Errorf("component %q: unknown loss-window mechanism %q", name, comp.LossWindowRef)
			}
			if _, ok := mech.Effect("loss_window"); !ok {
				return fmt.Errorf("component %q: mechanism %q supplies no loss_window effect", name, comp.LossWindowRef)
			}
		}
	}
	for _, name := range inf.mechanismOrder {
		mech := inf.Mechanisms[name]
		for _, eff := range mech.Effects {
			if eff.ByParam == "" {
				continue
			}
			p, ok := mech.Param(eff.ByParam)
			if !ok {
				return fmt.Errorf("mechanism %q effect %q: unknown parameter %q", name, eff.Attr, eff.ByParam)
			}
			if !p.IsEnum() {
				return fmt.Errorf("mechanism %q effect %q: tables require an enumerated parameter, %q is numeric",
					name, eff.Attr, eff.ByParam)
			}
			if len(eff.Table) != len(p.Enum) {
				return fmt.Errorf("mechanism %q effect %q: table has %d entries for %d parameter settings",
					name, eff.Attr, len(eff.Table), len(p.Enum))
			}
		}
	}
	for _, name := range inf.resourceOrder {
		if len(inf.Resources[name].Components) == 0 {
			return fmt.Errorf("resource %q has no components", name)
		}
	}
	return nil
}

// bindCost interprets cost=N or cost([inactive,active])=[a b].
func bindCost(a spec.Attr, inactive, active *units.Money) error {
	if len(a.Args) == 0 {
		m, err := units.ParseMoney(a.Value.Text)
		if err != nil {
			return fmt.Errorf("spec:%s: cost: %w", a.Pos, err)
		}
		*inactive, *active = m, m
		return nil
	}
	items := a.Value.Items()
	if len(items) != len(a.Args) {
		return fmt.Errorf("spec:%s: cost: %d values for %d modes", a.Pos, len(items), len(a.Args))
	}
	for i, mode := range a.Args {
		m, err := units.ParseMoney(items[i])
		if err != nil {
			return fmt.Errorf("spec:%s: cost[%s]: %w", a.Pos, mode, err)
		}
		switch mode {
		case "inactive":
			*inactive = m
		case "active":
			*active = m
		default:
			return fmt.Errorf("spec:%s: cost: unknown operational mode %q", a.Pos, mode)
		}
	}
	return nil
}

// bindEffect interprets a mechanism effect attribute: cost=0,
// cost(level)=[...], mttr(level)=[...], loss_window=checkpoint_interval.
func bindEffect(a spec.Attr, mech string) (Effect, error) {
	eff := Effect{Attr: a.Key}
	switch len(a.Args) {
	case 0:
		if a.Value.Kind != spec.ValueWord {
			return Effect{}, fmt.Errorf("spec:%s: mechanism %q effect %q: want a scalar value", a.Pos, mech, a.Key)
		}
		eff.Scalar = a.Value.Text
	case 1:
		eff.ByParam = a.Args[0]
		eff.Table = a.Value.Items()
		if len(eff.Table) == 0 {
			return Effect{}, fmt.Errorf("spec:%s: mechanism %q effect %q: empty table", a.Pos, mech, a.Key)
		}
	default:
		return Effect{}, fmt.Errorf("spec:%s: mechanism %q effect %q: at most one indexing parameter is supported",
			a.Pos, mech, a.Key)
	}
	return eff, nil
}

// isEnumRange reports whether range items are an enumeration rather
// than a numeric span ("bronze,silver" vs "1m-24h;*1.05").
func isEnumRange(items []string) bool {
	if len(items) == 0 {
		return false
	}
	for _, it := range items {
		if _, err := units.ParseDuration(it); err == nil {
			return false
		}
		for _, c := range it {
			if c == '-' || c == ';' || c == '*' || c == '+' {
				return false
			}
		}
	}
	return true
}

func parsePositiveInt(a spec.Attr) (int, error) {
	var n int
	if _, err := fmt.Sscanf(a.Value.Text, "%d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("spec:%s: %s: want a positive integer, got %q", a.Pos, a.Key, a.Value.Text)
	}
	return n, nil
}
