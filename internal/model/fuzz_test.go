package model_test

import (
	"testing"

	"aved/internal/model"
	"aved/internal/scenarios"
)

// The Fig. 3/4/5 parsers sit on the service boundary now that specs
// arrive over HTTP (internal/server), so they must reject any byte
// sequence with an error — never a panic — and their writers must
// round-trip whatever they accept. Seed corpora live under
// testdata/fuzz/; `go test -fuzz FuzzParseInfrastructure ./internal/model`
// runs a real campaign, and the seeds run as regular tests.

// FuzzParseInfrastructure fuzzes the Fig. 3 infrastructure parser, and
// for accepted inputs pins the write/reparse round trip: the rendered
// spec must parse back with the same component, mechanism and resource
// inventories.
func FuzzParseInfrastructure(f *testing.F) {
	seeds := []string{
		"",
		scenarios.InfrastructureSpec,
		"component=machineA cost=0",
		"component=machineA cost([inactive,active])=[2400 2640]\n  failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m",
		"mechanism=checkpoint\n  param=storage_location range=[central,peer]\n  cost=0",
		"resource=rA reconfig_time=0\n  component=machineA depend=null startup=30s",
		"component=x cost=0\nresource=r reconfig_time=0\n  component=x depend=null startup=0",
		"component=x cost=-1",
		"component=x cost=0\n  failure=f mtbf=0 mttr=0 detect_time=0",
		"resource=r reconfig_time=0\n  component=missing depend=null startup=0",
		"resource=r reconfig_time=0\n  component=a depend=b startup=0\n  component=b depend=a startup=0",
		"component=x cost=<mech>",
		"mechanism=m param=p range=[1m-24h;*1.05] cost=0",
		"tier=web",
		"\\\\ comment only",
		// A requirements clause is service vocabulary and must be
		// rejected here, not panic.
		"requirements=enterprise\n  traffic(hour)=[100 200 300]\n  max_annual_downtime=1h",
		"component=x cost=0\nrequirements=job\n  max_job_time=48h",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		inf, err := model.ParseInfrastructure(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := inf.Spec()
		inf2, err := model.ParseInfrastructure(rendered)
		if err != nil {
			t.Fatalf("rendered infrastructure failed to reparse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if got, want := len(inf2.ComponentNames()), len(inf.ComponentNames()); got != want {
			t.Fatalf("component count changed across round trip: %d → %d (source %q)", want, got, src)
		}
		if got, want := len(inf2.MechanismNames()), len(inf.MechanismNames()); got != want {
			t.Fatalf("mechanism count changed across round trip: %d → %d (source %q)", want, got, src)
		}
		if got, want := len(inf2.ResourceNames()), len(inf.ResourceNames()); got != want {
			t.Fatalf("resource count changed across round trip: %d → %d (source %q)", want, got, src)
		}
	})
}

// FuzzParseService fuzzes the Fig. 4/5 service parser and, for accepted
// inputs, the resolution step against the paper infrastructure — the
// exact pipeline a POST /v1/solve body goes through.
func FuzzParseService(f *testing.F) {
	seeds := []string{
		"",
		scenarios.EcommerceSpec,
		scenarios.ScientificSpec,
		scenarios.ApplicationTierSpec,
		"application=a",
		"application=a tier=t",
		"application=a jobsize=10000\ntier=t\n  resource=rH sizing=static failurescope=tier\n    nActive=[1-1000,+1] performance(nActive)=perfH.dat",
		"application=a\ntier=t\n  resource=missing sizing=dynamic failurescope=resource\n    nActive=[1] performance=1",
		"application=a\ntier=t\n  resource=rA sizing=bogus failurescope=resource\n    nActive=[1] performance=1",
		"application=a jobsize=-5\ntier=t",
		"tier=t\napplication=late",
		"application=a\ntier=t\n  resource=rA sizing=dynamic failurescope=resource\n    nActive=[1000-1,+1] performance=1",
		"component=machineA cost=0",
		// Traffic curves and failover SLOs in the requirements clause.
		"application=a\nrequirements=enterprise\n  traffic(hour)=[820 640 510 1420 980]\n  max_annual_downtime=1h\n  degraded_throughput=0.7\ntier=t\n  resource=rA sizing=dynamic failurescope=resource\n    nActive=[1-8,+1] performance(nActive)=perfA.dat",
		"application=a jobsize=10000\nrequirements=job\n  max_job_time=100h\ntier=t\n  resource=rH sizing=static failurescope=tier\n    nActive=[1-1000,+1] performance(nActive)=perfH.dat",
		"application=a\nrequirements=enterprise\n  throughput=100\n  traffic(hour)=[100 200]\n  max_annual_downtime=1h\ntier=t\n  resource=rA sizing=dynamic failurescope=resource\n    nActive=[1] performance=1",
		"application=a\nrequirements=enterprise\n  traffic(hour)=[NaN]\n  max_annual_downtime=1h\ntier=t",
		"application=a\nrequirements=enterprise\n  throughput=100\n  max_annual_downtime=1h\n  degraded_throughput=2\ntier=t",
		"application=a\nrequirements=bogus\n  throughput=100\ntier=t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	inf, err := scenarios.Infrastructure()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		svc, err := model.ParseService(src)
		if err != nil {
			return
		}
		// Resolution must also fail with an error, never a panic, no
		// matter what the parser accepted. Resolve mutates the service,
		// so each accepted input gets a fresh parse.
		if err := svc.Resolve(inf); err != nil {
			return
		}
		rendered := svc.Spec()
		if _, err := model.ParseService(rendered); err != nil {
			t.Fatalf("rendered service failed to reparse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
	})
}
