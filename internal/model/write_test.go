package model

import (
	"reflect"
	"strings"
	"testing"

	"aved/internal/units"
)

func TestWriteInfrastructureRoundTrip(t *testing.T) {
	inf := mustInfra(t)
	rendered := inf.Spec()
	back, err := ParseInfrastructure(rendered)
	if err != nil {
		t.Fatalf("reparse failed: %v\nrendered:\n%s", err, rendered)
	}
	// Idempotence: rendering the reparsed model reproduces the text.
	if again := back.Spec(); again != rendered {
		t.Errorf("render not idempotent:\nfirst:\n%s\nsecond:\n%s", rendered, again)
	}
	// Structural equivalence of key entities.
	if !reflect.DeepEqual(inf.ComponentNames(), back.ComponentNames()) {
		t.Errorf("component names differ: %v vs %v", inf.ComponentNames(), back.ComponentNames())
	}
	for _, name := range inf.ComponentNames() {
		if !reflect.DeepEqual(inf.Components[name], back.Components[name]) {
			t.Errorf("component %q differs:\n%+v\n%+v", name, inf.Components[name], back.Components[name])
		}
	}
	for _, name := range inf.MechanismNames() {
		a, b := inf.Mechanisms[name], back.Mechanisms[name]
		if !reflect.DeepEqual(a.Effects, b.Effects) {
			t.Errorf("mechanism %q effects differ:\n%+v\n%+v", name, a.Effects, b.Effects)
		}
		if len(a.Params) != len(b.Params) {
			t.Fatalf("mechanism %q param count differs", name)
		}
		for i := range a.Params {
			pa, pb := a.Params[i], b.Params[i]
			if pa.Name != pb.Name || !reflect.DeepEqual(pa.Enum, pb.Enum) {
				t.Errorf("mechanism %q param %d differs: %+v vs %+v", name, i, pa, pb)
			}
			if !pa.IsEnum() {
				if pa.Grid.Lo() != pb.Grid.Lo() || pa.Grid.Hi() != pb.Grid.Hi() ||
					pa.Grid.Geometric() != pb.Grid.Geometric() {
					t.Errorf("mechanism %q param %q grid differs: %v vs %v", name, pa.Name, pa.Grid, pb.Grid)
				}
			}
		}
	}
	for _, name := range inf.ResourceNames() {
		a, b := inf.Resources[name], back.Resources[name]
		if a.ReconfigTime != b.ReconfigTime || len(a.Components) != len(b.Components) {
			t.Fatalf("resource %q differs", name)
		}
		for i := range a.Components {
			if a.Components[i].Component.Name != b.Components[i].Component.Name ||
				a.Components[i].DependsOn != b.Components[i].DependsOn ||
				a.Components[i].Startup != b.Components[i].Startup {
				t.Errorf("resource %q member %d differs", name, i)
			}
		}
	}
}

func TestWriteServiceRoundTrip(t *testing.T) {
	svc, err := ParseService(miniService)
	if err != nil {
		t.Fatal(err)
	}
	rendered := svc.Spec()
	back, err := ParseService(rendered)
	if err != nil {
		t.Fatalf("reparse failed: %v\nrendered:\n%s", err, rendered)
	}
	if again := back.Spec(); again != rendered {
		t.Errorf("render not idempotent:\nfirst:\n%s\nsecond:\n%s", rendered, again)
	}
	if back.Name != svc.Name || back.HasJobSize != svc.HasJobSize {
		t.Errorf("service header differs")
	}
}

func TestWriteServiceWithJobSizeAndMechPerf(t *testing.T) {
	svc, err := ParseService(`
application=sci jobsize=10000
tier=compute
  resource=r1 sizing=static failurescope=tier
    nActive=[1-1000,+1] performance(nActive)=p.dat
    mechanism=ckpt mperformance(interval, nActive)=mp.dat
tier=db
  resource=r1 sizing=static failurescope=resource
    nActive=[1] performance=5000
`)
	if err != nil {
		t.Fatal(err)
	}
	rendered := svc.Spec()
	for _, want := range []string{"jobsize=10000", "mperformance(interval,nActive)=mp.dat",
		"performance=5000", "nActive=[1-1000,+1]", "failurescope=tier"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered service missing %q:\n%s", want, rendered)
		}
	}
	back, err := ParseService(rendered)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, rendered)
	}
	if back.JobSize != 10000 {
		t.Errorf("jobsize lost: %v", back.JobSize)
	}
	mp := back.Tiers[0].Options[0].MechPerf
	if len(mp) != 1 || mp[0].Ref != "mp.dat" || len(mp[0].Args) != 2 {
		t.Errorf("mech perf lost: %+v", mp)
	}
}

func TestFormatDurationGridRoundTrip(t *testing.T) {
	for _, src := range []string{"[1m-24h;*1.05]", "[2h]", "[10m-60m,+10m]", "[30s-5m;*2]"} {
		g, err := units.ParseDurationGrid(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		rendered := units.FormatDurationGrid(g)
		back, err := units.ParseDurationGrid(rendered)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", rendered, src, err)
		}
		if back.Lo() != g.Lo() || back.Hi() != g.Hi() || back.Geometric() != g.Geometric() {
			t.Errorf("%s → %s: grid drifted (%v vs %v)", src, rendered, g, back)
		}
		if back.Len() != g.Len() {
			t.Errorf("%s → %s: length drifted (%d vs %d)", src, rendered, g.Len(), back.Len())
		}
	}
}
