package model

import (
	"strings"
	"testing"

	"aved/internal/units"
)

const miniInfra = `
component=hw cost([inactive,active])=[100 110]
  failure=hard mtbf=100d mttr=<maint> detect_time=1m
  failure=soft mtbf=10d mttr=0 detect_time=0
component=os cost=0
  failure=soft mtbf=20d mttr=0 detect_time=0
component=app cost([inactive,active])=[0 50] loss_window=<ckpt>
  failure=soft mtbf=30d mttr=0 detect_time=0
mechanism=maint
  param=level range=[lo,hi]
    cost(level)=[10 20]
    mttr(level)=[10h 2h]
mechanism=ckpt
  param=interval range=[1m-4h;*2]
  cost=0
  loss_window=interval
resource=r1 reconfig_time=30s
  component=hw depend=null startup=1m
  component=os depend=hw startup=2m
  component=app depend=os startup=30s
`

const miniService = `
application=svc
tier=main
  resource=r1 sizing=dynamic failurescope=resource
    nActive=[1-100,+1] performance(nActive)=p.dat
`

func mustInfra(t *testing.T) *Infrastructure {
	t.Helper()
	inf, err := ParseInfrastructure(miniInfra)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

func mustDesign(t *testing.T, level string, n, s, spareWarm int) *TierDesign {
	t.Helper()
	inf := mustInfra(t)
	svc, err := ParseService(miniService)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err != nil {
		t.Fatal(err)
	}
	td := &TierDesign{
		TierName:  "main",
		Option:    &svc.Tiers[0].Options[0],
		NActive:   n,
		NSpare:    s,
		MinActive: n,
		NMinPerf:  n,
		SpareWarm: spareWarm,
		Mechanisms: []MechSetting{
			{
				Mechanism: inf.Mechanisms["maint"],
				Values:    map[string]ParamValue{"level": EnumValue(level)},
			},
			{
				Mechanism: inf.Mechanisms["ckpt"],
				Values:    map[string]ParamValue{"interval": DurationValue(2)},
			},
		},
	}
	return td
}

func TestEffectiveModesInactiveSpare(t *testing.T) {
	td := mustDesign(t, "lo", 2, 1, 0)
	ems, err := td.EffectiveModes()
	if err != nil {
		t.Fatal(err)
	}
	// hw has two modes, os and app one each.
	if len(ems) != 4 {
		t.Fatalf("effective modes = %d, want 4", len(ems))
	}
	byName := map[string]EffectiveMode{}
	for _, em := range ems {
		byName[em.Component+"/"+em.Mode] = em
	}
	hard := byName["hw/hard"]
	// Repair: detect 1m + mttr(lo) 10h + restart hw chain (1m+2m+30s).
	wantRepair := 1*units.Minute + 10*units.Hour + (1*units.Minute + 2*units.Minute + 30*units.Second)
	if hard.RepairTime != wantRepair {
		t.Errorf("hw/hard repair = %v, want %v", hard.RepairTime, wantRepair)
	}
	// Failover: detect 1m + reconfig 30s + full startup 3.5m.
	wantFO := 1*units.Minute + 30*units.Second + (1*units.Minute + 2*units.Minute + 30*units.Second)
	if hard.FailoverTime != wantFO {
		t.Errorf("hw/hard failover = %v, want %v", hard.FailoverTime, wantFO)
	}
	if !hard.UsesFailover {
		t.Error("hw/hard should fail over (10h repair >> 5m failover)")
	}
	// os soft: repair = restart os+app = 2.5m; failover 5m → no failover.
	osSoft := byName["os/soft"]
	if osSoft.RepairTime != 2*units.Minute+30*units.Second {
		t.Errorf("os/soft repair = %v", osSoft.RepairTime)
	}
	if osSoft.UsesFailover {
		t.Error("os/soft repair beats failover; no failover expected")
	}
	// app soft: repair = restart app only = 30s.
	appSoft := byName["app/soft"]
	if appSoft.RepairTime != 30*units.Second {
		t.Errorf("app/soft repair = %v", appSoft.RepairTime)
	}
}

func TestEffectiveModesActiveSpare(t *testing.T) {
	td := mustDesign(t, "hi", 2, 1, 3)
	ems, err := td.EffectiveModes()
	if err != nil {
		t.Fatal(err)
	}
	for _, em := range ems {
		if em.Component == "hw" && em.Mode == "hard" {
			// Active spare: failover = detect + reconfig only.
			want := 1*units.Minute + 30*units.Second
			if em.FailoverTime != want {
				t.Errorf("failover with hot spare = %v, want %v", em.FailoverTime, want)
			}
			// mttr(hi) = 2h.
			wantRepair := 1*units.Minute + 2*units.Hour + 3*units.Minute + 30*units.Second
			if em.RepairTime != wantRepair {
				t.Errorf("repair at hi level = %v, want %v", em.RepairTime, wantRepair)
			}
		}
	}
}

func TestEffectiveModesNoSpares(t *testing.T) {
	td := mustDesign(t, "lo", 2, 0, 0)
	ems, err := td.EffectiveModes()
	if err != nil {
		t.Fatal(err)
	}
	for _, em := range ems {
		if em.UsesFailover {
			t.Errorf("mode %s/%s uses failover with zero spares", em.Component, em.Mode)
		}
	}
}

func TestEffectiveModesMissingMechanism(t *testing.T) {
	td := mustDesign(t, "lo", 1, 0, 0)
	td.Mechanisms = nil
	if _, err := td.EffectiveModes(); err == nil {
		t.Error("missing mechanism setting should fail")
	}
}

func TestLossWindowFlowsThroughMechanism(t *testing.T) {
	td := mustDesign(t, "lo", 1, 0, 0)
	lw, ok, err := td.LossWindow()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("app component declares a loss window")
	}
	if lw != 2*units.Hour {
		t.Errorf("loss window = %v, want 2h (the chosen interval)", lw)
	}
}

func TestMechSettingValidate(t *testing.T) {
	inf := mustInfra(t)
	maint := inf.Mechanisms["maint"]
	good := MechSetting{Mechanism: maint, Values: map[string]ParamValue{"level": EnumValue("lo")}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid setting rejected: %v", err)
	}
	cases := []struct {
		name string
		ms   MechSetting
	}{
		{"nil mechanism", MechSetting{}},
		{"missing param", MechSetting{Mechanism: maint, Values: map[string]ParamValue{}}},
		{"bad enum", MechSetting{Mechanism: maint, Values: map[string]ParamValue{"level": EnumValue("zz")}}},
		{"numeric for enum", MechSetting{Mechanism: maint, Values: map[string]ParamValue{"level": DurationValue(1)}}},
		{"unknown param", MechSetting{Mechanism: maint, Values: map[string]ParamValue{
			"level": EnumValue("lo"), "bogus": EnumValue("x")}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ms.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
	ckpt := inf.Mechanisms["ckpt"]
	outOfRange := MechSetting{Mechanism: ckpt, Values: map[string]ParamValue{"interval": DurationValue(100)}}
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range numeric should fail")
	}
	enumForNumeric := MechSetting{Mechanism: ckpt, Values: map[string]ParamValue{"interval": EnumValue("x")}}
	if err := enumForNumeric.Validate(); err == nil {
		t.Error("enum value for numeric param should fail")
	}
}

func TestMechSettingEffects(t *testing.T) {
	inf := mustInfra(t)
	maint := inf.Mechanisms["maint"]
	ms := MechSetting{Mechanism: maint, Values: map[string]ParamValue{"level": EnumValue("hi")}}
	mttr, ok, err := ms.MTTR()
	if err != nil || !ok {
		t.Fatalf("MTTR: %v %v", ok, err)
	}
	if mttr != 2*units.Hour {
		t.Errorf("mttr(hi) = %v, want 2h", mttr)
	}
	c, err := ms.CostPerInstance()
	if err != nil {
		t.Fatal(err)
	}
	if c != 20 {
		t.Errorf("cost(hi) = %v, want 20", c)
	}
	if _, ok, _ := ms.LossWindow(); ok {
		t.Error("maint has no loss window effect")
	}
}

func TestTierDesignValidate(t *testing.T) {
	good := mustDesign(t, "lo", 2, 1, 0)
	if err := good.Validate(); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*TierDesign)
	}{
		{"zero actives", func(td *TierDesign) { td.NActive = 0 }},
		{"negative spares", func(td *TierDesign) { td.NSpare = -1 }},
		{"m above n", func(td *TierDesign) { td.MinActive = 5 }},
		{"m zero", func(td *TierDesign) { td.MinActive = 0 }},
		{"n outside grid", func(td *TierDesign) { td.NActive = 500; td.MinActive = 1 }},
		{"warm out of range", func(td *TierDesign) { td.SpareWarm = 9 }},
		{"warm without spares", func(td *TierDesign) { td.NSpare = 0; td.SpareWarm = 1 }},
		{"missing mechanism", func(td *TierDesign) { td.Mechanisms = td.Mechanisms[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			td := mustDesign(t, "lo", 2, 1, 0)
			tc.mutate(td)
			if err := td.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestDesignLabels(t *testing.T) {
	td := mustDesign(t, "lo", 3, 1, 0)
	td.NMinPerf = 2 // one extra active
	label := td.Label()
	for _, want := range []string{"r1", "n=3", "(+1)", "s=1", "cold", "maint=lo"} {
		if !strings.Contains(label, want) {
			t.Errorf("label %q missing %q", label, want)
		}
	}
	d := &Design{Tiers: []TierDesign{*td}}
	if err := d.Validate(); err != nil {
		t.Errorf("design validate: %v", err)
	}
	if !strings.Contains(d.Label(), "main{") {
		t.Errorf("design label = %q", d.Label())
	}
	if _, ok := d.Tier("main"); !ok {
		t.Error("Tier lookup failed")
	}
	if _, ok := d.Tier("nope"); ok {
		t.Error("Tier lookup should miss")
	}
	empty := &Design{}
	if err := empty.Validate(); err == nil {
		t.Error("empty design should fail validation")
	}
}

func TestBindInfraErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"dup component", "component=a cost=0 failure=f mtbf=1d mttr=0 detect_time=0 component=a cost=0 failure=f mtbf=1d mttr=0 detect_time=0"},
		{"failure outside component", "failure=f mtbf=1d"},
		{"no failure modes", "component=a cost=0"},
		{"missing mtbf", "component=a cost=0 failure=f mttr=0 detect_time=0"},
		{"unknown mech ref", "component=a cost=0 failure=f mtbf=1d mttr=<nope> detect_time=0"},
		{"bad cost", "component=a cost=abc failure=f mtbf=1d mttr=0 detect_time=0"},
		{"bad duration", "component=a cost=0 failure=f mtbf=xyz mttr=0 detect_time=0"},
		{"param outside mechanism", "param=p range=[a,b]"},
		{"table size mismatch", "mechanism=m param=p range=[a,b] cost(p)=[1 2 3]"},
		{"effect on numeric param", "mechanism=m param=p range=[1m-2m;*2] cost(p)=[1 2]"},
		{"unknown effect param", "mechanism=m cost(q)=[1]"},
		{"resource unknown component", "resource=r reconfig_time=0 component=ghost depend=null startup=1s"},
		{"resource empty", "component=a cost=0 failure=f mtbf=1d mttr=0 detect_time=0 resource=r reconfig_time=0"},
		{"bad dependency", "component=a cost=0 failure=f mtbf=1d mttr=0 detect_time=0 resource=r reconfig_time=0 component=a depend=ghost startup=1s"},
		{"tier in infra", "tier=t"},
		{"dup failure mode", "component=a cost=0 failure=f mtbf=1d mttr=0 detect_time=0 failure=f mtbf=1d mttr=0 detect_time=0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseInfrastructure(tc.src); err == nil {
				t.Errorf("ParseInfrastructure(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestBindServiceErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no application", "tier=t"},
		{"tier before application", "tier=t application=a"},
		{"resource outside tier", "application=a resource=r sizing=static failurescope=tier nActive=[1] performance=1"},
		{"bad sizing", "application=a tier=t resource=r sizing=maybe failurescope=tier nActive=[1] performance=1"},
		{"bad scope", "application=a tier=t resource=r sizing=static failurescope=galaxy nActive=[1] performance=1"},
		{"missing nActive", "application=a tier=t resource=r sizing=static failurescope=tier performance=1"},
		{"missing performance", "application=a tier=t resource=r sizing=static failurescope=tier nActive=[1]"},
		{"bad jobsize", "application=a jobsize=-5"},
		{"mechanism outside option", "application=a tier=t mechanism=ck mperformance(x)=f.dat"},
		{"dup tier", "application=a tier=t tier=t"},
		{"component in service", "application=a component=c cost=0"},
		{"zero nActive", "application=a tier=t resource=r sizing=static failurescope=tier nActive=[0-5,+1] performance=1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseService(tc.src); err == nil {
				t.Errorf("ParseService(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestServiceResolveErrors(t *testing.T) {
	inf := mustInfra(t)
	svc, err := ParseService("application=a tier=t resource=ghost sizing=static failurescope=tier nActive=[1] performance=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Resolve(inf); err == nil {
		t.Error("unknown resource should fail to resolve")
	}
	empty := &Service{Name: "x"}
	if err := empty.Resolve(inf); err == nil {
		t.Error("service without tiers should fail")
	}
}

func TestRequirementsValidate(t *testing.T) {
	good := Requirements{Kind: ReqEnterprise, Throughput: 100, MaxAnnualDowntime: units.Hour}
	if err := good.Validate(); err != nil {
		t.Errorf("valid requirements rejected: %v", err)
	}
	bad := []Requirements{
		{},
		{Kind: ReqEnterprise},
		{Kind: ReqEnterprise, Throughput: 100},
		{Kind: ReqJob},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("requirements %d should fail", i)
		}
	}
	job := Requirements{Kind: ReqJob, MaxJobTime: 10 * units.Hour}
	if err := job.Validate(); err != nil {
		t.Errorf("job requirements rejected: %v", err)
	}
}

func TestOpModeAndEnumStrings(t *testing.T) {
	if ModeInactive.String() != "inactive" || ModeActive.String() != "active" {
		t.Error("OpMode strings wrong")
	}
	if SizingStatic.String() != "static" || SizingDynamic.String() != "dynamic" {
		t.Error("Sizing strings wrong")
	}
	if ScopeResource.String() != "resource" || ScopeTier.String() != "tier" {
		t.Error("FailureScope strings wrong")
	}
	if OpMode(9).String() == "" || Sizing(9).String() == "" || FailureScope(9).String() == "" {
		t.Error("unknown enum values should still render")
	}
}

func TestComponentMaxInstances(t *testing.T) {
	inf, err := ParseInfrastructure("component=a cost=0 max_instances=3 failure=f mtbf=1d mttr=0 detect_time=0")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Components["a"].MaxInstances != 3 {
		t.Errorf("max_instances = %d, want 3", inf.Components["a"].MaxInstances)
	}
	if _, err := ParseInfrastructure("component=a cost=0 max_instances=0 failure=f mtbf=1d mttr=0 detect_time=0"); err == nil {
		t.Error("zero max_instances should fail")
	}
}
