package model

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"aved/internal/units"
)

// WriteInfrastructure renders a bound infrastructure model back into
// the specification language (the Fig. 3 format). Writing a parsed
// model and reparsing the output yields an equivalent model, which lets
// programs edit infrastructure programmatically and persist it.
func WriteInfrastructure(w io.Writer, inf *Infrastructure) error {
	bw := bufio.NewWriter(w)
	for _, name := range inf.componentOrder {
		writeComponent(bw, inf.Components[name])
	}
	for _, name := range inf.mechanismOrder {
		writeMechanism(bw, inf.Mechanisms[name])
	}
	for _, name := range inf.resourceOrder {
		writeResource(bw, inf.Resources[name])
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write infrastructure: %w", err)
	}
	return nil
}

// Spec renders the infrastructure as spec text.
func (inf *Infrastructure) Spec() string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = WriteInfrastructure(&sb, inf)
	return sb.String()
}

func writeComponent(w *bufio.Writer, c *Component) {
	fmt.Fprintf(w, "component=%s %s", c.Name, costAttr(c.CostInactive, c.CostActive))
	if c.MaxInstances > 0 {
		fmt.Fprintf(w, " max_instances=%d", c.MaxInstances)
	}
	if c.HasLossWindow {
		if c.LossWindowRef != "" {
			fmt.Fprintf(w, " loss_window=<%s>", c.LossWindowRef)
		} else {
			fmt.Fprintf(w, " loss_window=%s", c.LossWindow)
		}
	}
	fmt.Fprintln(w)
	for _, f := range c.Failures {
		mtbf := f.MTBF.String()
		if f.MTBFRef != "" {
			mtbf = "<" + f.MTBFRef + ">"
		}
		mttr := f.MTTR.String()
		if f.MTTRRef != "" {
			mttr = "<" + f.MTTRRef + ">"
		}
		fmt.Fprintf(w, "  failure=%s mtbf=%s mttr=%s detect_time=%s\n",
			f.Name, mtbf, mttr, f.DetectTime)
	}
}

func costAttr(inactive, active units.Money) string {
	if inactive == active {
		return fmt.Sprintf("cost=%s", active)
	}
	return fmt.Sprintf("cost([inactive,active])=[%s %s]", inactive, active)
}

func writeMechanism(w *bufio.Writer, m *Mechanism) {
	fmt.Fprintf(w, "mechanism=%s\n", m.Name)
	for _, p := range m.Params {
		if p.IsEnum() {
			fmt.Fprintf(w, "  param=%s range=[%s]\n", p.Name, strings.Join(p.Enum, ","))
		} else {
			fmt.Fprintf(w, "  param=%s range=%s\n", p.Name, units.FormatDurationGrid(p.Grid))
		}
	}
	for _, e := range m.Effects {
		if e.ByParam != "" {
			fmt.Fprintf(w, "  %s(%s)=[%s]\n", e.Attr, e.ByParam, strings.Join(e.Table, " "))
		} else {
			fmt.Fprintf(w, "  %s=%s\n", e.Attr, e.Scalar)
		}
	}
}

func writeResource(w *bufio.Writer, r *ResourceType) {
	fmt.Fprintf(w, "resource=%s reconfig_time=%s\n", r.Name, r.ReconfigTime)
	for _, rc := range r.Components {
		dep := rc.DependsOn
		if dep == "" {
			dep = "null"
		}
		fmt.Fprintf(w, "  component=%s depend=%s startup=%s\n", rc.Component.Name, dep, rc.Startup)
	}
}

// WriteService renders a service model back into the specification
// language (the Fig. 4/5 format).
func WriteService(w io.Writer, svc *Service) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "application=%s", svc.Name)
	if svc.HasJobSize {
		fmt.Fprintf(bw, " jobsize=%g", svc.JobSize)
	}
	fmt.Fprintln(bw)
	if svc.Reqs != nil {
		writeRequirements(bw, svc.Reqs)
	}
	for ti := range svc.Tiers {
		tier := &svc.Tiers[ti]
		fmt.Fprintf(bw, "tier=%s\n", tier.Name)
		for oi := range tier.Options {
			writeOption(bw, &tier.Options[oi])
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write service: %w", err)
	}
	return nil
}

// Spec renders the service as spec text.
func (s *Service) Spec() string {
	var sb strings.Builder
	_ = WriteService(&sb, s)
	return sb.String()
}

func writeRequirements(w *bufio.Writer, r *Requirements) {
	switch r.Kind {
	case ReqEnterprise:
		fmt.Fprintf(w, "requirements=enterprise\n")
		if len(r.Traffic) > 0 {
			samples := make([]string, len(r.Traffic))
			for i, v := range r.Traffic {
				samples[i] = fmt.Sprintf("%g", v)
			}
			fmt.Fprintf(w, "  traffic(hour)=[%s]\n", strings.Join(samples, " "))
		} else {
			fmt.Fprintf(w, "  throughput=%g\n", r.Throughput)
		}
		fmt.Fprintf(w, "  max_annual_downtime=%s\n", r.MaxAnnualDowntime)
		if r.DegradedThroughput > 0 {
			fmt.Fprintf(w, "  degraded_throughput=%g\n", r.DegradedThroughput)
		}
	case ReqJob:
		fmt.Fprintf(w, "requirements=job\n  max_job_time=%s\n", r.MaxJobTime)
	}
}

func writeOption(w *bufio.Writer, opt *ResourceOption) {
	fmt.Fprintf(w, "  resource=%s sizing=%s failurescope=%s\n", opt.Resource, opt.Sizing, opt.FailureScope)
	fmt.Fprintf(w, "    nActive=%s", opt.NActive)
	if opt.PerfIsScalar {
		fmt.Fprintf(w, " performance=%g\n", opt.PerfScalar)
	} else {
		fmt.Fprintf(w, " performance(nActive)=%s\n", opt.PerfRef)
	}
	for _, mp := range opt.MechPerf {
		fmt.Fprintf(w, "    mechanism=%s mperformance(%s)=%s\n",
			mp.Mechanism, strings.Join(mp.Args, ","), mp.Ref)
	}
}
