// Package model defines Aved's typed design-space model — components,
// failure modes, availability mechanisms, resource types, services and
// tiers (§3 of the paper) — and binds parsed spec documents into
// validated model values. It also defines designs (the output of the
// search) and derives the effective failure-mode parameters (repair
// time, failover time) that the availability model of §4.2 consumes.
package model

import (
	"fmt"
	"math/bits"

	"aved/internal/units"
)

// OpMode is the operational mode of a component instance in a design.
type OpMode int

// Operational modes. Components of active resources must be active;
// spare resources may keep some or all components inactive (powered
// off / unlicensed) to reduce cost at the price of failover time.
const (
	ModeInactive OpMode = iota + 1
	ModeActive
)

// String renders the mode in spec vocabulary.
func (m OpMode) String() string {
	switch m {
	case ModeInactive:
		return "inactive"
	case ModeActive:
		return "active"
	default:
		return fmt.Sprintf("OpMode(%d)", int(m))
	}
}

// FailureMode describes one way a component can fail (§3.1.1).
type FailureMode struct {
	Name       string
	MTBF       units.Duration
	MTBFRef    string         // mechanism supplying the MTBF (mtbf=<rejuvenation>)
	MTTR       units.Duration // repair time once detected; used when MTTRRef is empty
	MTTRRef    string         // mechanism supplying the repair time (mttr=<maintenanceA>)
	DetectTime units.Duration
	// qual is the precomputed "component/mode" display name, filled at
	// bind time so the search's effective-mode resolutions need no
	// per-candidate string concatenation. Empty on hand-built values;
	// consumers fall back to concatenating (see EffectiveMode.Qual).
	qual string
}

// Component is the basic unit of fault management (§3.1.1).
type Component struct {
	Name          string
	CostInactive  units.Money
	CostActive    units.Money
	MaxInstances  int // 0 means unlimited
	LossWindow    units.Duration
	HasLossWindow bool
	LossWindowRef string // mechanism supplying the loss window (loss_window=<checkpoint>)
	Failures      []FailureMode
}

// Cost reports the component's annual cost in the given mode.
func (c *Component) Cost(mode OpMode) units.Money {
	if mode == ModeActive {
		return c.CostActive
	}
	return c.CostInactive
}

// FailureMode reports the named failure mode, if declared.
func (c *Component) FailureMode(name string) (FailureMode, bool) {
	for _, f := range c.Failures {
		if f.Name == name {
			return f, true
		}
	}
	return FailureMode{}, false
}

// Param is one configuration parameter of an availability mechanism.
// Parameters are either enumerated (maintenance levels) or numeric
// duration grids (checkpoint intervals).
type Param struct {
	Name string
	Enum []string   // enumerated settings, nil for numeric parameters
	Grid units.Grid // numeric settings in hours; valid when Enum is nil
}

// IsEnum reports whether the parameter takes enumerated settings.
func (p Param) IsEnum() bool { return len(p.Enum) > 0 }

// EnumIndex reports the position of an enumerated setting.
func (p Param) EnumIndex(v string) (int, bool) {
	for i, e := range p.Enum {
		if e == v {
			return i, true
		}
	}
	return 0, false
}

// Effect is one attribute an availability mechanism specifies or
// modifies (§3.1.2): either a table indexed by one parameter
// (mttr(level)=[38h 15h 8h 6h]) or a scalar, which may name a parameter
// whose chosen value flows through (loss_window=checkpoint_interval).
type Effect struct {
	Attr    string   // "cost", "mttr", "loss_window", …
	ByParam string   // indexing parameter name; empty for scalars
	Table   []string // raw table entries parallel to the parameter's enum
	Scalar  string   // raw scalar value or parameter name
}

// Mechanism is a configurable availability mechanism (§3.1.2).
type Mechanism struct {
	Name    string
	Params  []Param
	Effects []Effect
}

// Param reports the named parameter, if declared.
func (m *Mechanism) Param(name string) (Param, bool) {
	for _, p := range m.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Effect reports the effect on the named attribute, if declared.
func (m *Mechanism) Effect(attr string) (Effect, bool) {
	for _, e := range m.Effects {
		if e.Attr == attr {
			return e, true
		}
	}
	return Effect{}, false
}

// ResourceComponent is a component's place inside a resource type:
// its startup latency and the component it depends on (§3.1.3).
type ResourceComponent struct {
	Component *Component
	DependsOn string // name of the prerequisite component; "" for none
	Startup   units.Duration
}

// ResourceType is a combination of components allocated as a unit
// (§3.1.3).
type ResourceType struct {
	Name         string
	ReconfigTime units.Duration
	Components   []ResourceComponent
}

// Component reports the member with the given component name.
func (r *ResourceType) Component(name string) (ResourceComponent, bool) {
	for _, rc := range r.Components {
		if rc.Component.Name == name {
			return rc, true
		}
	}
	return ResourceComponent{}, false
}

// Affected reports the member component plus every transitive
// dependent: the set that must restart when the named component fails.
func (r *ResourceType) Affected(name string) []ResourceComponent {
	var out []ResourceComponent
	affected := map[string]bool{name: true}
	// Members are declared in dependency order, so one forward pass
	// closes the dependent set.
	for _, rc := range r.Components {
		if affected[rc.Component.Name] || (rc.DependsOn != "" && affected[rc.DependsOn]) {
			affected[rc.Component.Name] = true
			out = append(out, rc)
		}
	}
	return out
}

// RestartTime reports the serial startup latency of the named component
// and its transitive dependents — the paper's "startup times of the
// components affected by the failure". It runs on the design-search hot
// path (every effective-mode resolution), so the affected set is
// tracked as an index bitmask rather than Affected's map, which keeps
// the common case allocation-free.
func (r *ResourceType) RestartTime(name string) units.Duration {
	if len(r.Components) > 64 {
		var total units.Duration
		for _, rc := range r.Affected(name) {
			total += rc.Startup
		}
		return total
	}
	var mask uint64
	var total units.Duration
	for i, rc := range r.Components {
		if r.inAffected(mask, rc.Component.Name, name) ||
			(rc.DependsOn != "" && r.inAffected(mask, rc.DependsOn, name)) {
			mask |= 1 << uint(i)
			total += rc.Startup
		}
	}
	return total
}

// inAffected reports whether s names the failed component or any
// already-masked member — the bitmask counterpart of Affected's set
// lookup.
func (r *ResourceType) inAffected(mask uint64, s, failed string) bool {
	if s == failed {
		return true
	}
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		if r.Components[i].Component.Name == s {
			return true
		}
		mask &= mask - 1
	}
	return false
}

// FullStartup reports the serial startup latency of every component:
// the time to bring a fully inactive spare online.
func (r *ResourceType) FullStartup() units.Duration {
	var total units.Duration
	for _, rc := range r.Components {
		total += rc.Startup
	}
	return total
}

// MaxInstances reports the tightest component-level instance cap on
// the resource type: the largest number of resource instances (active
// plus spare) a design may use. Zero means unlimited.
func (r *ResourceType) MaxInstances() int {
	cap := 0
	for _, rc := range r.Components {
		m := rc.Component.MaxInstances
		if m == 0 {
			continue
		}
		if cap == 0 || m < cap {
			cap = m
		}
	}
	return cap
}

// Mechanisms reports the names of every availability mechanism
// referenced by the resource's components (through mttr=<m> or
// loss_window=<m>), in first-reference order.
func (r *ResourceType) Mechanisms() []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, rc := range r.Components {
		add(rc.Component.LossWindowRef)
		for _, f := range rc.Component.Failures {
			add(f.MTTRRef)
			add(f.MTBFRef)
		}
	}
	return out
}

// Infrastructure is the bound infrastructure model: the repository of
// building blocks available to every design (§3.1).
type Infrastructure struct {
	Components map[string]*Component
	Mechanisms map[string]*Mechanism
	Resources  map[string]*ResourceType

	componentOrder []string
	mechanismOrder []string
	resourceOrder  []string
}

// ComponentNames reports component names in declaration order.
func (inf *Infrastructure) ComponentNames() []string { return inf.componentOrder }

// MechanismNames reports mechanism names in declaration order.
func (inf *Infrastructure) MechanismNames() []string { return inf.mechanismOrder }

// ResourceNames reports resource type names in declaration order.
func (inf *Infrastructure) ResourceNames() []string { return inf.resourceOrder }
