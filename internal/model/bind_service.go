package model

import (
	"fmt"
	"strconv"

	"aved/internal/spec"
	"aved/internal/units"
)

// BindService interprets a parsed spec document as a service model
// (the format of Figs. 4 and 5).
func BindService(doc *spec.Document) (*Service, error) {
	b := &serviceBinder{}
	for i := range doc.Clauses {
		if err := b.clause(&doc.Clauses[i]); err != nil {
			return nil, err
		}
	}
	if b.svc == nil {
		return nil, fmt.Errorf("service model: missing application clause")
	}
	return b.svc, nil
}

// ParseService parses and binds service spec source text.
func ParseService(src string) (*Service, error) {
	doc, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return BindService(doc)
}

type serviceBinder struct {
	svc     *Service
	curTier *Tier
	curOpt  *ResourceOption
}

func (b *serviceBinder) clause(c *spec.Clause) error {
	switch c.Key {
	case "application":
		return b.application(c)
	case "tier":
		return b.tier(c)
	case "resource":
		return b.resourceOption(c)
	case "mechanism":
		return b.mechanismUse(c)
	case "requirements":
		return b.requirements(c)
	default:
		return fmt.Errorf("spec:%s: clause %q does not belong in a service model", c.Pos, c.Key)
	}
}

func (b *serviceBinder) application(c *spec.Clause) error {
	if b.svc != nil {
		return fmt.Errorf("spec:%s: duplicate application clause", c.Pos)
	}
	b.svc = &Service{Name: c.Name}
	for _, a := range c.Attrs {
		switch a.Key {
		case "jobsize":
			v, err := strconv.ParseFloat(a.Value.Text, 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("spec:%s: jobsize: want a positive number, got %q", a.Pos, a.Value.Text)
			}
			b.svc.JobSize = v
			b.svc.HasJobSize = true
		default:
			return fmt.Errorf("spec:%s: application %q: unknown attribute %q", a.Pos, c.Name, a.Key)
		}
	}
	return nil
}

func (b *serviceBinder) tier(c *spec.Clause) error {
	if b.svc == nil {
		return fmt.Errorf("spec:%s: tier clause before application clause", c.Pos)
	}
	if _, dup := b.svc.Tier(c.Name); dup {
		return fmt.Errorf("spec:%s: duplicate tier %q", c.Pos, c.Name)
	}
	if len(c.Attrs) > 0 {
		return fmt.Errorf("spec:%s: tier %q: unexpected attribute %q", c.Pos, c.Name, c.Attrs[0].Key)
	}
	b.svc.Tiers = append(b.svc.Tiers, Tier{Name: c.Name})
	b.curTier = &b.svc.Tiers[len(b.svc.Tiers)-1]
	b.curOpt = nil
	return nil
}

func (b *serviceBinder) resourceOption(c *spec.Clause) error {
	if b.curTier == nil {
		return fmt.Errorf("spec:%s: resource clause %q outside a tier", c.Pos, c.Name)
	}
	opt := ResourceOption{Resource: c.Name}
	for _, a := range c.Attrs {
		switch a.Key {
		case "sizing":
			switch a.Value.Text {
			case "static":
				opt.Sizing = SizingStatic
			case "dynamic":
				opt.Sizing = SizingDynamic
			default:
				return fmt.Errorf("spec:%s: resource %q: sizing must be static or dynamic, got %q",
					a.Pos, c.Name, a.Value.Text)
			}
		case "failurescope":
			switch a.Value.Text {
			case "resource":
				opt.FailureScope = ScopeResource
			case "tier":
				opt.FailureScope = ScopeTier
			default:
				return fmt.Errorf("spec:%s: resource %q: failurescope must be resource or tier, got %q",
					a.Pos, c.Name, a.Value.Text)
			}
		case "nActive":
			g, err := units.ParseIntGrid("[" + a.Value.Text + "]")
			if err != nil {
				return fmt.Errorf("spec:%s: resource %q nActive: %w", a.Pos, c.Name, err)
			}
			if g.Lo() < 1 {
				return fmt.Errorf("spec:%s: resource %q nActive: counts must be at least 1", a.Pos, c.Name)
			}
			opt.NActive = g
		case "performance":
			switch len(a.Args) {
			case 0:
				v, err := strconv.ParseFloat(a.Value.Text, 64)
				if err != nil || v <= 0 {
					return fmt.Errorf("spec:%s: resource %q performance: want a positive number, got %q",
						a.Pos, c.Name, a.Value.Text)
				}
				opt.PerfScalar = v
				opt.PerfIsScalar = true
			case 1:
				if a.Args[0] != "nActive" {
					return fmt.Errorf("spec:%s: resource %q performance: argument must be nActive, got %q",
						a.Pos, c.Name, a.Args[0])
				}
				opt.PerfRef = a.Value.Text
			default:
				return fmt.Errorf("spec:%s: resource %q performance: too many arguments", a.Pos, c.Name)
			}
		default:
			return fmt.Errorf("spec:%s: resource %q: unknown attribute %q", a.Pos, c.Name, a.Key)
		}
	}
	if opt.Sizing == 0 {
		return fmt.Errorf("spec:%s: resource %q: missing sizing", c.Pos, c.Name)
	}
	if opt.FailureScope == 0 {
		return fmt.Errorf("spec:%s: resource %q: missing failurescope", c.Pos, c.Name)
	}
	if opt.NActive == (units.Grid{}) {
		return fmt.Errorf("spec:%s: resource %q: missing nActive", c.Pos, c.Name)
	}
	if opt.PerfRef == "" && !opt.PerfIsScalar {
		return fmt.Errorf("spec:%s: resource %q: missing performance", c.Pos, c.Name)
	}
	b.curTier.Options = append(b.curTier.Options, opt)
	b.curOpt = &b.curTier.Options[len(b.curTier.Options)-1]
	return nil
}

func (b *serviceBinder) requirements(c *spec.Clause) error {
	if b.svc == nil {
		return fmt.Errorf("spec:%s: requirements clause before application clause", c.Pos)
	}
	if b.svc.Reqs != nil {
		return fmt.Errorf("spec:%s: duplicate requirements clause", c.Pos)
	}
	req := &Requirements{}
	switch c.Name {
	case "enterprise":
		req.Kind = ReqEnterprise
	case "job":
		req.Kind = ReqJob
	default:
		return fmt.Errorf("spec:%s: requirements must be enterprise or job, got %q", c.Pos, c.Name)
	}
	for _, a := range c.Attrs {
		switch a.Key {
		case "throughput":
			if req.Kind != ReqEnterprise {
				return fmt.Errorf("spec:%s: throughput only applies to enterprise requirements", a.Pos)
			}
			v, err := strconv.ParseFloat(a.Value.Text, 64)
			if err != nil {
				return fmt.Errorf("spec:%s: requirements throughput: want a number, got %q", a.Pos, a.Value.Text)
			}
			req.Throughput = v
		case "traffic":
			if req.Kind != ReqEnterprise {
				return fmt.Errorf("spec:%s: traffic only applies to enterprise requirements", a.Pos)
			}
			if len(a.Args) != 1 || a.Args[0] != "hour" {
				return fmt.Errorf("spec:%s: requirements traffic: argument must be hour", a.Pos)
			}
			items := a.Value.Items()
			if len(items) == 0 {
				return fmt.Errorf("spec:%s: requirements traffic: empty curve", a.Pos)
			}
			req.Traffic = make([]float64, 0, len(items))
			for _, it := range items {
				v, err := strconv.ParseFloat(it, 64)
				if err != nil {
					return fmt.Errorf("spec:%s: requirements traffic: want numbers, got %q", a.Pos, it)
				}
				req.Traffic = append(req.Traffic, v)
			}
		case "max_annual_downtime":
			if req.Kind != ReqEnterprise {
				return fmt.Errorf("spec:%s: max_annual_downtime only applies to enterprise requirements", a.Pos)
			}
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: requirements max_annual_downtime: %w", a.Pos, err)
			}
			req.MaxAnnualDowntime = d
		case "degraded_throughput":
			if req.Kind != ReqEnterprise {
				return fmt.Errorf("spec:%s: degraded_throughput only applies to enterprise requirements", a.Pos)
			}
			v, err := strconv.ParseFloat(a.Value.Text, 64)
			if err != nil {
				return fmt.Errorf("spec:%s: requirements degraded_throughput: want a number, got %q", a.Pos, a.Value.Text)
			}
			req.DegradedThroughput = v
		case "max_job_time":
			if req.Kind != ReqJob {
				return fmt.Errorf("spec:%s: max_job_time only applies to job requirements", a.Pos)
			}
			d, err := units.ParseDuration(a.Value.Text)
			if err != nil {
				return fmt.Errorf("spec:%s: requirements max_job_time: %w", a.Pos, err)
			}
			req.MaxJobTime = d
		default:
			return fmt.Errorf("spec:%s: requirements: unknown attribute %q", a.Pos, a.Key)
		}
	}
	if err := req.Validate(); err != nil {
		return fmt.Errorf("spec:%s: %w", c.Pos, err)
	}
	b.svc.Reqs = req
	return nil
}

func (b *serviceBinder) mechanismUse(c *spec.Clause) error {
	if b.curOpt == nil {
		return fmt.Errorf("spec:%s: mechanism clause %q outside a resource option", c.Pos, c.Name)
	}
	mp := MechPerfRef{Mechanism: c.Name}
	for _, a := range c.Attrs {
		switch a.Key {
		case "mperformance":
			if len(a.Args) == 0 {
				return fmt.Errorf("spec:%s: mechanism %q mperformance: missing arguments", a.Pos, c.Name)
			}
			mp.Args = append([]string(nil), a.Args...)
			mp.Ref = a.Value.Text
		default:
			return fmt.Errorf("spec:%s: mechanism %q: unknown attribute %q", a.Pos, c.Name, a.Key)
		}
	}
	if mp.Ref == "" {
		return fmt.Errorf("spec:%s: mechanism %q: missing mperformance", c.Pos, c.Name)
	}
	b.curOpt.MechPerf = append(b.curOpt.MechPerf, mp)
	return nil
}
