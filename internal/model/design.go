package model

import (
	"fmt"
	"sort"
	"strings"

	"aved/internal/units"
)

// ParamValue is one chosen setting of a mechanism parameter: an
// enumerated value (maintenance level) or a numeric duration in hours
// (checkpoint interval).
type ParamValue struct {
	Str   string  // enumerated setting; display form for numeric settings
	Hours float64 // numeric setting in hours; meaningful when IsNum
	IsNum bool
}

// EnumValue builds an enumerated parameter value.
func EnumValue(s string) ParamValue { return ParamValue{Str: s} }

// DurationValue builds a numeric duration parameter value.
func DurationValue(hours float64) ParamValue {
	return ParamValue{Str: units.FromHours(hours).String(), Hours: hours, IsNum: true}
}

// String renders the setting.
func (v ParamValue) String() string { return v.Str }

// MechSetting is one availability mechanism with all its parameters
// resolved to concrete values — part of a complete design.
type MechSetting struct {
	Mechanism *Mechanism
	Values    map[string]ParamValue
}

// Validate checks that every declared parameter has a value within its
// range and that no extraneous values are present.
func (ms MechSetting) Validate() error {
	if ms.Mechanism == nil {
		return fmt.Errorf("mechanism setting: nil mechanism")
	}
	for _, p := range ms.Mechanism.Params {
		v, ok := ms.Values[p.Name]
		if !ok {
			return fmt.Errorf("mechanism %q: parameter %q has no value", ms.Mechanism.Name, p.Name)
		}
		if p.IsEnum() {
			if v.IsNum {
				return fmt.Errorf("mechanism %q: parameter %q wants an enumerated value, got %v",
					ms.Mechanism.Name, p.Name, v)
			}
			if _, ok := p.EnumIndex(v.Str); !ok {
				return fmt.Errorf("mechanism %q: %q is not a setting of parameter %q",
					ms.Mechanism.Name, v.Str, p.Name)
			}
		} else {
			if !v.IsNum {
				return fmt.Errorf("mechanism %q: parameter %q wants a numeric value, got %q",
					ms.Mechanism.Name, p.Name, v.Str)
			}
			if !p.Grid.Contains(v.Hours) {
				return fmt.Errorf("mechanism %q: parameter %q value %v outside range %v",
					ms.Mechanism.Name, p.Name, v.Hours, p.Grid)
			}
		}
	}
	for name := range ms.Values {
		if _, ok := ms.Mechanism.Param(name); !ok {
			return fmt.Errorf("mechanism %q: unknown parameter %q", ms.Mechanism.Name, name)
		}
	}
	return nil
}

// lookupRaw resolves the mechanism's effect on attr to a raw string
// under this setting. The second result reports whether the mechanism
// declares the effect at all.
func (ms MechSetting) lookupRaw(attr string) (string, bool, error) {
	eff, ok := ms.Mechanism.Effect(attr)
	if !ok {
		return "", false, nil
	}
	if eff.ByParam != "" {
		v, ok := ms.Values[eff.ByParam]
		if !ok {
			return "", true, fmt.Errorf("mechanism %q effect %q: parameter %q unset",
				ms.Mechanism.Name, attr, eff.ByParam)
		}
		p, _ := ms.Mechanism.Param(eff.ByParam)
		idx, ok := p.EnumIndex(v.Str)
		if !ok {
			return "", true, fmt.Errorf("mechanism %q effect %q: %q is not a setting of %q",
				ms.Mechanism.Name, attr, v.Str, eff.ByParam)
		}
		return eff.Table[idx], true, nil
	}
	// A scalar effect may name a parameter, in which case the chosen
	// parameter value flows through (loss_window=checkpoint_interval).
	if _, isParam := ms.Mechanism.Param(eff.Scalar); isParam {
		v, ok := ms.Values[eff.Scalar]
		if !ok {
			return "", true, fmt.Errorf("mechanism %q effect %q: parameter %q unset",
				ms.Mechanism.Name, attr, eff.Scalar)
		}
		if v.IsNum {
			return units.FromHours(v.Hours).String(), true, nil
		}
		return v.Str, true, nil
	}
	return eff.Scalar, true, nil
}

// MTTR reports the repair time this setting supplies, if the mechanism
// has an mttr effect.
func (ms MechSetting) MTTR() (units.Duration, bool, error) {
	raw, ok, err := ms.lookupRaw("mttr")
	if !ok || err != nil {
		return 0, ok, err
	}
	d, err := units.ParseDuration(raw)
	if err != nil {
		return 0, true, fmt.Errorf("mechanism %q mttr: %w", ms.Mechanism.Name, err)
	}
	return d, true, nil
}

// MTBF reports the mean time between failures this setting supplies,
// if the mechanism has an mtbf effect (e.g. software rejuvenation
// schedules that stretch a component's effective MTBF).
func (ms MechSetting) MTBF() (units.Duration, bool, error) {
	raw, ok, err := ms.lookupRaw("mtbf")
	if !ok || err != nil {
		return 0, ok, err
	}
	d, err := units.ParseDuration(raw)
	if err != nil {
		return 0, true, fmt.Errorf("mechanism %q mtbf: %w", ms.Mechanism.Name, err)
	}
	return d, true, nil
}

// LossWindow reports the loss window this setting supplies, if the
// mechanism has a loss_window effect.
func (ms MechSetting) LossWindow() (units.Duration, bool, error) {
	raw, ok, err := ms.lookupRaw("loss_window")
	if !ok || err != nil {
		return 0, ok, err
	}
	d, err := units.ParseDuration(raw)
	if err != nil {
		return 0, true, fmt.Errorf("mechanism %q loss_window: %w", ms.Mechanism.Name, err)
	}
	return d, true, nil
}

// CostPerInstance reports the mechanism's annual cost per covered
// resource instance under this setting. Mechanisms without a cost
// effect are free.
func (ms MechSetting) CostPerInstance() (units.Money, error) {
	raw, ok, err := ms.lookupRaw("cost")
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	m, err := units.ParseMoney(raw)
	if err != nil {
		return 0, fmt.Errorf("mechanism %q cost: %w", ms.Mechanism.Name, err)
	}
	return m, nil
}

// Label renders the setting compactly: "maintenanceA=gold" or
// "checkpoint(storage_location=peer,checkpoint_interval=2h)".
func (ms MechSetting) Label() string {
	if len(ms.Values) == 1 {
		for _, v := range ms.Values {
			return ms.Mechanism.Name + "=" + v.String()
		}
	}
	keys := make([]string, 0, len(ms.Values))
	for k := range ms.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+ms.Values[k].String())
	}
	return ms.Mechanism.Name + "(" + strings.Join(parts, ",") + ")"
}

// TierDesign resolves every design choice for one tier (§4): resource
// type, active and spare counts, spare operational mode, and the
// settings of every mechanism the resource references.
type TierDesign struct {
	TierName  string
	Option    *ResourceOption
	NActive   int
	NSpare    int
	MinActive int // m: minimum actives for the tier to be up
	NMinPerf  int // actives needed for performance with no failures
	// SpareWarm is the number of leading components (in dependency
	// order) kept in active mode on each spare resource: 0 is a cold
	// spare (everything powered off), len(components) a hot spare.
	// Intermediate levels trade spare cost for failover time — the
	// paper's per-component spare operational modes (§4, dimension 4),
	// restricted to dependency-closed sets (a component cannot run
	// without its dependency).
	SpareWarm  int
	Mechanisms []MechSetting
}

// Resource reports the tier's resource type.
func (td *TierDesign) Resource() *ResourceType { return td.Option.ResourceType() }

// SpareComponentMode reports the operational mode of the i-th resource
// component on the tier's spare resources.
func (td *TierDesign) SpareComponentMode(i int) OpMode {
	if i < td.SpareWarm {
		return ModeActive
	}
	return ModeInactive
}

// spareWarmthLabel renders the warmth compactly.
func (td *TierDesign) spareWarmthLabel() string {
	total := len(td.Resource().Components)
	switch td.SpareWarm {
	case 0:
		return "cold"
	case total:
		return "hot"
	default:
		return fmt.Sprintf("warm%d/%d", td.SpareWarm, total)
	}
}

// Total reports the total resource count, active plus spare.
func (td *TierDesign) Total() int { return td.NActive + td.NSpare }

// NExtra reports the active resources beyond the performance minimum —
// the paper's n_extra family coordinate.
func (td *TierDesign) NExtra() int { return td.NActive - td.NMinPerf }

// Mechanism reports the setting for the named mechanism.
func (td *TierDesign) Mechanism(name string) (MechSetting, bool) {
	for _, ms := range td.Mechanisms {
		if ms.Mechanism != nil && ms.Mechanism.Name == name {
			return ms, true
		}
	}
	return MechSetting{}, false
}

// LossWindow reports the tier's loss window: the largest loss window of
// any component in the resource, with mechanism references resolved.
func (td *TierDesign) LossWindow() (units.Duration, bool, error) {
	var (
		lw  units.Duration
		has bool
	)
	for _, rc := range td.Resource().Components {
		comp := rc.Component
		if !comp.HasLossWindow {
			continue
		}
		cur := comp.LossWindow
		if comp.LossWindowRef != "" {
			ms, ok := td.Mechanism(comp.LossWindowRef)
			if !ok {
				return 0, false, fmt.Errorf("tier %q: component %q needs mechanism %q, which the design does not configure",
					td.TierName, comp.Name, comp.LossWindowRef)
			}
			v, ok, err := ms.LossWindow()
			if err != nil {
				return 0, false, err
			}
			if !ok {
				return 0, false, fmt.Errorf("tier %q: mechanism %q supplies no loss window", td.TierName, comp.LossWindowRef)
			}
			cur = v
		}
		if !has || cur > lw {
			lw = cur
		}
		has = true
	}
	return lw, has, nil
}

// EffectiveMode is a failure mode with every mechanism reference and
// composition effect resolved — the per-mode parameters of the
// availability model in §4.2.
type EffectiveMode struct {
	Component string
	Mode      string
	// Qual is the "component/mode" display name, precomputed at bind
	// time. Empty when the failure mode was built by hand rather than
	// bound from a spec; consumers concatenate as a fallback.
	Qual string
	MTBF units.Duration
	// RepairTime is the full outage length when the failure is repaired
	// in place: detection + repair + restart of affected components.
	RepairTime units.Duration
	// FailoverTime is the outage length when a spare absorbs the
	// failure: detection + reconfiguration + startup of the spare's
	// inactive components.
	FailoverTime units.Duration
	// UsesFailover reports whether the design fails this mode over to a
	// spare: spares exist and repair takes longer than failover (§4.2).
	UsesFailover bool
	// SparePowered reports whether this mode's component runs in
	// active mode on idle spares, making them failure-prone for it.
	SparePowered bool
}

// EffectiveModes resolves every failure mode of every component in the
// tier's resource type under this design.
func (td *TierDesign) EffectiveModes() ([]EffectiveMode, error) {
	rt := td.Resource()
	// Failover must start only the components that are inactive on the
	// spare; the leading SpareWarm components are already running.
	var spareActivation units.Duration
	for i := td.SpareWarm; i < len(rt.Components); i++ {
		spareActivation += rt.Components[i].Startup
	}
	nModes := 0
	for _, rc := range rt.Components {
		nModes += len(rc.Component.Failures)
	}
	out := make([]EffectiveMode, 0, nModes)
	for ci, rc := range rt.Components {
		comp := rc.Component
		restart := rt.RestartTime(comp.Name)
		for _, f := range comp.Failures {
			mtbf := f.MTBF
			if f.MTBFRef != "" {
				ms, ok := td.Mechanism(f.MTBFRef)
				if !ok {
					return nil, fmt.Errorf("tier %q: component %q failure %q needs mechanism %q, which the design does not configure",
						td.TierName, comp.Name, f.Name, f.MTBFRef)
				}
				v, ok, err := ms.MTBF()
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("tier %q: mechanism %q supplies no mtbf", td.TierName, f.MTBFRef)
				}
				mtbf = v
			}
			mttr := f.MTTR
			if f.MTTRRef != "" {
				ms, ok := td.Mechanism(f.MTTRRef)
				if !ok {
					return nil, fmt.Errorf("tier %q: component %q failure %q needs mechanism %q, which the design does not configure",
						td.TierName, comp.Name, f.Name, f.MTTRRef)
				}
				v, ok, err := ms.MTTR()
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("tier %q: mechanism %q supplies no mttr", td.TierName, f.MTTRRef)
				}
				mttr = v
			}
			em := EffectiveMode{
				Component:    comp.Name,
				Mode:         f.Name,
				Qual:         f.qual,
				MTBF:         mtbf,
				RepairTime:   f.DetectTime + mttr + restart,
				FailoverTime: f.DetectTime + rt.ReconfigTime + spareActivation,
				SparePowered: td.NSpare > 0 && ci < td.SpareWarm,
			}
			em.UsesFailover = td.NSpare > 0 && em.RepairTime > em.FailoverTime
			out = append(out, em)
		}
	}
	return out, nil
}

// Validate checks structural consistency of the tier design.
func (td *TierDesign) Validate() error {
	if td.Option == nil || td.Option.ResourceType() == nil {
		return fmt.Errorf("tier %q: unresolved resource option", td.TierName)
	}
	if td.NActive < 1 {
		return fmt.Errorf("tier %q: need at least one active resource, got %d", td.TierName, td.NActive)
	}
	if td.NSpare < 0 {
		return fmt.Errorf("tier %q: negative spare count %d", td.TierName, td.NSpare)
	}
	if td.MinActive < 1 || td.MinActive > td.NActive {
		return fmt.Errorf("tier %q: minimum actives %d outside [1, %d]", td.TierName, td.MinActive, td.NActive)
	}
	if !td.Option.NActive.Contains(float64(td.NActive)) {
		return fmt.Errorf("tier %q: active count %d outside allowed range %v", td.TierName, td.NActive, td.Option.NActive)
	}
	if cap := td.Resource().MaxInstances(); cap > 0 && td.Total() > cap {
		return fmt.Errorf("tier %q: %d resource instances exceed the component cap of %d",
			td.TierName, td.Total(), cap)
	}
	if td.SpareWarm < 0 || td.SpareWarm > len(td.Resource().Components) {
		return fmt.Errorf("tier %q: spare warmth %d outside [0, %d]",
			td.TierName, td.SpareWarm, len(td.Resource().Components))
	}
	if td.NSpare == 0 && td.SpareWarm != 0 {
		return fmt.Errorf("tier %q: spare warmth %d without spares", td.TierName, td.SpareWarm)
	}
	for _, ms := range td.Mechanisms {
		if err := ms.Validate(); err != nil {
			return fmt.Errorf("tier %q: %w", td.TierName, err)
		}
	}
	needed := td.Resource().Mechanisms()
	for _, name := range needed {
		if _, ok := td.Mechanism(name); !ok {
			return fmt.Errorf("tier %q: resource %q references mechanism %q, which the design does not configure",
				td.TierName, td.Resource().Name, name)
		}
	}
	return nil
}

// Label renders the tier design compactly for reports:
// "rC n=5(+1) s=1(inactive) maintenanceA=gold".
func (td *TierDesign) Label() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s n=%d", td.Resource().Name, td.NActive)
	if td.NExtra() > 0 {
		fmt.Fprintf(&sb, "(+%d)", td.NExtra())
	}
	if td.NSpare > 0 {
		fmt.Fprintf(&sb, " s=%d(%s)", td.NSpare, td.spareWarmthLabel())
	}
	for _, ms := range td.Mechanisms {
		sb.WriteByte(' ')
		sb.WriteString(ms.Label())
	}
	return sb.String()
}

// Design is a complete resolution of every design choice for every
// tier — the output of the search.
type Design struct {
	Tiers []TierDesign
}

// Tier reports the design for the named tier.
func (d *Design) Tier(name string) (*TierDesign, bool) {
	for i := range d.Tiers {
		if d.Tiers[i].TierName == name {
			return &d.Tiers[i], true
		}
	}
	return nil, false
}

// Validate checks every tier design.
func (d *Design) Validate() error {
	if len(d.Tiers) == 0 {
		return fmt.Errorf("design has no tiers")
	}
	for i := range d.Tiers {
		if err := d.Tiers[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Label renders the design one tier per segment.
func (d *Design) Label() string {
	parts := make([]string, len(d.Tiers))
	for i := range d.Tiers {
		parts[i] = d.Tiers[i].TierName + "{" + d.Tiers[i].Label() + "}"
	}
	return strings.Join(parts, " ")
}
