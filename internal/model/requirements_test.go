package model

import (
	"strings"
	"testing"

	"aved/internal/units"
)

const reqServiceSrc = `application=shop
requirements=enterprise
  traffic(hour)=[820 640 510 460 430 470 590 780 980 1150 1290 1380 1420 1400 1350 1310 1280 1300 1360 1390 1330 1190 1010 880]
  max_annual_downtime=1h
  degraded_throughput=0.7
tier=front
  resource=rA sizing=dynamic failurescope=resource
    nActive=[1-8,+1] performance(nActive)=perfA.dat
`

func TestParseRequirementsEnterprise(t *testing.T) {
	svc, err := ParseService(reqServiceSrc)
	if err != nil {
		t.Fatal(err)
	}
	r := svc.Reqs
	if r == nil {
		t.Fatal("requirements clause not bound")
	}
	if r.Kind != ReqEnterprise {
		t.Fatalf("kind = %v", r.Kind)
	}
	if len(r.Traffic) != 24 {
		t.Fatalf("traffic samples = %d, want 24", len(r.Traffic))
	}
	if got := r.PeakLoad(); got != 1420 {
		t.Fatalf("peak = %v, want 1420", got)
	}
	if got, want := r.DegradedLoad(), r.DegradedThroughput*r.PeakLoad(); got != want {
		t.Fatalf("degraded load = %v, want %v", got, want)
	}
	if r.MaxAnnualDowntime != units.FromHours(1) {
		t.Fatalf("downtime budget = %v", r.MaxAnnualDowntime)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRequirementsJob(t *testing.T) {
	src := `application=sim jobsize=10000
requirements=job
  max_job_time=48h
tier=compute
  resource=rG sizing=static failurescope=tier
    nActive=64 performance=10
`
	svc, err := ParseService(src)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Reqs == nil || svc.Reqs.Kind != ReqJob {
		t.Fatalf("job requirements not bound: %+v", svc.Reqs)
	}
	if svc.Reqs.MaxJobTime != units.FromHours(48) {
		t.Fatalf("max job time = %v", svc.Reqs.MaxJobTime)
	}
}

func TestRequirementsRoundTrip(t *testing.T) {
	svc, err := ParseService(reqServiceSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec := svc.Spec()
	again, err := ParseService(spec)
	if err != nil {
		t.Fatalf("reparse: %v\nspec:\n%s", err, spec)
	}
	if again.Spec() != spec {
		t.Fatalf("spec not stable:\nfirst:\n%s\nsecond:\n%s", spec, again.Spec())
	}
	if again.Reqs == nil || len(again.Reqs.Traffic) != 24 || again.Reqs.DegradedThroughput != 0.7 {
		t.Fatalf("requirements lost in round trip: %+v", again.Reqs)
	}
}

func TestRequirementsRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"both-loads", "application=a\nrequirements=enterprise\n  throughput=100\n  traffic(hour)=[100 200]\n  max_annual_downtime=1h\n", "mutually exclusive"},
		{"nan-throughput", "application=a\nrequirements=enterprise\n  throughput=NaN\n  max_annual_downtime=1h\n", "positive"},
		{"nan-sample", "application=a\nrequirements=enterprise\n  traffic(hour)=[100 NaN]\n  max_annual_downtime=1h\n", "finite"},
		{"zero-curve", "application=a\nrequirements=enterprise\n  traffic(hour)=[0 0]\n  max_annual_downtime=1h\n", "peak must be positive"},
		{"slo-over-one", "application=a\nrequirements=enterprise\n  throughput=100\n  max_annual_downtime=1h\n  degraded_throughput=1.5\n", "fraction"},
		{"slo-nan", "application=a\nrequirements=enterprise\n  throughput=100\n  max_annual_downtime=1h\n  degraded_throughput=NaN\n", "fraction"},
		{"job-attr-on-enterprise", "application=a\nrequirements=enterprise\n  throughput=100\n  max_annual_downtime=1h\n  max_job_time=10h\n", "only applies to job"},
		{"duplicate", "application=a\nrequirements=job\n  max_job_time=1h\nrequirements=job\n  max_job_time=2h\n", "duplicate requirements"},
		{"bad-kind", "application=a\nrequirements=batch\n  throughput=100\n", "enterprise or job"},
		{"in-infra", "requirements=enterprise\n  throughput=100\n  max_annual_downtime=1h\n", "before application"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseService(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}
