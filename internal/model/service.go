package model

import (
	"fmt"
	"math"

	"aved/internal/units"
)

// Sizing states whether a tier's resource count can change during the
// service's lifetime (§3.2).
type Sizing int

// Sizing settings.
const (
	SizingStatic Sizing = iota + 1
	SizingDynamic
)

// String renders the sizing in spec vocabulary.
func (s Sizing) String() string {
	switch s {
	case SizingStatic:
		return "static"
	case SizingDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Sizing(%d)", int(s))
	}
}

// FailureScope states how far a single resource failure reaches (§3.2).
type FailureScope int

// Failure scopes.
const (
	ScopeResource FailureScope = iota + 1 // only the failed instance is lost
	ScopeTier                             // the whole tier goes down
)

// String renders the scope in spec vocabulary.
func (s FailureScope) String() string {
	switch s {
	case ScopeResource:
		return "resource"
	case ScopeTier:
		return "tier"
	default:
		return fmt.Sprintf("FailureScope(%d)", int(s))
	}
}

// MechPerfRef records the performance impact of an availability
// mechanism on a resource option: mperformance(args)=ref (§3.2).
type MechPerfRef struct {
	Mechanism string
	Args      []string
	Ref       string // performance-function reference (e.g. mperfH.dat)
}

// ResourceOption is one resource-type choice for a tier, together with
// its parallelism and performance description (§3.2).
type ResourceOption struct {
	Resource     string // resource type name, resolved against the infrastructure
	Sizing       Sizing
	FailureScope FailureScope
	NActive      units.Grid
	PerfRef      string  // performance-function reference; empty when scalar
	PerfScalar   float64 // constant performance (performance=10000)
	PerfIsScalar bool
	MechPerf     []MechPerfRef

	resolved *ResourceType
}

// ResourceType reports the bound resource type. Resolve must have been
// called on the service first.
func (o *ResourceOption) ResourceType() *ResourceType { return o.resolved }

// MechPerfFor reports the performance-impact reference for a mechanism.
func (o *ResourceOption) MechPerfFor(mech string) (MechPerfRef, bool) {
	for _, mp := range o.MechPerf {
		if mp.Mechanism == mech {
			return mp, true
		}
	}
	return MechPerfRef{}, false
}

// Tier is a cluster of identical resources supporting one stage of the
// service (§3).
type Tier struct {
	Name    string
	Options []ResourceOption
}

// Service is the bound service model: tiers and their resource options
// (§3.2). Reqs carries an optional embedded requirements clause; most
// callers still pass Requirements to the solver separately.
type Service struct {
	Name       string
	JobSize    float64 // application-specific units; finite jobs only
	HasJobSize bool
	Reqs       *Requirements
	Tiers      []Tier
}

// Tier reports the named tier, if declared.
func (s *Service) Tier(name string) (*Tier, bool) {
	for i := range s.Tiers {
		if s.Tiers[i].Name == name {
			return &s.Tiers[i], true
		}
	}
	return nil, false
}

// Resolve binds every resource option to its resource type in the
// infrastructure and validates mechanism references.
func (s *Service) Resolve(inf *Infrastructure) error {
	if len(s.Tiers) == 0 {
		return fmt.Errorf("service %q: no tiers declared", s.Name)
	}
	for ti := range s.Tiers {
		tier := &s.Tiers[ti]
		if len(tier.Options) == 0 {
			return fmt.Errorf("service %q tier %q: no resource options", s.Name, tier.Name)
		}
		for oi := range tier.Options {
			opt := &tier.Options[oi]
			rt, ok := inf.Resources[opt.Resource]
			if !ok {
				return fmt.Errorf("service %q tier %q: unknown resource type %q", s.Name, tier.Name, opt.Resource)
			}
			opt.resolved = rt
			for _, mp := range opt.MechPerf {
				if _, ok := inf.Mechanisms[mp.Mechanism]; !ok {
					return fmt.Errorf("service %q tier %q resource %q: unknown mechanism %q",
						s.Name, tier.Name, opt.Resource, mp.Mechanism)
				}
			}
		}
	}
	return nil
}

// RequirementKind selects which service requirement applies.
type RequirementKind int

// Requirement kinds (§2): enterprise services need a throughput and a
// downtime bound; finite jobs need an expected completion time bound.
const (
	ReqEnterprise RequirementKind = iota + 1
	ReqJob
)

// Requirements are the user's high-level service requirements.
type Requirements struct {
	Kind RequirementKind

	// Enterprise requirements. Exactly one of Throughput (a single
	// sustained load) and Traffic (a time-varying curve, e.g. 24 hourly
	// samples of a diurnal cycle) is set; capacity is planned for the
	// curve's peak.
	Throughput        float64        // minimum sustained load, service-specific units
	Traffic           []float64      // time-varying load samples, same units
	MaxAnnualDowntime units.Duration // maximum expected downtime per year

	// DegradedThroughput is an optional latency-degradation SLO for
	// failover: the fraction of peak load (0 < f ≤ 1) the service must
	// still sustain while a failure is being masked. Tiers with dynamic
	// sizing and resource failure scope count as "up" while they hold
	// this degraded bar; 0 means no degradation is tolerated and the
	// full peak applies throughout.
	DegradedThroughput float64

	// Finite-job requirement.
	MaxJobTime units.Duration // maximum expected job completion time
}

// PeakLoad is the load the service must be sized for: the maximum of
// the traffic curve when one is given, otherwise the scalar throughput.
func (r Requirements) PeakLoad() float64 {
	if len(r.Traffic) == 0 {
		return r.Throughput
	}
	peak := r.Traffic[0]
	for _, v := range r.Traffic[1:] {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// DegradedLoad is the load the service must sustain during failover:
// DegradedThroughput times the peak when the SLO is set, otherwise the
// full peak.
func (r Requirements) DegradedLoad() float64 {
	peak := r.PeakLoad()
	if r.DegradedThroughput > 0 {
		return r.DegradedThroughput * peak
	}
	return peak
}

// Validate checks internal consistency of the requirements.
func (r Requirements) Validate() error {
	switch r.Kind {
	case ReqEnterprise:
		if len(r.Traffic) > 0 {
			if r.Throughput != 0 {
				return fmt.Errorf("requirements: throughput and traffic are mutually exclusive")
			}
			for i, v := range r.Traffic {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("requirements: traffic sample %d must be finite and non-negative, got %v", i, v)
				}
			}
			if r.PeakLoad() <= 0 {
				return fmt.Errorf("requirements: traffic curve peak must be positive")
			}
		} else if math.IsNaN(r.Throughput) || math.IsInf(r.Throughput, 0) || r.Throughput <= 0 {
			return fmt.Errorf("requirements: throughput must be positive, got %v", r.Throughput)
		}
		if r.MaxAnnualDowntime <= 0 {
			return fmt.Errorf("requirements: max annual downtime must be positive, got %v", r.MaxAnnualDowntime)
		}
		if f := r.DegradedThroughput; f != 0 && (math.IsNaN(f) || f <= 0 || f > 1) {
			return fmt.Errorf("requirements: degraded throughput must be a fraction in (0,1], got %v", f)
		}
	case ReqJob:
		if r.MaxJobTime <= 0 {
			return fmt.Errorf("requirements: max job time must be positive, got %v", r.MaxJobTime)
		}
	default:
		return fmt.Errorf("requirements: unknown kind %d", int(r.Kind))
	}
	return nil
}
