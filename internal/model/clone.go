package model

// Clone deep-copies the infrastructure so callers can perturb
// parameters (what-if and sensitivity analysis) without touching the
// original. Component aliasing is preserved: resource members in the
// clone point at the clone's component objects.
func (inf *Infrastructure) Clone() *Infrastructure {
	out := &Infrastructure{
		Components:     make(map[string]*Component, len(inf.Components)),
		Mechanisms:     make(map[string]*Mechanism, len(inf.Mechanisms)),
		Resources:      make(map[string]*ResourceType, len(inf.Resources)),
		componentOrder: append([]string(nil), inf.componentOrder...),
		mechanismOrder: append([]string(nil), inf.mechanismOrder...),
		resourceOrder:  append([]string(nil), inf.resourceOrder...),
	}
	for name, c := range inf.Components {
		cc := *c
		cc.Failures = append([]FailureMode(nil), c.Failures...)
		out.Components[name] = &cc
	}
	for name, m := range inf.Mechanisms {
		mm := *m
		mm.Params = make([]Param, len(m.Params))
		for i, p := range m.Params {
			pp := p
			pp.Enum = append([]string(nil), p.Enum...)
			mm.Params[i] = pp
		}
		mm.Effects = make([]Effect, len(m.Effects))
		for i, e := range m.Effects {
			ee := e
			ee.Table = append([]string(nil), e.Table...)
			mm.Effects[i] = ee
		}
		out.Mechanisms[name] = &mm
	}
	for name, r := range inf.Resources {
		rr := *r
		rr.Components = make([]ResourceComponent, len(r.Components))
		for i, rc := range r.Components {
			rr.Components[i] = ResourceComponent{
				Component: out.Components[rc.Component.Name],
				DependsOn: rc.DependsOn,
				Startup:   rc.Startup,
			}
		}
		out.Resources[name] = &rr
	}
	return out
}
