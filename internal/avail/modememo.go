package avail

import (
	"sync"
	"sync/atomic"

	"aved/internal/obs"
	"aved/internal/units"
)

// modeKey is everything one failure mode's birth–death solve depends
// on. It deliberately omits the mode name and the raw spare count: the
// name is presentation only, and spares enter the chain solely when the
// mode fails over, so the key carries the effective spare count. Two
// modes agreeing on this key — across mechanism combos, warmth levels
// and even tiers — have bit-identical contributions and share one
// solved chain.
type modeKey struct {
	n, m, spares int
	mtbf         units.Duration
	repair       units.Duration
	failover     units.Duration
	usesFailover bool
	sparePowered bool
}

// modeVal is one solved chain's reduced result. Reattaching the mode
// name reconstitutes the full ModeContribution.
type modeVal struct {
	steadyMinutes    float64
	transientMinutes float64
	eventsPerYear    float64
	avail            float64
}

// memoShards is the shard count of the mode-chain memo. Key hashes
// avalanche fully, so a small power of two suffices.
const memoShards = 32

// modeMemo is a sharded memo of solved birth–death chains shared by
// every evaluation an engine instance runs. It sits below the engine
// boundary: callers see identical Results and identical evaluation
// counts whether entries hit or miss.
type modeMemo struct {
	hits   atomic.Uint64
	solves atomic.Uint64
	// tracer holds a tracerBox when the engine is instrumented. It lives
	// on the memo — the engine's only shared mutable state — because
	// MarkovEngine is a value type: storing here makes instrumentation
	// visible through every copy of the engine.
	tracer atomic.Value
	// batchHist, when set (InstrumentObs with a registry), observes the
	// wall-clock milliseconds of each batched memo solve — the
	// write-locked pass that packs a batch's missing chains into one
	// BatchPlan and solves them. Nil keeps the batch path free of clock
	// reads.
	batchHist atomic.Pointer[obs.Histogram]
	shards    [memoShards]memoShard
}

type memoShard struct {
	mu sync.RWMutex
	m  map[modeKey]modeVal
}

// newModeMemo builds an empty memo. Shard maps initialize lazily on
// first insert — reads on a nil map are safe — so engine construction
// allocates one object, not one per shard.
func newModeMemo() *modeMemo {
	return &modeMemo{}
}

// memoMix64 is the SplitMix64 finalizer, used to shard keys.
func memoMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (k modeKey) shard() uint64 {
	h := uint64(k.n)*0x9e3779b97f4a7c15 ^ uint64(k.m)<<21 ^ uint64(k.spares)<<42
	h = memoMix64(h ^ uint64(k.mtbf))
	h = memoMix64(h ^ uint64(k.repair))
	h = memoMix64(h ^ uint64(k.failover))
	if k.usesFailover {
		h ^= 0xa5a5a5a5a5a5a5a5
	}
	if k.sparePowered {
		h ^= 0x5a5a5a5a5a5a5a5a
	}
	return memoMix64(h) % memoShards
}

// getOrSolve returns k's solved chain, solving it under the shard
// write lock on first use. Holding the lock across the solve makes
// each key solve exactly once per memo lifetime — concurrent misses of
// one key cannot both solve — which keeps the hit/solve counters (and
// the memo trace events) deterministic at any worker count: solves =
// distinct keys, hits = requests − solves. Chain solves are
// microsecond-scale closed forms, so the serialization is cheap and
// confined to one shard. hit reports whether the value was replayed.
func (mm *modeMemo) getOrSolve(k modeKey) (v modeVal, hit bool, err error) {
	sh := &mm.shards[k.shard()]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		mm.hits.Add(1)
		return v, true, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[k]; ok {
		mm.hits.Add(1)
		return v, true, nil
	}
	v, err = solveModeChain(k)
	if err != nil {
		return modeVal{}, false, err
	}
	if sh.m == nil {
		sh.m = map[modeKey]modeVal{}
	}
	sh.m[k] = v
	mm.solves.Add(1)
	return v, false, nil
}

// chainScratch holds the rate and distribution slices one birth–death
// solve needs, pooled so memo misses allocate nothing once the pool is
// warm. Every element the solver reads is overwritten first, so reuse
// cannot leak state between solves.
type chainScratch struct {
	birth, death, pi []float64
}

var chainScratchPool = sync.Pool{New: func() any { return new(chainScratch) }}

// slices returns rate slices of length total and a distribution slice
// of length total+1, growing the backing arrays only when a larger
// chain than any before appears. Growth rounds the capacity up to the
// next power of two: a corpus-scale stream of slowly growing chains
// reallocates O(log n) times instead of once per new maximum.
func (s *chainScratch) slices(total int) (birth, death, pi []float64) {
	if cap(s.birth) < total {
		n := nextPow2(total)
		s.birth = make([]float64, n)
		s.death = make([]float64, n)
	}
	if cap(s.pi) < total+1 {
		s.pi = make([]float64, nextPow2(total+1))
	}
	return s.birth[:total], s.death[:total], s.pi[: total+1 : total+1]
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}
