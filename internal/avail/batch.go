package avail

import (
	"sync"

	"aved/internal/markov"
	"aved/internal/obs"
)

// batchScratch carries the reusable state of one batched memo request:
// the key/value/hit request slices, the miss bookkeeping, and the
// structure-of-arrays chain plan. Pooled, and every slice grows by
// powers of two, so a warm engine's batched tier evaluation allocates
// nothing.
type batchScratch struct {
	keys []modeKey
	vals []modeVal
	hit  []bool
	miss []batchMiss
	uniq []batchUniq
	plan markov.BatchPlan
}

// batchMiss records one request index that missed the memo's read
// pass, and which distinct key (uniq entry) it resolves through.
type batchMiss struct {
	idx  int // index into the request slices
	uniq int // index into batchScratch.uniq
}

// batchUniq is one distinct missing key: where it shards, which plan
// chain solves it (-1 for the closed form), and its resolved value.
type batchUniq struct {
	key   modeKey
	val   modeVal
	shard uint32
	chain int
	first int  // request index of the key's first miss — the one solve
	done  bool // resolved by the write-locked recheck (a hit)
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// request returns the scratch's key/value/hit slices sized for n
// modes, growing the backing arrays by powers of two.
func (sc *batchScratch) request(n int) ([]modeKey, []modeVal, []bool) {
	if cap(sc.keys) < n {
		c := nextPow2(n)
		sc.keys = make([]modeKey, c)
		sc.vals = make([]modeVal, c)
		sc.hit = make([]bool, c)
	}
	return sc.keys[:n], sc.vals[:n], sc.hit[:n]
}

// getOrSolveBatch resolves keys[i] into vals[i] and hit[i] for every
// i, with the same semantics as len(keys) sequential getOrSolve calls
// in index order: identical values bitwise, identical hit flags,
// identical hit/solve counter totals, one solve per distinct key. Only
// the mechanics differ — every missing chain of the batch packs into
// one markov.BatchPlan and solves in a single pass over its slabs,
// under one write-lock acquisition per touched shard instead of one
// per miss.
//
// Shards lock in ascending index order, so batched requests cannot
// deadlock against each other or against single-key getOrSolve calls
// (which hold one shard lock at a time). Solving under the shard locks
// preserves the memo's determinism invariant: concurrent misses of one
// key cannot both solve, so solves = distinct keys and hits =
// requests − solves at any worker count.
//
// On error, failed is the request index whose key failed to solve
// (callers attribute the error to that mode); on success failed is -1.
func (mm *modeMemo) getOrSolveBatch(sc *batchScratch, keys []modeKey, vals []modeVal, hit []bool) (failed int, err error) {
	sc.miss = sc.miss[:0]
	sc.uniq = sc.uniq[:0]
	var nHits, nSolves uint64
	// Read pass: serve what the memo already holds, dedup the rest. The
	// first miss of a distinct key will solve it; later misses of the
	// same key replay the solved value, exactly as sequential calls
	// would hit the memo entry the first one inserted.
	for i := range keys {
		shard := uint32(keys[i].shard())
		sh := &mm.shards[shard]
		sh.mu.RLock()
		v, ok := sh.m[keys[i]]
		sh.mu.RUnlock()
		if ok {
			vals[i], hit[i] = v, true
			nHits++
			continue
		}
		u := -1
		for j := range sc.uniq {
			if sc.uniq[j].key == keys[i] {
				u = j
				break
			}
		}
		if u < 0 {
			u = len(sc.uniq)
			sc.uniq = append(sc.uniq, batchUniq{key: keys[i], shard: shard, chain: -1, first: i})
		}
		sc.miss = append(sc.miss, batchMiss{idx: i, uniq: u})
	}
	if len(sc.uniq) == 0 {
		mm.hits.Add(nHits)
		return -1, nil
	}
	// Write pass: lock every touched shard in ascending order, recheck
	// under the locks (a concurrent request may have solved a key since
	// the read pass), and pack the still-missing chains into the plan.
	// The whole pass — lock, pack, slab solve, insert — is one batched
	// memo solve; instrumented engines time it on avail.batch_solve_ms.
	sp := obs.Span{}
	if h := mm.batchHist.Load(); h != nil {
		sp = obs.StartSpan(h)
	}
	var mask uint32
	for j := range sc.uniq {
		mask |= 1 << sc.uniq[j].shard
	}
	for b := uint32(0); b < memoShards; b++ {
		if mask&(1<<b) != 0 {
			mm.shards[b].mu.Lock()
		}
	}
	unlock := func() {
		for b := uint32(0); b < memoShards; b++ {
			if mask&(1<<b) != 0 {
				mm.shards[b].mu.Unlock()
			}
		}
	}
	sc.plan.Reset()
	for j := range sc.uniq {
		u := &sc.uniq[j]
		if v, ok := mm.shards[u.shard].m[u.key]; ok {
			u.val, u.done = v, true
			nHits++
			continue
		}
		if v, ok := modeValClosed(u.key); ok {
			u.val = v // no chain; inserted below as a solve
			continue
		}
		birth, death := sc.plan.Add(u.key.n + u.key.spares)
		fillModeRates(u.key, birth, death)
		u.chain = sc.plan.Len() - 1
	}
	// One pass over the slabs solves every missing chain. A failure
	// (invalid rates) falls back to replaying the batch key-at-a-time
	// through solveModeChain, which reproduces the sequential path's
	// side effects exactly: keys before the failing one insert and
	// count, and the surfaced error is the per-chain solver's own.
	if solveErr := sc.plan.Solve(); solveErr != nil {
		for j := range sc.uniq {
			u := &sc.uniq[j]
			if u.done {
				continue
			}
			v, err := solveModeChain(u.key)
			if err != nil {
				unlock()
				mm.hits.Add(nHits)
				mm.solves.Add(nSolves)
				return u.first, err
			}
			mm.shards[u.shard].insert(u.key, v)
			u.val = v
			nSolves++
		}
	} else {
		for j := range sc.uniq {
			u := &sc.uniq[j]
			if u.done {
				continue
			}
			if u.chain >= 0 {
				birth, _, pi := sc.plan.Chain(u.chain)
				u.val = finishModeVal(u.key, birth, pi)
			}
			mm.shards[u.shard].insert(u.key, u.val)
			nSolves++
		}
	}
	unlock()
	sp.Stop()
	for _, ms := range sc.miss {
		u := &sc.uniq[ms.uniq]
		vals[ms.idx] = u.val
		// A duplicate miss replays the first one's solve — a memo hit in
		// the sequential order; the recheck case is a hit for every miss
		// of the key, first included.
		replay := ms.idx != u.first
		hit[ms.idx] = u.done || replay
		if replay {
			nHits++
		}
	}
	mm.hits.Add(nHits)
	mm.solves.Add(nSolves)
	return -1, nil
}

// insert stores a solved value; the caller holds the shard's write
// lock. The shard map initializes lazily here so engines that never
// miss into a shard never build its map.
func (sh *memoShard) insert(k modeKey, v modeVal) {
	if sh.m == nil {
		sh.m = make(map[modeKey]modeVal, 8)
	}
	sh.m[k] = v
}
