package avail

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"aved/internal/units"
)

// TestMemoTransparency is the memoization correctness property: a
// shared memoizing engine — including on its second pass, when every
// chain is a memo hit — returns Results bit-identical to a memo-less
// MarkovEngine{} across random tier models. DeepEqual compares the
// float64s exactly, so any rounding difference introduced by the memo
// or the scratch reuse fails the test.
func TestMemoTransparency(t *testing.T) {
	memoized := NewMarkovEngine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tms := make([]TierModel, 1+rng.Intn(3))
		for i := range tms {
			tms[i] = randomTier(rng)
		}
		want, err := MarkovEngine{}.Evaluate(tms)
		if err != nil {
			return false
		}
		cold, err := memoized.Evaluate(tms)
		if err != nil {
			return false
		}
		warm, err := memoized.Evaluate(tms) // all memo hits
		if err != nil {
			return false
		}
		return reflect.DeepEqual(want, cold) && reflect.DeepEqual(want, warm)
	}
	if err := quick.Check(f, quickCfg(7, 300)); err != nil {
		t.Error(err)
	}
	hits, solves := memoized.MemoStats()
	if hits == 0 || solves == 0 {
		t.Errorf("memo never exercised: hits=%d solves=%d", hits, solves)
	}
}

// TestMemoStatsCountHitsAndSolves pins the counter semantics: the first
// pass over a model solves every chain, the second hits every one.
func TestMemoStatsCountHitsAndSolves(t *testing.T) {
	e := NewMarkovEngine()
	tm := TierModel{Name: "t", N: 3, M: 2, S: 1, Modes: []Mode{
		{Name: "hw", MTBF: 3000 * units.Hour, Repair: 8 * units.Hour, Failover: units.Hour, UsesFailover: true},
		{Name: "sw", MTBF: 500 * units.Hour, Repair: units.Hour},
	}}
	if _, err := e.Evaluate([]TierModel{tm}); err != nil {
		t.Fatal(err)
	}
	hits, solves := e.MemoStats()
	if hits != 0 || solves != uint64(len(tm.Modes)) {
		t.Fatalf("after cold pass: hits=%d solves=%d, want 0 and %d", hits, solves, len(tm.Modes))
	}
	if _, err := e.Evaluate([]TierModel{tm}); err != nil {
		t.Fatal(err)
	}
	hits, solves = e.MemoStats()
	if hits != uint64(len(tm.Modes)) || solves != uint64(len(tm.Modes)) {
		t.Fatalf("after warm pass: hits=%d solves=%d, want %d and %d",
			hits, solves, len(tm.Modes), len(tm.Modes))
	}
}

// TestZeroValueEngineHasNoMemo: the MarkovEngine{} zero value (used
// throughout the tests and as a fallback) evaluates without a memo and
// reports zero stats.
func TestZeroValueEngineHasNoMemo(t *testing.T) {
	e := MarkovEngine{}
	tm := TierModel{Name: "t", N: 2, M: 1, Modes: []Mode{{Name: "m", MTBF: 1000 * units.Hour, Repair: 4 * units.Hour}}}
	for i := 0; i < 2; i++ {
		if _, err := e.Evaluate([]TierModel{tm}); err != nil {
			t.Fatal(err)
		}
	}
	if hits, solves := e.MemoStats(); hits != 0 || solves != 0 {
		t.Errorf("zero-value engine reported memo stats %d/%d", hits, solves)
	}
}

// TestResolveModeHitAllocFree is the allocation regression for the
// per-mode memo path: once a chain is memoized, re-resolving its mode
// must not allocate.
func TestResolveModeHitAllocFree(t *testing.T) {
	e := NewMarkovEngine()
	tm := TierModel{Name: "t", N: 4, M: 3, S: 1, Modes: []Mode{
		{Name: "hw", MTBF: 3000 * units.Hour, Repair: 8 * units.Hour, Failover: units.Hour, UsesFailover: true},
	}}
	k := modeKeyFor(&tm, &tm.Modes[0])
	if _, err := e.resolveMode(&tm, k); err != nil { // warm the memo
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.resolveMode(&tm, k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("memoized resolveMode allocates %.1f objects per run, want 0", allocs)
	}
}

// TestPriceTierHitAllocFree is the allocation regression for the
// search hot path: a warm memo-carrying engine prices a tier through
// the batched memo request without allocating.
func TestPriceTierHitAllocFree(t *testing.T) {
	e := NewMarkovEngine()
	tm := TierModel{Name: "t", N: 4, M: 3, S: 1, Modes: []Mode{
		{Name: "hw", MTBF: 3000 * units.Hour, Repair: 8 * units.Hour, Failover: units.Hour, UsesFailover: true},
		{Name: "sw", MTBF: 500 * units.Hour, Repair: units.Hour},
		{Name: "op", MTBF: 8760 * units.Hour, Repair: 0},
	}}
	if _, err := e.PriceTier(&tm); err != nil { // warm the memo and the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.PriceTier(&tm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm PriceTier allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkResolveMode measures one mode resolution cold (memo-less
// zero value, solving the chain each time) and warm (memo hit).
func BenchmarkResolveMode(b *testing.B) {
	tm := TierModel{Name: "t", N: 6, M: 5, S: 1, Modes: []Mode{
		{Name: "hw", MTBF: 650 * 24 * units.Hour, Repair: 38 * units.Hour,
			Failover: units.Hour / 10, UsesFailover: true},
	}}
	k := modeKeyFor(&tm, &tm.Modes[0])
	b.Run("cold", func(b *testing.B) {
		e := MarkovEngine{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.resolveMode(&tm, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		e := NewMarkovEngine()
		if _, err := e.resolveMode(&tm, k); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.resolveMode(&tm, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestSolveModeChainPureOfKey: two designs that reduce to the same
// modeKey — e.g. a spare-less tier and one whose spares are ignored by
// a non-failover mode — share one solve.
func TestSolveModeChainPureOfKey(t *testing.T) {
	e := NewMarkovEngine()
	noSpares := TierModel{Name: "a", N: 3, M: 2, S: 0, Modes: []Mode{
		{Name: "sw", MTBF: 500 * units.Hour, Repair: 2 * units.Hour},
	}}
	ignoredSpares := TierModel{Name: "b", N: 3, M: 2, S: 2, Modes: []Mode{
		{Name: "sw", MTBF: 500 * units.Hour, Repair: 2 * units.Hour}, // UsesFailover false: spares inert
	}}
	if _, err := e.Evaluate([]TierModel{noSpares}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate([]TierModel{ignoredSpares}); err != nil {
		t.Fatal(err)
	}
	hits, solves := e.MemoStats()
	if hits != 1 || solves != 1 {
		t.Errorf("effective-spares keying: hits=%d solves=%d, want 1 and 1", hits, solves)
	}
}
