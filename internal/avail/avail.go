// Package avail implements Aved's availability model (§4.2 of the
// paper): per-tier parameters (n, m, s and per-failure-mode MTBF,
// repair time and failover time), an Engine interface over evaluation
// backends, and the analytic "simplified Markov model" engine built on
// package markov. A discrete-event simulation engine implementing the
// same interface lives in package sim, playing the role of the external
// availability evaluation engine (Avanto) the paper interfaces to.
package avail

import (
	"fmt"

	"aved/internal/markov"
	"aved/internal/model"
	"aved/internal/units"
)

// MinutesPerYear is the number of minutes in the 8760-hour year the
// paper's downtime figures use.
const MinutesPerYear = 8760 * 60

// Mode is one failure mode's availability parameters, fully resolved
// for a particular design (items 4–6 of §4.2's model).
type Mode struct {
	Name string
	// MTBF is the mean time between failures of this mode per powered
	// resource.
	MTBF units.Duration
	// Repair is the full outage length when the failure is repaired in
	// place: detection + repair + dependent restarts.
	Repair units.Duration
	// Failover is the outage length when a spare absorbs the failure:
	// detection + reconfiguration + spare activation.
	Failover units.Duration
	// UsesFailover reports whether spares absorb this mode (§4.2: only
	// when repair takes longer than failover).
	UsesFailover bool
	// SparePowered reports whether idle spares run this mode's
	// component in active mode, making them failure-prone for it (a
	// warm or hot spare).
	SparePowered bool
}

// TierModel is the §4.2 availability model of one tier.
type TierModel struct {
	Name string
	// N is the number of active resources (item 1).
	N int
	// M is the minimum number of active resources for the tier to be up
	// (item 2).
	M int
	// S is the number of spare resources (item 3).
	S int
	// Modes are the tier's failure modes across all components. Spare
	// warmth is carried per mode via Mode.SparePowered.
	Modes []Mode
}

// Validate checks the model's structural invariants.
func (tm *TierModel) Validate() error {
	if tm.N < 1 {
		return fmt.Errorf("tier %q: need at least one active resource, got %d", tm.Name, tm.N)
	}
	if tm.M < 1 || tm.M > tm.N {
		return fmt.Errorf("tier %q: minimum actives %d outside [1, %d]", tm.Name, tm.M, tm.N)
	}
	if tm.S < 0 {
		return fmt.Errorf("tier %q: negative spare count %d", tm.Name, tm.S)
	}
	if len(tm.Modes) == 0 {
		return fmt.Errorf("tier %q: no failure modes", tm.Name)
	}
	for _, m := range tm.Modes {
		if m.MTBF <= 0 {
			return fmt.Errorf("tier %q mode %q: MTBF must be positive", tm.Name, m.Name)
		}
		if m.Repair < 0 || m.Failover < 0 {
			return fmt.Errorf("tier %q mode %q: negative outage length", tm.Name, m.Name)
		}
	}
	return nil
}

// ModeContribution explains one failure mode's share of a tier's
// downtime.
type ModeContribution struct {
	Name string
	// SteadyMinutes is annual downtime from exhausting redundancy
	// (fewer than M actives while failures are being repaired).
	SteadyMinutes float64
	// TransientMinutes is annual downtime from failover transients.
	TransientMinutes float64
	// EventsPerYear is the expected number of failures of this mode
	// across the tier's powered resources.
	EventsPerYear float64
}

// Minutes reports the mode's total annual downtime contribution.
func (mc ModeContribution) Minutes() float64 {
	return mc.SteadyMinutes + mc.TransientMinutes
}

// TierResult is one tier's availability evaluation.
type TierResult struct {
	Name string
	// Availability is the steady-state fraction of time the tier
	// satisfies its minimum active-resource requirement.
	Availability float64
	// DowntimeMinutes is the tier's expected annual downtime.
	DowntimeMinutes float64
	// Contributions break the downtime down per failure mode
	// (analytic engine only; simulation reports aggregate figures).
	Contributions []ModeContribution
}

// Result is a whole-design availability evaluation. Tiers compose in
// series: the design is up only when every tier is up (§4.2).
type Result struct {
	// Availability is the product of tier availabilities.
	Availability float64
	// DowntimeMinutes is the design's expected annual downtime.
	DowntimeMinutes float64
	Tiers           []TierResult
}

// Engine evaluates availability models. Implementations: MarkovEngine
// (this package) and sim.Engine (discrete-event simulation).
type Engine interface {
	// Evaluate reports the expected availability of the design whose
	// tiers are modelled by tms.
	Evaluate(tms []TierModel) (Result, error)
}

// MarkovEngine is the paper's "simplified Markov model": independent
// per-failure-mode birth–death chains with per-event transient
// accounting, composed in series across modes and tiers.
type MarkovEngine struct{}

var _ Engine = MarkovEngine{}

// NewMarkovEngine builds the analytic engine.
func NewMarkovEngine() MarkovEngine { return MarkovEngine{} }

// Evaluate implements Engine.
func (MarkovEngine) Evaluate(tms []TierModel) (Result, error) {
	if len(tms) == 0 {
		return Result{}, fmt.Errorf("avail: no tiers to evaluate")
	}
	res := Result{Availability: 1}
	for i := range tms {
		tr, err := evaluateTier(&tms[i])
		if err != nil {
			return Result{}, err
		}
		res.Tiers = append(res.Tiers, tr)
		res.Availability *= tr.Availability
	}
	res.DowntimeMinutes = (1 - res.Availability) * MinutesPerYear
	return res, nil
}

// evaluateTier evaluates one tier: each failure mode gets an
// independent birth–death chain; mode availabilities multiply.
func evaluateTier(tm *TierModel) (TierResult, error) {
	if err := tm.Validate(); err != nil {
		return TierResult{}, err
	}
	tr := TierResult{Name: tm.Name, Availability: 1}
	for _, mode := range tm.Modes {
		mc, avail, err := evaluateMode(tm, mode)
		if err != nil {
			return TierResult{}, fmt.Errorf("tier %q mode %q: %w", tm.Name, mode.Name, err)
		}
		tr.Contributions = append(tr.Contributions, mc)
		tr.Availability *= avail
	}
	tr.DowntimeMinutes = (1 - tr.Availability) * MinutesPerYear
	return tr, nil
}

// evaluateMode builds and solves the birth–death chain for one failure
// mode, reporting its downtime contribution and availability.
func evaluateMode(tm *TierModel, mode Mode) (ModeContribution, float64, error) {
	mc := ModeContribution{Name: mode.Name}
	lambda := 1 / mode.MTBF.Hours() // failures per powered resource-hour

	// Spares only participate for modes that fail over (§4.2 considers
	// failover only when repair exceeds failover time).
	spares := 0
	if mode.UsesFailover {
		spares = tm.S
	}
	total := tm.N + spares

	if mode.Repair <= 0 {
		// Instantaneous repair: the mode never accumulates failed
		// resources and never causes downtime. Still report its event
		// rate for visibility.
		mc.EventsPerYear = float64(poweredAt(tm, mode, 0, total)) * lambda * 8760
		return mc, 1, nil
	}
	mu := 1 / mode.Repair.Hours()

	birth := make([]float64, total)
	death := make([]float64, total)
	for j := 0; j < total; j++ {
		birth[j] = float64(poweredAt(tm, mode, j, total)) * lambda
		death[j] = float64(j+1) * mu
	}
	pi, err := markov.BirthDeathSteadyState(birth, death)
	if err != nil {
		return ModeContribution{}, 0, err
	}

	var (
		steadyDown    float64 // probability mass with fewer than M actives
		transientFrac float64 // fraction of time inside failover transients
		eventsPerHour float64
	)
	failoverHours := mode.Failover.Hours()
	for j := 0; j <= total; j++ {
		actives := activeAt(tm.N, j, total)
		if actives < tm.M {
			steadyDown += pi[j]
		}
		if j < total {
			eventsPerHour += pi[j] * birth[j]
		}
		// A failure striking an active resource while an idle spare
		// stands by momentarily drops the active count below M for the
		// failover duration; the chain itself shows no downtime because
		// the spare absorbs the failure.
		if mode.UsesFailover && j < total && failoverHours > 0 {
			idleSpares := total - j - actives
			if idleSpares > 0 && actives == tm.M {
				activeFailureRate := float64(actives) * lambda
				transientFrac += pi[j] * activeFailureRate * failoverHours
			}
		}
	}
	mc.EventsPerYear = eventsPerHour * 8760
	mc.SteadyMinutes = steadyDown * MinutesPerYear
	mc.TransientMinutes = transientFrac * MinutesPerYear
	avail := 1 - steadyDown - transientFrac
	if avail < 0 {
		avail = 0
	}
	return mc, avail, nil
}

// activeAt reports the number of active resources when j of total are
// failed: operational resources fill active slots first.
func activeAt(n, j, total int) int {
	operational := total - j
	if operational < n {
		return operational
	}
	return n
}

// poweredAt reports the number of resources failure-prone for a mode
// in state j: the actives, plus idle spares when the mode's component
// is powered on spares.
func poweredAt(tm *TierModel, mode Mode, j, total int) int {
	actives := activeAt(tm.N, j, total)
	if mode.SparePowered {
		return total - j
	}
	return actives
}

// BuildTierModel derives the §4.2 availability model from a tier
// design: m from the design's MinActive, per-mode repair and failover
// times from the resolved effective failure modes.
func BuildTierModel(td *model.TierDesign) (TierModel, error) {
	ems, err := td.EffectiveModes()
	if err != nil {
		return TierModel{}, err
	}
	tm := TierModel{
		Name: td.TierName,
		N:    td.NActive,
		M:    td.MinActive,
		S:    td.NSpare,
	}
	tm.Modes = make([]Mode, 0, len(ems))
	for _, em := range ems {
		tm.Modes = append(tm.Modes, Mode{
			Name:         em.Component + "/" + em.Mode,
			MTBF:         em.MTBF,
			Repair:       em.RepairTime,
			Failover:     em.FailoverTime,
			UsesFailover: em.UsesFailover,
			SparePowered: em.SparePowered,
		})
	}
	return tm, nil
}

// BuildModels derives availability models for every tier of a design.
func BuildModels(d *model.Design) ([]TierModel, error) {
	out := make([]TierModel, 0, len(d.Tiers))
	for i := range d.Tiers {
		tm, err := BuildTierModel(&d.Tiers[i])
		if err != nil {
			return nil, err
		}
		out = append(out, tm)
	}
	return out, nil
}
