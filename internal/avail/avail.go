// Package avail implements Aved's availability model (§4.2 of the
// paper): per-tier parameters (n, m, s and per-failure-mode MTBF,
// repair time and failover time), an Engine interface over evaluation
// backends, and the analytic "simplified Markov model" engine built on
// package markov. A discrete-event simulation engine implementing the
// same interface lives in package sim, playing the role of the external
// availability evaluation engine (Avanto) the paper interfaces to.
package avail

import (
	"fmt"

	"aved/internal/markov"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/units"
)

// MinutesPerYear is the number of minutes in the 8760-hour year the
// paper's downtime figures use.
const MinutesPerYear = 8760 * 60

// Mode is one failure mode's availability parameters, fully resolved
// for a particular design (items 4–6 of §4.2's model).
type Mode struct {
	Name string
	// MTBF is the mean time between failures of this mode per powered
	// resource.
	MTBF units.Duration
	// Repair is the full outage length when the failure is repaired in
	// place: detection + repair + dependent restarts.
	Repair units.Duration
	// Failover is the outage length when a spare absorbs the failure:
	// detection + reconfiguration + spare activation.
	Failover units.Duration
	// UsesFailover reports whether spares absorb this mode (§4.2: only
	// when repair takes longer than failover).
	UsesFailover bool
	// SparePowered reports whether idle spares run this mode's
	// component in active mode, making them failure-prone for it (a
	// warm or hot spare).
	SparePowered bool
}

// TierModel is the §4.2 availability model of one tier.
type TierModel struct {
	Name string
	// N is the number of active resources (item 1).
	N int
	// M is the minimum number of active resources for the tier to be up
	// (item 2).
	M int
	// S is the number of spare resources (item 3).
	S int
	// Modes are the tier's failure modes across all components. Spare
	// warmth is carried per mode via Mode.SparePowered.
	Modes []Mode
}

// Validate checks the model's structural invariants.
func (tm *TierModel) Validate() error {
	if tm.N < 1 {
		return fmt.Errorf("tier %q: need at least one active resource, got %d", tm.Name, tm.N)
	}
	if tm.M < 1 || tm.M > tm.N {
		return fmt.Errorf("tier %q: minimum actives %d outside [1, %d]", tm.Name, tm.M, tm.N)
	}
	if tm.S < 0 {
		return fmt.Errorf("tier %q: negative spare count %d", tm.Name, tm.S)
	}
	if len(tm.Modes) == 0 {
		return fmt.Errorf("tier %q: no failure modes", tm.Name)
	}
	for _, m := range tm.Modes {
		if m.MTBF <= 0 {
			return fmt.Errorf("tier %q mode %q: MTBF must be positive", tm.Name, m.Name)
		}
		if m.Repair < 0 || m.Failover < 0 {
			return fmt.Errorf("tier %q mode %q: negative outage length", tm.Name, m.Name)
		}
	}
	return nil
}

// ModeContribution explains one failure mode's share of a tier's
// downtime.
type ModeContribution struct {
	Name string
	// SteadyMinutes is annual downtime from exhausting redundancy
	// (fewer than M actives while failures are being repaired).
	SteadyMinutes float64
	// TransientMinutes is annual downtime from failover transients.
	TransientMinutes float64
	// EventsPerYear is the expected number of failures of this mode
	// across the tier's powered resources.
	EventsPerYear float64
}

// Minutes reports the mode's total annual downtime contribution.
func (mc ModeContribution) Minutes() float64 {
	return mc.SteadyMinutes + mc.TransientMinutes
}

// TierResult is one tier's availability evaluation.
type TierResult struct {
	Name string
	// Availability is the steady-state fraction of time the tier
	// satisfies its minimum active-resource requirement.
	Availability float64
	// DowntimeMinutes is the tier's expected annual downtime.
	DowntimeMinutes float64
	// Contributions break the downtime down per failure mode
	// (analytic engine only; simulation reports aggregate figures).
	Contributions []ModeContribution
}

// Result is a whole-design availability evaluation. Tiers compose in
// series: the design is up only when every tier is up (§4.2).
type Result struct {
	// Availability is the product of tier availabilities.
	Availability float64
	// DowntimeMinutes is the design's expected annual downtime.
	DowntimeMinutes float64
	Tiers           []TierResult
}

// Engine evaluates availability models. Implementations: MarkovEngine
// (this package) and sim.Engine (discrete-event simulation).
type Engine interface {
	// Evaluate reports the expected availability of the design whose
	// tiers are modelled by tms.
	Evaluate(tms []TierModel) (Result, error)
}

// MarkovEngine is the paper's "simplified Markov model": independent
// per-failure-mode birth–death chains with per-event transient
// accounting, composed in series across modes and tiers.
//
// Engines built with NewMarkovEngine carry a mode-chain memo: a solved
// chain depends only on (n, m, effective spares, λ, μ, failover,
// SparePowered), which recurs across mechanism combos, warmth levels
// and tiers, so repeated sub-model work vanishes. The memo sits below
// the engine boundary — results are bit-identical with or without it,
// and callers' evaluation counts are unchanged. The zero value
// MarkovEngine{} evaluates without a memo.
//
// Memo-carrying engines resolve a tier's modes as one batch: every
// memo miss of the tier packs into a single markov.BatchPlan and
// solves in one structure-of-arrays pass (see getOrSolveBatch). The
// batching is mechanical — values, hit flags and counter totals are
// identical to the per-mode path, which NewMarkovEngineUnbatched keeps
// available as the differential reference.
type MarkovEngine struct {
	memo *modeMemo
	// unbatched pins the per-mode getOrSolve path on a memo-carrying
	// engine — the reference the equivalence tests and the
	// results/BENCH_batch.json comparison run against.
	unbatched bool
}

var _ Engine = MarkovEngine{}

// NewMarkovEngine builds the analytic engine with a fresh mode-chain
// memo.
func NewMarkovEngine() MarkovEngine { return MarkovEngine{memo: newModeMemo()} }

// NewMarkovEngineUnbatched builds a memo-carrying engine that resolves
// modes one chain at a time instead of batching a tier's misses into
// one BatchPlan pass. Results, memo contents and counters are
// bit-identical to NewMarkovEngine's; it exists as the per-chain
// baseline for the differential tests and the batch benchmarks.
func NewMarkovEngineUnbatched() MarkovEngine {
	return MarkovEngine{memo: newModeMemo(), unbatched: true}
}

// MemoStats reports the engine's mode-chain memo counters: cache hits
// and birth–death chains actually solved. A zero engine (no memo)
// reports zeros.
func (e MarkovEngine) MemoStats() (hits, solves uint64) {
	if e.memo == nil {
		return 0, 0
	}
	return e.memo.hits.Load(), e.memo.solves.Load()
}

// Evaluate implements Engine.
func (e MarkovEngine) Evaluate(tms []TierModel) (Result, error) {
	if len(tms) == 0 {
		return Result{}, fmt.Errorf("avail: no tiers to evaluate")
	}
	res := Result{Availability: 1, Tiers: make([]TierResult, 0, len(tms))}
	for i := range tms {
		tr, err := e.evaluateTier(&tms[i])
		if err != nil {
			return Result{}, err
		}
		res.Tiers = append(res.Tiers, tr)
		res.Availability *= tr.Availability
	}
	res.DowntimeMinutes = (1 - res.Availability) * MinutesPerYear
	return res, nil
}

// evaluateTier evaluates one tier: each failure mode gets an
// independent birth–death chain; mode availabilities multiply. On a
// memo-carrying engine the tier's modes resolve as one batch.
func (e MarkovEngine) evaluateTier(tm *TierModel) (TierResult, error) {
	if err := tm.Validate(); err != nil {
		return TierResult{}, err
	}
	tr := TierResult{Name: tm.Name, Availability: 1, Contributions: make([]ModeContribution, 0, len(tm.Modes))}
	var err error
	tr.Availability, err = e.priceModes(tm, &tr)
	if err != nil {
		return TierResult{}, err
	}
	tr.DowntimeMinutes = (1 - tr.Availability) * MinutesPerYear
	return tr, nil
}

// PriceTier reports one tier's expected annual downtime without
// assembling a Result or its per-mode contributions — the lean entry
// point the solver's search hot path uses. It is bit-identical to
// Evaluate([]TierModel{*tm}).DowntimeMinutes: the mode availabilities
// multiply in the same order, and the series composition over a single
// tier multiplies by 1, which is exact. Memo counters and trace events
// are the same as the full evaluation's.
func (e MarkovEngine) PriceTier(tm *TierModel) (float64, error) {
	if err := tm.Validate(); err != nil {
		return 0, err
	}
	availability, err := e.priceModes(tm, nil)
	if err != nil {
		return 0, err
	}
	return (1 - availability) * MinutesPerYear, nil
}

// modeKeyFor builds the memo key of one mode in one tier. Spares only
// participate for modes that fail over (§4.2 considers failover only
// when repair exceeds failover time), so the key carries the effective
// spare count.
func modeKeyFor(tm *TierModel, mode *Mode) modeKey {
	spares := 0
	if mode.UsesFailover {
		spares = tm.S
	}
	return modeKey{
		n:            tm.N,
		m:            tm.M,
		spares:       spares,
		mtbf:         mode.MTBF,
		repair:       mode.Repair,
		failover:     mode.Failover,
		usesFailover: mode.UsesFailover,
		sparePowered: mode.SparePowered,
	}
}

// priceModes resolves every failure mode of tm and reports the tier's
// availability — the product of mode availabilities in mode order.
// When out is non-nil the per-mode contributions are appended to it.
// Memo-carrying engines resolve all modes through one batched memo
// request; the zero-value engine solves each chain directly.
func (e MarkovEngine) priceModes(tm *TierModel, out *TierResult) (float64, error) {
	availability := 1.0
	if e.memo == nil || e.unbatched {
		for i := range tm.Modes {
			mode := &tm.Modes[i]
			v, err := e.resolveMode(tm, modeKeyFor(tm, mode))
			if err != nil {
				return 0, fmt.Errorf("tier %q mode %q: %w", tm.Name, mode.Name, err)
			}
			if out != nil {
				out.Contributions = append(out.Contributions, modeContribution(mode.Name, v))
			}
			availability *= v.avail
		}
		return availability, nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	n := len(tm.Modes)
	keys, vals, hit := sc.request(n)
	for i := range tm.Modes {
		keys[i] = modeKeyFor(tm, &tm.Modes[i])
	}
	if failed, err := e.memo.getOrSolveBatch(sc, keys, vals, hit); err != nil {
		return 0, fmt.Errorf("tier %q mode %q: %w", tm.Name, tm.Modes[failed].Name, err)
	}
	t := e.memo.obsTracer()
	for i := range tm.Modes {
		if t != nil {
			ev := obs.EvMemoSolve
			if hit[i] {
				ev = obs.EvMemoHit
			}
			t.Emit(obs.Event{Ev: ev, Tier: tm.Name, N: keys[i].n, M: keys[i].m, S: keys[i].spares})
		}
		if out != nil {
			out.Contributions = append(out.Contributions, modeContribution(tm.Modes[i].Name, vals[i]))
		}
		availability *= vals[i].avail
	}
	return availability, nil
}

// resolveMode is the per-mode path: through the memo when the engine
// has one (the unbatched reference), else a direct solve.
func (e MarkovEngine) resolveMode(tm *TierModel, k modeKey) (modeVal, error) {
	if e.memo != nil {
		v, hit, err := e.memo.getOrSolve(k)
		if err != nil {
			return modeVal{}, err
		}
		if t := e.memo.obsTracer(); t != nil {
			ev := obs.EvMemoSolve
			if hit {
				ev = obs.EvMemoHit
			}
			t.Emit(obs.Event{Ev: ev, Tier: tm.Name, N: k.n, M: k.m, S: k.spares})
		}
		return v, nil
	}
	return solveModeChain(k)
}

func modeContribution(name string, v modeVal) ModeContribution {
	return ModeContribution{
		Name:             name,
		SteadyMinutes:    v.steadyMinutes,
		TransientMinutes: v.transientMinutes,
		EventsPerYear:    v.eventsPerYear,
	}
}

// solveModeChain builds and solves the birth–death chain for one memo
// key. It is a pure function of the key — the guarantee that makes the
// memo transparent — and draws its rate and distribution slices from a
// pooled scratch, so a solve allocates nothing once the pool is warm.
// The batched path runs the same three pieces (modeValClosed,
// fillModeRates, finishModeVal) over BatchPlan slabs instead of the
// pooled scratch, which keeps the two paths bit-identical.
func solveModeChain(k modeKey) (modeVal, error) {
	if v, ok := modeValClosed(k); ok {
		return v, nil
	}
	total := k.n + k.spares
	sc := chainScratchPool.Get().(*chainScratch)
	defer chainScratchPool.Put(sc)
	birth, death, pi := sc.slices(total)
	fillModeRates(k, birth, death)
	if err := markov.BirthDeathSteadyStateInto(pi, birth, death); err != nil {
		return modeVal{}, err
	}
	return finishModeVal(k, birth, pi), nil
}

// modeValClosed reports the closed-form value of keys that need no
// chain: instantaneous repair never accumulates failed resources and
// never causes downtime (the event rate is still reported for
// visibility).
func modeValClosed(k modeKey) (modeVal, bool) {
	if k.repair > 0 {
		return modeVal{}, false
	}
	lambda := 1 / k.mtbf.Hours() // failures per powered resource-hour
	total := k.n + k.spares
	return modeVal{
		eventsPerYear: float64(poweredAt(k, 0, total)) * lambda * 8760,
		avail:         1,
	}, true
}

// fillModeRates writes the key's birth–death chain rates into the
// len(total) rate slices: state j has j failed resources, failures
// arrive from every powered resource, repairs run in parallel.
func fillModeRates(k modeKey, birth, death []float64) {
	lambda := 1 / k.mtbf.Hours()
	mu := 1 / k.repair.Hours()
	total := len(birth)
	for j := 0; j < total; j++ {
		birth[j] = float64(poweredAt(k, j, total)) * lambda
		death[j] = float64(j+1) * mu
	}
}

// finishModeVal reduces a solved chain to the mode's figures. birth is
// the rate slice fillModeRates produced; pi its stationary
// distribution (len(birth)+1 states).
func finishModeVal(k modeKey, birth, pi []float64) modeVal {
	var (
		v             modeVal
		steadyDown    float64 // probability mass with fewer than M actives
		transientFrac float64 // fraction of time inside failover transients
		eventsPerHour float64
	)
	lambda := 1 / k.mtbf.Hours()
	total := len(birth)
	failoverHours := k.failover.Hours()
	for j := 0; j <= total; j++ {
		actives := activeAt(k.n, j, total)
		if actives < k.m {
			steadyDown += pi[j]
		}
		if j < total {
			eventsPerHour += pi[j] * birth[j]
		}
		// A failure striking an active resource while an idle spare
		// stands by momentarily drops the active count below M for the
		// failover duration; the chain itself shows no downtime because
		// the spare absorbs the failure.
		if k.usesFailover && j < total && failoverHours > 0 {
			idleSpares := total - j - actives
			if idleSpares > 0 && actives == k.m {
				activeFailureRate := float64(actives) * lambda
				transientFrac += pi[j] * activeFailureRate * failoverHours
			}
		}
	}
	v.eventsPerYear = eventsPerHour * 8760
	v.steadyMinutes = steadyDown * MinutesPerYear
	v.transientMinutes = transientFrac * MinutesPerYear
	v.avail = 1 - steadyDown - transientFrac
	if v.avail < 0 {
		v.avail = 0
	}
	return v
}

// activeAt reports the number of active resources when j of total are
// failed: operational resources fill active slots first.
func activeAt(n, j, total int) int {
	operational := total - j
	if operational < n {
		return operational
	}
	return n
}

// poweredAt reports the number of resources failure-prone for a mode
// in state j: the actives, plus idle spares when the mode's component
// is powered on spares.
func poweredAt(k modeKey, j, total int) int {
	actives := activeAt(k.n, j, total)
	if k.sparePowered {
		return total - j
	}
	return actives
}

// BuildTierModes resolves a tier design's effective failure modes into
// the engine Mode representation. The result depends on the design's
// resource type, mechanism settings, spare warmth and spare existence —
// not on the exact resource counts — which is what lets callers cache
// one resolution across every (active, spare) split of a combination.
func BuildTierModes(td *model.TierDesign) ([]Mode, error) {
	ems, err := td.EffectiveModes()
	if err != nil {
		return nil, err
	}
	modes := make([]Mode, 0, len(ems))
	for _, em := range ems {
		name := em.Qual
		if name == "" {
			name = em.Component + "/" + em.Mode
		}
		modes = append(modes, Mode{
			Name:         name,
			MTBF:         em.MTBF,
			Repair:       em.RepairTime,
			Failover:     em.FailoverTime,
			UsesFailover: em.UsesFailover,
			SparePowered: em.SparePowered,
		})
	}
	return modes, nil
}

// BuildTierModel derives the §4.2 availability model from a tier
// design: m from the design's MinActive, per-mode repair and failover
// times from the resolved effective failure modes.
func BuildTierModel(td *model.TierDesign) (TierModel, error) {
	modes, err := BuildTierModes(td)
	if err != nil {
		return TierModel{}, err
	}
	return TierModel{
		Name:  td.TierName,
		N:     td.NActive,
		M:     td.MinActive,
		S:     td.NSpare,
		Modes: modes,
	}, nil
}

// BuildModels derives availability models for every tier of a design.
func BuildModels(d *model.Design) ([]TierModel, error) {
	out := make([]TierModel, 0, len(d.Tiers))
	for i := range d.Tiers {
		tm, err := BuildTierModel(&d.Tiers[i])
		if err != nil {
			return nil, err
		}
		out = append(out, tm)
	}
	return out, nil
}
