package avail

import "aved/internal/obs"

// tracerBox wraps a Tracer for atomic.Value storage: atomic.Value
// requires every Store to carry the same concrete type, and tracer
// implementations differ.
type tracerBox struct{ t obs.Tracer }

// obsTracer reports the memo's instrumented tracer, nil when none.
func (mm *modeMemo) obsTracer() obs.Tracer {
	if b, ok := mm.tracer.Load().(tracerBox); ok {
		return b.t
	}
	return nil
}

// InstrumentObs exposes the engine's mode-chain memo counters on reg
// and routes memo events to tr. It implements the solver's structural
// instrumentation interface. Idempotent and race-safe: RegisterFunc
// replaces on re-register and the tracer swaps atomically, so solvers
// sharing one engine (sensitivity sweeps build one per factor) may all
// call it. A memo-less zero engine has no counters to expose; the call
// is a no-op.
func (e MarkovEngine) InstrumentObs(reg *obs.Registry, tr obs.Tracer) {
	if e.memo == nil {
		return
	}
	mm := e.memo
	reg.RegisterFunc("avail.memo.hits", func() int64 { return int64(mm.hits.Load()) })
	reg.RegisterFunc("avail.memo.solves", func() int64 { return int64(mm.solves.Load()) })
	if reg != nil {
		mm.batchHist.Store(reg.Histogram("avail.batch_solve_ms"))
	}
	if tr != nil {
		mm.tracer.Store(tracerBox{t: tr})
	}
}
