package avail

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"aved/internal/units"
)

// randomTierWithEdges extends randomTier's range with the shapes the
// batch path special-cases: instantaneous repair (closed form, no
// chain), powered spares, and duplicate modes (duplicate memo keys in
// one batch).
func randomTierWithEdges(rng *rand.Rand) TierModel {
	tm := randomTier(rng)
	for i := range tm.Modes {
		switch rng.Intn(6) {
		case 0:
			tm.Modes[i].Repair = 0 // closed-form key
		case 1:
			tm.Modes[i].SparePowered = true
		}
	}
	if len(tm.Modes) > 1 && rng.Intn(3) == 0 {
		tm.Modes[1] = tm.Modes[0] // duplicate key inside one batch
	}
	return tm
}

// TestBatchedEngineBitIdentical is the tentpole equivalence property:
// a batched engine and the per-chain unbatched reference produce
// bit-identical Results and identical memo counters over seeded random
// models, on both the cold (all solves) and warm (all hits) passes.
func TestBatchedEngineBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	for round := 0; round < 200; round++ {
		batched := NewMarkovEngine()
		reference := NewMarkovEngineUnbatched()
		tms := make([]TierModel, 1+rng.Intn(3))
		for i := range tms {
			tms[i] = randomTierWithEdges(rng)
		}
		for pass := 0; pass < 2; pass++ {
			want, wantErr := reference.Evaluate(tms)
			got, gotErr := batched.Evaluate(tms)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d pass %d: error mismatch: %v vs %v", round, pass, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("round %d pass %d: error text %q vs %q", round, pass, wantErr, gotErr)
				}
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d pass %d: results differ:\nunbatched: %+v\nbatched:   %+v", round, pass, want, got)
			}
			wh, ws := reference.MemoStats()
			gh, gs := batched.MemoStats()
			if wh != gh || ws != gs {
				t.Fatalf("round %d pass %d: memo stats differ: unbatched %d/%d, batched %d/%d",
					round, pass, wh, ws, gh, gs)
			}
		}
	}
}

// TestPriceTierMatchesEvaluate pins the lean pricing entry point: for
// every engine flavour, PriceTier equals the single-tier Evaluate's
// DowntimeMinutes bitwise.
func TestPriceTierMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	engines := map[string]MarkovEngine{
		"zero":      {},
		"batched":   NewMarkovEngine(),
		"unbatched": NewMarkovEngineUnbatched(),
	}
	for round := 0; round < 100; round++ {
		tm := randomTierWithEdges(rng)
		for name, e := range engines {
			res, err := e.Evaluate([]TierModel{tm})
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			dt, err := e.PriceTier(&tm)
			if err != nil {
				t.Fatalf("round %d %s: PriceTier: %v", round, name, err)
			}
			if math.Float64bits(dt) != math.Float64bits(res.Tiers[0].DowntimeMinutes) {
				t.Fatalf("round %d %s: PriceTier %v != Evaluate %v", round, name, dt, res.Tiers[0].DowntimeMinutes)
			}
		}
	}
}

// TestBatchErrorMatchesSerial: a mode whose chain fails (absorbing:
// zero repair rate is impossible here, so force MTBF-driven absorbing
// via zero death by a negative-free construction is not available —
// instead an invalid model is caught by Validate; the chain-level
// error path is exercised through a key with repair > 0 but an
// absorbing edge cannot arise from fillModeRates since mu > 0 for all
// states). What can differ is error attribution for invalid models, so
// pin that batched and unbatched engines surface identical errors.
func TestBatchErrorMatchesSerial(t *testing.T) {
	bad := TierModel{Name: "t", N: 2, M: 1, Modes: []Mode{
		{Name: "ok", MTBF: 100 * units.Hour, Repair: units.Hour},
		{Name: "bad", MTBF: -1, Repair: units.Hour},
	}}
	_, errB := NewMarkovEngine().Evaluate([]TierModel{bad})
	_, errU := NewMarkovEngineUnbatched().Evaluate([]TierModel{bad})
	if errB == nil || errU == nil {
		t.Fatalf("invalid model accepted: batched=%v unbatched=%v", errB, errU)
	}
	if errB.Error() != errU.Error() {
		t.Fatalf("error text differs: batched %q, unbatched %q", errB, errU)
	}
}

// TestBatchedConcurrentMix hammers one memo from batched and
// single-key paths concurrently; under the race detector this checks
// the multi-shard lock discipline, and the final counters must obey
// the determinism invariant: solves = distinct keys, hits = requests −
// solves.
func TestBatchedConcurrentMix(t *testing.T) {
	batched := NewMarkovEngine()
	unbatched := MarkovEngine{memo: batched.memo, unbatched: true}
	rng := rand.New(rand.NewSource(99))
	tms := make([]TierModel, 24)
	for i := range tms {
		tms[i] = randomTierWithEdges(rng)
	}
	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		e := batched
		if w%2 == 1 {
			e = unbatched
		}
		wg.Add(1)
		go func(e MarkovEngine, w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tm := tms[(w+r)%len(tms)]
				if _, err := e.Evaluate([]TierModel{tm}); err != nil {
					t.Error(err)
					return
				}
			}
		}(e, w)
	}
	wg.Wait()

	distinct := map[modeKey]bool{}
	requests := uint64(0)
	for i := range tms {
		for j := range tms[i].Modes {
			distinct[modeKeyFor(&tms[i], &tms[i].Modes[j])] = true
		}
	}
	for w := 0; w < workers; w++ {
		for r := 0; r < rounds; r++ {
			requests += uint64(len(tms[(w+r)%len(tms)].Modes))
		}
	}
	hits, solves := batched.MemoStats()
	if solves != uint64(len(distinct)) || hits != requests-solves {
		t.Fatalf("memo counters hits=%d solves=%d, want solves=%d hits=%d",
			hits, solves, len(distinct), requests-uint64(len(distinct)))
	}
}

// TestChainScratchPow2Growth is the regression for the exact-size
// regrowth bug: feeding slowly growing chain lengths must reallocate
// O(log n) times, not once per new maximum.
func TestChainScratchPow2Growth(t *testing.T) {
	var sc chainScratch
	reallocs := 0
	var lastCap int
	for total := 1; total <= 256; total++ {
		birth, death, pi := sc.slices(total)
		if len(birth) != total || len(death) != total || len(pi) != total+1 {
			t.Fatalf("total=%d: lengths %d/%d/%d", total, len(birth), len(death), len(pi))
		}
		if cap(sc.birth) != lastCap {
			reallocs++
			lastCap = cap(sc.birth)
			if c := cap(sc.birth); c&(c-1) != 0 {
				t.Fatalf("total=%d: capacity %d not a power of two", total, c)
			}
		}
	}
	if reallocs > 9 { // 1,2,4,...,256
		t.Fatalf("%d reallocations over 256 growing chains, want O(log n)", reallocs)
	}
}

// BenchmarkModePricingStorm is the chain-solve-bound workload behind
// results/BENCH_batch.json's headline number: streams of distinct-key
// tiers (every mode a memo miss) priced through the batched engine vs
// the per-chain unbatched reference at equal GOMAXPROCS.
func BenchmarkModePricingStorm(b *testing.B) {
	const nTiers = 256
	const nModes = 16
	tms := make([]TierModel, nTiers)
	for i := range tms {
		modes := make([]Mode, nModes)
		for j := range modes {
			modes[j] = Mode{
				Name:         "m",
				MTBF:         units.Duration(int(units.Hour) * (1000 + i*nModes + j)),
				Repair:       4 * units.Hour,
				Failover:     units.Hour / 10,
				UsesFailover: j%2 == 0,
			}
		}
		tms[i] = TierModel{Name: "t", N: 4, M: 3, S: 1, Modes: modes}
	}
	run := func(b *testing.B, mk func() MarkovEngine) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := mk() // fresh memo: every key is a miss
			for t := range tms {
				if _, err := e.PriceTier(&tms[t]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("unbatched", func(b *testing.B) { run(b, NewMarkovEngineUnbatched) })
	b.Run("batched", func(b *testing.B) { run(b, NewMarkovEngine) })
}
