package avail

import (
	"testing"

	"aved/internal/units"
)

func TestExactMatchesDefaultWithoutSpares(t *testing.T) {
	// With no failover the exact chain degenerates to the same
	// birth–death model; the engines must agree to high precision.
	cases := []TierModel{
		singleMode(1, 1, 0, 650*units.Day, 38*units.Hour, 0, false),
		singleMode(4, 4, 0, 60*units.Day, 4*units.Minute, 0, false),
		singleMode(5, 3, 0, 100*units.Day, 24*units.Hour, 0, false),
		{
			Name: "multi",
			N:    3, M: 3,
			Modes: []Mode{
				{Name: "a", MTBF: 650 * units.Day, Repair: 38 * units.Hour},
				{Name: "b", MTBF: 60 * units.Day, Repair: 4 * units.Minute},
			},
		},
	}
	for i, tm := range cases {
		def, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(def.DowntimeMinutes, exact.DowntimeMinutes, 1e-6) {
			t.Errorf("case %d: default %v vs exact %v", i, def.DowntimeMinutes, exact.DowntimeMinutes)
		}
	}
}

func TestExactValidatesTransientAccounting(t *testing.T) {
	// With a spare absorbing failures, the default engine adds failover
	// transients as per-event expected values; the exact chain carries
	// them as states. First-order agreement expected (within ~15%).
	cases := []TierModel{
		singleMode(2, 2, 1, 650*units.Day, 38*units.Hour, units.Duration(6*units.Minute+30*units.Second), true),
		singleMode(4, 4, 2, 100*units.Day, 24*units.Hour, 10*units.Minute, true),
		singleMode(1, 1, 1, 200*units.Day, 48*units.Hour, 5*units.Minute, true),
	}
	for i, tm := range cases {
		def, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(def.DowntimeMinutes, exact.DowntimeMinutes, 0.15) {
			t.Errorf("case %d: default %v vs exact %v (want within 15%%)",
				i, def.DowntimeMinutes, exact.DowntimeMinutes)
		}
	}
}

func TestExactSparesReduceDowntime(t *testing.T) {
	noSpare := singleMode(2, 2, 0, 650*units.Day, 38*units.Hour, 0, false)
	withSpare := singleMode(2, 2, 1, 650*units.Day, 38*units.Hour, 6*units.Minute, true)
	r0, err := ExactEngine{}.Evaluate([]TierModel{noSpare})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ExactEngine{}.Evaluate([]TierModel{withSpare})
	if err != nil {
		t.Fatal(err)
	}
	if r1.DowntimeMinutes >= r0.DowntimeMinutes/10 {
		t.Errorf("spare should cut downtime ≥10x: %v vs %v", r1.DowntimeMinutes, r0.DowntimeMinutes)
	}
}

func TestExactZeroFailoverTime(t *testing.T) {
	// Instant failover: spares absorb failures with no transient at
	// all; downtime only from spare-pool exhaustion.
	tm := singleMode(2, 2, 1, 100*units.Day, 24*units.Hour, 0, true)
	res, err := ExactEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	def, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.DowntimeMinutes, def.DowntimeMinutes, 0.05) {
		t.Errorf("zero-failover: exact %v vs default %v", res.DowntimeMinutes, def.DowntimeMinutes)
	}
}

func TestExactZeroRepairIsHarmless(t *testing.T) {
	tm := TierModel{Name: "t", N: 2, M: 2, Modes: []Mode{{Name: "glitch", MTBF: 10 * units.Day}}}
	res, err := ExactEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %v, want 1", res.Availability)
	}
	if got := res.Tiers[0].Contributions[0].EventsPerYear; !relClose(got, 2*8760/240.0, 1e-9) {
		t.Errorf("events/yr = %v", got)
	}
}

func TestExactActiveSpares(t *testing.T) {
	inactive := singleMode(2, 2, 1, 100*units.Day, 10*units.Hour, 5*units.Minute, true)
	active := inactive
	active.Modes = append([]Mode(nil), inactive.Modes...)
	active.Modes[0].SparePowered = true
	ri, err := ExactEngine{}.Evaluate([]TierModel{inactive})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := ExactEngine{}.Evaluate([]TierModel{active})
	if err != nil {
		t.Fatal(err)
	}
	ei := ri.Tiers[0].Contributions[0].EventsPerYear
	ea := ra.Tiers[0].Contributions[0].EventsPerYear
	if ea <= ei {
		t.Errorf("active spares should raise the event rate: %v vs %v", ea, ei)
	}
}

func TestExactAgainstSimulation(t *testing.T) {
	// Triangulation: exact chain vs the default engine was checked
	// above; the sim package separately checks the default engine
	// against simulation. Here a direct validation-model check keeps
	// the three-way agreement visible in one place.
	tm := singleMode(3, 2, 1, 100*units.Day, 24*units.Hour, 15*units.Minute, true)
	def, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(def.DowntimeMinutes, exact.DowntimeMinutes, 0.2) {
		t.Errorf("default %v vs exact %v", def.DowntimeMinutes, exact.DowntimeMinutes)
	}
}

func TestExactValidation(t *testing.T) {
	if _, err := (ExactEngine{}).Evaluate(nil); err == nil {
		t.Error("empty evaluation should fail")
	}
	bad := singleMode(0, 1, 0, units.Day, units.Hour, 0, false)
	if _, err := (ExactEngine{}).Evaluate([]TierModel{bad}); err == nil {
		t.Error("invalid tier should fail")
	}
}
