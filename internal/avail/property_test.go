package avail

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aved/internal/units"
)

// quickCfg pins the property-test source so runs are reproducible.
func quickCfg(seed int64, n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(seed))}
}

// randomTier draws a structurally valid tier model from a seeded
// source, keeping rates in realistic ranges.
func randomTier(rng *rand.Rand) TierModel {
	n := 1 + rng.Intn(8)
	m := 1 + rng.Intn(n)
	s := rng.Intn(3)
	modes := make([]Mode, 1+rng.Intn(3))
	for i := range modes {
		repair := units.FromHours(0.05 + rng.Float64()*48)
		failover := units.FromHours(0.01 + rng.Float64()*0.5)
		modes[i] = Mode{
			Name:         "m",
			MTBF:         units.FromDays(10 + rng.Float64()*1000),
			Repair:       repair,
			Failover:     failover,
			UsesFailover: s > 0 && repair > failover,
		}
	}
	return TierModel{Name: "t", N: n, M: m, S: s, Modes: modes}
}

func TestPropertyAvailabilityInUnitInterval(t *testing.T) {
	for _, eng := range []Engine{MarkovEngine{}, ExactEngine{}} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			tm := randomTier(rng)
			res, err := eng.Evaluate([]TierModel{tm})
			if err != nil {
				return false
			}
			return res.Availability >= 0 && res.Availability <= 1 &&
				res.DowntimeMinutes >= 0 && res.DowntimeMinutes <= MinutesPerYear
		}
		if err := quick.Check(f, quickCfg(1, 200)); err != nil {
			t.Errorf("engine %T: %v", eng, err)
		}
	}
}

func TestPropertySparesNeverHurt(t *testing.T) {
	// Adding an inactive spare can only reduce (or not change) the
	// downtime: spares only participate for modes where failover beats
	// repair.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tm := randomTier(rng)
		tm.S = 0
		for i := range tm.Modes {
			tm.Modes[i].UsesFailover = false
		}
		base, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			return false
		}
		withSpare := tm
		withSpare.Modes = append([]Mode(nil), tm.Modes...)
		withSpare.S = 1
		for i := range withSpare.Modes {
			withSpare.Modes[i].UsesFailover = withSpare.Modes[i].Repair > withSpare.Modes[i].Failover
		}
		improved, err := MarkovEngine{}.Evaluate([]TierModel{withSpare})
		if err != nil {
			return false
		}
		// Allow a hair of numerical slack.
		return improved.DowntimeMinutes <= base.DowntimeMinutes*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, quickCfg(2, 200)); err != nil {
		t.Error(err)
	}
}

func TestPropertyShorterRepairNeverHurts(t *testing.T) {
	// Halving every repair time (a better maintenance contract) cannot
	// increase downtime.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tm := randomTier(rng)
		base, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			return false
		}
		faster := tm
		faster.Modes = append([]Mode(nil), tm.Modes...)
		for i := range faster.Modes {
			faster.Modes[i].Repair /= 2
			faster.Modes[i].UsesFailover = tm.S > 0 && faster.Modes[i].Repair > faster.Modes[i].Failover
		}
		better, err := MarkovEngine{}.Evaluate([]TierModel{faster})
		if err != nil {
			return false
		}
		return better.DowntimeMinutes <= base.DowntimeMinutes*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, quickCfg(3, 200)); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreRequiredActivesNeverHelps(t *testing.T) {
	// Raising m (a stricter up-condition) cannot reduce downtime.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tm := randomTier(rng)
		if tm.M >= tm.N {
			tm.M = tm.N - 1
			if tm.M < 1 {
				return true // nothing to tighten
			}
		}
		loose, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			return false
		}
		tight := tm
		tight.M++
		stricter, err := MarkovEngine{}.Evaluate([]TierModel{tight})
		if err != nil {
			return false
		}
		return stricter.DowntimeMinutes >= loose.DowntimeMinutes*(1-1e-9)-1e-9
	}
	if err := quick.Check(f, quickCfg(4, 200)); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnginesAgreeFirstOrder(t *testing.T) {
	// The default engine's per-event transient accounting stays within
	// 35% of the exact chain on random models. The worst cases combine
	// headroom with several spares, where correlated failover windows
	// (two activations pending at once) are a higher-order effect the
	// per-event accounting misses; on §5-style configurations the gap
	// stays under 15% (see exact_test.go).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tm := randomTier(rng)
		def, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			return false
		}
		exact, err := ExactEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			return false
		}
		d, e := def.DowntimeMinutes, exact.DowntimeMinutes
		if d < 1 && e < 1 {
			return true // both negligible
		}
		diff := d - e
		if diff < 0 {
			diff = -diff
		}
		scale := d
		if e > scale {
			scale = e
		}
		return diff <= 0.35*scale
	}
	if err := quick.Check(f, quickCfg(5, 200)); err != nil {
		t.Error(err)
	}
}
