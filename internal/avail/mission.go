package avail

import (
	"fmt"

	"aved/internal/markov"
)

// MissionDowntime reports the expected downtime, in minutes per year,
// over a finite mission of the given length starting with every
// resource up — the transient-aware counterpart of the steady-state
// figure the engines report. Young systems accumulate less downtime
// than the steady state predicts because failures take a while to
// arrive; the estimate converges to the MarkovEngine's as the mission
// grows. It also matches what a finite-horizon simulation starting
// all-up measures.
func MissionDowntime(tm *TierModel, years float64) (float64, error) {
	if err := tm.Validate(); err != nil {
		return 0, err
	}
	if years <= 0 {
		return 0, fmt.Errorf("avail: mission length must be positive, got %v years", years)
	}
	horizon := years * 8760 // hours
	availability := 1.0
	for _, mode := range tm.Modes {
		a, err := missionModeAvailability(tm, mode, horizon)
		if err != nil {
			return 0, fmt.Errorf("tier %q mode %q: %w", tm.Name, mode.Name, err)
		}
		availability *= a
	}
	return (1 - availability) * MinutesPerYear, nil
}

// missionModeAvailability mirrors evaluateMode but weighs states by
// their finite-horizon occupancy from the all-up start instead of the
// stationary distribution.
func missionModeAvailability(tm *TierModel, mode Mode, horizonHours float64) (float64, error) {
	lambda := 1 / mode.MTBF.Hours()
	spares := 0
	if mode.UsesFailover {
		spares = tm.S
	}
	total := tm.N + spares
	if mode.Repair <= 0 {
		return 1, nil
	}
	mu := 1 / mode.Repair.Hours()
	pk := modeKey{n: tm.N, m: tm.M, spares: spares, sparePowered: mode.SparePowered}
	birth := make([]float64, total)
	death := make([]float64, total)
	for j := 0; j < total; j++ {
		birth[j] = float64(poweredAt(pk, j, total)) * lambda
		death[j] = float64(j+1) * mu
	}
	chain, err := markov.BirthDeathChain(birth, death)
	if err != nil {
		return 0, err
	}
	pi0 := make([]float64, total+1)
	pi0[0] = 1
	occ, err := chain.OccupancyOver(pi0, horizonHours, 1e-10)
	if err != nil {
		return 0, err
	}
	var downFrac, transientFrac float64
	failoverHours := mode.Failover.Hours()
	for j := 0; j <= total; j++ {
		actives := activeAt(tm.N, j, total)
		if actives < tm.M {
			downFrac += occ[j]
		}
		if mode.UsesFailover && j < total && failoverHours > 0 {
			idleSpares := total - j - actives
			if idleSpares > 0 && actives == tm.M {
				transientFrac += occ[j] * float64(actives) * lambda * failoverHours
			}
		}
	}
	a := 1 - downFrac - transientFrac
	if a < 0 {
		a = 0
	}
	return a, nil
}
