package avail

import (
	"testing"

	"aved/internal/obs"
	"aved/internal/units"
)

func obsTierModel() TierModel {
	return TierModel{
		Name: "app",
		N:    3,
		M:    2,
		S:    1,
		Modes: []Mode{{
			Name:         "hw/fail",
			MTBF:         90 * units.Day,
			Repair:       8 * units.Hour,
			Failover:     5 * units.Minute,
			UsesFailover: true,
		}},
	}
}

// TestMarkovInstrumentObs: an instrumented engine surfaces its memo
// counters through the registry and emits one memo event per mode
// evaluation — a solve on the cold memo, a hit on the warm one.
func TestMarkovInstrumentObs(t *testing.T) {
	e := NewMarkovEngine()
	reg := obs.NewRegistry()
	var tr obs.CollectTracer
	e.InstrumentObs(reg, &tr)
	tm := obsTierModel()
	if _, err := e.Evaluate([]TierModel{tm}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate([]TierModel{tm}); err != nil {
		t.Fatal(err)
	}
	var solves, hits int
	for _, ev := range tr.Events() {
		switch ev.Ev {
		case obs.EvMemoSolve:
			solves++
		case obs.EvMemoHit:
			hits++
		default:
			t.Errorf("unexpected event %q from the engine", ev.Ev)
		}
	}
	if solves != 1 || hits != 1 {
		t.Errorf("memo events: %d solves, %d hits; want 1 and 1", solves, hits)
	}
	mh, ms := e.MemoStats()
	snap := reg.Snapshot()
	if snap.Counters["avail.memo.hits"] != int64(mh) || snap.Counters["avail.memo.solves"] != int64(ms) {
		t.Errorf("registry counters %v disagree with MemoStats (%d, %d)", snap.Counters, mh, ms)
	}
}

// TestMarkovInstrumentObsMemoless: instrumenting the zero-value engine
// is a harmless no-op — nothing to count, nothing to emit.
func TestMarkovInstrumentObsMemoless(t *testing.T) {
	var e MarkovEngine
	var tr obs.CollectTracer
	e.InstrumentObs(obs.NewRegistry(), &tr)
	if _, err := e.Evaluate([]TierModel{obsTierModel()}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("memo-less engine emitted %d events", tr.Len())
	}
}

// TestMarkovResultsUnchangedByInstrumentation pins engine transparency:
// instrumentation must not perturb the numbers.
func TestMarkovResultsUnchangedByInstrumentation(t *testing.T) {
	tm := obsTierModel()
	plain := NewMarkovEngine()
	base, err := plain.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	traced := NewMarkovEngine()
	var tr obs.CollectTracer
	traced.InstrumentObs(obs.NewRegistry(), &tr)
	got, err := traced.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if base.DowntimeMinutes != got.DowntimeMinutes || base.Availability != got.Availability {
		t.Errorf("instrumented result diverged: %v vs %v", got, base)
	}
}
