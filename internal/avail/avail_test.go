package avail

import (
	"math"
	"strings"
	"testing"

	"aved/internal/units"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// relClose reports whether a and b agree within rel relative tolerance.
func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func singleMode(n, m, s int, mtbf, repair, failover units.Duration, usesFO bool) TierModel {
	return TierModel{
		Name: "t",
		N:    n,
		M:    m,
		S:    s,
		Modes: []Mode{{
			Name:         "hw/hard",
			MTBF:         mtbf,
			Repair:       repair,
			Failover:     failover,
			UsesFailover: usesFO,
		}},
	}
}

func TestSingleResourceNoRedundancy(t *testing.T) {
	// One resource, no spares: availability = mtbf/(mtbf+repair) for a
	// two-state chain.
	mtbf := 650 * units.Day
	repair := 38 * units.Hour
	tm := singleMode(1, 1, 0, mtbf, repair, 0, false)
	res, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	lambda := 1 / mtbf.Hours()
	mu := 1 / repair.Hours()
	wantAvail := mu / (lambda + mu)
	if !almostEqual(res.Availability, wantAvail, 1e-12) {
		t.Errorf("availability = %v, want %v", res.Availability, wantAvail)
	}
	wantDown := (1 - wantAvail) * MinutesPerYear
	if !relClose(res.DowntimeMinutes, wantDown, 1e-9) {
		t.Errorf("downtime = %v, want %v", res.DowntimeMinutes, wantDown)
	}
	// First-order check: downtime ≈ failures/year × repair minutes.
	approx := (8760 / mtbf.Hours()) * repair.Minutes()
	if !relClose(res.DowntimeMinutes, approx, 0.01) {
		t.Errorf("downtime = %v, first-order estimate %v", res.DowntimeMinutes, approx)
	}
}

func TestNoRedundancyScalesWithN(t *testing.T) {
	// With m = n and no spares, downtime grows roughly linearly in n —
	// the "downtime increases with load" shape of Fig. 6.
	mtbf := 60 * units.Day
	repair := 4 * units.Minute
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		tm := singleMode(n, n, 0, mtbf, repair, 0, false)
		res, err := MarkovEngine{}.Evaluate([]TierModel{tm})
		if err != nil {
			t.Fatal(err)
		}
		if res.DowntimeMinutes <= prev {
			t.Errorf("downtime at n=%d (%v) did not grow beyond %v", n, res.DowntimeMinutes, prev)
		}
		// First-order: n × events/yr × repair.
		approx := float64(n) * (8760 / mtbf.Hours()) * repair.Minutes()
		if !relClose(res.DowntimeMinutes, approx, 0.02) {
			t.Errorf("n=%d: downtime %v, first-order %v", n, res.DowntimeMinutes, approx)
		}
		prev = res.DowntimeMinutes
	}
}

func TestHeadroomCutsDowntime(t *testing.T) {
	// One extra active machine turns first-order downtime into a
	// second-order overlap probability: orders of magnitude less.
	mtbf := 650 * units.Day
	repair := 38 * units.Hour
	noExtra := singleMode(2, 2, 0, mtbf, repair, 0, false)
	extra := singleMode(3, 2, 0, mtbf, repair, 0, false)
	r0, err := MarkovEngine{}.Evaluate([]TierModel{noExtra})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := MarkovEngine{}.Evaluate([]TierModel{extra})
	if err != nil {
		t.Fatal(err)
	}
	if r1.DowntimeMinutes >= r0.DowntimeMinutes/50 {
		t.Errorf("extra active machine: downtime %v vs %v — want ≥50x reduction",
			r1.DowntimeMinutes, r0.DowntimeMinutes)
	}
}

func TestSpareFailoverDowntime(t *testing.T) {
	// With an inactive spare absorbing hard failures, downtime should be
	// dominated by failover transients: events/yr × failover length.
	mtbf := 650 * units.Day
	repair := 38 * units.Hour
	failover := units.Duration(6*units.Minute + 30*units.Second)
	tm := singleMode(2, 2, 1, mtbf, repair, failover, true)
	res, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	eventsPerYear := 2 * 8760 / mtbf.Hours()
	approx := eventsPerYear * failover.Minutes()
	// Steady-state overlap adds a little on top of the transient term.
	if res.DowntimeMinutes < approx {
		t.Errorf("downtime %v below transient floor %v", res.DowntimeMinutes, approx)
	}
	if res.DowntimeMinutes > approx*2 {
		t.Errorf("downtime %v far above transient estimate %v", res.DowntimeMinutes, approx)
	}
	// And it must beat repair-in-place by a wide margin.
	noSpare := singleMode(2, 2, 0, mtbf, repair, 0, false)
	r0, err := MarkovEngine{}.Evaluate([]TierModel{noSpare})
	if err != nil {
		t.Fatal(err)
	}
	if res.DowntimeMinutes >= r0.DowntimeMinutes/10 {
		t.Errorf("spare should cut downtime ≥10x: %v vs %v", res.DowntimeMinutes, r0.DowntimeMinutes)
	}
}

func TestSpareWithoutFailoverIsInert(t *testing.T) {
	// A mode whose repair beats failover ignores spares entirely.
	mtbf := 60 * units.Day
	repair := 4 * units.Minute
	withSpare := singleMode(2, 2, 1, mtbf, repair, 6*units.Minute, false)
	without := singleMode(2, 2, 0, mtbf, repair, 0, false)
	r1, err := MarkovEngine{}.Evaluate([]TierModel{withSpare})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := MarkovEngine{}.Evaluate([]TierModel{without})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(r1.DowntimeMinutes, r0.DowntimeMinutes, 1e-12) {
		t.Errorf("inert spare changed downtime: %v vs %v", r1.DowntimeMinutes, r0.DowntimeMinutes)
	}
}

func TestActiveSparesFailToo(t *testing.T) {
	// Warm spares have shorter activation but are powered and
	// failure-prone, so the failure event rate rises.
	mtbf := 100 * units.Day
	repair := 10 * units.Hour
	inactive := singleMode(2, 2, 1, mtbf, repair, 5*units.Minute, true)
	active := inactive
	active.Modes = append([]Mode(nil), inactive.Modes...)
	active.Modes[0].SparePowered = true
	ri, err := MarkovEngine{}.Evaluate([]TierModel{inactive})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := MarkovEngine{}.Evaluate([]TierModel{active})
	if err != nil {
		t.Fatal(err)
	}
	ei := ri.Tiers[0].Contributions[0].EventsPerYear
	ea := ra.Tiers[0].Contributions[0].EventsPerYear
	if ea <= ei {
		t.Errorf("active spares should raise the event rate: %v vs %v", ea, ei)
	}
}

func TestSeriesComposition(t *testing.T) {
	// Two identical single-resource tiers in series: availability is the
	// square of one tier's.
	mtbf := 60 * units.Day
	repair := 2 * units.Hour
	tm := singleMode(1, 1, 0, mtbf, repair, 0, false)
	one, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	two, err := MarkovEngine{}.Evaluate([]TierModel{tm, tm})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(two.Availability, one.Availability*one.Availability, 1e-12) {
		t.Errorf("series availability = %v, want %v", two.Availability, one.Availability*one.Availability)
	}
	if len(two.Tiers) != 2 {
		t.Errorf("tier results = %d, want 2", len(two.Tiers))
	}
}

func TestMultiModeComposition(t *testing.T) {
	// Two modes on one tier: availabilities multiply (independence).
	m1 := Mode{Name: "a", MTBF: 100 * units.Day, Repair: 1 * units.Hour}
	m2 := Mode{Name: "b", MTBF: 50 * units.Day, Repair: 30 * units.Minute}
	tm := TierModel{Name: "t", N: 1, M: 1, Modes: []Mode{m1, m2}}
	res, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	a1 := availOf(t, m1)
	a2 := availOf(t, m2)
	if !almostEqual(res.Availability, a1*a2, 1e-12) {
		t.Errorf("multi-mode availability = %v, want %v", res.Availability, a1*a2)
	}
	if len(res.Tiers[0].Contributions) != 2 {
		t.Errorf("contributions = %d, want 2", len(res.Tiers[0].Contributions))
	}
}

func availOf(t *testing.T, m Mode) float64 {
	t.Helper()
	res, err := MarkovEngine{}.Evaluate([]TierModel{{Name: "x", N: 1, M: 1, Modes: []Mode{m}}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Availability
}

func TestZeroRepairModeIsHarmless(t *testing.T) {
	tm := TierModel{Name: "t", N: 1, M: 1, Modes: []Mode{{Name: "glitch", MTBF: 10 * units.Day}}}
	res, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability != 1 {
		t.Errorf("zero-repair mode availability = %v, want 1", res.Availability)
	}
	if got := res.Tiers[0].Contributions[0].EventsPerYear; !relClose(got, 8760/(10*24.0), 1e-9) {
		t.Errorf("events/yr = %v, want %v", got, 8760/(10*24.0))
	}
}

func TestValidation(t *testing.T) {
	base := singleMode(1, 1, 0, 10*units.Day, units.Hour, 0, false)
	cases := []struct {
		name   string
		mutate func(*TierModel)
	}{
		{"zero actives", func(tm *TierModel) { tm.N = 0 }},
		{"m above n", func(tm *TierModel) { tm.M = 2 }},
		{"m zero", func(tm *TierModel) { tm.M = 0 }},
		{"negative spares", func(tm *TierModel) { tm.S = -1 }},
		{"no modes", func(tm *TierModel) { tm.Modes = nil }},
		{"zero mtbf", func(tm *TierModel) { tm.Modes[0].MTBF = 0 }},
		{"negative repair", func(tm *TierModel) { tm.Modes[0].Repair = -units.Hour }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tm := base
			tm.Modes = append([]Mode(nil), base.Modes...)
			tc.mutate(&tm)
			if _, err := (MarkovEngine{}).Evaluate([]TierModel{tm}); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := (MarkovEngine{}).Evaluate(nil); err == nil {
		t.Error("empty evaluation should fail")
	}
}

func TestContributionAccounting(t *testing.T) {
	tm := singleMode(2, 2, 1, 650*units.Day, 38*units.Hour, 5*units.Minute, true)
	res, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	mc := res.Tiers[0].Contributions[0]
	if mc.TransientMinutes <= 0 {
		t.Error("failover mode should accumulate transient downtime")
	}
	if mc.SteadyMinutes <= 0 {
		t.Error("overlapping repairs should accumulate steady downtime")
	}
	if !strings.Contains(mc.Name, "hard") {
		t.Errorf("contribution name = %q", mc.Name)
	}
	if !relClose(mc.Minutes(), mc.SteadyMinutes+mc.TransientMinutes, 1e-12) {
		t.Error("Minutes() should sum components")
	}
	// Per-tier downtime tracks contributions to first order (product vs
	// sum differences are second-order here).
	sum := 0.0
	for _, c := range res.Tiers[0].Contributions {
		sum += c.Minutes()
	}
	if !relClose(res.Tiers[0].DowntimeMinutes, sum, 0.01) {
		t.Errorf("tier downtime %v vs contribution sum %v", res.Tiers[0].DowntimeMinutes, sum)
	}
}
