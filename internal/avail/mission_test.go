package avail

import (
	"testing"

	"aved/internal/units"
)

func TestMissionConvergesToSteadyState(t *testing.T) {
	tm := singleMode(3, 3, 0, 100*units.Day, 24*units.Hour, 0, false)
	steady, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	long, err := MissionDowntime(&tm, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(long, steady.DowntimeMinutes, 0.02) {
		t.Errorf("200-year mission %v vs steady state %v", long, steady.DowntimeMinutes)
	}
}

func TestYoungSystemBeatsSteadyState(t *testing.T) {
	// Starting all-up, a short mission accrues less downtime per year
	// than the stationary average.
	tm := singleMode(2, 2, 0, 650*units.Day, 38*units.Hour, 0, false)
	steady, err := MarkovEngine{}.Evaluate([]TierModel{tm})
	if err != nil {
		t.Fatal(err)
	}
	short, err := MissionDowntime(&tm, 0.05) // ~18 days
	if err != nil {
		t.Fatal(err)
	}
	if short >= steady.DowntimeMinutes {
		t.Errorf("18-day mission %v should undercut steady state %v", short, steady.DowntimeMinutes)
	}
	year, err := MissionDowntime(&tm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(short < year && year < steady.DowntimeMinutes*1.001) {
		t.Errorf("mission downtime should grow toward steady state: %v, %v, %v",
			short, year, steady.DowntimeMinutes)
	}
}

func TestMissionMonotoneInHorizon(t *testing.T) {
	tm := singleMode(2, 2, 1, 100*units.Day, 24*units.Hour, 10*units.Minute, true)
	prev := 0.0
	for _, years := range []float64{0.1, 0.5, 1, 5, 50} {
		got, err := MissionDowntime(&tm, years)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Errorf("mission downtime decreased at %v years: %v < %v", years, got, prev)
		}
		prev = got
	}
}

func TestMissionValidation(t *testing.T) {
	tm := singleMode(1, 1, 0, units.Day, units.Hour, 0, false)
	if _, err := MissionDowntime(&tm, 0); err == nil {
		t.Error("zero mission length should fail")
	}
	bad := singleMode(0, 1, 0, units.Day, units.Hour, 0, false)
	if _, err := MissionDowntime(&bad, 1); err == nil {
		t.Error("invalid tier should fail")
	}
}

func TestMissionZeroRepairHarmless(t *testing.T) {
	tm := TierModel{Name: "t", N: 1, M: 1, Modes: []Mode{{Name: "glitch", MTBF: 10 * units.Day}}}
	got, err := MissionDowntime(&tm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("zero-repair mission downtime = %v, want 0", got)
	}
}
