package avail

import (
	"fmt"

	"aved/internal/markov"
)

// ExactEngine evaluates each failure mode with an explicit
// continuous-time Markov chain over (failed, activating) states,
// solved by dense Gaussian elimination. Failover transients are chain
// states rather than the per-event expected-value terms the default
// MarkovEngine uses, so this engine validates that first-order
// accounting. Activation times are exponential with the failover mean
// (the usual Markovian approximation of a deterministic window).
//
// Like the default engine, modes are independent and tiers compose in
// series. The state space is (N+1)·(S+1) per mode, so evaluation stays
// cheap for realistic designs.
type ExactEngine struct{}

var _ Engine = ExactEngine{}

// NewExactEngine builds the exact-transient analytic engine.
func NewExactEngine() ExactEngine { return ExactEngine{} }

// Evaluate implements Engine.
func (ExactEngine) Evaluate(tms []TierModel) (Result, error) {
	if len(tms) == 0 {
		return Result{}, fmt.Errorf("avail: no tiers to evaluate")
	}
	res := Result{Availability: 1}
	for i := range tms {
		tr, err := exactTier(&tms[i])
		if err != nil {
			return Result{}, err
		}
		res.Tiers = append(res.Tiers, tr)
		res.Availability *= tr.Availability
	}
	res.DowntimeMinutes = (1 - res.Availability) * MinutesPerYear
	return res, nil
}

func exactTier(tm *TierModel) (TierResult, error) {
	if err := tm.Validate(); err != nil {
		return TierResult{}, err
	}
	tr := TierResult{Name: tm.Name, Availability: 1}
	for _, mode := range tm.Modes {
		down, events, err := exactMode(tm, mode)
		if err != nil {
			return TierResult{}, fmt.Errorf("tier %q mode %q: %w", tm.Name, mode.Name, err)
		}
		tr.Contributions = append(tr.Contributions, ModeContribution{
			Name:          mode.Name,
			SteadyMinutes: down * MinutesPerYear,
			EventsPerYear: events,
		})
		tr.Availability *= 1 - down
	}
	tr.DowntimeMinutes = (1 - tr.Availability) * MinutesPerYear
	return tr, nil
}

// exactMode solves the (failed, activating) chain for one mode and
// reports its downtime fraction and annual failure-event rate.
func exactMode(tm *TierModel, mode Mode) (downFrac, eventsPerYear float64, err error) {
	lambda := 1 / mode.MTBF.Hours()
	spares := 0
	if mode.UsesFailover {
		spares = tm.S
	}
	total := tm.N + spares

	if mode.Repair <= 0 {
		// Instantaneous repair: no downtime; event rate from the
		// all-up state.
		powered := tm.N
		if mode.SparePowered {
			powered = total
		}
		return 0, float64(powered) * lambda * 8760, nil
	}
	mu := 1 / mode.Repair.Hours()
	activationRate := 0.0
	if mode.UsesFailover && mode.Failover > 0 {
		activationRate = 1 / mode.Failover.Hours()
	}

	// States (j, a): j failed resources, a spares activating.
	// serving(j, a) = min(n, total-j) − a; idle = total − j − serving − a.
	// With no activation window (or no failover) the a>0 states are
	// unreachable and would form a disconnected class, so the state
	// space collapses to a = 0.
	maxA := spares
	if activationRate == 0 {
		maxA = 0
	}
	cols := maxA + 1
	idx := func(j, a int) int { return j*cols + a }
	nStates := (total + 1) * cols
	chain, err := markov.NewChain(nStates)
	if err != nil {
		return 0, 0, err
	}
	serving := func(j, a int) int {
		target := total - j
		if target > tm.N {
			target = tm.N
		}
		return target - a
	}
	valid := func(j, a int) bool {
		if j < 0 || j > total || a < 0 || a > maxA {
			return false
		}
		return serving(j, a) >= 0
	}
	for j := 0; j <= total; j++ {
		for a := 0; a <= maxA; a++ {
			if !valid(j, a) {
				continue
			}
			srv := serving(j, a)
			idle := total - j - srv - a
			// Serving-resource failure.
			if srv > 0 {
				rate := float64(srv) * lambda
				// With a zero failover window the spare serves
				// instantly, so no activation state is entered.
				if mode.UsesFailover && activationRate > 0 && idle > 0 && valid(j+1, a+1) {
					// An idle spare starts activating into the slot.
					if err := chain.AddRate(idx(j, a), idx(j+1, a+1), rate); err != nil {
						return 0, 0, err
					}
				} else if valid(j+1, a) {
					if err := chain.AddRate(idx(j, a), idx(j+1, a), rate); err != nil {
						return 0, 0, err
					}
				}
			}
			// Powered idle spares can fail too.
			if mode.SparePowered && idle > 0 && valid(j+1, a) {
				if err := chain.AddRate(idx(j, a), idx(j+1, a), float64(idle)*lambda); err != nil {
					return 0, 0, err
				}
			}
			// Activation completion.
			if a > 0 && activationRate > 0 && valid(j, a-1) {
				if err := chain.AddRate(idx(j, a), idx(j, a-1), float64(a)*activationRate); err != nil {
					return 0, 0, err
				}
			}
			// Repair completion: the resource rejoins as an idle spare
			// (or directly into service when no spare slots exist, as
			// repair time already includes startup).
			if j > 0 {
				target := idx(j-1, a)
				if !valid(j-1, a) {
					// Rare corner: the activating count exceeds the
					// shrunken target; fold the activation away.
					target = idx(j-1, a-1)
				}
				if err := chain.AddRate(idx(j, a), target, float64(j)*mu); err != nil {
					return 0, 0, err
				}
			}
		}
	}
	// Unreachable invalid states would make the chain reducible; patch
	// them with an escape to the origin so the solver sees one class.
	// (They receive no inbound rate, so their stationary mass is zero.)
	for j := 0; j <= total; j++ {
		for a := 0; a <= maxA; a++ {
			st := idx(j, a)
			if !valid(j, a) || (chain.Rate(st, st) == 0 && st != idx(0, 0)) {
				if st != idx(0, 0) {
					if err := chain.AddRate(st, idx(0, 0), 1); err != nil {
						return 0, 0, err
					}
				}
			}
		}
	}
	pi, err := chain.SteadyState()
	if err != nil {
		return 0, 0, err
	}
	var eventsPerHour float64
	for j := 0; j <= total; j++ {
		for a := 0; a <= maxA; a++ {
			if !valid(j, a) {
				continue
			}
			p := pi[idx(j, a)]
			if serving(j, a) < tm.M {
				downFrac += p
			}
			powered := serving(j, a)
			if mode.SparePowered {
				powered = total - j - a
			}
			eventsPerHour += p * float64(powered) * lambda
		}
	}
	return downFrac, eventsPerHour * 8760, nil
}
