package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Grid enumerates the candidate values of a numeric design parameter.
// The spec language writes grids as ranges with a step rule:
//
//	[1-1000,+1]     arithmetic: 1, 2, 3, … 1000
//	[1m-24h;*1.05]  geometric: 1m, 1.05m, … up to 24h (durations)
//	[1]             singleton
//
// Values reports the expansion; for large geometric grids callers should
// iterate with Next instead of materialising the slice.
type Grid struct {
	lo, hi float64
	step   float64
	mul    bool // true: geometric (step is the ratio); false: arithmetic
}

// NewArithmeticGrid builds the grid lo, lo+step, … ≤ hi.
func NewArithmeticGrid(lo, hi, step float64) (Grid, error) {
	if step <= 0 {
		return Grid{}, fmt.Errorf("arithmetic grid: step %v must be positive", step)
	}
	if hi < lo {
		return Grid{}, fmt.Errorf("arithmetic grid: upper bound %v below lower bound %v", hi, lo)
	}
	return Grid{lo: lo, hi: hi, step: step}, nil
}

// NewGeometricGrid builds the grid lo, lo·ratio, lo·ratio², … ≤ hi.
func NewGeometricGrid(lo, hi, ratio float64) (Grid, error) {
	if ratio <= 1 {
		return Grid{}, fmt.Errorf("geometric grid: ratio %v must exceed 1", ratio)
	}
	if lo <= 0 {
		return Grid{}, fmt.Errorf("geometric grid: lower bound %v must be positive", lo)
	}
	if hi < lo {
		return Grid{}, fmt.Errorf("geometric grid: upper bound %v below lower bound %v", hi, lo)
	}
	return Grid{lo: lo, hi: hi, step: ratio, mul: true}, nil
}

// NewSingletonGrid builds a grid holding exactly one value.
func NewSingletonGrid(v float64) Grid {
	return Grid{lo: v, hi: v, step: 1}
}

// Lo reports the smallest value of the grid.
func (g Grid) Lo() float64 { return g.lo }

// Hi reports the inclusive upper bound of the grid.
func (g Grid) Hi() float64 { return g.hi }

// Geometric reports whether the grid steps multiplicatively.
func (g Grid) Geometric() bool { return g.mul }

// Contains reports whether v lies within the grid's bounds. It does not
// require v to be exactly on a grid point.
func (g Grid) Contains(v float64) bool { return v >= g.lo && v <= g.hi }

// Next reports the grid point following v, and false once the grid is
// exhausted. Calling Next with a value below Lo yields Lo.
func (g Grid) Next(v float64) (float64, bool) {
	if v < g.lo {
		return g.lo, true
	}
	var n float64
	if g.mul {
		n = v * g.step
	} else {
		n = v + g.step
	}
	// Guard against floating-point stall on degenerate inputs.
	if n <= v {
		return 0, false
	}
	if n > g.hi*(1+1e-12) {
		return 0, false
	}
	if n > g.hi {
		n = g.hi
	}
	return n, true
}

// Values materialises every grid point in increasing order.
func (g Grid) Values() []float64 {
	var out []float64
	v, ok := g.lo, true
	for ok {
		out = append(out, v)
		v, ok = g.Next(v)
	}
	return out
}

// Len reports the number of grid points.
func (g Grid) Len() int {
	n := 0
	v, ok := g.lo, true
	for ok {
		n++
		v, ok = g.Next(v)
	}
	return n
}

// String renders the grid in spec notation.
func (g Grid) String() string {
	if g.lo == g.hi {
		return fmt.Sprintf("[%s]", trimFloat(g.lo))
	}
	if g.mul {
		return fmt.Sprintf("[%s-%s;*%s]", trimFloat(g.lo), trimFloat(g.hi), trimFloat(g.step))
	}
	return fmt.Sprintf("[%s-%s,+%s]", trimFloat(g.lo), trimFloat(g.hi), trimFloat(g.step))
}

// FormatDurationGrid renders a grid whose values are hours back into
// the spec's duration-range notation: "[1m-24h;*1.05]", "[2h]",
// "[10m-60m,+10m]". It is the inverse of ParseDurationGrid up to unit
// normalisation (24h renders as 1d, which parses back identically).
func FormatDurationGrid(g Grid) string {
	lo := FromHours(g.lo).String()
	if g.lo == g.hi {
		return "[" + lo + "]"
	}
	hi := FromHours(g.hi).String()
	if g.mul {
		return fmt.Sprintf("[%s-%s;*%s]", lo, hi, trimFloat(g.step))
	}
	return fmt.Sprintf("[%s-%s,+%s]", lo, hi, FromHours(g.step))
}

// ParseIntGrid parses the service-model count notation: "[1]",
// "[1-1000,+1]" or "[1-1024,*2]" (powers, for applications that require
// e.g. power-of-two node counts).
func ParseIntGrid(s string) (Grid, error) {
	body, err := stripBrackets(s)
	if err != nil {
		return Grid{}, err
	}
	if !strings.ContainsAny(body, ",;") {
		v, err := parseFloatStrict(body)
		if err != nil {
			return Grid{}, fmt.Errorf("parse grid %q: %w", s, err)
		}
		return NewSingletonGrid(v), nil
	}
	rangePart, stepPart, err := splitStep(body, s)
	if err != nil {
		return Grid{}, err
	}
	lo, hi, err := splitRange(rangePart, s, parseFloatStrict)
	if err != nil {
		return Grid{}, err
	}
	return buildGrid(lo, hi, stepPart, s, parseFloatStrict)
}

// ParseDurationGrid parses the mechanism-parameter duration notation:
// "[1m-24h;*1.05]" or "[1m]" or "[1m-60m,+1m]".
func ParseDurationGrid(s string) (Grid, error) {
	parseDur := func(t string) (float64, error) {
		d, err := ParseDuration(t)
		if err != nil {
			return 0, err
		}
		return d.Hours(), nil
	}
	body, err := stripBrackets(s)
	if err != nil {
		return Grid{}, err
	}
	if !strings.ContainsAny(body, ",;") {
		v, err := parseDur(body)
		if err != nil {
			return Grid{}, fmt.Errorf("parse duration grid %q: %w", s, err)
		}
		return NewSingletonGrid(v), nil
	}
	rangePart, stepPart, err := splitStep(body, s)
	if err != nil {
		return Grid{}, err
	}
	lo, hi, err := splitRange(rangePart, s, parseDur)
	if err != nil {
		return Grid{}, err
	}
	// An additive step on a duration grid is itself a duration; a
	// multiplicative step is a dimensionless ratio.
	if strings.HasPrefix(stepPart, "+") {
		return buildGrid(lo, hi, stepPart, s, parseDur)
	}
	return buildGrid(lo, hi, stepPart, s, parseFloatStrict)
}

func stripBrackets(s string) (string, error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || t[0] != '[' || t[len(t)-1] != ']' {
		return "", fmt.Errorf("parse grid %q: want [..] brackets", s)
	}
	return strings.TrimSpace(t[1 : len(t)-1]), nil
}

func splitStep(body, orig string) (rangePart, stepPart string, err error) {
	idx := strings.IndexAny(body, ",;")
	if idx < 0 {
		return "", "", fmt.Errorf("parse grid %q: missing step", orig)
	}
	rangePart = strings.TrimSpace(body[:idx])
	stepPart = strings.TrimSpace(body[idx+1:])
	if stepPart == "" {
		return "", "", fmt.Errorf("parse grid %q: empty step", orig)
	}
	return rangePart, stepPart, nil
}

func splitRange(rangePart, orig string, parse func(string) (float64, error)) (lo, hi float64, err error) {
	dash := strings.Index(rangePart, "-")
	if dash < 0 {
		return 0, 0, fmt.Errorf("parse grid %q: want lo-hi range", orig)
	}
	lo, err = parse(strings.TrimSpace(rangePart[:dash]))
	if err != nil {
		return 0, 0, fmt.Errorf("parse grid %q: bad lower bound: %w", orig, err)
	}
	hi, err = parse(strings.TrimSpace(rangePart[dash+1:]))
	if err != nil {
		return 0, 0, fmt.Errorf("parse grid %q: bad upper bound: %w", orig, err)
	}
	return lo, hi, nil
}

func buildGrid(lo, hi float64, stepPart, orig string, parse func(string) (float64, error)) (Grid, error) {
	if stepPart == "" {
		return Grid{}, fmt.Errorf("parse grid %q: empty step", orig)
	}
	op := stepPart[0]
	stepVal, err := parse(strings.TrimSpace(stepPart[1:]))
	if err != nil {
		return Grid{}, fmt.Errorf("parse grid %q: bad step: %w", orig, err)
	}
	switch op {
	case '+':
		g, err := NewArithmeticGrid(lo, hi, stepVal)
		if err != nil {
			return Grid{}, fmt.Errorf("parse grid %q: %w", orig, err)
		}
		return g, nil
	case '*':
		g, err := NewGeometricGrid(lo, hi, stepVal)
		if err != nil {
			return Grid{}, fmt.Errorf("parse grid %q: %w", orig, err)
		}
		return g, nil
	default:
		return Grid{}, fmt.Errorf("parse grid %q: step must begin with + or *", orig)
	}
}

func parseFloatStrict(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("parse number %q: %w", s, err)
	}
	return v, nil
}
