// Package units provides the scalar quantities used throughout Aved:
// durations with the paper's suffix notation (s, m, h, d), annual money
// amounts, and the range grids that appear in infrastructure and service
// specifications (arithmetic ranges such as [1-1000,+1] and geometric
// ranges such as [1m-24h;*1.05]).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Duration is a span of time. It wraps time.Duration so that values parse
// and print using the paper's suffixes: "s" seconds, "m" minutes, "h"
// hours, "d" days. A bare "0" is accepted and means zero duration.
type Duration time.Duration

// Common durations in the paper's unit system.
const (
	Second Duration = Duration(time.Second)
	Minute Duration = Duration(time.Minute)
	Hour   Duration = Duration(time.Hour)
	Day    Duration = 24 * Hour
	Year   Duration = Duration(8760 * time.Hour)
)

// ParseDuration parses a duration written with one of the paper's
// suffixes: "30s", "2m", "38h", "650d". A bare "0" parses as zero.
// Fractional magnitudes such as "1.5h" are accepted.
func ParseDuration(s string) (Duration, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("parse duration: empty string")
	}
	if t == "0" {
		return 0, nil
	}
	unit := t[len(t)-1]
	var scale Duration
	switch unit {
	case 's':
		scale = Second
	case 'm':
		scale = Minute
	case 'h':
		scale = Hour
	case 'd':
		scale = Day
	default:
		return 0, fmt.Errorf("parse duration %q: unknown unit %q (want s, m, h or d)", s, string(unit))
	}
	mag, err := strconv.ParseFloat(t[:len(t)-1], 64)
	if err != nil {
		return 0, fmt.Errorf("parse duration %q: %w", s, err)
	}
	if mag < 0 {
		return 0, fmt.Errorf("parse duration %q: negative durations are not allowed", s)
	}
	return Duration(float64(scale) * mag), nil
}

// MustDuration parses s and panics on error. It is intended only for
// package-level constants and test fixtures built from literals.
func MustDuration(s string) Duration {
	d, err := ParseDuration(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return time.Duration(d).Seconds() }

// Minutes reports the duration in minutes.
func (d Duration) Minutes() float64 { return time.Duration(d).Minutes() }

// Hours reports the duration in hours.
func (d Duration) Hours() float64 { return time.Duration(d).Hours() }

// Days reports the duration in 24-hour days.
func (d Duration) Days() float64 { return time.Duration(d).Hours() / 24 }

// Years reports the duration in 8760-hour years.
func (d Duration) Years() float64 { return time.Duration(d).Hours() / 8760 }

// Std converts d to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromSeconds builds a Duration from a number of seconds.
func FromSeconds(sec float64) Duration { return Duration(sec * float64(Second)) }

// FromHours builds a Duration from a number of hours.
func FromHours(h float64) Duration { return Duration(h * float64(Hour)) }

// FromDays builds a Duration from a number of 24-hour days.
func FromDays(days float64) Duration { return Duration(days * float64(Day)) }

// String formats the duration in the paper's notation, choosing the
// largest unit that yields a compact magnitude: "0", "30s", "2m", "38h",
// "650d". Non-integral magnitudes print with up to three decimals.
func (d Duration) String() string {
	if d == 0 {
		return "0"
	}
	type unit struct {
		scale Duration
		sfx   string
	}
	units := []unit{{Day, "d"}, {Hour, "h"}, {Minute, "m"}, {Second, "s"}}
	// Prefer the largest unit that yields a compact integral magnitude,
	// as the paper writes 38h rather than 1.583d.
	for _, u := range units {
		mag := float64(d) / float64(u.scale)
		if mag >= 1 && mag <= 10000 && mag == math.Trunc(mag) {
			return trimFloat(mag) + u.sfx
		}
	}
	// Otherwise pick the smallest unit that keeps the magnitude under
	// 1000 (38.108h beats 137190s), falling back to days.
	for i := len(units) - 1; i >= 0; i-- {
		mag := float64(d) / float64(units[i].scale)
		if mag < 1000 {
			return trimFloat(mag) + units[i].sfx
		}
	}
	return trimFloat(d.Days()) + "d"
}

// trimFloat formats v with at most three decimals and no trailing zeros.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Rate is an event rate in events per hour.
type Rate float64

// RatePerHour converts a mean time between events into a rate. A zero
// or negative duration yields a zero rate (no events).
func RatePerHour(mtbe Duration) Rate {
	if mtbe <= 0 {
		return 0
	}
	return Rate(1 / mtbe.Hours())
}

// PerYear reports the expected number of events in an 8760-hour year.
func (r Rate) PerYear() float64 { return float64(r) * 8760 }
