package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Money is an annualised cost in currency units per year. The paper
// annualises capital costs by dividing by useful lifetime, so every cost
// in the model is an annual figure and they add directly.
type Money float64

// ParseMoney parses a plain decimal cost figure such as "2400" or
// "93500". Negative costs are rejected.
func ParseMoney(s string) (Money, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("parse money %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("parse money %q: negative costs are not allowed", s)
	}
	return Money(v), nil
}

// String formats the amount without a currency symbol, matching the
// paper's tables: integral amounts print with no decimals.
func (m Money) String() string {
	v := float64(m)
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
