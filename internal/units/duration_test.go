package units

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestParseDuration(t *testing.T) {
	tests := []struct {
		give string
		want Duration
	}{
		{"0", 0},
		{"30s", 30 * Second},
		{"2m", 2 * Minute},
		{"38h", 38 * Hour},
		{"650d", 650 * Day},
		{"1.5h", Duration(90 * time.Minute)},
		{"  2m ", 2 * Minute},
		{"0.5d", 12 * Hour},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseDuration(tt.give)
			if err != nil {
				t.Fatalf("ParseDuration(%q) error: %v", tt.give, err)
			}
			if got != tt.want {
				t.Errorf("ParseDuration(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestParseDurationErrors(t *testing.T) {
	for _, give := range []string{"", "5", "5x", "abc", "-2m", "m", "2mm"} {
		t.Run(give, func(t *testing.T) {
			if _, err := ParseDuration(give); err == nil {
				t.Errorf("ParseDuration(%q) succeeded, want error", give)
			}
		})
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		give Duration
		want string
	}{
		{0, "0"},
		{30 * Second, "30s"},
		{2 * Minute, "2m"},
		{38 * Hour, "38h"},
		{650 * Day, "650d"},
		{90 * Minute, "90m"},
		{Duration(500 * time.Millisecond), "0.5s"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Duration(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	// Parsing the printed form must return nearly the same duration:
	// the display format keeps three decimals of the chosen unit, so
	// the round-trip is accurate to ~5e-4 of one unit (1e-4 relative
	// covers the worst placement).
	f := func(secs uint32) bool {
		d := Duration(secs) * Second
		back, err := ParseDuration(d.String())
		if err != nil {
			return false
		}
		return math.Abs(back.Seconds()-d.Seconds()) < 1e-4*math.Max(1, d.Seconds())
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(7)), MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// And exactly for values the spec files actually use.
	for _, s := range []string{"30s", "2m", "38h", "650d", "90m", "204d"} {
		d := MustDuration(s)
		back, err := ParseDuration(d.String())
		if err != nil || back != d {
			t.Errorf("%s: round trip gave %v (%v)", s, back, err)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 36 * Hour
	if got := d.Hours(); got != 36 {
		t.Errorf("Hours() = %v, want 36", got)
	}
	if got := d.Days(); got != 1.5 {
		t.Errorf("Days() = %v, want 1.5", got)
	}
	if got := d.Minutes(); got != 36*60 {
		t.Errorf("Minutes() = %v, want %v", got, 36*60)
	}
	if got := Year.Hours(); got != 8760 {
		t.Errorf("Year.Hours() = %v, want 8760", got)
	}
	if got := FromHours(2.5); got != Duration(150*time.Minute) {
		t.Errorf("FromHours(2.5) = %v", got)
	}
	if got := FromDays(2); got != 48*Hour {
		t.Errorf("FromDays(2) = %v", got)
	}
	if got := FromSeconds(90); got != Duration(90*time.Second) {
		t.Errorf("FromSeconds(90) = %v", got)
	}
}

func TestRatePerHour(t *testing.T) {
	r := RatePerHour(650 * Day)
	wantPerYear := 8760.0 / (650 * 24)
	if math.Abs(r.PerYear()-wantPerYear) > 1e-9 {
		t.Errorf("RatePerHour(650d).PerYear() = %v, want %v", r.PerYear(), wantPerYear)
	}
	if RatePerHour(0) != 0 {
		t.Error("RatePerHour(0) should be 0")
	}
}

func TestMustDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDuration on invalid input did not panic")
		}
	}()
	MustDuration("not-a-duration")
}
