package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseIntGrid(t *testing.T) {
	tests := []struct {
		give     string
		wantLo   float64
		wantHi   float64
		wantLen  int
		wantGeom bool
	}{
		{"[1]", 1, 1, 1, false},
		{"[1-10,+1]", 1, 10, 10, false},
		{"[1-1000,+1]", 1, 1000, 1000, false},
		{"[2-16,*2]", 2, 16, 4, true},
		{"[1-9,+2]", 1, 9, 5, false},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			g, err := ParseIntGrid(tt.give)
			if err != nil {
				t.Fatalf("ParseIntGrid(%q) error: %v", tt.give, err)
			}
			if g.Lo() != tt.wantLo || g.Hi() != tt.wantHi {
				t.Errorf("bounds = [%v,%v], want [%v,%v]", g.Lo(), g.Hi(), tt.wantLo, tt.wantHi)
			}
			if got := g.Len(); got != tt.wantLen {
				t.Errorf("Len() = %d, want %d", got, tt.wantLen)
			}
			if g.Geometric() != tt.wantGeom {
				t.Errorf("Geometric() = %v, want %v", g.Geometric(), tt.wantGeom)
			}
		})
	}
}

func TestParseIntGridErrors(t *testing.T) {
	for _, give := range []string{"", "1-10,+1", "[1-10]", "[1-10,+0]", "[10-1,+1]", "[1-10,x1]", "[a-b,+1]", "[1-10;*1]"} {
		t.Run(give, func(t *testing.T) {
			if _, err := ParseIntGrid(give); err == nil {
				t.Errorf("ParseIntGrid(%q) succeeded, want error", give)
			}
		})
	}
}

func TestParseDurationGrid(t *testing.T) {
	g, err := ParseDurationGrid("[1m-24h;*1.05]")
	if err != nil {
		t.Fatalf("ParseDurationGrid error: %v", err)
	}
	if math.Abs(g.Lo()-1.0/60) > 1e-12 {
		t.Errorf("Lo() = %v hours, want 1 minute", g.Lo())
	}
	if g.Hi() != 24 {
		t.Errorf("Hi() = %v hours, want 24", g.Hi())
	}
	if !g.Geometric() {
		t.Error("grid should be geometric")
	}
	// 1m * 1.05^k >= 24h => k >= ln(1440)/ln(1.05) ~ 149.0, so the grid has
	// 150 natural points plus one clamped endpoint.
	n := g.Len()
	if n < 149 || n > 152 {
		t.Errorf("Len() = %d, want about 150", n)
	}
	// All points increase and stay within bounds.
	vals := g.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("grid not strictly increasing at %d: %v then %v", i, vals[i-1], vals[i])
		}
	}
	if vals[len(vals)-1] > 24+1e-9 {
		t.Errorf("last value %v exceeds upper bound", vals[len(vals)-1])
	}
}

func TestParseDurationGridSingleton(t *testing.T) {
	g, err := ParseDurationGrid("[2h]")
	if err != nil {
		t.Fatalf("ParseDurationGrid error: %v", err)
	}
	if g.Lo() != 2 || g.Hi() != 2 || g.Len() != 1 {
		t.Errorf("singleton grid = %v (len %d), want [2h]", g, g.Len())
	}
}

func TestParseDurationGridAdditive(t *testing.T) {
	g, err := ParseDurationGrid("[10m-60m,+10m]")
	if err != nil {
		t.Fatalf("ParseDurationGrid error: %v", err)
	}
	if got := g.Len(); got != 6 {
		t.Errorf("Len() = %d, want 6", got)
	}
}

func TestGridNext(t *testing.T) {
	g, err := NewArithmeticGrid(1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := g.Next(0)
	if !ok || v != 1 {
		t.Fatalf("Next(0) = %v,%v want 1,true", v, ok)
	}
	v, ok = g.Next(1)
	if !ok || v != 3 {
		t.Fatalf("Next(1) = %v,%v want 3,true", v, ok)
	}
	v, ok = g.Next(5)
	if ok {
		t.Fatalf("Next(5) = %v,%v want exhausted", v, ok)
	}
}

func TestGridContains(t *testing.T) {
	g := NewSingletonGrid(7)
	if !g.Contains(7) || g.Contains(6) || g.Contains(8) {
		t.Error("singleton Contains misbehaves")
	}
}

func TestGridValuesSortedProperty(t *testing.T) {
	f := func(lo8, span8, step8 uint8) bool {
		lo := float64(lo8%50) + 1
		hi := lo + float64(span8%100)
		step := float64(step8%9) + 1
		g, err := NewArithmeticGrid(lo, hi, step)
		if err != nil {
			return false
		}
		vals := g.Values()
		if len(vals) == 0 || vals[0] != lo {
			return false
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] || vals[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridString(t *testing.T) {
	g, _ := NewArithmeticGrid(1, 1000, 1)
	if got := g.String(); got != "[1-1000,+1]" {
		t.Errorf("String() = %q", got)
	}
	gg, _ := NewGeometricGrid(2, 16, 2)
	if got := gg.String(); got != "[2-16;*2]" {
		t.Errorf("String() = %q", got)
	}
	if got := NewSingletonGrid(1).String(); got != "[1]" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseMoney(t *testing.T) {
	m, err := ParseMoney("93500")
	if err != nil || m != 93500 {
		t.Errorf("ParseMoney(93500) = %v, %v", m, err)
	}
	if _, err := ParseMoney("-1"); err == nil {
		t.Error("ParseMoney(-1) should fail")
	}
	if _, err := ParseMoney("abc"); err == nil {
		t.Error("ParseMoney(abc) should fail")
	}
	if got := Money(2400).String(); got != "2400" {
		t.Errorf("Money.String() = %q", got)
	}
	if got := Money(12.5).String(); got != "12.50" {
		t.Errorf("Money.String() = %q", got)
	}
}
