package sweep

import (
	"reflect"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
)

func appSolverWorkers(t *testing.T, workers int) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{Registry: scenarios.Registry(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sciSolverWorkers(t *testing.T, workers int) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{
		Registry: scenarios.Registry(),
		Workers:  workers,
		FixedMechanisms: map[string]map[string]model.ParamValue{
			"maintenanceA": {"level": model.EnumValue("bronze")},
			"maintenanceB": {"level": model.EnumValue("bronze")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFig6WorkerCountBitIdentical pins the sweep determinism guarantee:
// the full Fig. 6 result — points, curve membership, and curve order —
// is identical whether the grid runs sequentially or across the pool.
func TestFig6WorkerCountBitIdentical(t *testing.T) {
	loads := []float64{600, 1500, 3000}
	budgets := []float64{30, 200, 2000}
	seq, err := Fig6(appSolverWorkers(t, 1), loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) == 0 || len(seq.Curves) == 0 {
		t.Fatalf("degenerate fixture: %d points, %d curves", len(seq.Points), len(seq.Curves))
	}
	for _, workers := range []int{4, 0} {
		parl, err := Fig6(appSolverWorkers(t, workers), loads, budgets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parl.Points, seq.Points) {
			t.Errorf("workers=%d: points differ from sequential", workers)
		}
		if !reflect.DeepEqual(parl.Curves, seq.Curves) {
			t.Errorf("workers=%d: curves differ from sequential", workers)
		}
	}
}

// TestFig7WorkerCountBitIdentical covers the job-requirement sweep.
func TestFig7WorkerCountBitIdentical(t *testing.T) {
	hours := []float64{30, 45, 70, 110, 200}
	seq, err := Fig7(sciSolverWorkers(t, 1), hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("degenerate fixture: no points")
	}
	for _, workers := range []int{4, 0} {
		parl, err := Fig7(sciSolverWorkers(t, workers), hours)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parl, seq) {
			t.Errorf("workers=%d: points differ from sequential", workers)
		}
	}
}

// TestFig8WorkerCountBitIdentical covers the premium curves, baselines
// included.
func TestFig8WorkerCountBitIdentical(t *testing.T) {
	loads := []float64{800, 2000}
	budgets := []float64{30, 200, 2000}
	seq, err := Fig8(appSolverWorkers(t, 1), loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(loads) {
		t.Fatalf("curves = %d, want %d", len(seq), len(loads))
	}
	for _, workers := range []int{4, 0} {
		parl, err := Fig8(appSolverWorkers(t, workers), loads, budgets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parl, seq) {
			t.Errorf("workers=%d: curves differ from sequential", workers)
		}
	}
}
