package sweep

import (
	"context"
	"reflect"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
)

func appSolverWorkers(t *testing.T, workers int) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{Registry: scenarios.Registry(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sciSolverWorkers(t *testing.T, workers int) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{
		Registry: scenarios.Registry(),
		Workers:  workers,
		FixedMechanisms: map[string]map[string]model.ParamValue{
			"maintenanceA": {"level": model.EnumValue("bronze")},
			"maintenanceB": {"level": model.EnumValue("bronze")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// normStats reduces Stats to its scheduling-independent projection.
// Cells share the solver's eval cache, so which cell's solve executes
// a singleflight miss (vs replaying it as a hit) depends on
// scheduling; only the sum of the two is pinned. The engine-counter
// deltas are likewise apportioned arbitrarily between overlapping
// solves (see core.Stats), so they are dropped entirely.
func normStats(st core.Stats) core.Stats {
	st.Evaluations += st.EvalCacheHits
	st.EvalCacheHits = 0
	st.ModeMemoHits, st.ModeMemoSolves = 0, 0
	st.SimReplications, st.SimBatches = 0, 0
	// Warm-start reuse counts hits on flights another solve generation
	// created; with cells overlapping on one solver, which generation
	// creates a flight is a scheduling accident too. FrontierReuse is NOT
	// normalized: frontier sets are chain-local and chains run
	// sequentially, so it is exact at any worker count.
	st.WarmStartReuse = 0
	return st
}

// TestFig6WorkerCountBitIdentical pins the sweep determinism guarantee:
// the full Fig. 6 result — points, curve membership, and curve order —
// is identical whether the grid runs sequentially or across the pool.
// Per-point Stats are compared in their scheduling-independent
// projection.
func TestFig6WorkerCountBitIdentical(t *testing.T) {
	loads := []float64{600, 1500, 3000}
	budgets := []float64{30, 200, 2000}
	normPoints := func(ps []Fig6Point) []Fig6Point {
		out := append([]Fig6Point(nil), ps...)
		for i := range out {
			out[i].Stats = normStats(out[i].Stats)
		}
		return out
	}
	seq, err := Fig6(context.Background(), appSolverWorkers(t, 1), loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) == 0 || len(seq.Curves) == 0 {
		t.Fatalf("degenerate fixture: %d points, %d curves", len(seq.Points), len(seq.Curves))
	}
	for _, workers := range []int{4, 0} {
		parl, err := Fig6(context.Background(), appSolverWorkers(t, workers), loads, budgets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normPoints(parl.Points), normPoints(seq.Points)) {
			t.Errorf("workers=%d: points differ from sequential", workers)
		}
		if !reflect.DeepEqual(parl.Curves, seq.Curves) {
			t.Errorf("workers=%d: curves differ from sequential", workers)
		}
	}
}

// TestFig7WorkerCountBitIdentical covers the job-requirement sweep.
func TestFig7WorkerCountBitIdentical(t *testing.T) {
	hours := []float64{30, 45, 70, 110, 200}
	norm := func(ps []Fig7Point) []Fig7Point {
		out := append([]Fig7Point(nil), ps...)
		for i := range out {
			out[i].Stats = normStats(out[i].Stats)
		}
		return out
	}
	seq, err := Fig7(context.Background(), sciSolverWorkers(t, 1), hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("degenerate fixture: no points")
	}
	for _, workers := range []int{4, 0} {
		parl, err := Fig7(context.Background(), sciSolverWorkers(t, workers), hours)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(norm(parl), norm(seq)) {
			t.Errorf("workers=%d: points differ from sequential", workers)
		}
	}
}

// TestFig8WorkerCountBitIdentical covers the premium curves, baselines
// included.
func TestFig8WorkerCountBitIdentical(t *testing.T) {
	loads := []float64{800, 2000}
	budgets := []float64{30, 200, 2000}
	norm := func(cs []Fig8Curve) []Fig8Curve {
		out := append([]Fig8Curve(nil), cs...)
		for i := range out {
			out[i].BaselineStats = normStats(out[i].BaselineStats)
			out[i].Points = append([]Fig8Point(nil), out[i].Points...)
			for j := range out[i].Points {
				out[i].Points[j].Stats = normStats(out[i].Points[j].Stats)
			}
		}
		return out
	}
	seq, err := Fig8(context.Background(), appSolverWorkers(t, 1), loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(loads) {
		t.Fatalf("curves = %d, want %d", len(seq), len(loads))
	}
	for _, workers := range []int{4, 0} {
		parl, err := Fig8(context.Background(), appSolverWorkers(t, workers), loads, budgets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(norm(parl), norm(seq)) {
			t.Errorf("workers=%d: curves differ from sequential", workers)
		}
	}
}
