package sweep

import (
	"context"
	"errors"
	"fmt"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// Fig7Point is one sample of the scientific-application sweep: the
// optimal design at a job-completion-time requirement.
type Fig7Point struct {
	RequirementHours float64
	Resource         string
	Stack            string
	NActive          int
	NSpare           int
	CheckpointHours  float64
	StorageLocation  string
	JobTimeHours     float64
	Cost             units.Money
	// Stats records the point's search effort.
	Stats core.Stats
}

// Fig7 sweeps the job-time requirement axis of Fig. 7: for each
// requirement it solves for the optimal design and records the
// dimensions the figure plots — resource type, resource count, spares,
// checkpoint interval and storage location. Infeasible requirements
// are skipped (the left edge of the axis).
func Fig7(ctx context.Context, solver *core.Solver, requirementHours []float64) ([]Fig7Point, error) {
	if len(requirementHours) == 0 {
		return nil, fmt.Errorf("sweep: fig7 needs a non-empty requirement grid")
	}
	// Each requirement level is an independent Solve; fan them across
	// the worker pool and collect points by index so the output order
	// matches the sequential sweep. Unlike Fig6/Fig8 there is nothing to
	// schedule grid-aware: job solves have no combination phase, so no
	// frontiers to cache and no budget chain to seed — cross-cell reuse
	// comes entirely from the solver's shared evaluation cache.
	type slot struct {
		ok    bool
		point Fig7Point
	}
	slots := make([]slot, len(requirementHours))
	po := solverPointObs(solver, len(slots))
	pt := par.NewTiming(solver.Metrics())
	err := par.ForEachTimedCtx(ctx, solver.Workers(), len(slots), pt, func(i int) error {
		h := requirementHours[i]
		start := po.Begin()
		sol, err := solver.SolveContext(ctx, model.Requirements{
			Kind:       model.ReqJob,
			MaxJobTime: units.FromHours(h),
		})
		if err != nil {
			var infErr *core.InfeasibleError
			if errors.As(err, &infErr) {
				po.Done(i, start, obs.Event{ReqH: h, Err: "infeasible"})
				return nil
			}
			return fmt.Errorf("sweep: fig7 at %vh: %w", h, err)
		}
		po.Done(i, start, obs.Event{
			ReqH: h, Cost: float64(sol.Cost), JobH: sol.JobTime.Hours(),
		})
		td := &sol.Design.Tiers[0]
		p := Fig7Point{
			RequirementHours: h,
			Resource:         td.Resource().Name,
			Stack:            Stack(td),
			NActive:          td.NActive,
			NSpare:           td.NSpare,
			JobTimeHours:     sol.JobTime.Hours(),
			Cost:             sol.Cost,
			Stats:            sol.Stats,
		}
		if ms, ok := td.Mechanism("checkpoint"); ok {
			if v, ok := ms.Values["checkpoint_interval"]; ok {
				p.CheckpointHours = v.Hours
			}
			if v, ok := ms.Values["storage_location"]; ok {
				p.StorageLocation = v.Str
			}
		}
		slots[i] = slot{ok: true, point: p}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Point, 0, len(slots))
	for i := range slots {
		if slots[i].ok {
			out = append(out, slots[i].point)
		}
	}
	return out, nil
}
