package sweep

import (
	"fmt"
	"time"

	"aved/internal/core"
	"aved/internal/obs"
)

// Totals aggregates search effort across a sweep: the per-point
// core.Stats summed over every feasible cell, plus the cell counts
// themselves. The CLIs print it as a closing line so a long sweep
// reports how much work it actually did.
//
// Determinism caveat: cells share the solver's singleflight eval cache
// and its engine, so which cell's solve executes a miss (vs replaying
// it as a hit) and how engine deltas split between overlapping solves
// are scheduling-dependent — only Points/Infeasible, Candidates,
// CostPruned, and the sum Evaluations+EvalCacheHits are exact at any
// worker count. String prints exactly that projection, keeping CLI
// output byte-identical across worker counts; the raw split and the
// engine-delta fields remain available here as approximations.
type Totals struct {
	// Points counts feasible cells (one Solution each); Infeasible
	// counts cells where no design met the requirement.
	Points     int
	Infeasible int

	Candidates    int64
	CostPruned    int64
	BoundPruned   int64
	Evaluations   int64
	EvalCacheHits int64
	// WarmStartReuse sums eval-cache hits on earlier solves' entries; in
	// warm-started sequential sweeps it is exact, with concurrently
	// overlapping solves on one solver it is a scheduling-dependent
	// approximation like the raw hit/miss split.
	WarmStartReuse int64
	// FrontierReuse sums tier frontiers the cells served from their
	// chain's frontier set instead of building (grid-aware Fig6/Fig8
	// scheduling). Chains are sequential, so unlike the raw hit/miss
	// split this is exact at any worker count.
	FrontierReuse int64

	ModeMemoHits   uint64
	ModeMemoSolves uint64

	SimReplications uint64
	SimBatches      uint64

	// PhaseNanos sums the per-cell Stats.PhaseNanos by phase — where the
	// sweep's solve time went. Nil when timing is off (every cell
	// reported nil). Wall-clock, so scheduling-dependent like the raw
	// hit/miss split; String deliberately omits it.
	PhaseNanos map[string]int64
}

// Add folds one feasible point's solve statistics into the totals.
func (t *Totals) Add(st core.Stats) {
	t.Points++
	t.Candidates += int64(st.CandidatesGenerated)
	t.CostPruned += int64(st.CostPruned)
	t.BoundPruned += int64(st.BoundPruned)
	t.Evaluations += int64(st.Evaluations)
	t.EvalCacheHits += int64(st.EvalCacheHits)
	t.WarmStartReuse += int64(st.WarmStartReuse)
	t.FrontierReuse += int64(st.FrontierReuse)
	t.ModeMemoHits += st.ModeMemoHits
	t.ModeMemoSolves += st.ModeMemoSolves
	t.SimReplications += st.SimReplications
	t.SimBatches += st.SimBatches
	if len(st.PhaseNanos) > 0 {
		if t.PhaseNanos == nil {
			t.PhaseNanos = make(map[string]int64, len(st.PhaseNanos))
		}
		for phase, ns := range st.PhaseNanos {
			t.PhaseNanos[phase] += ns
		}
	}
}

// String renders the totals as the CLIs' closing line — only the
// scheduling-independent projection (see the type comment), so the
// line diffs clean across worker counts.
func (t Totals) String() string {
	s := fmt.Sprintf("%d points", t.Points)
	if t.Infeasible > 0 {
		s += fmt.Sprintf(" (%d infeasible)", t.Infeasible)
	}
	s += fmt.Sprintf(": %d candidates, %d cost-pruned, %d bound-pruned, %d evaluations (incl. cache replays)",
		t.Candidates, t.CostPruned, t.BoundPruned, t.Evaluations+t.EvalCacheHits)
	if t.FrontierReuse > 0 {
		// Only when the sweep actually reused frontiers, so sweeps that
		// never enter the combination phase print unchanged.
		s += fmt.Sprintf(", %d frontier reuses", t.FrontierReuse)
	}
	return s
}

// PointObs instruments per-cell sweep progress: one sweep.point trace
// event and a set of registry counters for every grid cell, feasible
// or not. The figure sweeps and the sensitivity package share it. The
// zero value (no tracer, no registry) is inert and skips even the
// clock reads, keeping untraced sweeps free.
type PointObs struct {
	tr    obs.Tracer
	reg   *obs.Registry
	total int
}

// NewPointObs builds the per-cell instrumentation for a sweep of total
// cells. When a registry is present the sweep.total gauge is set up
// front so /metrics pollers see the progress denominator immediately.
func NewPointObs(tr obs.Tracer, reg *obs.Registry, total int) PointObs {
	if reg != nil {
		reg.Gauge("sweep.total").Set(float64(total))
	}
	return PointObs{tr: tr, reg: reg, total: total}
}

// solverPointObs wires PointObs to the sweep's solver, picking up the
// tracer and registry its options carry.
func solverPointObs(s *core.Solver, total int) PointObs {
	return NewPointObs(s.Tracer(), s.Metrics(), total)
}

func (p PointObs) on() bool { return p.tr != nil || p.reg != nil }

// Begin marks the start of one cell. The zero time when observability
// is off keeps the disabled path clock-free.
func (p PointObs) Begin() time.Time {
	if !p.on() {
		return time.Time{}
	}
	return time.Now()
}

// Done records one finished cell. ev carries the cell's coordinates
// and outcome (Err "infeasible" for cells with no design); Done fills
// in the event type, the 1-based grid position and the timing, and
// bumps the sweep.* registry counters.
func (p PointObs) Done(i int, start time.Time, ev obs.Event) {
	if !p.on() {
		return
	}
	ns := time.Since(start).Nanoseconds()
	ms := obs.DurMS(ns)
	if p.reg != nil {
		p.reg.Counter("sweep.points").Inc()
		if ev.Err != "" {
			p.reg.Counter("sweep.infeasible").Inc()
		}
		p.reg.Histogram("sweep.point_ms").Observe(ms)
	}
	if p.tr != nil {
		ev.Ev = obs.EvSweepPoint
		ev.Index = i + 1
		ev.Total = p.total
		ev.DurNs = ns
		ev.MS = ms
		p.tr.Emit(ev)
	}
}
