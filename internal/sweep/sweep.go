// Package sweep regenerates the paper's evaluation artefacts: the
// optimal-design-family map over the (load, downtime) requirement plane
// (Fig. 6), the optimal scientific-application design as a function of
// the job-time requirement (Fig. 7), and the availability cost premium
// curves (Fig. 8). Each sweep drives the core solver across a
// requirement grid and organises the solutions the way the paper plots
// them.
package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"aved/internal/model"
)

// Family identifies a design family as Fig. 6 labels them: resource
// type, availability-mechanism levels (enumerated parameters only —
// numeric parameters such as checkpoint intervals vary within a
// family), extra active machines, and spare machines.
type Family struct {
	Resource   string
	Mechanisms string // canonical enum-only settings, e.g. "maintenanceA=gold"
	NExtra     int
	NSpare     int
}

// FamilyOf classifies a tier design.
func FamilyOf(td *model.TierDesign) Family {
	var enums []string
	for _, ms := range td.Mechanisms {
		if ms.Mechanism == nil {
			continue
		}
		var parts []string
		for _, p := range ms.Mechanism.Params {
			if !p.IsEnum() {
				continue
			}
			if v, ok := ms.Values[p.Name]; ok {
				parts = append(parts, v.Str)
			}
		}
		if len(parts) > 0 {
			enums = append(enums, ms.Mechanism.Name+"="+strings.Join(parts, "/"))
		}
	}
	sort.Strings(enums)
	return Family{
		Resource:   td.Resource().Name,
		Mechanisms: strings.Join(enums, ","),
		NExtra:     td.NExtra(),
		NSpare:     td.NSpare,
	}
}

// Stack renders the resource's component stack the way Fig. 6's legend
// does (machineA/linux/appserverA).
func Stack(td *model.TierDesign) string {
	rt := td.Resource()
	parts := make([]string, len(rt.Components))
	for i, rc := range rt.Components {
		parts[i] = rc.Component.Name
	}
	return strings.Join(parts, "/")
}

// String renders the family as the paper's legend tuples.
func (f Family) String() string {
	return fmt.Sprintf("(%s, %s, %d, %d)", f.Resource, f.Mechanisms, f.NExtra, f.NSpare)
}

// LogGrid builds a logarithmically spaced grid from lo to hi inclusive
// with the given number of points.
func LogGrid(lo, hi float64, points int) ([]float64, error) {
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("sweep: log grid needs 0 < lo ≤ hi, got %v and %v", lo, hi)
	}
	if points < 2 {
		return nil, fmt.Errorf("sweep: log grid needs at least 2 points, got %d", points)
	}
	ratio := hi / lo
	out := make([]float64, points)
	for i := range out {
		out[i] = lo * pow(ratio, float64(i)/float64(points-1))
	}
	return out, nil
}

// LinGrid builds a linearly spaced grid from lo to hi inclusive.
func LinGrid(lo, hi float64, points int) ([]float64, error) {
	if hi < lo {
		return nil, fmt.Errorf("sweep: linear grid needs lo ≤ hi, got %v and %v", lo, hi)
	}
	if points < 2 {
		return nil, fmt.Errorf("sweep: linear grid needs at least 2 points, got %d", points)
	}
	out := make([]float64, points)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(points-1)
	}
	return out, nil
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
