package sweep

import (
	"context"
	"testing"

	"aved/internal/core"
	"aved/internal/scenarios"
)

// TestSweepBitIdenticalOnCorpusScenarios extends the grid-scheduling
// property to the corpus engine's workload families: on generated web,
// storage and telco scenarios, the grid-aware Fig6 sweep over a small
// requirement plane around each scenario's own requirement must
// reproduce the per-cell cold solutions bit for bit at worker counts 1
// and 4 — and the corpus must actually engage the frontier cache, so
// the reuse identity is not vacuous.
func TestSweepBitIdenticalOnCorpusScenarios(t *testing.T) {
	var frontierReuse, warmReuse int64
	fams := []scenarios.Family{scenarios.FamilyWeb, scenarios.FamilyStorage, scenarios.FamilyTelco}
	for _, fam := range fams {
		for i := 0; i < 4; i++ {
			sc, err := scenarios.GenScenario(fam, i, 5)
			if err != nil {
				t.Fatalf("%v %d: %v", fam, i, err)
			}
			// A plane around the scenario's own requirement, budgets
			// deliberately unsorted so the chain order differs from the
			// landing order the sweep must reproduce.
			peak := sc.Req.PeakLoad()
			b := sc.Req.MaxAnnualDowntime.Minutes()
			loads := []float64{peak, peak + 100}
			budgets := []float64{b, b / 4, 6 * b}
			opts := core.Options{Registry: sc.Registry}
			want := coldCells(t, sc.Inf, sc.Svc, opts, loads, budgets)
			for _, workers := range []int{1, 4} {
				opts := opts
				opts.Workers = workers
				s, err := core.NewSolver(sc.Inf, sc.Svc, opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Fig6(context.Background(), s, loads, budgets)
				if err != nil {
					t.Fatalf("%s workers %d: %v", sc.Name, workers, err)
				}
				got := fig6Cells(res, loads, budgets)
				for ci := range want {
					if got[ci] != want[ci] {
						t.Errorf("%s workers %d cell %d: grid %+v, cold %+v",
							sc.Name, workers, ci, got[ci], want[ci])
					}
				}
				frontierReuse += res.Totals.FrontierReuse
				warmReuse += res.Totals.WarmStartReuse
			}
		}
	}
	t.Logf("corpus scenarios: %d frontier reuses, %d warm-seed replays", frontierReuse, warmReuse)
	if frontierReuse == 0 {
		t.Error("corpus scenarios never reused a frontier — the property test is vacuous")
	}
}
