package sweep

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
	"aved/internal/units"
)

// These tests pin the grid-aware sweep contract: frontier-cached,
// warm-seeded scheduling is a pure accelerant. Every cell's solution —
// cost, downtime, design — is bit-identical to a cold solve of the same
// requirement on a fresh solver, at any worker count and in both search
// modes; the reuse is visible only in effort counters, and the effort
// cut itself is gated below.

// gridCell is one cell's solution projection, the fields the
// bit-identity comparison pins.
type gridCell struct {
	ok      bool
	cost    units.Money
	down    float64
	family  Family
	stack   string
	nActive int
}

func enterpriseReq(load, minutes float64) model.Requirements {
	return model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        load,
		MaxAnnualDowntime: units.Duration(minutes * float64(units.Minute)),
	}
}

// coldCells solves every grid cell per-cell cold: a fresh sequential
// solver per cell, no shared caches, no seeds — the reference the
// grid-aware sweep must reproduce exactly.
func coldCells(t *testing.T, inf *model.Infrastructure, svc *model.Service, opts core.Options, loads, budgets []float64) []gridCell {
	t.Helper()
	out := make([]gridCell, 0, len(loads)*len(budgets))
	for _, load := range loads {
		for _, budget := range budgets {
			opts := opts
			opts.Workers = 1
			s, err := core.NewSolver(inf, svc, opts)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := s.SolveContext(context.Background(), enterpriseReq(load, budget))
			if err != nil {
				var infErr *core.InfeasibleError
				if !errors.As(err, &infErr) {
					t.Fatalf("cold solve load %v budget %v: %v", load, budget, err)
				}
				out = append(out, gridCell{})
				continue
			}
			td := &sol.Design.Tiers[0]
			out = append(out, gridCell{
				ok: true, cost: sol.Cost, down: sol.DowntimeMinutes,
				family: FamilyOf(td), stack: Stack(td), nActive: td.NActive,
			})
		}
	}
	return out
}

// fig6Cells maps a Fig6 result back onto the flattened grid.
func fig6Cells(res *Fig6Result, loads, budgets []float64) []gridCell {
	type key struct{ load, budget float64 }
	byReq := map[key]Fig6Point{}
	for _, p := range res.Points {
		byReq[key{p.Load, p.BudgetMinutes}] = p
	}
	out := make([]gridCell, 0, len(loads)*len(budgets))
	for _, load := range loads {
		for _, budget := range budgets {
			p, ok := byReq[key{load, budget}]
			if !ok {
				out = append(out, gridCell{})
				continue
			}
			out = append(out, gridCell{
				ok: true, cost: p.Cost, down: p.DowntimeMinutes,
				family: p.Family, stack: p.Stack, nActive: p.NActive,
			})
		}
	}
	return out
}

// TestSweepBitIdenticalOnCorpus is the grid-scheduling property test:
// over a seeded corpus of generated scenarios, the grid-aware Fig6
// sweep (shared solver, frontier cache, budget-chain seeding) produces
// exactly the per-cell cold solutions, in both search modes and at
// worker counts 1 and 4 — and the corpus actually engages the frontier
// cache, so the property is not vacuous.
func TestSweepBitIdenticalOnCorpus(t *testing.T) {
	modes := []core.SearchMode{core.SearchBnB, core.SearchExhaustive}
	var frontierReuse, warmReuse int64
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc, err := scenarios.RandSolveScenario(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// A small plane around the scenario's own requirement. The budget
		// grid is deliberately unsorted so the sweep's tightest-first chain
		// order differs from the landing order it must reproduce.
		b := sc.Req.MaxAnnualDowntime.Minutes()
		loads := []float64{sc.Req.Throughput, sc.Req.Throughput + 200}
		budgets := []float64{b, b / 4, 6 * b}
		for _, mode := range modes {
			opts := core.Options{Registry: scenarios.Registry(), Search: mode}
			want := coldCells(t, sc.Inf, sc.Svc, opts, loads, budgets)
			for _, workers := range []int{1, 4} {
				opts := opts
				opts.Workers = workers
				s, err := core.NewSolver(sc.Inf, sc.Svc, opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Fig6(context.Background(), s, loads, budgets)
				if err != nil {
					t.Fatalf("seed %d mode %v workers %d: %v", seed, mode, workers, err)
				}
				got := fig6Cells(res, loads, budgets)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("seed %d mode %v workers %d cell %d: grid %+v, cold %+v",
							seed, mode, workers, i, got[i], want[i])
					}
				}
				frontierReuse += res.Totals.FrontierReuse
				warmReuse += res.Totals.WarmStartReuse
			}
		}
	}
	t.Logf("corpus: %d frontier reuses, %d warm-seed replays", frontierReuse, warmReuse)
	if frontierReuse == 0 {
		t.Error("corpus never reused a frontier — the property test is vacuous")
	}
}

// TestSweepEvalCeilings is the sweep-level regression gate mirroring
// TestBnBEvalCeilings: on the e-commerce Fig 6 grid at Workers=1, the
// grid-aware sweep's engine evaluations must stay under a pinned
// ceiling, cut per-cell cold solving by at least 3x, and still return
// the cold solutions bit-identically.
func TestSweepEvalCeilings(t *testing.T) {
	// The avedbench -mode sweep fig6 grid (measured: 74 grid evaluations
	// vs 450 per-cell cold, a 6.1x cut).
	loads := []float64{400, 1400, 3200, 5000}
	budgets := []float64{1, 10, 100, 1000, 10000}
	const ceiling = 100

	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Ecommerce(inf)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Registry: scenarios.Registry(), Workers: 1}
	s, err := core.NewSolver(inf, svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig6(context.Background(), s, loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Totals.Evaluations) > ceiling {
		t.Errorf("grid sweep ran %d engine evaluations, over the pinned ceiling %d",
			res.Totals.Evaluations, ceiling)
	}

	want := coldCells(t, inf, svc, opts, loads, budgets)
	got := fig6Cells(res, loads, budgets)
	var cold int64
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: grid %+v, cold %+v", i, got[i], want[i])
		}
	}
	// Sum the cold effort over the same feasible cells the grid totals
	// cover (infeasible solves report no stats on either side).
	for li, load := range loads {
		for bj, budget := range budgets {
			if !want[li*len(budgets)+bj].ok {
				continue
			}
			opts := opts
			s, err := core.NewSolver(inf, svc, opts)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := s.SolveContext(context.Background(), enterpriseReq(load, budget))
			if err != nil {
				t.Fatal(err)
			}
			cold += int64(sol.Stats.Evaluations)
		}
	}
	t.Logf("fig6 ecommerce grid: %d grid evaluations vs %d per-cell cold (%.1fx), %d frontier reuses",
		res.Totals.Evaluations, cold,
		float64(cold)/float64(res.Totals.Evaluations), res.Totals.FrontierReuse)
	if res.Totals.Evaluations*3 > cold {
		t.Errorf("grid sweep's %d evaluations is not a 3x cut of per-cell cold's %d",
			res.Totals.Evaluations, cold)
	}
}
