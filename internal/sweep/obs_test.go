package sweep

import (
	"context"
	"strings"
	"testing"

	"aved/internal/core"
	"aved/internal/obs"
	"aved/internal/scenarios"
)

func obsAppSolver(t *testing.T, tr obs.Tracer, reg *obs.Registry) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{
		Registry: scenarios.Registry(),
		Tracer:   tr,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sweepEvents filters a trace down to the sweep.point events.
func sweepEvents(evs []obs.Event) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Ev == obs.EvSweepPoint {
			out = append(out, e)
		}
	}
	return out
}

// TestFig6SweepObs: a traced Fig. 6 sweep emits exactly one sweep.point
// per grid cell — feasible or not — covering every 1-based index once,
// and its totals reconcile with both the per-point stats and the
// registry's sweep counters.
func TestFig6SweepObs(t *testing.T) {
	var tr obs.CollectTracer
	reg := obs.NewRegistry()
	solver := obsAppSolver(t, &tr, reg)
	loads := []float64{400, 1400}
	budgets := []float64{0.2, 100, 1000} // 0.2 min is infeasible at these loads
	res, err := Fig6(context.Background(), solver, loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	cellsTotal := len(loads) * len(budgets)
	points := sweepEvents(tr.Events())
	if len(points) != cellsTotal {
		t.Fatalf("sweep.point events = %d, want %d", len(points), cellsTotal)
	}
	seen := map[int]bool{}
	var infeasible int
	for _, e := range points {
		if e.Index < 1 || e.Index > cellsTotal || seen[e.Index] {
			t.Errorf("bad or duplicate cell index %d", e.Index)
		}
		seen[e.Index] = true
		if e.Total != cellsTotal {
			t.Errorf("event total = %d, want %d", e.Total, cellsTotal)
		}
		if e.Load == 0 || e.Budget == 0 {
			t.Errorf("event missing cell coordinates: %+v", e)
		}
		if e.Err != "" {
			infeasible++
		} else if e.Cost <= 0 {
			t.Errorf("feasible cell with no cost: %+v", e)
		}
	}
	if infeasible != res.Totals.Infeasible {
		t.Errorf("infeasible events = %d, totals say %d", infeasible, res.Totals.Infeasible)
	}
	if res.Totals.Points != len(res.Points) || res.Totals.Points+res.Totals.Infeasible != cellsTotal {
		t.Errorf("totals %+v inconsistent with %d points over %d cells",
			res.Totals, len(res.Points), cellsTotal)
	}
	var wantCand int64
	for _, p := range res.Points {
		wantCand += int64(p.Stats.CandidatesGenerated)
	}
	if res.Totals.Candidates != wantCand || wantCand == 0 {
		t.Errorf("totals candidates = %d, per-point sum = %d", res.Totals.Candidates, wantCand)
	}
	snap := reg.Snapshot()
	if snap.Counters["sweep.points"] != int64(cellsTotal) {
		t.Errorf("sweep.points counter = %d, want %d", snap.Counters["sweep.points"], cellsTotal)
	}
	if snap.Counters["sweep.infeasible"] != int64(res.Totals.Infeasible) {
		t.Errorf("sweep.infeasible counter = %d, want %d",
			snap.Counters["sweep.infeasible"], res.Totals.Infeasible)
	}
	if snap.Gauges["sweep.total"] != float64(cellsTotal) {
		t.Errorf("sweep.total gauge = %v, want %d", snap.Gauges["sweep.total"], cellsTotal)
	}
	if h, ok := snap.Histograms["sweep.point_ms"]; !ok || h.Count != int64(cellsTotal) {
		t.Errorf("sweep.point_ms histogram = %+v, want %d observations", h, cellsTotal)
	}
}

// TestFig7Fig8PointStats: the job-axis and premium sweeps carry each
// point's search effort, baselines included.
func TestFig7Fig8PointStats(t *testing.T) {
	points, err := Fig7(context.Background(), sciSolver(t), []float64{20, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no fig7 points")
	}
	for _, p := range points {
		if p.Stats.CandidatesGenerated == 0 {
			t.Errorf("fig7 point %vh has empty stats", p.RequirementHours)
		}
	}
	curves, err := Fig8(context.Background(), appSolver(t), []float64{800}, []float64{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		if c.BaselineStats.CandidatesGenerated == 0 {
			t.Errorf("fig8 load %v baseline has empty stats", c.Load)
		}
		for _, p := range c.Points {
			if p.Stats.CandidatesGenerated == 0 {
				t.Errorf("fig8 load %v budget %v has empty stats", c.Load, p.BudgetMinutes)
			}
		}
	}
}

// TestUntracedSweepEmitsNothing: a solver without observability leaves
// the sweep's instrumentation inert.
func TestUntracedSweepEmitsNothing(t *testing.T) {
	res, err := Fig6(context.Background(), appSolver(t), []float64{400}, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Points != 1 {
		t.Errorf("totals = %+v, want 1 point", res.Totals)
	}
}

// TestTotalsString pins the closing-line format the CLIs print.
// TestTotalsString pins the closing line to the scheduling-independent
// projection: no split between executed evaluations and cache replays,
// no engine deltas — those vary with worker scheduling and would break
// the byte-identical-output invariant of the sweep CLIs.
func TestTotalsString(t *testing.T) {
	tot := Totals{Points: 5, Candidates: 100, CostPruned: 40, Evaluations: 50, EvalCacheHits: 10}
	got := tot.String()
	want := "5 points: 100 candidates, 40 cost-pruned, 0 bound-pruned, 60 evaluations (incl. cache replays)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	tot.Infeasible = 2
	tot.ModeMemoHits, tot.ModeMemoSolves = 7, 3
	tot.SimReplications = 4096
	got = tot.String()
	if !strings.Contains(got, "(2 infeasible)") {
		t.Errorf("String() = %q, missing infeasible count", got)
	}
	for _, frag := range []string{"memo", "sim"} {
		if strings.Contains(got, frag) {
			t.Errorf("String() = %q, leaks scheduling-dependent %s counters", got, frag)
		}
	}
}
