package sweep

import (
	"errors"
	"fmt"

	"aved/internal/avail"
	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/units"
)

// Fig8Point is one sample of an availability cost-premium curve: the
// extra annual cost, over the availability-indifferent baseline at the
// same load, of meeting a downtime requirement.
type Fig8Point struct {
	BudgetMinutes float64
	ExtraCost     units.Money
	TotalCost     units.Money
}

// Fig8Curve is the premium curve for one load level.
type Fig8Curve struct {
	Load         float64
	BaselineCost units.Money
	Points       []Fig8Point
}

// Fig8 reproduces the cost/availability/performance tradeoff curves:
// for each load, the baseline is the minimum-cost design with no
// availability requirement; each point reports how much more per year
// a given downtime bound costs (§5.3). Infeasible budgets are skipped.
func Fig8(solver *core.Solver, loads, budgetsMinutes []float64) ([]Fig8Curve, error) {
	if len(loads) == 0 || len(budgetsMinutes) == 0 {
		return nil, fmt.Errorf("sweep: fig8 needs non-empty load and budget grids")
	}
	out := make([]Fig8Curve, 0, len(loads))
	for _, load := range loads {
		// No availability requirement: any downtime within the year is
		// acceptable, so the budget is the whole year.
		base, err := solver.Solve(model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        load,
			MaxAnnualDowntime: units.Duration(avail.MinutesPerYear * float64(units.Minute)),
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: fig8 baseline at load %v: %w", load, err)
		}
		curve := Fig8Curve{Load: load, BaselineCost: base.Cost}
		for _, budget := range budgetsMinutes {
			sol, err := solver.Solve(model.Requirements{
				Kind:              model.ReqEnterprise,
				Throughput:        load,
				MaxAnnualDowntime: units.Duration(budget * float64(units.Minute)),
			})
			if err != nil {
				var infErr *core.InfeasibleError
				if errors.As(err, &infErr) {
					continue
				}
				return nil, fmt.Errorf("sweep: fig8 at load %v budget %v: %w", load, budget, err)
			}
			curve.Points = append(curve.Points, Fig8Point{
				BudgetMinutes: budget,
				ExtraCost:     sol.Cost - base.Cost,
				TotalCost:     sol.Cost,
			})
		}
		out = append(out, curve)
	}
	return out, nil
}
