package sweep

import (
	"context"
	"errors"
	"fmt"

	"aved/internal/avail"
	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// Fig8Point is one sample of an availability cost-premium curve: the
// extra annual cost, over the availability-indifferent baseline at the
// same load, of meeting a downtime requirement.
type Fig8Point struct {
	BudgetMinutes float64
	ExtraCost     units.Money
	TotalCost     units.Money
	// Stats records the point's search effort.
	Stats core.Stats
}

// Fig8Curve is the premium curve for one load level.
type Fig8Curve struct {
	Load         float64
	BaselineCost units.Money
	// BaselineStats records the baseline solve's search effort.
	BaselineStats core.Stats
	Points        []Fig8Point
}

// Fig8 reproduces the cost/availability/performance tradeoff curves:
// for each load, the baseline is the minimum-cost design with no
// availability requirement; each point reports how much more per year
// a given downtime bound costs (§5.3). Infeasible budgets are skipped.
//
// When budgetsMinutes already contains the whole-year budget, the
// separate baseline solve is deduped against that cell: its cost serves
// as BaselineCost and BaselineStats stays zero (the effort is already
// on the cell's own Stats), so the requirement is never solved twice
// per load. A load whose whole-year cell is infeasible aborts the sweep
// exactly like a failed baseline always has.
func Fig8(ctx context.Context, solver *core.Solver, loads, budgetsMinutes []float64) ([]Fig8Curve, error) {
	if len(loads) == 0 || len(budgetsMinutes) == 0 {
		return nil, fmt.Errorf("sweep: fig8 needs non-empty load and budget grids")
	}
	// Like Fig6, the grid is scheduled grid-aware: each load is one
	// sequential chain — budgets tightest first, then the baseline, so the
	// loosest budget's solution seeds the baseline's upper bound — and the
	// chains fan across the worker pool by load, every cell seeding the
	// next and sharing the chain's frontier set. Slot 0 of each load's
	// stride is the baseline; cells land by flattened index so assembly
	// sees the original grid order regardless of parallelism. The
	// lowest-load-index error wins, and within a load the tightest failing
	// budget's error wins.
	nb := len(budgetsMinutes)
	stride := nb + 1
	ord := budgetOrder(budgetsMinutes)
	wholeIdx := -1
	for j, b := range budgetsMinutes {
		if b == avail.MinutesPerYear {
			wholeIdx = j
			break
		}
	}
	type cell struct {
		ok    bool
		cost  units.Money
		stats core.Stats
	}
	cells := make([]cell, len(loads)*stride)
	total := len(cells)
	if wholeIdx >= 0 {
		total = len(loads) * nb // baselines deduped: no separate solves
	}
	po := solverPointObs(solver, total)
	pt := par.NewTiming(solver.Metrics())
	err := par.ForEachTimedCtx(ctx, solver.Workers(), len(loads), pt, func(li int) error {
		load := loads[li]
		var seed *core.ComboSeed
		fs := core.NewFrontierSet()
		for _, bj := range ord {
			budget := budgetsMinutes[bj]
			i := li*stride + 1 + bj
			start := po.Begin()
			sol, err := solver.SolveCell(ctx, model.Requirements{
				Kind:              model.ReqEnterprise,
				Throughput:        load,
				MaxAnnualDowntime: units.Duration(budget * float64(units.Minute)),
			}, core.CellOptions{Seed: seed, Frontiers: fs})
			if err != nil {
				var infErr *core.InfeasibleError
				if errors.As(err, &infErr) {
					if bj == wholeIdx {
						// This cell doubles as the load's baseline: no design
						// even without an availability requirement.
						return fmt.Errorf("sweep: fig8 baseline at load %v: %w", load, err)
					}
					po.Done(i, start, obs.Event{Load: load, Budget: budget, Err: "infeasible"})
					continue
				}
				return fmt.Errorf("sweep: fig8 at load %v budget %v: %w", load, budget, err)
			}
			seed = sol.Seed()
			po.Done(i, start, obs.Event{
				Load: load, Budget: budget, Cost: float64(sol.Cost),
				WarmReuse:     int64(sol.Stats.WarmStartReuse),
				FrontierReuse: int64(sol.Stats.FrontierReuse),
			})
			cells[i] = cell{ok: true, cost: sol.Cost, stats: sol.Stats}
		}
		if wholeIdx >= 0 {
			// Baseline deduped against the whole-year budget cell; assembly
			// below copies its cost.
			return nil
		}
		// No availability requirement: any downtime within the year is
		// acceptable, so the budget is the whole year — and any feasible
		// budget cell's design seeds it.
		i := li * stride
		start := po.Begin()
		base, err := solver.SolveCell(ctx, model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        load,
			MaxAnnualDowntime: units.Duration(avail.MinutesPerYear * float64(units.Minute)),
		}, core.CellOptions{Seed: seed, Frontiers: fs})
		if err != nil {
			return fmt.Errorf("sweep: fig8 baseline at load %v: %w", load, err)
		}
		po.Done(i, start, obs.Event{
			Load: load, Budget: avail.MinutesPerYear, Cost: float64(base.Cost),
			WarmReuse:     int64(base.Stats.WarmStartReuse),
			FrontierReuse: int64(base.Stats.FrontierReuse),
		})
		cells[i] = cell{ok: true, cost: base.Cost, stats: base.Stats}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Curve, 0, len(loads))
	for li, load := range loads {
		base := cells[li*stride]
		if wholeIdx >= 0 {
			base = cells[li*stride+1+wholeIdx]
			base.stats = core.Stats{} // effort stays on the cell's own point
		}
		curve := Fig8Curve{Load: load, BaselineCost: base.cost, BaselineStats: base.stats}
		for j := 0; j < nb; j++ {
			c := cells[li*stride+1+j]
			if !c.ok {
				continue
			}
			curve.Points = append(curve.Points, Fig8Point{
				BudgetMinutes: budgetsMinutes[j],
				ExtraCost:     c.cost - base.cost,
				TotalCost:     c.cost,
				Stats:         c.stats,
			})
		}
		out = append(out, curve)
	}
	return out, nil
}
