package sweep

import (
	"context"
	"errors"
	"fmt"

	"aved/internal/avail"
	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// Fig8Point is one sample of an availability cost-premium curve: the
// extra annual cost, over the availability-indifferent baseline at the
// same load, of meeting a downtime requirement.
type Fig8Point struct {
	BudgetMinutes float64
	ExtraCost     units.Money
	TotalCost     units.Money
	// Stats records the point's search effort.
	Stats core.Stats
}

// Fig8Curve is the premium curve for one load level.
type Fig8Curve struct {
	Load         float64
	BaselineCost units.Money
	// BaselineStats records the baseline solve's search effort.
	BaselineStats core.Stats
	Points        []Fig8Point
}

// Fig8 reproduces the cost/availability/performance tradeoff curves:
// for each load, the baseline is the minimum-cost design with no
// availability requirement; each point reports how much more per year
// a given downtime bound costs (§5.3). Infeasible budgets are skipped.
func Fig8(ctx context.Context, solver *core.Solver, loads, budgetsMinutes []float64) ([]Fig8Curve, error) {
	if len(loads) == 0 || len(budgetsMinutes) == 0 {
		return nil, fmt.Errorf("sweep: fig8 needs non-empty load and budget grids")
	}
	// Flatten loads × (baseline + budgets) into one work list: every
	// solve — baselines included — is independent, so the whole grid fans
	// across the worker pool. Slot 0 of each load's stride is the
	// baseline; its flattened index precedes the load's budget cells, so
	// the lowest-index error matches the sequential first error (a
	// baseline failure, infeasible included, aborts the sweep).
	nb := len(budgetsMinutes)
	stride := nb + 1
	type cell struct {
		ok    bool
		cost  units.Money
		stats core.Stats
	}
	cells := make([]cell, len(loads)*stride)
	po := solverPointObs(solver, len(cells))
	err := par.ForEachCtx(ctx, solver.Workers(), len(cells), func(i int) error {
		load := loads[i/stride]
		j := i % stride
		start := po.Begin()
		if j == 0 {
			// No availability requirement: any downtime within the year
			// is acceptable, so the budget is the whole year.
			base, err := solver.SolveContext(ctx, model.Requirements{
				Kind:              model.ReqEnterprise,
				Throughput:        load,
				MaxAnnualDowntime: units.Duration(avail.MinutesPerYear * float64(units.Minute)),
			})
			if err != nil {
				return fmt.Errorf("sweep: fig8 baseline at load %v: %w", load, err)
			}
			po.Done(i, start, obs.Event{
				Load: load, Budget: avail.MinutesPerYear, Cost: float64(base.Cost),
			})
			cells[i] = cell{ok: true, cost: base.Cost, stats: base.Stats}
			return nil
		}
		budget := budgetsMinutes[j-1]
		sol, err := solver.SolveContext(ctx, model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        load,
			MaxAnnualDowntime: units.Duration(budget * float64(units.Minute)),
		})
		if err != nil {
			var infErr *core.InfeasibleError
			if errors.As(err, &infErr) {
				po.Done(i, start, obs.Event{Load: load, Budget: budget, Err: "infeasible"})
				return nil
			}
			return fmt.Errorf("sweep: fig8 at load %v budget %v: %w", load, budget, err)
		}
		po.Done(i, start, obs.Event{Load: load, Budget: budget, Cost: float64(sol.Cost)})
		cells[i] = cell{ok: true, cost: sol.Cost, stats: sol.Stats}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Curve, 0, len(loads))
	for li, load := range loads {
		base := cells[li*stride]
		curve := Fig8Curve{Load: load, BaselineCost: base.cost, BaselineStats: base.stats}
		for j := 0; j < nb; j++ {
			c := cells[li*stride+1+j]
			if !c.ok {
				continue
			}
			curve.Points = append(curve.Points, Fig8Point{
				BudgetMinutes: budgetsMinutes[j],
				ExtraCost:     c.cost - base.cost,
				TotalCost:     c.cost,
				Stats:         c.stats,
			})
		}
		out = append(out, curve)
	}
	return out, nil
}
