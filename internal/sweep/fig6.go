package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// Fig6Point is one cell of the Fig. 6 requirement plane: the optimal
// design at a (load, max-downtime) requirement.
type Fig6Point struct {
	Load            float64
	BudgetMinutes   float64
	Family          Family
	Stack           string // component stack, as in the figure's legend
	DowntimeMinutes float64
	Cost            units.Money
	NActive         int
	// Stats records the cell's search effort.
	Stats core.Stats
}

// Fig6Curve is one design family's trace: the family's estimated
// downtime at each load where it is the optimal choice for some
// requirement.
type Fig6Curve struct {
	Family Family
	Stack  string
	// Loads and Downtimes are parallel, ascending in load.
	Loads     []float64
	Downtimes []float64
}

// Fig6Result collects the whole sweep.
type Fig6Result struct {
	Points []Fig6Point
	Curves []Fig6Curve
	// Totals aggregates search effort over the whole plane, counting
	// the infeasible corners too.
	Totals Totals
}

// Fig6 sweeps the requirement plane: for every load and every downtime
// budget it solves for the optimal design and classifies it into a
// family. The per-family curves reproduce the structure of Fig. 6:
// each curve traces the downtime estimate of a family across the loads
// where it is optimal for some requirement level.
func Fig6(ctx context.Context, solver *core.Solver, loads, budgetsMinutes []float64) (*Fig6Result, error) {
	if len(loads) == 0 || len(budgetsMinutes) == 0 {
		return nil, fmt.Errorf("sweep: fig6 needs non-empty load and budget grids")
	}
	// The grid is scheduled grid-aware: each load is one sequential chain
	// over its budgets, tightest first, and the chains fan across the
	// solver's worker pool by load. Within a chain each cell's solution
	// seeds the next cell's combination upper bound (a tighter-budget
	// solution is always feasible for a looser budget), and the cells
	// share one frontier set — under the tightest-first order the first
	// combination-phase cell builds each tier frontier at the chain's
	// high-water cost bound, so later cells replay prefixes instead of
	// rebuilding. Costs, labels and solutions stay bit-identical to
	// per-cell cold solves at any worker count; the reuse shows up only
	// in the Stats counters (FrontierReuse, WarmStartReuse). Cells land
	// by flattened load-major index, so assembly below sees them in the
	// original grid order regardless of parallelism; the lowest-load-index
	// error wins, and within a load the tightest failing budget's error
	// wins.
	nb := len(budgetsMinutes)
	ord := budgetOrder(budgetsMinutes)
	type cell struct {
		ok    bool
		point Fig6Point
	}
	cells := make([]cell, len(loads)*nb)
	po := solverPointObs(solver, len(cells))
	pt := par.NewTiming(solver.Metrics())
	err := par.ForEachTimedCtx(ctx, solver.Workers(), len(loads), pt, func(li int) error {
		load := loads[li]
		var seed *core.ComboSeed
		fs := core.NewFrontierSet()
		for _, bj := range ord {
			budget := budgetsMinutes[bj]
			i := li*nb + bj
			start := po.Begin()
			sol, err := solver.SolveCell(ctx, model.Requirements{
				Kind:              model.ReqEnterprise,
				Throughput:        load,
				MaxAnnualDowntime: units.Duration(budget * float64(units.Minute)),
			}, core.CellOptions{Seed: seed, Frontiers: fs})
			if err != nil {
				var infErr *core.InfeasibleError
				if errors.As(err, &infErr) {
					// This corner of the plane has no design; the previous
					// seed stays valid for the next, looser budget.
					po.Done(i, start, obs.Event{Load: load, Budget: budget, Err: "infeasible"})
					continue
				}
				return fmt.Errorf("sweep: fig6 at load %v budget %v: %w", load, budget, err)
			}
			seed = sol.Seed()
			po.Done(i, start, obs.Event{
				Load: load, Budget: budget,
				Cost: float64(sol.Cost), Down: sol.DowntimeMinutes,
				WarmReuse:     int64(sol.Stats.WarmStartReuse),
				FrontierReuse: int64(sol.Stats.FrontierReuse),
			})
			td := &sol.Design.Tiers[0]
			cells[i] = cell{ok: true, point: Fig6Point{
				Load:            load,
				BudgetMinutes:   budget,
				Family:          FamilyOf(td),
				Stack:           Stack(td),
				DowntimeMinutes: sol.DowntimeMinutes,
				Cost:            sol.Cost,
				NActive:         td.NActive,
				Stats:           sol.Stats,
			}}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	type curveKey struct {
		fam  Family
		load float64
	}
	seen := map[curveKey]float64{} // family+load → downtime estimate
	for i := range cells {
		if !cells[i].ok {
			res.Totals.Infeasible++
			continue
		}
		p := cells[i].point
		res.Totals.Add(p.Stats)
		res.Points = append(res.Points, p)
		seen[curveKey{p.Family, p.Load}] = p.DowntimeMinutes
	}
	// Build the family curves in first-seen point order so the result is
	// deterministic (map iteration order is not).
	byFamily := map[Family]map[float64]float64{}
	stacks := map[Family]string{}
	var famOrder []Family
	for _, p := range res.Points {
		m, ok := byFamily[p.Family]
		if !ok {
			m = map[float64]float64{}
			byFamily[p.Family] = m
			stacks[p.Family] = p.Stack
			famOrder = append(famOrder, p.Family)
		}
		m[p.Load] = seen[curveKey{p.Family, p.Load}]
	}
	for _, fam := range famOrder {
		m := byFamily[fam]
		curve := Fig6Curve{Family: fam, Stack: stacks[fam]}
		loadsSorted := make([]float64, 0, len(m))
		for l := range m {
			loadsSorted = append(loadsSorted, l)
		}
		sort.Float64s(loadsSorted)
		for _, l := range loadsSorted {
			curve.Loads = append(curve.Loads, l)
			curve.Downtimes = append(curve.Downtimes, m[l])
		}
		res.Curves = append(res.Curves, curve)
	}
	sort.SliceStable(res.Curves, func(i, j int) bool {
		return curveOrder(res.Curves[i]) > curveOrder(res.Curves[j])
	})
	return res, nil
}

// budgetOrder returns the budget indices sorted ascending by value —
// tightest requirement first, the chain order under which each cell's
// solution is an admissible combination seed for every later cell.
func budgetOrder(budgets []float64) []int {
	ord := make([]int, len(budgets))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return budgets[ord[a]] < budgets[ord[b]] })
	return ord
}

// curveOrder sorts curves from highest downtime to lowest, matching
// the figure's top-to-bottom family numbering.
func curveOrder(c Fig6Curve) float64 {
	if len(c.Downtimes) == 0 {
		return 0
	}
	max := c.Downtimes[0]
	for _, d := range c.Downtimes {
		if d > max {
			max = d
		}
	}
	return max
}
