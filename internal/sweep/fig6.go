package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/obs"
	"aved/internal/par"
	"aved/internal/units"
)

// Fig6Point is one cell of the Fig. 6 requirement plane: the optimal
// design at a (load, max-downtime) requirement.
type Fig6Point struct {
	Load            float64
	BudgetMinutes   float64
	Family          Family
	Stack           string // component stack, as in the figure's legend
	DowntimeMinutes float64
	Cost            units.Money
	NActive         int
	// Stats records the cell's search effort.
	Stats core.Stats
}

// Fig6Curve is one design family's trace: the family's estimated
// downtime at each load where it is the optimal choice for some
// requirement.
type Fig6Curve struct {
	Family Family
	Stack  string
	// Loads and Downtimes are parallel, ascending in load.
	Loads     []float64
	Downtimes []float64
}

// Fig6Result collects the whole sweep.
type Fig6Result struct {
	Points []Fig6Point
	Curves []Fig6Curve
	// Totals aggregates search effort over the whole plane, counting
	// the infeasible corners too.
	Totals Totals
}

// Fig6 sweeps the requirement plane: for every load and every downtime
// budget it solves for the optimal design and classifies it into a
// family. The per-family curves reproduce the structure of Fig. 6:
// each curve traces the downtime estimate of a family across the loads
// where it is optimal for some requirement level.
func Fig6(ctx context.Context, solver *core.Solver, loads, budgetsMinutes []float64) (*Fig6Result, error) {
	if len(loads) == 0 || len(budgetsMinutes) == 0 {
		return nil, fmt.Errorf("sweep: fig6 needs non-empty load and budget grids")
	}
	// Flatten the requirement grid: each (load, budget) cell is an
	// independent Solve, fanned across the solver's worker pool. Cells
	// land by index, so assembly below sees them in the sequential
	// load-major order regardless of parallelism; the lowest-index error
	// wins, matching the sequential first error.
	nb := len(budgetsMinutes)
	type cell struct {
		ok    bool
		point Fig6Point
	}
	cells := make([]cell, len(loads)*nb)
	po := solverPointObs(solver, len(cells))
	err := par.ForEachCtx(ctx, solver.Workers(), len(cells), func(i int) error {
		load, budget := loads[i/nb], budgetsMinutes[i%nb]
		start := po.Begin()
		sol, err := solver.SolveContext(ctx, model.Requirements{
			Kind:              model.ReqEnterprise,
			Throughput:        load,
			MaxAnnualDowntime: units.Duration(budget * float64(units.Minute)),
		})
		if err != nil {
			var infErr *core.InfeasibleError
			if errors.As(err, &infErr) {
				// This corner of the plane has no design.
				po.Done(i, start, obs.Event{Load: load, Budget: budget, Err: "infeasible"})
				return nil
			}
			return fmt.Errorf("sweep: fig6 at load %v budget %v: %w", load, budget, err)
		}
		po.Done(i, start, obs.Event{
			Load: load, Budget: budget,
			Cost: float64(sol.Cost), Down: sol.DowntimeMinutes,
		})
		td := &sol.Design.Tiers[0]
		cells[i] = cell{ok: true, point: Fig6Point{
			Load:            load,
			BudgetMinutes:   budget,
			Family:          FamilyOf(td),
			Stack:           Stack(td),
			DowntimeMinutes: sol.DowntimeMinutes,
			Cost:            sol.Cost,
			NActive:         td.NActive,
			Stats:           sol.Stats,
		}}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	type curveKey struct {
		fam  Family
		load float64
	}
	seen := map[curveKey]float64{} // family+load → downtime estimate
	for i := range cells {
		if !cells[i].ok {
			res.Totals.Infeasible++
			continue
		}
		p := cells[i].point
		res.Totals.Add(p.Stats)
		res.Points = append(res.Points, p)
		seen[curveKey{p.Family, p.Load}] = p.DowntimeMinutes
	}
	// Build the family curves in first-seen point order so the result is
	// deterministic (map iteration order is not).
	byFamily := map[Family]map[float64]float64{}
	stacks := map[Family]string{}
	var famOrder []Family
	for _, p := range res.Points {
		m, ok := byFamily[p.Family]
		if !ok {
			m = map[float64]float64{}
			byFamily[p.Family] = m
			stacks[p.Family] = p.Stack
			famOrder = append(famOrder, p.Family)
		}
		m[p.Load] = seen[curveKey{p.Family, p.Load}]
	}
	for _, fam := range famOrder {
		m := byFamily[fam]
		curve := Fig6Curve{Family: fam, Stack: stacks[fam]}
		loadsSorted := make([]float64, 0, len(m))
		for l := range m {
			loadsSorted = append(loadsSorted, l)
		}
		sort.Float64s(loadsSorted)
		for _, l := range loadsSorted {
			curve.Loads = append(curve.Loads, l)
			curve.Downtimes = append(curve.Downtimes, m[l])
		}
		res.Curves = append(res.Curves, curve)
	}
	sort.SliceStable(res.Curves, func(i, j int) bool {
		return curveOrder(res.Curves[i]) > curveOrder(res.Curves[j])
	})
	return res, nil
}

// curveOrder sorts curves from highest downtime to lowest, matching
// the figure's top-to-bottom family numbering.
func curveOrder(c Fig6Curve) float64 {
	if len(c.Downtimes) == 0 {
		return 0
	}
	max := c.Downtimes[0]
	for _, d := range c.Downtimes {
		if d > max {
			max = d
		}
	}
	return max
}
