package sweep

import (
	"context"
	"strings"
	"testing"

	"aved/internal/core"
	"aved/internal/model"
	"aved/internal/scenarios"
)

func appSolver(t *testing.T) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.ApplicationTier(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{Registry: scenarios.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sciSolver(t *testing.T) *core.Solver {
	t.Helper()
	inf, err := scenarios.Infrastructure()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := scenarios.Scientific(inf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(inf, svc, core.Options{
		Registry: scenarios.Registry(),
		FixedMechanisms: map[string]map[string]model.ParamValue{
			"maintenanceA": {"level": model.EnumValue("bronze")},
			"maintenanceB": {"level": model.EnumValue("bronze")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGrids(t *testing.T) {
	g, err := LogGrid(0.1, 10000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 0.1 || g[len(g)-1] < 9999 || g[len(g)-1] > 10001 {
		t.Errorf("log grid endpoints = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Error("log grid not increasing")
		}
	}
	l, err := LinGrid(400, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l[0] != 400 || l[4] != 5000 {
		t.Errorf("lin grid endpoints = %v", l)
	}
	if _, err := LogGrid(0, 1, 3); err == nil {
		t.Error("LogGrid with zero lower bound should fail")
	}
	if _, err := LogGrid(2, 1, 3); err == nil {
		t.Error("LogGrid with inverted bounds should fail")
	}
	if _, err := LinGrid(1, 0, 3); err == nil {
		t.Error("LinGrid with inverted bounds should fail")
	}
	if _, err := LinGrid(0, 1, 1); err == nil {
		t.Error("grids need at least 2 points")
	}
}

func TestFig6SmallSweep(t *testing.T) {
	solver := appSolver(t)
	loads := []float64{400, 1400, 3200}
	budgets := []float64{10, 100, 1000, 8000}
	res, err := Fig6(context.Background(), solver, loads, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Multiple distinct families appear across the plane (the paper
	// finds 17 over the full grid).
	fams := map[Family]bool{}
	for _, p := range res.Points {
		fams[p.Family] = true
		if p.DowntimeMinutes > p.BudgetMinutes {
			t.Errorf("point (%v, %v): downtime %v over budget", p.Load, p.BudgetMinutes, p.DowntimeMinutes)
		}
		if !strings.HasPrefix(p.Stack, "machineA") {
			t.Errorf("machineB stack selected: %s", p.Stack)
		}
	}
	if len(fams) < 3 {
		t.Errorf("distinct families = %d, want several", len(fams))
	}
	if len(res.Curves) != len(fams) {
		t.Errorf("curves = %d, families = %d", len(res.Curves), len(fams))
	}
	// Curves are ordered top (worst downtime) to bottom.
	for i := 1; i < len(res.Curves); i++ {
		if curveOrder(res.Curves[i]) > curveOrder(res.Curves[i-1]) {
			t.Error("curves not ordered by downtime")
		}
	}
	// Within a family, downtime grows with load.
	for _, c := range res.Curves {
		for i := 1; i < len(c.Downtimes); i++ {
			if c.Downtimes[i] <= c.Downtimes[i-1] {
				t.Errorf("family %v: downtime not increasing with load: %v", c.Family, c.Downtimes)
			}
		}
	}
}

func TestFig7SmallSweep(t *testing.T) {
	solver := sciSolver(t)
	reqs := []float64{2, 20, 200, 1000}
	points, err := Fig7(context.Background(), solver, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("points = %d, want most requirements feasible", len(points))
	}
	// Tightest feasible requirement uses machineB, loosest machineA.
	first, last := points[0], points[len(points)-1]
	if first.Resource != "rI" {
		t.Errorf("tight requirement resource = %s, want rI", first.Resource)
	}
	if last.Resource != "rH" {
		t.Errorf("relaxed requirement resource = %s, want rH", last.Resource)
	}
	// Resource count decreases and cost decreases as requirements relax
	// within a resource type.
	for i := 1; i < len(points); i++ {
		if points[i].Resource == points[i-1].Resource {
			if points[i].NActive > points[i-1].NActive {
				t.Errorf("resource count grew when relaxing: %+v → %+v", points[i-1], points[i])
			}
		}
		if points[i].Cost > points[i-1].Cost {
			t.Errorf("cost grew when relaxing: %v → %v", points[i-1].Cost, points[i].Cost)
		}
		if points[i].JobTimeHours > points[i].RequirementHours {
			t.Errorf("point %d misses its requirement", i)
		}
	}
	// Checkpoint interval grows toward the relaxed end.
	if last.CheckpointHours <= first.CheckpointHours {
		t.Errorf("checkpoint interval should grow: %v → %v", first.CheckpointHours, last.CheckpointHours)
	}
	for _, p := range points {
		if p.StorageLocation != "central" && p.StorageLocation != "peer" {
			t.Errorf("bad storage location %q", p.StorageLocation)
		}
	}
}

func TestFig8SmallSweep(t *testing.T) {
	solver := appSolver(t)
	curves, err := Fig8(context.Background(), solver, []float64{400, 1600}, []float64{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if c.BaselineCost <= 0 {
			t.Errorf("load %v: baseline cost %v", c.Load, c.BaselineCost)
		}
		if len(c.Points) == 0 {
			t.Fatalf("load %v: no feasible points", c.Load)
		}
		// Premium decreases (weakly) as the budget relaxes, and is
		// non-negative.
		for i, p := range c.Points {
			if p.ExtraCost < 0 {
				t.Errorf("load %v budget %v: negative premium %v", c.Load, p.BudgetMinutes, p.ExtraCost)
			}
			if i > 0 && p.ExtraCost > c.Points[i-1].ExtraCost {
				t.Errorf("load %v: premium grew from %v to %v while relaxing",
					c.Load, c.Points[i-1].ExtraCost, p.ExtraCost)
			}
		}
	}
	// Higher load pays at least as much for a 1-minute bound (the
	// paper's curves order by load at the tight end).
	tight0 := curves[0].Points[0].ExtraCost
	tight1 := curves[1].Points[0].ExtraCost
	if tight1 < tight0 {
		t.Errorf("premium at load 1600 (%v) below load 400 (%v)", tight1, tight0)
	}
}

func TestFamilyOfAndString(t *testing.T) {
	solver := appSolver(t)
	sol, err := solver.Solve(model.Requirements{
		Kind:              model.ReqEnterprise,
		Throughput:        1000,
		MaxAnnualDowntime: 100 * 60 * 1e9, // 100 minutes in Duration ticks
	})
	if err != nil {
		t.Fatal(err)
	}
	td := &sol.Design.Tiers[0]
	fam := FamilyOf(td)
	if fam.Resource != "rC" || fam.NExtra != 1 || fam.NSpare != 0 {
		t.Errorf("family = %+v", fam)
	}
	if !strings.Contains(fam.Mechanisms, "maintenanceA=bronze") {
		t.Errorf("family mechanisms = %q", fam.Mechanisms)
	}
	str := fam.String()
	if !strings.Contains(str, "rC") || !strings.Contains(str, "1, 0") {
		t.Errorf("family string = %q", str)
	}
	if got := Stack(td); got != "machineA/linux/appserverA" {
		t.Errorf("stack = %q", got)
	}
}

func TestSweepInputValidation(t *testing.T) {
	solver := appSolver(t)
	if _, err := Fig6(context.Background(), solver, nil, []float64{1}); err == nil {
		t.Error("Fig6 empty loads should fail")
	}
	if _, err := Fig7(context.Background(), sciSolver(t), nil); err == nil {
		t.Error("Fig7 empty grid should fail")
	}
	if _, err := Fig8(context.Background(), solver, nil, nil); err == nil {
		t.Error("Fig8 empty grids should fail")
	}
}
