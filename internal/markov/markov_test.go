package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTwoStateChain(t *testing.T) {
	// Up/down with failure rate λ and repair rate μ:
	// π_up = μ/(λ+μ), π_down = λ/(λ+μ).
	lambda, mu := 0.01, 2.0
	c, err := NewChain(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 1, lambda); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(1, 0, mu); err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], mu/(lambda+mu), 1e-12) {
		t.Errorf("pi[0] = %v, want %v", pi[0], mu/(lambda+mu))
	}
	if !almostEqual(pi[1], lambda/(lambda+mu), 1e-12) {
		t.Errorf("pi[1] = %v, want %v", pi[1], lambda/(lambda+mu))
	}
}

func TestSingleStateChain(t *testing.T) {
	c, err := NewChain(1)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if len(pi) != 1 || pi[0] != 1 {
		t.Errorf("pi = %v, want [1]", pi)
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain(0); err == nil {
		t.Error("NewChain(0) should fail")
	}
	c, err := NewChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 0, 1); err == nil {
		t.Error("self-transition should fail")
	}
	if err := c.SetRate(0, 5, 1); err == nil {
		t.Error("out-of-range state should fail")
	}
	if err := c.SetRate(0, 1, -1); err == nil {
		t.Error("negative rate should fail")
	}
	if err := c.SetRate(0, 1, math.NaN()); err == nil {
		t.Error("NaN rate should fail")
	}
}

func TestReducibleChainFails(t *testing.T) {
	// Two disconnected components have no unique stationary distribution.
	c, err := NewChain(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(3, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyState(); err == nil {
		t.Error("reducible chain should fail to solve")
	}
}

func TestSetRateAdjustsDiagonal(t *testing.T) {
	c, err := NewChain(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.Rate(0, 0); got != -3 {
		t.Errorf("diagonal = %v, want -3", got)
	}
	// Overwrite, not accumulate.
	if err := c.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Rate(0, 0); got != -1 {
		t.Errorf("diagonal after overwrite = %v, want -1", got)
	}
	if err := c.AddRate(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Rate(0, 1); got != 3 {
		t.Errorf("rate after AddRate = %v, want 3", got)
	}
}

func TestBirthDeathMatchesMM1K(t *testing.T) {
	// M/M/1/K queue: birth λ, death μ, π_j ∝ ρ^j.
	lambda, mu := 2.0, 5.0
	k := 6
	birth := make([]float64, k)
	death := make([]float64, k)
	for i := range birth {
		birth[i] = lambda
		death[i] = mu
	}
	pi, err := BirthDeathSteadyState(birth, death)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	var norm float64
	for j := 0; j <= k; j++ {
		norm += math.Pow(rho, float64(j))
	}
	for j := 0; j <= k; j++ {
		want := math.Pow(rho, float64(j)) / norm
		if !almostEqual(pi[j], want, 1e-12) {
			t.Errorf("pi[%d] = %v, want %v", j, pi[j], want)
		}
	}
}

func TestBirthDeathMatchesDenseSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		birth := make([]float64, n)
		death := make([]float64, n)
		for i := range birth {
			birth[i] = rng.Float64()*2 + 0.01
			death[i] = rng.Float64()*5 + 0.01
		}
		want, err := BirthDeathSteadyState(birth, death)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := BirthDeathChain(birth, death)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chain.SteadyState()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if !almostEqual(got[j], want[j], 1e-9) {
				t.Fatalf("trial %d state %d: dense %v vs product form %v", trial, j, got[j], want[j])
			}
		}
	}
}

func TestBirthDeathZeroBirthTruncates(t *testing.T) {
	// A zero birth rate makes higher states unreachable.
	pi, err := BirthDeathSteadyState([]float64{1, 0, 1}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pi[2] != 0 || pi[3] != 0 {
		t.Errorf("unreachable states got probability: %v", pi)
	}
	if !almostEqual(pi[0], 0.5, 1e-12) || !almostEqual(pi[1], 0.5, 1e-12) {
		t.Errorf("reachable states = %v, want 0.5 each", pi[:2])
	}
}

func TestBirthDeathErrors(t *testing.T) {
	if _, err := BirthDeathSteadyState([]float64{1}, []float64{}); err == nil {
		t.Error("mismatched slices should fail")
	}
	if _, err := BirthDeathSteadyState([]float64{1}, []float64{0}); err == nil {
		t.Error("absorbing state should fail")
	}
	if _, err := BirthDeathSteadyState([]float64{-1}, []float64{1}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestSteadyStateSumsToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c, err := NewChain(n)
		if err != nil {
			return false
		}
		// A ring plus random extra edges keeps the chain irreducible.
		for i := 0; i < n; i++ {
			if err := c.SetRate(i, (i+1)%n, rng.Float64()+0.1); err != nil {
				return false
			}
		}
		for e := 0; e < n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				if err := c.AddRate(i, j, rng.Float64()); err != nil {
					return false
				}
			}
		}
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateBalanceProperty(t *testing.T) {
	// πQ = 0: check the flow balance explicitly on a random chain.
	rng := rand.New(rand.NewSource(42))
	n := 6
	c, err := NewChain(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.7 {
				if err := c.SetRate(i, j, rng.Float64()*3); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Ensure irreducibility with a ring.
	for i := 0; i < n; i++ {
		if err := c.AddRate(i, (i+1)%n, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		var balance float64
		for i := 0; i < n; i++ {
			balance += pi[i] * c.Rate(i, j)
		}
		if !almostEqual(balance, 0, 1e-9) {
			t.Errorf("state %d: flow balance = %v, want 0", j, balance)
		}
	}
}
