package markov

import (
	"fmt"
	"math"
)

// TransientAt reports the state distribution at time t (in the chain's
// rate units) starting from the initial distribution pi0, computed by
// uniformization: P(t) = Σ_k Poisson(qt; k) · π₀ Uᵏ with U = I + Q/q.
// The series truncates when the remaining Poisson mass falls below eps.
func (c *Chain) TransientAt(pi0 []float64, t, eps float64) ([]float64, error) {
	if err := c.checkTransientArgs(pi0, t, eps); err != nil {
		return nil, err
	}
	if t == 0 {
		return append([]float64(nil), pi0...), nil
	}
	u, q := c.uniformized()
	if q == 0 {
		return append([]float64(nil), pi0...), nil
	}
	out := make([]float64, c.n)
	cur := append([]float64(nil), pi0...)
	scratch := make([]float64, c.n)
	// Poisson weights tracked in log space: for large qt the early
	// weights underflow float64 and a direct recurrence would stay
	// zero forever.
	qt := q * t
	logW := -qt // log Poisson(qt; 0)
	accumulated := 0.0
	for k := 0; ; k++ {
		if w := math.Exp(logW); w > 0 {
			for i := range out {
				out[i] += w * cur[i]
			}
			accumulated += w
		}
		if 1-accumulated < eps && float64(k) >= qt {
			break
		}
		// Past the Poisson peak the pmf only shrinks; once it
		// underflows, no further term can contribute.
		if float64(k) > qt && logW < -745 {
			break
		}
		if k > 100_000_000 {
			return nil, fmt.Errorf("markov: uniformization failed to converge (qt = %v)", qt)
		}
		cur, scratch = matVec(scratch, cur, u, c.n), cur
		logW += math.Log(qt / float64(k+1))
	}
	// Renormalise the truncation residue.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("markov: transient distribution vanished")
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// OccupancyOver reports, for each state, the expected fraction of the
// interval [0, t] spent in that state, starting from pi0 — the
// time-averaged transient distribution
// (1/t)·∫₀ᵗ P(s) ds = Σ_k π₀ Uᵏ · tail_k / (q·t)
// where tail_k is the probability a Poisson(qt) variable exceeds k.
func (c *Chain) OccupancyOver(pi0 []float64, t, eps float64) ([]float64, error) {
	if err := c.checkTransientArgs(pi0, t, eps); err != nil {
		return nil, err
	}
	if t == 0 {
		return append([]float64(nil), pi0...), nil
	}
	u, q := c.uniformized()
	if q == 0 {
		return append([]float64(nil), pi0...), nil
	}
	out := make([]float64, c.n)
	cur := append([]float64(nil), pi0...)
	scratch := make([]float64, c.n)
	qt := q * t
	// Poisson pmf in log space (see TransientAt); the tail starts at 1
	// and sheds mass as the pmf becomes representable.
	logPmf := -qt
	tail := 1 - math.Exp(logPmf) // P(N > 0)
	for k := 0; ; k++ {
		weight := tail / qt
		for i := range out {
			out[i] += weight * cur[i]
		}
		if tail < eps {
			break
		}
		// Past the Poisson peak an underflowed pmf freezes the tail at
		// its accumulated rounding residual; every remaining term is
		// negligible by then.
		if float64(k) > qt && logPmf < -745 {
			break
		}
		if k > 100_000_000 {
			return nil, fmt.Errorf("markov: occupancy series failed to converge (qt = %v)", qt)
		}
		cur, scratch = matVec(scratch, cur, u, c.n), cur
		logPmf += math.Log(qt / float64(k+1))
		tail -= math.Exp(logPmf)
		if tail < 0 {
			tail = 0
		}
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("markov: occupancy distribution vanished")
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// uniformized builds the DTMC matrix U = I + Q/q with q a little above
// the largest exit rate, returned alongside q. A q of zero means the
// chain has no transitions.
func (c *Chain) uniformized() ([][]float64, float64) {
	var q float64
	for i := 0; i < c.n; i++ {
		if exit := -c.q[i][i]; exit > q {
			q = exit
		}
	}
	if q == 0 {
		return nil, 0
	}
	q *= 1.02 // keep U strictly substochastic on the diagonal
	u := make([][]float64, c.n)
	for i := range u {
		u[i] = make([]float64, c.n)
		for j := range u[i] {
			u[i][j] = c.q[i][j] / q
			if i == j {
				u[i][j]++
			}
		}
	}
	return u, q
}

// matVec computes row-vector × matrix into dst (cleared first) and
// returns it, letting the uniformization loops ping-pong two buffers
// instead of allocating per term.
func matVec(dst, v []float64, m [][]float64, n int) []float64 {
	for j := 0; j < n; j++ {
		dst[j] = 0
	}
	for i := 0; i < n; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m[i]
		for j := 0; j < n; j++ {
			dst[j] += vi * row[j]
		}
	}
	return dst
}

func (c *Chain) checkTransientArgs(pi0 []float64, t, eps float64) error {
	if len(pi0) != c.n {
		return fmt.Errorf("markov: initial distribution has %d entries for %d states", len(pi0), c.n)
	}
	var sum float64
	for _, v := range pi0 {
		if v < 0 {
			return fmt.Errorf("markov: negative initial probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("markov: initial distribution sums to %v, want 1", sum)
	}
	if t < 0 {
		return fmt.Errorf("markov: negative horizon %v", t)
	}
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("markov: truncation eps %v outside (0, 1)", eps)
	}
	return nil
}
